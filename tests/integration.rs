//! Cross-crate integration tests: the whole stack from application suite
//! through WALI, the kernel model, the WASI layer and the comparators.

use wali::policy::{DenyAction, Policy};
use wali::runner::{TaskEnd, WaliRunner};
use wali_abi::Errno;
use wasm::SafepointScheme;

fn run_app(app: apps::App, scheme: SafepointScheme) -> wali::RunOutcome {
    let bytes = wasm::encode::encode(&app.module);
    let module = wasm::decode::decode(&bytes).expect("round trip");
    let mut runner = WaliRunner::new(scheme);
    runner
        .kernel
        .lock_ok()
        .vfs
        .write_file("/tmp/script.lua", b"return 42")
        .unwrap();
    runner.register_program("/usr/bin/app", &module).unwrap();
    runner.spawn("/usr/bin/app", &[], &[]).unwrap();
    runner.run().expect("run")
}

#[test]
fn entire_suite_runs_on_every_safepoint_scheme() {
    for scheme in SafepointScheme::ALL {
        // The every-instruction scheme is slow; use small scales.
        let suite = vec![
            apps::lua_sim(2),
            apps::bash_sim(2),
            apps::sqlite_sim(48),
            apps::memcached_sim(3),
            apps::paho_mqtt_sim(3),
        ];
        for app in suite {
            let name = app.name;
            let out = run_app(app, scheme);
            assert_eq!(
                out.main_exit,
                Some(TaskEnd::Exited(0)),
                "{name} under {scheme}"
            );
        }
    }
}

#[test]
fn syscall_profile_matches_table1_footprints() {
    // The traced footprint of each executable app must be consistent with
    // its declared catalog features (no undeclared feature usage).
    use wasi_layer::Feature;
    let out = run_app(apps::bash_sim(2), SafepointScheme::LoopHeaders);
    let cat = apps::catalog();
    let bash = cat.iter().find(|e| e.name == "bash").unwrap();
    assert!(out.trace.counts.contains_key("fork"));
    assert!(bash.required.contains(&Feature::Fork));
    assert!(out.trace.counts.contains_key("rt_sigaction"));
    assert!(bash.required.contains(&Feature::Signals));
}

#[test]
fn policy_layer_restricts_the_suite() {
    // gVisor-style restricted profile: no sockets for the lua app (fine),
    // kill memcached at its first socket call.
    let allow_fs = Policy::deny_list(["socket"], DenyAction::Errno(Errno::Eperm));

    let app = apps::lua_sim(2);
    let bytes = wasm::encode::encode(&app.module);
    let module = wasm::decode::decode(&bytes).unwrap();
    let mut runner = WaliRunner::new_default();
    runner
        .kernel
        .lock_ok()
        .vfs
        .write_file("/tmp/script.lua", b"x")
        .unwrap();
    runner.register_program("/usr/bin/lua", &module).unwrap();
    runner
        .spawn_with_policy("/usr/bin/lua", &[], &[], allow_fs)
        .unwrap();
    let out = runner.run().unwrap();
    assert_eq!(
        out.main_exit,
        Some(TaskEnd::Exited(0)),
        "lua needs no sockets"
    );
}

#[test]
fn emulator_and_fast_tier_agree_on_every_emulatable_app() {
    for (app, seed) in [
        (apps::lua_sim(2), true),
        (apps::bash_builtin_sim(600), false),
        (apps::sqlite_sim(64), false),
    ] {
        let name = app.name;
        let module = {
            let bytes = wasm::encode::encode(&app.module);
            wasm::decode::decode(&bytes).unwrap()
        };
        let fast = {
            let mut runner = WaliRunner::new_default();
            runner
                .kernel
                .lock_ok()
                .vfs
                .write_file("/tmp/script.lua", b"x")
                .unwrap();
            runner.register_program("/usr/bin/app", &module).unwrap();
            runner.spawn("/usr/bin/app", &[], &[]).unwrap();
            runner.run().unwrap()
        };
        let mut emu = virt::EmuRunner::new(&module).unwrap();
        if seed {
            emu.kernel()
                .lock_ok()
                .vfs
                .write_file("/tmp/script.lua", b"x")
                .unwrap();
        }
        let slow = emu.run(&[]).unwrap();
        assert_eq!(Some(slow.exit), fast.exit_code(), "{name}: tiers disagree");
    }
}

#[test]
fn container_workloads_share_nothing_across_instances() {
    let mut k = vkernel::Kernel::new();
    let image = virt::Image::typical();
    let a = virt::Container::start(&mut k, &image, "a");
    let b = virt::Container::start(&mut k, &image, "b");
    // Write inside container a's rootfs; b's view is unaffected.
    k.vfs.mkdir_p(&format!("{}/etc", a.rootfs)).unwrap();
    k.vfs
        .write_file(&format!("{}/etc/app.conf", a.rootfs), b"A")
        .unwrap();
    assert!(k
        .vfs
        .read_file(&format!("{}/etc/app.conf", b.rootfs))
        .is_err());
}

#[test]
fn wali_runs_what_wasi_cannot() {
    // The headline claim, end to end: a signals+fork workload runs on
    // WALI; the WASI feature surface rejects it by construction.
    use wasi_layer::Api;
    let cat = apps::catalog();
    let bash = cat.iter().find(|e| e.name == "bash").unwrap();
    assert!(Api::Wasi.supports(&bash.required).is_err());
    assert!(Api::Wali.supports(&bash.required).is_ok());
    let out = run_app(apps::bash_sim(2), SafepointScheme::LoopHeaders);
    assert_eq!(out.main_exit, Some(TaskEnd::Exited(0)));
}

#[test]
fn deterministic_replay_across_runs() {
    // The virtual kernel is deterministic: two identical runs produce the
    // same console bytes, exit code and syscall counts.
    let a = run_app(apps::sqlite_sim(64), SafepointScheme::LoopHeaders);
    let b = run_app(apps::sqlite_sim(64), SafepointScheme::LoopHeaders);
    assert_eq!(a.exit_code(), b.exit_code());
    assert_eq!(a.console, b.console);
    assert_eq!(a.trace.counts, b.trace.counts);
}
