//! A memcached-style threaded key-value server with loopback clients:
//! clone-based worker threads sharing linear memory, sockets, setsockopt.
//!
//! ```sh
//! cargo run --example kv_server
//! ```

use wasm::SafepointScheme;

fn main() {
    let app = apps::memcached_sim(16);
    let bytes = wasm::encode::encode(&app.module);
    let module = wasm::decode::decode(&bytes).expect("valid");

    let mut runner = wali::WaliRunner::new(SafepointScheme::LoopHeaders);
    runner
        .register_program("/usr/bin/memcached", &module)
        .expect("register");
    runner.spawn("/usr/bin/memcached", &[], &[]).expect("spawn");
    let out = runner.run().expect("run");

    println!("exit: {:?} (0 = all requests served)", out.main_exit);
    println!(
        "server: clone={} accept={} | clients: connect={} sendto/write={}",
        out.trace.counts.of("clone"),
        out.trace.counts.of("accept"),
        out.trace.counts.of("connect"),
        out.trace.counts.of("write"),
    );
    println!(
        "peak linear memory: {} KiB",
        out.peak_memory_pages as usize * 64
    );
}
