//! Quickstart: build a Wasm program that talks to Linux through WALI and
//! run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use wasm::build::ModuleBuilder;
use wasm::types::ValType::{I32, I64};

fn main() {
    // 1. Build a module that imports a WALI syscall by name.
    let mut mb = ModuleBuilder::new();
    let write_sig = mb.sig([I64, I64, I64], [I64]);
    let sys_write = mb.import_func("wali", "SYS_write", write_sig);
    let getpid_sig = mb.sig([], [I64]);
    let sys_getpid = mb.import_func("wali", "SYS_getpid", getpid_sig);
    mb.memory(2, Some(16));
    let msg = mb.c_str("hello from wasm, via SYS_write\n");
    let main_sig = mb.sig([], [I32]);
    let main = mb.func(main_sig, |b| {
        // write(stdout, msg, 31)
        b.i64(1).i64(msg as i64).i64(31).call(sys_write).drop_();
        // exit code = getpid() (prove we have a kernel identity)
        b.call(sys_getpid).wrap();
    });
    mb.export("_start", main);
    let module = mb.build();

    // 2. The binary pipeline is real: encode to bytes, decode back.
    let bytes = wasm::encode::encode(&module);
    println!("module: {} bytes of wasm", bytes.len());
    let module = wasm::decode::decode(&bytes).expect("valid binary");

    // 3. Run it on the WALI runtime.
    let out = wali::WaliRunner::run_to_exit(&module, &[], &["HOME=/home/user"]).expect("runs");
    print!("console: {}", out.stdout());
    println!("exit code (the pid): {:?}", out.exit_code());
    println!("syscalls traced: {:?}", out.trace.counts);
}
