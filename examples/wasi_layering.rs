//! The layering demo (paper Fig. 1/6): a WASI module whose implementation
//! — including the capability security model — lives entirely *above*
//! the WALI kernel interface.
//!
//! ```sh
//! cargo run --example wasi_layering
//! ```

use wasi_layer::{add_wasi_layer, init_wasi, WasiState};
use wasm::build::ModuleBuilder;
use wasm::types::ValType::I32;

fn main() {
    // A WASI (not WALI!) module: fd_write to stdout.
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([I32, I32, I32, I32], [I32]);
    let fd_write = mb.import_func("wasi_snapshot_preview1", "fd_write", sig);
    mb.memory(2, Some(16));
    let msg = mb.c_str("capability-secured hello, by way of WALI\n");
    let iov = mb.reserve(8);
    mb.data_at(iov, &[msg.to_le_bytes(), 41u32.to_le_bytes()].concat());
    let nwritten = mb.reserve(4);
    let main_sig = mb.sig([], [I32]);
    let main = mb.func(main_sig, |b| {
        b.i32(1)
            .i32(iov as i32)
            .i32(1)
            .i32(nwritten as i32)
            .call(fd_write);
    });
    mb.export("_start", main);
    let bytes = wasm::encode::encode(&mb.build());
    let module = wasm::decode::decode(&bytes).expect("valid");

    let mut runner = wali::WaliRunner::new_default();
    // Stack the WASI layer over the WALI registry.
    add_wasi_layer(runner.linker_mut());
    runner
        .register_program("/usr/bin/wasi-app", &module)
        .expect("register");
    let tid = runner.spawn("/usr/bin/wasi-app", &[], &[]).expect("spawn");
    runner.configure_ctx(tid, |ctx| {
        init_wasi(ctx, WasiState::with_preopens(&["/tmp"]))
    });
    let out = runner.run().expect("run");

    print!("console: {}", out.stdout());
    println!("WASI errno returned: {:?}", out.exit_code());
    println!(
        "note the trace shows WALI syscalls, not WASI calls: {:?}",
        out.trace.counts.keys().collect::<Vec<_>>()
    );
}
