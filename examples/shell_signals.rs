//! A bash-style shell session: pipelines, fork/wait job control and
//! SIGCHLD handling — the workloads WASI cannot express (paper Table 1).
//!
//! ```sh
//! cargo run --example shell_signals
//! ```

use wasm::SafepointScheme;

fn main() {
    let app = apps::bash_sim(4);
    let bytes = wasm::encode::encode(&app.module);
    let module = wasm::decode::decode(&bytes).expect("valid");

    let mut runner = wali::WaliRunner::new(SafepointScheme::LoopHeaders);
    runner
        .register_program("/bin/bash", &module)
        .expect("register");
    runner
        .spawn("/bin/bash", &["-c", "echo hello | wc -l"], &[])
        .expect("spawn");
    let out = runner.run().expect("run");

    println!("shell output:\n{}", out.stdout());
    println!(
        "exit: {:?} (0 = every child reaped via SIGCHLD)",
        out.main_exit
    );
    println!(
        "job-control syscalls: fork={} wait4={} pipe={} dup3={} rt_sigaction={}",
        out.trace.counts.of("fork"),
        out.trace.counts.of("wait4"),
        out.trace.counts.of("pipe"),
        out.trace.counts.of("dup3"),
        out.trace.counts.of("rt_sigaction"),
    );
}
