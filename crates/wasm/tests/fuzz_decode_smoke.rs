//! Std-only smoke variant of `fuzz_decode.rs`: the same never-panic
//! properties driven by an inline splitmix64 stream so they run in the
//! default `cargo test` (the proptest battery stays behind the
//! `proptest` feature). 256 cases per property; override the stream
//! with `WALI_FUZZ_SEED` to chase a reported case.

const CASES: u64 = 256;

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    fn bytes(&mut self, max_len: u64) -> Vec<u8> {
        let len = self.below(max_len + 1) as usize;
        (0..len).map(|_| self.next() as u8).collect()
    }
}

fn base_seed() -> u64 {
    std::env::var("WALI_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

#[test]
fn decoder_never_panics_on_random_bytes_smoke() {
    let mut rng = SplitMix64(base_seed());
    for case in 0..CASES {
        let bytes = rng.bytes(512);
        let res = std::panic::catch_unwind(|| {
            let _ = wasm::decode::decode(&bytes);
        });
        assert!(res.is_ok(), "decoder panicked on case {case}: {bytes:?}");
    }
}

#[test]
fn decoder_never_panics_on_header_plus_noise_smoke() {
    let mut rng = SplitMix64(base_seed() ^ 0x6e6f697365);
    for case in 0..CASES {
        let mut bytes = b"\0asm\x01\0\0\0".to_vec();
        bytes.extend_from_slice(&rng.bytes(256));
        let res = std::panic::catch_unwind(|| {
            if let Ok(module) = wasm::decode::decode(&bytes) {
                let _ = wasm::validate::validate(&module);
            }
        });
        assert!(res.is_ok(), "validator panicked on case {case}: {bytes:?}");
    }
}

#[test]
fn mutated_valid_modules_never_panic_smoke() {
    let mut rng = SplitMix64(base_seed() ^ 0x666c6970);
    for case in 0..CASES {
        let seed = rng.next() as u8;
        let mut mb = wasm::build::ModuleBuilder::new();
        mb.memory(1, Some(2));
        let sig = mb.sig([wasm::types::ValType::I32], [wasm::types::ValType::I32]);
        let f = mb.func(sig, |b| {
            b.local_get(0).i32(seed as i32).add32();
        });
        mb.export("main", f);
        let mut bytes = wasm::encode::encode(&mb.build());
        for _ in 0..rng.below(16).max(1) {
            let pos = rng.below(bytes.len() as u64) as usize;
            bytes[pos] = rng.next() as u8;
        }
        let res = std::panic::catch_unwind(|| {
            if let Ok(module) = wasm::decode::decode(&bytes) {
                let _ = wasm::validate::validate(&module);
            }
        });
        assert!(
            res.is_ok(),
            "panicked on mutated module, case {case}: {bytes:?}"
        );
    }
}
