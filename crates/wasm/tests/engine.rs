//! Integration tests for the engine: host calls, traps, suspension/resume,
//! fork-style thread cloning and safepoint re-entrancy — the exact
//! capabilities WALI builds on.

use std::sync::Arc;

use wasm::build::ModuleBuilder;
use wasm::host::{HostCtx, HostOutcome, Linker, PendingCall, Suspension};
use wasm::instr::BlockType;
use wasm::interp::{Instance, RunResult, Thread, Value};
use wasm::prep::Program;
use wasm::safepoint::SafepointScheme;
use wasm::types::ValType;
use wasm::Trap;

#[derive(Default)]
struct Ctx {
    log: Vec<i64>,
    pending: Option<PendingCall>,
}

impl HostCtx for Ctx {
    fn poll_signal(&mut self) -> Option<PendingCall> {
        self.pending.take()
    }
}

fn link(module: &wasm::Module, linker: &Linker<Ctx>, scheme: SafepointScheme) -> Instance<Ctx> {
    let bytes = wasm::encode::encode(module);
    let module = wasm::decode::decode(&bytes).expect("round trip");
    let program = Arc::new(Program::link(&module, linker, scheme).expect("link"));
    Instance::new(program).expect("instantiate")
}

#[test]
fn host_function_receives_args_and_returns() {
    let mut mb = ModuleBuilder::new();
    let host_sig = mb.sig([ValType::I64], [ValType::I64]);
    let log = mb.import_func("env", "log_and_double", host_sig);
    let main_sig = mb.sig([], [ValType::I64]);
    let f = mb.func(main_sig, |b| {
        b.i64(21).call(log);
    });
    mb.export("main", f);
    let module = mb.build();

    let mut linker: Linker<Ctx> = Linker::new();
    linker.func("env", "log_and_double", |caller, args| {
        let v = args[0].as_i64().unwrap();
        caller.data.log.push(v);
        Ok(vec![Value::I64(v * 2)])
    });

    let mut inst = link(&module, &linker, SafepointScheme::LoopHeaders);
    let mut ctx = Ctx::default();
    let main = inst.export_func("main").unwrap();
    let mut t = Thread::new();
    match t.call(&mut inst, &mut ctx, main, &[]) {
        RunResult::Done(v) => assert_eq!(v, vec![Value::I64(42)]),
        other => panic!("{other:?}"),
    }
    assert_eq!(ctx.log, vec![21]);
}

#[test]
fn division_by_zero_traps() {
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([ValType::I32, ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local_get(0)
            .local_get(1)
            .emit(wasm::instr::Instr::Bin(wasm::instr::BinOp::I32DivS));
    });
    mb.export("main", f);
    let module = mb.build();
    let mut inst = link(&module, &Linker::<Ctx>::new(), SafepointScheme::LoopHeaders);
    let mut ctx = Ctx::default();
    let main = inst.export_func("main").unwrap();

    let mut t = Thread::new();
    match t.call(&mut inst, &mut ctx, main, &[Value::I32(1), Value::I32(0)]) {
        RunResult::Trapped(Trap::DivisionByZero) => {}
        other => panic!("{other:?}"),
    }
    let mut t = Thread::new();
    match t.call(
        &mut inst,
        &mut ctx,
        main,
        &[Value::I32(i32::MIN), Value::I32(-1)],
    ) {
        RunResult::Trapped(Trap::IntegerOverflow) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn memory_oob_traps_as_sigsegv_analogue() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(1));
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local_get(0).load32(0);
    });
    mb.export("main", f);
    let module = mb.build();
    let mut inst = link(&module, &Linker::<Ctx>::new(), SafepointScheme::LoopHeaders);
    let mut ctx = Ctx::default();
    let main = inst.export_func("main").unwrap();
    let mut t = Thread::new();
    match t.call(&mut inst, &mut ctx, main, &[Value::I32(65536)]) {
        RunResult::Trapped(Trap::MemoryOutOfBounds) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn call_indirect_checks_signatures() {
    let mut mb = ModuleBuilder::new();
    let sig_i32 = mb.sig([], [ValType::I32]);
    let sig_i64 = mb.sig([], [ValType::I64]);
    let good = mb.func(sig_i32, |b| {
        b.i32(7);
    });
    let bad = mb.func(sig_i64, |b| {
        b.i64(8);
    });
    let base = mb.table_entries(&[good, bad]);
    let main_sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(main_sig, |b| {
        b.local_get(0).call_indirect(sig_i32);
    });
    mb.export("main", f);
    let module = mb.build();
    let mut inst = link(&module, &Linker::<Ctx>::new(), SafepointScheme::LoopHeaders);
    let mut ctx = Ctx::default();
    let main = inst.export_func("main").unwrap();

    let mut t = Thread::new();
    match t.call(&mut inst, &mut ctx, main, &[Value::I32(base as i32)]) {
        RunResult::Done(v) => assert_eq!(v, vec![Value::I32(7)]),
        other => panic!("{other:?}"),
    }
    // Wrong signature: the paper notes this trap catches latent C bugs.
    let mut t = Thread::new();
    match t.call(&mut inst, &mut ctx, main, &[Value::I32(base as i32 + 1)]) {
        RunResult::Trapped(Trap::IndirectCallTypeMismatch) => {}
        other => panic!("{other:?}"),
    }
    // Out of bounds index.
    let mut t = Thread::new();
    match t.call(&mut inst, &mut ctx, main, &[Value::I32(99)]) {
        RunResult::Trapped(Trap::TableOutOfBounds) => {}
        other => panic!("{other:?}"),
    }
}

/// Suspension payload used by the fork-style test.
struct ForkPoint;

#[test]
fn suspension_resume_and_fork_style_clone() {
    let mut mb = ModuleBuilder::new();
    let fork_sig = mb.sig([], [ValType::I64]);
    let fork = mb.import_func("wali", "SYS_fork", fork_sig);
    let main_sig = mb.sig([], [ValType::I64]);
    let f = mb.func(main_sig, |b| {
        // return fork() * 2 + 1
        b.call(fork)
            .i64(2)
            .emit(wasm::instr::Instr::Bin(wasm::instr::BinOp::I64Mul));
        b.i64(1).add64();
    });
    mb.export("main", f);
    let module = mb.build();

    let mut linker: Linker<Ctx> = Linker::new();
    linker.func("wali", "SYS_fork", |_, _| {
        Err(HostOutcome::Suspend(Suspension::new(ForkPoint)))
    });

    let mut inst = link(&module, &linker, SafepointScheme::LoopHeaders);
    let mut ctx = Ctx::default();
    let main = inst.export_func("main").unwrap();

    let mut parent = Thread::new();
    let suspension = match parent.call(&mut inst, &mut ctx, main, &[]) {
        RunResult::Suspended(s) => s,
        other => panic!("{other:?}"),
    };
    assert!(suspension.downcast::<ForkPoint>().is_ok());
    assert!(parent.is_suspended());

    // Snapshot the suspended state: this is exactly how WALI implements
    // fork — clone the thread, resume parent with the child pid and the
    // child with 0.
    let mut child = parent.clone();

    match parent.resume(&mut inst, &mut ctx, &[Value::I64(123)]) {
        RunResult::Done(v) => assert_eq!(v, vec![Value::I64(247)]),
        other => panic!("{other:?}"),
    }
    match child.resume(&mut inst, &mut ctx, &[Value::I64(0)]) {
        RunResult::Done(v) => assert_eq!(v, vec![Value::I64(1)]),
        other => panic!("{other:?}"),
    }
}

#[test]
fn safepoint_reentrancy_runs_signal_handler() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(1));
    // handler(sig): mem[100] = sig
    let handler_sig = mb.sig([ValType::I32], []);
    let handler = mb.func(handler_sig, |b| {
        b.i32(100).local_get(0).store32(0);
    });
    // main: loop until mem[100] != 0, return mem[100]
    let main_sig = mb.sig([], [ValType::I32]);
    let main = mb.func(main_sig, |b| {
        b.loop_(BlockType::Empty, |b| {
            b.i32(100).load32(0).eqz32().br_if(0);
        });
        b.i32(100).load32(0);
    });
    mb.export("main", main);
    mb.export("handler", handler);
    let module = mb.build();

    let mut inst = link(&module, &Linker::<Ctx>::new(), SafepointScheme::LoopHeaders);
    let handler_idx = inst.export_func("handler").unwrap();
    let main_idx = inst.export_func("main").unwrap();
    // Queue a pending "SIGINT" delivered at the first loop-header
    // safepoint.
    let mut ctx = Ctx {
        pending: Some(PendingCall {
            func: handler_idx,
            args: vec![Value::I32(2)],
        }),
        ..Default::default()
    };

    let mut t = Thread::new();
    match t.call(&mut inst, &mut ctx, main_idx, &[]) {
        RunResult::Done(v) => assert_eq!(v, vec![Value::I32(2)]),
        other => panic!("{other:?}"),
    }
}

#[test]
fn no_safepoints_means_no_delivery() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(1));
    let handler_sig = mb.sig([ValType::I32], []);
    let handler = mb.func(handler_sig, |b| {
        b.i32(100).local_get(0).store32(0);
    });
    let main_sig = mb.sig([], [ValType::I32]);
    // Bounded loop so the test terminates even without delivery.
    let main = mb.func(main_sig, |b| {
        let i = b.local(ValType::I32);
        b.loop_(BlockType::Empty, |b| {
            b.local_get(i).i32(1).add32().local_set(i);
            b.local_get(i).i32(1000).lt_s32().br_if(0);
        });
        b.i32(100).load32(0);
    });
    mb.export("main", main);
    mb.export("handler", handler);
    let module = mb.build();

    let mut inst = link(&module, &Linker::<Ctx>::new(), SafepointScheme::None);
    let handler_idx = inst.export_func("handler").unwrap();
    let main_idx = inst.export_func("main").unwrap();
    let mut ctx = Ctx {
        pending: Some(PendingCall {
            func: handler_idx,
            args: vec![Value::I32(2)],
        }),
        ..Default::default()
    };

    let mut t = Thread::new();
    match t.call(&mut inst, &mut ctx, main_idx, &[]) {
        // Never delivered: memory stays 0.
        RunResult::Done(v) => assert_eq!(v, vec![Value::I32(0)]),
        other => panic!("{other:?}"),
    }
    assert!(ctx.pending.is_some(), "signal still pending");
}

#[test]
fn recursion_overflow_traps() {
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([], []);
    let f = mb.declare(sig);
    mb.define(f, |b| {
        b.call(f);
    });
    mb.export("main", f);
    let module = mb.build();
    let mut inst = link(&module, &Linker::<Ctx>::new(), SafepointScheme::LoopHeaders);
    let mut ctx = Ctx::default();
    let main = inst.export_func("main").unwrap();
    let mut t = Thread::new();
    match t.call(&mut inst, &mut ctx, main, &[]) {
        RunResult::Trapped(Trap::StackOverflow) => {}
        other => panic!("{other:?}"),
    }
}

#[test]
fn fib_exercises_control_flow() {
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([ValType::I64], [ValType::I64]);
    let fib = mb.declare(sig);
    mb.define(fib, |b| {
        b.local_get(0).i64(2).lt_s64();
        b.if_(BlockType::Empty, |b| {
            b.local_get(0).ret();
        });
        b.local_get(0)
            .i64(1)
            .emit(wasm::instr::Instr::Bin(wasm::instr::BinOp::I64Sub))
            .call(fib);
        b.local_get(0)
            .i64(2)
            .emit(wasm::instr::Instr::Bin(wasm::instr::BinOp::I64Sub))
            .call(fib);
        b.add64();
    });
    mb.export("main", fib);
    let module = mb.build();
    let mut inst = link(
        &module,
        &Linker::<Ctx>::new(),
        SafepointScheme::FunctionEntry,
    );
    let mut ctx = Ctx::default();
    let main = inst.export_func("main").unwrap();
    let mut t = Thread::new();
    match t.call(&mut inst, &mut ctx, main, &[Value::I64(20)]) {
        RunResult::Done(v) => assert_eq!(v, vec![Value::I64(6765)]),
        other => panic!("{other:?}"),
    }
    assert!(t.steps > 1000, "fib(20) should take many steps");
}

#[test]
fn globals_and_memory_persist_across_calls() {
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(4));
    let g = mb.global(ValType::I64, true, wasm::module::ConstExpr::I64(0));
    let sig = mb.sig([], [ValType::I64]);
    let f = mb.func(sig, |b| {
        b.global_get(g).i64(1).add64().global_set(g);
        b.global_get(g);
    });
    mb.export("main", f);
    let module = mb.build();
    let mut inst = link(&module, &Linker::<Ctx>::new(), SafepointScheme::LoopHeaders);
    let mut ctx = Ctx::default();
    let main = inst.export_func("main").unwrap();
    for want in 1..=3i64 {
        let mut t = Thread::new();
        match t.call(&mut inst, &mut ctx, main, &[]) {
            RunResult::Done(v) => assert_eq!(v, vec![Value::I64(want)]),
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn br_table_dispatch() {
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.block(BlockType::Empty, |b| {
            b.block(BlockType::Empty, |b| {
                b.block(BlockType::Empty, |b| {
                    b.local_get(0);
                    b.emit(wasm::instr::Instr::BrTable(
                        vec![0, 1].into_boxed_slice(),
                        2,
                    ));
                });
                b.i32(100).ret();
            });
            b.i32(200).ret();
        });
        b.i32(300);
    });
    mb.export("main", f);
    let module = mb.build();
    let mut inst = link(&module, &Linker::<Ctx>::new(), SafepointScheme::LoopHeaders);
    let mut ctx = Ctx::default();
    let main = inst.export_func("main").unwrap();
    for (arg, want) in [(0, 100), (1, 200), (2, 300), (99, 300)] {
        let mut t = Thread::new();
        match t.call(&mut inst, &mut ctx, main, &[Value::I32(arg)]) {
            RunResult::Done(v) => assert_eq!(v, vec![Value::I32(want)], "arg {arg}"),
            other => panic!("{other:?}"),
        }
    }
}
