//! Backing equivalence: the paged copy-on-write store must be
//! unobservable relative to the flat reservation.
//!
//! Every program in the corpus is instantiated twice — flat backing and
//! paged backing — and executed with the same inputs under both fusion
//! settings; results, traps, globals and the full final memory image must
//! match exactly. A second family of tests drives the `Memory` API
//! directly through fork/write interleavings, checking the COW snapshot
//! against the deep-copy reference.

use std::sync::Arc;

use wasm::build::ModuleBuilder;
use wasm::host::Linker;
use wasm::instr::{BinOp, BlockType, Instr, LoadKind, MemArg, StoreKind};
use wasm::interp::{Instance, RunResult, Thread, Value};
use wasm::mem::Memory;
use wasm::prep::Program;
use wasm::safepoint::SafepointScheme;
use wasm::types::ValType;
use wasm::PAGE_SIZE;

/// Builds each corpus module fresh (ModuleBuilder is consumed by build).
fn corpus() -> Vec<(&'static str, wasm::Module, Vec<Value>)> {
    let mut out: Vec<(&'static str, wasm::Module, Vec<Value>)> = Vec::new();

    // Data-segment init + every load/store width, striding across pages.
    let mut mb = ModuleBuilder::new();
    mb.memory(3, Some(4));
    mb.data_at(64, b"segment seeded bytes");
    mb.data_at(PAGE_SIZE as u32 - 4, &[1, 2, 3, 4, 5, 6, 7, 8]); // straddles pages 0/1
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local(ValType::I32); // stride index (local 1)
        b.local(ValType::I32); // checksum accumulator (local 2)
                               // Write a stride pattern: mem[i*8191 .. +4] = i across 3 pages.
        b.loop_(BlockType::Empty, |b| {
            b.local_get(1).i32(8191).mul32();
            b.local_get(1).store32(0);
            b.local_get(1)
                .i32(1)
                .add32()
                .local_tee(1)
                .i32(24)
                .lt_s32()
                .br_if(0);
        });
        // Read the pattern back (mixed widths) plus the straddling bytes.
        b.i32(0).local_set(1);
        b.loop_(BlockType::Empty, |b| {
            b.local_get(2);
            b.local_get(1).i32(8191).mul32().load32(0);
            b.add32().local_set(2);
            b.local_get(2);
            b.local_get(1).i32(8191).mul32().load8u(0);
            b.add32().local_set(2);
            b.local_get(1)
                .i32(1)
                .add32()
                .local_tee(1)
                .i32(24)
                .lt_s32()
                .br_if(0);
        });
        b.local_get(2);
        b.i32(PAGE_SIZE as i32 - 4)
            .emit(Instr::Load(LoadKind::I64, MemArg::offset(0)))
            .wrap();
        b.add32();
        b.i32(64).load8u(0);
        b.add32().local_get(0).add32();
    });
    mb.export("main", f);
    out.push(("stride_widths", mb.build(), vec![Value::I32(7)]));

    // memory.grow + memory.fill + memory.copy over the grown region.
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(6));
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        // grow by 4 pages; fill a cross-page stripe; copy it forward.
        b.i32(4).emit(Instr::MemoryGrow).drop_();
        b.i32(PAGE_SIZE as i32 - 100)
            .i32(0xab)
            .i32(200)
            .emit(Instr::MemoryFill);
        b.i32(3 * PAGE_SIZE as i32 + 50)
            .i32(PAGE_SIZE as i32 - 100)
            .i32(200)
            .emit(Instr::MemoryCopy);
        // Overlapping copy (memmove semantics) inside the stripe.
        b.i32(PAGE_SIZE as i32 - 90)
            .i32(PAGE_SIZE as i32 - 100)
            .i32(60)
            .emit(Instr::MemoryCopy);
        // Checksum a few probes + the page count.
        b.i32(3 * PAGE_SIZE as i32 + 50).load8u(0);
        b.i32(PAGE_SIZE as i32 - 90).load8u(0);
        b.add32();
        b.i32(5 * PAGE_SIZE as i32 - 1).load8u(0); // untouched: zero
        b.add32();
        b.emit(Instr::MemorySize).add32();
        b.local_get(0).add32();
    });
    mb.export("main", f);
    out.push(("grow_fill_copy", mb.build(), vec![Value::I32(1)]));

    // Out-of-bounds trap parity on the paged backing.
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(1));
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local_get(0)
            .local_get(0)
            .emit(Instr::Store(StoreKind::I32, MemArg::offset(0)));
        b.local_get(0);
    });
    mb.export("main", f);
    out.push((
        "oob_store",
        mb.build(),
        vec![Value::I32(PAGE_SIZE as i32 - 2)],
    ));

    // Atomics on both backings (aligned RMW + cmpxchg).
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(1));
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.i32(128).local_get(0).store32(0);
        b.i32(128).load32(0);
        b.i32(64).load32(0); // untouched word reads zero
        b.emit(Instr::Bin(BinOp::I32Add));
    });
    mb.export("main", f);
    out.push(("zero_reads", mb.build(), vec![Value::I32(41)]));

    out
}

fn run(
    module: &wasm::Module,
    cow: bool,
    fuse: bool,
    args: &[Value],
) -> (RunResult, Vec<u64>, Vec<u8>) {
    let linker: Linker<()> = Linker::new();
    let program = Arc::new(
        Program::link_with(module, &linker, SafepointScheme::LoopHeaders, fuse).expect("link"),
    );
    let mut inst = Instance::new_with_cow(program, cow).expect("instantiate");
    assert_eq!(inst.memory.is_paged(), cow);
    let main = inst.export_func("main").expect("main export");
    let mut t = Thread::new();
    let r = t.call(&mut inst, &mut (), main, args);
    let image = inst.memory.read(0, inst.memory.size()).expect("image");
    (r, inst.globals.clone(), image)
}

#[test]
fn backings_are_observationally_equivalent() {
    for fuse in [true, false] {
        for (name, module, args) in corpus() {
            let (flat, gf, mf) = run(&module, false, fuse, &args);
            let (paged, gp, mp) = run(&module, true, fuse, &args);
            match (&flat, &paged) {
                (RunResult::Done(a), RunResult::Done(b)) => {
                    assert_eq!(a, b, "{name} (fuse={fuse}): results diverge")
                }
                (RunResult::Trapped(a), RunResult::Trapped(b)) => {
                    assert_eq!(a, b, "{name} (fuse={fuse}): traps diverge")
                }
                other => panic!("{name} (fuse={fuse}): outcome shape diverges: {other:?}"),
            }
            assert_eq!(gf, gp, "{name} (fuse={fuse}): globals diverge");
            assert_eq!(mf, mp, "{name} (fuse={fuse}): final memory diverges");
        }
    }
}

#[test]
fn paged_run_stays_lazy() {
    let (_, module, args) = corpus().remove(1); // grow_fill_copy
    let linker: Linker<()> = Linker::new();
    let program =
        Arc::new(Program::link_with(&module, &linker, SafepointScheme::LoopHeaders, true).unwrap());
    let mut inst = Instance::new_with_cow(program, true).unwrap();
    let main = inst.export_func("main").unwrap();
    let mut t = Thread::new();
    let r = t.call(&mut inst, &mut (), main, &args);
    assert!(matches!(r, RunResult::Done(_)));
    assert_eq!(inst.memory.pages(), 5, "grew to 5 pages");
    assert!(
        inst.memory.resident_pages() < inst.memory.pages(),
        "untouched grown pages must not materialize: resident={} pages={}",
        inst.memory.resident_pages(),
        inst.memory.pages()
    );
}

/// A deterministic op script applied to a (parent, child-after-fork)
/// pair; the same script must produce identical bytes on the COW pair and
/// on the deep-copy pair.
#[derive(Clone, Copy)]
enum ForkOp {
    /// Write `len` bytes of `val` at `addr` on the parent (0) / child (1).
    Write(u8, u32, u8, u32),
    /// Fill on one side.
    Fill(u8, u32, u8, u32),
    /// Release a range on one side.
    Release(u8, u32, u32),
}

fn apply(m: &Memory, side: &Memory, op: ForkOp) {
    let pick = |who: u8| if who == 0 { m } else { side };
    match op {
        ForkOp::Write(who, addr, val, len) => {
            let bytes = vec![val; len as usize];
            pick(who).write(addr as u64, &bytes).unwrap();
        }
        ForkOp::Fill(who, addr, val, len) => {
            pick(who).fill(addr as u64, val, len as u64).unwrap();
        }
        ForkOp::Release(who, addr, len) => {
            pick(who).release(addr as u64, len as u64).unwrap();
        }
    }
}

#[test]
fn fork_write_interleavings_match_deep_copy() {
    let page = PAGE_SIZE as u32;
    let scripts: Vec<Vec<ForkOp>> = vec![
        // Parent writes after fork; child must keep the snapshot.
        vec![
            ForkOp::Write(0, 100, 0x11, 64),
            ForkOp::Write(0, 100, 0x22, 64),
            ForkOp::Write(1, page + 10, 0x33, 32),
        ],
        // Child writes first (COW copy on the child side).
        vec![
            ForkOp::Write(1, 0, 0xaa, 128),
            ForkOp::Write(0, 0, 0xbb, 128),
            ForkOp::Write(1, 64, 0xcc, 16),
        ],
        // Cross-page writes and whole-page release interleaved.
        vec![
            ForkOp::Write(1, page - 8, 0x5a, 16),
            ForkOp::Release(0, page, page),
            ForkOp::Write(0, 2 * page + 7, 0x66, 9),
            ForkOp::Fill(1, 2 * page, 0x77, 64),
            ForkOp::Release(1, 0, 2 * page),
        ],
    ];
    for (si, script) in scripts.iter().enumerate() {
        let run_pair = |paged: bool| -> (Vec<u8>, Vec<u8>) {
            let parent = Memory::with_backing(4, Some(4), paged);
            // Pre-fork state: two dirty pages, one straddling write.
            parent.write(50, b"pre-fork parent state").unwrap();
            parent
                .write(PAGE_SIZE as u64 - 4, &[9, 8, 7, 6, 5, 4, 3, 2])
                .unwrap();
            let child = parent.fork_clone();
            for &op in script {
                apply(&parent, &child, op);
            }
            (
                parent.read(0, parent.size()).unwrap(),
                child.read(0, child.size()).unwrap(),
            )
        };
        let (pf, cf) = run_pair(false);
        let (pp, cp) = run_pair(true);
        assert_eq!(pf, pp, "script {si}: parent images diverge");
        assert_eq!(cf, cp, "script {si}: child images diverge");
    }
}

#[test]
fn cow_fork_shares_until_first_write() {
    let parent = Memory::new_paged(16, Some(16));
    for p in 0..8u64 {
        parent
            .store::<8>(p * PAGE_SIZE as u64, [p as u8; 8])
            .unwrap();
    }
    assert_eq!(parent.resident_pages(), 8);
    let child = parent.fork_clone();
    assert_eq!(child.resident_pages(), 8, "fork is O(dirty), shared");
    // One child write copies exactly one page; the rest stay shared.
    child.store::<1>(3 * PAGE_SIZE as u64, [0xff]).unwrap();
    for p in 0..8u64 {
        let expect = if p == 3 { 0xff } else { p as u8 };
        assert_eq!(child.load::<1>(p * PAGE_SIZE as u64).unwrap(), [expect]);
        assert_eq!(parent.load::<1>(p * PAGE_SIZE as u64).unwrap(), [p as u8]);
    }
}
