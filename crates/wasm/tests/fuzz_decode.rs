//! Robustness: the decoder and validator must never panic on arbitrary
//! input — malformed modules are rejected with errors, not crashes. This
//! is the property that lets WALI engines accept untrusted binaries.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn decoder_never_panics_on_random_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = wasm::decode::decode(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_header_plus_noise(noise in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut bytes = b"\0asm\x01\0\0\0".to_vec();
        bytes.extend_from_slice(&noise);
        // Decoding may fail; validating anything that decodes must not panic.
        if let Ok(module) = wasm::decode::decode(&bytes) {
            let _ = wasm::validate::validate(&module);
        }
    }

    #[test]
    fn mutated_valid_modules_never_panic(
        seed in any::<u8>(),
        flips in proptest::collection::vec((0usize..4096, any::<u8>()), 1..16),
    ) {
        // Start from a real module and corrupt it.
        let mut mb = wasm::build::ModuleBuilder::new();
        mb.memory(1, Some(2));
        let sig = mb.sig([wasm::types::ValType::I32], [wasm::types::ValType::I32]);
        let f = mb.func(sig, |b| {
            b.local_get(0).i32(seed as i32).add32();
        });
        mb.export("main", f);
        let mut bytes = wasm::encode::encode(&mb.build());
        for (pos, val) in flips {
            let len = bytes.len();
            bytes[pos % len] = val;
        }
        if let Ok(module) = wasm::decode::decode(&bytes) {
            let _ = wasm::validate::validate(&module);
        }
    }
}
