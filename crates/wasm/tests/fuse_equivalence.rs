//! Dispatch equivalence: superinstruction fusion must be unobservable.
//!
//! Every program in the corpus is prepared twice — fusion enabled and
//! disabled — and executed with the same inputs; results, traps, final
//! memory and globals must match exactly. The corpus leans on the fused
//! patterns (`local.get local.get binop`, `const binop`, compare+`br_if`,
//! `local.get` + load) including the edge cases the fusion barrier
//! protects: branch targets landing between fusible ops.

use std::sync::Arc;

use wasm::build::ModuleBuilder;
use wasm::host::Linker;
use wasm::instr::{BinOp, BlockType, Instr, LoadKind, MemArg, RelOp, StoreKind};
use wasm::interp::{Instance, RunResult, Thread, Value};
use wasm::prep::{Op, Program};
use wasm::safepoint::SafepointScheme;
use wasm::types::ValType;

/// Builds each corpus module fresh (ModuleBuilder is consumed by build).
fn corpus() -> Vec<(&'static str, wasm::Module, Vec<Value>)> {
    let mut out: Vec<(&'static str, wasm::Module, Vec<Value>)> = Vec::new();

    // local.get+local.get+binop and local.get+const+binop in a counted
    // loop with compare+br_if as the back edge.
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local(ValType::I32); // acc = local 1
        b.local(ValType::I32); // i   = local 2
        b.emit(Instr::Block(BlockType::Empty))
            .emit(Instr::Loop(BlockType::Empty))
            // if i >= n break
            .local_get(2)
            .local_get(0)
            .emit(Instr::Rel(RelOp::I32GeS))
            .emit(Instr::BrIf(1))
            // acc = acc + i*31
            .local_get(1)
            .local_get(2)
            .i32(31)
            .emit(Instr::Bin(BinOp::I32Mul))
            .emit(Instr::Bin(BinOp::I32Add))
            .local_set(1)
            // i += 1
            .local_get(2)
            .i32(1)
            .emit(Instr::Bin(BinOp::I32Add))
            .local_set(2)
            .emit(Instr::Br(0))
            .emit(Instr::End)
            .emit(Instr::End)
            .local_get(1);
    });
    mb.export("main", f);
    out.push(("loop_arith", mb.build(), vec![Value::I32(100)]));

    // local.get + load / store round trip over memory.
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(2));
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local(ValType::I32);
        // mem[64] = n * 3
        b.i32(64)
            .local_get(0)
            .i32(3)
            .emit(Instr::Bin(BinOp::I32Mul))
            .emit(Instr::Store(StoreKind::I32, MemArg::offset(0)))
            // return mem[64] + n  (local.get + i32.load fuses)
            .local_get(0)
            .emit(Instr::Load(LoadKind::I32, MemArg::offset(64)))
            .local_get(0)
            .emit(Instr::Bin(BinOp::I32Add));
    });
    mb.export("main", f);
    out.push(("load_store", mb.build(), vec![Value::I32(0)]));

    // if/else with a fused compare condition (Rel + BrIfZero).
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([ValType::I32, ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local_get(0)
            .local_get(1)
            .emit(Instr::Rel(RelOp::I32LtS))
            .emit(Instr::If(BlockType::Value(ValType::I32)))
            .i32(-1)
            .emit(Instr::Else)
            .local_get(0)
            .local_get(1)
            .emit(Instr::Bin(BinOp::I32Sub))
            .emit(Instr::End);
    });
    mb.export("main", f);
    out.push((
        "if_else_cmp",
        mb.build(),
        vec![Value::I32(9), Value::I32(4)],
    ));
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([ValType::I32, ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local_get(0)
            .local_get(1)
            .emit(Instr::Rel(RelOp::I32LtS))
            .emit(Instr::If(BlockType::Value(ValType::I32)))
            .i32(-1)
            .emit(Instr::Else)
            .local_get(0)
            .local_get(1)
            .emit(Instr::Bin(BinOp::I32Sub))
            .emit(Instr::End);
    });
    mb.export("main", f);
    out.push((
        "if_else_cmp_taken",
        mb.build(),
        vec![Value::I32(2), Value::I32(4)],
    ));

    // Forward branch landing exactly *on* a fusible pair: the block end
    // coincides with the const, so a fused const+binop starting at the
    // target is legal (the jump executes the whole superinstruction) —
    // both the taken and fall-through paths must agree.
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local(ValType::I32);
        b.local_get(0)
            .local_set(1)
            .local_get(1) // value flowing out of the block
            .emit(Instr::Block(BlockType::Empty))
            .local_get(0)
            .emit(Instr::BrIf(0)) // jumps to End: next op executes
            .emit(Instr::End)
            // target lands here: const+binop where the const predates the
            // barrier in the unfused stream
            .i32(7)
            .emit(Instr::Bin(BinOp::I32Add));
    });
    mb.export("main", f);
    out.push(("branch_into_pair", mb.build(), vec![Value::I32(5)]));

    // Trap parity: division by zero behind a fused const divisor.
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local_get(0).i32(0).emit(Instr::Bin(BinOp::I32DivS));
    });
    mb.export("main", f);
    out.push(("div_by_zero_const", mb.build(), vec![Value::I32(10)]));

    // Trap parity: OOB via the fused local.get+load.
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(1));
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local_get(0)
            .emit(Instr::Load(LoadKind::I32, MemArg::offset(0)));
    });
    mb.export("main", f);
    out.push(("oob_local_load", mb.build(), vec![Value::I32(70000)]));

    // Loop header landing *between* fusible ops: the address is pushed
    // before the loop and the load is the loop's first op, so the
    // back-edge targets the load. Fusing local.get+load here would make
    // iterations 2+ skip the load; the fusion barrier must prevent it.
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(1));
    let loop_sig;
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    {
        loop_sig = mb.sig([ValType::I32], [ValType::I32]);
    }
    let f = mb.func(sig, |b| {
        b.local(ValType::I32); // counter = local 1
        b.i32(3)
            .local_set(1)
            .local_get(0) // addr, becomes the loop parameter
            .emit(Instr::Loop(BlockType::Func(loop_sig)))
            .emit(Instr::Load(LoadKind::I32, MemArg::offset(0))) // loop header region
            .emit(Instr::Drop)
            .local_get(0) // fresh addr for the back edge / result
            .local_get(1)
            .i32(1)
            .emit(Instr::Bin(BinOp::I32Sub))
            .local_tee(1)
            .emit(Instr::BrIf(0))
            .emit(Instr::End);
    });
    mb.export("main", f);
    out.push(("loop_header_load", mb.build(), vec![Value::I32(8)]));

    // br_table with fused arithmetic in the arms.
    for (name, v) in [
        ("br_table_0", 0),
        ("br_table_1", 1),
        ("br_table_default", 9),
    ] {
        let mut mb2 = ModuleBuilder::new();
        let sig = mb2.sig([ValType::I32], [ValType::I32]);
        let f2 = mb2.func(sig, |b| {
            b.local(ValType::I32);
            b.emit(Instr::Block(BlockType::Empty))
                .emit(Instr::Block(BlockType::Empty))
                .emit(Instr::Block(BlockType::Empty))
                .local_get(0)
                .emit(Instr::BrTable(Box::new([0, 1]), 2))
                .emit(Instr::End)
                .local_get(0)
                .i32(10)
                .emit(Instr::Bin(BinOp::I32Add))
                .local_set(1)
                .emit(Instr::Br(1))
                .emit(Instr::End)
                .local_get(0)
                .i32(20)
                .emit(Instr::Bin(BinOp::I32Add))
                .local_set(1)
                .emit(Instr::End)
                .local_get(1);
        });
        mb2.export("main", f2);
        out.push((name, mb2.build(), vec![Value::I32(v)]));
    }

    out
}

fn run(
    module: &wasm::Module,
    fuse: bool,
    args: &[Value],
    scheme: SafepointScheme,
) -> (RunResult, Vec<u64>) {
    let linker: Linker<()> = Linker::new();
    let program = Arc::new(Program::link_with(module, &linker, scheme, fuse).expect("link"));
    assert_eq!(program.fused, fuse);
    let mut inst = Instance::new(program).expect("instantiate");
    let main = inst.export_func("main").expect("main export");
    let mut t = Thread::new();
    let r = t.call(&mut inst, &mut (), main, args);
    (r, inst.globals.clone())
}

fn fused_op_count(module: &wasm::Module, fuse: bool) -> usize {
    let linker: Linker<()> = Linker::new();
    let program =
        Arc::new(Program::link_with(module, &linker, SafepointScheme::LoopHeaders, fuse).unwrap());
    program
        .funcs
        .iter()
        .filter_map(|f| match f {
            wasm::prep::FuncDef::Local(p) => Some(
                p.ops
                    .iter()
                    .filter(|o| {
                        matches!(
                            o,
                            Op::LocalLocalBin(..)
                                | Op::LocalConstBin(..)
                                | Op::ConstBin(..)
                                | Op::RelBrIf(..)
                                | Op::RelBrIfZero(..)
                                | Op::LocalLoad(..)
                        )
                    })
                    .count(),
            ),
            _ => None,
        })
        .sum()
}

#[test]
fn fusion_is_observationally_equivalent() {
    for scheme in [
        SafepointScheme::None,
        SafepointScheme::LoopHeaders,
        SafepointScheme::EveryInstruction,
    ] {
        for (name, module, args) in corpus() {
            let (fused, g1) = run(&module, true, &args, scheme);
            let (unfused, g2) = run(&module, false, &args, scheme);
            match (&fused, &unfused) {
                (RunResult::Done(a), RunResult::Done(b)) => {
                    assert_eq!(a, b, "{name} ({scheme:?}): results diverge")
                }
                (RunResult::Trapped(a), RunResult::Trapped(b)) => {
                    assert_eq!(a, b, "{name} ({scheme:?}): traps diverge")
                }
                other => panic!("{name} ({scheme:?}): outcome shape diverges: {other:?}"),
            }
            assert_eq!(g1, g2, "{name} ({scheme:?}): globals diverge");
        }
    }
}

#[test]
fn fusion_actually_fires_on_the_corpus() {
    let mut total_fused = 0;
    for (name, module, _) in corpus() {
        let n = fused_op_count(&module, true);
        assert_eq!(
            fused_op_count(&module, false),
            0,
            "{name}: unfused link emits fused ops"
        );
        total_fused += n;
    }
    assert!(
        total_fused >= 10,
        "corpus should exercise fusion, got {total_fused} fused ops"
    );
}

#[test]
fn barrier_blocks_fusion_across_branch_targets() {
    // A branch target on a fused pair's *start* is fine: in
    // `branch_into_pair` both paths (taken / fall-through) land on the
    // const+add superinstruction and must produce n+7.
    let (_, module, _) = corpus()
        .into_iter()
        .find(|(n, _, _)| *n == "branch_into_pair")
        .unwrap();
    for arg in [0, 5] {
        let (r, _) = run(
            &module,
            true,
            &[Value::I32(arg)],
            SafepointScheme::LoopHeaders,
        );
        match r {
            RunResult::Done(v) => assert_eq!(v, vec![Value::I32(arg + 7)]),
            other => panic!("{other:?}"),
        }
    }

    // A branch target *between* the ops of a would-be pair must block
    // fusion: in `loop_header_load` (scheme None, so no safepoint pads
    // the header) the back edge lands on the load whose address operand
    // was pushed before the loop — the load must stay unfused.
    let (_, module, _) = corpus()
        .into_iter()
        .find(|(n, _, _)| *n == "loop_header_load")
        .unwrap();
    let linker: Linker<()> = Linker::new();
    let program =
        Arc::new(Program::link_with(&module, &linker, SafepointScheme::None, true).unwrap());
    let has_plain_load = program.funcs.iter().any(|f| match f {
        wasm::prep::FuncDef::Local(p) => p.ops.iter().any(|o| matches!(o, Op::Load(..))),
        _ => false,
    });
    let has_fused_load = program.funcs.iter().any(|f| match f {
        wasm::prep::FuncDef::Local(p) => p.ops.iter().any(|o| matches!(o, Op::LocalLoad(..))),
        _ => false,
    });
    assert!(
        has_plain_load,
        "the loop-header load must not fuse across the back edge"
    );
    assert!(!has_fused_load);
}
