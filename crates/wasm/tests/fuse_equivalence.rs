//! Tier equivalence: neither superinstruction fusion nor the tier-2
//! register IR may be observable.
//!
//! Every program in the corpus is prepared on all three execution tiers
//! — unfused stack, fused stack, register IR — and executed with the
//! same inputs; results, traps, final memory and globals must match
//! exactly. The corpus leans on the fused patterns (`local.get
//! local.get binop`, `const binop`, compare+`br_if`, `local.get` +
//! load) and on stack shapes that stress the register lowering: deep
//! operand stacks, `br_table` back edges into loop headers, multi-value
//! blocks, branch targets landing on fused heads, and lazy values
//! parked below a branch boundary.

use std::sync::Arc;

use wasm::build::ModuleBuilder;
use wasm::host::Linker;
use wasm::instr::{BinOp, BlockType, Instr, LoadKind, MemArg, RelOp, StoreKind};
use wasm::interp::{Instance, RunResult, Thread, Value};
use wasm::prep::{Op, Program};
use wasm::safepoint::SafepointScheme;
use wasm::types::ValType;

/// Builds each corpus module fresh (ModuleBuilder is consumed by build).
fn corpus() -> Vec<(&'static str, wasm::Module, Vec<Value>)> {
    let mut out: Vec<(&'static str, wasm::Module, Vec<Value>)> = Vec::new();

    // local.get+local.get+binop and local.get+const+binop in a counted
    // loop with compare+br_if as the back edge.
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local(ValType::I32); // acc = local 1
        b.local(ValType::I32); // i   = local 2
        b.emit(Instr::Block(BlockType::Empty))
            .emit(Instr::Loop(BlockType::Empty))
            // if i >= n break
            .local_get(2)
            .local_get(0)
            .emit(Instr::Rel(RelOp::I32GeS))
            .emit(Instr::BrIf(1))
            // acc = acc + i*31
            .local_get(1)
            .local_get(2)
            .i32(31)
            .emit(Instr::Bin(BinOp::I32Mul))
            .emit(Instr::Bin(BinOp::I32Add))
            .local_set(1)
            // i += 1
            .local_get(2)
            .i32(1)
            .emit(Instr::Bin(BinOp::I32Add))
            .local_set(2)
            .emit(Instr::Br(0))
            .emit(Instr::End)
            .emit(Instr::End)
            .local_get(1);
    });
    mb.export("main", f);
    out.push(("loop_arith", mb.build(), vec![Value::I32(100)]));

    // local.get + load / store round trip over memory.
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(2));
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local(ValType::I32);
        // mem[64] = n * 3
        b.i32(64)
            .local_get(0)
            .i32(3)
            .emit(Instr::Bin(BinOp::I32Mul))
            .emit(Instr::Store(StoreKind::I32, MemArg::offset(0)))
            // return mem[64] + n  (local.get + i32.load fuses)
            .local_get(0)
            .emit(Instr::Load(LoadKind::I32, MemArg::offset(64)))
            .local_get(0)
            .emit(Instr::Bin(BinOp::I32Add));
    });
    mb.export("main", f);
    out.push(("load_store", mb.build(), vec![Value::I32(0)]));

    // if/else with a fused compare condition (Rel + BrIfZero).
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([ValType::I32, ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local_get(0)
            .local_get(1)
            .emit(Instr::Rel(RelOp::I32LtS))
            .emit(Instr::If(BlockType::Value(ValType::I32)))
            .i32(-1)
            .emit(Instr::Else)
            .local_get(0)
            .local_get(1)
            .emit(Instr::Bin(BinOp::I32Sub))
            .emit(Instr::End);
    });
    mb.export("main", f);
    out.push((
        "if_else_cmp",
        mb.build(),
        vec![Value::I32(9), Value::I32(4)],
    ));
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([ValType::I32, ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local_get(0)
            .local_get(1)
            .emit(Instr::Rel(RelOp::I32LtS))
            .emit(Instr::If(BlockType::Value(ValType::I32)))
            .i32(-1)
            .emit(Instr::Else)
            .local_get(0)
            .local_get(1)
            .emit(Instr::Bin(BinOp::I32Sub))
            .emit(Instr::End);
    });
    mb.export("main", f);
    out.push((
        "if_else_cmp_taken",
        mb.build(),
        vec![Value::I32(2), Value::I32(4)],
    ));

    // Forward branch landing exactly *on* a fusible pair: the block end
    // coincides with the const, so a fused const+binop starting at the
    // target is legal (the jump executes the whole superinstruction) —
    // both the taken and fall-through paths must agree.
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local(ValType::I32);
        b.local_get(0)
            .local_set(1)
            .local_get(1) // value flowing out of the block
            .emit(Instr::Block(BlockType::Empty))
            .local_get(0)
            .emit(Instr::BrIf(0)) // jumps to End: next op executes
            .emit(Instr::End)
            // target lands here: const+binop where the const predates the
            // barrier in the unfused stream
            .i32(7)
            .emit(Instr::Bin(BinOp::I32Add));
    });
    mb.export("main", f);
    out.push(("branch_into_pair", mb.build(), vec![Value::I32(5)]));

    // Trap parity: division by zero behind a fused const divisor.
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local_get(0).i32(0).emit(Instr::Bin(BinOp::I32DivS));
    });
    mb.export("main", f);
    out.push(("div_by_zero_const", mb.build(), vec![Value::I32(10)]));

    // Trap parity: OOB via the fused local.get+load.
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(1));
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local_get(0)
            .emit(Instr::Load(LoadKind::I32, MemArg::offset(0)));
    });
    mb.export("main", f);
    out.push(("oob_local_load", mb.build(), vec![Value::I32(70000)]));

    // Loop header landing *between* fusible ops: the address is pushed
    // before the loop and the load is the loop's first op, so the
    // back-edge targets the load. Fusing local.get+load here would make
    // iterations 2+ skip the load; the fusion barrier must prevent it.
    let mut mb = ModuleBuilder::new();
    mb.memory(1, Some(1));
    let loop_sig;
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    {
        loop_sig = mb.sig([ValType::I32], [ValType::I32]);
    }
    let f = mb.func(sig, |b| {
        b.local(ValType::I32); // counter = local 1
        b.i32(3)
            .local_set(1)
            .local_get(0) // addr, becomes the loop parameter
            .emit(Instr::Loop(BlockType::Func(loop_sig)))
            .emit(Instr::Load(LoadKind::I32, MemArg::offset(0))) // loop header region
            .emit(Instr::Drop)
            .local_get(0) // fresh addr for the back edge / result
            .local_get(1)
            .i32(1)
            .emit(Instr::Bin(BinOp::I32Sub))
            .local_tee(1)
            .emit(Instr::BrIf(0))
            .emit(Instr::End);
    });
    mb.export("main", f);
    out.push(("loop_header_load", mb.build(), vec![Value::I32(8)]));

    // Deep operand stack: 16 pending values folded by a chain of adds —
    // the register lowering must track every canonical slot.
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        for i in 0..8 {
            b.local_get(0).i32(i + 1);
        }
        for _ in 0..15 {
            b.emit(Instr::Bin(BinOp::I32Add));
        }
    });
    mb.export("main", f);
    out.push(("deep_stack", mb.build(), vec![Value::I32(6)]));

    // br_table whose default arm is the back edge into a loop header:
    // every dispatch of the table re-enters the label barrier.
    let mut mb = ModuleBuilder::new();
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local(ValType::I32); // i = local 1
        b.emit(Instr::Block(BlockType::Empty))
            .emit(Instr::Loop(BlockType::Empty))
            .local_get(1)
            .i32(1)
            .emit(Instr::Bin(BinOp::I32Add))
            .local_set(1)
            .local_get(1)
            .local_get(0)
            .emit(Instr::Rel(RelOp::I32LtS))
            // 0 (done) -> depth 1 exits the block; 1 (continue) -> the
            // default, depth 0, jumps back to the loop header.
            .emit(Instr::BrTable(Box::new([1]), 0))
            .emit(Instr::End)
            .emit(Instr::End)
            .local_get(1);
    });
    mb.export("main", f);
    out.push(("br_table_loop_header", mb.build(), vec![Value::I32(5)]));

    // Multi-value block: a conditional branch carries *two* values out
    // (keep = 2); the fallthrough edits one of them first.
    for (name, v) in [("multi_value_taken", 4), ("multi_value_fall", 0)] {
        let mut mb2 = ModuleBuilder::new();
        let sig = mb2.sig([ValType::I32], [ValType::I32]);
        let pair = mb2.sig([], [ValType::I32, ValType::I32]);
        let f2 = mb2.func(sig, |b| {
            b.emit(Instr::Block(BlockType::Func(pair)))
                .local_get(0)
                .i32(1)
                .emit(Instr::Bin(BinOp::I32Add)) // a = n + 1
                .local_get(0)
                .i32(3)
                .emit(Instr::Bin(BinOp::I32Mul)) // b = n * 3
                .local_get(0)
                .emit(Instr::BrIf(0)) // taken: yields (a, b)
                .i32(7)
                .emit(Instr::Bin(BinOp::I32Add)) // fallthrough: (a, b + 7)
                .emit(Instr::End)
                .emit(Instr::Bin(BinOp::I32Add));
        });
        mb2.export("main", f2);
        out.push((name, mb2.build(), vec![Value::I32(v)]));
    }

    // A lazy constant parked *below* the branch boundary: the br_if
    // drops to a height above it, so the lowering must still spill it
    // before the branch (the taken path reads it after the block).
    for (name, v) in [
        ("lazy_below_branch_taken", 3),
        ("lazy_below_branch_fall", 0),
    ] {
        let mut mb2 = ModuleBuilder::new();
        let sig = mb2.sig([ValType::I32], [ValType::I32]);
        let one = mb2.sig([], [ValType::I32]);
        let f2 = mb2.func(sig, |b| {
            b.i32(42) // stays below the block for its whole lifetime
                .emit(Instr::Block(BlockType::Func(one)))
                .local_get(0)
                .i32(5)
                .emit(Instr::Bin(BinOp::I32Mul))
                .local_get(0)
                .emit(Instr::BrIf(0)) // carries n*5 out, over the 42
                .i32(1)
                .emit(Instr::Bin(BinOp::I32Add))
                .emit(Instr::End)
                .emit(Instr::Bin(BinOp::I32Add)); // 42 + result
        });
        mb2.export("main", f2);
        out.push((name, mb2.build(), vec![Value::I32(v)]));
    }

    // Local wasm→wasm calls: arguments must land in the callee's
    // canonical registers, results back in the caller's.
    let mut mb = ModuleBuilder::new();
    let helper_sig = mb.sig([ValType::I32], [ValType::I32]);
    let helper = mb.func(helper_sig, |b| {
        b.local_get(0)
            .i32(2)
            .emit(Instr::Bin(BinOp::I32Mul))
            .i32(1)
            .emit(Instr::Bin(BinOp::I32Add));
    });
    let sig = mb.sig([ValType::I32], [ValType::I32]);
    let f = mb.func(sig, |b| {
        b.local_get(0)
            .call(helper)
            .local_get(0)
            .i32(1)
            .emit(Instr::Bin(BinOp::I32Add))
            .call(helper)
            .emit(Instr::Bin(BinOp::I32Add));
    });
    mb.export("main", f);
    out.push(("call_chain", mb.build(), vec![Value::I32(10)]));

    // br_table with fused arithmetic in the arms.
    for (name, v) in [
        ("br_table_0", 0),
        ("br_table_1", 1),
        ("br_table_default", 9),
    ] {
        let mut mb2 = ModuleBuilder::new();
        let sig = mb2.sig([ValType::I32], [ValType::I32]);
        let f2 = mb2.func(sig, |b| {
            b.local(ValType::I32);
            b.emit(Instr::Block(BlockType::Empty))
                .emit(Instr::Block(BlockType::Empty))
                .emit(Instr::Block(BlockType::Empty))
                .local_get(0)
                .emit(Instr::BrTable(Box::new([0, 1]), 2))
                .emit(Instr::End)
                .local_get(0)
                .i32(10)
                .emit(Instr::Bin(BinOp::I32Add))
                .local_set(1)
                .emit(Instr::Br(1))
                .emit(Instr::End)
                .local_get(0)
                .i32(20)
                .emit(Instr::Bin(BinOp::I32Add))
                .local_set(1)
                .emit(Instr::End)
                .local_get(1);
        });
        mb2.export("main", f2);
        out.push((name, mb2.build(), vec![Value::I32(v)]));
    }

    out
}

/// The three execution tiers, in ascending order of preparation.
const TIERS: [(&str, bool, bool); 3] = [
    ("unfused", false, false),
    ("fused", true, false),
    ("regir", true, true),
];

fn run(
    module: &wasm::Module,
    (tier, fuse, regir): (&str, bool, bool),
    args: &[Value],
    scheme: SafepointScheme,
) -> (RunResult, Vec<u64>) {
    let linker: Linker<()> = Linker::new();
    let program =
        Arc::new(Program::link_tiered(module, &linker, scheme, fuse, regir).expect("link"));
    assert_eq!(program.fused, fuse);
    // Requesting the register tier must actually produce it — a silent
    // bail-out to the stack tier would hollow this suite out.
    assert_eq!(program.regir, regir, "{tier}: lowering must fire");
    let mut inst = Instance::new(program).expect("instantiate");
    let main = inst.export_func("main").expect("main export");
    let mut t = Thread::new();
    let r = t.call(&mut inst, &mut (), main, args);
    (r, inst.globals.clone())
}

fn fused_op_count(module: &wasm::Module, fuse: bool) -> usize {
    let linker: Linker<()> = Linker::new();
    let program =
        Arc::new(Program::link_with(module, &linker, SafepointScheme::LoopHeaders, fuse).unwrap());
    program
        .funcs
        .iter()
        .filter_map(|f| match f {
            wasm::prep::FuncDef::Local(p) => Some(
                p.ops
                    .iter()
                    .filter(|o| {
                        matches!(
                            o,
                            Op::LocalLocalBin(..)
                                | Op::LocalConstBin(..)
                                | Op::ConstBin(..)
                                | Op::RelBrIf(..)
                                | Op::RelBrIfZero(..)
                                | Op::LocalLoad(..)
                        )
                    })
                    .count(),
            ),
            _ => None,
        })
        .sum()
}

#[test]
fn tiers_are_observationally_equivalent() {
    for scheme in [
        SafepointScheme::None,
        SafepointScheme::LoopHeaders,
        SafepointScheme::EveryInstruction,
    ] {
        for (name, module, args) in corpus() {
            let (baseline, g0) = run(&module, TIERS[0], &args, scheme);
            for tier in &TIERS[1..] {
                let (r, g) = run(&module, *tier, &args, scheme);
                match (&baseline, &r) {
                    (RunResult::Done(a), RunResult::Done(b)) => {
                        assert_eq!(a, b, "{name} ({scheme:?}, {}): results diverge", tier.0)
                    }
                    (RunResult::Trapped(a), RunResult::Trapped(b)) => {
                        assert_eq!(a, b, "{name} ({scheme:?}, {}): traps diverge", tier.0)
                    }
                    other => panic!(
                        "{name} ({scheme:?}, {}): outcome shape diverges: {other:?}",
                        tier.0
                    ),
                }
                assert_eq!(g0, g, "{name} ({scheme:?}, {}): globals diverge", tier.0);
            }
        }
    }
}

#[test]
fn fusion_actually_fires_on_the_corpus() {
    let mut total_fused = 0;
    for (name, module, _) in corpus() {
        let n = fused_op_count(&module, true);
        assert_eq!(
            fused_op_count(&module, false),
            0,
            "{name}: unfused link emits fused ops"
        );
        total_fused += n;
    }
    assert!(
        total_fused >= 10,
        "corpus should exercise fusion, got {total_fused} fused ops"
    );
}

#[test]
fn barrier_blocks_fusion_across_branch_targets() {
    // A branch target on a fused pair's *start* is fine: in
    // `branch_into_pair` both paths (taken / fall-through) land on the
    // const+add superinstruction and must produce n+7.
    let (_, module, _) = corpus()
        .into_iter()
        .find(|(n, _, _)| *n == "branch_into_pair")
        .unwrap();
    for arg in [0, 5] {
        for tier in TIERS {
            let (r, _) = run(
                &module,
                tier,
                &[Value::I32(arg)],
                SafepointScheme::LoopHeaders,
            );
            match r {
                RunResult::Done(v) => assert_eq!(v, vec![Value::I32(arg + 7)], "{}", tier.0),
                other => panic!("{}: {other:?}", tier.0),
            }
        }
    }

    // A branch target *between* the ops of a would-be pair must block
    // fusion: in `loop_header_load` (scheme None, so no safepoint pads
    // the header) the back edge lands on the load whose address operand
    // was pushed before the loop — the load must stay unfused.
    let (_, module, _) = corpus()
        .into_iter()
        .find(|(n, _, _)| *n == "loop_header_load")
        .unwrap();
    let linker: Linker<()> = Linker::new();
    let program =
        Arc::new(Program::link_with(&module, &linker, SafepointScheme::None, true).unwrap());
    let has_plain_load = program.funcs.iter().any(|f| match f {
        wasm::prep::FuncDef::Local(p) => p.ops.iter().any(|o| matches!(o, Op::Load(..))),
        _ => false,
    });
    let has_fused_load = program.funcs.iter().any(|f| match f {
        wasm::prep::FuncDef::Local(p) => p.ops.iter().any(|o| matches!(o, Op::LocalLoad(..))),
        _ => false,
    });
    assert!(
        has_plain_load,
        "the loop-header load must not fuse across the back edge"
    );
    assert!(!has_fused_load);
}

#[test]
fn register_tier_collapses_dispatches() {
    let (_, module, args) = corpus()
        .into_iter()
        .find(|(n, _, _)| *n == "loop_arith")
        .unwrap();
    let steps = |(_, fuse, regir): (&str, bool, bool)| {
        let linker: Linker<()> = Linker::new();
        let program = Arc::new(
            Program::link_tiered(&module, &linker, SafepointScheme::LoopHeaders, fuse, regir)
                .unwrap(),
        );
        let mut inst = Instance::new(program).expect("instantiate");
        let main = inst.export_func("main").unwrap();
        let mut t = Thread::new();
        match t.call(&mut inst, &mut (), main, &args) {
            RunResult::Done(_) => {}
            other => panic!("{other:?}"),
        }
        (t.steps, t.reg_steps)
    };
    let (fused, fused_reg) = steps(TIERS[1]);
    let (regir, regir_reg) = steps(TIERS[2]);
    assert_eq!(
        fused_reg, 0,
        "stack tier must not count register dispatches"
    );
    assert_eq!(
        regir_reg, regir,
        "register tier runs entirely in the register loop"
    );
    assert!(
        regir < fused,
        "register IR should collapse dispatches: {regir} vs {fused}"
    );
}
