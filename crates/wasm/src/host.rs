//! Host-function linking — the extension point kernel interfaces plug into.
//!
//! A [`Linker`] maps `(module, name)` import pairs to host closures. WALI
//! registers ~150 `("wali", "SYS_*")` functions; WASI-over-WALI registers
//! `("wasi_snapshot_preview1", *)` functions that are themselves written
//! against WALI. The generic parameter `T` is the embedder context (e.g.
//! `wali::WaliContext`) threaded into every host call.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use crate::error::Trap;
use crate::interp::{Instance, Value};

/// Why a host function did not return values.
pub enum HostOutcome {
    /// Trap the calling Wasm thread.
    Trap(Trap),
    /// Suspend execution and hand the resumable thread to the embedder.
    ///
    /// WALI uses this for control-transferring syscalls: `fork` (snapshot
    /// and resume both sides), `execve` (replace the program), thread
    /// `clone` (spawn an instance-per-thread sibling) and `exit`.
    Suspend(Suspension),
}

impl From<Trap> for HostOutcome {
    fn from(t: Trap) -> Self {
        HostOutcome::Trap(t)
    }
}

/// An opaque embedder-defined suspension payload.
pub struct Suspension(pub Box<dyn Any + Send>);

impl Suspension {
    /// Wraps a payload.
    pub fn new<P: Any + Send>(payload: P) -> Self {
        Suspension(Box::new(payload))
    }

    /// Attempts to downcast the payload.
    pub fn downcast<P: Any>(self) -> Result<Box<P>, Suspension> {
        self.0.downcast::<P>().map_err(Suspension)
    }
}

/// The view a host function gets of the running instance.
pub struct Caller<'a, T> {
    /// The instance that performed the call (memory, table, exports).
    pub instance: &'a Instance<T>,
    /// Embedder context.
    pub data: &'a mut T,
}

impl<'a, T> Caller<'a, T> {
    /// Shorthand for the instance's linear memory.
    pub fn memory(&self) -> &crate::mem::Memory {
        &self.instance.memory
    }
}

/// Signature of a host function.
pub type HostFn<T> =
    Arc<dyn Fn(&mut Caller<'_, T>, &[Value]) -> Result<Vec<Value>, HostOutcome> + Send + Sync>;

/// A pending re-entrant call requested at a safepoint (signal delivery).
#[derive(Clone, Debug, PartialEq)]
pub struct PendingCall {
    /// Function index (combined space) to invoke.
    pub func: u32,
    /// Arguments to pass.
    pub args: Vec<Value>,
}

/// Embedder context hooks the interpreter consults during execution.
pub trait HostCtx {
    /// Polled at compiler-inserted safepoints and after host calls return
    /// (the syscall-exit delivery point, as on Linux); returning a call
    /// makes the interpreter execute it re-entrantly before continuing
    /// (§3.3 signal handler execution).
    fn poll_signal(&mut self) -> Option<PendingCall> {
        None
    }

    /// Checked at the same points as [`HostCtx::poll_signal`]; returning a
    /// trap aborts the thread (fatal-signal kill).
    fn check_abort(&mut self) -> Option<Trap> {
        None
    }

    /// Called when a frame injected by [`HostCtx::poll_signal`] returns,
    /// so the embedder can restore the pre-handler signal mask.
    fn signal_return(&mut self) {}
}

impl HostCtx for () {}

/// Registry of host functions keyed by `(module, name)`.
///
/// Stored as a two-level map so [`Linker::resolve`] is allocation-free:
/// the blocked-syscall retry path resolves on every scheduling round, so
/// a per-resolve `String` pair would be a hot-path cost.
pub struct Linker<T> {
    funcs: HashMap<String, HashMap<String, HostFn<T>>>,
}

impl<T> Default for Linker<T> {
    fn default() -> Self {
        Linker {
            funcs: HashMap::new(),
        }
    }
}

impl<T> Clone for Linker<T> {
    fn clone(&self) -> Self {
        Linker {
            funcs: self.funcs.clone(),
        }
    }
}

impl<T> Linker<T> {
    /// Creates an empty linker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a host function under `(module, name)`.
    pub fn func(
        &mut self,
        module: &str,
        name: &str,
        f: impl Fn(&mut Caller<'_, T>, &[Value]) -> Result<Vec<Value>, HostOutcome>
            + Send
            + Sync
            + 'static,
    ) -> &mut Self {
        self.funcs
            .entry(module.to_string())
            .or_default()
            .insert(name.to_string(), Arc::new(f));
        self
    }

    /// Looks up a registered function (no allocation).
    pub fn resolve(&self, module: &str, name: &str) -> Option<&HostFn<T>> {
        self.funcs.get(module)?.get(name)
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.funcs.values().map(|m| m.len()).sum()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over registered `(module, name)` pairs.
    pub fn names(&self) -> impl Iterator<Item = (&str, &str)> {
        self.funcs
            .iter()
            .flat_map(|(m, inner)| inner.keys().map(move |n| (m.as_str(), n.as_str())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linker_registers_and_resolves() {
        let mut l: Linker<()> = Linker::new();
        l.func("wali", "SYS_getpid", |_, _| Ok(vec![Value::I64(42)]));
        assert!(l.resolve("wali", "SYS_getpid").is_some());
        assert!(l.resolve("wali", "SYS_nope").is_none());
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn suspension_downcasts() {
        #[derive(Debug, PartialEq)]
        struct Payload(u32);
        let s = Suspension::new(Payload(7));
        assert_eq!(*s.downcast::<Payload>().ok().unwrap(), Payload(7));

        let s = Suspension::new(Payload(7));
        assert!(s.downcast::<String>().is_err());
    }
}
