//! A from-scratch WebAssembly engine sized for kernel-interface research.
//!
//! This crate plays the role WAMR plays in the paper: decode, validate and
//! execute core-Wasm modules, expose extensible *host functions* (the hook
//! WALI/WAZI plug into), and insert *safepoints* where asynchronous signal
//! delivery may interrupt execution (§3.3 of the paper).
//!
//! Pipeline:
//!
//! ```text
//! bytes ──decode──▶ Module ──validate──▶ prep (flatten + safepoints)
//!       ◀─encode──                        │
//!                             Program<T> ─┴─ link(Linker<T>)
//!                                  │
//!                          instantiate ──▶ Instance<T> ──▶ Thread::call
//! ```
//!
//! Design choices that matter for WALI:
//!
//! * **Explicit interpreter frames** — wasm→wasm calls never recurse into
//!   the host stack, so an execution [`interp::Thread`] can be snapshotted
//!   and resumed. This is what makes `fork` (clone-the-world) and re-entrant
//!   signal-handler invocation implementable at the interface layer.
//! * **Host suspension** — a host function may return
//!   [`host::HostOutcome::Suspend`] to hand control (and the resumable
//!   thread) back to the embedder; WALI uses this for `fork`, `execve`,
//!   thread spawn and `exit`.
//! * **Safepoint schemes** — [`safepoint::SafepointScheme`] selects where
//!   `prep` inserts poll points (loop headers, function entries, or every
//!   instruction), reproducing the Table 3 ablation.
//! * **Shared linear memory** — [`mem::Memory`] reserves its maximum size up
//!   front so multiple instance-per-thread instances can share it without
//!   relocation, mirroring the paper's thread model (§3.1).

pub mod build;
pub mod decode;
pub mod encode;
pub mod error;
pub mod host;
pub mod instr;
pub mod interp;
pub mod leb;
pub mod mem;
pub mod module;
pub mod prep;
pub mod regir;
pub mod safepoint;
pub mod types;
pub mod validate;

pub use build::{FuncBuilder, ModuleBuilder};
pub use error::{DecodeError, Trap, ValidateError};
pub use host::{Caller, HostFn, HostOutcome, Linker, Suspension};
pub use interp::{Instance, RunResult, Thread, Value};
pub use module::Module;
pub use prep::Program;
pub use safepoint::SafepointScheme;
pub use types::{FuncType, ValType};

/// Size of one Wasm page in bytes.
pub const PAGE_SIZE: usize = 65536;
