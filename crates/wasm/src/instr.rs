//! The structured instruction set: core Wasm MVP plus sign-extension,
//! bulk-memory (`memory.copy`/`memory.fill`) and the threads-proposal
//! subset WALI needs for instance-per-thread workloads.

use crate::types::ValType;

/// Alignment/offset immediate of a memory instruction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemArg {
    /// log2 of the alignment hint.
    pub align: u32,
    /// Constant byte offset added to the dynamic address.
    pub offset: u32,
}

impl MemArg {
    /// Convenience constructor with natural alignment 0.
    pub fn offset(offset: u32) -> Self {
        MemArg { align: 0, offset }
    }
}

/// Result/continuation type of a block-like construct.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockType {
    /// `[] -> []`
    Empty,
    /// `[] -> [t]`
    Value(ValType),
    /// Full signature by type index (multi-value / block params).
    Func(u32),
}

/// Width of an atomic access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomicWidth {
    /// 32-bit.
    I32,
    /// 64-bit.
    I64,
}

impl AtomicWidth {
    /// The value type moved by this access.
    pub fn ty(self) -> ValType {
        match self {
            AtomicWidth::I32 => ValType::I32,
            AtomicWidth::I64 => ValType::I64,
        }
    }

    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            AtomicWidth::I32 => 4,
            AtomicWidth::I64 => 8,
        }
    }
}

/// Read-modify-write operator for `i32.atomic.rmw.*`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum RmwOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Xchg,
}

/// A memory load shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum LoadKind {
    I32,
    I64,
    F32,
    F64,
    I32_8S,
    I32_8U,
    I32_16S,
    I32_16U,
    I64_8S,
    I64_8U,
    I64_16S,
    I64_16U,
    I64_32S,
    I64_32U,
}

impl LoadKind {
    /// The type pushed by the load.
    pub fn result(self) -> ValType {
        use LoadKind::*;
        match self {
            I32 | I32_8S | I32_8U | I32_16S | I32_16U => ValType::I32,
            I64 | I64_8S | I64_8U | I64_16S | I64_16U | I64_32S | I64_32U => ValType::I64,
            F32 => ValType::F32,
            F64 => ValType::F64,
        }
    }

    /// Access width in bytes.
    pub fn bytes(self) -> u32 {
        use LoadKind::*;
        match self {
            I32_8S | I32_8U | I64_8S | I64_8U => 1,
            I32_16S | I32_16U | I64_16S | I64_16U => 2,
            I32 | F32 | I64_32S | I64_32U => 4,
            I64 | F64 => 8,
        }
    }
}

/// A memory store shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum StoreKind {
    I32,
    I64,
    F32,
    F64,
    I32_8,
    I32_16,
    I64_8,
    I64_16,
    I64_32,
}

impl StoreKind {
    /// The operand type popped by the store.
    pub fn operand(self) -> ValType {
        use StoreKind::*;
        match self {
            I32 | I32_8 | I32_16 => ValType::I32,
            I64 | I64_8 | I64_16 | I64_32 => ValType::I64,
            F32 => ValType::F32,
            F64 => ValType::F64,
        }
    }

    /// Access width in bytes.
    pub fn bytes(self) -> u32 {
        use StoreKind::*;
        match self {
            I32_8 | I64_8 => 1,
            I32_16 | I64_16 => 2,
            I32 | F32 | I64_32 => 4,
            I64 | F64 => 8,
        }
    }
}

/// Unary operators (one operand, one result).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum UnOp {
    I32Clz,
    I32Ctz,
    I32Popcnt,
    I32Eqz,
    I64Clz,
    I64Ctz,
    I64Popcnt,
    I64Eqz,
    F32Abs,
    F32Neg,
    F32Ceil,
    F32Floor,
    F32Trunc,
    F32Nearest,
    F32Sqrt,
    F64Abs,
    F64Neg,
    F64Ceil,
    F64Floor,
    F64Trunc,
    F64Nearest,
    F64Sqrt,
    I32Extend8S,
    I32Extend16S,
    I64Extend8S,
    I64Extend16S,
    I64Extend32S,
}

impl UnOp {
    /// `(input, output)` value types.
    pub fn sig(self) -> (ValType, ValType) {
        use UnOp::*;
        use ValType::*;
        match self {
            I32Clz | I32Ctz | I32Popcnt | I32Extend8S | I32Extend16S => (I32, I32),
            I32Eqz => (I32, I32),
            I64Clz | I64Ctz | I64Popcnt | I64Extend8S | I64Extend16S | I64Extend32S => (I64, I64),
            I64Eqz => (I64, I32),
            F32Abs | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt => (F32, F32),
            F64Abs | F64Neg | F64Ceil | F64Floor | F64Trunc | F64Nearest | F64Sqrt => (F64, F64),
        }
    }
}

/// Binary operators (`(t, t) -> t`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    I32Add,
    I32Sub,
    I32Mul,
    I32DivS,
    I32DivU,
    I32RemS,
    I32RemU,
    I32And,
    I32Or,
    I32Xor,
    I32Shl,
    I32ShrS,
    I32ShrU,
    I32Rotl,
    I32Rotr,
    I64Add,
    I64Sub,
    I64Mul,
    I64DivS,
    I64DivU,
    I64RemS,
    I64RemU,
    I64And,
    I64Or,
    I64Xor,
    I64Shl,
    I64ShrS,
    I64ShrU,
    I64Rotl,
    I64Rotr,
    F32Add,
    F32Sub,
    F32Mul,
    F32Div,
    F32Min,
    F32Max,
    F32Copysign,
    F64Add,
    F64Sub,
    F64Mul,
    F64Div,
    F64Min,
    F64Max,
    F64Copysign,
}

impl BinOp {
    /// The operand/result value type.
    pub fn ty(self) -> ValType {
        use BinOp::*;
        match self {
            I32Add | I32Sub | I32Mul | I32DivS | I32DivU | I32RemS | I32RemU | I32And | I32Or
            | I32Xor | I32Shl | I32ShrS | I32ShrU | I32Rotl | I32Rotr => ValType::I32,
            I64Add | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And | I64Or
            | I64Xor | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr => ValType::I64,
            F32Add | F32Sub | F32Mul | F32Div | F32Min | F32Max | F32Copysign => ValType::F32,
            F64Add | F64Sub | F64Mul | F64Div | F64Min | F64Max | F64Copysign => ValType::F64,
        }
    }
}

/// Comparison operators (`(t, t) -> i32`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum RelOp {
    I32Eq,
    I32Ne,
    I32LtS,
    I32LtU,
    I32GtS,
    I32GtU,
    I32LeS,
    I32LeU,
    I32GeS,
    I32GeU,
    I64Eq,
    I64Ne,
    I64LtS,
    I64LtU,
    I64GtS,
    I64GtU,
    I64LeS,
    I64LeU,
    I64GeS,
    I64GeU,
    F32Eq,
    F32Ne,
    F32Lt,
    F32Gt,
    F32Le,
    F32Ge,
    F64Eq,
    F64Ne,
    F64Lt,
    F64Gt,
    F64Le,
    F64Ge,
}

impl RelOp {
    /// The operand value type (result is always `i32`).
    pub fn operand(self) -> ValType {
        use RelOp::*;
        match self {
            I32Eq | I32Ne | I32LtS | I32LtU | I32GtS | I32GtU | I32LeS | I32LeU | I32GeS
            | I32GeU => ValType::I32,
            I64Eq | I64Ne | I64LtS | I64LtU | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS
            | I64GeU => ValType::I64,
            F32Eq | F32Ne | F32Lt | F32Gt | F32Le | F32Ge => ValType::F32,
            F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge => ValType::F64,
        }
    }
}

/// Conversion operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CvtOp {
    I32WrapI64,
    I32TruncF32S,
    I32TruncF32U,
    I32TruncF64S,
    I32TruncF64U,
    I64ExtendI32S,
    I64ExtendI32U,
    I64TruncF32S,
    I64TruncF32U,
    I64TruncF64S,
    I64TruncF64U,
    F32ConvertI32S,
    F32ConvertI32U,
    F32ConvertI64S,
    F32ConvertI64U,
    F32DemoteF64,
    F64ConvertI32S,
    F64ConvertI32U,
    F64ConvertI64S,
    F64ConvertI64U,
    F64PromoteF32,
    I32ReinterpretF32,
    I64ReinterpretF64,
    F32ReinterpretI32,
    F64ReinterpretI64,
}

impl CvtOp {
    /// `(from, to)` value types.
    pub fn sig(self) -> (ValType, ValType) {
        use CvtOp::*;
        use ValType::*;
        match self {
            I32WrapI64 => (I64, I32),
            I32TruncF32S | I32TruncF32U => (F32, I32),
            I32TruncF64S | I32TruncF64U => (F64, I32),
            I64ExtendI32S | I64ExtendI32U => (I32, I64),
            I64TruncF32S | I64TruncF32U => (F32, I64),
            I64TruncF64S | I64TruncF64U => (F64, I64),
            F32ConvertI32S | F32ConvertI32U => (I32, F32),
            F32ConvertI64S | F32ConvertI64U => (I64, F32),
            F32DemoteF64 => (F64, F32),
            F64ConvertI32S | F64ConvertI32U => (I32, F64),
            F64ConvertI64S | F64ConvertI64U => (I64, F64),
            F64PromoteF32 => (F32, F64),
            I32ReinterpretF32 => (F32, I32),
            I64ReinterpretF64 => (F64, I64),
            F32ReinterpretI32 => (I32, F32),
            F64ReinterpretI64 => (I64, F64),
        }
    }
}

/// A structured (pre-flattening) instruction, mirroring the binary format.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)]
pub enum Instr {
    Unreachable,
    Nop,
    Block(BlockType),
    Loop(BlockType),
    If(BlockType),
    Else,
    End,
    Br(u32),
    BrIf(u32),
    /// Targets plus the default label.
    BrTable(Box<[u32]>, u32),
    Return,
    Call(u32),
    /// Type index (table index fixed to 0).
    CallIndirect(u32),
    Drop,
    Select,
    LocalGet(u32),
    LocalSet(u32),
    LocalTee(u32),
    GlobalGet(u32),
    GlobalSet(u32),
    Load(LoadKind, MemArg),
    Store(StoreKind, MemArg),
    MemorySize,
    MemoryGrow,
    MemoryCopy,
    MemoryFill,
    I32Const(i32),
    I64Const(i64),
    /// Bit pattern (NaN-exact).
    F32Const(u32),
    /// Bit pattern (NaN-exact).
    F64Const(u64),
    Un(UnOp),
    Bin(BinOp),
    Rel(RelOp),
    Cvt(CvtOp),
    AtomicNotify(MemArg),
    AtomicWait32(MemArg),
    AtomicFence,
    AtomicLoad(AtomicWidth, MemArg),
    AtomicStore(AtomicWidth, MemArg),
    /// i32-only read-modify-write.
    AtomicRmw(RmwOp, MemArg),
    /// i32-only compare-exchange.
    AtomicCmpxchg(MemArg),
}

#[cfg(test)]
mod tests {
    use super::*;
    use ValType::*;

    #[test]
    fn load_kinds_have_consistent_widths() {
        assert_eq!(LoadKind::I32.bytes(), 4);
        assert_eq!(LoadKind::I64.bytes(), 8);
        assert_eq!(LoadKind::I32_8U.bytes(), 1);
        assert_eq!(LoadKind::I64_32S.bytes(), 4);
        assert_eq!(LoadKind::I64_32S.result(), I64);
        assert_eq!(LoadKind::F64.result(), F64);
    }

    #[test]
    fn store_kinds_have_consistent_widths() {
        assert_eq!(StoreKind::I64_32.bytes(), 4);
        assert_eq!(StoreKind::I64_32.operand(), I64);
        assert_eq!(StoreKind::F32.bytes(), 4);
    }

    #[test]
    fn unop_signatures() {
        assert_eq!(UnOp::I32Eqz.sig(), (I32, I32));
        assert_eq!(UnOp::I64Eqz.sig(), (I64, I32));
        assert_eq!(UnOp::F64Sqrt.sig(), (F64, F64));
        assert_eq!(UnOp::I64Extend32S.sig(), (I64, I64));
    }

    #[test]
    fn cvt_signatures() {
        assert_eq!(CvtOp::I32WrapI64.sig(), (I64, I32));
        assert_eq!(CvtOp::I64ExtendI32U.sig(), (I32, I64));
        assert_eq!(CvtOp::F64PromoteF32.sig(), (F32, F64));
        assert_eq!(CvtOp::I32ReinterpretF32.sig(), (F32, I32));
    }

    #[test]
    fn relops_are_typed() {
        assert_eq!(RelOp::I32LtU.operand(), I32);
        assert_eq!(RelOp::I64GeS.operand(), I64);
        assert_eq!(RelOp::F64Le.operand(), F64);
    }
}
