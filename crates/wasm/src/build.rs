//! Programmatic module construction.
//!
//! The application suite (paper Table 1 workloads) is written against this
//! builder: it produces a [`Module`] that is then *encoded to real binary
//! bytes and decoded back* by the runners, so the full binary pipeline is
//! exercised by every app.

use crate::instr::{BlockType, Instr, LoadKind, MemArg, StoreKind};
use crate::module::{
    ConstExpr, DataSegment, ElemSegment, Export, ExportDesc, FuncBody, Global, Import, ImportDesc,
    Module,
};
use crate::types::{FuncType, GlobalType, Limits, MemoryType, TableType, ValType};

/// A function handle (final combined-space index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuncId(pub u32);

/// Builds a [`Module`] incrementally.
///
/// Function imports must all be registered before the first local function
/// is declared, because handles are final indices.
pub struct ModuleBuilder {
    module: Module,
    imports_frozen: bool,
    data_cursor: u32,
    declared: Vec<Option<FuncBody>>,
}

impl Default for ModuleBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ModuleBuilder {
    /// Creates an empty builder; the data cursor starts at 1024, keeping
    /// the first KiB free (NULL guard zone, as C toolchains do).
    pub fn new() -> ModuleBuilder {
        ModuleBuilder {
            module: Module::default(),
            imports_frozen: false,
            data_cursor: 1024,
            declared: Vec::new(),
        }
    }

    /// Interns a function signature and returns its type index.
    pub fn sig(
        &mut self,
        params: impl Into<Vec<ValType>>,
        results: impl Into<Vec<ValType>>,
    ) -> u32 {
        let ty = FuncType {
            params: params.into(),
            results: results.into(),
        };
        if let Some(i) = self.module.types.iter().position(|t| *t == ty) {
            return i as u32;
        }
        self.module.types.push(ty);
        (self.module.types.len() - 1) as u32
    }

    /// Imports a host function; must precede all local declarations.
    pub fn import_func(&mut self, module: &str, name: &str, ty: u32) -> FuncId {
        assert!(
            !self.imports_frozen,
            "imports must be declared before local functions"
        );
        let idx = self.module.num_imported_funcs();
        self.module.imports.push(Import {
            module: module.to_string(),
            name: name.to_string(),
            desc: ImportDesc::Func(ty),
        });
        FuncId(idx)
    }

    /// Declares a memory (64 KiB pages).
    pub fn memory(&mut self, min: u32, max: Option<u32>) -> &mut Self {
        self.module.memories = vec![MemoryType {
            limits: Limits { min, max },
            shared: false,
        }];
        self
    }

    /// Declares a shared memory (for instance-per-thread workloads).
    pub fn shared_memory(&mut self, min: u32, max: u32) -> &mut Self {
        self.module.memories = vec![MemoryType {
            limits: Limits {
                min,
                max: Some(max),
            },
            shared: true,
        }];
        self
    }

    /// Declares a funcref table.
    pub fn table(&mut self, min: u32, max: Option<u32>) -> &mut Self {
        self.module.tables = vec![TableType {
            limits: Limits { min, max },
        }];
        self
    }

    /// Adds a mutable global and returns its index.
    pub fn global(&mut self, ty: ValType, mutable: bool, init: ConstExpr) -> u32 {
        self.module.globals.push(Global {
            ty: GlobalType { ty, mutable },
            init,
        });
        (self.module.globals.len() - 1) as u32
    }

    /// Places `bytes` at the data cursor; returns the address.
    pub fn data(&mut self, bytes: &[u8]) -> u32 {
        let at = self.data_cursor;
        self.data_at(at, bytes);
        // Keep subsequent blobs 8-aligned.
        self.data_cursor = (at + bytes.len() as u32 + 7) & !7;
        at
    }

    /// Places `bytes` at a fixed address.
    pub fn data_at(&mut self, addr: u32, bytes: &[u8]) {
        self.module.datas.push(DataSegment {
            offset: ConstExpr::I32(addr as i32),
            bytes: bytes.to_vec(),
        });
    }

    /// Places a NUL-terminated string; returns the address.
    pub fn c_str(&mut self, s: &str) -> u32 {
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        self.data(&bytes)
    }

    /// Reserves `len` zeroed bytes at the cursor; returns the address.
    pub fn reserve(&mut self, len: u32) -> u32 {
        let at = self.data_cursor;
        self.data_cursor = (at + len + 7) & !7;
        at
    }

    /// First address past all placed data (heap base for apps).
    pub fn data_end(&self) -> u32 {
        self.data_cursor
    }

    /// Declares a local function (body provided later via [`Self::define`]).
    pub fn declare(&mut self, ty: u32) -> FuncId {
        self.imports_frozen = true;
        let idx = self.module.num_imported_funcs() + self.module.funcs.len() as u32;
        self.module.funcs.push(ty);
        self.declared.push(None);
        FuncId(idx)
    }

    /// Defines the body of a declared function.
    pub fn define(&mut self, f: FuncId, build: impl FnOnce(&mut FuncBuilder)) {
        let local = (f.0 - self.module.num_imported_funcs()) as usize;
        let ty = self.module.types[self.module.funcs[local] as usize].clone();
        let mut fb = FuncBuilder::new(ty.params.len() as u32);
        build(&mut fb);
        self.declared[local] = Some(fb.finish());
    }

    /// Declares and defines in one step.
    pub fn func(&mut self, ty: u32, build: impl FnOnce(&mut FuncBuilder)) -> FuncId {
        let f = self.declare(ty);
        self.define(f, build);
        f
    }

    /// Exports a function.
    pub fn export(&mut self, name: &str, f: FuncId) -> &mut Self {
        self.module.exports.push(Export {
            name: name.to_string(),
            desc: ExportDesc::Func(f.0),
        });
        self
    }

    /// Exports the memory.
    pub fn export_memory(&mut self, name: &str) -> &mut Self {
        self.module.exports.push(Export {
            name: name.to_string(),
            desc: ExportDesc::Memory(0),
        });
        self
    }

    /// Appends functions to the table; returns the first slot index.
    pub fn table_entries(&mut self, funcs: &[FuncId]) -> u32 {
        let base: u32 = self.module.elems.iter().map(|e| e.funcs.len() as u32).sum();
        if self.module.tables.is_empty() {
            self.table(base + funcs.len() as u32, None);
        } else {
            let t = &mut self.module.tables[0];
            t.limits.min = t.limits.min.max(base + funcs.len() as u32);
            if let Some(max) = t.limits.max {
                t.limits.max = Some(max.max(t.limits.min));
            }
        }
        self.module.elems.push(ElemSegment {
            offset: ConstExpr::I32(base as i32),
            funcs: funcs.iter().map(|f| f.0).collect(),
        });
        base
    }

    /// Sets the start function.
    pub fn start(&mut self, f: FuncId) -> &mut Self {
        self.module.start = Some(f.0);
        self
    }

    /// Finalizes into a [`Module`].
    ///
    /// # Panics
    /// Panics if a declared function was never defined.
    pub fn build(mut self) -> Module {
        self.module.code = self
            .declared
            .into_iter()
            .enumerate()
            .map(|(i, b)| b.unwrap_or_else(|| panic!("function {i} declared but not defined")))
            .collect();
        self.module
    }
}

/// Builds the body of a single function.
pub struct FuncBuilder {
    params: u32,
    locals: Vec<(u32, ValType)>,
    instrs: Vec<Instr>,
}

impl FuncBuilder {
    fn new(params: u32) -> FuncBuilder {
        FuncBuilder {
            params,
            locals: Vec::new(),
            instrs: Vec::new(),
        }
    }

    fn finish(self) -> FuncBody {
        FuncBody {
            locals: self.locals,
            instrs: self.instrs,
        }
    }

    /// Declares a new local and returns its index.
    pub fn local(&mut self, ty: ValType) -> u32 {
        let idx = self.params + self.locals.iter().map(|(n, _)| n).sum::<u32>();
        self.locals.push((1, ty));
        idx
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    // --- Structured control flow -----------------------------------------

    /// `block ... end`.
    pub fn block(&mut self, bt: BlockType, body: impl FnOnce(&mut Self)) -> &mut Self {
        self.instrs.push(Instr::Block(bt));
        body(self);
        self.instrs.push(Instr::End);
        self
    }

    /// `loop ... end`.
    pub fn loop_(&mut self, bt: BlockType, body: impl FnOnce(&mut Self)) -> &mut Self {
        self.instrs.push(Instr::Loop(bt));
        body(self);
        self.instrs.push(Instr::End);
        self
    }

    /// `if ... end` (condition must already be on the stack).
    pub fn if_(&mut self, bt: BlockType, then: impl FnOnce(&mut Self)) -> &mut Self {
        self.instrs.push(Instr::If(bt));
        then(self);
        self.instrs.push(Instr::End);
        self
    }

    /// `if ... else ... end`.
    pub fn if_else(
        &mut self,
        bt: BlockType,
        then: impl FnOnce(&mut Self),
        els: impl FnOnce(&mut Self),
    ) -> &mut Self {
        self.instrs.push(Instr::If(bt));
        then(self);
        self.instrs.push(Instr::Else);
        els(self);
        self.instrs.push(Instr::End);
        self
    }

    /// `br depth`.
    pub fn br(&mut self, depth: u32) -> &mut Self {
        self.emit(Instr::Br(depth))
    }

    /// `br_if depth`.
    pub fn br_if(&mut self, depth: u32) -> &mut Self {
        self.emit(Instr::BrIf(depth))
    }

    /// `return`.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Instr::Return)
    }

    /// `call f`.
    pub fn call(&mut self, f: FuncId) -> &mut Self {
        self.emit(Instr::Call(f.0))
    }

    /// `call_indirect (type ty)`.
    pub fn call_indirect(&mut self, ty: u32) -> &mut Self {
        self.emit(Instr::CallIndirect(ty))
    }

    /// `unreachable`.
    pub fn unreachable(&mut self) -> &mut Self {
        self.emit(Instr::Unreachable)
    }

    // --- Constants and variables ------------------------------------------

    /// `i32.const`.
    pub fn i32(&mut self, v: i32) -> &mut Self {
        self.emit(Instr::I32Const(v))
    }

    /// `i64.const`.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.emit(Instr::I64Const(v))
    }

    /// `f64.const`.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.emit(Instr::F64Const(v.to_bits()))
    }

    /// `local.get`.
    pub fn local_get(&mut self, i: u32) -> &mut Self {
        self.emit(Instr::LocalGet(i))
    }

    /// `local.set`.
    pub fn local_set(&mut self, i: u32) -> &mut Self {
        self.emit(Instr::LocalSet(i))
    }

    /// `local.tee`.
    pub fn local_tee(&mut self, i: u32) -> &mut Self {
        self.emit(Instr::LocalTee(i))
    }

    /// `global.get`.
    pub fn global_get(&mut self, i: u32) -> &mut Self {
        self.emit(Instr::GlobalGet(i))
    }

    /// `global.set`.
    pub fn global_set(&mut self, i: u32) -> &mut Self {
        self.emit(Instr::GlobalSet(i))
    }

    /// `drop`.
    pub fn drop_(&mut self) -> &mut Self {
        self.emit(Instr::Drop)
    }

    /// `select`.
    pub fn select(&mut self) -> &mut Self {
        self.emit(Instr::Select)
    }

    // --- Memory -----------------------------------------------------------

    /// `i32.load` with a constant offset.
    pub fn load32(&mut self, offset: u32) -> &mut Self {
        self.emit(Instr::Load(LoadKind::I32, MemArg::offset(offset)))
    }

    /// `i64.load` with a constant offset.
    pub fn load64(&mut self, offset: u32) -> &mut Self {
        self.emit(Instr::Load(LoadKind::I64, MemArg::offset(offset)))
    }

    /// `i32.load8_u` with a constant offset.
    pub fn load8u(&mut self, offset: u32) -> &mut Self {
        self.emit(Instr::Load(LoadKind::I32_8U, MemArg::offset(offset)))
    }

    /// `i32.store` with a constant offset.
    pub fn store32(&mut self, offset: u32) -> &mut Self {
        self.emit(Instr::Store(StoreKind::I32, MemArg::offset(offset)))
    }

    /// `i64.store` with a constant offset.
    pub fn store64(&mut self, offset: u32) -> &mut Self {
        self.emit(Instr::Store(StoreKind::I64, MemArg::offset(offset)))
    }

    /// `i32.store8` with a constant offset.
    pub fn store8(&mut self, offset: u32) -> &mut Self {
        self.emit(Instr::Store(StoreKind::I32_8, MemArg::offset(offset)))
    }

    // --- Common numeric shorthands ----------------------------------------

    /// `i32.add`.
    pub fn add32(&mut self) -> &mut Self {
        self.emit(Instr::Bin(crate::instr::BinOp::I32Add))
    }

    /// `i32.sub`.
    pub fn sub32(&mut self) -> &mut Self {
        self.emit(Instr::Bin(crate::instr::BinOp::I32Sub))
    }

    /// `i32.mul`.
    pub fn mul32(&mut self) -> &mut Self {
        self.emit(Instr::Bin(crate::instr::BinOp::I32Mul))
    }

    /// `i32.and`.
    pub fn and32(&mut self) -> &mut Self {
        self.emit(Instr::Bin(crate::instr::BinOp::I32And))
    }

    /// `i32.eqz`.
    pub fn eqz32(&mut self) -> &mut Self {
        self.emit(Instr::Un(crate::instr::UnOp::I32Eqz))
    }

    /// `i32.eq`.
    pub fn eq32(&mut self) -> &mut Self {
        self.emit(Instr::Rel(crate::instr::RelOp::I32Eq))
    }

    /// `i32.ne`.
    pub fn ne32(&mut self) -> &mut Self {
        self.emit(Instr::Rel(crate::instr::RelOp::I32Ne))
    }

    /// `i32.lt_s`.
    pub fn lt_s32(&mut self) -> &mut Self {
        self.emit(Instr::Rel(crate::instr::RelOp::I32LtS))
    }

    /// `i32.lt_u`.
    pub fn lt_u32(&mut self) -> &mut Self {
        self.emit(Instr::Rel(crate::instr::RelOp::I32LtU))
    }

    /// `i32.ge_s`.
    pub fn ge_s32(&mut self) -> &mut Self {
        self.emit(Instr::Rel(crate::instr::RelOp::I32GeS))
    }

    /// `i64.eq`.
    pub fn eq64(&mut self) -> &mut Self {
        self.emit(Instr::Rel(crate::instr::RelOp::I64Eq))
    }

    /// `i64.add`.
    pub fn add64(&mut self) -> &mut Self {
        self.emit(Instr::Bin(crate::instr::BinOp::I64Add))
    }

    /// `i64.lt_s`.
    pub fn lt_s64(&mut self) -> &mut Self {
        self.emit(Instr::Rel(crate::instr::RelOp::I64LtS))
    }

    /// `i32.wrap_i64`.
    pub fn wrap(&mut self) -> &mut Self {
        self.emit(Instr::Cvt(crate::instr::CvtOp::I32WrapI64))
    }

    /// `i64.extend_i32_s`.
    pub fn extend_s(&mut self) -> &mut Self {
        self.emit(Instr::Cvt(crate::instr::CvtOp::I64ExtendI32S))
    }

    /// `i64.extend_i32_u`.
    pub fn extend_u(&mut self) -> &mut Self {
        self.emit(Instr::Cvt(crate::instr::CvtOp::I64ExtendI32U))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::encode::encode;
    use crate::host::Linker;
    use crate::interp::{Instance, RunResult, Thread, Value};
    use crate::prep::Program;
    use crate::safepoint::SafepointScheme;
    use std::sync::Arc;

    fn run_main(module: &Module, args: &[Value]) -> RunResult {
        let linker: Linker<()> = Linker::new();
        let program =
            Arc::new(Program::link(module, &linker, SafepointScheme::LoopHeaders).unwrap());
        let mut inst = Instance::new(program).unwrap();
        let main = inst.export_func("main").unwrap();
        let mut t = Thread::new();
        t.call(&mut inst, &mut (), main, args)
    }

    #[test]
    fn builder_produces_runnable_add() {
        let mut mb = ModuleBuilder::new();
        let sig = mb.sig([ValType::I32, ValType::I32], [ValType::I32]);
        let f = mb.func(sig, |b| {
            b.local_get(0).local_get(1).add32();
        });
        mb.export("main", f);
        let module = mb.build();
        // Round-trip through the binary format, as the apps do.
        let module = decode(&encode(&module)).unwrap();
        match run_main(&module, &[Value::I32(2), Value::I32(40)]) {
            RunResult::Done(v) => assert_eq!(v, vec![Value::I32(42)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn loop_counts_to_ten() {
        let mut mb = ModuleBuilder::new();
        let sig = mb.sig([], [ValType::I32]);
        let f = mb.func(sig, |b| {
            let i = b.local(ValType::I32);
            b.loop_(BlockType::Empty, |b| {
                b.local_get(i).i32(1).add32().local_set(i);
                b.local_get(i).i32(10).lt_s32().br_if(0);
            });
            b.local_get(i);
        });
        mb.export("main", f);
        let module = mb.build();
        match run_main(&module, &[]) {
            RunResult::Done(v) => assert_eq!(v, vec![Value::I32(10)]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn data_cursor_is_aligned_and_monotonic() {
        let mut mb = ModuleBuilder::new();
        let a = mb.c_str("hi");
        let b = mb.data(b"xyz");
        let c = mb.reserve(100);
        assert_eq!(a, 1024);
        assert_eq!(b % 8, 0);
        assert!(b > a && c > b);
        assert!(mb.data_end() >= c + 100);
    }

    #[test]
    fn table_entries_accumulate() {
        let mut mb = ModuleBuilder::new();
        let sig = mb.sig([], []);
        let f = mb.func(sig, |_| {});
        let g = mb.func(sig, |_| {});
        let base0 = mb.table_entries(&[f]);
        let base1 = mb.table_entries(&[g, f]);
        assert_eq!(base0, 0);
        assert_eq!(base1, 1);
        let m = mb.build();
        assert_eq!(m.tables[0].limits.min, 3);
    }

    #[test]
    #[should_panic(expected = "declared but not defined")]
    fn undefined_function_panics() {
        let mut mb = ModuleBuilder::new();
        let sig = mb.sig([], []);
        mb.declare(sig);
        let _ = mb.build();
    }
}
