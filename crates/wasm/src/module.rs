//! The decoded (in-memory) representation of a Wasm module.

use crate::instr::Instr;
use crate::types::{FuncType, GlobalType, MemoryType, TableType, ValType};

/// A constant initializer expression (globals, element/data offsets).
#[derive(Clone, Copy, Debug, PartialEq)]
#[allow(missing_docs)]
pub enum ConstExpr {
    I32(i32),
    I64(i64),
    F32(u32),
    F64(u64),
    /// Value of an imported global.
    GlobalGet(u32),
    /// A function reference (for funcref globals).
    RefFunc(u32),
    /// A null function reference.
    RefNull,
}

impl ConstExpr {
    /// The value type this expression produces (imported-global case
    /// resolved by the validator).
    pub fn ty(&self, imported_globals: &[GlobalType]) -> Option<ValType> {
        match self {
            ConstExpr::I32(_) => Some(ValType::I32),
            ConstExpr::I64(_) => Some(ValType::I64),
            ConstExpr::F32(_) => Some(ValType::F32),
            ConstExpr::F64(_) => Some(ValType::F64),
            ConstExpr::GlobalGet(i) => imported_globals.get(*i as usize).map(|g| g.ty),
            ConstExpr::RefFunc(_) | ConstExpr::RefNull => Some(ValType::FuncRef),
        }
    }
}

/// What an import provides.
#[derive(Clone, Debug, PartialEq)]
pub enum ImportDesc {
    /// Function with the given type index.
    Func(u32),
    /// Table.
    Table(TableType),
    /// Memory.
    Memory(MemoryType),
    /// Global.
    Global(GlobalType),
}

/// One import entry.
#[derive(Clone, Debug, PartialEq)]
pub struct Import {
    /// Module namespace, e.g. `"wali"`.
    pub module: String,
    /// Field name, e.g. `"SYS_write"`.
    pub name: String,
    /// Kind and type.
    pub desc: ImportDesc,
}

/// What an export exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExportDesc {
    /// Function index (into the combined import+local space).
    Func(u32),
    /// Table index.
    Table(u32),
    /// Memory index.
    Memory(u32),
    /// Global index.
    Global(u32),
}

/// One export entry.
#[derive(Clone, Debug, PartialEq)]
pub struct Export {
    /// Export name.
    pub name: String,
    /// Kind and index.
    pub desc: ExportDesc,
}

/// A defined (non-imported) global.
#[derive(Clone, Debug, PartialEq)]
pub struct Global {
    /// Type and mutability.
    pub ty: GlobalType,
    /// Initializer.
    pub init: ConstExpr,
}

/// An active element segment for table 0.
#[derive(Clone, Debug, PartialEq)]
pub struct ElemSegment {
    /// Offset expression.
    pub offset: ConstExpr,
    /// Function indices to place.
    pub funcs: Vec<u32>,
}

/// An active data segment for memory 0.
#[derive(Clone, Debug, PartialEq)]
pub struct DataSegment {
    /// Offset expression.
    pub offset: ConstExpr,
    /// Bytes to copy.
    pub bytes: Vec<u8>,
}

/// The body of a defined function.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FuncBody {
    /// Extra locals as `(count, type)` runs, exactly as encoded.
    pub locals: Vec<(u32, ValType)>,
    /// Structured instruction sequence, **without** the trailing `End`.
    pub instrs: Vec<Instr>,
}

impl FuncBody {
    /// Total number of declared locals (excluding parameters).
    pub fn local_count(&self) -> u32 {
        self.locals.iter().map(|(n, _)| *n).sum()
    }
}

/// A fully decoded module.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Module {
    /// Type section.
    pub types: Vec<FuncType>,
    /// Import section.
    pub imports: Vec<Import>,
    /// Type indices of defined functions.
    pub funcs: Vec<u32>,
    /// Defined tables (at most one in MVP).
    pub tables: Vec<TableType>,
    /// Defined memories (at most one in MVP).
    pub memories: Vec<MemoryType>,
    /// Defined globals.
    pub globals: Vec<Global>,
    /// Exports.
    pub exports: Vec<Export>,
    /// Start function, if any.
    pub start: Option<u32>,
    /// Active element segments.
    pub elems: Vec<ElemSegment>,
    /// Active data segments.
    pub datas: Vec<DataSegment>,
    /// Bodies, parallel to `funcs`.
    pub code: Vec<FuncBody>,
}

impl Module {
    /// Number of imported functions (local function index base).
    pub fn num_imported_funcs(&self) -> u32 {
        self.imports
            .iter()
            .filter(|i| matches!(i.desc, ImportDesc::Func(_)))
            .count() as u32
    }

    /// The signature of any function in the combined index space.
    pub fn func_type(&self, idx: u32) -> Option<&FuncType> {
        let mut seen = 0;
        for imp in &self.imports {
            if let ImportDesc::Func(t) = imp.desc {
                if seen == idx {
                    return self.types.get(t as usize);
                }
                seen += 1;
            }
        }
        let local = idx.checked_sub(seen)? as usize;
        self.types.get(*self.funcs.get(local)? as usize)
    }

    /// Looks up an export by name.
    pub fn export(&self, name: &str) -> Option<&Export> {
        self.exports.iter().find(|e| e.name == name)
    }

    /// Iterates over function imports as `(module, name, type_index)`.
    pub fn func_imports(&self) -> impl Iterator<Item = (&str, &str, u32)> {
        self.imports.iter().filter_map(|i| match i.desc {
            ImportDesc::Func(t) => Some((i.module.as_str(), i.name.as_str(), t)),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_module() -> Module {
        Module {
            types: vec![
                FuncType::new([ValType::I32], [ValType::I32]),
                FuncType::new([], []),
            ],
            imports: vec![Import {
                module: "wali".into(),
                name: "SYS_getpid".into(),
                desc: ImportDesc::Func(0),
            }],
            funcs: vec![1],
            code: vec![FuncBody::default()],
            exports: vec![Export {
                name: "main".into(),
                desc: ExportDesc::Func(1),
            }],
            ..Default::default()
        }
    }

    #[test]
    fn func_type_spans_imports_and_locals() {
        let m = demo_module();
        assert_eq!(m.num_imported_funcs(), 1);
        assert_eq!(m.func_type(0), Some(&m.types[0]));
        assert_eq!(m.func_type(1), Some(&m.types[1]));
        assert_eq!(m.func_type(2), None);
    }

    #[test]
    fn export_lookup() {
        let m = demo_module();
        assert!(m.export("main").is_some());
        assert!(m.export("missing").is_none());
    }

    #[test]
    fn local_count_sums_runs() {
        let body = FuncBody {
            locals: vec![(3, ValType::I32), (2, ValType::F64)],
            instrs: vec![],
        };
        assert_eq!(body.local_count(), 5);
    }
}
