//! The fast-tier interpreter: explicit frames over prepared code.
//!
//! The execution state ([`Thread`]) is a plain data structure — value stack
//! plus frame stack — so it can be **cloned** (WALI `fork`), **suspended**
//! mid-host-call (WALI `execve`/`clone`/`exit`) and **re-entered** at
//! safepoints to run signal handlers (paper §3.3), all without touching the
//! host call stack.

use std::sync::Arc;

use crate::error::Trap;
use crate::host::{Caller, HostCtx, HostOutcome, Suspension};
use crate::instr::{BinOp, CvtOp, LoadKind, RelOp, StoreKind, UnOp};
use crate::mem::Memory;
use crate::module::{ConstExpr, ExportDesc};
use crate::prep::{BrDest, FuncDef, Op, PreparedFunc, Program};
use crate::regir::{ROp, RSrc};
use crate::types::{FuncType, ValType};

/// Maximum wasm frame depth before [`Trap::StackOverflow`].
pub const MAX_FRAMES: usize = 4096;
/// Maximum value-stack slots before [`Trap::StackOverflow`].
pub const MAX_STACK: usize = 1 << 20;

/// A typed Wasm value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// 32-bit integer.
    I32(i32),
    /// 64-bit integer.
    I64(i64),
    /// 32-bit float.
    F32(f32),
    /// 64-bit float.
    F64(f64),
}

impl Value {
    /// The value's type.
    pub fn ty(&self) -> ValType {
        match self {
            Value::I32(_) => ValType::I32,
            Value::I64(_) => ValType::I64,
            Value::F32(_) => ValType::F32,
            Value::F64(_) => ValType::F64,
        }
    }

    /// Raw 64-bit representation (as stored on the operand stack).
    pub fn raw(&self) -> u64 {
        match self {
            Value::I32(v) => *v as u32 as u64,
            Value::I64(v) => *v as u64,
            Value::F32(v) => v.to_bits() as u64,
            Value::F64(v) => v.to_bits(),
        }
    }

    /// Reconstructs a value of type `ty` from raw bits.
    pub fn from_raw(ty: ValType, raw: u64) -> Value {
        match ty {
            ValType::I32 => Value::I32(raw as u32 as i32),
            ValType::I64 => Value::I64(raw as i64),
            ValType::F32 => Value::F32(f32::from_bits(raw as u32)),
            ValType::F64 => Value::F64(f64::from_bits(raw)),
            ValType::FuncRef => Value::I32(raw as u32 as i32),
        }
    }

    /// Convenience accessor for i32 values.
    pub fn as_i32(&self) -> Option<i32> {
        match self {
            Value::I32(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience accessor for i64 values.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(v) => Some(*v),
            _ => None,
        }
    }
}

/// An instantiated module: program + memory + mutable instance state.
pub struct Instance<T> {
    /// The shared prepared program.
    pub program: Arc<Program<T>>,
    /// Linear memory (shared between instance-per-thread siblings).
    pub memory: Arc<Memory>,
    /// Global values (raw bits), one per declared global.
    pub globals: Vec<u64>,
    /// Function table (funcref entries).
    pub table: Vec<Option<u32>>,
}

impl<T> Instance<T> {
    /// Instantiates with a fresh memory, applying data and element
    /// segments. The memory backing follows [`crate::mem::cow_default`];
    /// memories declared `shared` always get the flat backing (they may be
    /// accessed from several host threads).
    pub fn new(program: Arc<Program<T>>) -> Result<Instance<T>, Trap> {
        Self::new_with_cow(program, crate::mem::cow_default())
    }

    /// Instantiates with explicit control over the private-memory backing:
    /// `cow = true` selects the paged copy-on-write store, `false` the
    /// flat deep-copy baseline. Shared memories are flat either way.
    pub fn new_with_cow(program: Arc<Program<T>>, cow: bool) -> Result<Instance<T>, Trap> {
        let memory = Arc::new(match &program.memory {
            Some(m) => Memory::with_backing(m.limits.min, m.limits.max, cow && !m.shared),
            None => Memory::with_backing(0, Some(0), cow),
        });
        Self::with_memory(program, memory)
    }

    /// Instantiates over an existing memory (instance-per-thread sharing;
    /// data segments are *not* re-applied so sibling state is preserved).
    pub fn spawn_sibling(
        program: Arc<Program<T>>,
        memory: Arc<Memory>,
    ) -> Result<Instance<T>, Trap> {
        let mut inst = Self::bare(program, memory)?;
        inst.apply_elems()?;
        Ok(inst)
    }

    /// Instantiates over the given memory, applying data segments.
    pub fn with_memory(program: Arc<Program<T>>, memory: Arc<Memory>) -> Result<Instance<T>, Trap> {
        let mut inst = Self::bare(program, memory)?;
        inst.apply_elems()?;
        let datas = inst.program.datas.clone();
        for (offset, bytes) in &datas {
            let at = inst.eval_const(offset)? as u32 as u64;
            inst.memory.write(at, bytes)?;
        }
        Ok(inst)
    }

    fn bare(program: Arc<Program<T>>, memory: Arc<Memory>) -> Result<Instance<T>, Trap> {
        let mut globals = Vec::with_capacity(program.globals.len());
        for (_, init) in &program.globals {
            let v = match init {
                ConstExpr::I32(v) => *v as u32 as u64,
                ConstExpr::I64(v) => *v as u64,
                ConstExpr::F32(b) => *b as u64,
                ConstExpr::F64(b) => *b,
                ConstExpr::RefFunc(f) => *f as u64,
                ConstExpr::RefNull => u64::MAX,
                ConstExpr::GlobalGet(_) => {
                    return Err(Trap::Host("imported globals unsupported".into()))
                }
            };
            globals.push(v);
        }
        let table = match &program.table {
            Some(t) => vec![None; t.limits.min as usize],
            None => Vec::new(),
        };
        Ok(Instance {
            program,
            memory,
            globals,
            table,
        })
    }

    fn apply_elems(&mut self) -> Result<(), Trap> {
        let elems = self.program.elems.clone();
        for (offset, funcs) in &elems {
            let at = self.eval_const(offset)? as u32 as usize;
            let end = at.checked_add(funcs.len()).ok_or(Trap::TableOutOfBounds)?;
            if end > self.table.len() {
                return Err(Trap::TableOutOfBounds);
            }
            for (i, f) in funcs.iter().enumerate() {
                self.table[at + i] = Some(*f);
            }
        }
        Ok(())
    }

    fn eval_const(&self, e: &ConstExpr) -> Result<i64, Trap> {
        match e {
            ConstExpr::I32(v) => Ok(*v as i64),
            ConstExpr::I64(v) => Ok(*v),
            _ => Err(Trap::Host("unsupported const expr".into())),
        }
    }

    /// Fork-style duplicate: copy-on-write memory snapshot on the paged
    /// backing (O(allocated pages)), deep copy on the flat backing; cloned
    /// globals and table either way.
    pub fn fork_clone(&self) -> Instance<T> {
        Instance {
            program: self.program.clone(),
            memory: Arc::new(self.memory.fork_clone()),
            globals: self.globals.clone(),
            table: self.table.clone(),
        }
    }

    /// Instance-per-thread sibling: shares the linear memory, private
    /// globals and table (paper §3.1).
    pub fn thread_clone(&self) -> Instance<T> {
        Instance {
            program: self.program.clone(),
            memory: Arc::clone(&self.memory),
            globals: self.globals.clone(),
            table: self.table.clone(),
        }
    }

    /// Resolves an exported function index by name.
    pub fn export_func(&self, name: &str) -> Option<u32> {
        match self.program.exports.get(name) {
            Some(ExportDesc::Func(i)) => Some(*i),
            _ => None,
        }
    }

    /// The signature of a function in the combined index space.
    pub fn func_type(&self, func: u32) -> Option<&FuncType> {
        let def = self.program.funcs.get(func as usize)?;
        self.program.types.get(def.type_idx() as usize)
    }
}

/// Why a call or resume returned.
pub enum RunResult {
    /// The activation completed with these results.
    Done(Vec<Value>),
    /// Execution trapped; the thread is dead.
    Trapped(Trap),
    /// A host function suspended; call [`Thread::resume`] to continue.
    Suspended(Suspension),
}

impl std::fmt::Debug for RunResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunResult::Done(v) => write!(f, "Done({v:?})"),
            RunResult::Trapped(t) => write!(f, "Trapped({t:?})"),
            RunResult::Suspended(_) => write!(f, "Suspended(..)"),
        }
    }
}

#[derive(Clone, Debug)]
struct Frame {
    /// Function index in the combined space (always a local function).
    func: u32,
    /// Next op index to execute.
    pc: usize,
    /// Stack index where locals begin.
    base: usize,
    /// Stack index where operands begin (`base + params + locals`).
    opbase: usize,
    /// Result count of the function.
    results: u32,
    /// Completing this frame ends the activation.
    barrier: bool,
    /// Frame was injected at a safepoint to run a signal handler.
    signal_frame: bool,
}

/// Suspension payload produced when a thread exhausts its fuel slice.
///
/// The embedder resumes with no values to continue exactly where the
/// thread left off; this is what lets a cooperative scheduler preempt
/// busy-spinning tasks (e.g. a thread polling shared memory).
pub struct Preempted;

/// Resumable execution state for one Wasm computation.
///
/// Cloning a [`Thread`] (together with its instance state) yields a
/// fork-style snapshot: both copies resume from the same point.
#[derive(Clone, Default)]
pub struct Thread {
    stack: Vec<u64>,
    frames: Vec<Frame>,
    /// Set between a `Suspend` host outcome and the matching `resume`.
    pending_results: Option<Vec<ValType>>,
    /// Remaining ops before a preemption yield (None = unbounded).
    fuel: Option<u64>,
    /// Executed op count (deterministic work metric).
    pub steps: u64,
    /// Ops executed by the tier-2 register dispatch loop (subset of
    /// `steps`; the per-tier dispatch counter surfaced by the benches).
    pub reg_steps: u64,
}

impl Thread {
    /// Creates an idle thread.
    pub fn new() -> Thread {
        Thread::default()
    }

    /// True if the thread is mid-suspension and expects `resume`.
    pub fn is_suspended(&self) -> bool {
        self.pending_results.is_some()
    }

    /// Sets the preemption fuel: the thread yields [`Preempted`] after
    /// this many ops. `None` disables preemption.
    pub fn refuel(&mut self, fuel: Option<u64>) {
        self.fuel = fuel;
    }

    /// Current wasm frame depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Calls function `func` with `args`, running to completion,
    /// suspension or trap.
    pub fn call<T: HostCtx>(
        &mut self,
        inst: &mut Instance<T>,
        ctx: &mut T,
        func: u32,
        args: &[Value],
    ) -> RunResult {
        let ty = match inst.func_type(func) {
            Some(t) => t.clone(),
            None => return RunResult::Trapped(Trap::Host(format!("no function {func}"))),
        };
        if ty.params.len() != args.len() {
            return RunResult::Trapped(Trap::Host(format!(
                "arity mismatch calling {func}: expected {}, got {}",
                ty.params.len(),
                args.len()
            )));
        }
        for a in args {
            self.stack.push(a.raw());
        }
        let program = inst.program.clone();
        match &program.funcs[func as usize] {
            FuncDef::Host { f, .. } => {
                // Direct host entry (no wasm frame).
                for _ in 0..args.len() {
                    self.stack.pop();
                }
                let f = f.clone();
                let mut caller = Caller {
                    instance: inst,
                    data: ctx,
                };
                match f(&mut caller, args) {
                    Ok(values) => RunResult::Done(values),
                    Err(HostOutcome::Trap(t)) => RunResult::Trapped(t),
                    Err(HostOutcome::Suspend(s)) => {
                        self.pending_results = Some(ty.results.clone());
                        RunResult::Suspended(s)
                    }
                }
            }
            FuncDef::Local(code) => {
                if let Err(t) = self.push_frame(func, code, true, false) {
                    return RunResult::Trapped(t);
                }
                self.run(inst, ctx)
            }
        }
    }

    /// Resumes after a suspension, providing the host call's results.
    pub fn resume<T: HostCtx>(
        &mut self,
        inst: &mut Instance<T>,
        ctx: &mut T,
        results: &[Value],
    ) -> RunResult {
        let expected = match self.pending_results.take() {
            Some(e) => e,
            None => return RunResult::Trapped(Trap::Host("resume without suspension".into())),
        };
        if expected.len() != results.len() {
            return RunResult::Trapped(Trap::Host("resume arity mismatch".into()));
        }
        if self.frames.is_empty() {
            // The suspension happened in a direct host entry.
            return RunResult::Done(results.to_vec());
        }
        for r in results {
            self.stack.push(r.raw());
        }
        self.run(inst, ctx)
    }

    fn push_frame(
        &mut self,
        func: u32,
        code: &PreparedFunc,
        barrier: bool,
        signal_frame: bool,
    ) -> Result<(), Trap> {
        if self.frames.len() >= MAX_FRAMES || self.stack.len() >= MAX_STACK {
            return Err(Trap::StackOverflow);
        }
        let params = code.params as usize;
        let base = self.stack.len() - params;
        if let Some(reg) = &code.reg {
            // Register frame: zero the locals and allocate every canonical
            // operand slot up front; the stack stays at `base + nregs` for
            // the frame's whole lifetime (the safepoint spill invariant).
            let need = base + reg.nregs as usize;
            if need >= MAX_STACK {
                return Err(Trap::StackOverflow);
            }
            self.stack.resize(need, 0);
        } else {
            for _ in 0..code.locals {
                self.stack.push(0);
            }
        }
        self.frames.push(Frame {
            func,
            pc: 0,
            base,
            opbase: base + params + code.locals as usize,
            results: code.results,
            barrier,
            signal_frame,
        });
        Ok(())
    }

    /// The interpreter dispatcher: the register tier when the program was
    /// lowered ([`crate::regir`]), the fused stack tier otherwise. A
    /// program never mixes tiers within one call stack, so one check per
    /// activation suffices.
    fn run<T: HostCtx>(&mut self, inst: &mut Instance<T>, ctx: &mut T) -> RunResult {
        if inst.program.regir {
            self.run_reg(inst, ctx)
        } else {
            self.run_stack(inst, ctx)
        }
    }

    /// The stack-tier interpreter loop.
    fn run_stack<T: HostCtx>(&mut self, inst: &mut Instance<T>, ctx: &mut T) -> RunResult {
        let program = inst.program.clone();
        let mut cur: Arc<PreparedFunc> =
            match &program.funcs[self.frames.last().expect("frame").func as usize] {
                FuncDef::Local(c) => c.clone(),
                FuncDef::Host { .. } => unreachable!("frames are local functions"),
            };

        macro_rules! trap {
            ($t:expr) => {{
                self.frames.clear();
                self.stack.clear();
                return RunResult::Trapped($t);
            }};
        }

        // Signal delivery at syscall exit: after a host call returns, check
        // for aborts and deliver any pending handler re-entrantly (Linux
        // delivers signals on the return path of syscalls).
        macro_rules! post_host_poll {
            () => {{
                if let Some(t) = ctx.check_abort() {
                    trap!(t);
                }
                if let Some(call) = ctx.poll_signal() {
                    match program.funcs.get(call.func as usize) {
                        Some(FuncDef::Local(code)) => {
                            let code = code.clone();
                            for a in &call.args {
                                self.stack.push(a.raw());
                            }
                            if let Err(t) = self.push_frame(call.func, &code, false, true) {
                                trap!(t);
                            }
                            cur = code;
                        }
                        _ => trap!(Trap::Host("bad signal handler index".into())),
                    }
                }
            }};
        }

        loop {
            if let Some(fuel) = &mut self.fuel {
                if *fuel == 0 {
                    // Yield at an op boundary; resume(&[]) continues here.
                    self.pending_results = Some(Vec::new());
                    return RunResult::Suspended(Suspension::new(Preempted));
                }
                *fuel -= 1;
            }
            let frame = self.frames.last_mut().expect("frame");
            let pc = frame.pc;
            frame.pc += 1;
            let op = match cur.ops.get(pc) {
                Some(op) => op,
                None => trap!(Trap::Host("pc out of bounds".into())),
            };
            self.steps += 1;

            match op {
                Op::Unreachable => trap!(Trap::Unreachable),
                Op::Safepoint => {
                    if let Some(t) = ctx.check_abort() {
                        trap!(t);
                    }
                    if let Some(call) = ctx.poll_signal() {
                        let func = call.func;
                        match program.funcs.get(func as usize) {
                            Some(FuncDef::Local(code)) => {
                                let code = code.clone();
                                for a in &call.args {
                                    self.stack.push(a.raw());
                                }
                                if let Err(t) = self.push_frame(func, &code, false, true) {
                                    trap!(t);
                                }
                                cur = code;
                            }
                            Some(FuncDef::Host { f, .. }) => {
                                let f = f.clone();
                                let mut caller = Caller {
                                    instance: inst,
                                    data: ctx,
                                };
                                match f(&mut caller, &call.args) {
                                    Ok(_) => {}
                                    Err(HostOutcome::Trap(t)) => trap!(t),
                                    Err(HostOutcome::Suspend(_)) => {
                                        trap!(Trap::Host("suspend in signal handler".into()))
                                    }
                                }
                            }
                            None => trap!(Trap::Host("bad signal handler index".into())),
                        }
                    }
                }
                Op::Br(d) => {
                    let d = *d;
                    self.do_branch(&d);
                }
                Op::BrIf(d) => {
                    let d = *d;
                    let c = self.pop();
                    if c as u32 != 0 {
                        self.do_branch(&d);
                    }
                }
                Op::BrIfZero(d) => {
                    let d = *d;
                    let c = self.pop();
                    if c as u32 == 0 {
                        self.do_branch(&d);
                    }
                }
                Op::BrTable(dests, def) => {
                    let i = self.pop() as u32 as usize;
                    let d = *dests.get(i).unwrap_or(def);
                    self.do_branch(&d);
                }
                Op::Return => {
                    let frame = self.frames.pop().expect("frame");
                    if frame.signal_frame {
                        ctx.signal_return();
                    }
                    let results = frame.results as usize;
                    let from = self.stack.len() - results;
                    // Move results down over the frame's locals+operands.
                    self.stack.copy_within(from.., frame.base);
                    self.stack.truncate(frame.base + results);
                    if frame.barrier {
                        let func_ty = inst
                            .func_type(frame.func)
                            .expect("function exists")
                            .results
                            .clone();
                        let mut out = Vec::with_capacity(results);
                        for (i, ty) in func_ty.iter().enumerate() {
                            out.push(Value::from_raw(*ty, self.stack[frame.base + i]));
                        }
                        self.stack.truncate(frame.base);
                        return RunResult::Done(out);
                    }
                    let parent = self.frames.last().expect("parent frame");
                    cur = match &program.funcs[parent.func as usize] {
                        FuncDef::Local(c) => c.clone(),
                        FuncDef::Host { .. } => unreachable!(),
                    };
                }
                Op::Call(f) => {
                    let f = *f;
                    match &program.funcs[f as usize] {
                        FuncDef::Local(code) => {
                            let code = code.clone();
                            if let Err(t) = self.push_frame(f, &code, false, false) {
                                trap!(t);
                            }
                            cur = code;
                        }
                        FuncDef::Host { f: hf, ty, .. } => {
                            let hf = hf.clone();
                            let ty = program.types[*ty as usize].clone();
                            let n = ty.params.len();
                            let argbase = self.stack.len() - n;
                            let mut args = Vec::with_capacity(n);
                            for (i, t) in ty.params.iter().enumerate() {
                                args.push(Value::from_raw(*t, self.stack[argbase + i]));
                            }
                            self.stack.truncate(argbase);
                            let mut caller = Caller {
                                instance: inst,
                                data: ctx,
                            };
                            match hf(&mut caller, &args) {
                                Ok(values) => {
                                    if values.len() != ty.results.len() {
                                        trap!(Trap::Host("host result arity".into()));
                                    }
                                    for v in values {
                                        self.stack.push(v.raw());
                                    }
                                    post_host_poll!();
                                }
                                Err(HostOutcome::Trap(t)) => trap!(t),
                                Err(HostOutcome::Suspend(s)) => {
                                    self.pending_results = Some(ty.results.clone());
                                    return RunResult::Suspended(s);
                                }
                            }
                        }
                    }
                }
                Op::CallIndirect(expect_ty) => {
                    let expect_ty = *expect_ty;
                    let idx = self.pop() as u32 as usize;
                    let entry = match inst.table.get(idx) {
                        Some(e) => *e,
                        None => trap!(Trap::TableOutOfBounds),
                    };
                    let f = match entry {
                        Some(f) => f,
                        None => trap!(Trap::UninitializedElement),
                    };
                    let actual = program.funcs[f as usize].type_idx();
                    if program.types[actual as usize] != program.types[expect_ty as usize] {
                        trap!(Trap::IndirectCallTypeMismatch);
                    }
                    match &program.funcs[f as usize] {
                        FuncDef::Local(code) => {
                            let code = code.clone();
                            if let Err(t) = self.push_frame(f, &code, false, false) {
                                trap!(t);
                            }
                            cur = code;
                        }
                        FuncDef::Host { f: hf, ty, .. } => {
                            let hf = hf.clone();
                            let ty = program.types[*ty as usize].clone();
                            let n = ty.params.len();
                            let argbase = self.stack.len() - n;
                            let mut args = Vec::with_capacity(n);
                            for (i, t) in ty.params.iter().enumerate() {
                                args.push(Value::from_raw(*t, self.stack[argbase + i]));
                            }
                            self.stack.truncate(argbase);
                            let mut caller = Caller {
                                instance: inst,
                                data: ctx,
                            };
                            match hf(&mut caller, &args) {
                                Ok(values) => {
                                    for v in values {
                                        self.stack.push(v.raw());
                                    }
                                    post_host_poll!();
                                }
                                Err(HostOutcome::Trap(t)) => trap!(t),
                                Err(HostOutcome::Suspend(s)) => {
                                    self.pending_results = Some(ty.results.clone());
                                    return RunResult::Suspended(s);
                                }
                            }
                        }
                    }
                }
                Op::Drop => {
                    self.pop();
                }
                Op::Select => {
                    let c = self.pop() as u32;
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(if c != 0 { a } else { b });
                }
                Op::LocalGet(i) => {
                    let frame = self.frames.last().expect("frame");
                    let v = self.stack[frame.base + *i as usize];
                    self.stack.push(v);
                }
                Op::LocalSet(i) => {
                    let v = self.pop();
                    let frame = self.frames.last().expect("frame");
                    self.stack[frame.base + *i as usize] = v;
                }
                Op::LocalTee(i) => {
                    let v = *self.stack.last().expect("operand");
                    let frame = self.frames.last().expect("frame");
                    self.stack[frame.base + *i as usize] = v;
                }
                Op::GlobalGet(i) => self.stack.push(inst.globals[*i as usize]),
                Op::GlobalSet(i) => {
                    let v = self.pop();
                    inst.globals[*i as usize] = v;
                }
                Op::Load(kind, offset) => {
                    let addr = self.pop() as u32 as u64 + offset;
                    let v = match load(&inst.memory, *kind, addr) {
                        Ok(v) => v,
                        Err(t) => trap!(t),
                    };
                    self.stack.push(v);
                }
                Op::Store(kind, offset) => {
                    let v = self.pop();
                    let addr = self.pop() as u32 as u64 + offset;
                    if let Err(t) = store(&inst.memory, *kind, addr, v) {
                        trap!(t);
                    }
                }
                Op::MemorySize => self.stack.push(inst.memory.pages() as u64),
                Op::MemoryGrow => {
                    let delta = self.pop() as u32;
                    let prev = inst.memory.grow(delta);
                    self.stack.push(prev as u32 as u64);
                }
                Op::MemoryCopy => {
                    let len = self.pop() as u32 as u64;
                    let src = self.pop() as u32 as u64;
                    let dst = self.pop() as u32 as u64;
                    if let Err(t) = inst.memory.copy_within(dst, src, len) {
                        trap!(t);
                    }
                }
                Op::MemoryFill => {
                    let len = self.pop() as u32 as u64;
                    let val = self.pop() as u8;
                    let dst = self.pop() as u32 as u64;
                    if let Err(t) = inst.memory.fill(dst, val, len) {
                        trap!(t);
                    }
                }
                Op::Const(v) => self.stack.push(*v),
                Op::Un(op) => {
                    let a = self.pop();
                    match eval_un(*op, a) {
                        Ok(v) => self.stack.push(v),
                        Err(t) => trap!(t),
                    }
                }
                Op::Bin(op) => {
                    let b = self.pop();
                    let a = self.pop();
                    match eval_bin(*op, a, b) {
                        Ok(v) => self.stack.push(v),
                        Err(t) => trap!(t),
                    }
                }
                Op::Rel(op) => {
                    let b = self.pop();
                    let a = self.pop();
                    self.stack.push(eval_rel(*op, a, b) as u64);
                }
                Op::Cvt(op) => {
                    let a = self.pop();
                    match eval_cvt(*op, a) {
                        Ok(v) => self.stack.push(v),
                        Err(t) => trap!(t),
                    }
                }
                Op::AtomicNotify(offset) => {
                    let _count = self.pop() as u32;
                    let addr = self.pop() as u32 as u64 + offset;
                    if let Err(t) = inst.memory.check(addr, 4) {
                        trap!(t);
                    }
                    // Engine-level parking is not modeled; WALI threads use
                    // SYS_futex. Report zero waiters woken.
                    self.stack.push(0);
                }
                Op::AtomicWait32(offset) => {
                    let _timeout = self.pop() as i64;
                    let expected = self.pop() as u32;
                    let addr = self.pop() as u32 as u64 + offset;
                    let v = match inst.memory.atomic_load32(addr) {
                        Ok(v) => v,
                        Err(t) => trap!(t),
                    };
                    // 1 = value mismatch, 2 = timed out (immediately; see
                    // AtomicNotify above).
                    self.stack.push(if v != expected { 1 } else { 2 });
                }
                Op::AtomicFence => {
                    std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
                }
                Op::AtomicLoad(w, offset) => {
                    let addr = self.pop() as u32 as u64 + offset;
                    let r = match w {
                        crate::instr::AtomicWidth::I32 => {
                            inst.memory.atomic_load32(addr).map(|v| v as u64)
                        }
                        crate::instr::AtomicWidth::I64 => inst.memory.atomic_load64(addr),
                    };
                    match r {
                        Ok(v) => self.stack.push(v),
                        Err(t) => trap!(t),
                    }
                }
                Op::AtomicStore(w, offset) => {
                    let v = self.pop();
                    let addr = self.pop() as u32 as u64 + offset;
                    let r = match w {
                        crate::instr::AtomicWidth::I32 => {
                            inst.memory.atomic_store32(addr, v as u32)
                        }
                        crate::instr::AtomicWidth::I64 => inst.memory.atomic_store64(addr, v),
                    };
                    if let Err(t) = r {
                        trap!(t);
                    }
                }
                Op::AtomicRmw(op, offset) => {
                    let v = self.pop() as u32;
                    let addr = self.pop() as u32 as u64 + offset;
                    match inst.memory.atomic_rmw32(addr, *op, v) {
                        Ok(old) => self.stack.push(old as u64),
                        Err(t) => trap!(t),
                    }
                }
                Op::AtomicCmpxchg(offset) => {
                    let new = self.pop() as u32;
                    let expected = self.pop() as u32;
                    let addr = self.pop() as u32 as u64 + offset;
                    match inst.memory.atomic_cmpxchg32(addr, expected, new) {
                        Ok(old) => self.stack.push(old as u64),
                        Err(t) => trap!(t),
                    }
                }

                // Fused superinstructions: one dispatch for the dominant
                // pairs/triples, semantically identical to the unfused
                // sequences above.
                Op::LocalLocalBin(a, b, op) => {
                    let frame = self.frames.last().expect("frame");
                    let va = self.stack[frame.base + *a as usize];
                    let vb = self.stack[frame.base + *b as usize];
                    match eval_bin(*op, va, vb) {
                        Ok(v) => self.stack.push(v),
                        Err(t) => trap!(t),
                    }
                }
                Op::LocalConstBin(a, k, op) => {
                    let frame = self.frames.last().expect("frame");
                    let va = self.stack[frame.base + *a as usize];
                    match eval_bin(*op, va, *k) {
                        Ok(v) => self.stack.push(v),
                        Err(t) => trap!(t),
                    }
                }
                Op::ConstBin(k, op) => {
                    let a = self.pop();
                    match eval_bin(*op, a, *k) {
                        Ok(v) => self.stack.push(v),
                        Err(t) => trap!(t),
                    }
                }
                Op::RelBrIf(rel, d) => {
                    let d = *d;
                    let b = self.pop();
                    let a = self.pop();
                    if eval_rel(*rel, a, b) != 0 {
                        self.do_branch(&d);
                    }
                }
                Op::RelBrIfZero(rel, d) => {
                    let d = *d;
                    let b = self.pop();
                    let a = self.pop();
                    if eval_rel(*rel, a, b) == 0 {
                        self.do_branch(&d);
                    }
                }
                Op::LocalLoad(i, kind, offset) => {
                    let frame = self.frames.last().expect("frame");
                    let base = self.stack[frame.base + *i as usize];
                    let addr = base as u32 as u64 + offset;
                    let v = match load(&inst.memory, *kind, addr) {
                        Ok(v) => v,
                        Err(t) => trap!(t),
                    };
                    self.stack.push(v);
                }
            }
        }
    }

    #[inline]
    fn pop(&mut self) -> u64 {
        self.stack.pop().expect("validated operand stack")
    }

    #[inline]
    fn do_branch(&mut self, d: &BrDest) {
        let frame = self.frames.last_mut().expect("frame");
        frame.pc = d.target as usize;
        let keep = d.keep as usize;
        let tgt = frame.opbase + d.drop_to as usize;
        let from = self.stack.len() - keep;
        if from != tgt {
            self.stack.copy_within(from.., tgt);
            self.stack.truncate(tgt + keep);
        }
    }

    /// The register-tier interpreter loop ([`crate::regir`]): three-address
    /// ops over an in-frame register file, no operand push/pop traffic on
    /// straight-line code. The frame invariant is that the stack holds
    /// exactly `base + nregs` slots while a register frame is on top, so
    /// clone/suspend/safepoint re-entry see the same canonical layout the
    /// stack tier produces.
    ///
    /// The loop is two-level: the outer `'frame` loop re-derives per-frame
    /// state (code, ops slice, `base`, `pc`) once per activation, and the
    /// inner dispatch loop runs on locals only. `frame.pc` and the step/fuel
    /// counters are synced back exclusively at frame switches, host calls
    /// and run exits — never on the straight-line or branch fast path.
    fn run_reg<T: HostCtx>(&mut self, inst: &mut Instance<T>, ctx: &mut T) -> RunResult {
        let program = inst.program.clone();
        let mut cur: Arc<PreparedFunc> =
            match &program.funcs[self.frames.last().expect("frame").func as usize] {
                FuncDef::Local(c) => c.clone(),
                FuncDef::Host { .. } => unreachable!("frames are local functions"),
            };

        // Re-entry after a suspension: the host call truncated the stack to
        // its result top. Re-extend to the full register frame — every slot
        // above the results is dead or re-derivable from locals/immediates.
        {
            let frame = self.frames.last().expect("frame");
            let need = frame.base + cur.reg.as_ref().expect("register tier").nregs as usize;
            if self.stack.len() < need {
                self.stack.resize(need, 0);
            }
        }

        // Dispatch-loop state held in locals; `flush!` reconciles the
        // thread-visible counters on every path that leaves the loop.
        let mut fuel = self.fuel;
        let mut steps: u64 = 0;

        macro_rules! flush {
            () => {{
                self.fuel = fuel;
                self.steps += steps;
                self.reg_steps += steps;
            }};
        }

        macro_rules! trap {
            ($t:expr) => {{
                flush!();
                self.frames.clear();
                self.stack.clear();
                return RunResult::Trapped($t);
            }};
        }

        'frame: loop {
            // Frame activation: hoist everything per-frame out of the
            // dispatch loop. `codearc` pins the borrow of the ops slice so
            // `cur` stays reassignable at the switch points below.
            let codearc = cur.clone();
            let rcode = codearc
                .reg
                .as_ref()
                .expect("register tier requires lowered code");
            let ops: &[ROp] = &rcode.ops;
            let consts: &[u64] = &rcode.consts;
            let nregs = rcode.nregs as usize;
            let (mut pc, base) = {
                let f = self.frames.last().expect("frame");
                (f.pc, f.base)
            };

            // SAFETY (for the three macros below): `regir::lower` only
            // returns code whose register indices are `< nregs` and whose
            // pool indices are within `consts` (its `validated` pass), and
            // the frame invariant keeps `stack.len() >= base + nregs`
            // while this frame is on top (entry resize, `push_frame`,
            // `post_host_poll!` and the `Return` resize all re-establish
            // it). The unchecked accesses therefore stay in bounds; they
            // are the hottest loads/stores in the interpreter.

            // Register read.
            macro_rules! reg {
                ($r:expr) => {
                    unsafe { *self.stack.get_unchecked(base + $r as usize) }
                };
            }

            // Register write.
            macro_rules! set_reg {
                ($r:expr, $v:expr) => {{
                    let v = $v;
                    unsafe {
                        *self.stack.get_unchecked_mut(base + $r as usize) = v;
                    }
                }};
            }

            // Register-or-immediate operand read (immediates live in the
            // function's constant pool).
            macro_rules! src {
                ($s:expr, $base:expr) => {
                    match $s {
                        RSrc::Reg(r) => reg!(r),
                        RSrc::Const(i) => unsafe { *consts.get_unchecked(i as usize) },
                    }
                };
            }

            // Write the local pc back to the frame — required before any
            // host call (fork clones the thread mid-call) and any frame
            // push (the interrupted/calling frame must resume after the op).
            macro_rules! sync_pc {
                () => {
                    self.frames.last_mut().expect("frame").pc = pc
                };
            }

            // The safepoint poll (paper §3.3). Registers already sit
            // canonically in the frame — a handler frame stacks directly
            // on top, no spill needed. Shared by the `Safepoint` op and
            // poll-carrying branches (the back-edge fold); in both cases
            // `pc` is already the handler's resume point.
            macro_rules! poll_signals {
                () => {{
                    if let Some(t) = ctx.check_abort() {
                        trap!(t);
                    }
                    if let Some(call) = ctx.poll_signal() {
                        let func = call.func;
                        match program.funcs.get(func as usize) {
                            Some(FuncDef::Local(code)) => {
                                let code = code.clone();
                                sync_pc!();
                                for a in &call.args {
                                    self.stack.push(a.raw());
                                }
                                if let Err(t) = self.push_frame(func, &code, false, true) {
                                    trap!(t);
                                }
                                cur = code;
                                continue 'frame;
                            }
                            Some(FuncDef::Host { f, .. }) => {
                                let f = f.clone();
                                sync_pc!();
                                let mut caller = Caller {
                                    instance: inst,
                                    data: ctx,
                                };
                                match f(&mut caller, &call.args) {
                                    Ok(_) => {}
                                    Err(HostOutcome::Trap(t)) => trap!(t),
                                    Err(HostOutcome::Suspend(_)) => {
                                        trap!(Trap::Host("suspend in signal handler".into()))
                                    }
                                }
                            }
                            None => trap!(Trap::Host("bad signal handler index".into())),
                        }
                    }
                }};
            }

            // A register-IR branch: jump, plus the statically resolved copy
            // of the `keep` registers carried to their canonical home (a
            // no-op on most branches). Stays inside the current frame, so
            // no writeback. `poll` branches absorbed a loop-header
            // safepoint (see `regir::fold_safepoint_polls`).
            macro_rules! branch {
                ($d:expr) => {{
                    let d = $d;
                    pc = d.target as usize;
                    if d.keep > 0 && d.src != d.dst {
                        let (s, t) = (base + d.src as usize, base + d.dst as usize);
                        self.stack.copy_within(s..s + d.keep as usize, t);
                    }
                    if d.poll {
                        poll_signals!();
                    }
                }};
            }

            // Signal delivery at syscall exit (see `run_stack`): the stack
            // is restored to the full register frame before a handler frame
            // is stacked on top of it.
            macro_rules! post_host_poll {
                () => {{
                    if let Some(t) = ctx.check_abort() {
                        trap!(t);
                    }
                    self.stack.resize(base + nregs, 0);
                    if let Some(call) = ctx.poll_signal() {
                        match program.funcs.get(call.func as usize) {
                            Some(FuncDef::Local(code)) => {
                                let code = code.clone();
                                for a in &call.args {
                                    self.stack.push(a.raw());
                                }
                                if let Err(t) = self.push_frame(call.func, &code, false, true) {
                                    trap!(t);
                                }
                                cur = code;
                                continue 'frame;
                            }
                            _ => trap!(Trap::Host("bad signal handler index".into())),
                        }
                    }
                }};
            }

            loop {
                if let Some(f) = &mut fuel {
                    if *f == 0 {
                        // Yield at an op boundary; resume(&[]) continues here.
                        sync_pc!();
                        flush!();
                        self.pending_results = Some(Vec::new());
                        return RunResult::Suspended(Suspension::new(Preempted));
                    }
                    *f -= 1;
                }
                // SAFETY: `regir::validated` guarantees every branch
                // target is in bounds and the last op is a terminator, so
                // neither fallthrough nor a jump can move `pc` past the
                // array (resume pcs always follow non-terminator ops).
                let op = unsafe { ops.get_unchecked(pc) };
                pc += 1;
                steps += 1;

                match op {
                    ROp::Unreachable => trap!(Trap::Unreachable),
                    ROp::Safepoint => poll_signals!(),
                    ROp::Mov { dst, src } => {
                        let v = src!(*src, base);
                        set_reg!(*dst, v);
                    }
                    ROp::Br(d) => branch!(*d),
                    ROp::BrIf { cond, dest } => {
                        let (c, d) = (src!(*cond, base), *dest);
                        if c as u32 != 0 {
                            branch!(d);
                        }
                    }
                    ROp::BrIfZero { cond, dest } => {
                        let (c, d) = (src!(*cond, base), *dest);
                        if c as u32 == 0 {
                            branch!(d);
                        }
                    }
                    ROp::RelBr {
                        op,
                        a,
                        b,
                        if_true,
                        dest,
                    } => {
                        let (va, vb) = (src!(*a, base), src!(*b, base));
                        let (want, d) = (*if_true, *dest);
                        if (eval_rel(*op, va, vb) != 0) == want {
                            branch!(d);
                        }
                    }
                    ROp::BrTable { idx, table } => {
                        let i = src!(*idx, base) as u32 as usize;
                        let d = *table.dests.get(i).unwrap_or(&table.default);
                        branch!(d);
                    }
                    ROp::Return { src, n } => {
                        let (src, n) = (*src as usize, *n as usize);
                        let frame = self.frames.pop().expect("frame");
                        if frame.signal_frame {
                            ctx.signal_return();
                        }
                        let from = frame.base + src;
                        // Move results down over the register frame.
                        self.stack.copy_within(from..from + n, frame.base);
                        self.stack.truncate(frame.base + n);
                        if frame.barrier {
                            let func_ty = inst
                                .func_type(frame.func)
                                .expect("function exists")
                                .results
                                .clone();
                            let mut out = Vec::with_capacity(n);
                            for (i, ty) in func_ty.iter().enumerate() {
                                out.push(Value::from_raw(*ty, self.stack[frame.base + i]));
                            }
                            self.stack.truncate(frame.base);
                            flush!();
                            return RunResult::Done(out);
                        }
                        let parent = self.frames.last().expect("parent frame");
                        let pbase = parent.base;
                        cur = match &program.funcs[parent.func as usize] {
                            FuncDef::Local(c) => c.clone(),
                            FuncDef::Host { .. } => unreachable!(),
                        };
                        // The results landed exactly in the caller's
                        // canonical result registers; re-extend to its full
                        // frame. (The parent's pc was synced at its call.)
                        let pnregs = cur.reg.as_ref().expect("register tier").nregs as usize;
                        self.stack.resize(pbase + pnregs, 0);
                        continue 'frame;
                    }
                    ROp::Call { func, top, nargs } => {
                        let f = *func;
                        let (top, nargs) = (*top as usize, *nargs as usize);
                        match &program.funcs[f as usize] {
                            FuncDef::Local(code) => {
                                let code = code.clone();
                                sync_pc!();
                                // The arguments are the top `nargs` canonical
                                // registers; the callee frame starts on them.
                                self.stack.truncate(base + top);
                                if let Err(t) = self.push_frame(f, &code, false, false) {
                                    trap!(t);
                                }
                                cur = code;
                                continue 'frame;
                            }
                            FuncDef::Host { f: hf, ty, .. } => {
                                let hf = hf.clone();
                                let ty = program.types[*ty as usize].clone();
                                sync_pc!();
                                let argbase = base + top - nargs;
                                let mut args = Vec::with_capacity(nargs);
                                for (i, t) in ty.params.iter().enumerate() {
                                    args.push(Value::from_raw(*t, self.stack[argbase + i]));
                                }
                                self.stack.truncate(argbase);
                                let mut caller = Caller {
                                    instance: inst,
                                    data: ctx,
                                };
                                match hf(&mut caller, &args) {
                                    Ok(values) => {
                                        if values.len() != ty.results.len() {
                                            trap!(Trap::Host("host result arity".into()));
                                        }
                                        for v in values {
                                            self.stack.push(v.raw());
                                        }
                                        post_host_poll!();
                                    }
                                    Err(HostOutcome::Trap(t)) => trap!(t),
                                    Err(HostOutcome::Suspend(s)) => {
                                        flush!();
                                        self.pending_results = Some(ty.results.clone());
                                        return RunResult::Suspended(s);
                                    }
                                }
                            }
                        }
                    }
                    ROp::CallIndirect {
                        ty: expect_ty,
                        idx,
                        top,
                        nargs,
                    } => {
                        let expect_ty = *expect_ty;
                        let (top, nargs) = (*top as usize, *nargs as usize);
                        let i = src!(*idx, base) as u32 as usize;
                        let entry = match inst.table.get(i) {
                            Some(e) => *e,
                            None => trap!(Trap::TableOutOfBounds),
                        };
                        let f = match entry {
                            Some(f) => f,
                            None => trap!(Trap::UninitializedElement),
                        };
                        let actual = program.funcs[f as usize].type_idx();
                        if program.types[actual as usize] != program.types[expect_ty as usize] {
                            trap!(Trap::IndirectCallTypeMismatch);
                        }
                        match &program.funcs[f as usize] {
                            FuncDef::Local(code) => {
                                let code = code.clone();
                                sync_pc!();
                                self.stack.truncate(base + top);
                                if let Err(t) = self.push_frame(f, &code, false, false) {
                                    trap!(t);
                                }
                                cur = code;
                                continue 'frame;
                            }
                            FuncDef::Host { f: hf, ty, .. } => {
                                let hf = hf.clone();
                                let ty = program.types[*ty as usize].clone();
                                sync_pc!();
                                let argbase = base + top - nargs;
                                let mut args = Vec::with_capacity(nargs);
                                for (i, t) in ty.params.iter().enumerate() {
                                    args.push(Value::from_raw(*t, self.stack[argbase + i]));
                                }
                                self.stack.truncate(argbase);
                                let mut caller = Caller {
                                    instance: inst,
                                    data: ctx,
                                };
                                match hf(&mut caller, &args) {
                                    Ok(values) => {
                                        if values.len() != ty.results.len() {
                                            trap!(Trap::Host("host result arity".into()));
                                        }
                                        for v in values {
                                            self.stack.push(v.raw());
                                        }
                                        post_host_poll!();
                                    }
                                    Err(HostOutcome::Trap(t)) => trap!(t),
                                    Err(HostOutcome::Suspend(s)) => {
                                        flush!();
                                        self.pending_results = Some(ty.results.clone());
                                        return RunResult::Suspended(s);
                                    }
                                }
                            }
                        }
                    }
                    ROp::Select { dst, cond, a, b } => {
                        let c = src!(*cond, base) as u32;
                        let (va, vb) = (src!(*a, base), src!(*b, base));
                        set_reg!(*dst, if c != 0 { va } else { vb });
                    }
                    ROp::GlobalGet { dst, idx } => {
                        set_reg!(*dst, inst.globals[*idx as usize]);
                    }
                    ROp::GlobalSet { idx, src } => {
                        inst.globals[*idx as usize] = src!(*src, base);
                    }
                    ROp::Load {
                        dst,
                        kind,
                        addr,
                        offset,
                    } => {
                        let addr = src!(*addr, base) as u32 as u64 + *offset as u64;
                        let v = match load(&inst.memory, *kind, addr) {
                            Ok(v) => v,
                            Err(t) => trap!(t),
                        };
                        set_reg!(*dst, v);
                    }
                    ROp::Store {
                        kind,
                        addr,
                        val,
                        offset,
                    } => {
                        let v = src!(*val, base);
                        let addr = src!(*addr, base) as u32 as u64 + *offset as u64;
                        if let Err(t) = store(&inst.memory, *kind, addr, v) {
                            trap!(t);
                        }
                    }
                    ROp::MemorySize { dst } => {
                        set_reg!(*dst, inst.memory.pages() as u64);
                    }
                    ROp::MemoryGrow { dst, delta } => {
                        let delta = src!(*delta, base) as u32;
                        let prev = inst.memory.grow(delta);
                        set_reg!(*dst, prev as u32 as u64);
                    }
                    ROp::MemoryCopy { dst, src, len } => {
                        let len = src!(*len, base) as u32 as u64;
                        let s = src!(*src, base) as u32 as u64;
                        let d = src!(*dst, base) as u32 as u64;
                        if let Err(t) = inst.memory.copy_within(d, s, len) {
                            trap!(t);
                        }
                    }
                    ROp::MemoryFill { dst, val, len } => {
                        let len = src!(*len, base) as u32 as u64;
                        let v = src!(*val, base) as u8;
                        let d = src!(*dst, base) as u32 as u64;
                        if let Err(t) = inst.memory.fill(d, v, len) {
                            trap!(t);
                        }
                    }
                    ROp::Un { dst, op, a } => {
                        let a = src!(*a, base);
                        match eval_un(*op, a) {
                            Ok(v) => set_reg!(*dst, v),
                            Err(t) => trap!(t),
                        }
                    }
                    ROp::Bin { dst, op, a, b } => {
                        let (va, vb) = (src!(*a, base), src!(*b, base));
                        match eval_bin(*op, va, vb) {
                            Ok(v) => set_reg!(*dst, v),
                            Err(t) => trap!(t),
                        }
                    }
                    ROp::Rel { dst, op, a, b } => {
                        let (va, vb) = (src!(*a, base), src!(*b, base));
                        set_reg!(*dst, eval_rel(*op, va, vb) as u64);
                    }
                    ROp::Cvt { dst, op, a } => {
                        let a = src!(*a, base);
                        match eval_cvt(*op, a) {
                            Ok(v) => set_reg!(*dst, v),
                            Err(t) => trap!(t),
                        }
                    }
                    ROp::LoadIdx {
                        dst,
                        kind,
                        a,
                        b,
                        offset,
                    } => {
                        let (va, vb) = (src!(*a, base), src!(*b, base));
                        let addr = (va as u32).wrapping_add(vb as u32) as u64 + *offset as u64;
                        let v = match load(&inst.memory, *kind, addr) {
                            Ok(v) => v,
                            Err(t) => trap!(t),
                        };
                        set_reg!(*dst, v);
                    }
                    ROp::Bin2 {
                        op1,
                        a,
                        b,
                        dst1,
                        op2,
                        a2,
                        b2,
                        dst2,
                    } => {
                        let (va, vb) = (src!(*a, base), src!(*b, base));
                        let v1 = match eval_bin(*op1, va, vb) {
                            Ok(v) => v,
                            Err(t) => trap!(t),
                        };
                        // dst1 is written before the second op's operands
                        // are read: one aliasing dst1 sees the fresh
                        // value, exactly as the unfused sequence would.
                        set_reg!(*dst1, v1);
                        let (v2a, v2b) = (src!(*a2, base), src!(*b2, base));
                        match eval_bin(*op2, v2a, v2b) {
                            Ok(v) => set_reg!(*dst2, v),
                            Err(t) => trap!(t),
                        }
                    }
                    ROp::BinRelBr {
                        op,
                        a,
                        b,
                        dst,
                        rel,
                        c,
                        if_true,
                        target,
                        poll,
                    } => {
                        let (va, vb) = (src!(*a, base), src!(*b, base));
                        let v = match eval_bin(*op, va, vb) {
                            Ok(v) => v,
                            Err(t) => trap!(t),
                        };
                        set_reg!(*dst, v);
                        let vc = src!(*c, base);
                        if (eval_rel(*rel, v, vc) != 0) == *if_true {
                            pc = *target as usize;
                            if *poll {
                                poll_signals!();
                            }
                        }
                    }
                    ROp::CvtBin {
                        cvt,
                        a,
                        dst1,
                        op,
                        a2,
                        b2,
                        dst2,
                    } => {
                        let va = src!(*a, base);
                        let v1 = match eval_cvt(*cvt, va) {
                            Ok(v) => v,
                            Err(t) => trap!(t),
                        };
                        set_reg!(*dst1, v1);
                        let (v2a, v2b) = (src!(*a2, base), src!(*b2, base));
                        match eval_bin(*op, v2a, v2b) {
                            Ok(v) => set_reg!(*dst2, v),
                            Err(t) => trap!(t),
                        }
                    }
                    ROp::AtomicNotify {
                        dst,
                        addr,
                        count,
                        offset,
                    } => {
                        let _count = src!(*count, base) as u32;
                        let addr = src!(*addr, base) as u32 as u64 + *offset as u64;
                        if let Err(t) = inst.memory.check(addr, 4) {
                            trap!(t);
                        }
                        // See the stack tier: engine-level parking is not
                        // modeled, report zero waiters woken.
                        set_reg!(*dst, 0);
                    }
                    ROp::AtomicWait32 {
                        dst,
                        addr,
                        expected,
                        timeout,
                        offset,
                    } => {
                        let _timeout = src!(*timeout, base) as i64;
                        let expected = src!(*expected, base) as u32;
                        let addr = src!(*addr, base) as u32 as u64 + *offset as u64;
                        let v = match inst.memory.atomic_load32(addr) {
                            Ok(v) => v,
                            Err(t) => trap!(t),
                        };
                        set_reg!(*dst, if v != expected { 1 } else { 2 });
                    }
                    ROp::AtomicFence => {
                        std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
                    }
                    ROp::AtomicLoad {
                        dst,
                        width,
                        addr,
                        offset,
                    } => {
                        let addr = src!(*addr, base) as u32 as u64 + *offset as u64;
                        let r = match width {
                            crate::instr::AtomicWidth::I32 => {
                                inst.memory.atomic_load32(addr).map(|v| v as u64)
                            }
                            crate::instr::AtomicWidth::I64 => inst.memory.atomic_load64(addr),
                        };
                        match r {
                            Ok(v) => set_reg!(*dst, v),
                            Err(t) => trap!(t),
                        }
                    }
                    ROp::AtomicStore {
                        width,
                        addr,
                        val,
                        offset,
                    } => {
                        let v = src!(*val, base);
                        let addr = src!(*addr, base) as u32 as u64 + *offset as u64;
                        let r = match width {
                            crate::instr::AtomicWidth::I32 => {
                                inst.memory.atomic_store32(addr, v as u32)
                            }
                            crate::instr::AtomicWidth::I64 => inst.memory.atomic_store64(addr, v),
                        };
                        if let Err(t) = r {
                            trap!(t);
                        }
                    }
                    ROp::AtomicRmw {
                        dst,
                        op,
                        addr,
                        val,
                        offset,
                    } => {
                        let v = src!(*val, base) as u32;
                        let addr = src!(*addr, base) as u32 as u64 + *offset as u64;
                        match inst.memory.atomic_rmw32(addr, *op, v) {
                            Ok(old) => set_reg!(*dst, old as u64),
                            Err(t) => trap!(t),
                        }
                    }
                    ROp::AtomicCmpxchg {
                        dst,
                        addr,
                        expected,
                        new,
                        offset,
                    } => {
                        let new = src!(*new, base) as u32;
                        let expected = src!(*expected, base) as u32;
                        let addr = src!(*addr, base) as u32 as u64 + *offset as u64;
                        match inst.memory.atomic_cmpxchg32(addr, expected, new) {
                            Ok(old) => set_reg!(*dst, old as u64),
                            Err(t) => trap!(t),
                        }
                    }
                }
            }
        }
    }
}

fn load(mem: &Memory, kind: LoadKind, addr: u64) -> Result<u64, Trap> {
    Ok(match kind {
        LoadKind::I32 | LoadKind::F32 => u32::from_le_bytes(mem.load::<4>(addr)?) as u64,
        LoadKind::I64 | LoadKind::F64 => u64::from_le_bytes(mem.load::<8>(addr)?),
        LoadKind::I32_8S => mem.load::<1>(addr)?[0] as i8 as i32 as u32 as u64,
        LoadKind::I32_8U => mem.load::<1>(addr)?[0] as u64,
        LoadKind::I32_16S => i16::from_le_bytes(mem.load::<2>(addr)?) as i32 as u32 as u64,
        LoadKind::I32_16U => u16::from_le_bytes(mem.load::<2>(addr)?) as u64,
        LoadKind::I64_8S => mem.load::<1>(addr)?[0] as i8 as i64 as u64,
        LoadKind::I64_8U => mem.load::<1>(addr)?[0] as u64,
        LoadKind::I64_16S => i16::from_le_bytes(mem.load::<2>(addr)?) as i64 as u64,
        LoadKind::I64_16U => u16::from_le_bytes(mem.load::<2>(addr)?) as u64,
        LoadKind::I64_32S => i32::from_le_bytes(mem.load::<4>(addr)?) as i64 as u64,
        LoadKind::I64_32U => u32::from_le_bytes(mem.load::<4>(addr)?) as u64,
    })
}

fn store(mem: &Memory, kind: StoreKind, addr: u64, v: u64) -> Result<(), Trap> {
    match kind {
        StoreKind::I32 | StoreKind::F32 => mem.store::<4>(addr, (v as u32).to_le_bytes()),
        StoreKind::I64 | StoreKind::F64 => mem.store::<8>(addr, v.to_le_bytes()),
        StoreKind::I32_8 | StoreKind::I64_8 => mem.store::<1>(addr, [v as u8]),
        StoreKind::I32_16 | StoreKind::I64_16 => mem.store::<2>(addr, (v as u16).to_le_bytes()),
        StoreKind::I64_32 => mem.store::<4>(addr, (v as u32).to_le_bytes()),
    }
}

pub(crate) fn eval_un(op: UnOp, a: u64) -> Result<u64, Trap> {
    use UnOp::*;
    let v = match op {
        I32Clz => (a as u32).leading_zeros() as u64,
        I32Ctz => (a as u32).trailing_zeros() as u64,
        I32Popcnt => (a as u32).count_ones() as u64,
        I32Eqz => ((a as u32 == 0) as u32) as u64,
        I64Clz => (a.leading_zeros()) as u64,
        I64Ctz => (a.trailing_zeros()) as u64,
        I64Popcnt => (a.count_ones()) as u64,
        I64Eqz => ((a == 0) as u32) as u64,
        F32Abs => f32b(f32v(a).abs()),
        F32Neg => f32b(-f32v(a)),
        F32Ceil => f32b(f32v(a).ceil()),
        F32Floor => f32b(f32v(a).floor()),
        F32Trunc => f32b(f32v(a).trunc()),
        F32Nearest => f32b(nearest32(f32v(a))),
        F32Sqrt => f32b(f32v(a).sqrt()),
        F64Abs => f64b(f64v(a).abs()),
        F64Neg => f64b(-f64v(a)),
        F64Ceil => f64b(f64v(a).ceil()),
        F64Floor => f64b(f64v(a).floor()),
        F64Trunc => f64b(f64v(a).trunc()),
        F64Nearest => f64b(nearest64(f64v(a))),
        F64Sqrt => f64b(f64v(a).sqrt()),
        I32Extend8S => (a as u8 as i8 as i32) as u32 as u64,
        I32Extend16S => (a as u16 as i16 as i32) as u32 as u64,
        I64Extend8S => (a as u8 as i8 as i64) as u64,
        I64Extend16S => (a as u16 as i16 as i64) as u64,
        I64Extend32S => (a as u32 as i32 as i64) as u64,
    };
    Ok(v)
}

pub(crate) fn eval_bin(op: BinOp, a: u64, b: u64) -> Result<u64, Trap> {
    use BinOp::*;
    let v = match op {
        I32Add => (a as u32).wrapping_add(b as u32) as u64,
        I32Sub => (a as u32).wrapping_sub(b as u32) as u64,
        I32Mul => (a as u32).wrapping_mul(b as u32) as u64,
        I32DivS => {
            let (a, b) = (a as u32 as i32, b as u32 as i32);
            if b == 0 {
                return Err(Trap::DivisionByZero);
            }
            if a == i32::MIN && b == -1 {
                return Err(Trap::IntegerOverflow);
            }
            (a / b) as u32 as u64
        }
        I32DivU => {
            let (a, b) = (a as u32, b as u32);
            if b == 0 {
                return Err(Trap::DivisionByZero);
            }
            (a / b) as u64
        }
        I32RemS => {
            let (a, b) = (a as u32 as i32, b as u32 as i32);
            if b == 0 {
                return Err(Trap::DivisionByZero);
            }
            a.wrapping_rem(b) as u32 as u64
        }
        I32RemU => {
            let (a, b) = (a as u32, b as u32);
            if b == 0 {
                return Err(Trap::DivisionByZero);
            }
            (a % b) as u64
        }
        I32And => (a as u32 & b as u32) as u64,
        I32Or => (a as u32 | b as u32) as u64,
        I32Xor => (a as u32 ^ b as u32) as u64,
        I32Shl => (a as u32).wrapping_shl(b as u32) as u64,
        I32ShrS => ((a as u32 as i32).wrapping_shr(b as u32)) as u32 as u64,
        I32ShrU => (a as u32).wrapping_shr(b as u32) as u64,
        I32Rotl => (a as u32).rotate_left(b as u32 & 31) as u64,
        I32Rotr => (a as u32).rotate_right(b as u32 & 31) as u64,
        I64Add => a.wrapping_add(b),
        I64Sub => a.wrapping_sub(b),
        I64Mul => a.wrapping_mul(b),
        I64DivS => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                return Err(Trap::DivisionByZero);
            }
            if a == i64::MIN && b == -1 {
                return Err(Trap::IntegerOverflow);
            }
            (a / b) as u64
        }
        I64DivU => {
            if b == 0 {
                return Err(Trap::DivisionByZero);
            }
            a / b
        }
        I64RemS => {
            let (a, b) = (a as i64, b as i64);
            if b == 0 {
                return Err(Trap::DivisionByZero);
            }
            a.wrapping_rem(b) as u64
        }
        I64RemU => {
            if b == 0 {
                return Err(Trap::DivisionByZero);
            }
            a % b
        }
        I64And => a & b,
        I64Or => a | b,
        I64Xor => a ^ b,
        I64Shl => a.wrapping_shl(b as u32),
        I64ShrS => ((a as i64).wrapping_shr(b as u32)) as u64,
        I64ShrU => a.wrapping_shr(b as u32),
        I64Rotl => a.rotate_left(b as u32 & 63),
        I64Rotr => a.rotate_right(b as u32 & 63),
        F32Add => f32b(f32v(a) + f32v(b)),
        F32Sub => f32b(f32v(a) - f32v(b)),
        F32Mul => f32b(f32v(a) * f32v(b)),
        F32Div => f32b(f32v(a) / f32v(b)),
        F32Min => f32b(fmin32(f32v(a), f32v(b))),
        F32Max => f32b(fmax32(f32v(a), f32v(b))),
        F32Copysign => f32b(f32v(a).copysign(f32v(b))),
        F64Add => f64b(f64v(a) + f64v(b)),
        F64Sub => f64b(f64v(a) - f64v(b)),
        F64Mul => f64b(f64v(a) * f64v(b)),
        F64Div => f64b(f64v(a) / f64v(b)),
        F64Min => f64b(fmin64(f64v(a), f64v(b))),
        F64Max => f64b(fmax64(f64v(a), f64v(b))),
        F64Copysign => f64b(f64v(a).copysign(f64v(b))),
    };
    Ok(v)
}

pub(crate) fn eval_rel(op: RelOp, a: u64, b: u64) -> u32 {
    use RelOp::*;
    let r = match op {
        I32Eq => a as u32 == b as u32,
        I32Ne => a as u32 != b as u32,
        I32LtS => (a as u32 as i32) < (b as u32 as i32),
        I32LtU => (a as u32) < (b as u32),
        I32GtS => (a as u32 as i32) > (b as u32 as i32),
        I32GtU => (a as u32) > (b as u32),
        I32LeS => (a as u32 as i32) <= (b as u32 as i32),
        I32LeU => (a as u32) <= (b as u32),
        I32GeS => (a as u32 as i32) >= (b as u32 as i32),
        I32GeU => (a as u32) >= (b as u32),
        I64Eq => a == b,
        I64Ne => a != b,
        I64LtS => (a as i64) < (b as i64),
        I64LtU => a < b,
        I64GtS => (a as i64) > (b as i64),
        I64GtU => a > b,
        I64LeS => (a as i64) <= (b as i64),
        I64LeU => a <= b,
        I64GeS => (a as i64) >= (b as i64),
        I64GeU => a >= b,
        F32Eq => f32v(a) == f32v(b),
        F32Ne => f32v(a) != f32v(b),
        F32Lt => f32v(a) < f32v(b),
        F32Gt => f32v(a) > f32v(b),
        F32Le => f32v(a) <= f32v(b),
        F32Ge => f32v(a) >= f32v(b),
        F64Eq => f64v(a) == f64v(b),
        F64Ne => f64v(a) != f64v(b),
        F64Lt => f64v(a) < f64v(b),
        F64Gt => f64v(a) > f64v(b),
        F64Le => f64v(a) <= f64v(b),
        F64Ge => f64v(a) >= f64v(b),
    };
    r as u32
}

pub(crate) fn eval_cvt(op: CvtOp, a: u64) -> Result<u64, Trap> {
    use CvtOp::*;
    let v = match op {
        I32WrapI64 => a as u32 as u64,
        I32TruncF32S => {
            trunc_to_i64(f32v(a) as f64, i32::MIN as f64, i32::MAX as f64)? as u32 as u64
        }
        I32TruncF32U => trunc_to_u64(f32v(a) as f64, u32::MAX as f64)? as u32 as u64,
        I32TruncF64S => trunc_to_i64(f64v(a), i32::MIN as f64, i32::MAX as f64)? as u32 as u64,
        I32TruncF64U => trunc_to_u64(f64v(a), u32::MAX as f64)? as u32 as u64,
        I64ExtendI32S => (a as u32 as i32 as i64) as u64,
        I64ExtendI32U => a as u32 as u64,
        I64TruncF32S => trunc_to_i64(f32v(a) as f64, i64::MIN as f64, i64::MAX as f64)? as u64,
        I64TruncF32U => trunc_to_u64(f32v(a) as f64, u64::MAX as f64)?,
        I64TruncF64S => trunc_to_i64(f64v(a), i64::MIN as f64, i64::MAX as f64)? as u64,
        I64TruncF64U => trunc_to_u64(f64v(a), u64::MAX as f64)?,
        F32ConvertI32S => f32b(a as u32 as i32 as f32),
        F32ConvertI32U => f32b(a as u32 as f32),
        F32ConvertI64S => f32b(a as i64 as f32),
        F32ConvertI64U => f32b(a as f32),
        F32DemoteF64 => f32b(f64v(a) as f32),
        F64ConvertI32S => f64b(a as u32 as i32 as f64),
        F64ConvertI32U => f64b(a as u32 as f64),
        F64ConvertI64S => f64b(a as i64 as f64),
        F64ConvertI64U => f64b(a as f64),
        F64PromoteF32 => f64b(f32v(a) as f64),
        I32ReinterpretF32 => a as u32 as u64,
        I64ReinterpretF64 => a,
        F32ReinterpretI32 => a as u32 as u64,
        F64ReinterpretI64 => a,
    };
    Ok(v)
}

#[inline]
fn f32v(raw: u64) -> f32 {
    f32::from_bits(raw as u32)
}

#[inline]
fn f64v(raw: u64) -> f64 {
    f64::from_bits(raw)
}

#[inline]
fn f32b(v: f32) -> u64 {
    v.to_bits() as u64
}

#[inline]
fn f64b(v: f64) -> u64 {
    v.to_bits()
}

fn trunc_to_i64(v: f64, min: f64, max: f64) -> Result<i64, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = v.trunc();
    if t < min || t > max {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as i64)
}

fn trunc_to_u64(v: f64, max: f64) -> Result<u64, Trap> {
    if v.is_nan() {
        return Err(Trap::InvalidConversion);
    }
    let t = v.trunc();
    if t < 0.0 || t > max {
        return Err(Trap::IntegerOverflow);
    }
    Ok(t as u64)
}

/// Round-half-to-even, per the Wasm spec.
fn nearest32(v: f32) -> f32 {
    let r = v.round();
    if (r - v).abs() == 0.5 && r % 2.0 != 0.0 {
        r - v.signum()
    } else {
        r
    }
}

fn nearest64(v: f64) -> f64 {
    let r = v.round();
    if (r - v).abs() == 0.5 && r % 2.0 != 0.0 {
        r - v.signum()
    } else {
        r
    }
}

fn fmin32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == 0.0 && b == 0.0 {
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else {
        a.min(b)
    }
}

fn fmax32(a: f32, b: f32) -> f32 {
    if a.is_nan() || b.is_nan() {
        f32::NAN
    } else if a == 0.0 && b == 0.0 {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else {
        a.max(b)
    }
}

fn fmin64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == 0.0 && b == 0.0 {
        if a.is_sign_negative() {
            a
        } else {
            b
        }
    } else {
        a.min(b)
    }
}

fn fmax64(a: f64, b: f64) -> f64 {
    if a.is_nan() || b.is_nan() {
        f64::NAN
    } else if a == 0.0 && b == 0.0 {
        if a.is_sign_positive() {
            a
        } else {
            b
        }
    } else {
        a.max(b)
    }
}
