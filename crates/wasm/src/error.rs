//! Engine error and trap types.

use core::fmt;

/// An error while decoding a binary module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended mid-construct.
    UnexpectedEof,
    /// Bad magic number or version.
    BadHeader,
    /// LEB128 integer used more bytes than its width allows.
    IntegerTooLong,
    /// LEB128 integer value exceeds its declared width.
    IntegerTooLarge,
    /// A name was not valid UTF-8.
    InvalidUtf8,
    /// Unknown or unsupported opcode byte(s).
    UnknownOpcode(u32),
    /// Unknown section id.
    UnknownSection(u8),
    /// Sections out of order or duplicated.
    SectionOrder(u8),
    /// A section's declared size did not match its content.
    SectionSize,
    /// An index or count was malformed.
    Malformed(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::BadHeader => write!(f, "bad wasm magic or version"),
            DecodeError::IntegerTooLong => write!(f, "LEB128 integer too long"),
            DecodeError::IntegerTooLarge => write!(f, "LEB128 integer too large"),
            DecodeError::InvalidUtf8 => write!(f, "invalid UTF-8 in name"),
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode 0x{op:x}"),
            DecodeError::UnknownSection(id) => write!(f, "unknown section id {id}"),
            DecodeError::SectionOrder(id) => write!(f, "section {id} out of order"),
            DecodeError::SectionSize => write!(f, "section size mismatch"),
            DecodeError::Malformed(what) => write!(f, "malformed {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// An error found by the validator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ValidateError {
    /// Function index the error occurred in, if any.
    pub func: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl ValidateError {
    pub(crate) fn msg(message: impl Into<String>) -> Self {
        ValidateError {
            func: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.func {
            Some(i) => write!(f, "validation error in func {i}: {}", self.message),
            None => write!(f, "validation error: {}", self.message),
        }
    }
}

impl std::error::Error for ValidateError {}

/// A runtime trap.
///
/// Traps are the Wasm-level analogue of synchronous signals: the paper maps
/// hardware faults (SIGSEGV, SIGFPE, …) onto engine traps (§3.3), and WALI
/// adds interface traps such as [`Trap::Forbidden`] for `sigreturn` (§3.6)
/// and [`Trap::Nosys`] for name-bound calls the platform cannot attempt
/// (§3.5).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Trap {
    /// `unreachable` executed.
    Unreachable,
    /// Linear-memory access out of bounds (the SIGSEGV analogue).
    MemoryOutOfBounds,
    /// Table access out of bounds.
    TableOutOfBounds,
    /// `call_indirect` on a null table entry.
    UninitializedElement,
    /// `call_indirect` signature mismatch.
    IndirectCallTypeMismatch,
    /// Integer division by zero (the SIGFPE analogue).
    DivisionByZero,
    /// `INT_MIN / -1` style overflow (also SIGFPE).
    IntegerOverflow,
    /// Float-to-int conversion out of range.
    InvalidConversion,
    /// Wasm call stack exhausted.
    StackOverflow,
    /// The embedder aborted execution.
    Aborted,
    /// A WALI syscall that this platform cannot faithfully attempt.
    Nosys(&'static str),
    /// A syscall forbidden by the WALI security model (e.g. `sigreturn`).
    Forbidden(&'static str),
    /// Host-defined trap with a message.
    Host(String),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Unreachable => write!(f, "unreachable executed"),
            Trap::MemoryOutOfBounds => write!(f, "out-of-bounds memory access"),
            Trap::TableOutOfBounds => write!(f, "out-of-bounds table access"),
            Trap::UninitializedElement => write!(f, "uninitialized table element"),
            Trap::IndirectCallTypeMismatch => write!(f, "indirect call type mismatch"),
            Trap::DivisionByZero => write!(f, "integer division by zero"),
            Trap::IntegerOverflow => write!(f, "integer overflow"),
            Trap::InvalidConversion => write!(f, "invalid float-to-int conversion"),
            Trap::StackOverflow => write!(f, "call stack exhausted"),
            Trap::Aborted => write!(f, "execution aborted"),
            Trap::Nosys(name) => write!(f, "syscall {name} not supported on this platform"),
            Trap::Forbidden(name) => write!(f, "syscall {name} forbidden by WALI"),
            Trap::Host(m) => write!(f, "host trap: {m}"),
        }
    }
}

impl std::error::Error for Trap {}
