//! Preparation ("compilation"): validated structured code → flat op arrays
//! with resolved branch targets, plus safepoint insertion.
//!
//! This is the engine's execution tier. Branches are pre-resolved to
//! `(pc, stack-fixup)` pairs so the interpreter never scans for block
//! boundaries; the naive QEMU-analogue tier in `wali-virt` deliberately
//! skips this step.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::ValidateError;
use crate::host::{HostFn, Linker};
use crate::instr::{BlockType, Instr};
use crate::module::{ConstExpr, ExportDesc, FuncBody, ImportDesc, Module};
use crate::safepoint::SafepointScheme;
use crate::types::{FuncType, GlobalType, MemoryType, TableType};

/// A resolved branch destination with its stack fixup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BrDest {
    /// Target op index.
    pub target: u32,
    /// Absolute operand-stack height to truncate to (above locals).
    pub drop_to: u32,
    /// Number of top values carried across the branch.
    pub keep: u16,
}

/// A flattened executable operation.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)]
pub enum Op {
    Unreachable,
    /// Poll for pending asynchronous signals (paper §3.3).
    Safepoint,
    Br(BrDest),
    BrIf(BrDest),
    /// Inverted conditional used to lower `if`.
    BrIfZero(BrDest),
    BrTable(Box<[BrDest]>, BrDest),
    Return,
    Call(u32),
    CallIndirect(u32),
    Drop,
    Select,
    LocalGet(u32),
    LocalSet(u32),
    LocalTee(u32),
    GlobalGet(u32),
    GlobalSet(u32),
    Load(crate::instr::LoadKind, u64),
    Store(crate::instr::StoreKind, u64),
    MemorySize,
    MemoryGrow,
    MemoryCopy,
    MemoryFill,
    /// Raw 64-bit constant (type erased after validation).
    Const(u64),
    Un(crate::instr::UnOp),
    Bin(crate::instr::BinOp),
    Rel(crate::instr::RelOp),
    Cvt(crate::instr::CvtOp),
    AtomicNotify(u64),
    AtomicWait32(u64),
    AtomicFence,
    AtomicLoad(crate::instr::AtomicWidth, u64),
    AtomicStore(crate::instr::AtomicWidth, u64),
    AtomicRmw(crate::instr::RmwOp, u64),
    AtomicCmpxchg(u64),

    // Fused superinstructions. Emitted by the preparation peephole for the
    // dominant dispatch pairs; never required for correctness (disabling
    // fusion yields the unfused forms above with identical semantics).
    /// `local.get a; local.get b; <binop>`.
    LocalLocalBin(u32, u32, crate::instr::BinOp),
    /// `local.get a; const k; <binop>`.
    LocalConstBin(u32, u64, crate::instr::BinOp),
    /// `const k; <binop>` (stack top is the left operand).
    ConstBin(u64, crate::instr::BinOp),
    /// `<relop>; br_if`.
    RelBrIf(crate::instr::RelOp, BrDest),
    /// `<relop>; br_if_zero` (the lowered `if` condition).
    RelBrIfZero(crate::instr::RelOp, BrDest),
    /// `local.get i; <load>`.
    LocalLoad(u32, crate::instr::LoadKind, u64),
}

/// A prepared function body.
#[derive(Clone, Debug)]
pub struct PreparedFunc {
    /// Type index.
    pub ty: u32,
    /// Number of parameters.
    pub params: u32,
    /// Number of declared (non-param) locals.
    pub locals: u32,
    /// Number of results.
    pub results: u32,
    /// Flat op array.
    pub ops: Box<[Op]>,
    /// Tier-2 register-IR body, when the program was lowered
    /// ([`crate::regir`]). Present on every function or on none: the
    /// interpreter never mixes tiers inside one call stack.
    pub reg: Option<crate::regir::RegFunc>,
}

/// A function in the combined index space.
pub enum FuncDef<T> {
    /// Imported host function.
    Host {
        /// Import module name.
        module: String,
        /// Import field name.
        name: String,
        /// Type index.
        ty: u32,
        /// Resolved implementation.
        f: HostFn<T>,
    },
    /// Local prepared function.
    Local(Arc<PreparedFunc>),
}

impl<T> FuncDef<T> {
    /// The function's type index.
    pub fn type_idx(&self) -> u32 {
        match self {
            FuncDef::Host { ty, .. } => *ty,
            FuncDef::Local(p) => p.ty,
        }
    }
}

/// An error while linking a module against a [`Linker`].
#[derive(Debug)]
pub enum LinkError {
    /// Validation failed.
    Validate(ValidateError),
    /// An imported function had no host registration.
    MissingImport(String, String),
    /// Non-function imports are not supported.
    UnsupportedImport(String, String),
}

impl std::fmt::Display for LinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkError::Validate(e) => write!(f, "{e}"),
            LinkError::MissingImport(m, n) => write!(f, "missing import {m}.{n}"),
            LinkError::UnsupportedImport(m, n) => write!(f, "unsupported import kind {m}.{n}"),
        }
    }
}

impl std::error::Error for LinkError {}

impl From<ValidateError> for LinkError {
    fn from(e: ValidateError) -> Self {
        LinkError::Validate(e)
    }
}

/// A validated, prepared, linked program ready to instantiate.
pub struct Program<T> {
    /// Function signatures.
    pub types: Vec<FuncType>,
    /// Combined function index space (imports first).
    pub funcs: Vec<FuncDef<T>>,
    /// Export name → descriptor.
    pub exports: HashMap<String, ExportDesc>,
    /// Memory declaration, if any.
    pub memory: Option<MemoryType>,
    /// Table declaration, if any.
    pub table: Option<TableType>,
    /// Global declarations and initializers.
    pub globals: Vec<(GlobalType, ConstExpr)>,
    /// Active element segments.
    pub elems: Vec<(ConstExpr, Vec<u32>)>,
    /// Active data segments.
    pub datas: Vec<(ConstExpr, Vec<u8>)>,
    /// Start function.
    pub start: Option<u32>,
    /// Safepoint scheme the code was prepared with.
    pub scheme: SafepointScheme,
    /// Whether superinstruction fusion was applied.
    pub fused: bool,
    /// Whether the tier-2 register IR is in effect (requested *and*
    /// every local function lowered successfully).
    pub regir: bool,
}

/// The process-wide default for superinstruction fusion: on, unless the
/// `WALI_NO_FUSE` environment variable is set (A/B measurement escape
/// hatch used by the benches).
pub fn fuse_default() -> bool {
    std::env::var_os("WALI_NO_FUSE").is_none()
}

impl<T> Program<T> {
    /// Validates, prepares and links `module` against `linker`, using the
    /// [`fuse_default`] fusion and [`crate::regir::regir_default`]
    /// register-tier settings.
    pub fn link(
        module: &Module,
        linker: &Linker<T>,
        scheme: SafepointScheme,
    ) -> Result<Program<T>, LinkError> {
        Self::link_tiered(
            module,
            linker,
            scheme,
            fuse_default(),
            crate::regir::regir_default(),
        )
    }

    /// Validates, prepares and links with explicit control over
    /// superinstruction fusion (`fuse = false` emits only unfused ops);
    /// the register tier follows [`crate::regir::regir_default`].
    pub fn link_with(
        module: &Module,
        linker: &Linker<T>,
        scheme: SafepointScheme,
        fuse: bool,
    ) -> Result<Program<T>, LinkError> {
        Self::link_tiered(module, linker, scheme, fuse, crate::regir::regir_default())
    }

    /// Validates, prepares and links with explicit control over both
    /// execution tiers: superinstruction fusion and the tier-2 register
    /// IR. When `regir` is requested, every local function is lowered;
    /// if any bails, the whole program stays on the stack tier
    /// (`self.regir` records the effective state).
    pub fn link_tiered(
        module: &Module,
        linker: &Linker<T>,
        scheme: SafepointScheme,
        fuse: bool,
        regir: bool,
    ) -> Result<Program<T>, LinkError> {
        crate::validate::validate(module)?;

        let mut funcs = Vec::new();
        for imp in &module.imports {
            match &imp.desc {
                ImportDesc::Func(ty) => {
                    let f = linker
                        .resolve(&imp.module, &imp.name)
                        .ok_or_else(|| {
                            LinkError::MissingImport(imp.module.clone(), imp.name.clone())
                        })?
                        .clone();
                    funcs.push(FuncDef::Host {
                        module: imp.module.clone(),
                        name: imp.name.clone(),
                        ty: *ty,
                        f,
                    });
                }
                _ => {
                    return Err(LinkError::UnsupportedImport(
                        imp.module.clone(),
                        imp.name.clone(),
                    ))
                }
            }
        }

        let mut prepared: Vec<PreparedFunc> = module
            .code
            .iter()
            .enumerate()
            .map(|(i, body)| {
                let ty_idx = module.funcs[i];
                let ty = &module.types[ty_idx as usize];
                prepare_func(module, ty_idx, ty, body, scheme, fuse)
            })
            .collect();

        // Tier-2 lowering is all-or-nothing: a single bail keeps the
        // whole program on the stack tier so one call stack never mixes
        // frame layouts mid-flight.
        let mut regir_on = regir;
        if regir_on {
            let sigs: Vec<(u16, u16)> = funcs
                .iter()
                .map(|f| f.type_idx())
                .chain(module.funcs.iter().copied())
                .map(|ty| {
                    let ty = &module.types[ty as usize];
                    (ty.params.len() as u16, ty.results.len() as u16)
                })
                .collect();
            let lowered: Option<Vec<crate::regir::RegFunc>> = prepared
                .iter()
                .map(|p| crate::regir::lower(p, &sigs, &module.types))
                .collect();
            match lowered {
                Some(lowered) => {
                    for (p, r) in prepared.iter_mut().zip(lowered) {
                        p.reg = Some(r);
                    }
                }
                None => regir_on = false,
            }
        }
        for p in prepared {
            funcs.push(FuncDef::Local(Arc::new(p)));
        }

        Ok(Program {
            types: module.types.clone(),
            funcs,
            exports: module
                .exports
                .iter()
                .map(|e| (e.name.clone(), e.desc))
                .collect(),
            memory: module.memories.first().copied(),
            table: module.tables.first().copied(),
            globals: module.globals.iter().map(|g| (g.ty, g.init)).collect(),
            elems: module
                .elems
                .iter()
                .map(|e| (e.offset, e.funcs.clone()))
                .collect(),
            datas: module
                .datas
                .iter()
                .map(|d| (d.offset, d.bytes.clone()))
                .collect(),
            start: module.start,
            scheme,
            fused: fuse,
            regir: regir_on,
        })
    }

    /// One past the highest byte any active data segment initializes
    /// (the conventional heap base for WALI contexts).
    pub fn data_end(&self) -> u32 {
        self.datas
            .iter()
            .map(|(off, bytes)| match off {
                ConstExpr::I32(v) => *v as u32 + bytes.len() as u32,
                _ => 0,
            })
            .max()
            .unwrap_or(1024)
    }

    /// Counts safepoint ops across all prepared functions (Table 3
    /// instrumentation).
    pub fn safepoint_count(&self) -> usize {
        self.funcs
            .iter()
            .filter_map(|f| match f {
                FuncDef::Local(p) => {
                    Some(p.ops.iter().filter(|o| matches!(o, Op::Safepoint)).count())
                }
                _ => None,
            })
            .sum()
    }
}

/// Identifies one branch-destination slot within an op, so forward-target
/// patching is precise (a `br_table` can mix loop and block targets).
#[derive(Clone, Copy, Debug)]
struct PatchRef {
    op: usize,
    slot: Slot,
}

#[derive(Clone, Copy, Debug)]
enum Slot {
    /// The single destination of `Br`/`BrIf`/`BrIfZero`.
    Single,
    /// Entry `i` of a `BrTable`.
    Table(usize),
    /// The default destination of a `BrTable`.
    TableDefault,
}

struct CtrlEntry {
    /// Op-stack height at frame entry (params already pushed below it).
    height: u32,
    /// Branch arity (start types for loops, end types otherwise).
    arity: u16,
    /// For loops, the header pc; for blocks/ifs, patch list of forward refs.
    kind: CtrlKind,
    /// Height to restore on Else/End (height + result arity).
    end_height: u32,
    /// Result arity (to restore at end).
    end_arity: u16,
    /// Start arity (params), needed by `else` re-entry.
    start_arity: u16,
}

enum CtrlKind {
    Loop {
        header: u32,
    },
    Block {
        patches: Vec<PatchRef>,
    },
    If {
        patches: Vec<PatchRef>,
        else_jump: Option<usize>,
    },
}

fn block_sig(module: &Module, bt: &BlockType) -> (u16, u16) {
    match bt {
        BlockType::Empty => (0, 0),
        BlockType::Value(_) => (0, 1),
        BlockType::Func(i) => {
            let ty = &module.types[*i as usize];
            (ty.params.len() as u16, ty.results.len() as u16)
        }
    }
}

/// Flattens one function body.
fn prepare_func(
    module: &Module,
    ty_idx: u32,
    ty: &FuncType,
    body: &FuncBody,
    scheme: SafepointScheme,
    fuse: bool,
) -> PreparedFunc {
    let mut ops: Vec<Op> = Vec::with_capacity(body.instrs.len() + 8);
    let mut ctrls: Vec<CtrlEntry> = Vec::new();
    // Absolute operand-stack height (above locals); `None` in dead code.
    let mut height: Option<u32> = Some(0);
    // Fusion fence: ops below this index are (or may become) branch
    // targets or carry registered patch refs, so a superinstruction may
    // consume trailing ops only from this index on. A fused op that
    // *starts* at a branch-target index is fine — the jump lands on the
    // whole superinstruction, which performs the same work.
    let mut barrier: usize = 0;

    let every = scheme == SafepointScheme::EveryInstruction;
    if scheme == SafepointScheme::FunctionEntry {
        ops.push(Op::Safepoint);
    }

    macro_rules! h {
        () => {
            height.unwrap_or(0)
        };
    }

    // The function body itself acts as the outermost block.
    ctrls.push(CtrlEntry {
        height: 0,
        arity: ty.results.len() as u16,
        kind: CtrlKind::Block {
            patches: Vec::new(),
        },
        end_height: ty.results.len() as u32,
        end_arity: ty.results.len() as u16,
        start_arity: 0,
    });

    for instr in &body.instrs {
        if every
            && !matches!(
                instr,
                Instr::Block(_) | Instr::Loop(_) | Instr::Else | Instr::End
            )
        {
            ops.push(Op::Safepoint);
        }
        match instr {
            Instr::Unreachable => {
                ops.push(Op::Unreachable);
                height = None;
            }
            Instr::Nop => {}
            Instr::Block(bt) => {
                let (p, r) = block_sig(module, bt);
                let entry = h!().saturating_sub(p as u32);
                ctrls.push(CtrlEntry {
                    height: entry,
                    arity: r,
                    kind: CtrlKind::Block {
                        patches: Vec::new(),
                    },
                    end_height: entry + r as u32,
                    end_arity: r,
                    start_arity: p,
                });
            }
            Instr::Loop(bt) => {
                let (p, r) = block_sig(module, bt);
                let entry = h!().saturating_sub(p as u32);
                let header = ops.len() as u32;
                barrier = barrier.max(header as usize);
                if scheme == SafepointScheme::LoopHeaders || every {
                    ops.push(Op::Safepoint);
                }
                ctrls.push(CtrlEntry {
                    height: entry,
                    arity: p,
                    kind: CtrlKind::Loop { header },
                    end_height: entry + r as u32,
                    end_arity: r,
                    start_arity: p,
                });
            }
            Instr::If(bt) => {
                let (p, r) = block_sig(module, bt);
                // Pop the condition first.
                let after_cond = h!().saturating_sub(1);
                height = height.map(|h| h.saturating_sub(1));
                let entry = after_cond.saturating_sub(p as u32);
                let dest = BrDest {
                    target: 0,
                    drop_to: entry,
                    keep: p,
                };
                if fuse && ops.len() > barrier && matches!(ops.last(), Some(Op::Rel(_))) {
                    let Some(Op::Rel(rel)) = ops.pop() else {
                        unreachable!()
                    };
                    ops.push(Op::RelBrIfZero(rel, dest));
                } else {
                    ops.push(Op::BrIfZero(dest));
                }
                let patch_pos = ops.len() - 1;
                barrier = ops.len();
                ctrls.push(CtrlEntry {
                    height: entry,
                    arity: r,
                    kind: CtrlKind::If {
                        patches: Vec::new(),
                        else_jump: Some(patch_pos),
                    },
                    end_height: entry + r as u32,
                    end_arity: r,
                    start_arity: p,
                });
            }
            Instr::Else => {
                let top = ctrls.last_mut().expect("validated");
                // Jump over the else arm from the end of the then arm.
                let over = ops.len();
                ops.push(Op::Br(BrDest {
                    target: 0,
                    drop_to: top.height,
                    keep: top.end_arity,
                }));
                if let CtrlKind::If { patches, else_jump } = &mut top.kind {
                    patches.push(PatchRef {
                        op: over,
                        slot: Slot::Single,
                    });
                    if let Some(pos) = else_jump.take() {
                        // The false-branch of `if` lands right here.
                        let here = ops.len() as u32;
                        patch(
                            &mut ops,
                            PatchRef {
                                op: pos,
                                slot: Slot::Single,
                            },
                            here,
                        );
                    }
                }
                barrier = ops.len();
                height = Some(top.height + top.start_arity as u32);
            }
            Instr::End => {
                let top = ctrls.pop().expect("validated");
                let end_pc = ops.len() as u32;
                match top.kind {
                    CtrlKind::Loop { .. } => {}
                    CtrlKind::Block { patches } => {
                        for p in patches {
                            patch(&mut ops, p, end_pc);
                        }
                    }
                    CtrlKind::If { patches, else_jump } => {
                        for p in patches {
                            patch(&mut ops, p, end_pc);
                        }
                        if let Some(pos) = else_jump {
                            // No else arm: the false branch falls through
                            // to the end (keep = result arity = param
                            // arity for valid no-else ifs).
                            patch(
                                &mut ops,
                                PatchRef {
                                    op: pos,
                                    slot: Slot::Single,
                                },
                                end_pc,
                            );
                        }
                    }
                }
                barrier = ops.len();
                height = Some(top.end_height);
                if ctrls.is_empty() {
                    // Implicit function end: emit the return below.
                    ops.push(Op::Return);
                    // Re-push a dummy root so stray trailing code (none in
                    // valid modules) does not panic.
                    ctrls.push(CtrlEntry {
                        height: top.end_height,
                        arity: top.end_arity,
                        kind: CtrlKind::Block {
                            patches: Vec::new(),
                        },
                        end_height: top.end_height,
                        end_arity: top.end_arity,
                        start_arity: 0,
                    });
                }
            }
            Instr::Br(depth) => {
                let dest = br_dest(&mut ctrls, *depth, ops.len(), Slot::Single);
                ops.push(Op::Br(dest));
                barrier = ops.len();
                height = None;
            }
            Instr::BrIf(depth) => {
                height = height.map(|h| h.saturating_sub(1));
                if fuse && ops.len() > barrier && matches!(ops.last(), Some(Op::Rel(_))) {
                    let Some(Op::Rel(rel)) = ops.pop() else {
                        unreachable!()
                    };
                    let dest = br_dest(&mut ctrls, *depth, ops.len(), Slot::Single);
                    ops.push(Op::RelBrIf(rel, dest));
                } else {
                    let dest = br_dest(&mut ctrls, *depth, ops.len(), Slot::Single);
                    ops.push(Op::BrIf(dest));
                }
                barrier = ops.len();
            }
            Instr::BrTable(targets, default) => {
                let pos = ops.len();
                // Reserve the op slot first so patch refs can point at it.
                ops.push(Op::Return);
                let dests: Vec<BrDest> = targets
                    .iter()
                    .enumerate()
                    .map(|(i, d)| br_dest(&mut ctrls, *d, pos, Slot::Table(i)))
                    .collect();
                let def = br_dest(&mut ctrls, *default, pos, Slot::TableDefault);
                ops[pos] = Op::BrTable(dests.into_boxed_slice(), def);
                barrier = ops.len();
                height = None;
            }
            Instr::Return => {
                ops.push(Op::Return);
                height = None;
            }
            Instr::Call(f) => {
                let ft = module.func_type(*f).expect("validated");
                height = height
                    .map(|h| h.saturating_sub(ft.params.len() as u32) + ft.results.len() as u32);
                ops.push(Op::Call(*f));
            }
            Instr::CallIndirect(t) => {
                let ft = &module.types[*t as usize];
                height = height.map(|h| {
                    h.saturating_sub(1 + ft.params.len() as u32) + ft.results.len() as u32
                });
                ops.push(Op::CallIndirect(*t));
            }
            Instr::Drop => {
                height = height.map(|h| h.saturating_sub(1));
                ops.push(Op::Drop);
            }
            Instr::Select => {
                height = height.map(|h| h.saturating_sub(2));
                ops.push(Op::Select);
            }
            Instr::LocalGet(i) => {
                height = height.map(|h| h + 1);
                ops.push(Op::LocalGet(*i));
            }
            Instr::LocalSet(i) => {
                height = height.map(|h| h.saturating_sub(1));
                ops.push(Op::LocalSet(*i));
            }
            Instr::LocalTee(i) => ops.push(Op::LocalTee(*i)),
            Instr::GlobalGet(i) => {
                height = height.map(|h| h + 1);
                ops.push(Op::GlobalGet(*i));
            }
            Instr::GlobalSet(i) => {
                height = height.map(|h| h.saturating_sub(1));
                ops.push(Op::GlobalSet(*i));
            }
            Instr::Load(k, a) => {
                if fuse && ops.len() > barrier && matches!(ops.last(), Some(Op::LocalGet(_))) {
                    let Some(Op::LocalGet(i)) = ops.pop() else {
                        unreachable!()
                    };
                    ops.push(Op::LocalLoad(i, *k, a.offset as u64));
                } else {
                    ops.push(Op::Load(*k, a.offset as u64));
                }
            }
            Instr::Store(k, a) => {
                height = height.map(|h| h.saturating_sub(2));
                ops.push(Op::Store(*k, a.offset as u64));
            }
            Instr::MemorySize => {
                height = height.map(|h| h + 1);
                ops.push(Op::MemorySize);
            }
            Instr::MemoryGrow => ops.push(Op::MemoryGrow),
            Instr::MemoryCopy => {
                height = height.map(|h| h.saturating_sub(3));
                ops.push(Op::MemoryCopy);
            }
            Instr::MemoryFill => {
                height = height.map(|h| h.saturating_sub(3));
                ops.push(Op::MemoryFill);
            }
            Instr::I32Const(v) => {
                height = height.map(|h| h + 1);
                ops.push(Op::Const(*v as u32 as u64));
            }
            Instr::I64Const(v) => {
                height = height.map(|h| h + 1);
                ops.push(Op::Const(*v as u64));
            }
            Instr::F32Const(bits) => {
                height = height.map(|h| h + 1);
                ops.push(Op::Const(*bits as u64));
            }
            Instr::F64Const(bits) => {
                height = height.map(|h| h + 1);
                ops.push(Op::Const(*bits));
            }
            Instr::Un(op) => ops.push(Op::Un(*op)),
            Instr::Bin(op) => {
                height = height.map(|h| h.saturating_sub(1));
                if !fuse {
                    ops.push(Op::Bin(*op));
                } else if ops.len() >= barrier + 2
                    && matches!(
                        &ops[ops.len() - 2..],
                        [Op::LocalGet(_), Op::LocalGet(_)] | [Op::LocalGet(_), Op::Const(_)]
                    )
                {
                    let second = ops.pop().expect("matched");
                    let Some(Op::LocalGet(a)) = ops.pop() else {
                        unreachable!()
                    };
                    match second {
                        Op::LocalGet(b) => ops.push(Op::LocalLocalBin(a, b, *op)),
                        Op::Const(k) => ops.push(Op::LocalConstBin(a, k, *op)),
                        _ => unreachable!(),
                    }
                } else if ops.len() > barrier && matches!(ops.last(), Some(Op::Const(_))) {
                    let Some(Op::Const(k)) = ops.pop() else {
                        unreachable!()
                    };
                    ops.push(Op::ConstBin(k, *op));
                } else {
                    ops.push(Op::Bin(*op));
                }
            }
            Instr::Rel(op) => {
                height = height.map(|h| h.saturating_sub(1));
                ops.push(Op::Rel(*op));
            }
            Instr::Cvt(op) => ops.push(Op::Cvt(*op)),
            Instr::AtomicNotify(a) => {
                height = height.map(|h| h.saturating_sub(1));
                ops.push(Op::AtomicNotify(a.offset as u64));
            }
            Instr::AtomicWait32(a) => {
                height = height.map(|h| h.saturating_sub(2));
                ops.push(Op::AtomicWait32(a.offset as u64));
            }
            Instr::AtomicFence => ops.push(Op::AtomicFence),
            Instr::AtomicLoad(w, a) => ops.push(Op::AtomicLoad(*w, a.offset as u64)),
            Instr::AtomicStore(w, a) => {
                height = height.map(|h| h.saturating_sub(2));
                ops.push(Op::AtomicStore(*w, a.offset as u64));
            }
            Instr::AtomicRmw(op, a) => {
                height = height.map(|h| h.saturating_sub(1));
                ops.push(Op::AtomicRmw(*op, a.offset as u64));
            }
            Instr::AtomicCmpxchg(a) => {
                height = height.map(|h| h.saturating_sub(2));
                ops.push(Op::AtomicCmpxchg(a.offset as u64));
            }
        }
    }
    // Implicit end of the outermost body (validated code always ends with
    // the body's own End only when nested; here instrs have no trailing
    // End, so close the root frame).
    let root = ctrls.pop().expect("root frame");
    let end_pc = ops.len() as u32;
    match root.kind {
        CtrlKind::Block { patches } => {
            for p in patches {
                patch(&mut ops, p, end_pc);
            }
        }
        _ => unreachable!("root frame is a block"),
    }
    ops.push(Op::Return);

    PreparedFunc {
        ty: ty_idx,
        params: ty.params.len() as u32,
        locals: body.local_count(),
        results: ty.results.len() as u32,
        ops: ops.into_boxed_slice(),
        reg: None,
    }
}

/// Computes a branch destination for `depth`, registering a patch if the
/// target is forward.
fn br_dest(ctrls: &mut [CtrlEntry], depth: u32, op_pos: usize, slot: Slot) -> BrDest {
    let idx = ctrls.len() - 1 - depth as usize;
    let entry = &mut ctrls[idx];
    let dest = BrDest {
        target: 0,
        drop_to: entry.height,
        keep: entry.arity,
    };
    match &mut entry.kind {
        CtrlKind::Loop { header } => BrDest {
            target: *header,
            ..dest
        },
        CtrlKind::Block { patches } | CtrlKind::If { patches, .. } => {
            patches.push(PatchRef { op: op_pos, slot });
            dest
        }
    }
}

/// Patches one branch-destination slot.
fn patch(ops: &mut [Op], at: PatchRef, target: u32) {
    let dest = match (&mut ops[at.op], at.slot) {
        (Op::Br(d), Slot::Single)
        | (Op::BrIf(d), Slot::Single)
        | (Op::BrIfZero(d), Slot::Single)
        | (Op::RelBrIf(_, d), Slot::Single)
        | (Op::RelBrIfZero(_, d), Slot::Single) => d,
        (Op::BrTable(dests, _), Slot::Table(i)) => &mut dests[i],
        (Op::BrTable(_, def), Slot::TableDefault) => def,
        (other, slot) => panic!("patching op {other:?} with slot {slot:?}"),
    };
    dest.target = target;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BinOp;
    use crate::module::FuncBody;
    use crate::types::ValType;

    fn prep_body(instrs: Vec<Instr>, results: Vec<ValType>) -> PreparedFunc {
        let module = Module {
            types: vec![FuncType {
                params: vec![],
                results,
            }],
            funcs: vec![0],
            code: vec![FuncBody {
                locals: vec![],
                instrs,
            }],
            memories: vec![MemoryType {
                limits: crate::types::Limits {
                    min: 1,
                    max: Some(2),
                },
                shared: false,
            }],
            ..Default::default()
        };
        crate::validate::validate(&module).expect("valid");
        prepare_func(
            &module,
            0,
            &module.types[0],
            &module.code[0],
            SafepointScheme::LoopHeaders,
            true,
        )
    }

    #[test]
    fn flat_code_ends_with_return() {
        let p = prep_body(vec![Instr::I32Const(7)], vec![ValType::I32]);
        assert_eq!(p.ops.last(), Some(&Op::Return));
        assert_eq!(p.ops[0], Op::Const(7));
    }

    #[test]
    fn loop_gets_safepoint_at_header() {
        let p = prep_body(
            vec![
                Instr::Loop(BlockType::Empty),
                Instr::I32Const(0),
                Instr::BrIf(0),
                Instr::End,
            ],
            vec![],
        );
        assert_eq!(p.ops[0], Op::Safepoint);
        // The back-edge must target the safepoint so every iteration polls.
        match &p.ops[2] {
            Op::BrIf(d) => assert_eq!(d.target, 0),
            other => panic!("expected BrIf, got {other:?}"),
        }
    }

    #[test]
    fn forward_branch_is_patched_past_end() {
        let p = prep_body(
            vec![
                Instr::Block(BlockType::Empty),
                Instr::Br(0),
                Instr::I32Const(9),
                Instr::Drop,
                Instr::End,
            ],
            vec![],
        );
        // ops: Br, Const, Drop, Return — Br target = 3 (after Drop).
        match &p.ops[0] {
            Op::Br(d) => assert_eq!(d.target, 3),
            other => panic!("expected Br, got {other:?}"),
        }
    }

    #[test]
    fn if_else_lowering_targets() {
        let p = prep_body(
            vec![
                Instr::I32Const(1),
                Instr::If(BlockType::Value(ValType::I32)),
                Instr::I32Const(10),
                Instr::Else,
                Instr::I32Const(20),
                Instr::End,
                Instr::Drop,
            ],
            vec![],
        );
        // ops: Const(1), BrIfZero->else, Const(10), Br->end, Const(20), Drop, Return
        match &p.ops[1] {
            Op::BrIfZero(d) => assert_eq!(d.target, 4),
            other => panic!("{other:?}"),
        }
        match &p.ops[3] {
            Op::Br(d) => assert_eq!(d.target, 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn every_instruction_scheme_polls_densely() {
        let module = Module {
            types: vec![FuncType {
                params: vec![],
                results: vec![ValType::I32],
            }],
            funcs: vec![0],
            code: vec![FuncBody {
                locals: vec![],
                instrs: vec![
                    Instr::I32Const(1),
                    Instr::I32Const(2),
                    Instr::Bin(BinOp::I32Add),
                ],
            }],
            ..Default::default()
        };
        crate::validate::validate(&module).unwrap();
        let p = prepare_func(
            &module,
            0,
            &module.types[0],
            &module.code[0],
            SafepointScheme::EveryInstruction,
            true,
        );
        let polls = p.ops.iter().filter(|o| matches!(o, Op::Safepoint)).count();
        assert_eq!(polls, 3);
    }

    #[test]
    fn function_entry_scheme_polls_once() {
        let module = Module {
            types: vec![FuncType {
                params: vec![],
                results: vec![],
            }],
            funcs: vec![0],
            code: vec![FuncBody {
                locals: vec![],
                instrs: vec![Instr::Nop],
            }],
            ..Default::default()
        };
        crate::validate::validate(&module).unwrap();
        let p = prepare_func(
            &module,
            0,
            &module.types[0],
            &module.code[0],
            SafepointScheme::FunctionEntry,
            true,
        );
        assert_eq!(p.ops[0], Op::Safepoint);
        let polls = p.ops.iter().filter(|o| matches!(o, Op::Safepoint)).count();
        assert_eq!(polls, 1);
    }
}
