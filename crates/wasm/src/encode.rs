//! Binary-format encoder: [`Module`] → bytes.
//!
//! Together with [`crate::decode`] this gives a loss-free round trip, which
//! the property tests exercise; the [`crate::build::ModuleBuilder`] output
//! always flows through `encode` + `decode` in the app suite so the binary
//! path is what actually runs.

use crate::instr::{AtomicWidth, BlockType, Instr, LoadKind, MemArg, RmwOp, StoreKind};
use crate::leb;
use crate::module::{ConstExpr, ExportDesc, ImportDesc, Module};
use crate::types::Limits;

/// Encodes a module into the Wasm binary format.
pub fn encode(m: &Module) -> Vec<u8> {
    let mut out = Vec::with_capacity(1024);
    out.extend_from_slice(b"\0asm");
    out.extend_from_slice(&[1, 0, 0, 0]);

    if !m.types.is_empty() {
        section(&mut out, 1, |s| {
            leb::write_u32(s, m.types.len() as u32);
            for t in &m.types {
                s.push(0x60);
                leb::write_u32(s, t.params.len() as u32);
                for p in &t.params {
                    s.push(p.byte());
                }
                leb::write_u32(s, t.results.len() as u32);
                for r in &t.results {
                    s.push(r.byte());
                }
            }
        });
    }

    if !m.imports.is_empty() {
        section(&mut out, 2, |s| {
            leb::write_u32(s, m.imports.len() as u32);
            for i in &m.imports {
                leb::write_name(s, &i.module);
                leb::write_name(s, &i.name);
                match &i.desc {
                    ImportDesc::Func(t) => {
                        s.push(0x00);
                        leb::write_u32(s, *t);
                    }
                    ImportDesc::Table(t) => {
                        s.push(0x01);
                        s.push(0x70);
                        limits(s, &t.limits, false);
                    }
                    ImportDesc::Memory(t) => {
                        s.push(0x02);
                        limits(s, &t.limits, t.shared);
                    }
                    ImportDesc::Global(g) => {
                        s.push(0x03);
                        s.push(g.ty.byte());
                        s.push(g.mutable as u8);
                    }
                }
            }
        });
    }

    if !m.funcs.is_empty() {
        section(&mut out, 3, |s| {
            leb::write_u32(s, m.funcs.len() as u32);
            for f in &m.funcs {
                leb::write_u32(s, *f);
            }
        });
    }

    if !m.tables.is_empty() {
        section(&mut out, 4, |s| {
            leb::write_u32(s, m.tables.len() as u32);
            for t in &m.tables {
                s.push(0x70);
                limits(s, &t.limits, false);
            }
        });
    }

    if !m.memories.is_empty() {
        section(&mut out, 5, |s| {
            leb::write_u32(s, m.memories.len() as u32);
            for mem in &m.memories {
                limits(s, &mem.limits, mem.shared);
            }
        });
    }

    if !m.globals.is_empty() {
        section(&mut out, 6, |s| {
            leb::write_u32(s, m.globals.len() as u32);
            for g in &m.globals {
                s.push(g.ty.ty.byte());
                s.push(g.ty.mutable as u8);
                const_expr(s, &g.init);
            }
        });
    }

    if !m.exports.is_empty() {
        section(&mut out, 7, |s| {
            leb::write_u32(s, m.exports.len() as u32);
            for e in &m.exports {
                leb::write_name(s, &e.name);
                let (kind, idx) = match e.desc {
                    ExportDesc::Func(i) => (0x00, i),
                    ExportDesc::Table(i) => (0x01, i),
                    ExportDesc::Memory(i) => (0x02, i),
                    ExportDesc::Global(i) => (0x03, i),
                };
                s.push(kind);
                leb::write_u32(s, idx);
            }
        });
    }

    if let Some(start) = m.start {
        section(&mut out, 8, |s| leb::write_u32(s, start));
    }

    if !m.elems.is_empty() {
        section(&mut out, 9, |s| {
            leb::write_u32(s, m.elems.len() as u32);
            for e in &m.elems {
                leb::write_u32(s, 0);
                const_expr(s, &e.offset);
                leb::write_u32(s, e.funcs.len() as u32);
                for f in &e.funcs {
                    leb::write_u32(s, *f);
                }
            }
        });
    }

    if !m.code.is_empty() {
        section(&mut out, 10, |s| {
            leb::write_u32(s, m.code.len() as u32);
            for body in &m.code {
                let mut b = Vec::new();
                leb::write_u32(&mut b, body.locals.len() as u32);
                for (n, t) in &body.locals {
                    leb::write_u32(&mut b, *n);
                    b.push(t.byte());
                }
                for i in &body.instrs {
                    instr(&mut b, i);
                }
                b.push(0x0b);
                leb::write_u32(s, b.len() as u32);
                s.extend_from_slice(&b);
            }
        });
    }

    if !m.datas.is_empty() {
        section(&mut out, 11, |s| {
            leb::write_u32(s, m.datas.len() as u32);
            for d in &m.datas {
                leb::write_u32(s, 0);
                const_expr(s, &d.offset);
                leb::write_u32(s, d.bytes.len() as u32);
                s.extend_from_slice(&d.bytes);
            }
        });
    }

    out
}

fn section(out: &mut Vec<u8>, id: u8, f: impl FnOnce(&mut Vec<u8>)) {
    let mut body = Vec::new();
    f(&mut body);
    out.push(id);
    leb::write_u32(out, body.len() as u32);
    out.extend_from_slice(&body);
}

fn limits(out: &mut Vec<u8>, l: &Limits, shared: bool) {
    match (l.max, shared) {
        (None, _) => {
            out.push(0x00);
            leb::write_u32(out, l.min);
        }
        (Some(max), false) => {
            out.push(0x01);
            leb::write_u32(out, l.min);
            leb::write_u32(out, max);
        }
        (Some(max), true) => {
            out.push(0x03);
            leb::write_u32(out, l.min);
            leb::write_u32(out, max);
        }
    }
}

fn const_expr(out: &mut Vec<u8>, e: &ConstExpr) {
    match e {
        ConstExpr::I32(v) => {
            out.push(0x41);
            leb::write_i32(out, *v);
        }
        ConstExpr::I64(v) => {
            out.push(0x42);
            leb::write_i64(out, *v);
        }
        ConstExpr::F32(bits) => {
            out.push(0x43);
            out.extend_from_slice(&bits.to_le_bytes());
        }
        ConstExpr::F64(bits) => {
            out.push(0x44);
            out.extend_from_slice(&bits.to_le_bytes());
        }
        ConstExpr::GlobalGet(i) => {
            out.push(0x23);
            leb::write_u32(out, *i);
        }
        ConstExpr::RefNull => {
            out.push(0xd0);
            out.push(0x70);
        }
        ConstExpr::RefFunc(i) => {
            out.push(0xd2);
            leb::write_u32(out, *i);
        }
    }
    out.push(0x0b);
}

fn memarg(out: &mut Vec<u8>, a: &MemArg) {
    leb::write_u32(out, a.align);
    leb::write_u32(out, a.offset);
}

fn block_type(out: &mut Vec<u8>, bt: &BlockType) {
    match bt {
        BlockType::Empty => out.push(0x40),
        BlockType::Value(t) => out.push(t.byte()),
        BlockType::Func(i) => {
            assert!(*i < 64, "block type index must fit a single SLEB byte");
            out.push(*i as u8);
        }
    }
}

/// Encodes a single instruction.
pub fn instr(out: &mut Vec<u8>, i: &Instr) {
    match i {
        Instr::Unreachable => out.push(0x00),
        Instr::Nop => out.push(0x01),
        Instr::Block(bt) => {
            out.push(0x02);
            block_type(out, bt);
        }
        Instr::Loop(bt) => {
            out.push(0x03);
            block_type(out, bt);
        }
        Instr::If(bt) => {
            out.push(0x04);
            block_type(out, bt);
        }
        Instr::Else => out.push(0x05),
        Instr::End => out.push(0x0b),
        Instr::Br(l) => {
            out.push(0x0c);
            leb::write_u32(out, *l);
        }
        Instr::BrIf(l) => {
            out.push(0x0d);
            leb::write_u32(out, *l);
        }
        Instr::BrTable(targets, default) => {
            out.push(0x0e);
            leb::write_u32(out, targets.len() as u32);
            for t in targets.iter() {
                leb::write_u32(out, *t);
            }
            leb::write_u32(out, *default);
        }
        Instr::Return => out.push(0x0f),
        Instr::Call(f) => {
            out.push(0x10);
            leb::write_u32(out, *f);
        }
        Instr::CallIndirect(t) => {
            out.push(0x11);
            leb::write_u32(out, *t);
            leb::write_u32(out, 0);
        }
        Instr::Drop => out.push(0x1a),
        Instr::Select => out.push(0x1b),
        Instr::LocalGet(i) => {
            out.push(0x20);
            leb::write_u32(out, *i);
        }
        Instr::LocalSet(i) => {
            out.push(0x21);
            leb::write_u32(out, *i);
        }
        Instr::LocalTee(i) => {
            out.push(0x22);
            leb::write_u32(out, *i);
        }
        Instr::GlobalGet(i) => {
            out.push(0x23);
            leb::write_u32(out, *i);
        }
        Instr::GlobalSet(i) => {
            out.push(0x24);
            leb::write_u32(out, *i);
        }
        Instr::Load(kind, a) => {
            let op = match kind {
                LoadKind::I32 => 0x28,
                LoadKind::I64 => 0x29,
                LoadKind::F32 => 0x2a,
                LoadKind::F64 => 0x2b,
                LoadKind::I32_8S => 0x2c,
                LoadKind::I32_8U => 0x2d,
                LoadKind::I32_16S => 0x2e,
                LoadKind::I32_16U => 0x2f,
                LoadKind::I64_8S => 0x30,
                LoadKind::I64_8U => 0x31,
                LoadKind::I64_16S => 0x32,
                LoadKind::I64_16U => 0x33,
                LoadKind::I64_32S => 0x34,
                LoadKind::I64_32U => 0x35,
            };
            out.push(op);
            memarg(out, a);
        }
        Instr::Store(kind, a) => {
            let op = match kind {
                StoreKind::I32 => 0x36,
                StoreKind::I64 => 0x37,
                StoreKind::F32 => 0x38,
                StoreKind::F64 => 0x39,
                StoreKind::I32_8 => 0x3a,
                StoreKind::I32_16 => 0x3b,
                StoreKind::I64_8 => 0x3c,
                StoreKind::I64_16 => 0x3d,
                StoreKind::I64_32 => 0x3e,
            };
            out.push(op);
            memarg(out, a);
        }
        Instr::MemorySize => {
            out.push(0x3f);
            out.push(0x00);
        }
        Instr::MemoryGrow => {
            out.push(0x40);
            out.push(0x00);
        }
        Instr::MemoryCopy => {
            out.push(0xfc);
            leb::write_u32(out, 10);
            out.push(0x00);
            out.push(0x00);
        }
        Instr::MemoryFill => {
            out.push(0xfc);
            leb::write_u32(out, 11);
            out.push(0x00);
        }
        Instr::I32Const(v) => {
            out.push(0x41);
            leb::write_i32(out, *v);
        }
        Instr::I64Const(v) => {
            out.push(0x42);
            leb::write_i64(out, *v);
        }
        Instr::F32Const(bits) => {
            out.push(0x43);
            out.extend_from_slice(&bits.to_le_bytes());
        }
        Instr::F64Const(bits) => {
            out.push(0x44);
            out.extend_from_slice(&bits.to_le_bytes());
        }
        Instr::Un(op) => out.push(unop_byte(*op)),
        Instr::Bin(op) => out.push(binop_byte(*op)),
        Instr::Rel(op) => out.push(relop_byte(*op)),
        Instr::Cvt(op) => out.push(cvtop_byte(*op)),
        Instr::AtomicNotify(a) => atomic(out, 0x00, Some(a)),
        Instr::AtomicWait32(a) => atomic(out, 0x01, Some(a)),
        Instr::AtomicFence => {
            out.push(0xfe);
            leb::write_u32(out, 0x03);
            out.push(0x00);
        }
        Instr::AtomicLoad(w, a) => {
            let sub = match w {
                AtomicWidth::I32 => 0x10,
                AtomicWidth::I64 => 0x11,
            };
            atomic(out, sub, Some(a));
        }
        Instr::AtomicStore(w, a) => {
            let sub = match w {
                AtomicWidth::I32 => 0x17,
                AtomicWidth::I64 => 0x18,
            };
            atomic(out, sub, Some(a));
        }
        Instr::AtomicRmw(op, a) => {
            let sub = match op {
                RmwOp::Add => 0x1e,
                RmwOp::Sub => 0x25,
                RmwOp::And => 0x2c,
                RmwOp::Or => 0x33,
                RmwOp::Xor => 0x3a,
                RmwOp::Xchg => 0x41,
            };
            atomic(out, sub, Some(a));
        }
        Instr::AtomicCmpxchg(a) => atomic(out, 0x48, Some(a)),
    }
}

fn atomic(out: &mut Vec<u8>, sub: u32, a: Option<&MemArg>) {
    out.push(0xfe);
    leb::write_u32(out, sub);
    if let Some(a) = a {
        memarg(out, a);
    }
}

fn unop_byte(op: crate::instr::UnOp) -> u8 {
    use crate::instr::UnOp::*;
    match op {
        I32Eqz => 0x45,
        I64Eqz => 0x50,
        I32Clz => 0x67,
        I32Ctz => 0x68,
        I32Popcnt => 0x69,
        I64Clz => 0x79,
        I64Ctz => 0x7a,
        I64Popcnt => 0x7b,
        F32Abs => 0x8b,
        F32Neg => 0x8c,
        F32Ceil => 0x8d,
        F32Floor => 0x8e,
        F32Trunc => 0x8f,
        F32Nearest => 0x90,
        F32Sqrt => 0x91,
        F64Abs => 0x99,
        F64Neg => 0x9a,
        F64Ceil => 0x9b,
        F64Floor => 0x9c,
        F64Trunc => 0x9d,
        F64Nearest => 0x9e,
        F64Sqrt => 0x9f,
        I32Extend8S => 0xc0,
        I32Extend16S => 0xc1,
        I64Extend8S => 0xc2,
        I64Extend16S => 0xc3,
        I64Extend32S => 0xc4,
    }
}

fn binop_byte(op: crate::instr::BinOp) -> u8 {
    use crate::instr::BinOp::*;
    match op {
        I32Add => 0x6a,
        I32Sub => 0x6b,
        I32Mul => 0x6c,
        I32DivS => 0x6d,
        I32DivU => 0x6e,
        I32RemS => 0x6f,
        I32RemU => 0x70,
        I32And => 0x71,
        I32Or => 0x72,
        I32Xor => 0x73,
        I32Shl => 0x74,
        I32ShrS => 0x75,
        I32ShrU => 0x76,
        I32Rotl => 0x77,
        I32Rotr => 0x78,
        I64Add => 0x7c,
        I64Sub => 0x7d,
        I64Mul => 0x7e,
        I64DivS => 0x7f,
        I64DivU => 0x80,
        I64RemS => 0x81,
        I64RemU => 0x82,
        I64And => 0x83,
        I64Or => 0x84,
        I64Xor => 0x85,
        I64Shl => 0x86,
        I64ShrS => 0x87,
        I64ShrU => 0x88,
        I64Rotl => 0x89,
        I64Rotr => 0x8a,
        F32Add => 0x92,
        F32Sub => 0x93,
        F32Mul => 0x94,
        F32Div => 0x95,
        F32Min => 0x96,
        F32Max => 0x97,
        F32Copysign => 0x98,
        F64Add => 0xa0,
        F64Sub => 0xa1,
        F64Mul => 0xa2,
        F64Div => 0xa3,
        F64Min => 0xa4,
        F64Max => 0xa5,
        F64Copysign => 0xa6,
    }
}

fn relop_byte(op: crate::instr::RelOp) -> u8 {
    use crate::instr::RelOp::*;
    match op {
        I32Eq => 0x46,
        I32Ne => 0x47,
        I32LtS => 0x48,
        I32LtU => 0x49,
        I32GtS => 0x4a,
        I32GtU => 0x4b,
        I32LeS => 0x4c,
        I32LeU => 0x4d,
        I32GeS => 0x4e,
        I32GeU => 0x4f,
        I64Eq => 0x51,
        I64Ne => 0x52,
        I64LtS => 0x53,
        I64LtU => 0x54,
        I64GtS => 0x55,
        I64GtU => 0x56,
        I64LeS => 0x57,
        I64LeU => 0x58,
        I64GeS => 0x59,
        I64GeU => 0x5a,
        F32Eq => 0x5b,
        F32Ne => 0x5c,
        F32Lt => 0x5d,
        F32Gt => 0x5e,
        F32Le => 0x5f,
        F32Ge => 0x60,
        F64Eq => 0x61,
        F64Ne => 0x62,
        F64Lt => 0x63,
        F64Gt => 0x64,
        F64Le => 0x65,
        F64Ge => 0x66,
    }
}

fn cvtop_byte(op: crate::instr::CvtOp) -> u8 {
    use crate::instr::CvtOp::*;
    match op {
        I32WrapI64 => 0xa7,
        I32TruncF32S => 0xa8,
        I32TruncF32U => 0xa9,
        I32TruncF64S => 0xaa,
        I32TruncF64U => 0xab,
        I64ExtendI32S => 0xac,
        I64ExtendI32U => 0xad,
        I64TruncF32S => 0xae,
        I64TruncF32U => 0xaf,
        I64TruncF64S => 0xb0,
        I64TruncF64U => 0xb1,
        F32ConvertI32S => 0xb2,
        F32ConvertI32U => 0xb3,
        F32ConvertI64S => 0xb4,
        F32ConvertI64U => 0xb5,
        F32DemoteF64 => 0xb6,
        F64ConvertI32S => 0xb7,
        F64ConvertI32U => 0xb8,
        F64ConvertI64S => 0xb9,
        F64ConvertI64U => 0xba,
        F64PromoteF32 => 0xbb,
        I32ReinterpretF32 => 0xbc,
        I64ReinterpretF64 => 0xbd,
        F32ReinterpretI32 => 0xbe,
        F64ReinterpretI64 => 0xbf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::instr::{BinOp, UnOp};
    use crate::module::{Export, FuncBody, Global, Import};
    use crate::types::{FuncType, GlobalType, MemoryType, ValType};

    fn sample_module() -> Module {
        Module {
            types: vec![
                FuncType::new([ValType::I32, ValType::I32], [ValType::I32]),
                FuncType::new([], []),
            ],
            imports: vec![Import {
                module: "wali".into(),
                name: "SYS_getpid".into(),
                desc: ImportDesc::Func(1),
            }],
            funcs: vec![0],
            memories: vec![MemoryType {
                limits: Limits {
                    min: 1,
                    max: Some(16),
                },
                shared: false,
            }],
            globals: vec![Global {
                ty: GlobalType {
                    ty: ValType::I64,
                    mutable: true,
                },
                init: ConstExpr::I64(-7),
            }],
            exports: vec![Export {
                name: "add".into(),
                desc: ExportDesc::Func(1),
            }],
            datas: vec![crate::module::DataSegment {
                offset: ConstExpr::I32(8),
                bytes: b"hello".to_vec(),
            }],
            code: vec![FuncBody {
                locals: vec![(1, ValType::I64)],
                instrs: vec![
                    Instr::LocalGet(0),
                    Instr::LocalGet(1),
                    Instr::Bin(BinOp::I32Add),
                    Instr::Un(UnOp::I32Eqz),
                    Instr::If(BlockType::Value(ValType::I32)),
                    Instr::I32Const(1),
                    Instr::Else,
                    Instr::I32Const(0),
                    Instr::End,
                ],
            }],
            ..Default::default()
        }
    }

    #[test]
    fn round_trips_sample_module() {
        let m = sample_module();
        let bytes = encode(&m);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn all_numeric_ops_round_trip() {
        use crate::instr::{CvtOp, RelOp};
        // One representative per dense range boundary plus extremes.
        let instrs = vec![
            Instr::Un(UnOp::I32Eqz),
            Instr::Un(UnOp::I64Extend32S),
            Instr::Bin(BinOp::I32Add),
            Instr::Bin(BinOp::F64Copysign),
            Instr::Rel(RelOp::I32Eq),
            Instr::Rel(RelOp::F64Ge),
            Instr::Cvt(CvtOp::I32WrapI64),
            Instr::Cvt(CvtOp::F64ReinterpretI64),
            Instr::I64Const(i64::MIN),
            Instr::F32Const(f32::NAN.to_bits()),
            Instr::F64Const(f64::NEG_INFINITY.to_bits()),
            Instr::MemoryCopy,
            Instr::MemoryFill,
            Instr::AtomicRmw(
                RmwOp::Xchg,
                MemArg {
                    align: 2,
                    offset: 4,
                },
            ),
            Instr::AtomicCmpxchg(MemArg {
                align: 2,
                offset: 0,
            }),
            Instr::AtomicWait32(MemArg {
                align: 2,
                offset: 0,
            }),
            Instr::AtomicFence,
        ];
        let mut buf = Vec::new();
        for i in &instrs {
            instr(&mut buf, i);
        }
        buf.push(0x0b);
        let mut r = crate::leb::Reader::new(&buf);
        let back = crate::decode::decode_expr(&mut r).unwrap();
        assert_eq!(back, instrs);
    }

    #[test]
    fn shared_memory_flag_round_trips() {
        let m = Module {
            memories: vec![MemoryType {
                limits: Limits {
                    min: 2,
                    max: Some(4),
                },
                shared: true,
            }],
            ..Default::default()
        };
        let back = decode(&encode(&m)).unwrap();
        assert!(back.memories[0].shared);
    }
}
