//! Safepoint insertion schemes for asynchronous signal delivery.
//!
//! Asynchronous signals must only be delivered where Wasm state is
//! consistent (paper §3.3): the compiler inserts *safepoints* and the
//! engine polls for pending signals there. The scheme trades reactivity
//! against overhead — Table 3 of the paper quantifies all three.
//!
//! Both interpreter tiers honour the same safepoint schedule. The tier-2
//! register interpreter needs no spill step at a poll: its registers
//! *are* frame slots (`stack[base + r]`), always canonical, so a
//! handler frame can be pushed — or the thread cloned by `fork` —
//! at any safepoint without materialising extra state.

/// Where `prep` inserts safepoint polls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SafepointScheme {
    /// No polling: asynchronous signals are never delivered.
    None,
    /// Poll at loop back-edge headers (the paper's production choice:
    /// reactive inside hot loops, negligible cost elsewhere).
    #[default]
    LoopHeaders,
    /// Poll on every function entry (better for compiler optimization of
    /// loops, less reactive inside long loop bodies).
    FunctionEntry,
    /// Poll after every instruction (prohibitively slow; included for the
    /// Table 3 ablation).
    EveryInstruction,
}

impl SafepointScheme {
    /// All schemes, for sweeps.
    pub const ALL: [SafepointScheme; 4] = [
        SafepointScheme::None,
        SafepointScheme::LoopHeaders,
        SafepointScheme::FunctionEntry,
        SafepointScheme::EveryInstruction,
    ];

    /// Human-readable name matching the paper's Table 3 columns.
    pub fn name(self) -> &'static str {
        match self {
            SafepointScheme::None => "none",
            SafepointScheme::LoopHeaders => "loop",
            SafepointScheme::FunctionEntry => "function",
            SafepointScheme::EveryInstruction => "all",
        }
    }
}

impl std::fmt::Display for SafepointScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}
