//! Tier-2 lowering: the flattened stack machine → a virtual-register IR.
//!
//! [`lower`] abstract-interprets a [`PreparedFunc`]'s operand stack at
//! prepare time and emits three-address superinstructions
//! (`r3 = add r1, r2`, `br_if_lt r1, #c, L`) that [`crate::interp`]
//! executes with no value-stack traffic on straight-line code.
//!
//! # Register frame layout
//!
//! The register file of a frame *is* a fixed-size window of the thread's
//! value stack: register `r` lives at `stack[frame.base + r]`. Registers
//! `0..nlocals` are the params + declared locals (the same slots the
//! stack tier uses); register `nlocals + d` is the **canonical** home of
//! operand-stack position `d`. `nregs = nlocals + max_height` and the
//! stack is kept at exactly `base + nregs` slots while a register frame
//! runs. Because the layout is a superset of the stack tier's frame
//! prefix, `Thread` clone (fork), suspension (execve/clone/exit) and
//! safepoint re-entry for signal handlers all work unchanged — every
//! live value is always spilled in the frame, there is no hidden cache
//! to reconcile.
//!
//! # Lowering rules (the "linear-scan" allocator)
//!
//! The abstract stack holds `Abs` values: `Reg(r)` (the value lives in
//! register `r`) or `Imm(k)` (a compile-time constant). Allocation is a
//! degenerate linear scan with zero interference: position `d` always
//! maps to register `nlocals + d`, so lifetimes never overlap and no
//! spilling beyond the canonical home is ever needed. Laziness is the
//! win: `local.get` pushes `Reg(local)` and `const` pushes `Imm` without
//! emitting code, so a stack-machine `local.get x; local.get y; add;
//! local.set z` collapses to one `Bin { dst: z, a: Reg(x), b: Reg(y) }`.
//!
//! Only side-effect-free values (constants and local reads) are
//! deferred; loads, calls and global reads are emitted at their original
//! program point, so trap order and memory-effect order are preserved
//! exactly. Constant operands fold at lowering time when the operation
//! cannot trap (a `div` by a constant zero is emitted, not folded, so
//! the trap still fires in program order).
//!
//! # Branch-target barrier
//!
//! Every branch target ("label") requires the abstract stack in
//! **canonical form** — position `d` in register `nlocals + d`.
//! Fallthrough paths flush lazy entries with `Mov`s *before* the label's
//! pc; taken branches flush what the target reads and carry a statically
//! resolved copy `(src, dst, keep)` in [`RBr`] (a no-op when
//! `src == dst`). This is the register-IR image of `prep.rs`'s fusion
//! barrier: no lazy state flows across a label, mirroring how no
//! superinstruction may absorb ops across one. The same barrier index
//! blocks the store-redirect and compare-branch peepholes from rewriting
//! ops emitted before a label.
//!
//! # Bail-out
//!
//! `lower` returns `None` when a function cannot be lowered (register
//! index beyond `u16`, inconsistent label heights — both defensive; they
//! do not occur for validated modules). The caller then runs the whole
//! program on the fused stack tier: mixing tiers inside one call stack
//! is never attempted.

use std::collections::HashMap;

use crate::instr::{AtomicWidth, BinOp, CvtOp, LoadKind, RelOp, RmwOp, StoreKind, UnOp};
use crate::interp::{eval_bin, eval_cvt, eval_rel, eval_un};
use crate::prep::{BrDest, Op, PreparedFunc};
use crate::types::FuncType;

/// A register-or-immediate operand of a register-IR instruction.
///
/// Immediates are indices into the function's constant pool
/// ([`RegFunc::consts`]) rather than inline `u64`s: that keeps `RSrc` at
/// 4 bytes and the whole [`ROp`] within 24, so the dispatch loop walks a
/// dense op array instead of a 64-byte-stride one (the op fetch is the
/// hottest load in the interpreter).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RSrc {
    /// Register index (slot `frame.base + r` of the value stack).
    Reg(u16),
    /// Constant-pool index (raw 64-bit representation in the pool).
    Const(u16),
}

/// A resolved register-IR branch destination with its register fixup:
/// jump to `target` after copying `keep` registers from `src..` down to
/// `dst..` (the canonical home of the values carried across the branch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RBr {
    /// Target op index in the lowered code.
    pub target: u32,
    /// First source register of the kept values.
    pub src: u16,
    /// First destination register (`nlocals + drop_to`).
    pub dst: u16,
    /// Number of values carried across the branch.
    pub keep: u16,
    /// Poll for signals after the jump. Set by [`lower`]'s safepoint
    /// fold: a branch whose target is a `Safepoint` (the loop-header
    /// scheme's back edge) is retargeted one op past it and polls
    /// inline, saving the header dispatch on every iteration while
    /// keeping the poll points — and the handler resume pc — identical
    /// to the stack tier's.
    pub poll: bool,
}

/// A register-IR instruction. `dst` fields are always register indices;
/// operands are [`RSrc`] so immediates fold into the using instruction.
#[derive(Clone, Debug, PartialEq)]
#[allow(missing_docs)]
pub enum ROp {
    Unreachable,
    /// Poll for pending asynchronous signals (paper §3.3). Registers are
    /// already canonical in-frame, so handler re-entry needs no spill.
    Safepoint,
    Mov {
        dst: u16,
        src: RSrc,
    },
    Br(RBr),
    BrIf {
        cond: RSrc,
        dest: RBr,
    },
    BrIfZero {
        cond: RSrc,
        dest: RBr,
    },
    /// Fused compare-and-branch (`br_if_lt r1, #c, L`): branch when the
    /// relation's truth equals `if_true`.
    RelBr {
        op: RelOp,
        a: RSrc,
        b: RSrc,
        if_true: bool,
        dest: RBr,
    },
    /// The jump table is boxed out-of-line: it is the one
    /// unbounded-payload op and would otherwise set the size of every
    /// `ROp` in the array.
    BrTable {
        idx: RSrc,
        table: Box<RTable>,
    },
    /// Copy `n` result registers starting at `src` down to the frame
    /// base and pop the frame.
    Return {
        src: u16,
        n: u16,
    },
    /// Call with the arguments already in canonical registers ending at
    /// `top`; the stack is truncated to `base + top` so the callee frame
    /// starts right on the arguments.
    Call {
        func: u32,
        top: u16,
        nargs: u16,
    },
    CallIndirect {
        ty: u32,
        idx: RSrc,
        top: u16,
        nargs: u16,
    },
    Select {
        dst: u16,
        cond: RSrc,
        a: RSrc,
        b: RSrc,
    },
    GlobalGet {
        dst: u16,
        idx: u32,
    },
    GlobalSet {
        idx: u32,
        src: RSrc,
    },
    Load {
        dst: u16,
        kind: LoadKind,
        addr: RSrc,
        offset: u32,
    },
    Store {
        kind: StoreKind,
        addr: RSrc,
        val: RSrc,
        offset: u32,
    },
    MemorySize {
        dst: u16,
    },
    MemoryGrow {
        dst: u16,
        delta: RSrc,
    },
    MemoryCopy {
        dst: RSrc,
        src: RSrc,
        len: RSrc,
    },
    MemoryFill {
        dst: RSrc,
        val: RSrc,
        len: RSrc,
    },
    Un {
        dst: u16,
        op: UnOp,
        a: RSrc,
    },
    Bin {
        dst: u16,
        op: BinOp,
        a: RSrc,
        b: RSrc,
    },
    Rel {
        dst: u16,
        op: RelOp,
        a: RSrc,
        b: RSrc,
    },
    Cvt {
        dst: u16,
        op: CvtOp,
        a: RSrc,
    },
    /// Peephole superinstruction (`a + b` address feeding a load whose
    /// result overwrites the address scratch): one dispatch for the
    /// ubiquitous base-plus-index addressing pattern.
    LoadIdx {
        dst: u16,
        kind: LoadKind,
        a: RSrc,
        b: RSrc,
        offset: u32,
    },
    /// Peephole superinstruction: two adjacent binary ops in one
    /// dispatch. `dst1` is written before the second op's operands are
    /// read, so the register file is observably identical to the two-op
    /// sequence whether or not the second consumes the first's result —
    /// the fusion needs no liveness or dataflow information.
    Bin2 {
        op1: BinOp,
        a: RSrc,
        b: RSrc,
        dst1: u16,
        op2: BinOp,
        a2: RSrc,
        b2: RSrc,
        dst2: u16,
    },
    /// Peephole superinstruction: a conversion followed by a binary op
    /// (same write-before-read contract as [`ROp::Bin2`]).
    CvtBin {
        cvt: CvtOp,
        a: RSrc,
        dst1: u16,
        op: BinOp,
        a2: RSrc,
        b2: RSrc,
        dst2: u16,
    },
    /// Peephole superinstruction: a binary op whose result is the left
    /// operand of a compare-and-branch (`dst = a op b; br_if (v rel c)
    /// == if_true, target`) — the shape of every `i += 1; if i < n`
    /// back edge. Only fuses register-fixup-free branches
    /// (`keep == 0`), so the destination is a bare `target`/`poll`
    /// pair.
    BinRelBr {
        op: BinOp,
        a: RSrc,
        b: RSrc,
        dst: u16,
        rel: RelOp,
        c: RSrc,
        if_true: bool,
        target: u32,
        poll: bool,
    },
    AtomicNotify {
        dst: u16,
        addr: RSrc,
        count: RSrc,
        offset: u32,
    },
    AtomicWait32 {
        dst: u16,
        addr: RSrc,
        expected: RSrc,
        timeout: RSrc,
        offset: u32,
    },
    AtomicFence,
    AtomicLoad {
        dst: u16,
        width: AtomicWidth,
        addr: RSrc,
        offset: u32,
    },
    AtomicStore {
        width: AtomicWidth,
        addr: RSrc,
        val: RSrc,
        offset: u32,
    },
    AtomicRmw {
        dst: u16,
        op: RmwOp,
        addr: RSrc,
        val: RSrc,
        offset: u32,
    },
    AtomicCmpxchg {
        dst: u16,
        addr: RSrc,
        expected: RSrc,
        new: RSrc,
        offset: u32,
    },
}

/// An out-of-line `br_table` jump table (see [`ROp::BrTable`]).
#[derive(Clone, Debug, PartialEq)]
pub struct RTable {
    /// Destination per index value.
    pub dests: Box<[RBr]>,
    /// Destination for out-of-range indices.
    pub default: RBr,
}

/// A function body lowered to the register IR.
#[derive(Clone, Debug)]
pub struct RegFunc {
    /// Frame size in registers: `params + locals + max operand height`.
    pub nregs: u32,
    /// Flat register-IR op array (branch targets index into it).
    pub ops: Box<[ROp]>,
    /// Constant pool referenced by [`RSrc::Const`] operands.
    pub consts: Box<[u64]>,
}

impl RegFunc {
    /// The pool value behind a [`RSrc::Const`] operand (`None` for
    /// registers) — diagnostics and test support.
    pub fn const_of(&self, s: RSrc) -> Option<u64> {
        match s {
            RSrc::Reg(_) => None,
            RSrc::Const(i) => self.consts.get(i as usize).copied(),
        }
    }
}

/// The process-wide default for the register tier: on, unless the
/// `WALI_NO_REGIR` environment variable is set (A/B measurement escape
/// hatch mirroring `WALI_NO_FUSE`).
pub fn regir_default() -> bool {
    std::env::var_os("WALI_NO_REGIR").is_none()
}

/// An abstract operand-stack entry during lowering.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Abs {
    /// The value lives in register `r` (a local, or a canonical slot).
    Reg(u16),
    /// Compile-time constant.
    Imm(u64),
}

struct Lowerer {
    nlocals: u32,
    results: u32,
    out: Vec<ROp>,
    stack: Vec<Abs>,
    max_height: usize,
    /// Ops below this index sit before a label: peepholes must not
    /// rewrite or remove them (the register-IR branch-target barrier).
    barrier: usize,
    /// Deduplicated constant pool (`RSrc::Const` operands index it).
    consts: Vec<u64>,
    const_ix: HashMap<u64, u16>,
}

impl Lowerer {
    /// Interns a constant into the pool (bails past `u16::MAX` entries —
    /// the caller falls back to the stack tier).
    fn imm(&mut self, k: u64) -> Option<RSrc> {
        if let Some(&i) = self.const_ix.get(&k) {
            return Some(RSrc::Const(i));
        }
        let i = u16::try_from(self.consts.len()).ok()?;
        self.consts.push(k);
        self.const_ix.insert(k, i);
        Some(RSrc::Const(i))
    }

    /// Abstract value → instruction operand (interning immediates).
    fn rsrc(&mut self, a: Abs) -> Option<RSrc> {
        match a {
            Abs::Reg(r) => Some(RSrc::Reg(r)),
            Abs::Imm(k) => self.imm(k),
        }
    }
    /// Canonical register of operand-stack position `d`.
    fn canon(&self, d: usize) -> Option<u16> {
        u16::try_from(self.nlocals as usize + d).ok()
    }

    fn push(&mut self, a: Abs) {
        self.stack.push(a);
        self.max_height = self.max_height.max(self.stack.len());
    }

    fn pop(&mut self) -> Option<Abs> {
        self.stack.pop()
    }

    /// Canonical register for a value pushed at the current height.
    fn dst_here(&self) -> Option<u16> {
        self.canon(self.stack.len())
    }

    /// Spills lazy entries in `from..to` to their canonical registers.
    fn flush_range(&mut self, from: usize, to: usize) -> Option<()> {
        for d in from..to.min(self.stack.len()) {
            let c = self.canon(d)?;
            if self.stack[d] != Abs::Reg(c) {
                let src = self.rsrc(self.stack[d])?;
                self.out.push(ROp::Mov { dst: c, src });
                self.stack[d] = Abs::Reg(c);
            }
        }
        Some(())
    }

    /// Copies every abstract entry below `upto` that aliases local `i`
    /// into its canonical register (the write-after-read hazard of
    /// `local.set`/`local.tee` against lazy `local.get`s).
    fn materialize_local(&mut self, i: u16, upto: usize) -> Option<()> {
        for d in 0..upto.min(self.stack.len()) {
            if self.stack[d] == Abs::Reg(i) {
                let c = self.canon(d)?;
                self.out.push(ROp::Mov {
                    dst: c,
                    src: RSrc::Reg(i),
                });
                self.stack[d] = Abs::Reg(c);
            }
        }
        Some(())
    }

    /// Builds the register fixup for a branch taken at abstract height
    /// `h` (after any condition pop), flushing the registers the target
    /// label will read: everything below `drop_to` plus the `keep`
    /// values carried across. Entries in between are dropped by the
    /// branch and stay lazy (their flush would only burden fallthrough
    /// paths that never need it).
    fn branch_to(&mut self, d: &BrDest, h: usize) -> Option<RBr> {
        let keep = d.keep as usize;
        let drop_to = d.drop_to as usize;
        if drop_to + keep > h {
            return None;
        }
        self.flush_range(0, drop_to)?;
        self.flush_range(h - keep, h)?;
        Some(RBr {
            target: d.target, // old pc; retargeted after the walk
            src: self.canon(h - keep)?,
            dst: self.canon(drop_to)?,
            keep: d.keep,
            poll: false,
        })
    }

    /// If the last emitted op wrote register `r` (and sits after the
    /// label barrier), returns its `dst` slot for rewriting — the
    /// store-redirect peephole behind `local.set`/`local.tee`.
    fn redirectable_dst(&mut self, r: u16) -> Option<&mut u16> {
        if self.out.len() <= self.barrier {
            return None;
        }
        let dst = match self.out.last_mut()? {
            ROp::Mov { dst, .. }
            | ROp::Select { dst, .. }
            | ROp::GlobalGet { dst, .. }
            | ROp::Load { dst, .. }
            | ROp::MemorySize { dst }
            | ROp::MemoryGrow { dst, .. }
            | ROp::Un { dst, .. }
            | ROp::Bin { dst, .. }
            | ROp::Rel { dst, .. }
            | ROp::Cvt { dst, .. }
            | ROp::AtomicNotify { dst, .. }
            | ROp::AtomicWait32 { dst, .. }
            | ROp::AtomicLoad { dst, .. }
            | ROp::AtomicRmw { dst, .. }
            | ROp::AtomicCmpxchg { dst, .. } => dst,
            _ => return None,
        };
        if *dst == r {
            Some(dst)
        } else {
            None
        }
    }

    /// `local.set`/`local.tee` write to local `i`; `tee` keeps the top.
    fn set_local(&mut self, i: u16, tee: bool) -> Option<()> {
        if i as u32 >= self.nlocals {
            return None;
        }
        let top_pos = self.stack.len().checked_sub(1)?;
        let has_alias = self.stack[..top_pos].contains(&Abs::Reg(i));
        let v = self.stack[top_pos];
        // Redirect: if the value was just computed into its canonical
        // register by the previous op and no lazy entry still reads the
        // local's old value, retarget that op to write the local
        // directly (saves the Mov entirely).
        if !has_alias {
            if let Abs::Reg(r) = v {
                if Some(r) == self.canon(top_pos) {
                    if let Some(dst) = self.redirectable_dst(r) {
                        *dst = i;
                        if tee {
                            self.stack[top_pos] = Abs::Reg(i);
                        } else {
                            self.pop()?;
                        }
                        return Some(());
                    }
                }
            }
        }
        self.materialize_local(i, top_pos)?;
        if v != Abs::Reg(i) {
            let src = self.rsrc(v)?;
            self.out.push(ROp::Mov { dst: i, src });
        }
        if !tee {
            self.pop()?;
        }
        Some(())
    }

    /// Compare-and-branch peephole: when the branch condition is the
    /// result of the immediately preceding `Rel`, fold both into one
    /// `RelBr` dispatch. Safe against the branch flush: the `Rel`
    /// operands reference registers at or above the condition's position
    /// (or locals/immediates), which the flush — writing only canonical
    /// slots below it — never touches.
    fn take_rel_producer(&mut self, cond: Abs) -> Option<(RelOp, RSrc, RSrc)> {
        if self.out.len() <= self.barrier {
            return None;
        }
        let want = self.canon(self.stack.len())?;
        if cond != Abs::Reg(want) {
            return None;
        }
        match self.out.last() {
            Some(ROp::Rel { dst, op, a, b }) if *dst == want => {
                let (op, a, b) = (*op, *a, *b);
                self.out.pop();
                Some((op, a, b))
            }
            _ => None,
        }
    }
}

/// Collects every branch target with its canonical entry shape
/// `(drop_to, keep)`. The shapes are structural per label (they come
/// from the control-frame entries in `prep`), so a conflict means the
/// input is malformed — the caller bails to the stack tier.
fn collect_labels(ops: &[Op]) -> Option<HashMap<u32, (u32, u16)>> {
    use std::collections::hash_map::Entry;
    let mut labels: HashMap<u32, (u32, u16)> = HashMap::new();
    let mut add = |d: &BrDest| -> bool {
        match labels.entry(d.target) {
            Entry::Occupied(e) => *e.get() == (d.drop_to, d.keep),
            Entry::Vacant(e) => {
                e.insert((d.drop_to, d.keep));
                true
            }
        }
    };
    for op in ops {
        let ok = match op {
            Op::Br(d)
            | Op::BrIf(d)
            | Op::BrIfZero(d)
            | Op::RelBrIf(_, d)
            | Op::RelBrIfZero(_, d) => add(d),
            Op::BrTable(dests, def) => dests.iter().all(&mut add) && add(def),
            _ => true,
        };
        if !ok {
            return None;
        }
    }
    Some(labels)
}

/// Lowers one prepared function to the register IR. `sigs` gives
/// `(params, results)` for every function in the combined index space;
/// `types` resolves `call_indirect` signatures.
pub fn lower(func: &PreparedFunc, sigs: &[(u16, u16)], types: &[FuncType]) -> Option<RegFunc> {
    let nlocals = func.params + func.locals;
    if nlocals > u16::MAX as u32 {
        return None;
    }
    let labels = collect_labels(&func.ops)?;
    let mut lw = Lowerer {
        nlocals,
        results: func.results,
        out: Vec::with_capacity(func.ops.len()),
        stack: Vec::new(),
        max_height: 0,
        barrier: 0,
        consts: Vec::new(),
        const_ix: HashMap::new(),
    };
    let mut new_pc: Vec<u32> = vec![0; func.ops.len() + 1];
    let mut live = true;

    for (pc, op) in func.ops.iter().enumerate() {
        if let Some(&(drop_to, keep)) = labels.get(&(pc as u32)) {
            let h = drop_to as usize + keep as usize;
            if live {
                if lw.stack.len() != h {
                    return None;
                }
                lw.flush_range(0, h)?;
            } else {
                // Resurrect at the label: every entry path leaves the
                // registers canonical, so the abstract state is exactly
                // the canonical slots up to the label height.
                lw.stack.clear();
                for d in 0..h {
                    let c = lw.canon(d)?;
                    lw.push(Abs::Reg(c));
                }
                live = true;
            }
            lw.barrier = lw.out.len();
        }
        // Recorded *after* the label flush: fallthrough runs the Movs,
        // branches land past them on canonical registers.
        new_pc[pc] = lw.out.len() as u32;
        if !live {
            continue;
        }
        live = lower_op(&mut lw, op, sigs, types)?;
        if !live {
            lw.stack.clear();
        }
    }

    // Retarget branches from old pcs to lowered pcs.
    for op in &mut lw.out {
        match op {
            ROp::Br(d)
            | ROp::BrIf { dest: d, .. }
            | ROp::BrIfZero { dest: d, .. }
            | ROp::RelBr { dest: d, .. } => d.target = new_pc[d.target as usize],
            ROp::BrTable { table, .. } => {
                for d in table.dests.iter_mut() {
                    d.target = new_pc[d.target as usize];
                }
                table.default.target = new_pc[table.default.target as usize];
            }
            _ => {}
        }
    }

    let mut out = peephole(lw.out);
    fold_safepoint_polls(&mut out);

    validated(RegFunc {
        nregs: nlocals + lw.max_height as u32,
        ops: out.into_boxed_slice(),
        consts: lw.consts.into_boxed_slice(),
    })
}

/// Visits every branch destination of `op` (including jump-table
/// entries) as a `(target, poll)` pair.
fn for_each_dest(op: &mut ROp, f: &mut impl FnMut(&mut u32, &mut bool)) {
    match op {
        ROp::Br(d)
        | ROp::BrIf { dest: d, .. }
        | ROp::BrIfZero { dest: d, .. }
        | ROp::RelBr { dest: d, .. } => f(&mut d.target, &mut d.poll),
        ROp::BrTable { table, .. } => {
            for d in table.dests.iter_mut() {
                f(&mut d.target, &mut d.poll);
            }
            f(&mut table.default.target, &mut table.default.poll);
        }
        ROp::BinRelBr { target, poll, .. } => f(target, poll),
        _ => {}
    }
}

/// Merges `first; second` into one dispatch when the pair matches a
/// superinstruction pattern. Every fusion writes the same registers the
/// sequence wrote (both destinations for [`ROp::Bin2`]/[`ROp::CvtBin`]),
/// so it needs no liveness information to be sound.
fn fuse_pair(first: &ROp, second: &ROp) -> Option<ROp> {
    match (first, second) {
        // Base-plus-index addressing: the add's scratch result is
        // consumed and overwritten by the load, so dropping the
        // intermediate write is invisible.
        (
            ROp::Bin {
                dst: t,
                op: BinOp::I32Add,
                a,
                b,
            },
            ROp::Load {
                dst,
                kind,
                addr: RSrc::Reg(r),
                offset,
            },
        ) if r == t && dst == t => Some(ROp::LoadIdx {
            dst: *dst,
            kind: *kind,
            a: *a,
            b: *b,
            offset: *offset,
        }),
        // `i += 1; if i rel n goto L`: a binary op feeding the left
        // operand of a compare-and-branch with no register fixup.
        (
            ROp::Bin { dst: t, op, a, b },
            ROp::RelBr {
                op: rel,
                a: RSrc::Reg(r),
                b: c,
                if_true,
                dest,
            },
        ) if r == t && dest.keep == 0 => Some(ROp::BinRelBr {
            op: *op,
            a: *a,
            b: *b,
            dst: *t,
            rel: *rel,
            c: *c,
            if_true: *if_true,
            target: dest.target,
            poll: dest.poll,
        }),
        // Any two adjacent binary ops — chained or independent, the
        // write-before-read contract makes both cases sequential.
        (
            ROp::Bin {
                dst: dst1,
                op: op1,
                a,
                b,
            },
            ROp::Bin {
                dst: dst2,
                op: op2,
                a: a2,
                b: b2,
            },
        ) => Some(ROp::Bin2 {
            op1: *op1,
            a: *a,
            b: *b,
            dst1: *dst1,
            op2: *op2,
            a2: *a2,
            b2: *b2,
            dst2: *dst2,
        }),
        // A conversion followed by a binary op.
        (
            ROp::Cvt {
                dst: dst1,
                op: cvt,
                a,
            },
            ROp::Bin {
                dst: dst2,
                op,
                a: a2,
                b: b2,
            },
        ) => Some(ROp::CvtBin {
            cvt: *cvt,
            a: *a,
            dst1: *dst1,
            op: *op,
            a2: *a2,
            b2: *b2,
            dst2: *dst2,
        }),
        _ => None,
    }
}

/// Pairwise superinstruction pass over the retargeted code. A pair
/// `(i, i+1)` may merge only when `i + 1` is not a branch target
/// (execution can never enter mid-superinstruction: the only other
/// entry points are frame-resume pcs, which always follow
/// `Call`/`CallIndirect`/`Safepoint`/host ops — never the
/// `Bin`/`Cvt`/`Load` ops fused here). Branch targets are then remapped
/// through the compaction.
fn peephole(ops: Vec<ROp>) -> Vec<ROp> {
    let mut is_target = vec![false; ops.len() + 1];
    let mut mark = |t: u32| {
        if let Some(slot) = is_target.get_mut(t as usize) {
            *slot = true;
        }
    };
    for op in &ops {
        match op {
            ROp::Br(d)
            | ROp::BrIf { dest: d, .. }
            | ROp::BrIfZero { dest: d, .. }
            | ROp::RelBr { dest: d, .. } => mark(d.target),
            ROp::BrTable { table, .. } => {
                table.dests.iter().for_each(|d| mark(d.target));
                mark(table.default.target);
            }
            ROp::BinRelBr { target, .. } => mark(*target),
            _ => {}
        }
    }

    let mut out: Vec<ROp> = Vec::with_capacity(ops.len());
    let mut new_pc: Vec<u32> = vec![0; ops.len() + 1];
    let mut i = 0;
    while i < ops.len() {
        new_pc[i] = out.len() as u32;
        if i + 1 < ops.len() && !is_target[i + 1] {
            if let Some(fused) = fuse_pair(&ops[i], &ops[i + 1]) {
                new_pc[i + 1] = out.len() as u32; // unreachable: not a target
                out.push(fused);
                i += 2;
                continue;
            }
        }
        out.push(ops[i].clone());
        i += 1;
    }
    new_pc[ops.len()] = out.len() as u32;

    for op in &mut out {
        for_each_dest(op, &mut |t, _| *t = new_pc[*t as usize]);
    }
    out
}

/// Folds loop-header safepoints into the branches that enter them: a
/// branch targeting a `Safepoint` jumps one past it and polls inline
/// ([`RBr::poll`]). The fallthrough entry still executes the header
/// `Safepoint` op, so poll count and poll points — and the handler's
/// resume pc — are exactly those of the unfused code; only the
/// per-back-edge dispatch is saved.
fn fold_safepoint_polls(ops: &mut [ROp]) {
    let sp: Vec<bool> = ops.iter().map(|o| matches!(o, ROp::Safepoint)).collect();
    for op in ops.iter_mut() {
        for_each_dest(op, &mut |target, poll| {
            let t = *target as usize;
            if t + 1 < sp.len() && sp[t] {
                *poll = true;
                *target += 1;
            }
        });
    }
}

/// Bounds-checks a lowered function once: every register operand below
/// `nregs`, every pool index within the pool, every branch fixup within
/// the frame, every branch target within the code, and a terminator
/// (`Return`/`Unreachable`/`Br`/`BrTable`) as the last op. The dispatch
/// loop relies on this to elide per-access bounds checks on the
/// register file *and* the op fetch ([`crate::interp`]'s register-tier
/// `SAFETY` comment): in-bounds targets plus a terminating tail mean
/// the pc can never step or jump past the op array. `lower` never
/// emits code violating these, so a failure is a lowering bug and the
/// caller bails to the stack tier.
fn validated(rf: RegFunc) -> Option<RegFunc> {
    let nregs = rf.nregs;
    let npool = rf.consts.len();
    let nops = rf.ops.len() as u32;
    let reg = |r: u16| ((r as u32) < nregs).then_some(());
    let src = |s: &RSrc| match *s {
        RSrc::Reg(r) => reg(r),
        RSrc::Const(i) => ((i as usize) < npool).then_some(()),
    };
    let br = |d: &RBr| {
        (d.target < nops
            && d.src as u32 + d.keep as u32 <= nregs
            && d.dst as u32 + d.keep as u32 <= nregs)
            .then_some(())
    };
    matches!(
        rf.ops.last()?,
        ROp::Return { .. } | ROp::Unreachable | ROp::Br(_) | ROp::BrTable { .. }
    )
    .then_some(())?;
    let span = |at: u16, n: u16| (at as u32 + n as u32 <= nregs).then_some(());
    for op in &rf.ops {
        match op {
            ROp::Unreachable | ROp::Safepoint | ROp::AtomicFence => Some(()),
            ROp::Mov { dst, src: s } => reg(*dst).and(src(s)),
            ROp::Br(d) => br(d),
            ROp::BrIf { cond, dest } | ROp::BrIfZero { cond, dest } => src(cond).and(br(dest)),
            ROp::RelBr { a, b, dest, .. } => src(a).and(src(b)).and(br(dest)),
            ROp::BrTable { idx, table } => table
                .dests
                .iter()
                .chain([&table.default])
                .try_for_each(|d| br(d).ok_or(()))
                .ok()
                .and(src(idx)),
            ROp::Return { src: s, n } => span(*s, *n),
            ROp::Call { top, nargs, .. } => span(0, *top).filter(|()| nargs <= top),
            ROp::CallIndirect {
                idx, top, nargs, ..
            } => span(0, *top).filter(|()| nargs <= top).and(src(idx)),
            ROp::Select { dst, cond, a, b } => reg(*dst).and(src(cond)).and(src(a)).and(src(b)),
            ROp::GlobalGet { dst, .. } => reg(*dst),
            ROp::GlobalSet { src: s, .. } => src(s),
            ROp::Load { dst, addr, .. } => reg(*dst).and(src(addr)),
            ROp::Store { addr, val, .. } => src(addr).and(src(val)),
            ROp::MemorySize { dst } => reg(*dst),
            ROp::MemoryGrow { dst, delta } => reg(*dst).and(src(delta)),
            ROp::MemoryCopy { dst, src: s, len } => src(dst).and(src(s)).and(src(len)),
            ROp::MemoryFill { dst, val, len } => src(dst).and(src(val)).and(src(len)),
            ROp::Un { dst, a, .. } | ROp::Cvt { dst, a, .. } => reg(*dst).and(src(a)),
            ROp::Bin { dst, a, b, .. }
            | ROp::Rel { dst, a, b, .. }
            | ROp::LoadIdx { dst, a, b, .. } => reg(*dst).and(src(a)).and(src(b)),
            ROp::Bin2 {
                a,
                b,
                dst1,
                a2,
                b2,
                dst2,
                ..
            } => reg(*dst1)
                .and(reg(*dst2))
                .and(src(a))
                .and(src(b))
                .and(src(a2))
                .and(src(b2)),
            ROp::CvtBin {
                a,
                dst1,
                a2,
                b2,
                dst2,
                ..
            } => reg(*dst1)
                .and(reg(*dst2))
                .and(src(a))
                .and(src(a2))
                .and(src(b2)),
            ROp::BinRelBr {
                a,
                b,
                dst,
                c,
                target,
                ..
            } => (*target < nops)
                .then_some(())
                .and(reg(*dst))
                .and(src(a))
                .and(src(b))
                .and(src(c)),
            ROp::AtomicNotify {
                dst, addr, count, ..
            } => reg(*dst).and(src(addr)).and(src(count)),
            ROp::AtomicWait32 {
                dst,
                addr,
                expected,
                timeout,
                ..
            } => reg(*dst)
                .and(src(addr))
                .and(src(expected))
                .and(src(timeout)),
            ROp::AtomicLoad { dst, addr, .. } => reg(*dst).and(src(addr)),
            ROp::AtomicStore { addr, val, .. } => src(addr).and(src(val)),
            ROp::AtomicRmw { dst, addr, val, .. } => reg(*dst).and(src(addr)).and(src(val)),
            ROp::AtomicCmpxchg {
                dst,
                addr,
                expected,
                new,
                ..
            } => reg(*dst).and(src(addr)).and(src(expected)).and(src(new)),
        }?;
    }
    Some(rf)
}

/// Lowers one op; returns `Some(false)` when the op ends the live path.
fn lower_op(lw: &mut Lowerer, op: &Op, sigs: &[(u16, u16)], types: &[FuncType]) -> Option<bool> {
    match op {
        Op::Unreachable => {
            lw.out.push(ROp::Unreachable);
            return Some(false);
        }
        Op::Safepoint => lw.out.push(ROp::Safepoint),
        Op::Br(d) => {
            let h = lw.stack.len();
            let dest = lw.branch_to(d, h)?;
            lw.out.push(ROp::Br(dest));
            return Some(false);
        }
        Op::BrIf(d) | Op::BrIfZero(d) => {
            let if_true = matches!(op, Op::BrIf(_));
            let cond = lw.pop()?;
            let h = lw.stack.len();
            if let Some((rel, a, b)) = lw.take_rel_producer(cond) {
                let dest = lw.branch_to(d, h)?;
                lw.out.push(ROp::RelBr {
                    op: rel,
                    a,
                    b,
                    if_true,
                    dest,
                });
            } else {
                let dest = lw.branch_to(d, h)?;
                let cond = lw.rsrc(cond)?;
                lw.out.push(if if_true {
                    ROp::BrIf { cond, dest }
                } else {
                    ROp::BrIfZero { cond, dest }
                });
            }
        }
        Op::RelBrIf(rel, d) | Op::RelBrIfZero(rel, d) => {
            let if_true = matches!(op, Op::RelBrIf(..));
            let b = lw.pop()?;
            let a = lw.pop()?;
            let h = lw.stack.len();
            let dest = lw.branch_to(d, h)?;
            let (a, b) = (lw.rsrc(a)?, lw.rsrc(b)?);
            lw.out.push(ROp::RelBr {
                op: *rel,
                a,
                b,
                if_true,
                dest,
            });
        }
        Op::BrTable(dests, def) => {
            let idx = lw.pop()?;
            let h = lw.stack.len();
            // All targets share one pre-branch register state: flush
            // everything any of them could read.
            lw.flush_range(0, h)?;
            let rdests: Option<Box<[RBr]>> = dests.iter().map(|d| lw.branch_to(d, h)).collect();
            let default = lw.branch_to(def, h)?;
            let idx = lw.rsrc(idx)?;
            lw.out.push(ROp::BrTable {
                idx,
                table: Box::new(RTable {
                    dests: rdests?,
                    default,
                }),
            });
            return Some(false);
        }
        Op::Return => {
            let n = u16::try_from(lw.results).ok()?;
            let h = lw.stack.len();
            let from = h.checked_sub(n as usize)?;
            lw.flush_range(from, h)?;
            lw.out.push(ROp::Return {
                src: lw.canon(from)?,
                n,
            });
            return Some(false);
        }
        Op::Call(f) => {
            let (p, r) = *sigs.get(*f as usize)?;
            emit_call(lw, p, r, |_, top| ROp::Call {
                func: *f,
                top,
                nargs: p,
            })?;
        }
        Op::CallIndirect(t) => {
            let ft = types.get(*t as usize)?;
            let p = u16::try_from(ft.params.len()).ok()?;
            let r = u16::try_from(ft.results.len()).ok()?;
            let idx = lw.pop()?;
            let idx = lw.rsrc(idx)?;
            emit_call(lw, p, r, |_, top| ROp::CallIndirect {
                ty: *t,
                idx,
                top,
                nargs: p,
            })?;
        }
        Op::Drop => {
            lw.pop()?;
        }
        Op::Select => {
            let c = lw.pop()?;
            let b = lw.pop()?;
            let a = lw.pop()?;
            if let Abs::Imm(cv) = c {
                // Constant condition: the select is a plain move.
                lw.push(if cv as u32 != 0 { a } else { b });
            } else {
                let dst = lw.dst_here()?;
                let (cond, a, b) = (lw.rsrc(c)?, lw.rsrc(a)?, lw.rsrc(b)?);
                lw.out.push(ROp::Select { dst, cond, a, b });
                lw.push(Abs::Reg(dst));
            }
        }
        Op::LocalGet(i) => {
            if *i >= lw.nlocals {
                return None;
            }
            lw.push(Abs::Reg(*i as u16));
        }
        Op::LocalSet(i) => lw.set_local(u16::try_from(*i).ok()?, false)?,
        Op::LocalTee(i) => lw.set_local(u16::try_from(*i).ok()?, true)?,
        Op::GlobalGet(i) => {
            let dst = lw.dst_here()?;
            lw.out.push(ROp::GlobalGet { dst, idx: *i });
            lw.push(Abs::Reg(dst));
        }
        Op::GlobalSet(i) => {
            let v = lw.pop()?;
            let src = lw.rsrc(v)?;
            lw.out.push(ROp::GlobalSet { idx: *i, src });
        }
        Op::Load(kind, offset) => {
            let addr = lw.pop()?;
            let dst = lw.dst_here()?;
            let addr = lw.rsrc(addr)?;
            lw.out.push(ROp::Load {
                dst,
                kind: *kind,
                addr,
                offset: u32::try_from(*offset).ok()?,
            });
            lw.push(Abs::Reg(dst));
        }
        Op::LocalLoad(i, kind, offset) => {
            if *i >= lw.nlocals {
                return None;
            }
            let dst = lw.dst_here()?;
            lw.out.push(ROp::Load {
                dst,
                kind: *kind,
                addr: RSrc::Reg(*i as u16),
                offset: u32::try_from(*offset).ok()?,
            });
            lw.push(Abs::Reg(dst));
        }
        Op::Store(kind, offset) => {
            let v = lw.pop()?;
            let addr = lw.pop()?;
            let (addr, val) = (lw.rsrc(addr)?, lw.rsrc(v)?);
            lw.out.push(ROp::Store {
                kind: *kind,
                addr,
                val,
                offset: u32::try_from(*offset).ok()?,
            });
        }
        Op::MemorySize => {
            let dst = lw.dst_here()?;
            lw.out.push(ROp::MemorySize { dst });
            lw.push(Abs::Reg(dst));
        }
        Op::MemoryGrow => {
            let delta = lw.pop()?;
            let dst = lw.dst_here()?;
            let delta = lw.rsrc(delta)?;
            lw.out.push(ROp::MemoryGrow { dst, delta });
            lw.push(Abs::Reg(dst));
        }
        Op::MemoryCopy => {
            let len = lw.pop()?;
            let src = lw.pop()?;
            let dst = lw.pop()?;
            let (dst, src, len) = (lw.rsrc(dst)?, lw.rsrc(src)?, lw.rsrc(len)?);
            lw.out.push(ROp::MemoryCopy { dst, src, len });
        }
        Op::MemoryFill => {
            let len = lw.pop()?;
            let val = lw.pop()?;
            let dst = lw.pop()?;
            let (dst, val, len) = (lw.rsrc(dst)?, lw.rsrc(val)?, lw.rsrc(len)?);
            lw.out.push(ROp::MemoryFill { dst, val, len });
        }
        Op::Const(v) => lw.push(Abs::Imm(*v)),
        Op::Un(op) => {
            let a = lw.pop()?;
            if let Abs::Imm(x) = a {
                if let Ok(v) = eval_un(*op, x) {
                    lw.push(Abs::Imm(v));
                    return Some(true);
                }
            }
            let dst = lw.dst_here()?;
            let a = lw.rsrc(a)?;
            lw.out.push(ROp::Un { dst, op: *op, a });
            lw.push(Abs::Reg(dst));
        }
        Op::Bin(op) => {
            let b = lw.pop()?;
            let a = lw.pop()?;
            emit_bin(lw, *op, a, b)?;
        }
        Op::ConstBin(k, op) => {
            let a = lw.pop()?;
            emit_bin(lw, *op, a, Abs::Imm(*k))?;
        }
        Op::LocalLocalBin(a, b, op) => {
            if *a >= lw.nlocals || *b >= lw.nlocals {
                return None;
            }
            emit_bin(lw, *op, Abs::Reg(*a as u16), Abs::Reg(*b as u16))?;
        }
        Op::LocalConstBin(a, k, op) => {
            if *a >= lw.nlocals {
                return None;
            }
            emit_bin(lw, *op, Abs::Reg(*a as u16), Abs::Imm(*k))?;
        }
        Op::Rel(op) => {
            let b = lw.pop()?;
            let a = lw.pop()?;
            if let (Abs::Imm(x), Abs::Imm(y)) = (a, b) {
                lw.push(Abs::Imm(eval_rel(*op, x, y) as u64));
                return Some(true);
            }
            let dst = lw.dst_here()?;
            let (a, b) = (lw.rsrc(a)?, lw.rsrc(b)?);
            lw.out.push(ROp::Rel { dst, op: *op, a, b });
            lw.push(Abs::Reg(dst));
        }
        Op::Cvt(op) => {
            let a = lw.pop()?;
            if let Abs::Imm(x) = a {
                if let Ok(v) = eval_cvt(*op, x) {
                    lw.push(Abs::Imm(v));
                    return Some(true);
                }
            }
            let dst = lw.dst_here()?;
            let a = lw.rsrc(a)?;
            lw.out.push(ROp::Cvt { dst, op: *op, a });
            lw.push(Abs::Reg(dst));
        }
        Op::AtomicNotify(offset) => {
            let count = lw.pop()?;
            let addr = lw.pop()?;
            let dst = lw.dst_here()?;
            let (addr, count) = (lw.rsrc(addr)?, lw.rsrc(count)?);
            lw.out.push(ROp::AtomicNotify {
                dst,
                addr,
                count,
                offset: u32::try_from(*offset).ok()?,
            });
            lw.push(Abs::Reg(dst));
        }
        Op::AtomicWait32(offset) => {
            let timeout = lw.pop()?;
            let expected = lw.pop()?;
            let addr = lw.pop()?;
            let dst = lw.dst_here()?;
            let (addr, expected, timeout) = (lw.rsrc(addr)?, lw.rsrc(expected)?, lw.rsrc(timeout)?);
            lw.out.push(ROp::AtomicWait32 {
                dst,
                addr,
                expected,
                timeout,
                offset: u32::try_from(*offset).ok()?,
            });
            lw.push(Abs::Reg(dst));
        }
        Op::AtomicFence => lw.out.push(ROp::AtomicFence),
        Op::AtomicLoad(w, offset) => {
            let addr = lw.pop()?;
            let dst = lw.dst_here()?;
            let addr = lw.rsrc(addr)?;
            lw.out.push(ROp::AtomicLoad {
                dst,
                width: *w,
                addr,
                offset: u32::try_from(*offset).ok()?,
            });
            lw.push(Abs::Reg(dst));
        }
        Op::AtomicStore(w, offset) => {
            let v = lw.pop()?;
            let addr = lw.pop()?;
            let (addr, val) = (lw.rsrc(addr)?, lw.rsrc(v)?);
            lw.out.push(ROp::AtomicStore {
                width: *w,
                addr,
                val,
                offset: u32::try_from(*offset).ok()?,
            });
        }
        Op::AtomicRmw(op, offset) => {
            let v = lw.pop()?;
            let addr = lw.pop()?;
            let dst = lw.dst_here()?;
            let (addr, val) = (lw.rsrc(addr)?, lw.rsrc(v)?);
            lw.out.push(ROp::AtomicRmw {
                dst,
                op: *op,
                addr,
                val,
                offset: u32::try_from(*offset).ok()?,
            });
            lw.push(Abs::Reg(dst));
        }
        Op::AtomicCmpxchg(offset) => {
            let new = lw.pop()?;
            let expected = lw.pop()?;
            let addr = lw.pop()?;
            let dst = lw.dst_here()?;
            let (addr, expected, new) = (lw.rsrc(addr)?, lw.rsrc(expected)?, lw.rsrc(new)?);
            lw.out.push(ROp::AtomicCmpxchg {
                dst,
                addr,
                expected,
                new,
                offset: u32::try_from(*offset).ok()?,
            });
            lw.push(Abs::Reg(dst));
        }
    }
    Some(true)
}

/// Shared tail of `call`/`call_indirect`: flush the arguments to their
/// canonical registers, emit the call with the operand `top`, then model
/// the results as canonical registers.
fn emit_call(
    lw: &mut Lowerer,
    params: u16,
    results: u16,
    build: impl FnOnce(&mut Lowerer, u16) -> ROp,
) -> Option<()> {
    let h = lw.stack.len();
    let p = params as usize;
    let argbase = h.checked_sub(p)?;
    lw.flush_range(argbase, h)?;
    let top = lw.canon(h)?;
    let op = build(lw, top);
    lw.out.push(op);
    for _ in 0..p {
        lw.pop()?;
    }
    for _ in 0..results {
        let dst = lw.dst_here()?;
        lw.push(Abs::Reg(dst));
    }
    Some(())
}

/// Emits a three-address binary op, folding constant operands.
fn emit_bin(lw: &mut Lowerer, op: BinOp, a: Abs, b: Abs) -> Option<()> {
    if let (Abs::Imm(x), Abs::Imm(y)) = (a, b) {
        if let Ok(v) = eval_bin(op, x, y) {
            lw.push(Abs::Imm(v));
            return Some(());
        }
        // Trapping constants (e.g. div by zero): emit the op so the
        // trap fires at the original program point.
    }
    let dst = lw.dst_here()?;
    let (a, b) = (lw.rsrc(a)?, lw.rsrc(b)?);
    lw.out.push(ROp::Bin { dst, op, a, b });
    lw.push(Abs::Reg(dst));
    Some(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BinOp;

    fn pf(params: u32, locals: u32, results: u32, ops: Vec<Op>) -> PreparedFunc {
        PreparedFunc {
            ty: 0,
            params,
            locals,
            results,
            ops: ops.into_boxed_slice(),
            reg: None,
        }
    }

    #[test]
    fn fused_add_collapses_to_one_bin() {
        // (param i32 i32) (result i32): local.get 0; local.get 1; add —
        // in its fused input form.
        let f = pf(
            2,
            0,
            1,
            vec![Op::LocalLocalBin(0, 1, BinOp::I32Add), Op::Return],
        );
        let r = lower(&f, &[], &[]).expect("lowers");
        assert_eq!(r.nregs, 3);
        assert_eq!(
            &*r.ops,
            &[
                ROp::Bin {
                    dst: 2,
                    op: BinOp::I32Add,
                    a: RSrc::Reg(0),
                    b: RSrc::Reg(1),
                },
                ROp::Return { src: 2, n: 1 },
            ]
        );
    }

    #[test]
    fn constants_fold_at_lowering_time() {
        let f = pf(
            0,
            0,
            1,
            vec![
                Op::Const(2),
                Op::Const(3),
                Op::Bin(BinOp::I32Add),
                Op::Return,
            ],
        );
        let r = lower(&f, &[], &[]).expect("lowers");
        // The sum spills once at the return flush; no Bin survives.
        match r.ops[0] {
            ROp::Mov { dst: 0, src } => assert_eq!(r.const_of(src), Some(5)),
            ref other => panic!("expected folded Mov, got {other:?}"),
        }
        assert_eq!(r.ops[1], ROp::Return { src: 0, n: 1 });
        assert_eq!(r.ops.len(), 2);
    }

    #[test]
    fn trapping_const_div_is_not_folded() {
        let f = pf(
            0,
            0,
            1,
            vec![
                Op::Const(1),
                Op::Const(0),
                Op::Bin(BinOp::I32DivU),
                Op::Return,
            ],
        );
        let r = lower(&f, &[], &[]).expect("lowers");
        assert!(
            matches!(
                r.ops[0],
                ROp::Bin {
                    op: BinOp::I32DivU,
                    ..
                }
            ),
            "div-by-zero must stay an op so the trap fires: {:?}",
            r.ops
        );
    }

    #[test]
    fn counter_loop_needs_no_movs() {
        // Fused-form body of `loop { l0 += 1; if l0 < 10 continue }`:
        //   0: Safepoint (loop header, back-edge target)
        //   1: LocalConstBin(0, 1, add)
        //   2: LocalSet(0)
        //   3: LocalGet(0)
        //   4: Const(10)
        //   5: RelBrIf(lt_u, -> 0)
        //   6: Return
        let f = pf(
            1,
            0,
            0,
            vec![
                Op::Safepoint,
                Op::LocalConstBin(0, 1, BinOp::I32Add),
                Op::LocalSet(0),
                Op::LocalGet(0),
                Op::Const(10),
                Op::RelBrIf(
                    crate::instr::RelOp::I32LtU,
                    BrDest {
                        target: 0,
                        drop_to: 0,
                        keep: 0,
                    },
                ),
                Op::Return,
            ],
        );
        let r = lower(&f, &[], &[]).expect("lowers");
        // Safepoint; then the whole steady state — increment, compare
        // and back edge — is ONE `BinRelBr` dispatch whose poll flag
        // absorbed the header safepoint; Return. Zero Movs, zero stack
        // traffic.
        assert!(
            !r.ops.iter().any(|o| matches!(o, ROp::Mov { .. })),
            "loop should lower Mov-free: {:?}",
            r.ops
        );
        assert_eq!(r.ops.len(), 3, "{:?}", r.ops);
        match r.ops[1] {
            ROp::BinRelBr {
                dst: 0,
                a: RSrc::Reg(0),
                b,
                c,
                target,
                poll,
                ..
            } => {
                assert_eq!(r.const_of(b), Some(1));
                assert_eq!(r.const_of(c), Some(10));
                assert_eq!(target, 1, "back edge skips the header safepoint");
                assert!(poll, "back edge absorbs the header safepoint poll");
            }
            ref other => panic!(
                "increment + compare + back edge should fuse: {other:?} in {:?}",
                r.ops
            ),
        }
    }

    #[test]
    fn value_held_across_branch_is_flushed() {
        // A lazy constant sits *below* the branch's drop_to boundary: the
        // taken path lands on a label that expects it in its canonical
        // register, so the flush must happen before the branch.
        //   0: Const(42)
        //   1: Const(1)
        //   2: BrIf -> 3 (drop_to 1, keep 0)
        //   3: Return (result = the 42)
        let f = pf(
            0,
            0,
            1,
            vec![
                Op::Const(42),
                Op::Const(1),
                Op::BrIf(BrDest {
                    target: 3,
                    drop_to: 1,
                    keep: 0,
                }),
                Op::Return,
            ],
        );
        let r = lower(&f, &[], &[]).expect("lowers");
        match r.ops[0] {
            ROp::Mov { dst: 0, src } => assert_eq!(r.const_of(src), Some(42)),
            ref other => panic!(
                "the 42 must be canonical before the branch: {other:?} in {:?}",
                r.ops
            ),
        }
        match &r.ops[1] {
            ROp::BrIf { cond, dest } => {
                assert_eq!(r.const_of(*cond), Some(1));
                // Retargeted past the flush Mov to the Return.
                assert_eq!(dest.target, 2);
            }
            other => panic!("expected BrIf, got {other:?}"),
        }
    }

    #[test]
    fn conflicting_label_shapes_bail() {
        let f = pf(
            0,
            0,
            0,
            vec![
                Op::Br(BrDest {
                    target: 2,
                    drop_to: 0,
                    keep: 0,
                }),
                Op::Br(BrDest {
                    target: 2,
                    drop_to: 1,
                    keep: 0,
                }),
                Op::Return,
            ],
        );
        assert!(lower(&f, &[], &[]).is_none());
    }
}
