//! Wasm type grammar: value, function, limit, memory, table and global
//! types.

use core::fmt;

/// A Wasm value type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ValType {
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
    /// Function reference (table element type).
    FuncRef,
}

impl ValType {
    /// Binary encoding byte.
    pub fn byte(self) -> u8 {
        match self {
            ValType::I32 => 0x7f,
            ValType::I64 => 0x7e,
            ValType::F32 => 0x7d,
            ValType::F64 => 0x7c,
            ValType::FuncRef => 0x70,
        }
    }

    /// Decodes from the binary encoding byte.
    pub fn from_byte(b: u8) -> Option<ValType> {
        match b {
            0x7f => Some(ValType::I32),
            0x7e => Some(ValType::I64),
            0x7d => Some(ValType::F32),
            0x7c => Some(ValType::F64),
            0x70 => Some(ValType::FuncRef),
            _ => None,
        }
    }
}

impl fmt::Display for ValType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
            ValType::FuncRef => "funcref",
        };
        f.write_str(s)
    }
}

/// A function signature.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct FuncType {
    /// Parameter types, in order.
    pub params: Vec<ValType>,
    /// Result types, in order.
    pub results: Vec<ValType>,
}

impl FuncType {
    /// Builds a signature from slices.
    pub fn new(params: impl Into<Vec<ValType>>, results: impl Into<Vec<ValType>>) -> Self {
        FuncType {
            params: params.into(),
            results: results.into(),
        }
    }
}

impl fmt::Display for FuncType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> (")?;
        for (i, r) in self.results.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
        }
        write!(f, ")")
    }
}

/// Min/max size limits for memories and tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Initial size (pages or elements).
    pub min: u32,
    /// Optional maximum size.
    pub max: Option<u32>,
}

impl Limits {
    /// Checks internal consistency (`min <= max`).
    pub fn valid(&self) -> bool {
        self.max.is_none_or(|m| self.min <= m)
    }
}

/// A memory type (limits in 64 KiB pages, optionally shared).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryType {
    /// Page limits.
    pub limits: Limits,
    /// Whether this memory may be shared between threads
    /// (instance-per-thread sharing; paper §3.1).
    pub shared: bool,
}

/// A table type (funcref only, per core MVP).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableType {
    /// Element count limits.
    pub limits: Limits,
}

/// A global variable type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GlobalType {
    /// Value type of the global.
    pub ty: ValType,
    /// Whether the global is mutable.
    pub mutable: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valtype_byte_round_trip() {
        for t in [
            ValType::I32,
            ValType::I64,
            ValType::F32,
            ValType::F64,
            ValType::FuncRef,
        ] {
            assert_eq!(ValType::from_byte(t.byte()), Some(t));
        }
        assert_eq!(ValType::from_byte(0x00), None);
    }

    #[test]
    fn limits_validity() {
        assert!(Limits { min: 1, max: None }.valid());
        assert!(Limits {
            min: 1,
            max: Some(1)
        }
        .valid());
        assert!(!Limits {
            min: 2,
            max: Some(1)
        }
        .valid());
    }

    #[test]
    fn functype_display() {
        let ft = FuncType::new([ValType::I32, ValType::I64], [ValType::I32]);
        assert_eq!(ft.to_string(), "(i32, i64) -> (i32)");
    }
}
