//! Binary-format decoder: bytes → [`Module`].

use crate::error::DecodeError;
use crate::instr::{AtomicWidth, BlockType, Instr, LoadKind, MemArg, RmwOp, StoreKind};
use crate::leb::Reader;
use crate::module::{
    ConstExpr, DataSegment, ElemSegment, Export, ExportDesc, FuncBody, Global, Import, ImportDesc,
    Module,
};
use crate::types::{FuncType, GlobalType, Limits, MemoryType, TableType, ValType};

const MAGIC: [u8; 4] = *b"\0asm";
const VERSION: [u8; 4] = [1, 0, 0, 0];

/// Decodes a complete binary module.
pub fn decode(bytes: &[u8]) -> Result<Module, DecodeError> {
    let mut r = Reader::new(bytes);
    if r.bytes(4)? != MAGIC || r.bytes(4)? != VERSION {
        return Err(DecodeError::BadHeader);
    }

    let mut m = Module::default();
    let mut last_section = 0u8;
    while !r.is_empty() {
        let id = r.byte()?;
        let size = r.u32()? as usize;
        let body = r.bytes(size)?;
        if id != 0 {
            // Non-custom sections must appear in ascending order, once.
            if id <= last_section {
                return Err(DecodeError::SectionOrder(id));
            }
            last_section = id;
        }
        let mut s = Reader::new(body);
        match id {
            0 => { /* custom section: skipped */ }
            1 => decode_types(&mut s, &mut m)?,
            2 => decode_imports(&mut s, &mut m)?,
            3 => decode_funcs(&mut s, &mut m)?,
            4 => decode_tables(&mut s, &mut m)?,
            5 => decode_memories(&mut s, &mut m)?,
            6 => decode_globals(&mut s, &mut m)?,
            7 => decode_exports(&mut s, &mut m)?,
            8 => m.start = Some(s.u32()?),
            9 => decode_elems(&mut s, &mut m)?,
            10 => decode_code(&mut s, &mut m)?,
            11 => decode_datas(&mut s, &mut m)?,
            12 => { /* data count: informational */ }
            other => return Err(DecodeError::UnknownSection(other)),
        }
        if id != 8 && id != 0 && id != 12 && !s.is_empty() {
            return Err(DecodeError::SectionSize);
        }
    }
    if m.funcs.len() != m.code.len() {
        return Err(DecodeError::Malformed("function/code count mismatch"));
    }
    Ok(m)
}

fn valtype(r: &mut Reader) -> Result<ValType, DecodeError> {
    let b = r.byte()?;
    ValType::from_byte(b).ok_or(DecodeError::Malformed("value type"))
}

fn limits(r: &mut Reader) -> Result<(Limits, bool), DecodeError> {
    let kind = r.byte()?;
    let (has_max, shared) = match kind {
        0x00 => (false, false),
        0x01 => (true, false),
        0x03 => (true, true), // threads proposal: shared memory
        _ => return Err(DecodeError::Malformed("limits kind")),
    };
    let min = r.u32()?;
    let max = if has_max { Some(r.u32()?) } else { None };
    Ok((Limits { min, max }, shared))
}

fn decode_types(r: &mut Reader, m: &mut Module) -> Result<(), DecodeError> {
    let count = r.u32()?;
    for _ in 0..count {
        if r.byte()? != 0x60 {
            return Err(DecodeError::Malformed("functype tag"));
        }
        let np = r.u32()? as usize;
        let mut params = Vec::with_capacity(np);
        for _ in 0..np {
            params.push(valtype(r)?);
        }
        let nr = r.u32()? as usize;
        let mut results = Vec::with_capacity(nr);
        for _ in 0..nr {
            results.push(valtype(r)?);
        }
        m.types.push(FuncType { params, results });
    }
    Ok(())
}

fn decode_imports(r: &mut Reader, m: &mut Module) -> Result<(), DecodeError> {
    let count = r.u32()?;
    for _ in 0..count {
        let module = r.name()?;
        let name = r.name()?;
        let desc = match r.byte()? {
            0x00 => ImportDesc::Func(r.u32()?),
            0x01 => {
                if r.byte()? != 0x70 {
                    return Err(DecodeError::Malformed("table elem type"));
                }
                let (l, _) = limits(r)?;
                ImportDesc::Table(TableType { limits: l })
            }
            0x02 => {
                let (l, shared) = limits(r)?;
                ImportDesc::Memory(MemoryType { limits: l, shared })
            }
            0x03 => {
                let ty = valtype(r)?;
                let mutable = match r.byte()? {
                    0 => false,
                    1 => true,
                    _ => return Err(DecodeError::Malformed("global mutability")),
                };
                ImportDesc::Global(GlobalType { ty, mutable })
            }
            _ => return Err(DecodeError::Malformed("import kind")),
        };
        m.imports.push(Import { module, name, desc });
    }
    Ok(())
}

fn decode_funcs(r: &mut Reader, m: &mut Module) -> Result<(), DecodeError> {
    let count = r.u32()?;
    for _ in 0..count {
        m.funcs.push(r.u32()?);
    }
    Ok(())
}

fn decode_tables(r: &mut Reader, m: &mut Module) -> Result<(), DecodeError> {
    let count = r.u32()?;
    for _ in 0..count {
        if r.byte()? != 0x70 {
            return Err(DecodeError::Malformed("table elem type"));
        }
        let (l, _) = limits(r)?;
        m.tables.push(TableType { limits: l });
    }
    Ok(())
}

fn decode_memories(r: &mut Reader, m: &mut Module) -> Result<(), DecodeError> {
    let count = r.u32()?;
    for _ in 0..count {
        let (l, shared) = limits(r)?;
        m.memories.push(MemoryType { limits: l, shared });
    }
    Ok(())
}

fn const_expr(r: &mut Reader) -> Result<ConstExpr, DecodeError> {
    let op = r.byte()?;
    let e = match op {
        0x41 => ConstExpr::I32(r.i32()?),
        0x42 => ConstExpr::I64(r.i64()?),
        0x43 => ConstExpr::F32(r.f32_bits()?),
        0x44 => ConstExpr::F64(r.f64_bits()?),
        0x23 => ConstExpr::GlobalGet(r.u32()?),
        0xd0 => {
            r.byte()?; // heap type
            ConstExpr::RefNull
        }
        0xd2 => ConstExpr::RefFunc(r.u32()?),
        _ => return Err(DecodeError::Malformed("const expr opcode")),
    };
    if r.byte()? != 0x0b {
        return Err(DecodeError::Malformed("const expr terminator"));
    }
    Ok(e)
}

fn decode_globals(r: &mut Reader, m: &mut Module) -> Result<(), DecodeError> {
    let count = r.u32()?;
    for _ in 0..count {
        let ty = valtype(r)?;
        let mutable = match r.byte()? {
            0 => false,
            1 => true,
            _ => return Err(DecodeError::Malformed("global mutability")),
        };
        let init = const_expr(r)?;
        m.globals.push(Global {
            ty: GlobalType { ty, mutable },
            init,
        });
    }
    Ok(())
}

fn decode_exports(r: &mut Reader, m: &mut Module) -> Result<(), DecodeError> {
    let count = r.u32()?;
    for _ in 0..count {
        let name = r.name()?;
        let kind = r.byte()?;
        let idx = r.u32()?;
        let desc = match kind {
            0x00 => ExportDesc::Func(idx),
            0x01 => ExportDesc::Table(idx),
            0x02 => ExportDesc::Memory(idx),
            0x03 => ExportDesc::Global(idx),
            _ => return Err(DecodeError::Malformed("export kind")),
        };
        m.exports.push(Export { name, desc });
    }
    Ok(())
}

fn decode_elems(r: &mut Reader, m: &mut Module) -> Result<(), DecodeError> {
    let count = r.u32()?;
    for _ in 0..count {
        if r.u32()? != 0 {
            return Err(DecodeError::Malformed("element segment kind"));
        }
        let offset = const_expr(r)?;
        let n = r.u32()? as usize;
        let mut funcs = Vec::with_capacity(n);
        for _ in 0..n {
            funcs.push(r.u32()?);
        }
        m.elems.push(ElemSegment { offset, funcs });
    }
    Ok(())
}

fn decode_datas(r: &mut Reader, m: &mut Module) -> Result<(), DecodeError> {
    let count = r.u32()?;
    for _ in 0..count {
        if r.u32()? != 0 {
            return Err(DecodeError::Malformed("data segment kind"));
        }
        let offset = const_expr(r)?;
        let n = r.u32()? as usize;
        let bytes = r.bytes(n)?.to_vec();
        m.datas.push(DataSegment { offset, bytes });
    }
    Ok(())
}

fn decode_code(r: &mut Reader, m: &mut Module) -> Result<(), DecodeError> {
    let count = r.u32()?;
    for _ in 0..count {
        let size = r.u32()? as usize;
        let body = r.bytes(size)?;
        let mut br = Reader::new(body);
        let nlocals = br.u32()? as usize;
        let mut locals = Vec::with_capacity(nlocals);
        let mut total: u64 = 0;
        for _ in 0..nlocals {
            let n = br.u32()?;
            let t = valtype(&mut br)?;
            total += n as u64;
            if total > 100_000 {
                return Err(DecodeError::Malformed("too many locals"));
            }
            locals.push((n, t));
        }
        let instrs = decode_expr(&mut br)?;
        if !br.is_empty() {
            return Err(DecodeError::SectionSize);
        }
        m.code.push(FuncBody { locals, instrs });
    }
    Ok(())
}

fn block_type(r: &mut Reader) -> Result<BlockType, DecodeError> {
    // Peek: 0x40 is empty, a valtype byte is single-result, otherwise an
    // SLEB type index.
    let b = r.byte()?;
    if b == 0x40 {
        return Ok(BlockType::Empty);
    }
    if let Some(t) = ValType::from_byte(b) {
        return Ok(BlockType::Value(t));
    }
    // Signed LEB index whose first byte we already consumed: only support
    // the single-byte positive form (type indices < 64), which covers all
    // modules this repo builds.
    if b & 0x80 == 0 && b & 0x40 == 0 {
        Ok(BlockType::Func(b as u32))
    } else {
        Err(DecodeError::Malformed("block type"))
    }
}

/// Decodes an instruction sequence terminated by a balanced final `End`
/// (the terminator itself is consumed but not included).
pub fn decode_expr(r: &mut Reader) -> Result<Vec<Instr>, DecodeError> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    loop {
        let op = r.byte()?;
        let instr = match op {
            0x00 => Instr::Unreachable,
            0x01 => Instr::Nop,
            0x02 => {
                depth += 1;
                Instr::Block(block_type(r)?)
            }
            0x03 => {
                depth += 1;
                Instr::Loop(block_type(r)?)
            }
            0x04 => {
                depth += 1;
                Instr::If(block_type(r)?)
            }
            0x05 => Instr::Else,
            0x0b => {
                if depth == 0 {
                    return Ok(out);
                }
                depth -= 1;
                Instr::End
            }
            0x0c => Instr::Br(r.u32()?),
            0x0d => Instr::BrIf(r.u32()?),
            0x0e => {
                let n = r.u32()? as usize;
                let mut targets = Vec::with_capacity(n);
                for _ in 0..n {
                    targets.push(r.u32()?);
                }
                let default = r.u32()?;
                Instr::BrTable(targets.into_boxed_slice(), default)
            }
            0x0f => Instr::Return,
            0x10 => Instr::Call(r.u32()?),
            0x11 => {
                let ty = r.u32()?;
                let table = r.u32()?;
                if table != 0 {
                    return Err(DecodeError::Malformed("call_indirect table"));
                }
                Instr::CallIndirect(ty)
            }
            0x1a => Instr::Drop,
            0x1b => Instr::Select,
            0x20 => Instr::LocalGet(r.u32()?),
            0x21 => Instr::LocalSet(r.u32()?),
            0x22 => Instr::LocalTee(r.u32()?),
            0x23 => Instr::GlobalGet(r.u32()?),
            0x24 => Instr::GlobalSet(r.u32()?),
            0x28..=0x35 => {
                let kind = match op {
                    0x28 => LoadKind::I32,
                    0x29 => LoadKind::I64,
                    0x2a => LoadKind::F32,
                    0x2b => LoadKind::F64,
                    0x2c => LoadKind::I32_8S,
                    0x2d => LoadKind::I32_8U,
                    0x2e => LoadKind::I32_16S,
                    0x2f => LoadKind::I32_16U,
                    0x30 => LoadKind::I64_8S,
                    0x31 => LoadKind::I64_8U,
                    0x32 => LoadKind::I64_16S,
                    0x33 => LoadKind::I64_16U,
                    0x34 => LoadKind::I64_32S,
                    _ => LoadKind::I64_32U,
                };
                Instr::Load(kind, memarg(r)?)
            }
            0x36..=0x3e => {
                let kind = match op {
                    0x36 => StoreKind::I32,
                    0x37 => StoreKind::I64,
                    0x38 => StoreKind::F32,
                    0x39 => StoreKind::F64,
                    0x3a => StoreKind::I32_8,
                    0x3b => StoreKind::I32_16,
                    0x3c => StoreKind::I64_8,
                    0x3d => StoreKind::I64_16,
                    _ => StoreKind::I64_32,
                };
                Instr::Store(kind, memarg(r)?)
            }
            0x3f => {
                r.byte()?;
                Instr::MemorySize
            }
            0x40 => {
                r.byte()?;
                Instr::MemoryGrow
            }
            0x41 => Instr::I32Const(r.i32()?),
            0x42 => Instr::I64Const(r.i64()?),
            0x43 => Instr::F32Const(r.f32_bits()?),
            0x44 => Instr::F64Const(r.f64_bits()?),
            0x45..=0xc4 => simple_op(op)?,
            0xfc => {
                let sub = r.u32()?;
                match sub {
                    10 => {
                        r.byte()?;
                        r.byte()?;
                        Instr::MemoryCopy
                    }
                    11 => {
                        r.byte()?;
                        Instr::MemoryFill
                    }
                    _ => return Err(DecodeError::UnknownOpcode(0xfc00 | sub)),
                }
            }
            0xfe => {
                let sub = r.u32()?;
                match sub {
                    0x00 => Instr::AtomicNotify(memarg(r)?),
                    0x01 => Instr::AtomicWait32(memarg(r)?),
                    0x03 => {
                        r.byte()?;
                        Instr::AtomicFence
                    }
                    0x10 => Instr::AtomicLoad(AtomicWidth::I32, memarg(r)?),
                    0x11 => Instr::AtomicLoad(AtomicWidth::I64, memarg(r)?),
                    0x17 => Instr::AtomicStore(AtomicWidth::I32, memarg(r)?),
                    0x18 => Instr::AtomicStore(AtomicWidth::I64, memarg(r)?),
                    0x1e => Instr::AtomicRmw(RmwOp::Add, memarg(r)?),
                    0x25 => Instr::AtomicRmw(RmwOp::Sub, memarg(r)?),
                    0x2c => Instr::AtomicRmw(RmwOp::And, memarg(r)?),
                    0x33 => Instr::AtomicRmw(RmwOp::Or, memarg(r)?),
                    0x3a => Instr::AtomicRmw(RmwOp::Xor, memarg(r)?),
                    0x41 => Instr::AtomicRmw(RmwOp::Xchg, memarg(r)?),
                    0x48 => Instr::AtomicCmpxchg(memarg(r)?),
                    _ => return Err(DecodeError::UnknownOpcode(0xfe00 | sub)),
                }
            }
            other => return Err(DecodeError::UnknownOpcode(other as u32)),
        };
        out.push(instr);
    }
}

fn memarg(r: &mut Reader) -> Result<MemArg, DecodeError> {
    let align = r.u32()?;
    let offset = r.u32()?;
    Ok(MemArg { align, offset })
}

/// Decodes the dense single-byte numeric opcode range 0x45..=0xc4.
fn simple_op(op: u8) -> Result<Instr, DecodeError> {
    use crate::instr::{BinOp::*, CvtOp::*, RelOp::*, UnOp::*};
    let instr = match op {
        0x45 => Instr::Un(I32Eqz),
        0x46 => Instr::Rel(I32Eq),
        0x47 => Instr::Rel(I32Ne),
        0x48 => Instr::Rel(I32LtS),
        0x49 => Instr::Rel(I32LtU),
        0x4a => Instr::Rel(I32GtS),
        0x4b => Instr::Rel(I32GtU),
        0x4c => Instr::Rel(I32LeS),
        0x4d => Instr::Rel(I32LeU),
        0x4e => Instr::Rel(I32GeS),
        0x4f => Instr::Rel(I32GeU),
        0x50 => Instr::Un(I64Eqz),
        0x51 => Instr::Rel(I64Eq),
        0x52 => Instr::Rel(I64Ne),
        0x53 => Instr::Rel(I64LtS),
        0x54 => Instr::Rel(I64LtU),
        0x55 => Instr::Rel(I64GtS),
        0x56 => Instr::Rel(I64GtU),
        0x57 => Instr::Rel(I64LeS),
        0x58 => Instr::Rel(I64LeU),
        0x59 => Instr::Rel(I64GeS),
        0x5a => Instr::Rel(I64GeU),
        0x5b => Instr::Rel(F32Eq),
        0x5c => Instr::Rel(F32Ne),
        0x5d => Instr::Rel(F32Lt),
        0x5e => Instr::Rel(F32Gt),
        0x5f => Instr::Rel(F32Le),
        0x60 => Instr::Rel(F32Ge),
        0x61 => Instr::Rel(F64Eq),
        0x62 => Instr::Rel(F64Ne),
        0x63 => Instr::Rel(F64Lt),
        0x64 => Instr::Rel(F64Gt),
        0x65 => Instr::Rel(F64Le),
        0x66 => Instr::Rel(F64Ge),
        0x67 => Instr::Un(I32Clz),
        0x68 => Instr::Un(I32Ctz),
        0x69 => Instr::Un(I32Popcnt),
        0x6a => Instr::Bin(I32Add),
        0x6b => Instr::Bin(I32Sub),
        0x6c => Instr::Bin(I32Mul),
        0x6d => Instr::Bin(I32DivS),
        0x6e => Instr::Bin(I32DivU),
        0x6f => Instr::Bin(I32RemS),
        0x70 => Instr::Bin(I32RemU),
        0x71 => Instr::Bin(I32And),
        0x72 => Instr::Bin(I32Or),
        0x73 => Instr::Bin(I32Xor),
        0x74 => Instr::Bin(I32Shl),
        0x75 => Instr::Bin(I32ShrS),
        0x76 => Instr::Bin(I32ShrU),
        0x77 => Instr::Bin(I32Rotl),
        0x78 => Instr::Bin(I32Rotr),
        0x79 => Instr::Un(I64Clz),
        0x7a => Instr::Un(I64Ctz),
        0x7b => Instr::Un(I64Popcnt),
        0x7c => Instr::Bin(I64Add),
        0x7d => Instr::Bin(I64Sub),
        0x7e => Instr::Bin(I64Mul),
        0x7f => Instr::Bin(I64DivS),
        0x80 => Instr::Bin(I64DivU),
        0x81 => Instr::Bin(I64RemS),
        0x82 => Instr::Bin(I64RemU),
        0x83 => Instr::Bin(I64And),
        0x84 => Instr::Bin(I64Or),
        0x85 => Instr::Bin(I64Xor),
        0x86 => Instr::Bin(I64Shl),
        0x87 => Instr::Bin(I64ShrS),
        0x88 => Instr::Bin(I64ShrU),
        0x89 => Instr::Bin(I64Rotl),
        0x8a => Instr::Bin(I64Rotr),
        0x8b => Instr::Un(F32Abs),
        0x8c => Instr::Un(F32Neg),
        0x8d => Instr::Un(F32Ceil),
        0x8e => Instr::Un(F32Floor),
        0x8f => Instr::Un(F32Trunc),
        0x90 => Instr::Un(F32Nearest),
        0x91 => Instr::Un(F32Sqrt),
        0x92 => Instr::Bin(F32Add),
        0x93 => Instr::Bin(F32Sub),
        0x94 => Instr::Bin(F32Mul),
        0x95 => Instr::Bin(F32Div),
        0x96 => Instr::Bin(F32Min),
        0x97 => Instr::Bin(F32Max),
        0x98 => Instr::Bin(F32Copysign),
        0x99 => Instr::Un(F64Abs),
        0x9a => Instr::Un(F64Neg),
        0x9b => Instr::Un(F64Ceil),
        0x9c => Instr::Un(F64Floor),
        0x9d => Instr::Un(F64Trunc),
        0x9e => Instr::Un(F64Nearest),
        0x9f => Instr::Un(F64Sqrt),
        0xa0 => Instr::Bin(F64Add),
        0xa1 => Instr::Bin(F64Sub),
        0xa2 => Instr::Bin(F64Mul),
        0xa3 => Instr::Bin(F64Div),
        0xa4 => Instr::Bin(F64Min),
        0xa5 => Instr::Bin(F64Max),
        0xa6 => Instr::Bin(F64Copysign),
        0xa7 => Instr::Cvt(I32WrapI64),
        0xa8 => Instr::Cvt(I32TruncF32S),
        0xa9 => Instr::Cvt(I32TruncF32U),
        0xaa => Instr::Cvt(I32TruncF64S),
        0xab => Instr::Cvt(I32TruncF64U),
        0xac => Instr::Cvt(I64ExtendI32S),
        0xad => Instr::Cvt(I64ExtendI32U),
        0xae => Instr::Cvt(I64TruncF32S),
        0xaf => Instr::Cvt(I64TruncF32U),
        0xb0 => Instr::Cvt(I64TruncF64S),
        0xb1 => Instr::Cvt(I64TruncF64U),
        0xb2 => Instr::Cvt(F32ConvertI32S),
        0xb3 => Instr::Cvt(F32ConvertI32U),
        0xb4 => Instr::Cvt(F32ConvertI64S),
        0xb5 => Instr::Cvt(F32ConvertI64U),
        0xb6 => Instr::Cvt(F32DemoteF64),
        0xb7 => Instr::Cvt(F64ConvertI32S),
        0xb8 => Instr::Cvt(F64ConvertI32U),
        0xb9 => Instr::Cvt(F64ConvertI64S),
        0xba => Instr::Cvt(F64ConvertI64U),
        0xbb => Instr::Cvt(F64PromoteF32),
        0xbc => Instr::Cvt(I32ReinterpretF32),
        0xbd => Instr::Cvt(I64ReinterpretF64),
        0xbe => Instr::Cvt(F32ReinterpretI32),
        0xbf => Instr::Cvt(F64ReinterpretI64),
        0xc0 => Instr::Un(I32Extend8S),
        0xc1 => Instr::Un(I32Extend16S),
        0xc2 => Instr::Un(I64Extend8S),
        0xc3 => Instr::Un(I64Extend16S),
        0xc4 => Instr::Un(I64Extend32S),
        other => return Err(DecodeError::UnknownOpcode(other as u32)),
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_header() {
        assert_eq!(decode(b"\0nope\x01\0\0\0"), Err(DecodeError::BadHeader));
        assert_eq!(decode(b"\0asm\x02\0\0\0"), Err(DecodeError::BadHeader));
    }

    #[test]
    fn decodes_empty_module() {
        let bytes = [b'\0', b'a', b's', b'm', 1, 0, 0, 0];
        let m = decode(&bytes).unwrap();
        assert_eq!(m, Module::default());
    }

    #[test]
    fn rejects_out_of_order_sections() {
        // type section (1) after function section (3).
        let bytes = [
            b'\0', b'a', b's', b'm', 1, 0, 0, 0, //
            3, 1, 0, // function section, empty
            1, 1, 0, // type section, empty
        ];
        assert_eq!(decode(&bytes), Err(DecodeError::SectionOrder(1)));
    }

    #[test]
    fn rejects_unknown_opcode() {
        let mut r = Reader::new(&[0xf5, 0x0b]);
        assert!(matches!(
            decode_expr(&mut r),
            Err(DecodeError::UnknownOpcode(0xf5))
        ));
    }
}
