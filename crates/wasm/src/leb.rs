//! LEB128 variable-length integer encoding, as used by the Wasm binary
//! format.

use crate::error::DecodeError;

/// A bounds-checked reader over a byte buffer with LEB128 primitives.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader at offset 0.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current byte offset.
    #[inline]
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes remaining.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when all bytes have been consumed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Reads one byte.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::UnexpectedEof)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::UnexpectedEof)?;
        let s = self
            .buf
            .get(self.pos..end)
            .ok_or(DecodeError::UnexpectedEof)?;
        self.pos = end;
        Ok(s)
    }

    /// Reads an unsigned LEB128 value of at most 32 bits.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        let v = self.uleb(32)?;
        Ok(v as u32)
    }

    /// Reads an unsigned LEB128 value of at most 64 bits.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        self.uleb(64)
    }

    /// Reads a signed LEB128 value of at most 32 bits.
    pub fn i32(&mut self) -> Result<i32, DecodeError> {
        let v = self.sleb(32)?;
        Ok(v as i32)
    }

    /// Reads a signed LEB128 value of at most 64 bits.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        self.sleb(64)
    }

    /// Reads a little-endian IEEE-754 f32 bit pattern.
    pub fn f32_bits(&mut self) -> Result<u32, DecodeError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a little-endian IEEE-754 f64 bit pattern.
    pub fn f64_bits(&mut self) -> Result<u64, DecodeError> {
        let b = self.bytes(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Reads a length-prefixed UTF-8 name.
    pub fn name(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::InvalidUtf8)
    }

    fn uleb(&mut self, bits: u32) -> Result<u64, DecodeError> {
        let mut result: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= bits {
                return Err(DecodeError::IntegerTooLong);
            }
            let payload = (byte & 0x7f) as u64;
            // Reject set bits beyond the requested width.
            if shift + 7 > bits && payload >> (bits - shift) != 0 {
                return Err(DecodeError::IntegerTooLarge);
            }
            result |= payload << shift;
            if byte & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
        }
    }

    fn sleb(&mut self, bits: u32) -> Result<i64, DecodeError> {
        let mut result: i64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.byte()?;
            if shift >= bits {
                return Err(DecodeError::IntegerTooLong);
            }
            result |= ((byte & 0x7f) as i64) << shift;
            shift += 7;
            if byte & 0x80 == 0 {
                // Sign-extend from the last payload bit.
                if shift < 64 && byte & 0x40 != 0 {
                    result |= -1i64 << shift;
                }
                // Width check: the value must fit in `bits`.
                if bits < 64 {
                    let min = -(1i64 << (bits - 1));
                    let max = (1i64 << (bits - 1)) - 1;
                    if result < min || result > max {
                        return Err(DecodeError::IntegerTooLarge);
                    }
                }
                return Ok(result);
            }
        }
    }
}

/// Appends an unsigned LEB128 encoding of `v` to `out`.
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    write_u64(out, v as u64);
}

/// Appends an unsigned LEB128 encoding of `v` to `out`.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a signed LEB128 encoding of `v` to `out`.
pub fn write_i32(out: &mut Vec<u8>, v: i32) {
    write_i64(out, v as i64);
}

/// Appends a signed LEB128 encoding of `v` to `out`.
pub fn write_i64(out: &mut Vec<u8>, mut v: i64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        let done = (v == 0 && byte & 0x40 == 0) || (v == -1 && byte & 0x40 != 0);
        if done {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends a length-prefixed UTF-8 name to `out`.
pub fn write_name(out: &mut Vec<u8>, name: &str) {
    write_u32(out, name.len() as u32);
    out.extend_from_slice(name.as_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsigned_round_trip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            assert_eq!(Reader::new(&buf).u64().unwrap(), v);
        }
    }

    #[test]
    fn signed_round_trip_edges() {
        for v in [
            0i64,
            1,
            -1,
            63,
            64,
            -64,
            -65,
            i32::MIN as i64,
            i32::MAX as i64,
            i64::MIN,
            i64::MAX,
        ] {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            assert_eq!(Reader::new(&buf).i64().unwrap(), v, "value {v}");
        }
    }

    #[test]
    fn u32_rejects_overwide_encoding() {
        // 2^32 encoded as u64-style LEB must not decode as u32.
        let mut buf = Vec::new();
        write_u64(&mut buf, 1u64 << 32);
        assert!(Reader::new(&buf).u32().is_err());
    }

    #[test]
    fn eof_is_reported() {
        assert!(matches!(
            Reader::new(&[0x80]).u32(),
            Err(DecodeError::UnexpectedEof)
        ));
        assert!(matches!(
            Reader::new(&[]).byte(),
            Err(DecodeError::UnexpectedEof)
        ));
    }

    #[test]
    fn name_round_trip() {
        let mut buf = Vec::new();
        write_name(&mut buf, "SYS_mmap");
        assert_eq!(Reader::new(&buf).name().unwrap(), "SYS_mmap");
    }

    #[test]
    fn invalid_utf8_name_rejected() {
        let buf = [2u8, 0xff, 0xfe];
        assert!(matches!(
            Reader::new(&buf).name(),
            Err(DecodeError::InvalidUtf8)
        ));
    }

    #[cfg(feature = "proptest")]
    mod prop {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        #[test]
        fn prop_u64_round_trips(v in any::<u64>()) {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            prop_assert_eq!(Reader::new(&buf).u64().unwrap(), v);
        }

        #[test]
        fn prop_i64_round_trips(v in any::<i64>()) {
            let mut buf = Vec::new();
            write_i64(&mut buf, v);
            prop_assert_eq!(Reader::new(&buf).i64().unwrap(), v);
        }

        #[test]
        fn prop_i32_round_trips(v in any::<i32>()) {
            let mut buf = Vec::new();
            write_i32(&mut buf, v);
            prop_assert_eq!(Reader::new(&buf).i32().unwrap(), v);
        }

        #[test]
        fn prop_encoding_is_minimal_for_u32(v in any::<u32>()) {
            let mut buf = Vec::new();
            write_u32(&mut buf, v);
            // ceil(bits/7) bytes, minimum 1.
            let expected = ((32 - v.leading_zeros()).max(1) as usize).div_ceil(7);
            prop_assert_eq!(buf.len(), expected);
        }
        }
    }
}
