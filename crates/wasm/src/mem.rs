//! Linear memory: flat reservation for thread sharing, paged
//! copy-on-write backing for private (process) memories.
//!
//! Instance-per-thread execution (paper §3.1) shares one linear memory
//! between several instances running on different host threads. To make
//! that sound without locking every access, the **flat** backing allocates
//! its *maximum* size once at creation and never relocates; `memory.grow`
//! only moves the current-length watermark. Plain loads/stores are then
//! racy byte accesses into a stable allocation — the Wasm threads memory
//! model — while `grow` and the atomics use real atomic operations.
//!
//! The process model (`fork`/`exec`, paper §3.1) is dominated by memory
//! work when every spawn deep-copies the whole reservation. The **paged**
//! backing fixes that: the address space is a table of 64 KiB pages
//! allocated lazily on first write (creation and `grow` touch nothing;
//! untouched pages read from one shared zero page), and pages are
//! `Arc`-shared on [`Memory::fork_clone`] so fork is O(allocated pages)
//! and a page is copied only on the first post-fork write (COW).
//!
//! The access hot path stays flat-fast: the store publishes per-page data
//! pointers in two atomic arrays (`read_ptrs` always valid — zero page
//! when untouched; `write_ptrs` non-null only while the page is owned
//! exclusively), so a straight-line load/store costs the same bounds check
//! as the flat backing plus one indexed pointer load and one null compare.
//! Everything else (first touch, COW, release) is the locked slow path.
//!
//! Backing selection: shared (threaded) memories always use the flat
//! backing; private memories follow [`cow_default`] — paged unless
//! `WALI_NO_COW=1` selects the flat deep-copy baseline (A/B measurement,
//! like `WALI_NO_FUSE` / `WALI_NO_WAITQ`).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicI64, AtomicPtr, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::Trap;
use crate::PAGE_SIZE;

/// Default maximum (in pages) when a memory declares no maximum: 1024
/// pages = 64 MiB, a deliberate cap so reservation stays cheap.
pub const DEFAULT_MAX_PAGES: u32 = 1024;

/// log2(PAGE_SIZE): page index is `offset >> PAGE_SHIFT`.
const PAGE_SHIFT: usize = 16;
/// In-page offset mask.
const PAGE_MASK: usize = PAGE_SIZE - 1;

/// The process-wide default for the paged copy-on-write backing: on,
/// unless the `WALI_NO_COW` environment variable selects the flat
/// eager-zero / deep-copy-fork baseline.
pub fn cow_default() -> bool {
    std::env::var_os("WALI_NO_COW").is_none()
}

/// The shared all-zero page every untouched page reads from. Never
/// written: the write path goes through `write_ptrs`, which never points
/// here.
static ZERO_PAGE: [u8; PAGE_SIZE] = [0u8; PAGE_SIZE];

#[inline]
fn zero_ptr() -> *mut u8 {
    ZERO_PAGE.as_ptr() as *mut u8
}

/// Process-wide count of live [`Page`] allocations, across every paged
/// store (see [`global_resident_pages`]).
static GLOBAL_RESIDENT: AtomicI64 = AtomicI64::new(0);

/// Process-wide count of 64 KiB pages currently allocated by paged
/// (copy-on-write) memories. Fork-shared pages count once — this tracks
/// host allocations, not per-store residency. A run that materializes
/// pages and then drops every memory returns this counter to its
/// starting value; the fuzzer's liveness oracle asserts exactly that
/// (no leaked page at reap).
pub fn global_resident_pages() -> i64 {
    GLOBAL_RESIDENT.load(Ordering::Relaxed)
}

/// One 64 KiB page. Contents are mutated through raw pointers while the
/// page is exclusively owned by one store; `Arc`-shared pages are frozen
/// (copied before the next write).
struct Page(UnsafeCell<Box<[u8]>>);

// SAFETY: Access discipline is enforced by `PageStore`: a page is written
// only while `write_ptrs` publishes it (exclusive ownership), and shared
// pages are read-only until copied. Racy u8 reads/writes that remain are
// the Wasm shared-memory semantics (see the `Memory` impls below).
unsafe impl Send for Page {}
// SAFETY: See `Send`.
unsafe impl Sync for Page {}

impl Drop for Page {
    fn drop(&mut self) {
        GLOBAL_RESIDENT.fetch_sub(1, Ordering::Relaxed);
    }
}

impl Page {
    fn zeroed() -> Arc<Page> {
        GLOBAL_RESIDENT.fetch_add(1, Ordering::Relaxed);
        Arc::new(Page(UnsafeCell::new(
            vec![0u8; PAGE_SIZE].into_boxed_slice(),
        )))
    }

    #[inline]
    fn data(&self) -> *mut u8 {
        // SAFETY: Produces a raw pointer only; dereferences are governed
        // by the store's ownership discipline.
        unsafe { (*self.0.get()).as_mut_ptr() }
    }
}

/// The flat max-reserved backing (shared memories, `WALI_NO_COW`).
struct FlatStore {
    /// Backing buffer, sized to `max_pages` once and never reallocated.
    buf: UnsafeCell<Box<[u8]>>,
}

impl FlatStore {
    #[inline]
    fn ptr(&self) -> *mut u8 {
        // SAFETY: We only produce a raw pointer here; all dereferences are
        // bounds-checked by the callers.
        unsafe { (*self.buf.get()).as_mut_ptr() }
    }
}

/// The lazily-allocated paged backing with copy-on-write fork.
struct PageStore {
    /// Owner of record, one slot per reservable page; `None` reads as
    /// zero. Mutated only under this lock (first touch, COW, release,
    /// fork).
    pages: Mutex<Vec<Option<Arc<Page>>>>,
    /// Hot-path page-pointer cache for reads: always valid — the page's
    /// data when materialized, the shared zero page otherwise.
    read_ptrs: Box<[AtomicPtr<u8>]>,
    /// Hot-path page-pointer cache for writes: the page's data while this
    /// store owns it exclusively, null otherwise (untouched or
    /// COW-shared → take the slow path).
    write_ptrs: Box<[AtomicPtr<u8>]>,
    /// Currently materialized pages.
    resident: AtomicU32,
    /// Peak materialized pages over the store's lifetime.
    peak_resident: AtomicU32,
}

impl PageStore {
    fn new(max_pages: u32) -> PageStore {
        let n = max_pages as usize;
        PageStore {
            pages: Mutex::new(vec![None; n]),
            read_ptrs: (0..n).map(|_| AtomicPtr::new(zero_ptr())).collect(),
            write_ptrs: (0..n)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
            resident: AtomicU32::new(0),
            peak_resident: AtomicU32::new(0),
        }
    }

    /// Slow path: materializes page `idx` for writing — first touch
    /// allocates a zero page, a COW-shared page is copied into a private
    /// one — and republishes both pointer caches.
    fn page_for_write(&self, idx: usize) -> *mut u8 {
        let mut pages = self.pages.lock().expect("page table");
        let slot = &mut pages[idx];
        let ptr = match slot {
            Some(page) if Arc::strong_count(page) == 1 => page.data(),
            Some(page) => {
                // COW: the page is shared with a forked sibling; copy it.
                let fresh = Page::zeroed();
                // SAFETY: Both allocations are PAGE_SIZE; the shared
                // source is frozen (no store writes a shared page).
                unsafe {
                    std::ptr::copy_nonoverlapping(page.data(), fresh.data(), PAGE_SIZE);
                }
                let ptr = fresh.data();
                *slot = Some(fresh);
                ptr
            }
            None => {
                let fresh = Page::zeroed();
                let ptr = fresh.data();
                *slot = Some(fresh);
                let now = self.resident.fetch_add(1, Ordering::Relaxed) + 1;
                self.peak_resident.fetch_max(now, Ordering::Relaxed);
                ptr
            }
        };
        self.read_ptrs[idx].store(ptr, Ordering::Release);
        self.write_ptrs[idx].store(ptr, Ordering::Release);
        ptr
    }

    fn is_resident(&self, idx: usize) -> bool {
        self.pages.lock().expect("page table")[idx].is_some()
    }

    /// Hot-path write resolution: the cached exclusive pointer, or the
    /// locked slow path (first touch / COW copy).
    #[inline]
    fn write_ptr(&self, idx: usize) -> *mut u8 {
        let ptr = self.write_ptrs[idx].load(Ordering::Acquire);
        if ptr.is_null() {
            self.page_for_write(idx)
        } else {
            ptr
        }
    }

    /// Returns page `idx` to the store: subsequent reads see zeros and the
    /// page's allocation is dropped (or its `Arc` reference released).
    fn release_page(&self, idx: usize) {
        let mut pages = self.pages.lock().expect("page table");
        if pages[idx].take().is_some() {
            self.write_ptrs[idx].store(std::ptr::null_mut(), Ordering::Release);
            self.read_ptrs[idx].store(zero_ptr(), Ordering::Release);
            self.resident.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

enum Backing {
    Flat(FlatStore),
    Paged(PageStore),
}

/// A Wasm linear memory.
pub struct Memory {
    backing: Backing,
    /// Current size in pages; grows monotonically up to `max_pages`.
    cur_pages: AtomicU32,
    /// Peak observed size in pages (the grow watermark).
    peak_pages: AtomicU32,
    max_pages: u32,
}

// SAFETY: All access to the backing is bounds-checked against
// `cur_pages * 64Ki`. The flat buffer is allocated at maximum size up
// front and never moves; paged mutations of the page table go through a
// Mutex and the hot-path pointer caches are atomics, so concurrent
// accesses never read outside a live allocation. Plain (non-atomic)
// concurrent byte accesses may race, which is exactly the semantics Wasm
// shared memories give to unsynchronized accesses (the value read is
// *some* byte-level interleaving, never UB at the Wasm level); the
// host-level data race is confined to `u8` reads/writes via raw pointers,
// never references with aliasing guarantees. Fork-related paged memories
// (which share `Arc` pages) are driven from one host thread by the
// embedding — the WALI runner is single-threaded — so a page is never
// reclaimed by one store while a sibling store's reader holds its
// pointer; truly thread-shared memories use the flat backing.
unsafe impl Sync for Memory {}
// SAFETY: See `Sync` above; ownership transfer adds no additional hazard.
unsafe impl Send for Memory {}

impl Memory {
    /// Creates a memory with `min` pages, reserving `max` (or
    /// [`DEFAULT_MAX_PAGES`]) up front. The backing follows
    /// [`cow_default`]: paged unless `WALI_NO_COW` selects flat.
    pub fn new(min: u32, max: Option<u32>) -> Memory {
        Self::with_backing(min, max, cow_default())
    }

    /// Creates a flat (eagerly reserved) memory — required for memories
    /// shared between host threads.
    pub fn new_flat(min: u32, max: Option<u32>) -> Memory {
        Self::with_backing(min, max, false)
    }

    /// Creates a paged (lazy, copy-on-write-forkable) memory.
    pub fn new_paged(min: u32, max: Option<u32>) -> Memory {
        Self::with_backing(min, max, true)
    }

    /// Creates a memory with an explicit backing choice.
    pub fn with_backing(min: u32, max: Option<u32>, paged: bool) -> Memory {
        let max_pages = max.unwrap_or(DEFAULT_MAX_PAGES).max(min);
        let backing = if paged {
            Backing::Paged(PageStore::new(max_pages))
        } else {
            let bytes = max_pages as usize * PAGE_SIZE;
            Backing::Flat(FlatStore {
                buf: UnsafeCell::new(vec![0u8; bytes].into_boxed_slice()),
            })
        };
        Memory {
            backing,
            cur_pages: AtomicU32::new(min),
            peak_pages: AtomicU32::new(min),
            max_pages,
        }
    }

    /// Whether this memory uses the paged copy-on-write backing.
    pub fn is_paged(&self) -> bool {
        matches!(self.backing, Backing::Paged(_))
    }

    /// Current size in pages.
    #[inline]
    pub fn pages(&self) -> u32 {
        self.cur_pages.load(Ordering::Acquire)
    }

    /// Peak size in pages over the memory's lifetime (the grow
    /// watermark — address-space footprint, not residency).
    pub fn peak_pages(&self) -> u32 {
        self.peak_pages.load(Ordering::Relaxed)
    }

    /// Pages currently backed by a host allocation. The flat backing
    /// materializes its whole reservation at creation; the paged backing
    /// counts only touched (written) pages.
    pub fn resident_pages(&self) -> u32 {
        match &self.backing {
            Backing::Flat(_) => self.max_pages,
            Backing::Paged(p) => p.resident.load(Ordering::Relaxed),
        }
    }

    /// Peak resident pages over the memory's lifetime.
    pub fn peak_resident_pages(&self) -> u32 {
        match &self.backing {
            Backing::Flat(_) => self.max_pages,
            Backing::Paged(p) => p.peak_resident.load(Ordering::Relaxed),
        }
    }

    /// Whether the 64 KiB store page containing `addr` is backed by a
    /// host allocation (the flat backing materializes everything).
    pub fn addr_is_resident(&self, addr: u64) -> bool {
        if addr >= self.size() as u64 {
            return false;
        }
        match &self.backing {
            Backing::Flat(_) => true,
            Backing::Paged(p) => p.is_resident(addr as usize >> PAGE_SHIFT),
        }
    }

    /// Declared maximum in pages.
    pub fn max_pages(&self) -> u32 {
        self.max_pages
    }

    /// Current size in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.pages() as usize * PAGE_SIZE
    }

    /// Grows by `delta` pages; returns the previous page count or -1,
    /// exactly like `memory.grow`. Neither backing zeroes anything here:
    /// flat pre-zeroed the reservation, paged pages materialize on first
    /// write.
    pub fn grow(&self, delta: u32) -> i32 {
        loop {
            let cur = self.cur_pages.load(Ordering::Acquire);
            let next = match cur.checked_add(delta) {
                Some(n) if n <= self.max_pages => n,
                _ => return -1,
            };
            if self
                .cur_pages
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.peak_pages.fetch_max(next, Ordering::Relaxed);
                return cur as i32;
            }
        }
    }

    /// Deep-copies the memory (same limits, same bytes, independent
    /// backing). Kept for the `WALI_NO_COW` baseline and for tests;
    /// process forks should use [`Memory::fork_clone`].
    pub fn deep_clone(&self) -> Memory {
        let new = Memory::with_backing(self.pages(), Some(self.max_pages), self.is_paged());
        match (&self.backing, &new.backing) {
            (Backing::Flat(a), Backing::Flat(b)) => {
                let len = self.size();
                // SAFETY: Both buffers are at least `len` bytes (same page
                // count, maxima allocated up front) and do not overlap.
                unsafe {
                    std::ptr::copy_nonoverlapping(a.ptr(), b.ptr(), len);
                }
            }
            (Backing::Paged(a), Backing::Paged(b)) => {
                let src = a.pages.lock().expect("page table");
                let mut dst = b.pages.lock().expect("page table");
                let mut resident = 0;
                for (i, slot) in src.iter().enumerate() {
                    if let Some(page) = slot {
                        let fresh = Page::zeroed();
                        // SAFETY: Both allocations are PAGE_SIZE.
                        unsafe {
                            std::ptr::copy_nonoverlapping(page.data(), fresh.data(), PAGE_SIZE);
                        }
                        b.read_ptrs[i].store(fresh.data(), Ordering::Release);
                        b.write_ptrs[i].store(fresh.data(), Ordering::Release);
                        dst[i] = Some(fresh);
                        resident += 1;
                    }
                }
                b.resident.store(resident, Ordering::Relaxed);
                b.peak_resident.store(resident, Ordering::Relaxed);
            }
            _ => unreachable!("deep_clone preserves the backing"),
        }
        new.peak_pages.store(self.peak_pages(), Ordering::Relaxed);
        new
    }

    /// Fork-style duplicate. Flat backing: a deep copy (the `WALI_NO_COW`
    /// baseline). Paged backing: an O(allocated pages) copy-on-write
    /// snapshot — parent and child share every materialized page through
    /// its `Arc` and both lose in-place write permission; whoever writes a
    /// shared page first copies it.
    pub fn fork_clone(&self) -> Memory {
        let Backing::Paged(parent) = &self.backing else {
            return self.deep_clone();
        };
        let child = Memory::with_backing(self.pages(), Some(self.max_pages), true);
        let Backing::Paged(cs) = &child.backing else {
            unreachable!()
        };
        {
            let src = parent.pages.lock().expect("page table");
            let mut dst = cs.pages.lock().expect("page table");
            let mut resident = 0;
            for (i, slot) in src.iter().enumerate() {
                if let Some(page) = slot {
                    cs.read_ptrs[i].store(page.data(), Ordering::Release);
                    dst[i] = Some(Arc::clone(page));
                    resident += 1;
                    // The parent's page is now shared: revoke its in-place
                    // write permission so its next write takes the COW
                    // slow path.
                    parent.write_ptrs[i].store(std::ptr::null_mut(), Ordering::Release);
                }
            }
            cs.resident.store(resident, Ordering::Relaxed);
            cs.peak_resident.store(resident, Ordering::Relaxed);
        }
        child.peak_pages.store(self.peak_pages(), Ordering::Relaxed);
        child
    }

    /// Checks that `[addr, addr+len)` is in bounds.
    #[inline]
    pub fn check(&self, addr: u64, len: u64) -> Result<usize, Trap> {
        let end = addr.checked_add(len).ok_or(Trap::MemoryOutOfBounds)?;
        if end > self.size() as u64 {
            return Err(Trap::MemoryOutOfBounds);
        }
        Ok(addr as usize)
    }

    /// Copies out of the backing (bounds already checked), chunking at
    /// page boundaries for the paged store.
    fn copy_out(&self, mut off: usize, out: &mut [u8]) {
        match &self.backing {
            Backing::Flat(f) => {
                // SAFETY: Caller bounds-checked `off + out.len() <= size`.
                unsafe {
                    std::ptr::copy_nonoverlapping(f.ptr().add(off), out.as_mut_ptr(), out.len());
                }
            }
            Backing::Paged(p) => {
                let mut done = 0;
                while done < out.len() {
                    let pg = off >> PAGE_SHIFT;
                    let po = off & PAGE_MASK;
                    let n = (PAGE_SIZE - po).min(out.len() - done);
                    let src = p.read_ptrs[pg].load(Ordering::Acquire);
                    // SAFETY: `src` is a live page (or the zero page) and
                    // `po + n <= PAGE_SIZE`.
                    unsafe {
                        std::ptr::copy_nonoverlapping(src.add(po), out.as_mut_ptr().add(done), n);
                    }
                    off += n;
                    done += n;
                }
            }
        }
    }

    /// Copies into the backing (bounds already checked), materializing
    /// pages as needed.
    fn copy_in(&self, mut off: usize, src: &[u8]) {
        match &self.backing {
            Backing::Flat(f) => {
                // SAFETY: Caller bounds-checked `off + src.len() <= size`.
                unsafe {
                    std::ptr::copy_nonoverlapping(src.as_ptr(), f.ptr().add(off), src.len());
                }
            }
            Backing::Paged(p) => {
                let mut done = 0;
                while done < src.len() {
                    let pg = off >> PAGE_SHIFT;
                    let po = off & PAGE_MASK;
                    let n = (PAGE_SIZE - po).min(src.len() - done);
                    let chunk = &src[done..done + n];
                    // Writing zeros to a page that isn't materialized is a
                    // no-op: keep it lazy (this is what lets bulk copies
                    // of untouched regions — memory.copy, syscall buffer
                    // write-backs — avoid materializing the destination).
                    let skip = p.write_ptrs[pg].load(Ordering::Acquire).is_null()
                        && chunk.iter().all(|b| *b == 0)
                        && !p.is_resident(pg);
                    if !skip {
                        let dst = p.write_ptr(pg);
                        // SAFETY: `dst` is this store's exclusively-owned
                        // page; `po + n <= PAGE_SIZE`.
                        unsafe {
                            std::ptr::copy_nonoverlapping(chunk.as_ptr(), dst.add(po), n);
                        }
                    }
                    off += n;
                    done += n;
                }
            }
        }
    }

    /// Reads `N` bytes at `addr`.
    #[inline]
    pub fn load<const N: usize>(&self, addr: u64) -> Result<[u8; N], Trap> {
        let off = self.check(addr, N as u64)?;
        let mut out = [0u8; N];
        match &self.backing {
            Backing::Flat(f) => {
                // SAFETY: `check` guarantees `off + N <= size <= allocation`.
                unsafe {
                    std::ptr::copy_nonoverlapping(f.ptr().add(off), out.as_mut_ptr(), N);
                }
            }
            Backing::Paged(p) => {
                let po = off & PAGE_MASK;
                if po + N <= PAGE_SIZE {
                    let src = p.read_ptrs[off >> PAGE_SHIFT].load(Ordering::Acquire);
                    // SAFETY: Bounds-checked; `src` is a live page (or the
                    // zero page) and the access stays inside it.
                    unsafe {
                        std::ptr::copy_nonoverlapping(src.add(po), out.as_mut_ptr(), N);
                    }
                } else {
                    self.copy_out(off, &mut out);
                }
            }
        }
        Ok(out)
    }

    /// Writes `N` bytes at `addr`.
    #[inline]
    pub fn store<const N: usize>(&self, addr: u64, val: [u8; N]) -> Result<(), Trap> {
        let off = self.check(addr, N as u64)?;
        match &self.backing {
            Backing::Flat(f) => {
                // SAFETY: `check` guarantees `off + N <= size <= allocation`.
                unsafe {
                    std::ptr::copy_nonoverlapping(val.as_ptr(), f.ptr().add(off), N);
                }
            }
            Backing::Paged(p) => {
                let po = off & PAGE_MASK;
                if po + N <= PAGE_SIZE {
                    let dst = p.write_ptr(off >> PAGE_SHIFT);
                    // SAFETY: `dst` is this store's exclusively-owned page
                    // and the access stays inside it.
                    unsafe {
                        std::ptr::copy_nonoverlapping(val.as_ptr(), dst.add(po), N);
                    }
                } else {
                    self.copy_in(off, &val);
                }
            }
        }
        Ok(())
    }

    /// Copies a byte range out of memory.
    pub fn read(&self, addr: u64, len: usize) -> Result<Vec<u8>, Trap> {
        let off = self.check(addr, len as u64)?;
        let mut out = vec![0u8; len];
        self.copy_out(off, &mut out);
        Ok(out)
    }

    /// Copies `bytes` into memory at `addr`.
    pub fn write(&self, addr: u64, bytes: &[u8]) -> Result<(), Trap> {
        let off = self.check(addr, bytes.len() as u64)?;
        self.copy_in(off, bytes);
        Ok(())
    }

    /// Runs `f` over the byte range as a shared slice (zero-copy reads).
    ///
    /// This is the zero-copy fast path WALI uses for I/O syscalls (§3.2).
    /// On the paged backing a range inside one page is zero-copy; a range
    /// crossing pages is gathered into a scratch buffer first (WALI's
    /// syscall helpers chunk at page boundaries to stay on the fast path).
    pub fn with_slice<R>(
        &self,
        addr: u64,
        len: usize,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, Trap> {
        let off = self.check(addr, len as u64)?;
        match &self.backing {
            Backing::Flat(fl) => {
                // SAFETY: Bounds checked; concurrent writers may race but
                // byte reads remain valid (shared-memory semantics).
                let slice = unsafe { core::slice::from_raw_parts(fl.ptr().add(off), len) };
                Ok(f(slice))
            }
            Backing::Paged(p) => {
                let po = off & PAGE_MASK;
                if len > 0 && po + len <= PAGE_SIZE {
                    let src = p.read_ptrs[off >> PAGE_SHIFT].load(Ordering::Acquire);
                    // SAFETY: Bounds checked; in-page range of a live page.
                    let slice = unsafe { core::slice::from_raw_parts(src.add(po), len) };
                    Ok(f(slice))
                } else {
                    let mut buf = vec![0u8; len];
                    self.copy_out(off, &mut buf);
                    Ok(f(&buf))
                }
            }
        }
    }

    /// Runs `f` over the byte range as a mutable slice (zero-copy writes).
    pub fn with_slice_mut<R>(
        &self,
        addr: u64,
        len: usize,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, Trap> {
        let off = self.check(addr, len as u64)?;
        match &self.backing {
            Backing::Flat(fl) => {
                // SAFETY: Bounds checked; exclusivity is not required
                // under the shared-memory model (racy writes are program
                // bugs, not UB at the byte level).
                let slice = unsafe { core::slice::from_raw_parts_mut(fl.ptr().add(off), len) };
                Ok(f(slice))
            }
            Backing::Paged(p) => {
                let po = off & PAGE_MASK;
                if po + len <= PAGE_SIZE && len > 0 {
                    let dst = p.write_ptr(off >> PAGE_SHIFT);
                    // SAFETY: Bounds checked; in-page range of this
                    // store's exclusively-owned page.
                    let slice = unsafe { core::slice::from_raw_parts_mut(dst.add(po), len) };
                    Ok(f(slice))
                } else {
                    let mut buf = vec![0u8; len];
                    self.copy_out(off, &mut buf);
                    let r = f(&mut buf);
                    self.copy_in(off, &buf);
                    Ok(r)
                }
            }
        }
    }

    /// `memory.fill`. On the paged backing, zero-filling a whole page
    /// releases it back to the store (madvise(DONTNEED)-style) instead of
    /// materializing it.
    pub fn fill(&self, addr: u64, val: u8, len: u64) -> Result<(), Trap> {
        let off = self.check(addr, len)?;
        match &self.backing {
            Backing::Flat(f) => {
                // SAFETY: Bounds checked above.
                unsafe {
                    std::ptr::write_bytes(f.ptr().add(off), val, len as usize);
                }
            }
            Backing::Paged(p) => {
                let mut off = off;
                let mut left = len as usize;
                while left > 0 {
                    let pg = off >> PAGE_SHIFT;
                    let po = off & PAGE_MASK;
                    let n = (PAGE_SIZE - po).min(left);
                    if val == 0 && po == 0 && n == PAGE_SIZE {
                        p.release_page(pg);
                    } else if val == 0
                        && p.write_ptrs[pg].load(Ordering::Acquire).is_null()
                        && !p.is_resident(pg)
                    {
                        // Untouched page already reads as zero.
                    } else {
                        let dst = p.write_ptr(pg);
                        // SAFETY: In-page range of an exclusively-owned page.
                        unsafe {
                            std::ptr::write_bytes(dst.add(po), val, n);
                        }
                    }
                    off += n;
                    left -= n;
                }
            }
        }
        Ok(())
    }

    /// Releases `[addr, addr+len)`: fully covered pages go back to the
    /// store (reads see zeros, allocations are dropped / `Arc` references
    /// released), partial edge pages are zero-filled. This is the
    /// `munmap` / `madvise(MADV_DONTNEED)` path; on the flat backing it
    /// degrades to a zero fill.
    pub fn release(&self, addr: u64, len: u64) -> Result<(), Trap> {
        self.fill(addr, 0, len)
    }

    /// `memory.copy` (overlap-safe).
    pub fn copy_within(&self, dst: u64, src: u64, len: u64) -> Result<(), Trap> {
        let d = self.check(dst, len)?;
        let s = self.check(src, len)?;
        match &self.backing {
            Backing::Flat(f) => {
                // SAFETY: Both ranges bounds-checked; `copy` handles overlap.
                unsafe {
                    std::ptr::copy(f.ptr().add(s), f.ptr().add(d), len as usize);
                }
            }
            Backing::Paged(_) => {
                // Stage through a scratch buffer: memmove semantics across
                // page boundaries without aliasing pitfalls.
                let mut tmp = vec![0u8; len as usize];
                self.copy_out(s, &mut tmp);
                self.copy_in(d, &tmp);
            }
        }
        Ok(())
    }

    /// Reads a NUL-terminated string starting at `addr` (bounded scan).
    pub fn read_cstr(&self, addr: u64) -> Result<Vec<u8>, Trap> {
        let mut out = Vec::new();
        let mut a = addr;
        loop {
            let [b] = self.load::<1>(a)?;
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            a += 1;
            if out.len() > 1 << 20 {
                return Err(Trap::MemoryOutOfBounds);
            }
        }
    }

    /// Resolves an aligned in-page offset to a pointer valid for atomic
    /// *writes* (materializing/COW-copying the page on the paged backing).
    fn atomic_ptr(&self, off: usize) -> *mut u8 {
        match &self.backing {
            Backing::Flat(f) => {
                // SAFETY: Caller bounds-checked.
                unsafe { f.ptr().add(off) }
            }
            Backing::Paged(p) => {
                // SAFETY: Aligned atomics never cross a 64 KiB page.
                unsafe { p.write_ptr(off >> PAGE_SHIFT).add(off & PAGE_MASK) }
            }
        }
    }

    /// Resolves an aligned in-page offset for an atomic *read*. Returns
    /// the writable pointer when this store owns the page; `None` means
    /// the page is frozen (untouched or COW-shared) — no store writes a
    /// frozen page in place, so the caller may read it plainly through
    /// `read_ptrs` without materializing anything. Keeping loads off the
    /// write path preserves the invariant that reads never allocate.
    fn atomic_read_ptr(&self, off: usize) -> Option<*mut u8> {
        match &self.backing {
            Backing::Flat(f) => {
                // SAFETY: Caller bounds-checked.
                Some(unsafe { f.ptr().add(off) })
            }
            Backing::Paged(p) => {
                let ptr = p.write_ptrs[off >> PAGE_SHIFT].load(Ordering::Acquire);
                if ptr.is_null() {
                    None
                } else {
                    // SAFETY: Aligned atomics never cross a 64 KiB page.
                    Some(unsafe { ptr.add(off & PAGE_MASK) })
                }
            }
        }
    }

    /// Plain read of `N` bytes from a frozen page (paged backing only).
    fn frozen_read<const N: usize>(&self, off: usize) -> [u8; N] {
        let mut out = [0u8; N];
        self.copy_out(off, &mut out);
        out
    }

    /// 32-bit atomic load with SeqCst ordering.
    pub fn atomic_load32(&self, addr: u64) -> Result<u32, Trap> {
        let off = self.check_aligned(addr, 4)?;
        match self.atomic_read_ptr(off) {
            // SAFETY: In-bounds, 4-aligned, and the allocation outlives
            // the reference; AtomicU32 has the same layout as u32.
            Some(ptr) => Ok(unsafe { &*(ptr as *const AtomicU32) }.load(Ordering::SeqCst)),
            // Frozen page: race-free plain read (native byte order, to
            // match what an atomic load of the same bytes would return).
            None => Ok(u32::from_ne_bytes(self.frozen_read::<4>(off))),
        }
    }

    /// 32-bit atomic store with SeqCst ordering.
    pub fn atomic_store32(&self, addr: u64, val: u32) -> Result<(), Trap> {
        let off = self.check_aligned(addr, 4)?;
        // SAFETY: See `atomic_load32`.
        let a = unsafe { &*(self.atomic_ptr(off) as *const AtomicU32) };
        a.store(val, Ordering::SeqCst);
        Ok(())
    }

    /// 64-bit atomic load with SeqCst ordering.
    pub fn atomic_load64(&self, addr: u64) -> Result<u64, Trap> {
        let off = self.check_aligned(addr, 8)?;
        match self.atomic_read_ptr(off) {
            // SAFETY: See `atomic_load32`, with 8-byte alignment.
            Some(ptr) => Ok(unsafe { &*(ptr as *const AtomicU64) }.load(Ordering::SeqCst)),
            None => Ok(u64::from_ne_bytes(self.frozen_read::<8>(off))),
        }
    }

    /// 64-bit atomic store with SeqCst ordering.
    pub fn atomic_store64(&self, addr: u64, val: u64) -> Result<(), Trap> {
        let off = self.check_aligned(addr, 8)?;
        // SAFETY: See `atomic_load32`, with 8-byte alignment.
        let a = unsafe { &*(self.atomic_ptr(off) as *const AtomicU64) };
        a.store(val, Ordering::SeqCst);
        Ok(())
    }

    /// 32-bit atomic read-modify-write; returns the old value.
    pub fn atomic_rmw32(&self, addr: u64, op: crate::instr::RmwOp, val: u32) -> Result<u32, Trap> {
        use crate::instr::RmwOp;
        let off = self.check_aligned(addr, 4)?;
        // SAFETY: See `atomic_load32`.
        let a = unsafe { &*(self.atomic_ptr(off) as *const AtomicU32) };
        let old = match op {
            RmwOp::Add => a.fetch_add(val, Ordering::SeqCst),
            RmwOp::Sub => a.fetch_sub(val, Ordering::SeqCst),
            RmwOp::And => a.fetch_and(val, Ordering::SeqCst),
            RmwOp::Or => a.fetch_or(val, Ordering::SeqCst),
            RmwOp::Xor => a.fetch_xor(val, Ordering::SeqCst),
            RmwOp::Xchg => a.swap(val, Ordering::SeqCst),
        };
        Ok(old)
    }

    /// 32-bit atomic compare-exchange; returns the old value.
    pub fn atomic_cmpxchg32(&self, addr: u64, expected: u32, new: u32) -> Result<u32, Trap> {
        let off = self.check_aligned(addr, 4)?;
        // SAFETY: See `atomic_load32`.
        let a = unsafe { &*(self.atomic_ptr(off) as *const AtomicU32) };
        Ok(
            match a.compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(v) => v,
                Err(v) => v,
            },
        )
    }

    fn check_aligned(&self, addr: u64, align: u64) -> Result<usize, Trap> {
        if !addr.is_multiple_of(align) {
            return Err(Trap::MemoryOutOfBounds);
        }
        self.check(addr, align)
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("pages", &self.pages())
            .field("max_pages", &self.max_pages)
            .field("paged", &self.is_paged())
            .field("resident_pages", &self.resident_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every behavioral test runs against both backings.
    fn both(f: impl Fn(fn(u32, Option<u32>) -> Memory)) {
        f(Memory::new_flat);
        f(Memory::new_paged);
    }

    #[test]
    fn grow_and_bounds() {
        both(|mk| {
            let m = mk(1, Some(3));
            assert_eq!(m.pages(), 1);
            assert!(m.store::<4>(PAGE_SIZE as u64 - 4, [1, 2, 3, 4]).is_ok());
            assert_eq!(
                m.store::<4>(PAGE_SIZE as u64 - 3, [0; 4]),
                Err(Trap::MemoryOutOfBounds)
            );
            assert_eq!(m.grow(1), 1);
            assert!(m.store::<4>(PAGE_SIZE as u64 - 3, [0; 4]).is_ok());
            assert_eq!(m.grow(2), -1);
            assert_eq!(m.grow(1), 2);
            assert_eq!(m.grow(1), -1);
            assert_eq!(m.peak_pages(), 3);
        });
    }

    #[test]
    fn load_store_round_trip() {
        both(|mk| {
            let m = mk(1, None);
            m.store::<8>(16, 0xdead_beef_cafe_f00du64.to_le_bytes())
                .unwrap();
            assert_eq!(
                u64::from_le_bytes(m.load::<8>(16).unwrap()),
                0xdead_beef_cafe_f00d
            );
        });
    }

    #[test]
    fn global_resident_tracks_page_lifecycle() {
        // Other tests allocate pages concurrently, so assert deltas over
        // a window this test controls rather than absolute values: while
        // our pages are alive the counter sits at least `touched` above
        // the low-water mark we observe after dropping them.
        let before = global_resident_pages();
        let m = Memory::new_paged(4, Some(4));
        for i in 0..4u64 {
            m.store::<4>(i * PAGE_SIZE as u64, [1; 4]).unwrap();
        }
        let alive = global_resident_pages();
        assert!(alive >= before + 4, "4 touched pages counted globally");
        let fork = m.fork_clone();
        // COW shares Arc'd pages: a fork materializes nothing new.
        fork.store::<4>(0, [2; 4]).unwrap(); // one COW copy
        drop(fork);
        drop(m);
        let after = global_resident_pages();
        assert!(after <= alive - 4, "dropped memories return their pages");
    }

    #[test]
    fn unaligned_access_across_a_page_boundary() {
        let m = Memory::new_paged(2, Some(2));
        let at = PAGE_SIZE as u64 - 3;
        m.store::<8>(at, 0x0123_4567_89ab_cdefu64.to_le_bytes())
            .unwrap();
        assert_eq!(
            u64::from_le_bytes(m.load::<8>(at).unwrap()),
            0x0123_4567_89ab_cdef
        );
        assert_eq!(m.resident_pages(), 2, "both straddled pages materialize");
    }

    #[test]
    fn cstr_and_bulk_ops() {
        both(|mk| {
            let m = mk(1, None);
            m.write(100, b"hello\0world").unwrap();
            assert_eq!(m.read_cstr(100).unwrap(), b"hello");
            m.copy_within(200, 100, 11).unwrap();
            assert_eq!(m.read(200, 5).unwrap(), b"hello");
            m.fill(100, b'x', 5).unwrap();
            assert_eq!(m.read_cstr(100).unwrap(), b"xxxxx");
        });
    }

    #[test]
    fn overlapping_copy_is_memmove() {
        both(|mk| {
            let m = mk(1, None);
            m.write(0, b"abcdef").unwrap();
            m.copy_within(2, 0, 4).unwrap();
            assert_eq!(m.read(0, 6).unwrap(), b"ababcd");
        });
    }

    #[test]
    fn atomics_work_and_require_alignment() {
        both(|mk| {
            let m = mk(1, None);
            m.atomic_store32(8, 5).unwrap();
            assert_eq!(m.atomic_rmw32(8, crate::instr::RmwOp::Add, 3).unwrap(), 5);
            assert_eq!(m.atomic_load32(8).unwrap(), 8);
            assert_eq!(m.atomic_cmpxchg32(8, 8, 42).unwrap(), 8);
            assert_eq!(m.atomic_load32(8).unwrap(), 42);
            assert_eq!(m.atomic_load32(6), Err(Trap::MemoryOutOfBounds));
        });
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        both(|mk| {
            let m = Arc::new(mk(1, None));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let m = Arc::clone(&m);
                handles.push(std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.atomic_rmw32(0, crate::instr::RmwOp::Add, 1).unwrap();
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(m.atomic_load32(0).unwrap(), 4000);
        });
    }

    #[test]
    fn paged_creation_and_grow_allocate_nothing() {
        let m = Memory::new_paged(16, Some(1024));
        assert_eq!(m.resident_pages(), 0);
        assert_eq!(m.grow(512), 16);
        assert_eq!(m.resident_pages(), 0, "grow moves the watermark only");
        assert_eq!(m.load::<8>(40 * PAGE_SIZE as u64).unwrap(), [0u8; 8]);
        assert_eq!(m.resident_pages(), 0, "reads never materialize");
        m.store::<1>(40 * PAGE_SIZE as u64, [7]).unwrap();
        assert_eq!(m.resident_pages(), 1);
        assert_eq!(m.peak_resident_pages(), 1);
    }

    #[test]
    fn fork_clone_is_cow() {
        let parent = Memory::new_paged(8, Some(8));
        parent.write(0, b"parent page 0").unwrap();
        parent
            .write(3 * PAGE_SIZE as u64, b"parent page 3")
            .unwrap();
        assert_eq!(parent.resident_pages(), 2);

        let child = parent.fork_clone();
        assert_eq!(child.resident_pages(), 2, "shared, not copied");
        assert_eq!(child.read(0, 13).unwrap(), b"parent page 0");

        // Child write copies only the touched page; the parent is intact.
        child.write(0, b"child  page 0").unwrap();
        assert_eq!(parent.read(0, 13).unwrap(), b"parent page 0");
        assert_eq!(child.read(0, 13).unwrap(), b"child  page 0");

        // Parent write after fork also copies (both lost in-place writes).
        parent
            .write(3 * PAGE_SIZE as u64, b"parent redone")
            .unwrap();
        assert_eq!(
            child.read(3 * PAGE_SIZE as u64, 13).unwrap(),
            b"parent page 3"
        );
        // Untouched-by-either pages stay zero everywhere.
        assert_eq!(parent.load::<4>(5 * PAGE_SIZE as u64).unwrap(), [0; 4]);
        assert_eq!(child.load::<4>(5 * PAGE_SIZE as u64).unwrap(), [0; 4]);
    }

    #[test]
    fn release_returns_pages_and_zeroes_edges() {
        let m = Memory::new_paged(4, Some(4));
        m.fill(0, 0xaa, 4 * PAGE_SIZE as u64).unwrap();
        assert_eq!(m.resident_pages(), 4);
        // Release page 1 fully plus the first half of page 2.
        m.release(PAGE_SIZE as u64, PAGE_SIZE as u64 + PAGE_SIZE as u64 / 2)
            .unwrap();
        assert_eq!(m.resident_pages(), 3, "page 1 returned to the store");
        assert_eq!(m.load::<1>(PAGE_SIZE as u64).unwrap(), [0]);
        assert_eq!(m.load::<1>(2 * PAGE_SIZE as u64).unwrap(), [0]);
        assert_eq!(
            m.load::<1>(2 * PAGE_SIZE as u64 + PAGE_SIZE as u64 / 2)
                .unwrap(),
            [0xaa],
            "tail of the partial page survives"
        );
        assert_eq!(m.peak_resident_pages(), 4);
    }

    #[test]
    fn deep_clone_preserves_backing_and_content() {
        both(|mk| {
            let m = mk(2, Some(4));
            m.write(10, b"abc").unwrap();
            let c = m.deep_clone();
            assert_eq!(c.is_paged(), m.is_paged());
            assert_eq!(c.read(10, 3).unwrap(), b"abc");
            c.write(10, b"xyz").unwrap();
            assert_eq!(m.read(10, 3).unwrap(), b"abc", "independent copies");
        });
    }

    #[test]
    fn backing_default_follows_cow_default() {
        let m = Memory::new(1, Some(1));
        assert_eq!(m.is_paged(), cow_default());
    }

    #[test]
    fn atomic_loads_never_materialize_or_copy() {
        // Pure read of an untouched page: no allocation.
        let m = Memory::new_paged(2, Some(2));
        assert_eq!(m.atomic_load32(64).unwrap(), 0);
        assert_eq!(m.atomic_load64(128).unwrap(), 0);
        assert_eq!(m.resident_pages(), 0, "atomic loads are reads");
        // Read of a fork-shared (frozen) page: no COW copy, value intact.
        m.atomic_store32(64, 77).unwrap();
        let child = m.fork_clone();
        assert_eq!(child.atomic_load32(64).unwrap(), 77);
        assert_eq!(m.atomic_load32(64).unwrap(), 77);
        assert_eq!(child.resident_pages(), 1);
        // An atomic *store* on the shared page does COW as usual.
        child.atomic_store32(64, 99).unwrap();
        assert_eq!(m.atomic_load32(64).unwrap(), 77);
        assert_eq!(child.atomic_load32(64).unwrap(), 99);
    }

    #[test]
    fn writing_zeros_to_untouched_pages_stays_lazy() {
        let m = Memory::new_paged(4, Some(4));
        // Bulk zero write and zero memory.copy over untouched space.
        m.write(100, &[0u8; 4096]).unwrap();
        m.copy_within(2 * PAGE_SIZE as u64, 0, PAGE_SIZE as u64)
            .unwrap();
        assert_eq!(m.resident_pages(), 0, "zeros into zeros is a no-op");
        // A copy of real data still lands.
        m.write(0, b"payload").unwrap();
        m.copy_within(2 * PAGE_SIZE as u64, 0, 16).unwrap();
        assert_eq!(m.read(2 * PAGE_SIZE as u64, 7).unwrap(), b"payload");
        assert_eq!(m.resident_pages(), 2);
    }
}
