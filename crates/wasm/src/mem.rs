//! Linear memory with up-front reservation for thread sharing.
//!
//! Instance-per-thread execution (paper §3.1) shares one linear memory
//! between several instances running on different host threads. To make
//! that sound without locking every access, [`Memory`] allocates its
//! *maximum* size once at creation and never relocates; `memory.grow` only
//! moves the current-length watermark. Plain loads/stores are then racy
//! byte accesses into a stable allocation — the Wasm threads memory model —
//! while `grow` and the atomics use real atomic operations.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::error::Trap;
use crate::PAGE_SIZE;

/// Default maximum (in pages) when a memory declares no maximum: 1024
/// pages = 64 MiB, a deliberate cap so reservation stays cheap.
pub const DEFAULT_MAX_PAGES: u32 = 1024;

/// A Wasm linear memory.
pub struct Memory {
    /// Backing buffer, sized to `max_pages` once and never reallocated.
    buf: UnsafeCell<Box<[u8]>>,
    /// Current size in pages; grows monotonically up to `max_pages`.
    cur_pages: AtomicU32,
    /// Peak observed size in pages (for memory-usage experiments).
    peak_pages: AtomicU32,
    max_pages: u32,
}

// SAFETY: All access to `buf` is bounds-checked against `cur_pages * 64Ki`,
// and the buffer is allocated at maximum size up front, so concurrent
// loads/stores never read outside the allocation and `grow` never moves it.
// Plain (non-atomic) concurrent accesses may race, which is exactly the
// semantics Wasm shared memories give to unsynchronized accesses (the
// value read is *some* byte-level interleaving, never UB at the Wasm
// level); the host-level data race is confined to `u8` reads/writes via
// raw pointers, never references with aliasing guarantees.
unsafe impl Sync for Memory {}
// SAFETY: See `Sync` above; ownership transfer adds no additional hazard.
unsafe impl Send for Memory {}

impl Memory {
    /// Creates a memory with `min` pages, reserving `max` (or
    /// [`DEFAULT_MAX_PAGES`]) up front.
    pub fn new(min: u32, max: Option<u32>) -> Memory {
        let max_pages = max.unwrap_or(DEFAULT_MAX_PAGES).max(min);
        let bytes = max_pages as usize * PAGE_SIZE;
        Memory {
            buf: UnsafeCell::new(vec![0u8; bytes].into_boxed_slice()),
            cur_pages: AtomicU32::new(min),
            peak_pages: AtomicU32::new(min),
            max_pages,
        }
    }

    /// Current size in pages.
    #[inline]
    pub fn pages(&self) -> u32 {
        self.cur_pages.load(Ordering::Acquire)
    }

    /// Peak size in pages over the memory's lifetime.
    pub fn peak_pages(&self) -> u32 {
        self.peak_pages.load(Ordering::Relaxed)
    }

    /// Declared maximum in pages.
    pub fn max_pages(&self) -> u32 {
        self.max_pages
    }

    /// Current size in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.pages() as usize * PAGE_SIZE
    }

    /// Grows by `delta` pages; returns the previous page count or -1,
    /// exactly like `memory.grow`.
    pub fn grow(&self, delta: u32) -> i32 {
        loop {
            let cur = self.cur_pages.load(Ordering::Acquire);
            let next = match cur.checked_add(delta) {
                Some(n) if n <= self.max_pages => n,
                _ => return -1,
            };
            if self
                .cur_pages
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.peak_pages.fetch_max(next, Ordering::Relaxed);
                return cur as i32;
            }
        }
    }

    #[inline]
    fn ptr(&self) -> *mut u8 {
        // SAFETY: We only produce a raw pointer here; all dereferences are
        // bounds-checked by the callers below.
        unsafe { (*self.buf.get()).as_mut_ptr() }
    }

    /// Deep-copies the memory (fork semantics: same limits, same bytes,
    /// independent buffer).
    pub fn deep_clone(&self) -> Memory {
        let new = Memory::new(self.pages(), Some(self.max_pages));
        let len = self.size();
        // SAFETY: Both buffers are at least `len` bytes (same page count,
        // maxima allocated up front) and do not overlap.
        unsafe {
            core::ptr::copy_nonoverlapping(self.ptr(), new.ptr(), len);
        }
        new.peak_pages.store(self.peak_pages(), Ordering::Relaxed);
        new
    }

    /// Checks that `[addr, addr+len)` is in bounds.
    #[inline]
    pub fn check(&self, addr: u64, len: u64) -> Result<usize, Trap> {
        let end = addr.checked_add(len).ok_or(Trap::MemoryOutOfBounds)?;
        if end > self.size() as u64 {
            return Err(Trap::MemoryOutOfBounds);
        }
        Ok(addr as usize)
    }

    /// Reads `N` bytes at `addr`.
    #[inline]
    pub fn load<const N: usize>(&self, addr: u64) -> Result<[u8; N], Trap> {
        let off = self.check(addr, N as u64)?;
        let mut out = [0u8; N];
        // SAFETY: `check` guarantees `off + N <= size <= allocation`.
        unsafe {
            core::ptr::copy_nonoverlapping(self.ptr().add(off), out.as_mut_ptr(), N);
        }
        Ok(out)
    }

    /// Writes `N` bytes at `addr`.
    #[inline]
    pub fn store<const N: usize>(&self, addr: u64, val: [u8; N]) -> Result<(), Trap> {
        let off = self.check(addr, N as u64)?;
        // SAFETY: `check` guarantees `off + N <= size <= allocation`.
        unsafe {
            core::ptr::copy_nonoverlapping(val.as_ptr(), self.ptr().add(off), N);
        }
        Ok(())
    }

    /// Copies a byte range out of memory.
    pub fn read(&self, addr: u64, len: usize) -> Result<Vec<u8>, Trap> {
        let off = self.check(addr, len as u64)?;
        let mut out = vec![0u8; len];
        // SAFETY: Bounds checked above.
        unsafe {
            core::ptr::copy_nonoverlapping(self.ptr().add(off), out.as_mut_ptr(), len);
        }
        Ok(out)
    }

    /// Copies `bytes` into memory at `addr`.
    pub fn write(&self, addr: u64, bytes: &[u8]) -> Result<(), Trap> {
        let off = self.check(addr, bytes.len() as u64)?;
        // SAFETY: Bounds checked above.
        unsafe {
            core::ptr::copy_nonoverlapping(bytes.as_ptr(), self.ptr().add(off), bytes.len());
        }
        Ok(())
    }

    /// Runs `f` over the byte range as a shared slice (zero-copy reads).
    ///
    /// This is the zero-copy fast path WALI uses for I/O syscalls (§3.2).
    pub fn with_slice<R>(
        &self,
        addr: u64,
        len: usize,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, Trap> {
        let off = self.check(addr, len as u64)?;
        // SAFETY: Bounds checked; concurrent writers may race but byte
        // reads remain valid (shared-memory semantics).
        let slice = unsafe { core::slice::from_raw_parts(self.ptr().add(off), len) };
        Ok(f(slice))
    }

    /// Runs `f` over the byte range as a mutable slice (zero-copy writes).
    pub fn with_slice_mut<R>(
        &self,
        addr: u64,
        len: usize,
        f: impl FnOnce(&mut [u8]) -> R,
    ) -> Result<R, Trap> {
        let off = self.check(addr, len as u64)?;
        // SAFETY: Bounds checked; exclusivity is not required under the
        // shared-memory model (racy writes are program bugs, not UB at the
        // byte level).
        let slice = unsafe { core::slice::from_raw_parts_mut(self.ptr().add(off), len) };
        Ok(f(slice))
    }

    /// `memory.fill`.
    pub fn fill(&self, addr: u64, val: u8, len: u64) -> Result<(), Trap> {
        let off = self.check(addr, len)?;
        // SAFETY: Bounds checked above.
        unsafe {
            core::ptr::write_bytes(self.ptr().add(off), val, len as usize);
        }
        Ok(())
    }

    /// `memory.copy` (overlap-safe).
    pub fn copy_within(&self, dst: u64, src: u64, len: u64) -> Result<(), Trap> {
        let d = self.check(dst, len)?;
        let s = self.check(src, len)?;
        // SAFETY: Both ranges bounds-checked; `copy` handles overlap.
        unsafe {
            core::ptr::copy(self.ptr().add(s), self.ptr().add(d), len as usize);
        }
        Ok(())
    }

    /// Reads a NUL-terminated string starting at `addr` (bounded scan).
    pub fn read_cstr(&self, addr: u64) -> Result<Vec<u8>, Trap> {
        let mut out = Vec::new();
        let mut a = addr;
        loop {
            let [b] = self.load::<1>(a)?;
            if b == 0 {
                return Ok(out);
            }
            out.push(b);
            a += 1;
            if out.len() > 1 << 20 {
                return Err(Trap::MemoryOutOfBounds);
            }
        }
    }

    /// 32-bit atomic load with SeqCst ordering.
    pub fn atomic_load32(&self, addr: u64) -> Result<u32, Trap> {
        let off = self.check_aligned(addr, 4)?;
        // SAFETY: In-bounds, 4-aligned, and the allocation outlives the
        // reference; AtomicU32 has the same layout as u32.
        let a = unsafe { &*(self.ptr().add(off) as *const AtomicU32) };
        Ok(a.load(Ordering::SeqCst))
    }

    /// 32-bit atomic store with SeqCst ordering.
    pub fn atomic_store32(&self, addr: u64, val: u32) -> Result<(), Trap> {
        let off = self.check_aligned(addr, 4)?;
        // SAFETY: See `atomic_load32`.
        let a = unsafe { &*(self.ptr().add(off) as *const AtomicU32) };
        a.store(val, Ordering::SeqCst);
        Ok(())
    }

    /// 64-bit atomic load with SeqCst ordering.
    pub fn atomic_load64(&self, addr: u64) -> Result<u64, Trap> {
        let off = self.check_aligned(addr, 8)?;
        // SAFETY: See `atomic_load32`, with 8-byte alignment.
        let a = unsafe { &*(self.ptr().add(off) as *const AtomicU64) };
        Ok(a.load(Ordering::SeqCst))
    }

    /// 64-bit atomic store with SeqCst ordering.
    pub fn atomic_store64(&self, addr: u64, val: u64) -> Result<(), Trap> {
        let off = self.check_aligned(addr, 8)?;
        // SAFETY: See `atomic_load32`, with 8-byte alignment.
        let a = unsafe { &*(self.ptr().add(off) as *const AtomicU64) };
        a.store(val, Ordering::SeqCst);
        Ok(())
    }

    /// 32-bit atomic read-modify-write; returns the old value.
    pub fn atomic_rmw32(&self, addr: u64, op: crate::instr::RmwOp, val: u32) -> Result<u32, Trap> {
        use crate::instr::RmwOp;
        let off = self.check_aligned(addr, 4)?;
        // SAFETY: See `atomic_load32`.
        let a = unsafe { &*(self.ptr().add(off) as *const AtomicU32) };
        let old = match op {
            RmwOp::Add => a.fetch_add(val, Ordering::SeqCst),
            RmwOp::Sub => a.fetch_sub(val, Ordering::SeqCst),
            RmwOp::And => a.fetch_and(val, Ordering::SeqCst),
            RmwOp::Or => a.fetch_or(val, Ordering::SeqCst),
            RmwOp::Xor => a.fetch_xor(val, Ordering::SeqCst),
            RmwOp::Xchg => a.swap(val, Ordering::SeqCst),
        };
        Ok(old)
    }

    /// 32-bit atomic compare-exchange; returns the old value.
    pub fn atomic_cmpxchg32(&self, addr: u64, expected: u32, new: u32) -> Result<u32, Trap> {
        let off = self.check_aligned(addr, 4)?;
        // SAFETY: See `atomic_load32`.
        let a = unsafe { &*(self.ptr().add(off) as *const AtomicU32) };
        Ok(
            match a.compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(v) => v,
                Err(v) => v,
            },
        )
    }

    fn check_aligned(&self, addr: u64, align: u64) -> Result<usize, Trap> {
        if !addr.is_multiple_of(align) {
            return Err(Trap::MemoryOutOfBounds);
        }
        self.check(addr, align)
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("pages", &self.pages())
            .field("max_pages", &self.max_pages)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grow_and_bounds() {
        let m = Memory::new(1, Some(3));
        assert_eq!(m.pages(), 1);
        assert!(m.store::<4>(PAGE_SIZE as u64 - 4, [1, 2, 3, 4]).is_ok());
        assert_eq!(
            m.store::<4>(PAGE_SIZE as u64 - 3, [0; 4]),
            Err(Trap::MemoryOutOfBounds)
        );
        assert_eq!(m.grow(1), 1);
        assert!(m.store::<4>(PAGE_SIZE as u64 - 3, [0; 4]).is_ok());
        assert_eq!(m.grow(2), -1);
        assert_eq!(m.grow(1), 2);
        assert_eq!(m.grow(1), -1);
        assert_eq!(m.peak_pages(), 3);
    }

    #[test]
    fn load_store_round_trip() {
        let m = Memory::new(1, None);
        m.store::<8>(16, 0xdead_beef_cafe_f00du64.to_le_bytes())
            .unwrap();
        assert_eq!(
            u64::from_le_bytes(m.load::<8>(16).unwrap()),
            0xdead_beef_cafe_f00d
        );
    }

    #[test]
    fn cstr_and_bulk_ops() {
        let m = Memory::new(1, None);
        m.write(100, b"hello\0world").unwrap();
        assert_eq!(m.read_cstr(100).unwrap(), b"hello");
        m.copy_within(200, 100, 11).unwrap();
        assert_eq!(m.read(200, 5).unwrap(), b"hello");
        m.fill(100, b'x', 5).unwrap();
        assert_eq!(m.read_cstr(100).unwrap(), b"xxxxx");
    }

    #[test]
    fn overlapping_copy_is_memmove() {
        let m = Memory::new(1, None);
        m.write(0, b"abcdef").unwrap();
        m.copy_within(2, 0, 4).unwrap();
        assert_eq!(m.read(0, 6).unwrap(), b"ababcd");
    }

    #[test]
    fn atomics_work_and_require_alignment() {
        let m = Memory::new(1, None);
        m.atomic_store32(8, 5).unwrap();
        assert_eq!(m.atomic_rmw32(8, crate::instr::RmwOp::Add, 3).unwrap(), 5);
        assert_eq!(m.atomic_load32(8).unwrap(), 8);
        assert_eq!(m.atomic_cmpxchg32(8, 8, 42).unwrap(), 8);
        assert_eq!(m.atomic_load32(8).unwrap(), 42);
        assert_eq!(m.atomic_load32(6), Err(Trap::MemoryOutOfBounds));
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let m = Arc::new(Memory::new(1, None));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.atomic_rmw32(0, crate::instr::RmwOp::Add, 1).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.atomic_load32(0).unwrap(), 4000);
    }
}
