//! Module validation (type checking).
//!
//! Implements the algorithm from the Wasm spec appendix: a value-stack of
//! possibly-unknown types plus a control stack with per-frame unreachable
//! polymorphism. Everything that executes in this repository is validated
//! first — WALI's security story leans on it ("statically validated prior
//! to execution", paper §1.1).

use crate::error::ValidateError;
use crate::instr::{BlockType, Instr};
use crate::module::{ConstExpr, ImportDesc, Module};
use crate::types::{FuncType, GlobalType, ValType};

/// Validates a whole module.
pub fn validate(m: &Module) -> Result<(), ValidateError> {
    // Type indices in function declarations.
    for (i, imp) in m.imports.iter().enumerate() {
        if let ImportDesc::Func(t) = imp.desc {
            if t as usize >= m.types.len() {
                return Err(ValidateError::msg(format!(
                    "import {i}: bad type index {t}"
                )));
            }
        }
    }
    for (i, t) in m.funcs.iter().enumerate() {
        if *t as usize >= m.types.len() {
            return Err(ValidateError::msg(format!("func {i}: bad type index {t}")));
        }
    }
    if m.funcs.len() != m.code.len() {
        return Err(ValidateError::msg("function/code count mismatch"));
    }

    let num_memories = m.memories.len()
        + m.imports
            .iter()
            .filter(|i| matches!(i.desc, ImportDesc::Memory(_)))
            .count();
    if num_memories > 1 {
        return Err(ValidateError::msg("at most one memory is supported"));
    }
    let num_tables = m.tables.len()
        + m.imports
            .iter()
            .filter(|i| matches!(i.desc, ImportDesc::Table(_)))
            .count();
    if num_tables > 1 {
        return Err(ValidateError::msg("at most one table is supported"));
    }
    for mem in &m.memories {
        if !mem.limits.valid() {
            return Err(ValidateError::msg("memory limits min > max"));
        }
        if mem.shared && mem.limits.max.is_none() {
            return Err(ValidateError::msg("shared memory requires a max"));
        }
    }
    for t in &m.tables {
        if !t.limits.valid() {
            return Err(ValidateError::msg("table limits min > max"));
        }
    }

    let globals = global_env(m);
    let imported_globals: Vec<GlobalType> = m
        .imports
        .iter()
        .filter_map(|i| match i.desc {
            ImportDesc::Global(g) => Some(g),
            _ => None,
        })
        .collect();

    // Global initializers: const exprs of matching type, referencing only
    // imported globals.
    for (i, g) in m.globals.iter().enumerate() {
        let ty = g
            .init
            .ty(&imported_globals)
            .ok_or_else(|| ValidateError::msg(format!("global {i}: bad init global index")))?;
        if ty != g.ty.ty {
            return Err(ValidateError::msg(format!(
                "global {i}: init type mismatch"
            )));
        }
        if let ConstExpr::RefFunc(f) = g.init {
            check_func_index(m, f)?;
        }
    }

    // Element segments.
    let total_funcs = m.num_imported_funcs() as usize + m.funcs.len();
    for (i, e) in m.elems.iter().enumerate() {
        let ty = e
            .offset
            .ty(&imported_globals)
            .ok_or_else(|| ValidateError::msg(format!("elem {i}: bad offset global")))?;
        if ty != ValType::I32 {
            return Err(ValidateError::msg(format!("elem {i}: offset must be i32")));
        }
        for f in &e.funcs {
            if *f as usize >= total_funcs {
                return Err(ValidateError::msg(format!("elem {i}: bad func index {f}")));
            }
        }
    }

    // Data segments.
    for (i, d) in m.datas.iter().enumerate() {
        let ty = d
            .offset
            .ty(&imported_globals)
            .ok_or_else(|| ValidateError::msg(format!("data {i}: bad offset global")))?;
        if ty != ValType::I32 {
            return Err(ValidateError::msg(format!("data {i}: offset must be i32")));
        }
        if num_memories == 0 {
            return Err(ValidateError::msg("data segment without memory"));
        }
    }

    // Exports reference valid indices, unique names.
    let mut names = std::collections::HashSet::new();
    for e in &m.exports {
        if !names.insert(e.name.as_str()) {
            return Err(ValidateError::msg(format!("duplicate export {}", e.name)));
        }
        match e.desc {
            crate::module::ExportDesc::Func(f) => check_func_index(m, f)?,
            crate::module::ExportDesc::Memory(i) => {
                if i as usize >= num_memories {
                    return Err(ValidateError::msg("export: bad memory index"));
                }
            }
            crate::module::ExportDesc::Table(i) => {
                if i as usize >= num_tables {
                    return Err(ValidateError::msg("export: bad table index"));
                }
            }
            crate::module::ExportDesc::Global(i) => {
                if i as usize >= globals.len() {
                    return Err(ValidateError::msg("export: bad global index"));
                }
            }
        }
    }

    // Start function: [] -> [].
    if let Some(s) = m.start {
        let ty = m
            .func_type(s)
            .ok_or_else(|| ValidateError::msg("start: bad func index"))?;
        if !ty.params.is_empty() || !ty.results.is_empty() {
            return Err(ValidateError::msg("start function must be [] -> []"));
        }
    }

    // Function bodies.
    let has_memory = num_memories > 0;
    let has_table = num_tables > 0;
    for (i, body) in m.code.iter().enumerate() {
        let func_idx = m.num_imported_funcs() + i as u32;
        let ty = m.func_type(func_idx).expect("checked above").clone();
        FuncValidator::new(m, &globals, has_memory, has_table)
            .validate(&ty, body)
            .map_err(|mut e| {
                e.func = Some(func_idx);
                e
            })?;
    }
    Ok(())
}

fn check_func_index(m: &Module, f: u32) -> Result<(), ValidateError> {
    let total = m.num_imported_funcs() as usize + m.funcs.len();
    if f as usize >= total {
        return Err(ValidateError::msg(format!("bad function index {f}")));
    }
    Ok(())
}

/// Flattened global environment: imported globals first, then defined ones.
fn global_env(m: &Module) -> Vec<GlobalType> {
    let mut v: Vec<GlobalType> = m
        .imports
        .iter()
        .filter_map(|i| match i.desc {
            ImportDesc::Global(g) => Some(g),
            _ => None,
        })
        .collect();
    v.extend(m.globals.iter().map(|g| g.ty));
    v
}

/// `Some(t)` is a known type; `None` is the unknown (polymorphic) type.
type MaybeType = Option<ValType>;

struct CtrlFrame {
    is_loop: bool,
    start_types: Vec<ValType>,
    end_types: Vec<ValType>,
    height: usize,
    unreachable: bool,
}

struct FuncValidator<'m> {
    module: &'m Module,
    globals: &'m [GlobalType],
    has_memory: bool,
    has_table: bool,
    vals: Vec<MaybeType>,
    ctrls: Vec<CtrlFrame>,
    locals: Vec<ValType>,
}

impl<'m> FuncValidator<'m> {
    fn new(
        module: &'m Module,
        globals: &'m [GlobalType],
        has_memory: bool,
        has_table: bool,
    ) -> Self {
        FuncValidator {
            module,
            globals,
            has_memory,
            has_table,
            vals: Vec::new(),
            ctrls: Vec::new(),
            locals: Vec::new(),
        }
    }

    fn err(&self, msg: impl Into<String>) -> ValidateError {
        ValidateError::msg(msg)
    }

    fn push(&mut self, t: MaybeType) {
        self.vals.push(t);
    }

    fn pop(&mut self) -> Result<MaybeType, ValidateError> {
        let frame = self
            .ctrls
            .last()
            .ok_or_else(|| self.err("pop with no frame"))?;
        if self.vals.len() == frame.height {
            if frame.unreachable {
                return Ok(None);
            }
            return Err(self.err("value stack underflow"));
        }
        Ok(self.vals.pop().expect("non-empty"))
    }

    fn pop_expect(&mut self, want: ValType) -> Result<(), ValidateError> {
        match self.pop()? {
            None => Ok(()),
            Some(got) if got == want => Ok(()),
            Some(got) => Err(self.err(format!("type mismatch: expected {want}, got {got}"))),
        }
    }

    fn pop_types(&mut self, types: &[ValType]) -> Result<(), ValidateError> {
        for t in types.iter().rev() {
            self.pop_expect(*t)?;
        }
        Ok(())
    }

    fn push_types(&mut self, types: &[ValType]) {
        for t in types {
            self.push(Some(*t));
        }
    }

    fn push_frame(&mut self, is_loop: bool, start: Vec<ValType>, end: Vec<ValType>) {
        let height = self.vals.len();
        self.push_types(&start.clone());
        self.ctrls.push(CtrlFrame {
            is_loop,
            start_types: start,
            end_types: end,
            height,
            unreachable: false,
        });
    }

    fn pop_frame(&mut self) -> Result<CtrlFrame, ValidateError> {
        let end_types = self
            .ctrls
            .last()
            .ok_or_else(|| self.err("end with no frame"))?
            .end_types
            .clone();
        self.pop_types(&end_types)?;
        let frame = self.ctrls.pop().expect("non-empty");
        if self.vals.len() != frame.height {
            return Err(self.err("values left on stack at block end"));
        }
        Ok(frame)
    }

    fn mark_unreachable(&mut self) -> Result<(), ValidateError> {
        if self.ctrls.is_empty() {
            return Err(self.err("unreachable with no frame"));
        }
        let frame = self.ctrls.last_mut().expect("non-empty");
        self.vals.truncate(frame.height);
        frame.unreachable = true;
        Ok(())
    }

    fn label_types(&self, depth: u32) -> Result<Vec<ValType>, ValidateError> {
        let idx = self
            .ctrls
            .len()
            .checked_sub(1 + depth as usize)
            .ok_or_else(|| self.err(format!("bad label depth {depth}")))?;
        let frame = &self.ctrls[idx];
        Ok(if frame.is_loop {
            frame.start_types.clone()
        } else {
            frame.end_types.clone()
        })
    }

    fn block_sig(&self, bt: &BlockType) -> Result<(Vec<ValType>, Vec<ValType>), ValidateError> {
        match bt {
            BlockType::Empty => Ok((vec![], vec![])),
            BlockType::Value(t) => Ok((vec![], vec![*t])),
            BlockType::Func(i) => {
                let ty = self
                    .module
                    .types
                    .get(*i as usize)
                    .ok_or_else(|| self.err(format!("bad block type index {i}")))?;
                Ok((ty.params.clone(), ty.results.clone()))
            }
        }
    }

    fn local(&self, i: u32) -> Result<ValType, ValidateError> {
        self.locals
            .get(i as usize)
            .copied()
            .ok_or_else(|| self.err(format!("bad local {i}")))
    }

    fn global(&self, i: u32) -> Result<GlobalType, ValidateError> {
        self.globals
            .get(i as usize)
            .copied()
            .ok_or_else(|| self.err(format!("bad global {i}")))
    }

    fn need_memory(&self) -> Result<(), ValidateError> {
        if self.has_memory {
            Ok(())
        } else {
            Err(self.err("memory instruction without memory"))
        }
    }

    fn validate(
        mut self,
        ty: &FuncType,
        body: &crate::module::FuncBody,
    ) -> Result<(), ValidateError> {
        self.locals = ty.params.clone();
        for (n, t) in &body.locals {
            for _ in 0..*n {
                self.locals.push(*t);
            }
        }
        self.push_frame(false, vec![], ty.results.clone());
        for instr in &body.instrs {
            self.step(instr)?;
        }
        // The implicit end of the function body.
        let frame = self.pop_frame()?;
        self.push_types(&frame.end_types);
        if !self.ctrls.is_empty() {
            return Err(self.err("unclosed block at function end"));
        }
        Ok(())
    }

    fn step(&mut self, instr: &Instr) -> Result<(), ValidateError> {
        use ValType::*;
        match instr {
            Instr::Unreachable => self.mark_unreachable()?,
            Instr::Nop => {}
            Instr::Block(bt) => {
                let (params, results) = self.block_sig(bt)?;
                self.pop_types(&params)?;
                self.push_frame(false, params, results);
            }
            Instr::Loop(bt) => {
                let (params, results) = self.block_sig(bt)?;
                self.pop_types(&params)?;
                self.push_frame(true, params, results);
            }
            Instr::If(bt) => {
                self.pop_expect(I32)?;
                let (params, results) = self.block_sig(bt)?;
                self.pop_types(&params)?;
                self.push_frame(false, params, results);
            }
            Instr::Else => {
                let frame = self.pop_frame()?;
                if frame.is_loop {
                    return Err(self.err("else on a loop frame"));
                }
                self.push_frame(false, frame.start_types, frame.end_types);
            }
            Instr::End => {
                let frame = self.pop_frame()?;
                self.push_types(&frame.end_types);
            }
            Instr::Br(depth) => {
                let tys = self.label_types(*depth)?;
                self.pop_types(&tys)?;
                self.mark_unreachable()?;
            }
            Instr::BrIf(depth) => {
                self.pop_expect(I32)?;
                let tys = self.label_types(*depth)?;
                self.pop_types(&tys)?;
                self.push_types(&tys);
            }
            Instr::BrTable(targets, default) => {
                self.pop_expect(I32)?;
                let def = self.label_types(*default)?;
                for t in targets.iter() {
                    let tys = self.label_types(*t)?;
                    if tys.len() != def.len() {
                        return Err(self.err("br_table arity mismatch"));
                    }
                }
                self.pop_types(&def)?;
                self.mark_unreachable()?;
            }
            Instr::Return => {
                let tys = self.ctrls.first().expect("root frame").end_types.clone();
                self.pop_types(&tys)?;
                self.mark_unreachable()?;
            }
            Instr::Call(f) => {
                let ty = self
                    .module
                    .func_type(*f)
                    .ok_or_else(|| self.err(format!("call: bad func {f}")))?
                    .clone();
                self.pop_types(&ty.params)?;
                self.push_types(&ty.results);
            }
            Instr::CallIndirect(t) => {
                if !self.has_table {
                    return Err(self.err("call_indirect without table"));
                }
                self.pop_expect(I32)?;
                let ty = self
                    .module
                    .types
                    .get(*t as usize)
                    .ok_or_else(|| self.err(format!("call_indirect: bad type {t}")))?
                    .clone();
                self.pop_types(&ty.params)?;
                self.push_types(&ty.results);
            }
            Instr::Drop => {
                self.pop()?;
            }
            Instr::Select => {
                self.pop_expect(I32)?;
                let a = self.pop()?;
                let b = self.pop()?;
                match (a, b) {
                    (Some(x), Some(y)) if x == y => self.push(Some(x)),
                    (Some(x), None) | (None, Some(x)) => self.push(Some(x)),
                    (None, None) => self.push(None),
                    _ => return Err(self.err("select operand type mismatch")),
                }
            }
            Instr::LocalGet(i) => {
                let t = self.local(*i)?;
                self.push(Some(t));
            }
            Instr::LocalSet(i) => {
                let t = self.local(*i)?;
                self.pop_expect(t)?;
            }
            Instr::LocalTee(i) => {
                let t = self.local(*i)?;
                self.pop_expect(t)?;
                self.push(Some(t));
            }
            Instr::GlobalGet(i) => {
                let g = self.global(*i)?;
                self.push(Some(g.ty));
            }
            Instr::GlobalSet(i) => {
                let g = self.global(*i)?;
                if !g.mutable {
                    return Err(self.err(format!("global {i} is immutable")));
                }
                self.pop_expect(g.ty)?;
            }
            Instr::Load(kind, arg) => {
                self.need_memory()?;
                if (1u32 << arg.align) > kind.bytes() {
                    return Err(self.err("load alignment too large"));
                }
                self.pop_expect(I32)?;
                self.push(Some(kind.result()));
            }
            Instr::Store(kind, arg) => {
                self.need_memory()?;
                if (1u32 << arg.align) > kind.bytes() {
                    return Err(self.err("store alignment too large"));
                }
                self.pop_expect(kind.operand())?;
                self.pop_expect(I32)?;
            }
            Instr::MemorySize => {
                self.need_memory()?;
                self.push(Some(I32));
            }
            Instr::MemoryGrow => {
                self.need_memory()?;
                self.pop_expect(I32)?;
                self.push(Some(I32));
            }
            Instr::MemoryCopy | Instr::MemoryFill => {
                self.need_memory()?;
                self.pop_expect(I32)?;
                self.pop_expect(I32)?;
                self.pop_expect(I32)?;
            }
            Instr::I32Const(_) => self.push(Some(I32)),
            Instr::I64Const(_) => self.push(Some(I64)),
            Instr::F32Const(_) => self.push(Some(F32)),
            Instr::F64Const(_) => self.push(Some(F64)),
            Instr::Un(op) => {
                let (input, output) = op.sig();
                self.pop_expect(input)?;
                self.push(Some(output));
            }
            Instr::Bin(op) => {
                let t = op.ty();
                self.pop_expect(t)?;
                self.pop_expect(t)?;
                self.push(Some(t));
            }
            Instr::Rel(op) => {
                let t = op.operand();
                self.pop_expect(t)?;
                self.pop_expect(t)?;
                self.push(Some(I32));
            }
            Instr::Cvt(op) => {
                let (from, to) = op.sig();
                self.pop_expect(from)?;
                self.push(Some(to));
            }
            Instr::AtomicNotify(_) => {
                self.need_memory()?;
                self.pop_expect(I32)?; // count
                self.pop_expect(I32)?; // addr
                self.push(Some(I32));
            }
            Instr::AtomicWait32(_) => {
                self.need_memory()?;
                self.pop_expect(I64)?; // timeout
                self.pop_expect(I32)?; // expected
                self.pop_expect(I32)?; // addr
                self.push(Some(I32));
            }
            Instr::AtomicFence => {}
            Instr::AtomicLoad(w, _) => {
                self.need_memory()?;
                self.pop_expect(I32)?;
                self.push(Some(w.ty()));
            }
            Instr::AtomicStore(w, _) => {
                self.need_memory()?;
                self.pop_expect(w.ty())?;
                self.pop_expect(I32)?;
            }
            Instr::AtomicRmw(_, _) => {
                self.need_memory()?;
                self.pop_expect(I32)?;
                self.pop_expect(I32)?;
                self.push(Some(I32));
            }
            Instr::AtomicCmpxchg(_) => {
                self.need_memory()?;
                self.pop_expect(I32)?; // new
                self.pop_expect(I32)?; // expected
                self.pop_expect(I32)?; // addr
                self.push(Some(I32));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::BinOp;
    use crate::module::{FuncBody, Global};
    use crate::types::{Limits, MemoryType};

    fn module_with_body(params: Vec<ValType>, results: Vec<ValType>, instrs: Vec<Instr>) -> Module {
        Module {
            types: vec![FuncType { params, results }],
            funcs: vec![0],
            memories: vec![MemoryType {
                limits: Limits {
                    min: 1,
                    max: Some(2),
                },
                shared: false,
            }],
            code: vec![FuncBody {
                locals: vec![],
                instrs,
            }],
            ..Default::default()
        }
    }

    #[test]
    fn accepts_simple_add() {
        let m = module_with_body(
            vec![ValType::I32, ValType::I32],
            vec![ValType::I32],
            vec![
                Instr::LocalGet(0),
                Instr::LocalGet(1),
                Instr::Bin(BinOp::I32Add),
            ],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn rejects_type_mismatch() {
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![
                Instr::I64Const(1),
                Instr::I32Const(2),
                Instr::Bin(BinOp::I32Add),
            ],
        );
        assert!(validate(&m).is_err());
    }

    #[test]
    fn rejects_stack_underflow() {
        let m = module_with_body(vec![], vec![ValType::I32], vec![Instr::Bin(BinOp::I32Add)]);
        assert!(validate(&m).is_err());
    }

    #[test]
    fn rejects_leftover_values() {
        let m = module_with_body(vec![], vec![], vec![Instr::I32Const(1)]);
        assert!(validate(&m).is_err());
    }

    #[test]
    fn unreachable_is_polymorphic() {
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![Instr::Unreachable, Instr::Bin(BinOp::I32Add)],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn br_checks_label_arity() {
        // block (result i32) with a br 0 providing nothing: error.
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![
                Instr::Block(BlockType::Value(ValType::I32)),
                Instr::Br(0),
                Instr::End,
            ],
        );
        assert!(validate(&m).is_err());

        let ok = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![
                Instr::Block(BlockType::Value(ValType::I32)),
                Instr::I32Const(3),
                Instr::Br(0),
                Instr::End,
            ],
        );
        validate(&ok).unwrap();
    }

    #[test]
    fn loop_label_uses_start_types() {
        // br to a loop header carries the loop's params (empty here), so an
        // extra value on the stack is fine at the br point.
        let m = module_with_body(
            vec![],
            vec![],
            vec![
                Instr::Loop(BlockType::Empty),
                Instr::I32Const(1),
                Instr::BrIf(0),
                Instr::End,
            ],
        );
        validate(&m).unwrap();
    }

    #[test]
    fn if_else_must_match() {
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![
                Instr::I32Const(1),
                Instr::If(BlockType::Value(ValType::I32)),
                Instr::I32Const(1),
                Instr::Else,
                Instr::I64Const(2),
                Instr::End,
            ],
        );
        assert!(validate(&m).is_err());
    }

    #[test]
    fn immutable_global_cannot_be_set() {
        let mut m = module_with_body(
            vec![],
            vec![],
            vec![Instr::I32Const(1), Instr::GlobalSet(0)],
        );
        m.globals.push(Global {
            ty: GlobalType {
                ty: ValType::I32,
                mutable: false,
            },
            init: ConstExpr::I32(0),
        });
        assert!(validate(&m).is_err());
        m.globals[0].ty.mutable = true;
        validate(&m).unwrap();
    }

    #[test]
    fn memory_ops_require_memory() {
        let mut m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![
                Instr::I32Const(0),
                Instr::Load(crate::instr::LoadKind::I32, Default::default()),
            ],
        );
        m.memories.clear();
        assert!(validate(&m).is_err());
    }

    #[test]
    fn rejects_duplicate_exports() {
        let mut m = module_with_body(vec![], vec![], vec![]);
        m.exports = vec![
            crate::module::Export {
                name: "a".into(),
                desc: crate::module::ExportDesc::Func(0),
            },
            crate::module::Export {
                name: "a".into(),
                desc: crate::module::ExportDesc::Func(0),
            },
        ];
        assert!(validate(&m).is_err());
    }

    #[test]
    fn start_must_be_nullary() {
        let mut m = module_with_body(
            vec![ValType::I32],
            vec![],
            vec![Instr::LocalGet(0), Instr::Drop],
        );
        m.start = Some(0);
        assert!(validate(&m).is_err());
    }

    #[test]
    fn alignment_must_not_exceed_width() {
        let m = module_with_body(
            vec![],
            vec![ValType::I32],
            vec![
                Instr::I32Const(0),
                Instr::Load(
                    crate::instr::LoadKind::I32,
                    crate::instr::MemArg {
                        align: 3,
                        offset: 0,
                    },
                ),
            ],
        );
        assert!(validate(&m).is_err());
    }
}
