//! The layering experiment (paper §4.1, artifact E2): a WASI module runs
//! on an engine whose only OS access is the WALI interface; the WASI
//! implementation and its capability model live entirely above it.

use wali::runner::WaliRunner;
use wali::WaliContext;
use wasi_layer::{add_wasi_layer, init_wasi, WasiState};
use wasm::build::{FuncId, ModuleBuilder};
use wasm::types::ValType::I32;

fn wasi(mb: &mut ModuleBuilder, name: &str, params: usize) -> FuncId {
    let sig = mb.sig(vec![I32; params], [I32]);
    mb.import_func("wasi_snapshot_preview1", name, sig)
}

fn run_wasi(mb: ModuleBuilder, preopens: &[&str], args: &[&str]) -> wali::RunOutcome {
    let bytes = wasm::encode::encode(&mb.build());
    let module = wasm::decode::decode(&bytes).expect("round trip");
    let mut runner = WaliRunner::new_default();
    add_wasi_layer(runner.linker_mut());
    runner
        .register_program("/usr/bin/wasi-app", &module)
        .expect("register");
    let tid = runner
        .spawn("/usr/bin/wasi-app", args, &["LANG=C"])
        .expect("spawn");
    let preopens = WasiState::with_preopens(preopens);
    runner.configure_ctx(tid, |ctx: &mut WaliContext| init_wasi(ctx, preopens));
    runner.run().expect("run")
}

/// Writes an iovec array: one iovec pointing at (`ptr`, `len`).
fn one_iov(mb: &mut ModuleBuilder, ptr: u32, len: u32) -> u32 {
    let iov = mb.reserve(8);
    mb.data_at(iov, &[ptr.to_le_bytes(), len.to_le_bytes()].concat());
    iov
}

#[test]
fn fd_write_reaches_console_through_wali() {
    let mut mb = ModuleBuilder::new();
    let fd_write = wasi(&mut mb, "fd_write", 4);
    mb.memory(2, Some(16));
    let msg = mb.c_str("wasi over wali\n");
    let iov = one_iov(&mut mb, msg, 15);
    let nwritten = mb.reserve(4);
    let sig = mb.sig([], [I32]);
    let main = mb.func(sig, |b| {
        b.i32(1)
            .i32(iov as i32)
            .i32(1)
            .i32(nwritten as i32)
            .call(fd_write)
            .drop_();
        // return nwritten == 15 ? 0 : 1
        b.i32(nwritten as i32).load32(0).i32(15).ne32();
    });
    mb.export("_start", main);
    let out = run_wasi(mb, &["/tmp"], &[]);
    assert_eq!(out.exit_code(), Some(0));
    assert_eq!(out.stdout(), "wasi over wali\n");
    // The layering is visible in the trace: the WASI call shows up as the
    // underlying WALI syscall.
    assert_eq!(out.trace.counts.of("writev"), 1);
}

#[test]
fn path_open_respects_preopen_capability() {
    let mut mb = ModuleBuilder::new();
    let path_open = wasi(&mut mb, "path_open", 9);
    mb.memory(2, Some(16));
    // Relative path inside the preopen: allowed. The guest never sees or
    // names /tmp directly — fd 3 *is* the capability.
    let good = mb.data(b"notes.txt");
    let fd_out = mb.reserve(4);
    let sig = mb.sig([], [I32]);
    let main = mb.func(sig, |b| {
        // path_open(3, 0, good, 9, O_CREAT(1), rights=fd_write|fd_read,
        //           inherit=0, fdflags=0, &fd)
        b.i32(3).i32(0).i32(good as i32).i32(9).i32(0x1);
        b.i32((wasi_layer::layer::RIGHT_FD_READ | wasi_layer::layer::RIGHT_FD_WRITE) as i32);
        b.i32(0).i32(0).i32(fd_out as i32);
        b.call(path_open);
    });
    mb.export("_start", main);
    let out = run_wasi(mb, &["/tmp"], &[]);
    assert_eq!(out.exit_code(), Some(0), "errno 0 expected");
}

#[test]
fn path_escape_is_notcapable() {
    let mut mb = ModuleBuilder::new();
    let path_open = wasi(&mut mb, "path_open", 9);
    mb.memory(2, Some(16));
    let evil = mb.data(b"../etc/passwd");
    let fd_out = mb.reserve(4);
    let sig = mb.sig([], [I32]);
    let main = mb.func(sig, |b| {
        b.i32(3).i32(0).i32(evil as i32).i32(13).i32(0);
        b.i32(wasi_layer::layer::RIGHT_FD_READ as i32);
        b.i32(0).i32(0).i32(fd_out as i32);
        b.call(path_open);
    });
    mb.export("_start", main);
    let out = run_wasi(mb, &["/tmp"], &[]);
    // 76 = WASI ENOTCAPABLE: the capability model blocked the escape
    // without any engine involvement.
    assert_eq!(out.exit_code(), Some(76));
}

#[test]
fn wasi_file_round_trip_over_wali() {
    let mut mb = ModuleBuilder::new();
    let path_open = wasi(&mut mb, "path_open", 9);
    let fd_write = wasi(&mut mb, "fd_write", 4);
    let fd_seek_sig = mb.sig(vec![I32, wasm::types::ValType::I64, I32, I32], [I32]);
    let fd_seek = mb.import_func("wasi_snapshot_preview1", "fd_seek", fd_seek_sig);
    let fd_read = wasi(&mut mb, "fd_read", 4);
    let fd_close = wasi(&mut mb, "fd_close", 1);
    mb.memory(2, Some(16));
    let name = mb.data(b"round.txt");
    let content = mb.c_str("wasi-data");
    let iov_w = one_iov(&mut mb, content, 9);
    let rbuf = mb.reserve(32);
    let iov_r = one_iov(&mut mb, rbuf, 32);
    let fd_out = mb.reserve(4);
    let nout = mb.reserve(4);
    let newpos = mb.reserve(8);
    let sig = mb.sig([], [I32]);
    let rights = (wasi_layer::layer::RIGHT_FD_READ
        | wasi_layer::layer::RIGHT_FD_WRITE
        | wasi_layer::layer::RIGHT_FD_SEEK) as i32;
    let main = mb.func(sig, |b| {
        let fd = b.local(I32);
        b.i32(3).i32(0).i32(name as i32).i32(9).i32(0x1);
        b.i32(rights).i32(0).i32(0).i32(fd_out as i32);
        b.call(path_open).drop_();
        b.i32(fd_out as i32).load32(0).local_set(fd);
        // write
        b.local_get(fd)
            .i32(iov_w as i32)
            .i32(1)
            .i32(nout as i32)
            .call(fd_write)
            .drop_();
        // seek back
        b.local_get(fd)
            .i64(0)
            .i32(0)
            .i32(newpos as i32)
            .call(fd_seek)
            .drop_();
        // read
        b.local_get(fd)
            .i32(iov_r as i32)
            .i32(1)
            .i32(nout as i32)
            .call(fd_read)
            .drop_();
        b.local_get(fd).call(fd_close).drop_();
        // check: nread == 9 and first byte 'w'
        b.i32(nout as i32).load32(0).i32(9).eq32();
        b.i32(rbuf as i32).load8u(0).i32('w' as i32).eq32();
        b.and32().eqz32();
    });
    mb.export("_start", main);
    let out = run_wasi(mb, &["/tmp"], &[]);
    assert_eq!(out.exit_code(), Some(0));
    // All through WALI: openat + writev + lseek + readv + close.
    for call in ["openat", "writev", "lseek", "readv", "close"] {
        assert!(
            out.trace.counts.contains_key(call),
            "missing WALI call {call}"
        );
    }
}

#[test]
fn args_and_environ_round_trip() {
    let mut mb = ModuleBuilder::new();
    let args_sizes = wasi(&mut mb, "args_sizes_get", 2);
    let args_get = wasi(&mut mb, "args_get", 2);
    mb.memory(2, Some(16));
    let argc_out = mb.reserve(4);
    let len_out = mb.reserve(4);
    let argv = mb.reserve(64);
    let buf = mb.reserve(256);
    let sig = mb.sig([], [I32]);
    let main = mb.func(sig, |b| {
        b.i32(argc_out as i32)
            .i32(len_out as i32)
            .call(args_sizes)
            .drop_();
        b.i32(argv as i32).i32(buf as i32).call(args_get).drop_();
        // argv[1] first byte should be 'x' (arg "xyz").
        b.i32(argv as i32)
            .load32(4)
            .load8u(0)
            .i32('x' as i32)
            .ne32();
        // plus argc must be 2.
        b.i32(argc_out as i32).load32(0).i32(2).ne32();
        b.emit(wasm::instr::Instr::Bin(wasm::instr::BinOp::I32Or));
    });
    mb.export("_start", main);
    let out = run_wasi(mb, &["/tmp"], &["xyz"]);
    assert_eq!(out.exit_code(), Some(0));
}

#[test]
fn proc_exit_goes_through_wali_exit_group() {
    let mut mb = ModuleBuilder::new();
    let proc_exit = wasi(&mut mb, "proc_exit", 1);
    mb.memory(1, Some(4));
    let sig = mb.sig([], [I32]);
    let main = mb.func(sig, |b| {
        b.i32(33).call(proc_exit).drop_();
        b.i32(0);
    });
    mb.export("_start", main);
    let out = run_wasi(mb, &["/tmp"], &[]);
    assert_eq!(out.exit_code(), Some(33));
    assert_eq!(
        out.trace.counts.of("exit_group"),
        1,
        "lowered to SYS_exit_group"
    );
}
