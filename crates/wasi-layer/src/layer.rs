//! The WASI preview1 host functions, every one lowered onto WALI calls.

use std::any::Any;
use std::sync::Arc;

use wali::context::WaliContext;
use wali::registry::WaliSuspend;
use wali_abi::flags::{
    AT_FDCWD, O_APPEND, O_CREAT, O_DIRECTORY, O_EXCL, O_NONBLOCK, O_RDONLY, O_RDWR, O_TRUNC,
    SEEK_CUR, SEEK_END, SEEK_SET, S_IFDIR, S_IFMT, S_IFREG,
};
use wasm::host::{Caller, HostOutcome, Linker, Suspension};
use wasm::interp::Value;

use crate::errno::{self, BADF, INVAL, NOTCAPABLE, SUCCESS};

/// The WASI preview1 import module name.
pub const WASI_MODULE: &str = "wasi_snapshot_preview1";

/// WASI right: `fd_read`.
pub const RIGHT_FD_READ: u64 = 1 << 1;
/// WASI right: `fd_seek`.
pub const RIGHT_FD_SEEK: u64 = 1 << 2;
/// WASI right: `fd_write`.
pub const RIGHT_FD_WRITE: u64 = 1 << 6;
/// WASI right: `path_open`.
pub const RIGHT_PATH_OPEN: u64 = 1 << 13;
/// WASI right: `fd_readdir`.
pub const RIGHT_FD_READDIR: u64 = 1 << 14;
/// WASI right: `path_create_*` / `path_unlink_*`.
pub const RIGHT_PATH_WRITE: u64 = (1 << 9) | (1 << 10) | (1 << 24) | (1 << 25) | (1 << 26);
/// Every right this layer models.
pub const RIGHTS_ALL: u64 = RIGHT_FD_READ
    | RIGHT_FD_SEEK
    | RIGHT_FD_WRITE
    | RIGHT_PATH_OPEN
    | RIGHT_FD_READDIR
    | RIGHT_PATH_WRITE;

/// One preopened directory capability.
#[derive(Clone, Debug)]
pub struct Preopen {
    /// Guest-visible descriptor (3, 4, …).
    pub guest_fd: i32,
    /// Host path inside the WALI filesystem.
    pub host_path: String,
    /// Rights granted on this subtree.
    pub rights: u64,
}

/// Capability state for one WASI instance: the security model the paper
/// moves *out* of the engine.
#[derive(Clone, Debug, Default)]
pub struct WasiState {
    /// Preopened directories.
    pub preopens: Vec<Preopen>,
    /// Per-descriptor rights for fds opened through `path_open`
    /// (stdio 0–2 get read/write implicitly).
    pub fd_rights: Vec<(i32, u64)>,
}

impl WasiState {
    /// Creates a state with one preopen per path, numbered from fd 3.
    pub fn with_preopens(paths: &[&str]) -> WasiState {
        WasiState {
            preopens: paths
                .iter()
                .enumerate()
                .map(|(i, p)| Preopen {
                    guest_fd: 3 + i as i32,
                    host_path: p.to_string(),
                    rights: RIGHTS_ALL,
                })
                .collect(),
            fd_rights: Vec::new(),
        }
    }

    fn preopen(&self, fd: i32) -> Option<&Preopen> {
        self.preopens.iter().find(|p| p.guest_fd == fd)
    }

    fn rights_of(&self, fd: i32) -> u64 {
        if (0..=2).contains(&fd) {
            return RIGHT_FD_READ | RIGHT_FD_WRITE;
        }
        if let Some(p) = self.preopen(fd) {
            return p.rights;
        }
        self.fd_rights
            .iter()
            .find(|(f, _)| *f == fd)
            .map(|(_, r)| *r)
            .unwrap_or(0)
    }

    fn grant(&mut self, fd: i32, rights: u64) {
        self.fd_rights.retain(|(f, _)| *f != fd);
        self.fd_rights.push((fd, rights));
    }

    fn revoke(&mut self, fd: i32) {
        self.fd_rights.retain(|(f, _)| *f != fd);
    }
}

/// Attaches a [`WasiState`] to a context (call before running a WASI
/// module).
pub fn init_wasi(ctx: &mut WaliContext, state: WasiState) {
    ctx.ext = Some(Box::new(state) as Box<dyn Any + Send>);
}

fn state_mut(ctx: &mut WaliContext) -> Option<&mut WasiState> {
    ctx.ext.as_mut()?.downcast_mut::<WasiState>()
}

type C<'a, 'b> = &'a mut Caller<'b, WaliContext>;
type X = Result<Vec<Value>, HostOutcome>;

fn ok() -> X {
    Ok(vec![Value::I32(SUCCESS)])
}

fn fail(code: i32) -> X {
    Ok(vec![Value::I32(code)])
}

fn fail_x(code: i32) -> X {
    fail(code)
}

fn a32(args: &[Value], i: usize) -> i32 {
    match args.get(i) {
        Some(Value::I32(v)) => *v,
        Some(Value::I64(v)) => *v as i32,
        _ => 0,
    }
}

fn a64(args: &[Value], i: usize) -> i64 {
    match args.get(i) {
        Some(Value::I64(v)) => *v,
        Some(Value::I32(v)) => *v as i64,
        _ => 0,
    }
}

/// Invokes a WALI syscall from inside a WASI function (the layering).
///
/// Blocking propagates as a suspension re-keyed to the *WASI* function so
/// the runner retries this layer, not the raw syscall.
fn wali_call(
    base: &Linker<WaliContext>,
    c: C,
    name: &str,
    args: &[i64],
    wasi_import: &'static str,
    wasi_args: &[Value],
) -> Result<i64, X> {
    let f = base
        .resolve(wali::WALI_MODULE, &format!("SYS_{name}"))
        .unwrap_or_else(|| panic!("WALI registry is complete: {name}"))
        .clone();
    let vals: Vec<Value> = args.iter().map(|v| Value::I64(*v)).collect();
    match f(c, &vals) {
        Ok(values) => Ok(values.first().and_then(Value::as_i64).unwrap_or(0)),
        Err(HostOutcome::Trap(t)) => Err(Err(HostOutcome::Trap(t))),
        Err(HostOutcome::Suspend(s)) => match s.downcast::<WaliSuspend>() {
            Ok(payload) => match *payload {
                WaliSuspend::Blocked { deadline, .. } => Err(Err(HostOutcome::Suspend(
                    Suspension::new(WaliSuspend::Blocked {
                        module: WASI_MODULE,
                        import: wasi_import,
                        sysno: None,
                        args: wasi_args.to_vec(),
                        deadline,
                    }),
                ))),
                other => Err(Err(HostOutcome::Suspend(Suspension::new(other)))),
            },
            Err(s) => Err(Err(HostOutcome::Suspend(s))),
        },
    }
}

/// Demuxes a raw WALI return into a value or a WASI-errno early return.
fn check(ret: i64) -> Result<i64, X> {
    errno::demux(ret).map_err(fail_x)
}

fn wmem(c: &Caller<'_, WaliContext>) -> Arc<wasm::mem::Memory> {
    c.instance.memory.clone()
}

/// Resolves `(dirfd, guest path)` through the capability table into a host
/// path, rejecting escapes from the preopen subtree.
fn resolve_path(c: C, dirfd: i32, ptr: u32, len: u32) -> Result<(String, u64), X> {
    let mem = wmem(c);
    let raw = mem
        .read(ptr as u64, len as usize)
        .map_err(|_| fail_x(INVAL))?;
    let rel = String::from_utf8(raw).map_err(|_| fail_x(INVAL))?;
    let state = state_mut(c.data).ok_or_else(|| fail_x(NOTCAPABLE))?;
    let pre = state.preopen(dirfd).ok_or_else(|| fail_x(NOTCAPABLE))?;
    if pre.rights & RIGHT_PATH_OPEN == 0 {
        return Err(fail_x(NOTCAPABLE));
    }
    // Sandbox: refuse absolute paths and `..` escapes — this is the WASI
    // filesystem isolation, enforced entirely outside the engine.
    if rel.starts_with('/') {
        return Err(fail_x(NOTCAPABLE));
    }
    let mut depth: i32 = 0;
    for comp in rel.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                depth -= 1;
                if depth < 0 {
                    return Err(fail_x(NOTCAPABLE));
                }
            }
            _ => depth += 1,
        }
    }
    let joined = if pre.host_path == "/" {
        format!("/{rel}")
    } else {
        format!("{}/{}", pre.host_path, rel)
    };
    Ok((joined, pre.rights))
}

/// Scratch linear-memory address where translated paths are staged (the
/// 256..1024 libc reserved zone of the module layout).
const PATH_SCRATCH: u32 = 256;
/// Scratch for struct outputs (timespec/kstat staging).
const STRUCT_SCRATCH: u32 = 768;

fn stage_path(c: C, path: &str) -> Result<u32, X> {
    let mem = wmem(c);
    let mut bytes = path.as_bytes().to_vec();
    bytes.push(0);
    if bytes.len() > 480 {
        return Err(fail_x(INVAL));
    }
    mem.write(PATH_SCRATCH as u64, &bytes)
        .map_err(|_| fail_x(INVAL))?;
    Ok(PATH_SCRATCH)
}

/// Registers the complete WASI preview1 surface over the WALI functions in
/// `linker` (which must already contain them).
pub fn add_wasi_layer(linker: &mut Linker<WaliContext>) {
    // Snapshot of the WALI surface this layer is allowed to use.
    let base = Arc::new(linker.clone());

    macro_rules! wasi {
        ($name:literal, $f:expr) => {{
            let base = Arc::clone(&base);
            linker.func(WASI_MODULE, $name, move |c: C<'_, '_>, args: &[Value]| {
                #[allow(clippy::redundant_closure_call)]
                ($f)(&base, c, args)
            });
        }};
    }

    type B = Arc<Linker<WaliContext>>;

    wasi!("args_sizes_get", |_b: &B, c: C, args: &[Value]| -> X {
        let mem = wmem(c);
        let argc = c.data.args.len() as u32;
        let bytes: u32 = c.data.args.iter().map(|a| a.len() as u32 + 1).sum();
        let _ = mem.store::<4>(a32(args, 0) as u32 as u64, argc.to_le_bytes());
        let _ = mem.store::<4>(a32(args, 1) as u32 as u64, bytes.to_le_bytes());
        ok()
    });

    wasi!("args_get", |_b: &B, c: C, args: &[Value]| -> X {
        let mem = wmem(c);
        let mut argv = a32(args, 0) as u32;
        let mut buf = a32(args, 1) as u32;
        for arg in c.data.args.clone() {
            let _ = mem.store::<4>(argv as u64, buf.to_le_bytes());
            let mut bytes = arg.into_bytes();
            bytes.push(0);
            let _ = mem.write(buf as u64, &bytes);
            buf += bytes.len() as u32;
            argv += 4;
        }
        ok()
    });

    wasi!("environ_sizes_get", |_b: &B, c: C, args: &[Value]| -> X {
        let mem = wmem(c);
        let n = c.data.env.len() as u32;
        let bytes: u32 = c.data.env.iter().map(|a| a.len() as u32 + 1).sum();
        let _ = mem.store::<4>(a32(args, 0) as u32 as u64, n.to_le_bytes());
        let _ = mem.store::<4>(a32(args, 1) as u32 as u64, bytes.to_le_bytes());
        ok()
    });

    wasi!("environ_get", |_b: &B, c: C, args: &[Value]| -> X {
        let mem = wmem(c);
        let mut envp = a32(args, 0) as u32;
        let mut buf = a32(args, 1) as u32;
        for e in c.data.env.clone() {
            let _ = mem.store::<4>(envp as u64, buf.to_le_bytes());
            let mut bytes = e.into_bytes();
            bytes.push(0);
            let _ = mem.write(buf as u64, &bytes);
            buf += bytes.len() as u32;
            envp += 4;
        }
        ok()
    });

    wasi!("clock_time_get", |b: &B, c: C, args: &[Value]| -> X {
        let clock = a32(args, 0);
        let out = a32(args, 2) as u32;
        let ts = STRUCT_SCRATCH;
        match wali_call(
            b,
            c,
            "clock_gettime",
            &[clock as i64, ts as i64],
            "clock_time_get",
            args,
        ) {
            Ok(ret) => {
                if let Err(e) = check(ret) {
                    return e;
                }
                let mem = wmem(c);
                let sec = u64::from_le_bytes(mem.load::<8>(ts as u64).unwrap_or_default());
                let nsec = u64::from_le_bytes(mem.load::<8>(ts as u64 + 8).unwrap_or_default());
                let _ = mem.store::<8>(out as u64, (sec * 1_000_000_000 + nsec).to_le_bytes());
                ok()
            }
            Err(x) => x,
        }
    });

    wasi!("clock_res_get", |_b: &B, c: C, args: &[Value]| -> X {
        let mem = wmem(c);
        let _ = mem.store::<8>(a32(args, 1) as u32 as u64, 1u64.to_le_bytes());
        ok()
    });

    wasi!("fd_close", |b: &B, c: C, args: &[Value]| -> X {
        let fd = a32(args, 0);
        if let Some(s) = state_mut(c.data) {
            s.revoke(fd);
        }
        match wali_call(b, c, "close", &[fd as i64], "fd_close", args) {
            Ok(ret) => match check(ret) {
                Ok(_) => ok(),
                Err(e) => e,
            },
            Err(x) => x,
        }
    });

    wasi!("fd_read", |b: &B, c: C, args: &[Value]| -> X {
        let fd = a32(args, 0);
        if state_mut(c.data)
            .map(|s| s.rights_of(fd) & RIGHT_FD_READ == 0)
            .unwrap_or(true)
        {
            return fail(NOTCAPABLE);
        }
        do_rw(b, c, args, false, "fd_read")
    });

    wasi!("fd_write", |b: &B, c: C, args: &[Value]| -> X {
        let fd = a32(args, 0);
        if state_mut(c.data)
            .map(|s| s.rights_of(fd) & RIGHT_FD_WRITE == 0)
            .unwrap_or(true)
        {
            return fail(NOTCAPABLE);
        }
        do_rw(b, c, args, true, "fd_write")
    });

    wasi!("fd_seek", |b: &B, c: C, args: &[Value]| -> X {
        let fd = a32(args, 0);
        let offset = a64(args, 1);
        let whence = match a32(args, 2) {
            0 => SEEK_SET,
            1 => SEEK_CUR,
            2 => SEEK_END,
            _ => return fail(INVAL),
        };
        match wali_call(
            b,
            c,
            "lseek",
            &[fd as i64, offset, whence as i64],
            "fd_seek",
            args,
        ) {
            Ok(ret) => match check(ret) {
                Ok(pos) => {
                    let mem = wmem(c);
                    let _ = mem.store::<8>(a32(args, 3) as u32 as u64, (pos as u64).to_le_bytes());
                    ok()
                }
                Err(e) => e,
            },
            Err(x) => x,
        }
    });

    wasi!("fd_tell", |b: &B, c: C, args: &[Value]| -> X {
        let fd = a32(args, 0);
        match wali_call(
            b,
            c,
            "lseek",
            &[fd as i64, 0, SEEK_CUR as i64],
            "fd_tell",
            args,
        ) {
            Ok(ret) => match check(ret) {
                Ok(pos) => {
                    let mem = wmem(c);
                    let _ = mem.store::<8>(a32(args, 1) as u32 as u64, (pos as u64).to_le_bytes());
                    ok()
                }
                Err(e) => e,
            },
            Err(x) => x,
        }
    });

    wasi!("fd_fdstat_get", |b: &B, c: C, args: &[Value]| -> X {
        let fd = a32(args, 0);
        let out = a32(args, 1) as u32;
        let st = STRUCT_SCRATCH;
        match wali_call(
            b,
            c,
            "fstat",
            &[fd as i64, st as i64],
            "fd_fdstat_get",
            args,
        ) {
            Ok(ret) => {
                if let Err(e) = check(ret) {
                    return e;
                }
                let mem = wmem(c);
                let mode = u32::from_le_bytes(mem.load::<4>(st as u64 + 16).unwrap_or_default());
                let filetype: u8 = match mode & S_IFMT {
                    S_IFDIR => 3,
                    S_IFREG => 4,
                    wali_abi::flags::S_IFSOCK => 6,
                    _ => 0,
                };
                let rights = state_mut(c.data).map(|s| s.rights_of(fd)).unwrap_or(0);
                let mut img = [0u8; 24];
                img[0] = filetype;
                img[8..16].copy_from_slice(&rights.to_le_bytes());
                img[16..24].copy_from_slice(&rights.to_le_bytes());
                let _ = mem.write(out as u64, &img);
                ok()
            }
            Err(x) => x,
        }
    });

    wasi!("fd_filestat_get", |b: &B, c: C, args: &[Value]| -> X {
        let fd = a32(args, 0);
        let out = a32(args, 1) as u32;
        let st = STRUCT_SCRATCH;
        match wali_call(
            b,
            c,
            "fstat",
            &[fd as i64, st as i64],
            "fd_filestat_get",
            args,
        ) {
            Ok(ret) => {
                if let Err(e) = check(ret) {
                    return e;
                }
                write_wasi_filestat(c, st, out);
                ok()
            }
            Err(x) => x,
        }
    });

    wasi!("fd_prestat_get", |_b: &B, c: C, args: &[Value]| -> X {
        let fd = a32(args, 0);
        let out = a32(args, 1) as u32;
        let Some(state) = state_mut(c.data) else {
            return fail(BADF);
        };
        let Some(pre) = state.preopen(fd) else {
            return fail(BADF);
        };
        let name_len = pre.host_path.len() as u32;
        let mem = wmem(c);
        let _ = mem.store::<4>(out as u64, 0u32.to_le_bytes());
        let _ = mem.store::<4>(out as u64 + 4, name_len.to_le_bytes());
        ok()
    });

    wasi!("fd_prestat_dir_name", |_b: &B, c: C, args: &[Value]| -> X {
        let fd = a32(args, 0);
        let (ptr, len) = (a32(args, 1) as u32, a32(args, 2) as u32);
        let Some(state) = state_mut(c.data) else {
            return fail(BADF);
        };
        let Some(pre) = state.preopen(fd) else {
            return fail(BADF);
        };
        let name = pre.host_path.clone();
        if (len as usize) < name.len() {
            return fail(INVAL);
        }
        let mem = wmem(c);
        let _ = mem.write(ptr as u64, name.as_bytes());
        ok()
    });

    wasi!("fd_readdir", |b: &B, c: C, args: &[Value]| -> X {
        let fd = a32(args, 0);
        if state_mut(c.data)
            .map(|s| s.rights_of(fd) & RIGHT_FD_READDIR == 0)
            .unwrap_or(true)
        {
            return fail(NOTCAPABLE);
        }
        let (buf, buf_len) = (a32(args, 1) as u32, a32(args, 2) as u32);
        let tmp = STRUCT_SCRATCH;
        match wali_call(
            b,
            c,
            "getdents64",
            &[fd as i64, tmp as i64, 240],
            "fd_readdir",
            args,
        ) {
            Ok(ret) => {
                let n = match check(ret) {
                    Ok(n) => n as usize,
                    Err(e) => return e,
                };
                let mem = wmem(c);
                let raw = mem.read(tmp as u64, n).unwrap_or_default();
                let mut out = Vec::new();
                let mut off = 0usize;
                let mut cookie = 1u64;
                while off < raw.len() {
                    let Ok((d, reclen)) = wali_abi::layout::WaliDirent::read_from(&raw[off..])
                    else {
                        break;
                    };
                    // WASI dirent: next(8) ino(8) namlen(4) type(1) pad(3).
                    out.extend_from_slice(&cookie.to_le_bytes());
                    out.extend_from_slice(&d.ino.to_le_bytes());
                    out.extend_from_slice(&(d.name.len() as u32).to_le_bytes());
                    out.push(match d.file_type {
                        4 => 3,
                        8 => 4,
                        10 => 7,
                        _ => 0,
                    });
                    out.extend_from_slice(&[0, 0, 0]);
                    out.extend_from_slice(d.name.as_bytes());
                    off += reclen;
                    cookie += 1;
                }
                let w = out.len().min(buf_len as usize);
                let _ = mem.write(buf as u64, &out[..w]);
                let _ = mem.store::<4>(a32(args, 4) as u32 as u64, (w as u32).to_le_bytes());
                ok()
            }
            Err(x) => x,
        }
    });

    wasi!("fd_sync", |b: &B, c: C, args: &[Value]| -> X {
        let fd = a32(args, 0);
        match wali_call(b, c, "fsync", &[fd as i64], "fd_sync", args) {
            Ok(_) => ok(),
            Err(x) => x,
        }
    });

    wasi!("fd_datasync", |b: &B, c: C, args: &[Value]| -> X {
        let fd = a32(args, 0);
        match wali_call(b, c, "fdatasync", &[fd as i64], "fd_datasync", args) {
            Ok(_) => ok(),
            Err(x) => x,
        }
    });

    wasi!("fd_fdstat_set_flags", |_b: &B,
                                  _c: C,
                                  _args: &[Value]|
     -> X { ok() });

    wasi!("path_open", |b: &B, c: C, args: &[Value]| -> X {
        let dirfd = a32(args, 0);
        let (ptr, len) = (a32(args, 2) as u32, a32(args, 3) as u32);
        let oflags = a32(args, 4);
        let rights = a64(args, 5) as u64;
        let fdflags = a32(args, 7);
        let fd_out = a32(args, 8) as u32;
        let (path, pre_rights) = match resolve_path(c, dirfd, ptr, len) {
            Ok(p) => p,
            Err(x) => return x,
        };
        // Capability monotonicity: requested rights must be a subset.
        if rights & !pre_rights != 0 {
            return fail(NOTCAPABLE);
        }
        let granted = rights & pre_rights;
        let mut flags = 0;
        if oflags & 0x1 != 0 {
            flags |= O_CREAT;
        }
        if oflags & 0x2 != 0 {
            flags |= O_DIRECTORY;
        }
        if oflags & 0x4 != 0 {
            flags |= O_EXCL;
        }
        if oflags & 0x8 != 0 {
            flags |= O_TRUNC;
        }
        if fdflags & 0x1 != 0 {
            flags |= O_APPEND;
        }
        if fdflags & 0x4 != 0 {
            flags |= O_NONBLOCK;
        }
        flags |= if granted & RIGHT_FD_WRITE != 0 {
            O_RDWR
        } else {
            O_RDONLY
        };
        let staged = match stage_path(c, &path) {
            Ok(p) => p,
            Err(x) => return x,
        };
        match wali_call(
            b,
            c,
            "openat",
            &[AT_FDCWD as i64, staged as i64, flags as i64, 0o644],
            "path_open",
            args,
        ) {
            Ok(ret) => match check(ret) {
                Ok(fd) => {
                    if let Some(s) = state_mut(c.data) {
                        s.grant(fd as i32, granted);
                    }
                    let mem = wmem(c);
                    let _ = mem.store::<4>(fd_out as u64, (fd as u32).to_le_bytes());
                    ok()
                }
                Err(e) => e,
            },
            Err(x) => x,
        }
    });

    wasi!("path_filestat_get", |b: &B, c: C, args: &[Value]| -> X {
        let dirfd = a32(args, 0);
        let (ptr, len) = (a32(args, 2) as u32, a32(args, 3) as u32);
        let out = a32(args, 4) as u32;
        let (path, _) = match resolve_path(c, dirfd, ptr, len) {
            Ok(p) => p,
            Err(x) => return x,
        };
        let staged = match stage_path(c, &path) {
            Ok(p) => p,
            Err(x) => return x,
        };
        let st = STRUCT_SCRATCH;
        match wali_call(
            b,
            c,
            "newfstatat",
            &[AT_FDCWD as i64, staged as i64, st as i64, 0],
            "path_filestat_get",
            args,
        ) {
            Ok(ret) => {
                if let Err(e) = check(ret) {
                    return e;
                }
                write_wasi_filestat(c, st, out);
                ok()
            }
            Err(x) => x,
        }
    });

    wasi!("path_create_directory", |b: &B,
                                    c: C,
                                    args: &[Value]|
     -> X {
        path_simple(b, c, args, "mkdirat", &[0o755])
    });
    wasi!("path_remove_directory", |b: &B,
                                    c: C,
                                    args: &[Value]|
     -> X {
        path_simple(
            b,
            c,
            args,
            "unlinkat",
            &[wali_abi::flags::AT_REMOVEDIR as i64],
        )
    });
    wasi!("path_unlink_file", |b: &B, c: C, args: &[Value]| -> X {
        path_simple(b, c, args, "unlinkat", &[0])
    });

    wasi!("path_rename", |b: &B, c: C, args: &[Value]| -> X {
        let (old, _) = match resolve_path(c, a32(args, 0), a32(args, 1) as u32, a32(args, 2) as u32)
        {
            Ok(p) => p,
            Err(x) => return x,
        };
        let (new, _) = match resolve_path(c, a32(args, 3), a32(args, 4) as u32, a32(args, 5) as u32)
        {
            Ok(p) => p,
            Err(x) => return x,
        };
        let p1 = match stage_path(c, &old) {
            Ok(p) => p,
            Err(x) => return x,
        };
        let mem = wmem(c);
        let p2 = p1 + old.len() as u32 + 1;
        let mut bytes = new.into_bytes();
        bytes.push(0);
        let _ = mem.write(p2 as u64, &bytes);
        match wali_call(
            b,
            c,
            "renameat",
            &[AT_FDCWD as i64, p1 as i64, AT_FDCWD as i64, p2 as i64],
            "path_rename",
            args,
        ) {
            Ok(ret) => match check(ret) {
                Ok(_) => ok(),
                Err(e) => e,
            },
            Err(x) => x,
        }
    });

    wasi!("path_readlink", |b: &B, c: C, args: &[Value]| -> X {
        let (path, _) =
            match resolve_path(c, a32(args, 0), a32(args, 1) as u32, a32(args, 2) as u32) {
                Ok(p) => p,
                Err(x) => return x,
            };
        let staged = match stage_path(c, &path) {
            Ok(p) => p,
            Err(x) => return x,
        };
        let (buf, len) = (a32(args, 3) as i64, a32(args, 4) as i64);
        match wali_call(
            b,
            c,
            "readlinkat",
            &[AT_FDCWD as i64, staged as i64, buf, len],
            "path_readlink",
            args,
        ) {
            Ok(ret) => match check(ret) {
                Ok(n) => {
                    let mem = wmem(c);
                    let _ = mem.store::<4>(a32(args, 5) as u32 as u64, (n as u32).to_le_bytes());
                    ok()
                }
                Err(e) => e,
            },
            Err(x) => x,
        }
    });

    wasi!("proc_exit", |b: &B, c: C, args: &[Value]| -> X {
        let code = a32(args, 0);
        match wali_call(b, c, "exit_group", &[code as i64], "proc_exit", args) {
            Ok(_) => ok(),
            Err(x) => x,
        }
    });

    wasi!("random_get", |b: &B, c: C, args: &[Value]| -> X {
        let (buf, len) = (a32(args, 0) as i64, a32(args, 1) as i64);
        match wali_call(b, c, "getrandom", &[buf, len, 0], "random_get", args) {
            Ok(ret) => match check(ret) {
                Ok(_) => ok(),
                Err(e) => e,
            },
            Err(x) => x,
        }
    });

    wasi!("sched_yield", |b: &B, c: C, args: &[Value]| -> X {
        match wali_call(b, c, "sched_yield", &[], "sched_yield", args) {
            Ok(_) => ok(),
            Err(x) => x,
        }
    });

    // poll_oneoff: clock subscriptions sleep via SYS_nanosleep; fd
    // subscriptions report ready immediately.
    wasi!("poll_oneoff", |b: &B, c: C, args: &[Value]| -> X {
        let (subs, events, n) = (
            a32(args, 0) as u32,
            a32(args, 1) as u32,
            a32(args, 2) as u32,
        );
        if n == 0 {
            return fail(INVAL);
        }
        let mem = wmem(c);
        let tag = mem.load::<1>(subs as u64 + 8).map(|b| b[0]).unwrap_or(0);
        if tag == 0 {
            let timeout = u64::from_le_bytes(mem.load::<8>(subs as u64 + 24).unwrap_or_default());
            let ts = STRUCT_SCRATCH;
            let _ = mem.store::<8>(ts as u64, (timeout / 1_000_000_000).to_le_bytes());
            let _ = mem.store::<8>(ts as u64 + 8, (timeout % 1_000_000_000).to_le_bytes());
            if let Err(x) = wali_call(b, c, "nanosleep", &[ts as i64, 0], "poll_oneoff", args) {
                return x;
            }
        }
        let userdata = mem.load::<8>(subs as u64).unwrap_or_default();
        let mut ev = [0u8; 32];
        ev[..8].copy_from_slice(&userdata);
        ev[10] = tag;
        let _ = mem.write(events as u64, &ev);
        let _ = mem.store::<4>(a32(args, 3) as u32 as u64, 1u32.to_le_bytes());
        ok()
    });
}

fn do_rw(
    base: &Arc<Linker<WaliContext>>,
    c: C,
    args: &[Value],
    write: bool,
    import: &'static str,
) -> X {
    let fd = a32(args, 0);
    let (iovs, iovcnt, nout) = (
        a32(args, 1) as i64,
        a32(args, 2) as i64,
        a32(args, 3) as u32,
    );
    // WASI ciovec has the same wasm32 layout as the WALI iovec, so
    // readv/writev pass through directly — layering at its thinnest.
    let name = if write { "writev" } else { "readv" };
    match wali_call(base, c, name, &[fd as i64, iovs, iovcnt], import, args) {
        Ok(ret) => match check(ret) {
            Ok(n) => {
                let mem = wmem(c);
                let _ = mem.store::<4>(nout as u64, (n as u32).to_le_bytes());
                ok()
            }
            Err(e) => e,
        },
        Err(x) => x,
    }
}

fn path_simple(
    base: &Arc<Linker<WaliContext>>,
    c: C,
    args: &[Value],
    syscall: &'static str,
    extra: &[i64],
) -> X {
    let (path, rights) =
        match resolve_path(c, a32(args, 0), a32(args, 1) as u32, a32(args, 2) as u32) {
            Ok(p) => p,
            Err(x) => return x,
        };
    if rights & RIGHT_PATH_WRITE == 0 {
        return fail(NOTCAPABLE);
    }
    let staged = match stage_path(c, &path) {
        Ok(p) => p,
        Err(x) => return x,
    };
    let mut call_args = vec![AT_FDCWD as i64, staged as i64];
    call_args.extend_from_slice(extra);
    match wali_call(base, c, syscall, &call_args, "path_simple", args) {
        Ok(ret) => match check(ret) {
            Ok(_) => ok(),
            Err(e) => e,
        },
        Err(x) => x,
    }
}

/// Converts a WALI `kstat` image (at `st`) into a WASI filestat at `out`.
fn write_wasi_filestat(c: C, st: u32, out: u32) {
    let mem = wmem(c);
    let dev = u64::from_le_bytes(mem.load::<8>(st as u64).unwrap_or_default());
    let ino = u64::from_le_bytes(mem.load::<8>(st as u64 + 8).unwrap_or_default());
    let mode = u32::from_le_bytes(mem.load::<4>(st as u64 + 16).unwrap_or_default());
    let nlink = u32::from_le_bytes(mem.load::<4>(st as u64 + 20).unwrap_or_default());
    let size = u64::from_le_bytes(mem.load::<8>(st as u64 + 48).unwrap_or_default());
    let filetype: u8 = match mode & S_IFMT {
        S_IFDIR => 3,
        S_IFREG => 4,
        _ => 0,
    };
    let mut img = [0u8; 64];
    img[0..8].copy_from_slice(&dev.to_le_bytes());
    img[8..16].copy_from_slice(&ino.to_le_bytes());
    img[16] = filetype;
    img[24..32].copy_from_slice(&(nlink as u64).to_le_bytes());
    img[32..40].copy_from_slice(&size.to_le_bytes());
    let _ = mem.write(out as u64, &img);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rights_narrow_correctly() {
        let mut s = WasiState::with_preopens(&["/tmp"]);
        assert_eq!(s.rights_of(3), RIGHTS_ALL);
        assert_eq!(
            s.rights_of(0) & RIGHT_FD_WRITE,
            RIGHT_FD_WRITE,
            "stdio writable"
        );
        assert_eq!(s.rights_of(9), 0, "unknown fd has no rights");
        s.grant(9, RIGHT_FD_READ);
        assert_eq!(s.rights_of(9), RIGHT_FD_READ);
        s.revoke(9);
        assert_eq!(s.rights_of(9), 0);
    }

    #[test]
    fn preopens_number_from_3() {
        let s = WasiState::with_preopens(&["/a", "/b"]);
        assert_eq!(s.preopen(3).unwrap().host_path, "/a");
        assert_eq!(s.preopen(4).unwrap().host_path, "/b");
        assert!(s.preopen(5).is_none());
    }
}
