//! WASI preview1 implemented **over WALI** (the paper's layering claim).
//!
//! This crate is the `libuvwasi`-analogue of §4.1/Fig. 6: a complete WASI
//! snapshot-preview1 implementation whose every operation bottoms out in
//! WALI syscalls. Crucially, this crate has **no dependency on the kernel
//! model** — check `Cargo.toml`: it sees only the `wali` interface crate
//! and the engine. The capability-based security model (preopened
//! directories, per-descriptor rights) therefore lives *outside* the
//! engine TCB, exactly as the paper advocates: "engines will be more
//! secure if they move their WASI implementations up … layering them
//! over kernel interfaces".
//!
//! The paper ships WASI as a Wasm module compiled against WALI; here it is
//! a Rust module constrained to the same interface, which preserves the
//! property that matters (the implementation can only do what WALI
//! exposes) while staying a library. The substitution is recorded in
//! DESIGN.md.

pub mod compat;
pub mod errno;
pub mod layer;

pub use compat::{Api, Feature};
pub use layer::{add_wasi_layer, init_wasi, WasiState, WASI_MODULE};
