//! WASI errno space and the Linux→WASI translation.
//!
//! WASI renumbers every errno (part of its OS-agnostic design); since this
//! layer runs over WALI, results arrive in Linux numbering and must be
//! translated at the API boundary.

use wali_abi::Errno;

/// WASI `errno::success`.
pub const SUCCESS: i32 = 0;
/// WASI `errno::badf`.
pub const BADF: i32 = 8;
/// WASI `errno::inval`.
pub const INVAL: i32 = 28;
/// WASI `errno::noent`.
pub const NOENT: i32 = 44;
/// WASI `errno::notcapable` — the capability model's own error.
pub const NOTCAPABLE: i32 = 76;

/// Maps a Linux errno onto the WASI preview1 numbering.
pub fn to_wasi(e: Errno) -> i32 {
    match e {
        Errno::E2big => 1,
        Errno::Eacces => 2,
        Errno::Eaddrinuse => 3,
        Errno::Eaddrnotavail => 4,
        Errno::Eafnosupport => 5,
        Errno::Eagain => 6,
        Errno::Ealready => 7,
        Errno::Ebadf => 8,
        Errno::Ebadmsg => 9,
        Errno::Ebusy => 10,
        Errno::Echild => 12,
        Errno::Econnaborted => 13,
        Errno::Econnrefused => 14,
        Errno::Econnreset => 15,
        Errno::Edeadlk => 16,
        Errno::Edestaddrreq => 17,
        Errno::Edom => 18,
        Errno::Eexist => 20,
        Errno::Efault => 21,
        Errno::Efbig => 22,
        Errno::Ehostunreach => 23,
        Errno::Eidrm => 24,
        Errno::Einprogress => 26,
        Errno::Eintr => 27,
        Errno::Einval => 28,
        Errno::Eio => 29,
        Errno::Eisconn => 30,
        Errno::Eisdir => 31,
        Errno::Eloop => 32,
        Errno::Emfile => 33,
        Errno::Emlink => 34,
        Errno::Emsgsize => 35,
        Errno::Enametoolong => 37,
        Errno::Enetdown => 38,
        Errno::Enetunreach => 40,
        Errno::Enfile => 41,
        Errno::Enobufs => 42,
        Errno::Enodev => 43,
        Errno::Enoent => 44,
        Errno::Enoexec => 45,
        Errno::Enolck => 46,
        Errno::Enomem => 48,
        Errno::Enomsg => 49,
        Errno::Enoprotoopt => 50,
        Errno::Enospc => 51,
        Errno::Enosys => 52,
        Errno::Enotconn => 53,
        Errno::Enotdir => 54,
        Errno::Enotempty => 55,
        Errno::Enotsock => 57,
        Errno::Eopnotsupp => 58,
        Errno::Enotty => 59,
        Errno::Enxio => 60,
        Errno::Eoverflow => 61,
        Errno::Eperm => 63,
        Errno::Epipe => 64,
        Errno::Eproto => 65,
        Errno::Eprotonosupport => 66,
        Errno::Eprototype => 67,
        Errno::Erange => 68,
        Errno::Erofs => 69,
        Errno::Espipe => 70,
        Errno::Esrch => 71,
        Errno::Etime => 73,
        Errno::Etimedout => 73,
        Errno::Etxtbsy => 74,
        Errno::Exdev => 75,
        _ => 29, // EIO for everything unmapped
    }
}

/// Maps a raw WALI return value (`>= 0` or `-errno`) onto
/// `Ok(value)`/`Err(wasi_errno)`.
pub fn demux(ret: i64) -> Result<i64, i32> {
    match Errno::demux(ret) {
        Ok(v) => Ok(v),
        Err(e) => Err(to_wasi(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renumbering_differs_from_linux() {
        assert_eq!(to_wasi(Errno::Enoent), 44);
        assert_ne!(to_wasi(Errno::Enoent), Errno::Enoent.raw());
        assert_eq!(to_wasi(Errno::Ebadf), BADF);
        assert_eq!(to_wasi(Errno::Eperm), 63);
    }

    #[test]
    fn demux_translates() {
        assert_eq!(demux(5), Ok(5));
        assert_eq!(demux(Errno::Enoent.as_ret()), Err(NOENT));
    }
}
