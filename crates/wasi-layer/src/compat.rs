//! API feature matrices for the Table 1 porting-effort experiment.
//!
//! The paper's Table 1 shows which popular codebases port to WALI, WASIX
//! and WASI, and which *missing feature* blocks the failing APIs. This
//! module encodes the feature surface of each API; the application suite
//! declares its required features and the matrix is computed, not typed.

use std::collections::BTreeSet;

/// An OS feature a codebase may require.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Feature {
    /// Plain file I/O (open/read/write/seek).
    BasicFs,
    /// POSIX signals (`rt_sigaction`, `kill`).
    Signals,
    /// Descriptor duplication (`dup`/`dup2`).
    Dup,
    /// Permission changes (`chmod`).
    Chmod,
    /// Self-hosting: spawn/exec of further programs.
    SelfHost,
    /// Memory mapping (`mmap`).
    Mmap,
    /// `mremap` growth.
    Mremap,
    /// Users and groups (`getuid`, `setuid`).
    Users,
    /// Socket options (`setsockopt`).
    SockOpt,
    /// Sockets at all.
    Sockets,
    /// Child reaping (`wait4`).
    Wait4,
    /// Process creation (`fork`).
    Fork,
    /// Threads (`clone`).
    Threads,
    /// `sysconf`-style system queries (`sysinfo`/`uname`).
    Sysconf,
    /// Terminal and device control (`ioctl`).
    Ioctl,
    /// `socketpair`.
    SocketPair,
    /// Process groups and sessions.
    ProcessGroups,
    /// Readiness multiplexing (`poll`/`select`).
    Poll,
    /// Pipes.
    Pipes,
    /// Linux-specific surfaces (the whole syscall table, LTP-style).
    LinuxSpecific,
}

/// A Wasm system API under comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Api {
    /// Thin Linux kernel interface (this repository's core).
    Wali,
    /// Wasmer's POSIX-flavoured WASI superset.
    Wasix,
    /// WASI preview1.
    Wasi,
}

impl Api {
    /// All compared APIs, in Table 1 column order.
    pub const ALL: [Api; 3] = [Api::Wali, Api::Wasix, Api::Wasi];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Api::Wali => "WALI",
            Api::Wasix => "WASIX",
            Api::Wasi => "WASI",
        }
    }

    /// The feature set the API supports.
    pub fn features(self) -> BTreeSet<Feature> {
        use Feature::*;
        match self {
            // The union: WALI models the kernel interface itself.
            Api::Wali => [
                BasicFs,
                Signals,
                Dup,
                Chmod,
                SelfHost,
                Mmap,
                Mremap,
                Users,
                SockOpt,
                Sockets,
                Wait4,
                Fork,
                Threads,
                Sysconf,
                Ioctl,
                SocketPair,
                ProcessGroups,
                Poll,
                Pipes,
                LinuxSpecific,
            ]
            .into_iter()
            .collect(),
            // WASIX: WASI plus fork/threads/sockets/pipes and some POSIX,
            // but no signals-complete, mmap, users, ioctl, pgroups …
            Api::Wasix => [
                BasicFs, Dup, Sockets, Wait4, Fork, Threads, Poll, Pipes, Sysconf, SockOpt,
            ]
            .into_iter()
            .collect(),
            // WASI preview1: capability fs + clocks + random only.
            Api::Wasi => [BasicFs, Poll].into_iter().collect(),
        }
    }

    /// Whether this API can run a codebase needing `required`; on failure
    /// returns the first missing feature (Table 1's last column).
    pub fn supports(self, required: &BTreeSet<Feature>) -> Result<(), Feature> {
        let have = self.features();
        match required.iter().find(|f| !have.contains(f)) {
            None => Ok(()),
            Some(f) => Err(*f),
        }
    }
}

/// Human-readable label used in the Table 1 "Missing Features" column.
pub fn feature_label(f: Feature) -> &'static str {
    match f {
        Feature::BasicFs => "file I/O",
        Feature::Signals => "signals",
        Feature::Dup => "dup",
        Feature::Chmod => "chmod",
        Feature::SelfHost => "self-host",
        Feature::Mmap => "mmap",
        Feature::Mremap => "mremap",
        Feature::Users => "users",
        Feature::SockOpt => "sockopt",
        Feature::Sockets => "sockets",
        Feature::Wait4 => "wait4",
        Feature::Fork => "fork",
        Feature::Threads => "threads",
        Feature::Sysconf => "sysconf",
        Feature::Ioctl => "ioctl",
        Feature::SocketPair => "socketpair",
        Feature::ProcessGroups => "pgroups",
        Feature::Poll => "poll",
        Feature::Pipes => "pipes",
        Feature::LinuxSpecific => "linux",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Feature::*;

    #[test]
    fn wali_supports_everything() {
        let all: BTreeSet<Feature> = Api::Wasix
            .features()
            .union(&Api::Wasi.features())
            .copied()
            .collect();
        assert!(Api::Wali.supports(&all).is_ok());
        assert!(Api::Wali
            .supports(&[Signals, Mmap, LinuxSpecific].into_iter().collect())
            .is_ok());
    }

    #[test]
    fn wasi_rejects_signals_with_reason() {
        let need: BTreeSet<Feature> = [BasicFs, Signals].into_iter().collect();
        assert_eq!(Api::Wasi.supports(&need), Err(Signals));
        assert_eq!(Api::Wasix.supports(&need), Err(Signals));
        assert!(Api::Wali.supports(&need).is_ok());
    }

    #[test]
    fn wasix_sits_between() {
        let fork_need: BTreeSet<Feature> = [BasicFs, Fork, Wait4].into_iter().collect();
        assert!(Api::Wasix.supports(&fork_need).is_ok());
        assert!(Api::Wasi.supports(&fork_need).is_err());
        let mmap_need: BTreeSet<Feature> = [Mmap].into_iter().collect();
        assert_eq!(Api::Wasix.supports(&mmap_need), Err(Mmap));
    }

    #[test]
    fn feature_counts_are_ordered() {
        assert!(Api::Wali.features().len() > Api::Wasix.features().len());
        assert!(Api::Wasix.features().len() > Api::Wasi.features().len());
    }
}
