//! The regression corpus, replayed as named tier-1 tests.
//!
//! Each corpus file under `corpus/` pins a bug this repository fixed
//! (or a scenario shape that once exposed one); every entry must replay
//! green through the *full* oracle battery — two bit-deterministic
//! `WALI_WORKERS=1` runs, the `WALI_NO_FUSE`/`WALI_NO_WAITQ`/
//! `WALI_NO_COW`/`WALI_NO_SHARD` toggles, and the `WALI_WORKERS=4` SMP
//! equivalence leg
//! — exactly as `wazi replay <file>` would run it. The process-global
//! page-balance check stays off here (tests share the process); the
//! per-kernel leak audit still runs on every leg.

use fuzzer::artifact::Artifact;
use fuzzer::oracle::OracleConfig;

fn replay_corpus(name: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("corpus")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let art = Artifact::parse(&text).unwrap_or_else(|e| panic!("cannot parse {name}: {e}"));
    let cfg = OracleConfig {
        page_check: false,
        ..OracleConfig::default()
    };
    if let Err(f) = fuzzer::replay(&art, &cfg) {
        panic!("corpus entry {name} no longer replays green: {f}");
    }
}

/// The fuzzer-found false deadlock: a `wait4` parent's wakeup was held
/// by a draining worker (kernel woken set already cleared, run queues
/// not yet fed) while another worker's quiescence check fired.
#[test]
fn corpus_deadlock_vs_drain_replays_green() {
    replay_corpus("deadlock-vs-drain.txt");
}

/// Edge-triggered and oneshot epoll consumes under SMP: the PR-4
/// wakeup-racing-park requeue and scan-then-subscribe atomicity races.
#[test]
fn corpus_epoll_edge_oneshot_replays_green() {
    replay_corpus("epoll-edge-oneshot.txt");
}

/// Victims, handled-signal kills and futex set/wait: the PR-3
/// woken_retry false deadlock and the mid-slice-death wait-subscription
/// leak.
#[test]
fn corpus_signal_victim_futex_replays_green() {
    replay_corpus("signal-victim-futex.txt");
}

/// Two epoll-churn consumes on one socket: the emitter's post-consume
/// SHUT_WR raced a still-pending producer (EPIPE'd its writes) and
/// deadlocked the second consume. Half-closing is now restricted to a
/// channel's sole consume op.
#[test]
fn corpus_churn_shutdown_late_producer_replays_green() {
    replay_corpus("churn-shutdown-late-producer.txt");
}
