//! End-to-end proof the net is live: re-introduce a fixed race through
//! the `scan-split` fault gate, watch an oracle catch it, shrink the
//! scenario, and verify the shrunk artifact still reproduces.
//!
//! This lives in its own integration-test binary (its own process): the
//! fault gate is process-global, and no other test may run with the
//! race armed.

use apps::scenario::{Mechanism, Op, Scenario};
use fuzzer::oracle::{self, FailureKind, OracleConfig};

/// A scenario tuned to the re-opened window: four single-token pipes,
/// each consumed via level-triggered `epoll_wait` by its own thread
/// while four producer threads in a sibling process race the writes.
/// Any lost wakeup parks a consumer forever and the SMP run reports a
/// deadlock. (Under one worker the split halves cannot interleave, so
/// the cooperative legs stay green — the determinism oracle is not the
/// one that fires.)
fn race_bait() -> Scenario {
    use apps::scenario::{ChanKind, Proc, ProcKind, ThreadPlan};
    let threads = |n: usize, phases: usize| {
        vec![
            ThreadPlan {
                phases: vec![Vec::new(); phases]
            };
            n
        ]
    };
    let mut root = Proc {
        kind: ProcKind::Normal,
        children: vec![1],
        handles: Vec::new(),
        threads: threads(4, 2),
    };
    let mut consumer = Proc {
        kind: ProcKind::Normal,
        children: Vec::new(),
        handles: Vec::new(),
        threads: threads(4, 2),
    };
    for c in 0..4 {
        root.threads[c].phases[0].push(Op::Produce { chan: c, tokens: 1 });
        consumer.threads[c].phases[1].push(Op::Consume {
            chan: c,
            tokens: 1,
            via: Mechanism::EpollLt,
        });
    }
    let scn = Scenario {
        chans: vec![ChanKind::Pipe; 4],
        futex_words: 0,
        procs: vec![root, consumer],
    };
    scn.validate().expect("race bait is structurally valid");
    scn
}

#[test]
fn scan_split_fault_is_caught_and_shrunk() {
    // The planted race lives in the big-lock epoll scan; route the
    // racing pipe writes through that same path (not the sharded fast
    // path, which changes the window's timing and the shrunk repro
    // odds). Likewise pin the stack interpreter tier: the register
    // tier's faster dispatch narrows the scan window the planted race
    // needs, and this test is about the catch-and-shrink machinery,
    // not the interp tier. Own-process binary, so the env vars are
    // safe to set.
    std::env::set_var("WALI_NO_SHARD", "1");
    std::env::set_var("WALI_NO_REGIR", "1");
    wali::fault::set_scan_split(true);
    let cfg = OracleConfig {
        check_toggles: false, // the race is SMP-only; spend runs there
        page_check: false,
        ..OracleConfig::default()
    };
    let scn = race_bait();

    // The race is probabilistic per attempt; the widened window makes
    // it land well within this budget.
    let mut caught = None;
    for attempt in 0..400 {
        if let Err(f) = oracle::check(&scn, &cfg) {
            caught = Some((attempt, f));
            break;
        }
    }
    let (attempt, failure) = caught.expect("armed scan-split race never caught in 400 attempts");
    assert_eq!(
        failure.kind,
        FailureKind::RunError,
        "expected the liveness oracle (deadlock) to fire, got {failure}"
    );
    assert!(
        failure.detail.contains("Deadlock"),
        "lost wakeup should surface as a detected deadlock: {failure}"
    );
    println!("caught on attempt {attempt}: {failure}");

    // Shrink with retries: one green run proves nothing for a race.
    let fails = |s: &Scenario| (0..25).any(|_| oracle::check(s, &cfg).is_err());
    let (small, evals) = shrink_with(&scn, fails);
    println!(
        "shrunk from {} to {} in {evals} evaluations",
        fuzzer::shrink::size(&scn),
        fuzzer::shrink::size(&small)
    );
    assert!(fuzzer::shrink::size(&small) < fuzzer::shrink::size(&scn));
    // The shrunk scenario is the *minimal* — and therefore least
    // probable — reproducer, and on a loaded 1-core host the per-run
    // repro odds sag further; give the final proof a generous budget.
    assert!(
        (0..150).any(|_| oracle::check(&small, &cfg).is_err()),
        "shrunk scenario no longer reproduces"
    );

    // Disarm and confirm the same scenario runs green again — the
    // failure was the injected fault, not the scenario.
    wali::fault::set_scan_split(false);
    oracle::check(&small, &cfg).expect("disarmed gate must run green");
}

fn shrink_with(scn: &Scenario, mut fails: impl FnMut(&Scenario) -> bool) -> (Scenario, usize) {
    fuzzer::shrink::shrink(scn, 60, &mut fails)
}
