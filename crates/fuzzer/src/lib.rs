//! Scenario fuzzer for the WALI runtime.
//!
//! Pipeline: a seeded [`rng::SplitMix64`] drives [`gen::generate`] to
//! build a random — but provably deadlock-free — process/IPC DAG;
//! [`oracle::check`] executes it under the scheduler/backing matrix and
//! judges determinism, toggle equivalence and liveness; on failure
//! [`shrink::shrink`] cuts the scenario down while the failure still
//! reproduces and the result is written as a replayable
//! [`artifact::Artifact`]. The `wazi` binary (`wazi fuzz`,
//! `wazi replay`, `wazi gen`) fronts the same entry points; the
//! regression corpus under `corpus/` replays through them as named
//! tier-1 tests.

pub mod artifact;
pub mod gen;
pub mod oracle;
pub mod rng;
pub mod shrink;

use artifact::Artifact;
use oracle::{Failure, OracleConfig};

/// Evaluation budget for one shrink (oracle batteries, not runs).
pub const SHRINK_BUDGET: usize = 200;

/// A failure the fuzzer found, shrunk and packaged.
#[derive(Debug)]
pub struct Found {
    /// The seed whose scenario failed.
    pub seed: u64,
    /// The failure observed on the *original* generated scenario.
    pub failure: Failure,
    /// The shrunk artifact (scenario may be much smaller than the
    /// seed's).
    pub artifact: Artifact,
    /// Oracle batteries spent shrinking.
    pub shrink_evals: usize,
}

/// Generates and checks one seed. `Ok` means every oracle passed.
pub fn run_seed(seed: u64, cfg: &OracleConfig) -> Result<(), Failure> {
    oracle::check(&gen::generate(seed), cfg)
}

/// Replays an artifact's scenario (validating it first — artifacts are
/// hand-editable text) under the full oracle battery.
pub fn replay(art: &Artifact, cfg: &OracleConfig) -> Result<(), Failure> {
    if let Err(e) = art.scenario.validate() {
        return Err(Failure {
            kind: oracle::FailureKind::RunError,
            config: "validate".into(),
            detail: e,
        });
    }
    oracle::check(&art.scenario, cfg)
}

/// Fuzzes `count` seeds starting at `start`. Stops at the first failure
/// and returns it shrunk; `retries` extra oracle attempts classify a
/// candidate as still-failing during shrinking (raise it above 1 when
/// hunting a nondeterministic race, where one green run proves
/// nothing).
pub fn fuzz(
    start: u64,
    count: u64,
    cfg: &OracleConfig,
    retries: u32,
    mut progress: impl FnMut(u64),
) -> Option<Found> {
    for i in 0..count {
        let seed = start.wrapping_add(i);
        progress(seed);
        let Err(failure) = run_seed(seed, cfg) else {
            continue;
        };
        let scn = gen::generate(seed);
        let fails = |s: &apps::scenario::Scenario| -> bool {
            (0..retries.max(1)).any(|_| oracle::check(s, cfg).is_err())
        };
        let (small, shrink_evals) = shrink::shrink(&scn, SHRINK_BUDGET, &mut |s| fails(s));
        return Some(Found {
            seed,
            failure: failure.clone(),
            artifact: Artifact {
                seed,
                failure: failure.to_string(),
                scenario: small,
            },
            shrink_evals,
        });
    }
    None
}
