//! The fuzzer's only randomness source: splitmix64.
//!
//! Std-only (the workspace bans external crates), tiny, and — the
//! property everything else here leans on — *reproducible*: the whole
//! scenario is a pure function of the seed, so an artifact that records
//! just `seed` can regenerate the exact DAG years later.

/// splitmix64 (Steele, Lea & Flood): one 64-bit word of state, one
/// add-xor-shift-multiply avalanche per output.
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the stream. Every seed gives an independent sequence.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..n` (`n > 0`). The modulo bias over a 64-bit
    /// stream is ~`n/2^64` — irrelevant for scenario shaping.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// A `num`-in-`den` coin flip.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // First outputs for seed 1234567, per the published algorithm.
        let mut r = SplitMix64::new(1234567);
        let a = r.next_u64();
        let b = r.next_u64();
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(a, r2.next_u64());
        assert_eq!(b, r2.next_u64());
        assert_ne!(a, b);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(42);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
