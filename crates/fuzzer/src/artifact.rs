//! Replayable failure artifacts: a line-oriented text codec.
//!
//! A failing (shrunk) scenario is written as plain text so it can be
//! checked into the regression corpus, diffed in review, and replayed
//! byte-identically (`wazi replay <file>`). The seed alone is *not*
//! enough to replay: shrinking edits the scenario past what the seed
//! regenerates, so the artifact carries the full op list. The format is
//! versioned, hand-editable, and `#`-comments / blank lines are
//! ignored.
//!
//! ```text
//! wali-fuzz v1
//! # optional metadata
//! seed 42
//! failure ToggleMismatch under [workers=4]: …
//! chans Pipe EventFd
//! words 1
//! procs 2
//! proc 0 kind=Normal children=1 handles=10
//! thread 0 0 phases=3
//! op 0 0 0 produce 0 2
//! op 0 0 2 consume 0 2 epoll-lt
//! ```

use apps::scenario::{ChanKind, Mechanism, Op, Proc, ProcKind, Scenario, ThreadPlan};

const HEADER: &str = "wali-fuzz v1";

/// A failure (or corpus entry) on disk: the scenario plus provenance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Artifact {
    /// The generator seed it came from (0 when hand-written).
    pub seed: u64,
    /// One-line failure description (empty for corpus entries that
    /// document a *fixed* bug and must replay green).
    pub failure: String,
    /// The scenario to replay.
    pub scenario: Scenario,
}

fn mech_name(m: Mechanism) -> &'static str {
    match m {
        Mechanism::Direct => "direct",
        Mechanism::Poll => "poll",
        Mechanism::Ppoll => "ppoll",
        Mechanism::EpollLt => "epoll-lt",
        Mechanism::EpollEt => "epoll-et",
        Mechanism::EpollOneshot => "epoll-oneshot",
        Mechanism::EpollChurn => "epoll-churn",
        Mechanism::Ring => "ring",
    }
}

fn mech_parse(s: &str) -> Result<Mechanism, String> {
    Ok(match s {
        "direct" => Mechanism::Direct,
        "poll" => Mechanism::Poll,
        "ppoll" => Mechanism::Ppoll,
        "epoll-lt" => Mechanism::EpollLt,
        "epoll-et" => Mechanism::EpollEt,
        "epoll-oneshot" => Mechanism::EpollOneshot,
        "epoll-churn" => Mechanism::EpollChurn,
        "ring" => Mechanism::Ring,
        _ => return Err(format!("unknown mechanism `{s}`")),
    })
}

fn list(xs: &[impl std::fmt::Display]) -> String {
    if xs.is_empty() {
        "-".into()
    } else {
        xs.iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn parse_list<T: std::str::FromStr>(s: &str) -> Result<Vec<T>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|x| x.parse().map_err(|_| format!("bad list item `{x}`")))
        .collect()
}

impl Artifact {
    /// Serializes to the versioned text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let scn = &self.scenario;
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("seed {}\n", self.seed));
        if !self.failure.is_empty() {
            // The failure text is free-form but must stay one line.
            out.push_str(&format!("failure {}\n", self.failure.replace('\n', " | ")));
        }
        let kinds: Vec<&str> = scn
            .chans
            .iter()
            .map(|k| match k {
                ChanKind::Pipe => "Pipe",
                ChanKind::Sock => "Sock",
                ChanKind::EventFd => "EventFd",
            })
            .collect();
        out.push_str(&format!(
            "chans {}\n",
            if kinds.is_empty() {
                "-".into()
            } else {
                kinds.join(" ")
            }
        ));
        out.push_str(&format!("words {}\n", scn.futex_words));
        out.push_str(&format!("procs {}\n", scn.procs.len()));
        for (pi, p) in scn.procs.iter().enumerate() {
            let kind = match p.kind {
                ProcKind::Normal => "Normal",
                ProcKind::Victim => "Victim",
                ProcKind::VforkExec => "VforkExec",
            };
            out.push_str(&format!(
                "proc {pi} kind={kind} children={} handles={}\n",
                list(&p.children),
                list(&p.handles)
            ));
            for (ti, t) in p.threads.iter().enumerate() {
                out.push_str(&format!("thread {pi} {ti} phases={}\n", t.phases.len()));
                for (ph, ops) in t.phases.iter().enumerate() {
                    for op in ops {
                        let body = match *op {
                            Op::Produce { chan, tokens } => format!("produce {chan} {tokens}"),
                            Op::Consume { chan, tokens, via } => {
                                format!("consume {chan} {tokens} {}", mech_name(via))
                            }
                            Op::FutexSet { word } => format!("futex-set {word}"),
                            Op::FutexWait { word } => format!("futex-wait {word}"),
                            Op::Sleep { ns } => format!("sleep {ns}"),
                            Op::Kill { target, signo } => format!("kill {target} {signo}"),
                            Op::AwaitSignal { signo } => format!("await {signo}"),
                        };
                        out.push_str(&format!("op {pi} {ti} {ph} {body}\n"));
                    }
                }
            }
        }
        out
    }

    /// Parses the text format, rejecting structural garbage early (the
    /// scenario itself is additionally `validate`d by the replayer).
    pub fn parse(text: &str) -> Result<Artifact, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        if lines.next() != Some(HEADER) {
            return Err(format!("missing `{HEADER}` header"));
        }
        let mut seed = 0u64;
        let mut failure = String::new();
        let mut chans = Vec::new();
        let mut words = 0usize;
        let mut procs: Vec<Proc> = Vec::new();
        for line in lines {
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "seed" => seed = rest.parse().map_err(|_| format!("bad seed `{rest}`"))?,
                "failure" => failure = rest.to_string(),
                "chans" => {
                    if rest != "-" {
                        for k in rest.split_whitespace() {
                            chans.push(match k {
                                "Pipe" => ChanKind::Pipe,
                                "Sock" => ChanKind::Sock,
                                "EventFd" => ChanKind::EventFd,
                                _ => return Err(format!("unknown chan kind `{k}`")),
                            });
                        }
                    }
                }
                "words" => words = rest.parse().map_err(|_| format!("bad words `{rest}`"))?,
                "procs" => {
                    let n: usize = rest.parse().map_err(|_| format!("bad procs `{rest}`"))?;
                    procs = (0..n).map(|_| Proc::leaf(ProcKind::Normal)).collect();
                    for p in &mut procs {
                        p.threads.clear();
                    }
                }
                "proc" => {
                    let f: Vec<&str> = rest.split_whitespace().collect();
                    let [idx, kind, children, handles] = f[..] else {
                        return Err(format!("bad proc line `{line}`"));
                    };
                    let pi: usize = idx.parse().map_err(|_| format!("bad proc idx `{idx}`"))?;
                    let p = procs.get_mut(pi).ok_or(format!("proc {pi} out of range"))?;
                    p.kind = match kind.strip_prefix("kind=") {
                        Some("Normal") => ProcKind::Normal,
                        Some("Victim") => ProcKind::Victim,
                        Some("VforkExec") => ProcKind::VforkExec,
                        _ => return Err(format!("bad kind in `{line}`")),
                    };
                    p.children = parse_list(
                        children
                            .strip_prefix("children=")
                            .ok_or(format!("bad children in `{line}`"))?,
                    )?;
                    p.handles = parse_list(
                        handles
                            .strip_prefix("handles=")
                            .ok_or(format!("bad handles in `{line}`"))?,
                    )?;
                }
                "thread" => {
                    let f: Vec<&str> = rest.split_whitespace().collect();
                    let [pidx, tidx, nphases] = f[..] else {
                        return Err(format!("bad thread line `{line}`"));
                    };
                    let pi: usize = pidx.parse().map_err(|_| format!("bad idx `{pidx}`"))?;
                    let ti: usize = tidx.parse().map_err(|_| format!("bad idx `{tidx}`"))?;
                    let n: usize = nphases
                        .strip_prefix("phases=")
                        .and_then(|s| s.parse().ok())
                        .ok_or(format!("bad phases in `{line}`"))?;
                    let p = procs.get_mut(pi).ok_or(format!("proc {pi} out of range"))?;
                    if ti != p.threads.len() {
                        return Err(format!("thread {pi}.{ti} declared out of order"));
                    }
                    p.threads.push(ThreadPlan {
                        phases: vec![Vec::new(); n],
                    });
                }
                "op" => {
                    let f: Vec<&str> = rest.split_whitespace().collect();
                    if f.len() < 4 {
                        return Err(format!("bad op line `{line}`"));
                    }
                    let pi: usize = f[0].parse().map_err(|_| format!("bad idx `{}`", f[0]))?;
                    let ti: usize = f[1].parse().map_err(|_| format!("bad idx `{}`", f[1]))?;
                    let ph: usize = f[2].parse().map_err(|_| format!("bad idx `{}`", f[2]))?;
                    let num = |i: usize| -> Result<u64, String> {
                        f.get(i)
                            .and_then(|s| s.parse().ok())
                            .ok_or(format!("bad operand in `{line}`"))
                    };
                    let op = match f[3] {
                        "produce" => Op::Produce {
                            chan: num(4)? as usize,
                            tokens: num(5)? as u32,
                        },
                        "consume" => Op::Consume {
                            chan: num(4)? as usize,
                            tokens: num(5)? as u32,
                            via: mech_parse(f.get(6).copied().unwrap_or(""))?,
                        },
                        "futex-set" => Op::FutexSet {
                            word: num(4)? as usize,
                        },
                        "futex-wait" => Op::FutexWait {
                            word: num(4)? as usize,
                        },
                        "sleep" => Op::Sleep { ns: num(4)? },
                        "kill" => Op::Kill {
                            target: num(4)? as usize,
                            signo: num(5)? as u32,
                        },
                        "await" => Op::AwaitSignal {
                            signo: num(4)? as u32,
                        },
                        other => return Err(format!("unknown op `{other}`")),
                    };
                    let slot = procs
                        .get_mut(pi)
                        .and_then(|p| p.threads.get_mut(ti))
                        .and_then(|t| t.phases.get_mut(ph))
                        .ok_or(format!("op at undeclared slot {pi}.{ti}.{ph}"))?;
                    slot.push(op);
                }
                other => return Err(format!("unknown directive `{other}`")),
            }
        }
        if procs.is_empty() {
            return Err("no `procs` section".into());
        }
        Ok(Artifact {
            seed,
            failure,
            scenario: Scenario {
                chans,
                futex_words: words,
                procs,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn round_trips_generated_scenarios() {
        for seed in 0..100u64 {
            let scenario = generate(seed);
            let art = Artifact {
                seed,
                failure: format!("demo failure for seed {seed}"),
                scenario,
            };
            let text = art.to_text();
            let back = Artifact::parse(&text).expect("parse back");
            assert_eq!(art, back, "seed {seed}\n{text}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Artifact::parse("").is_err());
        assert!(Artifact::parse("wali-fuzz v2\nprocs 1").is_err());
        assert!(Artifact::parse("wali-fuzz v1\nprocs 1\nop 0 0 0 jump 1").is_err());
        assert!(Artifact::parse("wali-fuzz v1\nprocs 1\nop 0 0 0 sleep 5").is_err());
        // thread undeclared
    }
}
