//! `wazi` — the scenario fuzzer's command-line front end.
//!
//! ```text
//! wazi fuzz   [--seeds N] [--seed S] [--smp-workers W] [--no-smp]
//!             [--no-toggles] [--fault scan-split] [--retries K]
//!             [--out DIR]
//! wazi replay <artifact.txt> [--fault scan-split] [--smp-workers W]
//! wazi gen    --seed S
//! ```
//!
//! `fuzz` walks seeds from `--seed` (or `WALI_FUZZ_SEED`, default 1),
//! running each generated scenario through the oracle battery; the
//! first failure is shrunk and written to `--out` (default
//! `fuzz-artifacts/`) as `seed-<S>.txt`, exit code 1. A clean sweep
//! exits 0. `replay` re-runs a written artifact (exit 0 iff green) and
//! `gen` prints a seed's scenario in artifact form — the way corpus
//! entries are authored. `--fault scan-split` arms the fault-injection
//! gate (see `wali::fault`) so CI can prove the net catches a
//! re-introduced race. The process-global resident-page balance check
//! is always on here: the CLI owns the whole process.

use fuzzer::artifact::Artifact;
use fuzzer::oracle::OracleConfig;

fn usage() -> ! {
    eprintln!(
        "usage: wazi fuzz [--seeds N] [--seed S] [--smp-workers W] [--no-smp] \
         [--no-toggles] [--fault scan-split] [--retries K] [--out DIR]\n\
         \x20      wazi replay <artifact.txt> [--fault scan-split] [--smp-workers W]\n\
         \x20      wazi gen --seed S"
    );
    std::process::exit(2)
}

struct Args {
    positional: Vec<String>,
    seeds: u64,
    seed: u64,
    smp_workers: usize,
    no_smp: bool,
    no_toggles: bool,
    retries: u32,
    out: String,
}

fn parse_args(argv: &[String]) -> Args {
    let env_seed = std::env::var("WALI_FUZZ_SEED")
        .ok()
        .and_then(|s| s.parse().ok());
    let mut a = Args {
        positional: Vec::new(),
        seeds: 200,
        seed: env_seed.unwrap_or(1),
        smp_workers: 4,
        no_smp: false,
        no_toggles: false,
        retries: 1,
        out: "fuzz-artifacts".into(),
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--seeds" => a.seeds = val("--seeds").parse().unwrap_or_else(|_| usage()),
            "--seed" => a.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--smp-workers" => {
                a.smp_workers = val("--smp-workers").parse().unwrap_or_else(|_| usage())
            }
            "--retries" => a.retries = val("--retries").parse().unwrap_or_else(|_| usage()),
            "--out" => a.out = val("--out"),
            "--no-smp" => a.no_smp = true,
            "--no-toggles" => a.no_toggles = true,
            "--fault" => match val("--fault").as_str() {
                "scan-split" => wali::fault::set_scan_split(true),
                other => {
                    eprintln!("unknown fault gate `{other}`");
                    usage()
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag `{flag}`");
                usage()
            }
            pos => a.positional.push(pos.to_string()),
        }
    }
    a
}

fn oracle_config(a: &Args) -> OracleConfig {
    OracleConfig {
        smp_workers: a.smp_workers,
        check_smp: !a.no_smp,
        check_toggles: !a.no_toggles,
        page_check: true, // the CLI owns the process: the balance must hold
    }
}

fn cmd_fuzz(a: &Args) -> i32 {
    let cfg = oracle_config(a);
    println!(
        "fuzzing {} seed(s) from {} (smp={}, toggles={}, retries={})",
        a.seeds, a.seed, !a.no_smp, !a.no_toggles, a.retries
    );
    let mut done = 0u64;
    let found = fuzzer::fuzz(a.seed, a.seeds, &cfg, a.retries, |_seed| {
        done += 1;
        if done.is_multiple_of(25) {
            println!("  … {done} scenarios checked");
        }
    });
    match found {
        None => {
            println!("PASS: {done} scenarios, every oracle green");
            0
        }
        Some(found) => {
            println!(
                "FAIL: seed {} — {}\n  shrunk in {} oracle evaluations: {} procs, artifact below",
                found.seed,
                found.failure,
                found.shrink_evals,
                found.artifact.scenario.procs.len()
            );
            let dir = std::path::Path::new(&a.out);
            let path = dir.join(format!("seed-{}.txt", found.seed));
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(&path, found.artifact.to_text()))
            {
                eprintln!("could not write artifact {}: {e}", path.display());
            } else {
                println!("artifact: {}", path.display());
            }
            print!("{}", found.artifact.to_text());
            1
        }
    }
}

fn cmd_replay(a: &Args) -> i32 {
    let [path] = &a.positional[..] else { usage() };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 2;
        }
    };
    let art = match Artifact::parse(&text) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return 2;
        }
    };
    match fuzzer::replay(&art, &oracle_config(a)) {
        Ok(()) => {
            println!("PASS: {path} replays green");
            0
        }
        Err(f) => {
            println!("FAIL: {path}: {f}");
            1
        }
    }
}

fn cmd_gen(a: &Args) -> i32 {
    let art = Artifact {
        seed: a.seed,
        failure: String::new(),
        scenario: fuzzer::gen::generate(a.seed),
    };
    print!("{}", art.to_text());
    0
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else { usage() };
    let a = parse_args(&argv[1..]);
    let code = match cmd.as_str() {
        "fuzz" => cmd_fuzz(&a),
        "replay" => cmd_replay(&a),
        "gen" => cmd_gen(&a),
        _ => usage(),
    };
    std::process::exit(code)
}
