//! The three oracles: bit-determinism, toggle equivalence, liveness.
//!
//! Each scenario is executed several times under different
//! scheduler/backing configurations and every run is judged three ways:
//!
//! 1. **Bit-determinism** — two `WALI_WORKERS=1` runs must agree on the
//!    exact console bytes, per-task ending order (tids included),
//!    scheduler counters and syscall totals. The cooperative scheduler
//!    promises bit-for-bit replay; any divergence is a hidden source of
//!    nondeterminism (wall clock, hash order, …).
//! 2. **Toggle equivalence** — `WALI_NO_FUSE`, `WALI_NO_REGIR`,
//!    `WALI_NO_WAITQ`, `WALI_NO_COW`, `WALI_NO_SHARD`,
//!    `WALI_NO_READY`, `WALI_NO_RING` and
//!    `WALI_WORKERS=4` must leave the *observable* outcome unchanged. Single-worker toggles are compared on the
//!    order-insensitive [`wali::Observables`] too (their schedule legitimately
//!    shifts when blocking behavior changes); the model oracle below
//!    pins the exact content.
//! 3. **Liveness / leaks** — every run must terminate (the runners
//!    detect true deadlock on a quiesced virtual clock), match the
//!    scenario's own predicted console multiset and exit code, and
//!    leave the kernel clean: no live task, open pipe/socket/epoll,
//!    wait subscription or futex waiter at teardown, and (when the
//!    process-global page check is enabled) no resident page either.
//!
//! A scenario passes only if every run under every configuration passes
//! all applicable checks.

use apps::scenario::Scenario;
use wali::runner::TaskEnd;
use wali::testkit::{run_modules, RunReport, RunnerOpts};

/// How thoroughly to exercise one scenario.
#[derive(Clone, Copy, Debug)]
pub struct OracleConfig {
    /// Worker-pool width for the SMP equivalence run.
    pub smp_workers: usize,
    /// Run the SMP equivalence leg at all.
    pub check_smp: bool,
    /// Run the single-worker toggle legs (fuse / regir / waitq / cow /
    /// shard / ready / ring).
    pub check_toggles: bool,
    /// Compare process-global resident pages before/after. Only valid
    /// when nothing else in the process touches guest memory
    /// concurrently (the CLI); parallel test harnesses must leave it
    /// off.
    pub page_check: bool,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            smp_workers: 4,
            check_smp: true,
            check_toggles: true,
            page_check: false,
        }
    }
}

/// Which oracle rejected the scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailureKind {
    /// The runner itself failed (deadlock detection, trap, link error).
    RunError,
    /// Output disagreed with the scenario's own prediction.
    ModelMismatch,
    /// Two single-worker runs disagreed.
    Determinism,
    /// Observables changed under a toggle or worker-count change.
    ToggleMismatch,
    /// Kernel teardown audit (or the page balance) found residue.
    Leak,
}

/// A failed oracle check: what failed, under which configuration, and a
/// human-readable diff.
#[derive(Clone, Debug)]
pub struct Failure {
    /// Which oracle fired.
    pub kind: FailureKind,
    /// The run configuration under which it fired.
    pub config: String,
    /// What differed or leaked.
    pub detail: String,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?} under [{}]: {}",
            self.kind, self.config, self.detail
        )
    }
}

fn fail(kind: FailureKind, config: &str, detail: String) -> Failure {
    Failure {
        kind,
        config: config.into(),
        detail,
    }
}

/// Truncates long diffs so artifacts stay readable.
fn clip(s: String) -> String {
    const MAX: usize = 600;
    if s.len() <= MAX {
        s
    } else {
        let mut end = MAX;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}… ({} bytes total)", &s[..end], s.len())
    }
}

/// One oracle-checked run: executes `scn`'s modules under `opts`,
/// requiring termination, a clean teardown, and agreement with the
/// model's predicted console multiset and root exit code.
fn checked_run(
    scn: &Scenario,
    modules: &apps::scenario::ScenarioModules,
    opts: RunnerOpts,
    config: &str,
) -> Result<RunReport, Failure> {
    let report = run_modules(
        &modules.programs(),
        apps::scenario::MAIN_PATH,
        &["app"],
        &[],
        opts,
    )
    .map_err(|e| fail(FailureKind::RunError, config, clip(format!("{e:?}"))))?;
    if !report.leaks.is_clean() {
        return Err(fail(FailureKind::Leak, config, report.leaks.describe()));
    }
    let obs = report.outcome.observables();
    let expect_console = scn.expected_console();
    if obs.console_lines != expect_console {
        return Err(fail(
            FailureKind::ModelMismatch,
            config,
            clip(format!(
                "console {:?} != model {:?}",
                obs.console_lines, expect_console
            )),
        ));
    }
    let expect_exit = TaskEnd::Exited(scn.expected_main_exit());
    match &report.outcome.main_exit {
        Some(e) if *e == expect_exit => {}
        other => {
            return Err(fail(
                FailureKind::ModelMismatch,
                config,
                format!("main exit {other:?} != model {expect_exit:?}"),
            ));
        }
    }
    Ok(report)
}

/// The exact replay fingerprint of a single-worker run: everything two
/// `WALI_WORKERS=1` runs must agree on bit-for-bit.
fn fingerprint(report: &RunReport) -> String {
    let o = &report.outcome;
    format!(
        "console={:?} ends={:?} sched={:?} syscalls={} peak_pages={} peak_resident={}",
        String::from_utf8_lossy(&o.console),
        o.ends,
        o.sched,
        o.trace.total_syscalls(),
        o.peak_memory_pages,
        o.peak_resident_pages,
    )
}

/// Runs the full oracle battery on an already-validated scenario.
pub fn check(scn: &Scenario, cfg: &OracleConfig) -> Result<(), Failure> {
    let pages_before = wasm::mem::global_resident_pages();
    let modules = scn.emit();

    // Oracle 1+3: deterministic baseline, twice.
    let base = checked_run(scn, &modules, RunnerOpts::single(), "workers=1")?;
    let again = checked_run(scn, &modules, RunnerOpts::single(), "workers=1 (replay)")?;
    let (fp_a, fp_b) = (fingerprint(&base), fingerprint(&again));
    if fp_a != fp_b {
        return Err(fail(
            FailureKind::Determinism,
            "workers=1 x2",
            clip(format!("run A {fp_a}\nrun B {fp_b}")),
        ));
    }
    let baseline_obs = base.outcome.observables();

    // Oracle 2: single-worker toggles.
    if cfg.check_toggles {
        let toggles: [(&str, RunnerOpts); 7] = [
            (
                "workers=1 no-fuse",
                RunnerOpts {
                    fuse: Some(false),
                    ..RunnerOpts::single()
                },
            ),
            (
                "workers=1 no-regir",
                RunnerOpts {
                    regir: Some(false),
                    ..RunnerOpts::single()
                },
            ),
            (
                "workers=1 no-waitq",
                RunnerOpts {
                    event_driven: Some(false),
                    ..RunnerOpts::single()
                },
            ),
            (
                "workers=1 no-cow",
                RunnerOpts {
                    cow: Some(false),
                    ..RunnerOpts::single()
                },
            ),
            (
                "workers=1 no-shard",
                RunnerOpts {
                    shard: Some(false),
                    ..RunnerOpts::single()
                },
            ),
            (
                "workers=1 no-ready",
                RunnerOpts {
                    ready: Some(false),
                    ..RunnerOpts::single()
                },
            ),
            // Ring-vs-sync equivalence: scenarios that consume through
            // `wali_ring_enter` must fall back to the identical per-op
            // synchronous path when rings are off.
            (
                "workers=1 no-ring",
                RunnerOpts {
                    ring: Some(false),
                    ..RunnerOpts::single()
                },
            ),
        ];
        for (name, opts) in toggles {
            let rep = checked_run(scn, &modules, opts, name)?;
            let obs = rep.outcome.observables();
            if obs != baseline_obs {
                return Err(fail(
                    FailureKind::ToggleMismatch,
                    name,
                    clip(format!("observables {obs:?} != baseline {baseline_obs:?}")),
                ));
            }
        }
    }

    // Oracle 2: SMP equivalence on order-insensitive observables.
    if cfg.check_smp {
        let name = format!("workers={}", cfg.smp_workers);
        let rep = checked_run(
            scn,
            &modules,
            RunnerOpts {
                workers: Some(cfg.smp_workers),
                ..RunnerOpts::default()
            },
            &name,
        )?;
        let obs = rep.outcome.observables();
        if obs != baseline_obs {
            return Err(fail(
                FailureKind::ToggleMismatch,
                &name,
                clip(format!("observables {obs:?} != baseline {baseline_obs:?}")),
            ));
        }
    }

    // Oracle 3: page balance — every page a run touched must be gone
    // once its runner is dropped.
    if cfg.page_check {
        let pages_after = wasm::mem::global_resident_pages();
        if pages_after != pages_before {
            return Err(fail(
                FailureKind::Leak,
                "page balance",
                format!("resident pages {pages_before} -> {pages_after} across the battery"),
            ));
        }
    }
    Ok(())
}
