//! Scenario generation: a pure function from seed to a *valid* scenario.
//!
//! The generator never emits something `Scenario::validate` rejects — it
//! builds by construction inside the phase discipline (productions
//! strictly before the acquisitions they satisfy), so every generated
//! scenario is deadlock-free on paper and any hang, leak or divergence
//! the oracles observe is a runtime bug. Rules mirrored here:
//!
//! * channel consumes sit in phases strictly after every produce on
//!   that channel, at a single `(proc, thread)` site, one mechanism;
//! * edge-triggered consumes take exactly 1 token, oneshot exactly 2,
//!   eventfds get a single consume op;
//! * futex words stay inside one process, sets strictly before waits;
//! * victims are killed (SIGTERM) by their parent; handled-signal kills
//!   come from the parent and precede any `AwaitSignal`;
//! * processes targeted by a handled-signal kill never own `Consume`
//!   ops: a signal landing mid-`read` would EINTR out of the token loop
//!   and break token accounting. Futex waits re-check their word after
//!   every wakeup and sleeps may end early, so both stay fair game.
//!
//! Capacity is respected op-by-op (`MAX_OPS_PER_PHASE`); when a channel
//! cannot be placed it is simply left unused, which `validate` accepts.

use apps::scenario::{
    ChanKind, Mechanism, Op, Proc, ProcKind, Scenario, ThreadPlan, HANDLED_SIGNOS,
    MAX_OPS_PER_PHASE,
};

use crate::rng::SplitMix64;

const SIGTERM: u32 = 15;

/// Generates the scenario for `seed`. Panics (with the seed) if the
/// result fails validation — that is a generator bug, never an input
/// problem, and the panic message is the repro.
pub fn generate(seed: u64) -> Scenario {
    let mut r = SplitMix64::new(seed);
    let scn = build(&mut r);
    if let Err(e) = scn.validate() {
        panic!("generator bug: seed {seed} produced invalid scenario: {e}");
    }
    scn
}

fn build(r: &mut SplitMix64) -> Scenario {
    let phases = 3 + r.below(3) as usize; // 3..=5
    let nprocs = 2 + r.below(5) as usize; // 2..=6

    // Process tree: root is Normal; children attach to a random earlier
    // Normal proc. Non-Normal kinds are bare leaves.
    let mut kinds = vec![ProcKind::Normal];
    for _ in 1..nprocs {
        kinds.push(match r.below(10) {
            0..=5 => ProcKind::Normal,
            6..=7 => ProcKind::Victim,
            _ => ProcKind::VforkExec,
        });
    }
    let mut parent = vec![usize::MAX; nprocs];
    for (i, slot) in parent.iter_mut().enumerate().skip(1) {
        let normals: Vec<usize> = (0..i).filter(|&j| kinds[j] == ProcKind::Normal).collect();
        *slot = *r.pick(&normals);
    }

    let mut procs: Vec<Proc> = kinds
        .iter()
        .map(|&k| {
            if k == ProcKind::Normal {
                let nthreads = 1 + r.below(3) as usize; // 1..=3
                Proc {
                    kind: k,
                    children: Vec::new(),
                    handles: Vec::new(),
                    threads: vec![
                        ThreadPlan {
                            phases: vec![Vec::new(); phases],
                        };
                        nthreads
                    ],
                }
            } else {
                Proc::leaf(k)
            }
        })
        .collect();
    for (i, &pa) in parent.iter().enumerate().skip(1) {
        procs[pa].children.push(i);
    }

    let mut b = Builder { procs, phases };

    // Signal play first: the targets it picks are then excluded from
    // consume-site selection (see module docs).
    let mut signal_targets = vec![false; nprocs];
    for i in 1..nprocs {
        if kinds[i] != ProcKind::Normal || !r.chance(2, 5) {
            continue;
        }
        let signo = *r.pick(&HANDLED_SIGNOS);
        let kp = r.below(phases as u64 - 1) as usize; // < phases-1 so an await fits after
        let Some((kti, kph)) = b.free_slot(r, parent[i], kp, kp + 1) else {
            continue;
        };
        b.push(parent[i], kti, kph, Op::Kill { target: i, signo });
        b.procs[i].handles.push(signo);
        signal_targets[i] = true;
        // Usually also await the delivery (exercises the handler-ran
        // sleep-poll); a kill nobody awaits is legal and stays in.
        if r.chance(3, 4) {
            let ap = kp + 1 + r.below((phases - kp - 1) as u64) as usize;
            if let Some((ati, aph)) = b.free_slot(r, i, ap, phases) {
                b.push(i, ati, aph, Op::AwaitSignal { signo });
            }
        }
    }

    // Victims must be killed by their parent or the reaper hangs.
    for i in 1..nprocs {
        if kinds[i] != ProcKind::Victim {
            continue;
        }
        let kp = r.below(phases as u64) as usize;
        let (kti, kph) = b
            .free_slot(r, parent[i], kp, kp + 1)
            .or_else(|| b.free_slot(r, parent[i], 0, phases))
            .expect("no room for a mandatory victim kill");
        b.push(
            parent[i],
            kti,
            kph,
            Op::Kill {
                target: i,
                signo: SIGTERM,
            },
        );
    }

    // Consumer sites: any Normal thread outside the signal-target procs.
    let consumer_sites: Vec<(usize, usize)> = (0..nprocs)
        .filter(|&p| kinds[p] == ProcKind::Normal && !signal_targets[p])
        .flat_map(|p| (0..b.procs[p].threads.len()).map(move |t| (p, t)))
        .collect();
    let producer_sites: Vec<(usize, usize)> = (0..nprocs)
        .filter(|&p| kinds[p] == ProcKind::Normal)
        .flat_map(|p| (0..b.procs[p].threads.len()).map(move |t| (p, t)))
        .collect();

    // Channels.
    let nchans = 1 + r.below(4) as usize; // 1..=4
    let mut chans = Vec::new();
    for c in 0..nchans {
        let kind = *r.pick(&[ChanKind::Pipe, ChanKind::Sock, ChanKind::EventFd]);
        chans.push(kind);
        if consumer_sites.is_empty() {
            continue; // chan stays unused
        }
        plan_chan(r, &mut b, c, kind, &consumer_sites, &producer_sites, phases);
    }

    // Futex words: set strictly before wait, both inside one process.
    let nwords = r.below(3) as usize; // 0..=2
    for w in 0..nwords {
        let owners: Vec<usize> = (0..nprocs)
            .filter(|&p| kinds[p] == ProcKind::Normal)
            .collect();
        let owner = *r.pick(&owners);
        let sp = r.below(phases as u64 - 1) as usize;
        let wp = sp + 1 + r.below((phases - sp - 1) as u64) as usize;
        let (Some((sti, sph)), Some((wti, wph))) = (
            b.free_slot(r, owner, sp, sp + 1),
            b.free_slot(r, owner, wp, wp + 1),
        ) else {
            continue; // word stays unused
        };
        b.push(owner, sti, sph, Op::FutexSet { word: w });
        b.push(owner, wti, wph, Op::FutexWait { word: w });
    }

    // Sleep jitter: perturbs interleavings without affecting outcomes.
    let nsleeps = r.below(4) as usize;
    for _ in 0..nsleeps {
        let (pi, ti) = *r.pick(&producer_sites);
        let ph = r.below(phases as u64) as usize;
        if b.has_room(pi, ti, ph) {
            let ns = (1 + r.below(5)) * 100_000; // 0.1..0.5 ms virtual
            b.push(pi, ti, ph, Op::Sleep { ns });
        }
    }

    Scenario {
        chans,
        futex_words: nwords,
        procs: b.procs,
    }
}

/// Plans one channel's consume + produce ops and commits them if every
/// op finds a slot; otherwise rolls back and leaves the channel unused.
fn plan_chan(
    r: &mut SplitMix64,
    b: &mut Builder,
    chan: usize,
    kind: ChanKind,
    consumer_sites: &[(usize, usize)],
    producer_sites: &[(usize, usize)],
    phases: usize,
) {
    let site = *r.pick(consumer_sites);
    let via = *r.pick(&[
        Mechanism::Direct,
        Mechanism::Poll,
        Mechanism::Ppoll,
        Mechanism::EpollLt,
        Mechanism::EpollEt,
        Mechanism::EpollOneshot,
        Mechanism::EpollChurn,
        Mechanism::Ring,
    ]);
    // Earliest consume phase; every produce lands strictly before it.
    let cmin = 1 + r.below(phases as u64 - 1) as usize;

    // Consume ops under the mechanism's token rules.
    let mut consumes: Vec<(usize, u32)> = Vec::new(); // (phase, tokens)
    match (kind, via) {
        // An eventfd read drains the whole counter: single consume op.
        (ChanKind::EventFd, Mechanism::EpollEt) => consumes.push((cmin, 1)),
        (ChanKind::EventFd, Mechanism::EpollOneshot) => consumes.push((cmin, 2)),
        (ChanKind::EventFd, _) => consumes.push((cmin, 1 + r.below(4) as u32)),
        (_, Mechanism::EpollEt) => {
            for _ in 0..1 + r.below(2) {
                consumes.push((cmin + r.below((phases - cmin) as u64) as usize, 1));
            }
        }
        (_, Mechanism::EpollOneshot) => {
            for _ in 0..1 + r.below(2) {
                consumes.push((cmin + r.below((phases - cmin) as u64) as usize, 2));
            }
        }
        _ => {
            for _ in 0..1 + r.below(2) {
                consumes.push((
                    cmin + r.below((phases - cmin) as u64) as usize,
                    1 + r.below(3) as u32,
                ));
            }
        }
    }
    let total: u32 = consumes.iter().map(|&(_, t)| t).sum();

    // Produce ops: split `total` over 1..=2 sites, all in phases < cmin.
    let nprod = if total > 1 && r.chance(1, 2) { 2 } else { 1 };
    let mut splits = Vec::new();
    if nprod == 2 {
        let first = 1 + r.below(total as u64 - 1) as u32;
        splits.push(first);
        splits.push(total - first);
    } else {
        splits.push(total);
    }

    let mut placed: Vec<(usize, usize, usize)> = Vec::new();
    let mut ok = true;
    for &(ph, tokens) in &consumes {
        let (pi, ti) = site;
        if b.has_room(pi, ti, ph) {
            b.push(pi, ti, ph, Op::Consume { chan, tokens, via });
            placed.push((pi, ti, ph));
        } else {
            ok = false;
            break;
        }
    }
    if ok {
        for &tokens in &splits {
            let ph = r.below(cmin as u64) as usize;
            let slot = pick_site_slot(r, b, producer_sites, ph, cmin);
            match slot {
                Some((pi, ti, ph)) => {
                    b.push(pi, ti, ph, Op::Produce { chan, tokens });
                    placed.push((pi, ti, ph));
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
    }
    if !ok {
        // Roll back in reverse: each push appended to its slot's vec.
        for &(pi, ti, ph) in placed.iter().rev() {
            b.procs[pi].threads[ti].phases[ph].pop();
        }
    }
}

/// Picks a producer slot with room at `preferred` phase, falling back to
/// a scan over all sites and phases `< cmin`.
fn pick_site_slot(
    r: &mut SplitMix64,
    b: &Builder,
    sites: &[(usize, usize)],
    preferred: usize,
    cmin: usize,
) -> Option<(usize, usize, usize)> {
    for _ in 0..4 {
        let (pi, ti) = *r.pick(sites);
        if b.has_room(pi, ti, preferred) {
            return Some((pi, ti, preferred));
        }
    }
    for &(pi, ti) in sites {
        for ph in 0..cmin {
            if b.has_room(pi, ti, ph) {
                return Some((pi, ti, ph));
            }
        }
    }
    None
}

struct Builder {
    procs: Vec<Proc>,
    #[allow(dead_code)]
    phases: usize,
}

impl Builder {
    fn has_room(&self, pi: usize, ti: usize, ph: usize) -> bool {
        self.procs[pi].threads[ti].phases[ph].len() < MAX_OPS_PER_PHASE
    }

    fn push(&mut self, pi: usize, ti: usize, ph: usize, op: Op) {
        debug_assert!(self.has_room(pi, ti, ph));
        self.procs[pi].threads[ti].phases[ph].push(op);
    }

    /// A random `(thread, phase)` of `pi` with room, phase in `lo..hi`.
    fn free_slot(
        &self,
        r: &mut SplitMix64,
        pi: usize,
        lo: usize,
        hi: usize,
    ) -> Option<(usize, usize)> {
        let nt = self.procs[pi].threads.len();
        for _ in 0..4 {
            let ti = r.below(nt as u64) as usize;
            let ph = lo + r.below((hi - lo) as u64) as usize;
            if self.has_room(pi, ti, ph) {
                return Some((ti, ph));
            }
        }
        for ti in 0..nt {
            for ph in lo..hi {
                if self.has_room(pi, ti, ph) {
                    return Some((ti, ph));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousand_seeds_generate_valid_scenarios() {
        for seed in 0..1000 {
            let scn = generate(seed); // panics on invalid
            assert!(!scn.procs.is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(777), generate(777));
        assert_ne!(generate(1), generate(2));
    }

    #[test]
    fn seeds_cover_the_op_space() {
        // Over a modest seed range the generator should exercise every
        // mechanism, channel kind and op variant — otherwise the fuzzer
        // silently stops covering part of the matrix.
        let mut mechs = std::collections::HashSet::new();
        let mut kinds = std::collections::HashSet::new();
        let mut saw_victim = false;
        let mut saw_vfork = false;
        let mut saw_await = false;
        let mut saw_futex = false;
        for seed in 0..200 {
            let scn = generate(seed);
            for k in &scn.chans {
                kinds.insert(format!("{k:?}"));
            }
            for p in &scn.procs {
                saw_victim |= p.kind == ProcKind::Victim;
                saw_vfork |= p.kind == ProcKind::VforkExec;
                for t in &p.threads {
                    for ops in &t.phases {
                        for op in ops {
                            match *op {
                                Op::Consume { via, .. } => {
                                    mechs.insert(format!("{via:?}"));
                                }
                                Op::AwaitSignal { .. } => saw_await = true,
                                Op::FutexWait { .. } => saw_futex = true,
                                _ => {}
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(mechs.len(), 8, "mechanisms seen: {mechs:?}");
        assert_eq!(kinds.len(), 3, "chan kinds seen: {kinds:?}");
        assert!(saw_victim && saw_vfork && saw_await && saw_futex);
    }
}
