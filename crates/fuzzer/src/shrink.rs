//! Scenario shrinking: keep cutting while the failure reproduces.
//!
//! Classic greedy delta-debugging over the scenario structure, biggest
//! cuts first: whole processes (cascading away the channels, futex
//! words and kills they touch), whole threads, whole channels, futex
//! words, then individual fire-and-forget ops. Every candidate is
//! re-validated (a cut that breaks token balance or strands a victim is
//! skipped without spending a run) and only kept if the caller's
//! `still_fails` predicate reproduces the failure on it. The loop
//! restarts from the smaller scenario after every accepted cut and
//! stops at a fixpoint or when the evaluation budget runs out.

use apps::scenario::{Op, Proc, Scenario};

/// A rough scenario size: ops + processes (shrink progress metric).
pub fn size(scn: &Scenario) -> usize {
    let ops: usize = scn
        .procs
        .iter()
        .flat_map(|p| &p.threads)
        .flat_map(|t| &t.phases)
        .map(|ops| ops.len())
        .sum();
    ops + scn.procs.len()
}

/// Greedily shrinks `scn`, calling `still_fails` on each valid
/// candidate (at most `budget` times). Returns the smallest scenario
/// that still fails plus the number of evaluations spent.
pub fn shrink(
    scn: &Scenario,
    budget: usize,
    still_fails: &mut dyn FnMut(&Scenario) -> bool,
) -> (Scenario, usize) {
    let mut cur = scn.clone();
    let mut evals = 0usize;
    'outer: loop {
        for cand in candidates(&cur) {
            if evals >= budget {
                return (cur, evals);
            }
            if cand.validate().is_err() {
                continue;
            }
            evals += 1;
            if still_fails(&cand) {
                cur = cand;
                continue 'outer; // restart enumeration on the smaller scenario
            }
        }
        return (cur, evals);
    }
}

/// All single-cut candidates, biggest first.
fn candidates(scn: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    for p in 1..scn.procs.len() {
        if scn.procs[p].children.is_empty() {
            out.push(drop_proc(scn, p));
        }
    }
    for p in 0..scn.procs.len() {
        if scn.procs[p].threads.len() > 1 {
            out.push(drop_thread(scn, p));
        }
    }
    for c in 0..scn.chans.len() {
        out.push(drop_chan(scn, c));
    }
    for w in 0..scn.futex_words {
        out.push(drop_word(scn, w));
    }
    for (pi, p) in scn.procs.iter().enumerate() {
        for (ti, t) in p.threads.iter().enumerate() {
            for (ph, ops) in t.phases.iter().enumerate() {
                for (oi, op) in ops.iter().enumerate() {
                    if matches!(
                        op,
                        Op::Sleep { .. }
                            | Op::AwaitSignal { .. }
                            | Op::Kill { .. }
                            | Op::FutexSet { .. }
                            | Op::FutexWait { .. }
                    ) {
                        let mut s = scn.clone();
                        s.procs[pi].threads[ti].phases[ph].remove(oi);
                        out.push(s);
                    }
                }
            }
        }
    }
    out
}

fn for_each_op(procs: &mut [Proc], mut f: impl FnMut(&mut Vec<Op>)) {
    for p in procs {
        for t in &mut p.threads {
            for ops in &mut t.phases {
                f(ops);
            }
        }
    }
}

/// Removes channel `c` and every op on it; higher indices shift down.
fn drop_chan(scn: &Scenario, c: usize) -> Scenario {
    let mut s = scn.clone();
    s.chans.remove(c);
    for_each_op(&mut s.procs, |ops| {
        ops.retain(
            |op| !matches!(*op, Op::Produce { chan, .. } | Op::Consume { chan, .. } if chan == c),
        );
        for op in ops.iter_mut() {
            match op {
                Op::Produce { chan, .. } | Op::Consume { chan, .. } if *chan > c => *chan -= 1,
                _ => {}
            }
        }
    });
    s
}

/// Removes futex word `w` and every op on it; higher indices shift.
fn drop_word(scn: &Scenario, w: usize) -> Scenario {
    let mut s = scn.clone();
    s.futex_words -= 1;
    for_each_op(&mut s.procs, |ops| {
        ops.retain(
            |op| !matches!(*op, Op::FutexSet { word } | Op::FutexWait { word } if word == w),
        );
        for op in ops.iter_mut() {
            match op {
                Op::FutexSet { word } | Op::FutexWait { word } if *word > w => *word -= 1,
                _ => {}
            }
        }
    });
    s
}

/// Channels and futex words a set of `(proc, thread)` sites touch.
fn touched(scn: &Scenario, site: impl Fn(usize, usize) -> bool) -> (Vec<usize>, Vec<usize>) {
    let (mut chans, mut words) = (Vec::new(), Vec::new());
    for (pi, p) in scn.procs.iter().enumerate() {
        for (ti, t) in p.threads.iter().enumerate() {
            if !site(pi, ti) {
                continue;
            }
            for ops in &t.phases {
                for op in ops {
                    match *op {
                        Op::Produce { chan, .. } | Op::Consume { chan, .. } => chans.push(chan),
                        Op::FutexSet { word } | Op::FutexWait { word } => words.push(word),
                        _ => {}
                    }
                }
            }
        }
    }
    chans.sort_unstable();
    chans.dedup();
    words.sort_unstable();
    words.dedup();
    (chans, words)
}

/// Removes leaf process `p` plus everything only it makes coherent: the
/// channels and futex words it touches (their ops everywhere) and kills
/// targeting it. Proc indices above `p` shift down.
fn drop_proc(scn: &Scenario, p: usize) -> Scenario {
    let mut s = scn.clone();
    let (chans, words) = touched(&s, |pi, _| pi == p);
    for &c in chans.iter().rev() {
        s = drop_chan(&s, c);
    }
    for &w in words.iter().rev() {
        s = drop_word(&s, w);
    }
    for_each_op(&mut s.procs, |ops| {
        ops.retain(|op| !matches!(*op, Op::Kill { target, .. } if target == p));
        for op in ops.iter_mut() {
            if let Op::Kill { target, .. } = op {
                if *target > p {
                    *target -= 1;
                }
            }
        }
    });
    for q in &mut s.procs {
        q.children.retain(|&c| c != p);
        for c in &mut q.children {
            if *c > p {
                *c -= 1;
            }
        }
    }
    s.procs.remove(p);
    s
}

/// Removes the last thread of process `p`, cascading away the channels
/// and futex words that thread touched.
fn drop_thread(scn: &Scenario, p: usize) -> Scenario {
    let mut s = scn.clone();
    let last = s.procs[p].threads.len() - 1;
    let (chans, words) = touched(&s, |pi, ti| pi == p && ti == last);
    for &c in chans.iter().rev() {
        s = drop_chan(&s, c);
    }
    for &w in words.iter().rev() {
        s = drop_word(&s, w);
    }
    s.procs[p].threads.pop();
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn shrink_reaches_a_small_fixpoint_on_an_always_failing_predicate() {
        // With `still_fails` constant-true the shrinker must drive any
        // scenario down to the bare root (everything removable goes).
        for seed in [3u64, 17, 99] {
            let scn = generate(seed);
            let (small, _evals) = shrink(&scn, 10_000, &mut |_| true);
            small.validate().expect("shrunk scenario stays valid");
            assert_eq!(small.procs.len(), 1, "seed {seed}: {small:?}");
            assert!(size(&small) <= size(&scn));
            let ops = size(&small) - small.procs.len();
            assert_eq!(ops, 0, "seed {seed} left ops behind: {small:?}");
        }
    }

    #[test]
    fn shrink_keeps_what_the_failure_needs() {
        // A predicate that requires a victim process keeps exactly one.
        let scn = (0..200u64)
            .map(generate)
            .find(|s| {
                s.procs
                    .iter()
                    .filter(|p| p.kind == apps::scenario::ProcKind::Victim)
                    .count()
                    >= 1
            })
            .expect("some seed makes a victim");
        let needs_victim = |s: &Scenario| {
            s.procs
                .iter()
                .any(|p| p.kind == apps::scenario::ProcKind::Victim)
        };
        let (small, _) = shrink(&scn, 10_000, &mut |s| needs_victim(s));
        assert!(needs_victim(&small));
        // Nothing survives beyond the victim's ancestor chain and the
        // mandatory SIGTERM kill op.
        let victims = small
            .procs
            .iter()
            .filter(|p| p.kind == apps::scenario::ProcKind::Victim)
            .count();
        let ops = size(&small) - small.procs.len();
        assert_eq!((victims, ops), (1, 1), "{small:?}");
    }
}
