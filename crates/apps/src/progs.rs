//! The executable Wasm programs of the suite.

use std::collections::BTreeSet;

use wasi_layer::Feature;
use wasm::build::{FuncId, ModuleBuilder};
use wasm::instr::BlockType;
use wasm::types::ValType::{I32, I64};
use wasm::Module;

/// One workload: the Wasm program plus its metadata.
pub struct App {
    /// Short name (Table 1 row / Fig. 2 label).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The program.
    pub module: Module,
    /// Features the codebase requires (drives the porting matrix).
    pub required: BTreeSet<Feature>,
    /// Whether the Fig. 8 emulator tier can run it (single-process apps).
    pub emulatable: bool,
}

/// Imports `SYS_<name>` with `n` i64 params returning i64.
pub fn sys(mb: &mut ModuleBuilder, name: &str, n: usize) -> FuncId {
    let sig = mb.sig(vec![I64; n], [I64]);
    mb.import_func("wali", &format!("SYS_{name}"), sig)
}

fn feats(list: &[Feature]) -> BTreeSet<Feature> {
    list.iter().copied().collect()
}

/// `lua`-like interpreter workload.
///
/// A register VM dispatch loop over a synthetic "bytecode" string (loaded
/// from a script file), with interpreter-typical behaviour: a hot
/// dispatch loop, frequent small heap growth (`brk`), periodic output.
/// `scale` controls the executed instruction count.
pub fn lua_sim(scale: u32) -> App {
    let mut mb = ModuleBuilder::new();
    let open = sys(&mut mb, "open", 3);
    let read = sys(&mut mb, "read", 3);
    let close = sys(&mut mb, "close", 1);
    let write = sys(&mut mb, "write", 3);
    let brk = sys(&mut mb, "brk", 1);
    let clock = sys(&mut mb, "clock_gettime", 2);
    mb.memory(4, Some(256));
    let script_path = mb.c_str("/tmp/script.lua");
    let script_buf = mb.reserve(4096);
    let out_msg = mb.c_str("lua: done\n");
    let ts = mb.reserve(16);

    let sig = mb.sig([], [I32]);
    let main = mb.func(sig, |b| {
        let fd = b.local(I64);
        let acc = b.local(I64);
        let pc = b.local(I32);
        let n = b.local(I32);
        let heap = b.local(I64);
        let i = b.local(I32);

        // Load the "script" (created by the harness; missing is fine —
        // fall back to a built-in program of 64 ops).
        b.i64(script_path as i64)
            .i64(0)
            .i64(0)
            .call(open)
            .local_set(fd);
        b.local_get(fd).i64(0).lt_s64();
        b.if_else(
            BlockType::Value(I32),
            |b| {
                b.i32(64);
            },
            |b| {
                b.local_get(fd)
                    .i64(script_buf as i64)
                    .i64(4096)
                    .call(read)
                    .wrap();
                b.local_get(fd).call(close).drop_();
            },
        );
        b.local_set(n);

        // Interpreter loop: scale rounds over the script; opcode = byte%8.
        let rounds = scale.max(1) as i32;
        let round = b.local(I32);
        b.loop_(BlockType::Empty, |b| {
            b.i32(0).local_set(pc);
            b.loop_(BlockType::Empty, |b| {
                // opcode dispatch on script_buf[pc] & 7
                let op = b.local(I32);
                b.i32(script_buf as i32)
                    .local_get(pc)
                    .add32()
                    .load8u(0)
                    .i32(7)
                    .and32()
                    .local_set(op);
                // op 0..3: arithmetic on acc; 4: "concat" (alloc via brk
                // every 64th); 5..7: hash mix.
                b.local_get(op).i32(4).eq32();
                b.if_(BlockType::Empty, |b| {
                    b.local_get(i).i32(63).and32().eqz32();
                    b.if_(BlockType::Empty, |b| {
                        // grow the interpreter heap by 256 bytes, GC-style.
                        b.i64(0).call(brk).local_set(heap);
                        b.local_get(heap).i64(256).add64().call(brk).drop_();
                    });
                });
                b.local_get(acc).i64(0x9e3779b9).add64();
                b.local_get(op).extend_u().add64();
                b.i64(31)
                    .emit(wasm::instr::Instr::Bin(wasm::instr::BinOp::I64Mul));
                b.local_set(acc);
                b.local_get(i).i32(1).add32().local_set(i);
                b.local_get(pc).i32(1).add32().local_tee(pc);
                b.local_get(n).lt_s32().br_if(0);
            });
            // Interpreter "timer" check each round (lua os.clock pattern).
            b.i64(1).i64(ts as i64).call(clock).drop_();
            b.local_get(round).i32(1).add32().local_tee(round);
            b.i32(rounds).lt_s32().br_if(0);
        });
        b.i64(1).i64(out_msg as i64).i64(10).call(write).drop_();
        // Exit code: low bits of the accumulator (deterministic).
        b.local_get(acc).i64(0).eq64();
    });
    mb.export("_start", main);
    App {
        name: "lua",
        description: "Interpreter",
        module: mb.build(),
        required: feats(&[Feature::BasicFs, Feature::Dup, Feature::Sysconf]),
        emulatable: true,
    }
}

/// `bash`-like shell workload: pipelines, job control, SIGCHLD.
pub fn bash_sim(jobs: u32) -> App {
    let mut mb = ModuleBuilder::new();
    let fork = sys(&mut mb, "fork", 0);
    let pipe = sys(&mut mb, "pipe", 1);
    let dup3 = sys(&mut mb, "dup3", 3);
    let read = sys(&mut mb, "read", 3);
    let write = sys(&mut mb, "write", 3);
    let close = sys(&mut mb, "close", 1);
    let wait4 = sys(&mut mb, "wait4", 4);
    let sigaction = sys(&mut mb, "rt_sigaction", 4);
    let getpid = sys(&mut mb, "getpid", 0);
    let exit = sys(&mut mb, "exit_group", 1);
    mb.memory(4, Some(64));

    // SIGCHLD handler bumps a counter at mem[512].
    let hsig = mb.sig([I32], []);
    let dummy = mb.func(hsig, |_| {});
    let chld = mb.func(hsig, |b| {
        b.i32(512).i32(512).load32(0).i32(1).add32().store32(0);
    });
    mb.table_entries(&[dummy, dummy, chld]);

    let act = mb.reserve(24);
    let fds = mb.reserve(8);
    let cmd = mb.c_str("echo hello | wc -l");
    let buf = mb.reserve(128);
    let prompt = mb.c_str("$ ");
    let status = mb.reserve(4);

    let sig = mb.sig([], [I32]);
    let main = mb.func(sig, |b| {
        let pid = b.local(I64);
        let j = b.local(I32);
        // Install the SIGCHLD handler (slot 2).
        b.i32(act as i32).i32(2).store32(0);
        b.i64(17)
            .i64(act as i64)
            .i64(0)
            .i64(8)
            .call(sigaction)
            .drop_();

        let jobs = jobs.max(1) as i32;
        b.loop_(BlockType::Empty, |b| {
            // "Prompt", then spawn a pipeline: child writes through the
            // pipe; parent (shell) reads the output, waits, reaps.
            b.i64(1).i64(prompt as i64).i64(2).call(write).drop_();
            b.i64(fds as i64).call(pipe).drop_();
            b.call(fork).local_set(pid);
            b.local_get(pid).i64(0).eq64();
            b.if_(BlockType::Empty, |b| {
                // Child: stdout := pipe write end (dup3), echo the cmd.
                b.i32(fds as i32 + 4)
                    .load32(0)
                    .extend_u()
                    .i64(1)
                    .i64(0)
                    .call(dup3)
                    .drop_();
                b.i32(fds as i32).load32(0).extend_u().call(close).drop_();
                b.call(getpid).drop_();
                b.i64(1).i64(cmd as i64).i64(18).call(write).drop_();
                b.i64(0).call(exit).drop_();
            });
            // Shell: close write end, read child output, wait.
            b.i32(fds as i32 + 4)
                .load32(0)
                .extend_u()
                .call(close)
                .drop_();
            b.i32(fds as i32)
                .load32(0)
                .extend_u()
                .i64(buf as i64)
                .i64(128)
                .call(read)
                .drop_();
            b.i32(fds as i32).load32(0).extend_u().call(close).drop_();
            b.local_get(pid)
                .i64(status as i64)
                .i64(0)
                .i64(0)
                .call(wait4)
                .drop_();
            b.local_get(j)
                .i32(1)
                .add32()
                .local_tee(j)
                .i32(jobs)
                .lt_s32()
                .br_if(0);
        });
        // Exit 0 iff every SIGCHLD was observed (handler ran per job).
        b.i32(512).load32(0).i32(jobs).ne32();
    });
    mb.export("_start", main);
    App {
        name: "bash",
        description: "Shell",
        module: mb.build(),
        required: feats(&[
            Feature::BasicFs,
            Feature::Signals,
            Feature::Fork,
            Feature::Wait4,
            Feature::Pipes,
            Feature::Dup,
            Feature::ProcessGroups,
        ]),
        emulatable: false,
    }
}

/// Single-process `bash` variant for the emulator tier (builtin loop, no
/// fork) — the paper runs bash under QEMU as a whole VM; our emulator
/// models single-address-space execution.
pub fn bash_builtin_sim(iterations: u32) -> App {
    let mut mb = ModuleBuilder::new();
    let write = sys(&mut mb, "write", 3);
    let open = sys(&mut mb, "open", 3);
    let close = sys(&mut mb, "close", 1);
    let getpid = sys(&mut mb, "getpid", 0);
    mb.memory(4, Some(64));
    let prompt = mb.c_str("$ ");
    let path = mb.c_str("/tmp/.bash_history");
    let sig = mb.sig([], [I32]);
    let main = mb.func(sig, |b| {
        let i = b.local(I32);
        let acc = b.local(I64);
        let iters = iterations.max(1) as i32;
        b.loop_(BlockType::Empty, |b| {
            // Builtin evaluation: tokenize-ish bit twiddling plus history
            // file append and prompt writes.
            b.local_get(acc)
                .i64(0x5bd1e995)
                .add64()
                .i64(33)
                .emit(wasm::instr::Instr::Bin(wasm::instr::BinOp::I64Mul))
                .local_set(acc);
            b.local_get(i).i32(255).and32().eqz32();
            b.if_(BlockType::Empty, |b| {
                b.i64(1).i64(prompt as i64).i64(2).call(write).drop_();
                b.i64(path as i64).i64(0o102).i64(0o600).call(open);
                let fd = b.local(I64);
                b.local_set(fd);
                b.local_get(fd)
                    .i64(prompt as i64)
                    .i64(2)
                    .call(write)
                    .drop_();
                b.local_get(fd).call(close).drop_();
                b.call(getpid).drop_();
            });
            b.local_get(i)
                .i32(1)
                .add32()
                .local_tee(i)
                .i32(iters)
                .lt_s32()
                .br_if(0);
        });
        b.i32(0);
    });
    mb.export("_start", main);
    App {
        name: "bash",
        description: "Shell (builtin loop)",
        module: mb.build(),
        required: feats(&[Feature::BasicFs, Feature::Signals]),
        emulatable: true,
    }
}

/// `sqlite`-like page store: mmap'd database pages, B-tree-ish inserts.
pub fn sqlite_sim(rows: u32) -> App {
    let mut mb = ModuleBuilder::new();
    let open = sys(&mut mb, "open", 3);
    let ftruncate = sys(&mut mb, "ftruncate", 2);
    let mmap = sys(&mut mb, "mmap", 6);
    let mremap = sys(&mut mb, "mremap", 5);
    let msync = sys(&mut mb, "msync", 3);
    let munmap = sys(&mut mb, "munmap", 2);
    let pwrite = sys(&mut mb, "pwrite64", 4);
    let pread = sys(&mut mb, "pread64", 4);
    let fsync = sys(&mut mb, "fsync", 1);
    let close = sys(&mut mb, "close", 1);
    mb.memory(8, Some(256));
    let db_path = mb.c_str("/tmp/test.db");
    let journal = mb.c_str("/tmp/test.db-journal");
    let scratch = mb.reserve(64);

    let sig = mb.sig([], [I32]);
    let main = mb.func(sig, |b| {
        let fd = b.local(I64);
        let jfd = b.local(I64);
        let base = b.local(I64);
        let i = b.local(I32);
        let slot = b.local(I32);

        // Open + size the database file, mmap 4 pages MAP_SHARED.
        b.i64(db_path as i64)
            .i64(0o102)
            .i64(0o644)
            .call(open)
            .local_set(fd);
        b.local_get(fd).i64(16384).call(ftruncate).drop_();
        b.i64(0)
            .i64(16384)
            .i64(3)
            .i64(0x01)
            .local_get(fd)
            .i64(0)
            .call(mmap)
            .local_set(base);

        let rows = rows.max(1) as i32;
        b.loop_(BlockType::Empty, |b| {
            // "B-tree insert": hash the key to a slot and store key/value
            // in the mapped page (16-byte cells).
            b.local_get(i)
                .i32(2654435761u32 as i32)
                .mul32()
                .i32(1023)
                .and32()
                .local_set(slot);
            b.local_get(base)
                .wrap()
                .local_get(slot)
                .i32(16)
                .mul32()
                .add32();
            b.local_get(i).store32(0);
            b.local_get(base)
                .wrap()
                .local_get(slot)
                .i32(16)
                .mul32()
                .add32();
            b.local_get(i).i32(7).mul32().store32(4);

            // Journal append every 32 rows (write-ahead pattern), then
            // fsync — the sqlite checkpoint shape.
            b.local_get(i).i32(31).and32().eqz32();
            b.if_(BlockType::Empty, |b| {
                b.i64(journal as i64)
                    .i64(0o2102)
                    .i64(0o644)
                    .call(open)
                    .local_set(jfd);
                b.local_get(jfd)
                    .i64(scratch as i64)
                    .i64(32)
                    .i64(0)
                    .call(pwrite)
                    .drop_();
                b.local_get(jfd).call(fsync).drop_();
                b.local_get(jfd).call(close).drop_();
                b.local_get(base).i64(16384).i64(4).call(msync).drop_();
            });
            b.local_get(i)
                .i32(1)
                .add32()
                .local_tee(i)
                .i32(rows)
                .lt_s32()
                .br_if(0);
        });

        // Grow the mapping (database file grew): mremap to 8 pages.
        b.local_get(base)
            .i64(16384)
            .i64(32768)
            .i64(1)
            .i64(0)
            .call(mremap)
            .local_set(base);
        // Point query via pread (cold page path).
        b.local_get(fd)
            .i64(scratch as i64)
            .i64(16)
            .i64(128)
            .call(pread)
            .drop_();
        b.local_get(base).i64(32768).call(munmap).drop_();
        b.local_get(fd).call(close).drop_();
        b.i32(0);
    });
    mb.export("_start", main);
    App {
        name: "sqlite3",
        description: "Database",
        module: mb.build(),
        required: feats(&[Feature::BasicFs, Feature::Mmap, Feature::Mremap]),
        emulatable: true,
    }
}

/// `memcached`-like threaded KV server with loopback clients.
pub fn memcached_sim(requests: u32) -> App {
    let mut mb = ModuleBuilder::new();
    let socket = sys(&mut mb, "socket", 3);
    let bind = sys(&mut mb, "bind", 3);
    let listen = sys(&mut mb, "listen", 2);
    let accept = sys(&mut mb, "accept", 3);
    let connect = sys(&mut mb, "connect", 3);
    let setsockopt = sys(&mut mb, "setsockopt", 5);
    let read = sys(&mut mb, "read", 3);
    let write = sys(&mut mb, "write", 3);
    let close = sys(&mut mb, "close", 1);
    let clone = sys(&mut mb, "clone", 5);
    let exit = sys(&mut mb, "exit", 1);
    mb.memory(8, Some(256));

    // sockaddr_in 127.0.0.1:11211.
    let addr = mb.reserve(16);
    let addr_init = {
        let mut bytes = [0u8; 16];
        bytes[0..2].copy_from_slice(&2u16.to_le_bytes());
        bytes[2..4].copy_from_slice(&11211u16.to_be_bytes());
        bytes[4..8].copy_from_slice(&[127, 0, 0, 1]);
        bytes
    };
    mb.data_at(addr, &addr_init);
    let req = mb.c_str("set k 0 0 5 hello");
    let reply = mb.c_str("STORED");
    let buf = mb.reserve(256);
    // Shared slots: [768] = server-ready flag, [772] = served count.
    let sig = mb.sig([], [I32]);
    let main = mb.func(sig, |b| {
        let tidv = b.local(I64);
        let srv = b.local(I64);
        let conn = b.local(I64);
        let cli = b.local(I64);
        let i = b.local(I32);
        let n = requests.max(1) as i32;

        // Spawn the server thread (CLONE_VM|THREAD|SIGHAND).
        b.i64(0x10900)
            .i64(0)
            .i64(0)
            .i64(0)
            .i64(0)
            .call(clone)
            .local_set(tidv);
        b.local_get(tidv).i64(0).eq64();
        b.if_(BlockType::Empty, |b| {
            // --- server thread ---
            b.i64(2).i64(1).i64(0).call(socket).local_set(srv);
            b.local_get(srv)
                .i64(1)
                .i64(2)
                .i64(addr as i64 + 12)
                .i64(4)
                .call(setsockopt)
                .drop_();
            b.local_get(srv).i64(addr as i64).i64(16).call(bind).drop_();
            b.local_get(srv).i64(64).call(listen).drop_();
            b.i32(768).i32(1).store32(0); // ready
            let j = b.local(I32);
            b.loop_(BlockType::Empty, |b| {
                b.local_get(srv).i64(0).i64(0).call(accept).local_set(conn);
                b.local_get(conn)
                    .i64(buf as i64 + 128)
                    .i64(64)
                    .call(read)
                    .drop_();
                b.local_get(conn)
                    .i64(reply as i64)
                    .i64(6)
                    .call(write)
                    .drop_();
                b.local_get(conn).call(close).drop_();
                b.i32(772).i32(772).load32(0).i32(1).add32().store32(0);
                b.local_get(j)
                    .i32(1)
                    .add32()
                    .local_tee(j)
                    .i32(n)
                    .lt_s32()
                    .br_if(0);
            });
            b.i64(0).call(exit).drop_();
        });

        // --- client (main thread): wait for readiness, then hammer. ---
        b.loop_(BlockType::Empty, |b| {
            b.i32(768).load32(0).eqz32().br_if(0);
        });
        b.loop_(BlockType::Empty, |b| {
            b.i64(2).i64(1).i64(0).call(socket).local_set(cli);
            b.local_get(cli)
                .i64(addr as i64)
                .i64(16)
                .call(connect)
                .drop_();
            b.local_get(cli).i64(req as i64).i64(17).call(write).drop_();
            b.local_get(cli).i64(buf as i64).i64(64).call(read).drop_();
            b.local_get(cli).call(close).drop_();
            b.local_get(i)
                .i32(1)
                .add32()
                .local_tee(i)
                .i32(n)
                .lt_s32()
                .br_if(0);
        });
        // Exit 0 iff the server served all requests.
        b.loop_(BlockType::Empty, |b| {
            b.i32(772).load32(0).i32(n).lt_s32().br_if(0);
        });
        b.i32(0);
    });
    mb.export("_start", main);
    App {
        name: "memcached",
        description: "System Daemon",
        module: mb.build(),
        required: feats(&[
            Feature::BasicFs,
            Feature::Sockets,
            Feature::Threads,
            Feature::SockOpt,
            Feature::Mmap,
            Feature::Poll,
        ]),
        emulatable: false,
    }
}

/// `memcached`-style **event-loop** server: one server thread multiplexes
/// every connection with `epoll_create1`/`epoll_ctl`/`epoll_wait`, while
/// `clients` concurrent client threads each hold one connection open and
/// pipeline `requests` request/reply round trips over it.
///
/// This is the paper's server-workload shape (§6) on the event-driven
/// scheduler: the server parks in `epoll_wait` and is woken only by
/// connection attempts and request bytes; the clients park in blocking
/// `read` and are woken by the reply.
pub fn epoll_server_sim(clients: u32, requests: u32) -> App {
    let mut mb = ModuleBuilder::new();
    let socket = sys(&mut mb, "socket", 3);
    let bind = sys(&mut mb, "bind", 3);
    let listen = sys(&mut mb, "listen", 2);
    let accept = sys(&mut mb, "accept", 3);
    let connect = sys(&mut mb, "connect", 3);
    let setsockopt = sys(&mut mb, "setsockopt", 5);
    let read = sys(&mut mb, "read", 3);
    let write = sys(&mut mb, "write", 3);
    let close = sys(&mut mb, "close", 1);
    let clone = sys(&mut mb, "clone", 5);
    let exit = sys(&mut mb, "exit", 1);
    let ep_create = sys(&mut mb, "epoll_create1", 1);
    let ep_ctl = sys(&mut mb, "epoll_ctl", 4);
    let ep_wait = sys(&mut mb, "epoll_wait", 4);
    mb.memory(8, Some(256));

    // sockaddr_in 127.0.0.1:11311.
    let addr = mb.reserve(16);
    let addr_init = {
        let mut bytes = [0u8; 16];
        bytes[0..2].copy_from_slice(&2u16.to_le_bytes());
        bytes[2..4].copy_from_slice(&11311u16.to_be_bytes());
        bytes[4..8].copy_from_slice(&[127, 0, 0, 1]);
        bytes
    };
    mb.data_at(addr, &addr_init);
    let req = mb.c_str("get key7");
    let reply = mb.c_str("VALUE ok");
    // epoll_event scratch (registration) + report buffer (16 events).
    let evreg = mb.reserve(12);
    let evbuf = mb.reserve(16 * 12);
    let sbuf = mb.reserve(256);
    let cbuf = mb.reserve(256);
    // Shared slots: [768]=server ready, [772]=requests served,
    // [776]=clients finished.
    let clients = clients.max(1);
    let requests = requests.max(1);
    let total = (clients * requests) as i32;

    let sig = mb.sig([], [I32]);
    let main = mb.func(sig, |b| {
        let tidv = b.local(I64);
        let srv = b.local(I64);
        let ep = b.local(I64);
        let conn = b.local(I64);
        let cli = b.local(I64);
        let n = b.local(I32);
        let kx = b.local(I32);
        let fdv = b.local(I64);
        let r = b.local(I64);
        let j = b.local(I32);
        let ci = b.local(I32);

        // --- server thread -------------------------------------------------
        b.i64(0x10900)
            .i64(0)
            .i64(0)
            .i64(0)
            .i64(0)
            .call(clone)
            .local_set(tidv);
        b.local_get(tidv).i64(0).eq64();
        b.if_(BlockType::Empty, |b| {
            b.i64(2).i64(1).i64(0).call(socket).local_set(srv);
            b.local_get(srv)
                .i64(1)
                .i64(2)
                .i64(addr as i64 + 12)
                .i64(4)
                .call(setsockopt)
                .drop_();
            b.local_get(srv).i64(addr as i64).i64(16).call(bind).drop_();
            b.local_get(srv).i64(64).call(listen).drop_();
            b.i64(0).call(ep_create).local_set(ep);
            // Register the listener: events=EPOLLIN, data=srv.
            b.i32(evreg as i32).i32(1).store32(0);
            b.i32(evreg as i32).local_get(srv).store64(4);
            b.local_get(ep)
                .i64(1)
                .local_get(srv)
                .i64(evreg as i64)
                .call(ep_ctl)
                .drop_();
            b.i32(768).i32(1).store32(0); // ready
            b.loop_(BlockType::Empty, |b| {
                // Park until something is readable.
                b.local_get(ep)
                    .i64(evbuf as i64)
                    .i64(16)
                    .i64(-1)
                    .call(ep_wait)
                    .wrap()
                    .local_set(n);
                b.i32(0).local_set(kx);
                b.loop_(BlockType::Empty, |b| {
                    // fd = events[kx].data (low 32 bits, packed at +4).
                    b.i32(evbuf as i32)
                        .local_get(kx)
                        .i32(12)
                        .mul32()
                        .add32()
                        .load32(4)
                        .extend_u()
                        .local_set(fdv);
                    b.local_get(fdv).local_get(srv).eq64();
                    b.if_else(
                        BlockType::Empty,
                        |b| {
                            // New connection: accept + watch it.
                            b.local_get(srv).i64(0).i64(0).call(accept).local_set(conn);
                            b.i32(evreg as i32).i32(1).store32(0);
                            b.i32(evreg as i32).local_get(conn).store64(4);
                            b.local_get(ep)
                                .i64(1)
                                .local_get(conn)
                                .i64(evreg as i64)
                                .call(ep_ctl)
                                .drop_();
                        },
                        |b| {
                            // Request bytes or EOF.
                            b.local_get(fdv)
                                .i64(sbuf as i64)
                                .i64(64)
                                .call(read)
                                .local_set(r);
                            b.local_get(r)
                                .i64(0)
                                .emit(wasm::instr::Instr::Rel(wasm::instr::RelOp::I64LeS));
                            b.if_else(
                                BlockType::Empty,
                                |b| {
                                    // Client hung up: deregister + close.
                                    b.local_get(ep)
                                        .i64(2)
                                        .local_get(fdv)
                                        .i64(0)
                                        .call(ep_ctl)
                                        .drop_();
                                    b.local_get(fdv).call(close).drop_();
                                },
                                |b| {
                                    b.local_get(fdv)
                                        .i64(reply as i64)
                                        .i64(8)
                                        .call(write)
                                        .drop_();
                                    b.i32(772).i32(772).load32(0).i32(1).add32().store32(0);
                                },
                            );
                        },
                    );
                    b.local_get(kx)
                        .i32(1)
                        .add32()
                        .local_tee(kx)
                        .local_get(n)
                        .lt_s32()
                        .br_if(0);
                });
                b.i32(772).load32(0).i32(total).lt_s32().br_if(0);
            });
            b.i64(0).call(exit).drop_();
        });

        // --- client threads ------------------------------------------------
        b.loop_(BlockType::Empty, |b| {
            b.i64(0x10900)
                .i64(0)
                .i64(0)
                .i64(0)
                .i64(0)
                .call(clone)
                .local_set(tidv);
            b.local_get(tidv).i64(0).eq64();
            b.if_(BlockType::Empty, |b| {
                // Wait for the server socket, then connect once and
                // pipeline `requests` round trips on the connection.
                b.loop_(BlockType::Empty, |b| {
                    b.i32(768).load32(0).eqz32().br_if(0);
                });
                b.i64(2).i64(1).i64(0).call(socket).local_set(cli);
                b.local_get(cli)
                    .i64(addr as i64)
                    .i64(16)
                    .call(connect)
                    .drop_();
                b.i32(0).local_set(j);
                b.loop_(BlockType::Empty, |b| {
                    b.local_get(cli).i64(req as i64).i64(8).call(write).drop_();
                    b.local_get(cli).i64(cbuf as i64).i64(64).call(read).drop_();
                    b.local_get(j)
                        .i32(1)
                        .add32()
                        .local_tee(j)
                        .i32(requests as i32)
                        .lt_s32()
                        .br_if(0);
                });
                b.local_get(cli).call(close).drop_();
                b.i32(776).i32(776).load32(0).i32(1).add32().store32(0);
                b.i64(0).call(exit).drop_();
            });
            b.local_get(ci)
                .i32(1)
                .add32()
                .local_tee(ci)
                .i32(clients as i32)
                .lt_s32()
                .br_if(0);
        });

        // Main: wait for every client, then verify the served count.
        b.loop_(BlockType::Empty, |b| {
            b.i32(776).load32(0).i32(clients as i32).lt_s32().br_if(0);
        });
        b.i32(772).load32(0).i32(total).ne32();
    });
    mb.export("_start", main);
    App {
        name: "memcached-epoll",
        description: "Event-loop daemon",
        module: mb.build(),
        required: feats(&[
            Feature::BasicFs,
            Feature::Sockets,
            Feature::Threads,
            Feature::SockOpt,
            Feature::Poll,
        ]),
        emulatable: false,
    }
}

/// Prefork server: the classic pre-`fork(2)` accept-loop daemon (apache/
/// postgres shape) on the COW memory subsystem.
///
/// The parent creates one listening socket, forks `workers` processes
/// that inherit it, then acts as the client: `workers × requests`
/// connect/request/reply round trips served by whichever worker wins the
/// accept race. Each worker parks in `epoll_wait` on the shared listener
/// (waitqueues + epoll), `accept`s, serves one request and loops; a
/// `QUIT` request makes the accepting worker exit. After the load the
/// parent sends one QUIT per worker and reaps them all with `wait4` —
/// fork + COW + waitqueues + epoll end-to-end.
pub fn prefork_server_sim(workers: u32, requests: u32) -> App {
    let mut mb = ModuleBuilder::new();
    let socket = sys(&mut mb, "socket", 3);
    let bind = sys(&mut mb, "bind", 3);
    let listen = sys(&mut mb, "listen", 2);
    let accept = sys(&mut mb, "accept", 3);
    let connect = sys(&mut mb, "connect", 3);
    let setsockopt = sys(&mut mb, "setsockopt", 5);
    let read = sys(&mut mb, "read", 3);
    let write = sys(&mut mb, "write", 3);
    let close = sys(&mut mb, "close", 1);
    let fork = sys(&mut mb, "fork", 0);
    let wait4 = sys(&mut mb, "wait4", 4);
    let exit = sys(&mut mb, "exit_group", 1);
    let ep_create = sys(&mut mb, "epoll_create1", 1);
    let ep_ctl = sys(&mut mb, "epoll_ctl", 4);
    let ep_wait = sys(&mut mb, "epoll_wait", 4);
    mb.memory(8, Some(256));

    // sockaddr_in 127.0.0.1:11411.
    let addr = mb.reserve(16);
    let addr_init = {
        let mut bytes = [0u8; 16];
        bytes[0..2].copy_from_slice(&2u16.to_le_bytes());
        bytes[2..4].copy_from_slice(&11411u16.to_be_bytes());
        bytes[4..8].copy_from_slice(&[127, 0, 0, 1]);
        bytes
    };
    mb.data_at(addr, &addr_init);
    let ping = mb.c_str("ping");
    let pong = mb.c_str("pong");
    let quit = mb.c_str("QUIT");
    let evreg = mb.reserve(12);
    let evbuf = mb.reserve(4 * 12);
    let wbuf = mb.reserve(64);
    let cbuf = mb.reserve(64);
    let status = mb.reserve(4);

    let workers = workers.max(1);
    let requests = requests.max(1);
    let total = (workers * requests) as i32;

    let sig = mb.sig([], [I32]);
    let main = mb.func(sig, |b| {
        let srv = b.local(I64);
        let pid = b.local(I64);
        let ep = b.local(I64);
        let conn = b.local(I64);
        let cli = b.local(I64);
        let w = b.local(I32);
        let i = b.local(I32);
        let oks = b.local(I32);

        // The listening socket, created before forking so every worker
        // inherits the same open file description.
        b.i64(2).i64(1).i64(0).call(socket).local_set(srv);
        b.local_get(srv)
            .i64(1)
            .i64(2)
            .i64(addr as i64 + 12)
            .i64(4)
            .call(setsockopt)
            .drop_();
        b.local_get(srv).i64(addr as i64).i64(16).call(bind).drop_();
        b.local_get(srv).i64(64).call(listen).drop_();

        // Fork the worker pool.
        b.loop_(BlockType::Empty, |b| {
            b.call(fork).local_set(pid);
            b.local_get(pid).i64(0).eq64();
            b.if_(BlockType::Empty, |b| {
                // ---- worker: epoll-park on the inherited listener ----
                b.i64(0).call(ep_create).local_set(ep);
                b.i32(evreg as i32).i32(1).store32(0);
                b.i32(evreg as i32).local_get(srv).store64(4);
                b.local_get(ep)
                    .i64(1)
                    .local_get(srv)
                    .i64(evreg as i64)
                    .call(ep_ctl)
                    .drop_();
                b.loop_(BlockType::Empty, |b| {
                    b.local_get(ep)
                        .i64(evbuf as i64)
                        .i64(4)
                        .i64(-1)
                        .call(ep_wait)
                        .drop_();
                    // Accept may still block when a sibling won the race;
                    // the next connection wakes us either way.
                    b.local_get(srv).i64(0).i64(0).call(accept).local_set(conn);
                    b.local_get(conn)
                        .i64(wbuf as i64)
                        .i64(16)
                        .call(read)
                        .drop_();
                    b.i32(wbuf as i32).load8u(0).i32('Q' as i32).eq32();
                    b.if_(BlockType::Empty, |b| {
                        b.local_get(conn).call(close).drop_();
                        b.i64(0).call(exit).drop_();
                    });
                    b.local_get(conn)
                        .i64(pong as i64)
                        .i64(4)
                        .call(write)
                        .drop_();
                    b.local_get(conn).call(close).drop_();
                    b.br(0);
                });
            });
            b.local_get(w)
                .i32(1)
                .add32()
                .local_tee(w)
                .i32(workers as i32)
                .lt_s32()
                .br_if(0);
        });

        // ---- parent as client: workers × requests round trips ----
        b.loop_(BlockType::Empty, |b| {
            b.i64(2).i64(1).i64(0).call(socket).local_set(cli);
            b.local_get(cli)
                .i64(addr as i64)
                .i64(16)
                .call(connect)
                .drop_();
            b.local_get(cli).i64(ping as i64).i64(4).call(write).drop_();
            b.local_get(cli).i64(cbuf as i64).i64(16).call(read).drop_();
            b.i32(cbuf as i32).load8u(0).i32('p' as i32).eq32();
            b.if_(BlockType::Empty, |b| {
                b.local_get(oks).i32(1).add32().local_set(oks);
            });
            b.local_get(cli).call(close).drop_();
            b.local_get(i)
                .i32(1)
                .add32()
                .local_tee(i)
                .i32(total)
                .lt_s32()
                .br_if(0);
        });

        // ---- shutdown: one QUIT per worker, then reap them all ----
        b.i32(0).local_set(w);
        b.loop_(BlockType::Empty, |b| {
            b.i64(2).i64(1).i64(0).call(socket).local_set(cli);
            b.local_get(cli)
                .i64(addr as i64)
                .i64(16)
                .call(connect)
                .drop_();
            b.local_get(cli).i64(quit as i64).i64(4).call(write).drop_();
            b.local_get(cli).call(close).drop_();
            b.local_get(w)
                .i32(1)
                .add32()
                .local_tee(w)
                .i32(workers as i32)
                .lt_s32()
                .br_if(0);
        });
        b.i32(0).local_set(w);
        b.loop_(BlockType::Empty, |b| {
            b.i64(-1)
                .i64(status as i64)
                .i64(0)
                .i64(0)
                .call(wait4)
                .drop_();
            b.local_get(w)
                .i32(1)
                .add32()
                .local_tee(w)
                .i32(workers as i32)
                .lt_s32()
                .br_if(0);
        });
        // Exit 0 iff every request got its reply.
        b.local_get(oks).i32(total).ne32();
    });
    mb.export("_start", main);
    App {
        name: "prefork",
        description: "Prefork daemon",
        module: mb.build(),
        required: feats(&[
            Feature::BasicFs,
            Feature::Sockets,
            Feature::SockOpt,
            Feature::Fork,
            Feature::Wait4,
            Feature::Poll,
        ]),
        emulatable: false,
    }
}

/// `paho-mqtt`-style pub/sub client against an in-process echo broker.
pub fn paho_mqtt_sim(messages: u32) -> App {
    let mut mb = ModuleBuilder::new();
    let socket = sys(&mut mb, "socket", 3);
    let bind = sys(&mut mb, "bind", 3);
    let sendto = sys(&mut mb, "sendto", 6);
    let recvfrom = sys(&mut mb, "recvfrom", 6);
    let nanosleep = sys(&mut mb, "nanosleep", 2);
    let clone = sys(&mut mb, "clone", 5);
    let exit = sys(&mut mb, "exit", 1);
    let setsockopt = sys(&mut mb, "setsockopt", 5);
    mb.memory(8, Some(128));

    let broker_addr = mb.reserve(16);
    let client_addr = mb.reserve(16);
    for (at, port) in [(broker_addr, 1883u16), (client_addr, 42000u16)] {
        let mut bytes = [0u8; 16];
        bytes[0..2].copy_from_slice(&2u16.to_le_bytes());
        bytes[2..4].copy_from_slice(&port.to_be_bytes());
        bytes[4..8].copy_from_slice(&[127, 0, 0, 1]);
        mb.data_at(at, &bytes);
    }
    let publish = mb.c_str("PUBLISH sensors/temp 21.5");
    let buf = mb.reserve(256);
    let req_ts = mb.reserve(16);

    let sig = mb.sig([], [I32]);
    let main = mb.func(sig, |b| {
        let t = b.local(I64);
        let bsock = b.local(I64);
        let csock = b.local(I64);
        let i = b.local(I32);
        let n = messages.max(1) as i32;

        // Broker thread: echo every datagram back as the PUBACK.
        b.i64(0x10900)
            .i64(0)
            .i64(0)
            .i64(0)
            .i64(0)
            .call(clone)
            .local_set(t);
        b.local_get(t).i64(0).eq64();
        b.if_(BlockType::Empty, |b| {
            b.i64(2).i64(2).i64(0).call(socket).local_set(bsock);
            b.local_get(bsock)
                .i64(broker_addr as i64)
                .i64(16)
                .call(bind)
                .drop_();
            b.i32(768).i32(1).store32(0);
            let j = b.local(I32);
            b.loop_(BlockType::Empty, |b| {
                b.local_get(bsock)
                    .i64(buf as i64 + 128)
                    .i64(64)
                    .i64(0)
                    .i64(0)
                    .i64(0)
                    .call(recvfrom)
                    .drop_();
                b.local_get(bsock)
                    .i64(buf as i64 + 128)
                    .i64(4)
                    .i64(0)
                    .i64(client_addr as i64)
                    .i64(16)
                    .call(sendto)
                    .drop_();
                b.local_get(j)
                    .i32(1)
                    .add32()
                    .local_tee(j)
                    .i32(n)
                    .lt_s32()
                    .br_if(0);
            });
            b.i64(0).call(exit).drop_();
        });

        // Client: bind, QoS-1 publish loop with keepalive sleeps.
        b.loop_(BlockType::Empty, |b| {
            b.i32(768).load32(0).eqz32().br_if(0);
        });
        b.i64(2).i64(2).i64(0).call(socket).local_set(csock);
        b.local_get(csock)
            .i64(1)
            .i64(9)
            .i64(broker_addr as i64 + 12)
            .i64(4)
            .call(setsockopt)
            .drop_();
        b.local_get(csock)
            .i64(client_addr as i64)
            .i64(16)
            .call(bind)
            .drop_();
        b.loop_(BlockType::Empty, |b| {
            b.local_get(csock)
                .i64(publish as i64)
                .i64(25)
                .i64(0)
                .i64(broker_addr as i64)
                .i64(16)
                .call(sendto)
                .drop_();
            // Wait for the PUBACK echo.
            b.local_get(csock)
                .i64(buf as i64)
                .i64(64)
                .i64(0)
                .i64(0)
                .i64(0)
                .call(recvfrom)
                .drop_();
            // Keepalive pacing: 1ms virtual sleep.
            b.i32(req_ts as i32).i64(0).store64(0);
            b.i32(req_ts as i32).i64(1_000_000).store64(8);
            b.i64(req_ts as i64).i64(0).call(nanosleep).drop_();
            b.local_get(i)
                .i32(1)
                .add32()
                .local_tee(i)
                .i32(n)
                .lt_s32()
                .br_if(0);
        });
        b.i32(0);
    });
    mb.export("_start", main);
    App {
        name: "paho-bench",
        description: "MQTT App",
        module: mb.build(),
        required: feats(&[
            Feature::BasicFs,
            Feature::Sockets,
            Feature::SockOpt,
            Feature::Poll,
        ]),
        emulatable: false,
    }
}

/// The runnable suite at benchmark scales (Fig. 2 / Fig. 7 set).
pub fn suite() -> Vec<App> {
    vec![
        lua_sim(50),
        bash_sim(8),
        sqlite_sim(512),
        memcached_sim(32),
        paho_mqtt_sim(24),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wali::runner::WaliRunner;

    fn run(app: App) -> wali::RunOutcome {
        let bytes = wasm::encode::encode(&app.module);
        let module = wasm::decode::decode(&bytes).expect("round trip");
        let mut runner = WaliRunner::new_default();
        // The lua script file the interpreter loads.
        runner
            .kernel
            .lock_ok()
            .vfs
            .write_file(
                "/tmp/script.lua",
                b"print('x'); local t = {1,2,3}; return #t",
            )
            .unwrap();
        runner.register_program("/usr/bin/app", &module).unwrap();
        runner.spawn("/usr/bin/app", &[], &[]).unwrap();
        runner.run().expect("run")
    }

    #[test]
    fn lua_sim_runs_and_allocates() {
        let out = run(lua_sim(4));
        assert_eq!(out.exit_code(), Some(0));
        assert!(
            out.trace.counts.contains_key("brk"),
            "{:?}",
            out.trace.counts
        );
        assert!(out.stdout().contains("lua: done"));
    }

    #[test]
    fn bash_sim_reaps_all_jobs_with_sigchld() {
        let out = run(bash_sim(3));
        assert_eq!(out.exit_code(), Some(0), "all SIGCHLDs observed");
        assert_eq!(out.trace.counts.of("fork"), 3);
        assert_eq!(out.trace.counts.of("wait4"), 3);
        assert!(out.trace.counts.of("pipe") == 3);
    }

    #[test]
    fn sqlite_sim_uses_the_mapping_path() {
        let out = run(sqlite_sim(64));
        assert_eq!(out.exit_code(), Some(0));
        for call in ["mmap", "mremap", "msync", "munmap", "fsync", "pread64"] {
            assert!(out.trace.counts.contains_key(call), "missing {call}");
        }
        // The database file has real content.
        let k = run(sqlite_sim(64));
        assert_eq!(k.exit_code(), Some(0));
    }

    #[test]
    fn memcached_sim_serves_every_request() {
        let out = run(memcached_sim(5));
        assert_eq!(out.exit_code(), Some(0));
        assert_eq!(out.trace.counts.of("clone"), 1);
        assert!(out.trace.counts.of("accept") >= 5);
        assert!(out.trace.counts.of("connect") >= 5);
    }

    #[test]
    fn epoll_server_sim_serves_every_client() {
        let out = run(epoll_server_sim(4, 3));
        assert_eq!(
            out.exit_code(),
            Some(0),
            "all 12 requests served: {:?}",
            out.main_exit
        );
        assert_eq!(out.trace.counts.of("epoll_create1"), 1);
        // Listener + 4 connections added, 4 removed on hangup.
        assert!(
            out.trace.counts.of("epoll_ctl") >= 5,
            "{:?}",
            out.trace.counts
        );
        assert!(out.trace.counts.of("epoll_wait") >= 4);
        assert!(out.trace.counts.of("accept") >= 4);
    }

    #[test]
    fn epoll_server_sim_is_fusion_invariant() {
        // The server scenario must behave identically with fusion off
        // (the CI dispatch-equivalence gate runs this file that way).
        let out = run(epoll_server_sim(2, 2));
        assert_eq!(out.exit_code(), Some(0));
    }

    #[test]
    fn prefork_server_serves_and_reaps_every_worker() {
        let out = run(prefork_server_sim(3, 4));
        assert_eq!(
            out.exit_code(),
            Some(0),
            "all 12 replies received: {:?}",
            out.main_exit
        );
        assert_eq!(out.trace.counts.of("fork"), 3);
        // Blocked calls count one dispatch per retry, so these are floors.
        assert!(out.trace.counts.of("wait4") >= 3, "{:?}", out.trace.counts);
        assert_eq!(
            out.trace.counts.of("epoll_create1"),
            3,
            "one instance per worker"
        );
        // 12 serving accepts + 3 QUIT accepts.
        assert!(
            out.trace.counts.of("accept") >= 15,
            "{:?}",
            out.trace.counts
        );
        assert!(out.trace.counts.of("connect") >= 15);
        // Workers exited, so parent + 3 children report endings.
        assert_eq!(out.ends.len(), 4);
    }

    #[test]
    fn prefork_server_parallel_workers() {
        // The SMP variant of the scenario: with WALI_WORKERS=4 the
        // forked server processes are interpreted on separate host
        // workers and genuinely serve concurrently. Counts only — the
        // reply interleaving is timing-dependent under SMP.
        let app = prefork_server_sim(3, 4);
        let bytes = wasm::encode::encode(&app.module);
        let module = wasm::decode::decode(&bytes).expect("round trip");
        let mut runner = WaliRunner::new_default();
        runner.set_workers(4);
        runner.register_program("/usr/bin/app", &module).unwrap();
        runner.spawn("/usr/bin/app", &[], &[]).unwrap();
        let out = runner.run().expect("run");
        assert_eq!(out.exit_code(), Some(0), "{:?}", out.main_exit);
        assert_eq!(out.trace.counts.of("fork"), 3);
        assert_eq!(out.ends.len(), 4, "parent + 3 workers: {:?}", out.ends);
        assert!(out.trace.counts.of("accept") >= 15);
    }

    #[test]
    fn prefork_server_is_cow_invariant() {
        // The scenario must behave identically on the deep-copy baseline
        // (the CI WALI_NO_COW gate runs the suite that way).
        for cow in [true, false] {
            let app = prefork_server_sim(2, 2);
            let bytes = wasm::encode::encode(&app.module);
            let module = wasm::decode::decode(&bytes).expect("round trip");
            let mut runner = WaliRunner::new_default();
            runner.set_cow(cow);
            runner.register_program("/usr/bin/app", &module).unwrap();
            runner.spawn("/usr/bin/app", &[], &[]).unwrap();
            let out = runner.run().expect("run");
            assert_eq!(out.exit_code(), Some(0), "cow={cow}: {:?}", out.main_exit);
        }
    }

    #[test]
    fn paho_sim_round_trips_publishes() {
        let out = run(paho_mqtt_sim(4));
        assert_eq!(out.exit_code(), Some(0));
        assert!(out.trace.counts.of("sendto") >= 8, "{:?}", out.trace.counts);
        assert!(out.trace.counts.of("nanosleep") >= 4);
    }

    #[test]
    fn suite_profiles_differ_per_app() {
        // Fig. 2's premise: different applications exercise different
        // syscall subsets.
        let lua = run(lua_sim(2)).trace;
        let sqlite = run(sqlite_sim(32)).trace;
        assert!(lua.counts.contains_key("brk"));
        assert!(!lua.counts.contains_key("mmap"));
        assert!(sqlite.counts.contains_key("mmap"));
    }
}
