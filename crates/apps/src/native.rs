//! Native twins: the same work as the Wasm programs, written directly in
//! Rust against the kernel model.
//!
//! These are the Fig. 8 baselines ("Native Execution Time" axis) and the
//! payloads the container tier runs: no Wasm engine, no WALI translation —
//! just the workload against the kernel.

use vkernel::{Kernel, SysResult, Tid};
use wali_abi::flags::{O_CREAT, O_RDWR};

/// Outcome of a native twin run.
#[derive(Clone, Copy, Debug, Default)]
pub struct NativeStats {
    /// Syscalls issued.
    pub syscalls: u64,
    /// Abstract work units executed (matches the Wasm twin's op mix).
    pub work: u64,
}

fn unwrap_sys<T>(r: SysResult<T>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("native twin syscall failed: {e:?}"),
    }
}

/// Native `lua` twin: dispatch loop + heap growth + script I/O.
pub fn lua_native(k: &mut Kernel, tid: Tid, scale: u32) -> NativeStats {
    let mut stats = NativeStats::default();
    let fd = unwrap_sys(k.sys_openat(
        tid,
        wali_abi::flags::AT_FDCWD,
        "/tmp/script.lua",
        O_CREAT | O_RDWR,
        0o644,
    ));
    stats.syscalls += 1;
    let mut script = [0u8; 4096];
    let n = unwrap_sys(k.sys_read(tid, fd, &mut script)) as usize;
    let n = if n == 0 { 64 } else { n };
    unwrap_sys(k.sys_close(tid, fd));
    stats.syscalls += 2;

    let mut acc = 0u64;
    let mut i = 0u64;
    for _round in 0..scale.max(1) {
        for b in script.iter().take(n) {
            let op = (b & 7) as u64;
            if op == 4 && i.is_multiple_of(64) {
                // Heap growth beat (brk twin is pure bookkeeping here).
                stats.syscalls += 2;
            }
            acc = (acc + 0x9e37_79b9 + op).wrapping_mul(31);
            i += 1;
            stats.work += 1;
        }
        stats.syscalls += 1; // clock_gettime beat
        k.enter_syscall();
    }
    unwrap_sys(k.sys_write(tid, 1, b"lua: done\n"));
    stats.syscalls += 1;
    std::hint::black_box(acc);
    stats
}

/// Native single-process `bash` twin (builtin loop).
pub fn bash_native(k: &mut Kernel, tid: Tid, iterations: u32) -> NativeStats {
    let mut stats = NativeStats::default();
    let mut acc = 0u64;
    for i in 0..iterations.max(1) as u64 {
        acc = (acc + 0x5bd1_e995).wrapping_mul(33);
        stats.work += 1;
        if i % 256 == 0 {
            unwrap_sys(k.sys_write(tid, 1, b"$ "));
            let fd = unwrap_sys(k.sys_openat(
                tid,
                wali_abi::flags::AT_FDCWD,
                "/tmp/.bash_history",
                O_CREAT | O_RDWR,
                0o600,
            ));
            unwrap_sys(k.sys_write(tid, fd, b"$ "));
            unwrap_sys(k.sys_close(tid, fd));
            unwrap_sys(k.sys_getpid(tid));
            stats.syscalls += 5;
        }
    }
    std::hint::black_box(acc);
    stats
}

/// Native `sqlite` twin: paged inserts with journal beats.
pub fn sqlite_native(k: &mut Kernel, tid: Tid, rows: u32) -> NativeStats {
    let mut stats = NativeStats::default();
    let fd = unwrap_sys(k.sys_openat(
        tid,
        wali_abi::flags::AT_FDCWD,
        "/tmp/test.db",
        O_CREAT | O_RDWR,
        0o644,
    ));
    unwrap_sys(k.sys_ftruncate(tid, fd, 16384));
    stats.syscalls += 2;
    let mut pages = vec![0u8; 16384];
    let scratch = [0u8; 32];
    for i in 0..rows.max(1) {
        let slot = ((i as u64 * 2654435761) & 1023) as usize;
        pages[slot * 16..slot * 16 + 4].copy_from_slice(&i.to_le_bytes());
        pages[slot * 16 + 4..slot * 16 + 8].copy_from_slice(&(i * 7).to_le_bytes());
        stats.work += 1;
        if i % 32 == 0 {
            let jfd = unwrap_sys(k.sys_openat(
                tid,
                wali_abi::flags::AT_FDCWD,
                "/tmp/test.db-journal",
                O_CREAT | O_RDWR | wali_abi::flags::O_APPEND,
                0o644,
            ));
            unwrap_sys(k.sys_pwrite(tid, jfd, &scratch, 0));
            unwrap_sys(k.sys_fsync(tid, jfd));
            unwrap_sys(k.sys_close(tid, jfd));
            // msync twin: write the pages through.
            unwrap_sys(k.sys_pwrite(tid, fd, &pages, 0));
            stats.syscalls += 5;
        }
    }
    let mut out = [0u8; 16];
    unwrap_sys(k.sys_pread(tid, fd, &mut out, 128));
    unwrap_sys(k.sys_close(tid, fd));
    stats.syscalls += 2;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kp() -> (Kernel, Tid) {
        let mut k = Kernel::new();
        let tid = k.spawn_process();
        (k, tid)
    }

    #[test]
    fn twins_run_against_the_kernel() {
        let (mut k, tid) = kp();
        let lua = lua_native(&mut k, tid, 2);
        assert!(lua.work > 0 && lua.syscalls > 0);
        let bash = bash_native(&mut k, tid, 512);
        assert!(bash.syscalls >= 10);
        let sq = sqlite_native(&mut k, tid, 64);
        assert!(sq.syscalls > 5);
        assert!(k.vfs.read_file("/tmp/test.db").unwrap().len() >= 16384);
        assert_eq!(
            String::from_utf8_lossy(&k.take_console())
                .matches("lua: done")
                .count(),
            1
        );
    }

    #[test]
    fn twin_work_scales_with_parameter() {
        let (mut k, tid) = kp();
        let small = lua_native(&mut k, tid, 1);
        let big = lua_native(&mut k, tid, 8);
        assert!(big.work >= 4 * small.work);
    }
}
