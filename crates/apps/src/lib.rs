//! The application suite: the paper's Table 1 workloads as Wasm programs.
//!
//! Recompiling bash/lua/sqlite's C sources is out of scope for a Rust
//! reproduction, so each workload is a synthetic program built with the
//! module builder whose **syscall mix and feature requirements** mirror
//! the real codebase (Fig. 2 profile, Table 1 missing-feature column):
//!
//! * [`progs::lua_sim`] — interpreter-style compute: a dispatch loop,
//!   frequent small allocations (`brk`), script file I/O.
//! * [`progs::bash_sim`] — shell job control: `fork`, `pipe`, `dup2`,
//!   `wait4`, `rt_sigaction`/SIGCHLD handling.
//! * [`progs::sqlite_sim`] — page-oriented store: `mmap`-backed pages over
//!   a database file, `mremap` growth, `pread64`/`pwrite64`, `fsync`.
//! * [`progs::memcached_sim`] — threaded KV server: `clone` workers,
//!   loopback sockets, `setsockopt`, shared-memory coordination.
//! * [`progs::epoll_server_sim`] — event-loop KV server: one thread
//!   multiplexing every connection with `epoll_create1`/`epoll_ctl`/
//!   `epoll_wait`, plus N concurrent client threads.
//! * [`progs::prefork_server_sim`] — prefork daemon: the parent forks N
//!   workers that inherit one listening socket (COW memory), each worker
//!   epoll-parks on it and serves accepted connections until a QUIT;
//!   the parent drives the load and reaps the pool with `wait4`.
//! * [`progs::paho_mqtt_sim`] — pub/sub client: `connect`, timed publishes
//!   with `nanosleep`, socket echo round trips.
//!
//! Each app also ships a **native twin** (the same work as plain Rust over
//! the kernel model) used as the Fig. 8 baseline, and a declared feature
//! footprint consumed by the Table 1 porting matrix. [`catalog::catalog`]
//! additionally lists the paper's non-executable codebases (openssh, vim,
//! …) with their declared footprints so the full 17-row matrix can be
//! generated.

pub mod catalog;
pub mod native;
pub mod progs;
pub mod scenario;

pub use catalog::{catalog, CatalogEntry};
pub use progs::{
    bash_builtin_sim, bash_sim, epoll_server_sim, lua_sim, memcached_sim, paho_mqtt_sim,
    prefork_server_sim, sqlite_sim, suite, App,
};
