//! The full Table 1 catalog: every codebase the paper ports, with its
//! declared feature footprint.
//!
//! Five entries are *executable* here (the synthetic twins in
//! [`crate::progs`]); the rest are catalogued with the feature that the
//! paper's "Missing Features" column names, so the porting matrix is
//! computed from the same decision logic for all seventeen rows.

use std::collections::BTreeSet;

use wasi_layer::Feature;

/// One Table 1 row.
pub struct CatalogEntry {
    /// Codebase name.
    pub name: &'static str,
    /// Paper's description column.
    pub description: &'static str,
    /// Feature footprint.
    pub required: BTreeSet<Feature>,
    /// Whether `progs` ships an executable twin.
    pub executable: bool,
}

fn entry(
    name: &'static str,
    description: &'static str,
    required: &[Feature],
    executable: bool,
) -> CatalogEntry {
    CatalogEntry {
        name,
        description,
        required: required.iter().copied().collect(),
        executable,
    }
}

/// Builds the seventeen-row catalog in the paper's order.
pub fn catalog() -> Vec<CatalogEntry> {
    use Feature::*;
    vec![
        entry(
            "bash",
            "Shell",
            &[BasicFs, Signals, Fork, Wait4, Pipes, Dup, ProcessGroups],
            true,
        ),
        entry("lua", "Interpreter", &[BasicFs, Dup, Sysconf], true),
        entry("virgil", "Compiler", &[BasicFs, Chmod, Fork], false),
        entry("wizard", "WASM Engine", &[BasicFs, SelfHost, Mmap], false),
        entry(
            "memcached",
            "System Daemon",
            &[BasicFs, Sockets, Threads, SockOpt, Mmap, Poll],
            true,
        ),
        entry(
            "openssh",
            "System Services",
            &[BasicFs, Sockets, Users, Fork, Signals],
            false,
        ),
        entry("sqlite", "Database", &[BasicFs, Mmap, Mremap], true),
        entry(
            "paho-mqtt",
            "MQTT App",
            &[BasicFs, Sockets, SockOpt, Poll],
            true,
        ),
        entry("make", "CLI Tool", &[BasicFs, Fork, Wait4, Pipes], false),
        entry("vim", "CLI Tool", &[BasicFs, Mmap, Signals, Ioctl], false),
        entry("wasm-inst", "CLI Tool", &[BasicFs, Sysconf], false),
        entry("libuvwasi", "WASI Lib", &[BasicFs, Ioctl, Poll, Dup], false),
        entry("zlib", "Compression Lib", &[BasicFs], false),
        entry(
            "libevent",
            "System Lib",
            &[BasicFs, Sockets, SocketPair, Poll],
            false,
        ),
        entry(
            "libncurses",
            "System Lib",
            &[BasicFs, Ioctl, ProcessGroups],
            false,
        ),
        entry("openssl", "Security Lib", &[BasicFs, Sockets, Ioctl], false),
        entry(
            "LTP",
            "Test Harness",
            &[BasicFs, LinuxSpecific, Signals, Fork, Mmap],
            false,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use wasi_layer::Api;

    #[test]
    fn seventeen_rows_like_the_paper() {
        assert_eq!(catalog().len(), 17);
    }

    #[test]
    fn wali_ports_everything() {
        for e in catalog() {
            assert!(
                Api::Wali.supports(&e.required).is_ok(),
                "{} fails on WALI",
                e.name
            );
        }
    }

    #[test]
    fn wasi_only_ports_zlib() {
        let ported: Vec<&str> = catalog()
            .iter()
            .filter(|e| Api::Wasi.supports(&e.required).is_ok())
            .map(|e| e.name)
            .collect();
        assert_eq!(ported, vec!["zlib"], "Table 1: WASI runs only zlib");
    }

    #[test]
    fn wasix_ports_a_strict_middle_set() {
        let ported: Vec<&str> = catalog()
            .iter()
            .filter(|e| Api::Wasix.supports(&e.required).is_ok())
            .map(|e| e.name)
            .collect();
        // Paper's ✓ set for WASIX: bash? (no — signals), lua, paho-mqtt,
        // zlib, make. Our matrix derives: lua, paho-mqtt, make, zlib.
        assert!(ported.contains(&"lua"));
        assert!(ported.contains(&"zlib"));
        assert!(ported.contains(&"make"));
        assert!(
            !ported.contains(&"memcached"),
            "mmap blocks memcached on WASIX"
        );
        assert!(ported.len() > 1 && ported.len() < catalog().len());
    }

    #[test]
    fn executable_rows_match_the_suite() {
        let exec: Vec<&str> = catalog()
            .iter()
            .filter(|e| e.executable)
            .map(|e| e.name)
            .collect();
        assert_eq!(
            exec,
            vec!["bash", "lua", "memcached", "sqlite", "paho-mqtt"]
        );
    }
}
