//! Randomized scenario programs for the fuzzer: process/IPC DAGs.
//!
//! A [`Scenario`] is a declarative description of a process tree plus the
//! IPC it performs — channels (pipes, socketpairs, eventfds), futex
//! words, signals, timers — with each thread's work split into global
//! *phases*. [`Scenario::emit`] compiles it to a Wasm module (via the
//! same `ModuleBuilder` the test suite uses) whose every operation
//! prints a unique console mark, so the fuzzer's oracles can compare the
//! *multiset of marks* across schedulers and against the model's own
//! prediction ([`Scenario::expected_console`]).
//!
//! **Deadlock freedom by construction.** [`Scenario::validate`] enforces
//! a phase discipline: every blocking acquisition in phase `p` (channel
//! consume, futex wait, signal await) is satisfied only by productions
//! in phases `< p`, and productions never block (token totals stay far
//! below pipe capacity; futex sets and kills are fire-and-forget). By
//! strong induction over phases every op eventually completes, so a
//! generated scenario that *hangs* or *leaks* is a kernel bug, not a
//! generator bug. The remaining rules close mechanism-specific traps:
//! a channel has exactly one consumer site (edge-triggered epoll tokens
//! can't be stolen by a sibling), edge-triggered consumes take exactly
//! one token (a partial drain would swallow the only edge), oneshot
//! consumes take exactly two (forcing the `EPOLL_CTL_MOD` re-arm path),
//! an eventfd has exactly one consume op (its counter read drains
//! everything at once), and futex words stay within a single process
//! (the kernel keys them by memory space).
//!
//! **Victims** are leaf processes that print nothing and sleep forever
//! until their parent delivers a fatal `SIGTERM`; they pin
//! signal-driven teardown (exit 143) without racing console output
//! against delivery. **Vfork-exec** children only `execve` a tiny leaf
//! program, pinning the vfork/exec path with identical observables
//! whether or not copy-on-write memory is enabled.

use wali::testkit::{emit_sleep, spawn_thread, sys};
use wasm::build::{FuncBuilder, FuncId, ModuleBuilder};
use wasm::instr::BlockType;
use wasm::types::ValType::{I32, I64};
use wasm::Module;

/// Virtual path the emitted main module is registered under.
pub const MAIN_PATH: &str = "/usr/bin/app";
/// Virtual path the vfork-exec leaf program is registered under.
pub const LEAF_PATH: &str = "/usr/bin/leaf";

/// Signals a scenario process may install handlers for (never SIGTERM:
/// handler installs are inherited through fork, and victims rely on
/// SIGTERM staying fatal everywhere).
pub const HANDLED_SIGNOS: [u32; 4] = [1, 2, 10, 12]; // HUP, INT, USR1, USR2

const SIGTERM: u32 = 15;

// Caps that bound emitted code size and keep produce totals far below
// pipe capacity (productions must never block).
/// Maximum processes in the tree.
pub const MAX_PROCS: usize = 12;
/// Maximum threads per process (including the main thread).
pub const MAX_THREADS: usize = 4;
/// Maximum global phases.
pub const MAX_PHASES: usize = 6;
/// Maximum ops per (thread, phase).
pub const MAX_OPS_PER_PHASE: usize = 8;
/// Maximum channels.
pub const MAX_CHANS: usize = 16;
/// Maximum futex words.
pub const MAX_WORDS: usize = 8;
/// Maximum tokens moved through one channel over the whole scenario.
pub const MAX_CHAN_TOKENS: u32 = 64;

/// One IPC channel, created by the root before any fork so every
/// process inherits its fds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChanKind {
    /// `pipe()`: byte stream, unidirectional.
    Pipe,
    /// `socketpair(AF_UNIX, SOCK_STREAM)`: byte stream; side B produces,
    /// side A consumes.
    Sock,
    /// `eventfd2(0, 0)`: 8-byte counter; a read drains it entirely.
    EventFd,
}

/// How a consume op blocks until its channel is readable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mechanism {
    /// Plain blocking `read`.
    Direct,
    /// `poll(POLLIN)` then read.
    Poll,
    /// `ppoll(POLLIN, NULL, NULL)` then read.
    Ppoll,
    /// Level-triggered `epoll_wait` then read.
    EpollLt,
    /// Edge-triggered epoll; exactly one token.
    EpollEt,
    /// `EPOLLONESHOT` epoll; exactly two tokens, re-armed with
    /// `EPOLL_CTL_MOD` between them.
    EpollOneshot,
    /// Level-triggered epoll with a registration churn storm: the fd is
    /// `EPOLL_CTL_DEL`ed and re-`ADD`ed twice before every wait (each
    /// DEL may drop a queued ready-ring entry, each ADD re-probes), and
    /// on socket channels the producer side is half-closed after the
    /// last token so a registered, EOF-readable fd rides into teardown.
    EpollChurn,
    /// Each read is submitted as a `READ` SQE on a 1-entry batched
    /// syscall ring and drained with `wali_ring_enter(ring, 1, 1, 0)`;
    /// a `-ENOSYS` return (rings toggled off) falls back to the
    /// identical plain blocking read, which is exactly the equivalence
    /// the fuzzer's `WALI_NO_RING` oracle leg checks.
    Ring,
}

/// One operation inside a (thread, phase) slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Write `tokens` tokens into channel `chan` (never blocks).
    Produce { chan: usize, tokens: u32 },
    /// Consume `tokens` tokens from channel `chan`, blocking via `via`.
    Consume {
        chan: usize,
        tokens: u32,
        via: Mechanism,
    },
    /// Store 1 into futex word `word` and `FUTEX_WAKE` all waiters.
    FutexSet { word: usize },
    /// Block until futex word `word` becomes nonzero.
    FutexWait { word: usize },
    /// Virtual-clock sleep.
    Sleep { ns: u64 },
    /// `kill(pid_of(target), signo)` — the emitter loads the pid the
    /// parent recorded at fork time, so the killer must be the parent.
    Kill { target: usize, signo: u32 },
    /// Sleep-poll until this process's handler for `signo` has run.
    AwaitSignal { signo: u32 },
}

/// What kind of process a tree node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcKind {
    /// Forks, spawns threads, runs ops, reaps children, exits `10+idx`.
    Normal,
    /// Prints nothing, sleeps forever; killed by its parent's SIGTERM
    /// (exits 143).
    Victim,
    /// Spawned with `vfork`, immediately `execve`s [`LEAF_PATH`] (which
    /// prints `x` and exits 9).
    VforkExec,
}

/// One thread's work: `phases[p]` runs strictly after `phases[p-1]`
/// within the thread; phases are *not* barriers across threads.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadPlan {
    /// Ops per global phase (may be shorter than the scenario's phase
    /// count; missing phases are empty).
    pub phases: Vec<Vec<Op>>,
}

/// One process in the tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Proc {
    /// What this node is; only [`ProcKind::Normal`] carries work.
    pub kind: ProcKind,
    /// Child process indices (into [`Scenario::procs`]), forked in order.
    pub children: Vec<usize>,
    /// Signals this process installs the marking handler for.
    pub handles: Vec<u32>,
    /// Threads; index 0 is the process main thread.
    pub threads: Vec<ThreadPlan>,
}

impl Proc {
    /// A leaf process with no children, handlers or ops.
    pub fn leaf(kind: ProcKind) -> Proc {
        Proc {
            kind,
            children: Vec::new(),
            handles: Vec::new(),
            threads: vec![ThreadPlan::default()],
        }
    }
}

/// A full scenario: channels + futex words + the process tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scenario {
    /// Channels, created by the root before forking.
    pub chans: Vec<ChanKind>,
    /// Number of futex words.
    pub futex_words: usize,
    /// The process tree; `procs[0]` is the root.
    pub procs: Vec<Proc>,
}

/// The compiled form of a scenario.
pub struct ScenarioModules {
    /// The program every process in the tree runs.
    pub main: Module,
    /// The vfork-exec leaf, present iff the tree has a
    /// [`ProcKind::VforkExec`] node.
    pub leaf: Option<Module>,
}

impl ScenarioModules {
    /// `(path, module)` pairs to register before spawning [`MAIN_PATH`].
    pub fn programs(&self) -> Vec<(&'static str, &Module)> {
        let mut v = vec![(MAIN_PATH, &self.main)];
        if let Some(leaf) = &self.leaf {
            v.push((LEAF_PATH, leaf));
        }
        v
    }
}

/// Exit code a [`ProcKind::Normal`] process reports.
pub fn proc_exit_code(idx: usize) -> i32 {
    10 + idx as i32
}

impl Scenario {
    /// Checks every structural rule the emitter and the deadlock-freedom
    /// argument rely on. Generated scenarios satisfy this by
    /// construction; hand-written ones get told what they broke.
    pub fn validate(&self) -> Result<(), String> {
        if self.procs.is_empty() {
            return Err("no processes".into());
        }
        if self.procs.len() > MAX_PROCS {
            return Err(format!("too many procs ({})", self.procs.len()));
        }
        if self.chans.len() > MAX_CHANS {
            return Err(format!("too many chans ({})", self.chans.len()));
        }
        if self.futex_words > MAX_WORDS {
            return Err(format!("too many futex words ({})", self.futex_words));
        }
        if self.procs[0].kind != ProcKind::Normal {
            return Err("root must be Normal".into());
        }
        self.check_tree()?;
        self.check_procs()?;
        self.check_chans()?;
        self.check_futexes()?;
        self.check_signals()?;
        Ok(())
    }

    fn check_tree(&self) -> Result<(), String> {
        let n = self.procs.len();
        let mut seen = vec![false; n];
        seen[0] = true;
        let mut stack = vec![0usize];
        while let Some(p) = stack.pop() {
            for &c in &self.procs[p].children {
                if c >= n {
                    return Err(format!("proc {p} has out-of-range child {c}"));
                }
                if c == 0 {
                    return Err("root appears as a child".into());
                }
                if seen[c] {
                    return Err(format!("proc {c} has two parents (or a cycle)"));
                }
                seen[c] = true;
                stack.push(c);
            }
        }
        if let Some(orphan) = seen.iter().position(|s| !s) {
            return Err(format!("proc {orphan} unreachable from root"));
        }
        Ok(())
    }

    fn check_procs(&self) -> Result<(), String> {
        for (i, p) in self.procs.iter().enumerate() {
            if p.threads.is_empty() || p.threads.len() > MAX_THREADS {
                return Err(format!("proc {i}: bad thread count {}", p.threads.len()));
            }
            for t in &p.threads {
                if t.phases.len() > MAX_PHASES {
                    return Err(format!("proc {i}: too many phases"));
                }
                for ops in &t.phases {
                    if ops.len() > MAX_OPS_PER_PHASE {
                        return Err(format!("proc {i}: too many ops in a phase"));
                    }
                }
            }
            if p.kind != ProcKind::Normal {
                let has_ops = p
                    .threads
                    .iter()
                    .any(|t| t.phases.iter().any(|o| !o.is_empty()));
                if !p.children.is_empty()
                    || !p.handles.is_empty()
                    || p.threads.len() != 1
                    || has_ops
                {
                    return Err(format!("proc {i}: {:?} must be a bare leaf", p.kind));
                }
            }
        }
        Ok(())
    }

    /// Iterates every op with its location: `(proc, thread, phase, op)`.
    fn ops(&self) -> impl Iterator<Item = (usize, usize, usize, &Op)> {
        self.procs.iter().enumerate().flat_map(|(pi, p)| {
            p.threads.iter().enumerate().flat_map(move |(ti, t)| {
                t.phases
                    .iter()
                    .enumerate()
                    .flat_map(move |(ph, ops)| ops.iter().map(move |op| (pi, ti, ph, op)))
            })
        })
    }

    fn check_chans(&self) -> Result<(), String> {
        struct ChanUse {
            produced: u32,
            consumed: u32,
            consume_ops: u32,
            site: Option<(usize, usize)>,
            via: Option<Mechanism>,
            max_produce_phase: Option<usize>,
            min_consume_phase: Option<usize>,
        }
        let mut uses: Vec<ChanUse> = (0..self.chans.len())
            .map(|_| ChanUse {
                produced: 0,
                consumed: 0,
                consume_ops: 0,
                site: None,
                via: None,
                max_produce_phase: None,
                min_consume_phase: None,
            })
            .collect();
        for (pi, ti, ph, op) in self.ops() {
            match *op {
                Op::Produce { chan, tokens } => {
                    let u = uses.get_mut(chan).ok_or(format!("bad chan {chan}"))?;
                    if tokens == 0 {
                        return Err(format!("chan {chan}: zero-token produce"));
                    }
                    u.produced += tokens;
                    u.max_produce_phase = Some(u.max_produce_phase.unwrap_or(0).max(ph));
                }
                Op::Consume { chan, tokens, via } => {
                    let u = uses.get_mut(chan).ok_or(format!("bad chan {chan}"))?;
                    if tokens == 0 {
                        return Err(format!("chan {chan}: zero-token consume"));
                    }
                    match via {
                        Mechanism::EpollEt if tokens != 1 => {
                            return Err(format!("chan {chan}: edge-triggered consume must take 1"));
                        }
                        Mechanism::EpollOneshot if tokens != 2 => {
                            return Err(format!("chan {chan}: oneshot consume must take 2"));
                        }
                        _ => {}
                    }
                    if *u.site.get_or_insert((pi, ti)) != (pi, ti) {
                        return Err(format!("chan {chan}: two consumer sites"));
                    }
                    if *u.via.get_or_insert(via) != via {
                        return Err(format!("chan {chan}: mixed consume mechanisms"));
                    }
                    u.consumed += tokens;
                    u.consume_ops += 1;
                    u.min_consume_phase =
                        Some(u.min_consume_phase.map_or(ph, |m: usize| m.min(ph)));
                }
                _ => {}
            }
        }
        for (c, u) in uses.iter().enumerate() {
            if u.produced != u.consumed {
                return Err(format!(
                    "chan {c}: {} produced != {} consumed",
                    u.produced, u.consumed
                ));
            }
            if u.produced > MAX_CHAN_TOKENS {
                return Err(format!("chan {c}: token total {} too high", u.produced));
            }
            if let (Some(maxp), Some(minc)) = (u.max_produce_phase, u.min_consume_phase) {
                if maxp >= minc {
                    return Err(format!(
                        "chan {c}: produce in phase {maxp} not before consume in phase {minc}"
                    ));
                }
            }
            if self.chans[c] == ChanKind::EventFd && u.consume_ops > 1 {
                return Err(format!(
                    "chan {c}: eventfd needs a single consume op (reads drain the counter)"
                ));
            }
        }
        Ok(())
    }

    fn check_futexes(&self) -> Result<(), String> {
        struct WordUse {
            proc: Option<usize>,
            max_set_phase: Option<usize>,
            min_wait_phase: Option<usize>,
        }
        let mut uses: Vec<WordUse> = (0..self.futex_words)
            .map(|_| WordUse {
                proc: None,
                max_set_phase: None,
                min_wait_phase: None,
            })
            .collect();
        for (pi, _ti, ph, op) in self.ops() {
            let (word, is_wait) = match *op {
                Op::FutexSet { word } => (word, false),
                Op::FutexWait { word } => (word, true),
                _ => continue,
            };
            let u = uses.get_mut(word).ok_or(format!("bad futex word {word}"))?;
            if *u.proc.get_or_insert(pi) != pi {
                return Err(format!("futex word {word} used from two processes"));
            }
            if is_wait {
                u.min_wait_phase = Some(u.min_wait_phase.map_or(ph, |m: usize| m.min(ph)));
            } else {
                u.max_set_phase = Some(u.max_set_phase.unwrap_or(0).max(ph));
            }
        }
        for (w, u) in uses.iter().enumerate() {
            if let Some(minw) = u.min_wait_phase {
                match u.max_set_phase {
                    None => return Err(format!("futex word {w}: wait with no set")),
                    Some(maxs) if maxs >= minw => {
                        return Err(format!(
                            "futex word {w}: set in phase {maxs} not before wait in phase {minw}"
                        ));
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    fn check_signals(&self) -> Result<(), String> {
        let parent: Vec<Option<usize>> = {
            let mut par = vec![None; self.procs.len()];
            for (pi, p) in self.procs.iter().enumerate() {
                for &c in &p.children {
                    par[c] = Some(pi);
                }
            }
            par
        };
        for (i, p) in self.procs.iter().enumerate() {
            for &s in &p.handles {
                if !HANDLED_SIGNOS.contains(&s) {
                    return Err(format!("proc {i}: handler for unsupported signal {s}"));
                }
            }
        }
        // (target, signo) -> earliest kill phase; also count per pair.
        let mut kills: Vec<(usize, u32, usize)> = Vec::new();
        for (pi, _ti, ph, op) in self.ops() {
            if let Op::Kill { target, signo } = *op {
                if target >= self.procs.len() {
                    return Err(format!("kill of out-of-range proc {target}"));
                }
                if parent[target] != Some(pi) {
                    return Err(format!(
                        "proc {pi} kills {target} but only the parent knows the pid"
                    ));
                }
                if kills.iter().any(|&(t, s, _)| t == target && s == signo) {
                    return Err(format!("two kills of proc {target} with signal {signo}"));
                }
                let tgt = &self.procs[target];
                if tgt.kind == ProcKind::Victim {
                    if signo != SIGTERM {
                        return Err(format!("victim {target} must be killed with SIGTERM"));
                    }
                } else if !tgt.handles.contains(&signo) {
                    return Err(format!(
                        "proc {target} killed with unhandled signal {signo} (would die)"
                    ));
                }
                kills.push((target, signo, ph));
            }
        }
        for (i, p) in self.procs.iter().enumerate() {
            if p.kind == ProcKind::Victim && !kills.iter().any(|&(t, s, _)| t == i && s == SIGTERM)
            {
                return Err(format!(
                    "victim {i} is never killed (would hang the reaper)"
                ));
            }
        }
        for (pi, _ti, ph, op) in self.ops() {
            if let Op::AwaitSignal { signo } = *op {
                if !self.procs[pi].handles.contains(&signo) {
                    return Err(format!("proc {pi} awaits unhandled signal {signo}"));
                }
                let ok = kills
                    .iter()
                    .any(|&(t, s, kp)| t == pi && s == signo && kp < ph);
                if !ok {
                    return Err(format!(
                        "proc {pi}: await of signal {signo} in phase {ph} has no earlier kill"
                    ));
                }
            }
        }
        Ok(())
    }

    /// The sorted multiset of console lines a correct run must print:
    /// one `p<proc>t<thread>o<seq>` mark per op, plus one `x` per
    /// vfork-exec leaf.
    pub fn expected_console(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (pi, p) in self.procs.iter().enumerate() {
            for (ti, t) in p.threads.iter().enumerate() {
                let mut seq = 0usize;
                for ops in &t.phases {
                    for _ in ops {
                        lines.push(format!("p{pi}t{ti}o{seq}"));
                        seq += 1;
                    }
                }
            }
            if p.kind == ProcKind::VforkExec {
                lines.push("x".into());
            }
        }
        lines.sort();
        lines
    }

    /// The root's expected exit code.
    pub fn expected_main_exit(&self) -> i32 {
        proc_exit_code(0)
    }

    /// Compiles the scenario. Panics if [`Scenario::validate`] fails —
    /// call it first on untrusted input.
    pub fn emit(&self) -> ScenarioModules {
        self.validate().expect("emit of invalid scenario");
        let leaf = if self.procs.iter().any(|p| p.kind == ProcKind::VforkExec) {
            Some(leaf_module())
        } else {
            None
        };
        ScenarioModules {
            main: emit_main(self),
            leaf,
        }
    }
}

/// The vfork-exec leaf: prints `x`, exits 9.
fn leaf_module() -> Module {
    let mut mb = ModuleBuilder::new();
    let write = sys(&mut mb, "write", 3);
    mb.memory(2, Some(16));
    let msg = mb.c_str("x\n");
    let sig = mb.sig([], [I32]);
    let main = mb.func(sig, |b| {
        b.i64(1).i64(msg as i64).i64(2).call(write).drop_();
        b.i32(9);
    });
    mb.export("_start", main);
    mb.build()
}

/// All the syscall imports the emitted program may use.
struct Sys {
    write: FuncId,
    read: FuncId,
    pipe: FuncId,
    socketpair: FuncId,
    eventfd2: FuncId,
    futex: FuncId,
    nanosleep: FuncId,
    fork: FuncId,
    vfork: FuncId,
    execve: FuncId,
    wait4: FuncId,
    exit: FuncId,
    exit_group: FuncId,
    clone: FuncId,
    kill: FuncId,
    sigaction: FuncId,
    poll: FuncId,
    ppoll: FuncId,
    epoll_create1: FuncId,
    epoll_ctl: FuncId,
    epoll_wait: FuncId,
    shutdown: FuncId,
    ring_enter: FuncId,
}

impl Sys {
    fn import(mb: &mut ModuleBuilder) -> Sys {
        Sys {
            write: sys(mb, "write", 3),
            read: sys(mb, "read", 3),
            pipe: sys(mb, "pipe", 1),
            socketpair: sys(mb, "socketpair", 4),
            eventfd2: sys(mb, "eventfd2", 2),
            futex: sys(mb, "futex", 6),
            nanosleep: sys(mb, "nanosleep", 2),
            fork: sys(mb, "fork", 0),
            vfork: sys(mb, "vfork", 0),
            execve: sys(mb, "execve", 3),
            wait4: sys(mb, "wait4", 4),
            exit: sys(mb, "exit", 1),
            exit_group: sys(mb, "exit_group", 1),
            clone: sys(mb, "clone", 5),
            kill: sys(mb, "kill", 2),
            sigaction: sys(mb, "rt_sigaction", 4),
            poll: sys(mb, "poll", 3),
            ppoll: sys(mb, "ppoll", 4),
            epoll_create1: sys(mb, "epoll_create1", 1),
            epoll_ctl: sys(mb, "epoll_ctl", 4),
            epoll_wait: sys(mb, "epoll_wait", 4),
            shutdown: sys(mb, "shutdown", 2),
            ring_enter: sys(mb, "wali_ring_enter", 4),
        }
    }
}

// Per-thread scratch block layout (threads share memory, so every
// thread gets its own block; forked processes get COW copies).
const SCRATCH_TS: u32 = 0; // timespec, 16 B
const SCRATCH_BUF: u32 = 16; // read/write buffer, 16 B
const SCRATCH_STATUS: u32 = 32; // wait4 status, 8 B
const SCRATCH_PFD: u32 = 40; // one pollfd, 8 B
const SCRATCH_MASK: u32 = 48; // ppoll sigmask, 8 B
const SCRATCH_EV: u32 = 56; // epoll_ctl event, 12 B (+pad)
const SCRATCH_EVBUF: u32 = 72; // epoll_wait out buffer, 8 events
const SCRATCH_RING: u32 = 72 + 8 * 12; // 1-entry SQ/CQ ring: 32 + 32 + 16 B
const SCRATCH_SIZE: u32 = SCRATCH_RING + 80;

/// Reserved memory addresses, all allocated before any function body so
/// closures can reference them.
struct Layout {
    chan_fds: u32, // [read fd, write fd] per chan, 8 B each
    futex: u32,    // 8 B per word (4 used)
    pids: u32,     // fork-returned pid per proc, 8 B each
    done: u32,     // per-(proc,thread) completion flag, 4 B each
    hflags: u32,   // per-signo handler-ran flag, 4 B each
    act: u32,      // sigaction struct, 24 B
    scratch: u32,  // SCRATCH_SIZE per (proc,thread)
    leaf_path: u32,
    /// `marks[proc][thread]` = (addr, len) per op, in emission order.
    marks: Vec<Vec<Vec<(u32, u32)>>>,
    /// Flat (proc, thread) index base per proc.
    thread_base: Vec<u32>,
}

impl Layout {
    fn new(mb: &mut ModuleBuilder, scn: &Scenario) -> Layout {
        let mut thread_base = Vec::with_capacity(scn.procs.len());
        let mut flat = 0u32;
        for p in &scn.procs {
            thread_base.push(flat);
            flat += p.threads.len() as u32;
        }
        let chan_fds = mb.reserve((scn.chans.len().max(1) as u32) * 8);
        let futex = mb.reserve((scn.futex_words.max(1) as u32) * 8);
        let pids = mb.reserve(scn.procs.len() as u32 * 8);
        let done = mb.reserve(flat * 4);
        let hflags = mb.reserve(64 * 4);
        let act = mb.reserve(24);
        let scratch = mb.reserve(flat * SCRATCH_SIZE);
        let leaf_path = mb.c_str(LEAF_PATH);
        let marks = scn
            .procs
            .iter()
            .enumerate()
            .map(|(pi, p)| {
                p.threads
                    .iter()
                    .enumerate()
                    .map(|(ti, t)| {
                        let n: usize = t.phases.iter().map(Vec::len).sum();
                        (0..n)
                            .map(|seq| {
                                let s = format!("p{pi}t{ti}o{seq}\n");
                                (mb.c_str(&s), s.len() as u32)
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect();
        Layout {
            chan_fds,
            futex,
            pids,
            done,
            hflags,
            act,
            scratch,
            leaf_path,
            marks,
            thread_base,
        }
    }

    fn chan_slot(&self, chan: usize) -> u32 {
        self.chan_fds + chan as u32 * 8
    }
    fn word_addr(&self, word: usize) -> u32 {
        self.futex + word as u32 * 8
    }
    fn pid_slot(&self, proc: usize) -> u32 {
        self.pids + proc as u32 * 8
    }
    fn flat(&self, proc: usize, thread: usize) -> u32 {
        self.thread_base[proc] + thread as u32
    }
    fn done_flag(&self, proc: usize, thread: usize) -> u32 {
        self.done + self.flat(proc, thread) * 4
    }
    fn hflag(&self, signo: u32) -> u32 {
        self.hflags + signo * 4
    }
    fn scratch(&self, proc: usize, thread: usize) -> u32 {
        self.scratch + self.flat(proc, thread) * SCRATCH_SIZE
    }
}

/// Everything the per-op emitters need.
struct Ctx {
    sys: Sys,
    lay: Layout,
    // Shared wasm locals (each task has its own frame copy).
    l_ret: u32,  // i64 syscall return scratch
    l_got: u32,  // i64 eventfd accumulator
    l_pid: u32,  // i64 fork return
    l_i: u32,    // i32 loop counter
    l_all: u32,  // i32 join-poll accumulator
    l_j: u32,    // i32 join-poll counter
    l_epfd: u32, // i64 epoll fd
}

fn emit_main(scn: &Scenario) -> Module {
    let mut mb = ModuleBuilder::new();
    let sys = Sys::import(&mut mb);
    mb.memory(4, Some(64));
    let lay = Layout::new(&mut mb, scn);

    // The one signal handler: sets hflags[signo]. Table index 2, like
    // the native ABI's 0/1 = SIG_DFL/SIG_IGN encoding.
    let handler_sig = mb.sig([I32], []);
    let dummy = mb.func(handler_sig, |_| {});
    let hflags = lay.hflags;
    let handler = mb.func(handler_sig, |b| {
        b.i32(hflags as i32)
            .local_get(0)
            .i32(4)
            .mul32()
            .add32()
            .i32(1)
            .store32(0);
    });
    let base = mb.table_entries(&[dummy, dummy, handler]);
    assert_eq!(base, 0, "handler must land at table index 2");

    let main_sig = mb.sig([], [I32]);
    let main = mb.func(main_sig, |b| {
        let ctx = Ctx {
            sys,
            lay,
            l_ret: b.local(I64),
            l_got: b.local(I64),
            l_pid: b.local(I64),
            l_i: b.local(I32),
            l_all: b.local(I32),
            l_j: b.local(I32),
            l_epfd: b.local(I64),
        };
        emit_chan_creation(b, &ctx, scn);
        emit_proc(b, &ctx, scn, 0);
        // Unreachable (the root exit_groups), but the signature needs it.
        b.i32(0);
    });
    mb.export("_start", main);
    mb.build()
}

/// Root-only: create every channel before the first fork so all
/// processes inherit the fds (addresses are pre-fork memory, so COW
/// copies agree on them too).
fn emit_chan_creation(b: &mut FuncBuilder, ctx: &Ctx, scn: &Scenario) {
    for (c, kind) in scn.chans.iter().enumerate() {
        let slot = ctx.lay.chan_slot(c);
        match kind {
            ChanKind::Pipe => {
                b.i64(slot as i64).call(ctx.sys.pipe).drop_();
            }
            ChanKind::Sock => {
                // AF_UNIX=1, SOCK_STREAM=1; [0]=consume side, [4]=produce.
                b.i64(1)
                    .i64(1)
                    .i64(0)
                    .i64(slot as i64)
                    .call(ctx.sys.socketpair)
                    .drop_();
            }
            ChanKind::EventFd => {
                b.i64(0).i64(0).call(ctx.sys.eventfd2).local_set(ctx.l_ret);
                b.i32(slot as i32).local_get(ctx.l_ret).wrap().store32(0);
                b.i32(slot as i32).local_get(ctx.l_ret).wrap().store32(4);
            }
        }
    }
}

/// Emits one process's whole life. Every non-root call site is inside a
/// `fork() == 0` branch; the body never falls through (it exits or, for
/// victims, sleeps forever).
fn emit_proc(b: &mut FuncBuilder, ctx: &Ctx, scn: &Scenario, pi: usize) {
    let p = &scn.procs[pi];
    match p.kind {
        ProcKind::Victim => {
            emit_victim_body(b, ctx, pi);
            return;
        }
        ProcKind::VforkExec => unreachable!("vfork children are emitted at the fork site"),
        ProcKind::Normal => {}
    }

    // 1. Handlers, before any child can be forked or signal sent.
    for &signo in &p.handles {
        b.i32(ctx.lay.act as i32).i32(2).store32(0); // handler = table index 2
        b.i64(signo as i64)
            .i64(ctx.lay.act as i64)
            .i64(0)
            .i64(8)
            .call(ctx.sys.sigaction)
            .drop_();
    }

    // 2. Fork children in order, recording each pid.
    for &c in &p.children {
        if scn.procs[c].kind == ProcKind::VforkExec {
            b.call(ctx.sys.vfork).local_set(ctx.l_pid);
            b.local_get(ctx.l_pid).i64(0).eq64();
            b.if_(BlockType::Empty, |b| {
                b.i64(ctx.lay.leaf_path as i64)
                    .i64(0)
                    .i64(0)
                    .call(ctx.sys.execve)
                    .drop_();
                // Exec failed — die loudly rather than run as a twin.
                b.i64(99).call(ctx.sys.exit_group).drop_();
            });
        } else {
            b.call(ctx.sys.fork).local_set(ctx.l_pid);
            b.local_get(ctx.l_pid).i64(0).eq64();
            b.if_(BlockType::Empty, |b| {
                emit_proc(b, ctx, scn, c);
            });
        }
        b.i32(ctx.lay.pid_slot(c) as i32)
            .local_get(ctx.l_pid)
            .store64(0);
    }

    // 3. Spawn sibling threads (they run their phases then flag done).
    for ti in 1..p.threads.len() {
        spawn_thread(b, ctx.sys.clone, |b| {
            emit_thread_ops(b, ctx, scn, pi, ti);
            b.i32(ctx.lay.done_flag(pi, ti) as i32).i32(1).store32(0);
            b.i64(0).call(ctx.sys.exit).drop_();
        });
    }

    // 4. The main thread's own phases.
    emit_thread_ops(b, ctx, scn, pi, 0);

    // 5. Join: sleep-poll until every sibling flagged done.
    if p.threads.len() > 1 {
        let ts = ctx.lay.scratch(pi, 0) + SCRATCH_TS;
        b.loop_(BlockType::Empty, |b| {
            b.i32(1).local_set(ctx.l_all);
            b.i32(1).local_set(ctx.l_j);
            b.loop_(BlockType::Empty, |b| {
                b.i32((ctx.lay.done + ctx.lay.thread_base[pi] * 4) as i32)
                    .local_get(ctx.l_j)
                    .i32(4)
                    .mul32()
                    .add32()
                    .load32(0)
                    .eqz32();
                b.if_(BlockType::Empty, |b| {
                    b.i32(0).local_set(ctx.l_all);
                });
                b.local_get(ctx.l_j)
                    .i32(1)
                    .add32()
                    .local_tee(ctx.l_j)
                    .i32(p.threads.len() as i32)
                    .lt_s32()
                    .br_if(0);
            });
            b.local_get(ctx.l_all).eqz32();
            b.if_(BlockType::Empty, |b| {
                emit_sleep(b, ctx.sys.nanosleep, ts, 0, 100_000);
                b.br(1);
            });
        });
    }

    // 6. Reap every child (victims are dead by now: kills happen in
    // phases, phases end before the join completes).
    for &c in &p.children {
        b.i32(ctx.lay.pid_slot(c) as i32)
            .load64(0)
            .i64((ctx.lay.scratch(pi, 0) + SCRATCH_STATUS) as i64)
            .i64(0)
            .i64(0)
            .call(ctx.sys.wait4)
            .drop_();
    }

    // 7. Exit with this process's signature code.
    b.i64(proc_exit_code(pi) as i64)
        .call(ctx.sys.exit_group)
        .drop_();
}

/// A victim prints nothing and sleeps until SIGTERM takes it.
fn emit_victim_body(b: &mut FuncBuilder, ctx: &Ctx, pi: usize) {
    let ts = ctx.lay.scratch(pi, 0) + SCRATCH_TS;
    b.loop_(BlockType::Empty, |b| {
        emit_sleep(b, ctx.sys.nanosleep, ts, 1, 0);
        b.i32(1).br_if(0);
    });
}

/// One thread's phases, each op followed by its console mark.
fn emit_thread_ops(b: &mut FuncBuilder, ctx: &Ctx, scn: &Scenario, pi: usize, ti: usize) {
    let mut seq = 0usize;
    for ops in &scn.procs[pi].threads[ti].phases {
        for op in ops {
            emit_op(b, ctx, scn, pi, ti, op);
            let (addr, len) = ctx.lay.marks[pi][ti][seq];
            b.i64(1)
                .i64(addr as i64)
                .i64(len as i64)
                .call(ctx.sys.write)
                .drop_();
            seq += 1;
        }
    }
}

fn emit_op(b: &mut FuncBuilder, ctx: &Ctx, scn: &Scenario, pi: usize, ti: usize, op: &Op) {
    let scratch = ctx.lay.scratch(pi, ti);
    match *op {
        Op::Produce { chan, tokens } => emit_produce(b, ctx, scn, chan, tokens, scratch),
        Op::Consume { chan, tokens, via } => emit_consume(b, ctx, scn, chan, tokens, via, scratch),
        Op::FutexSet { word } => {
            let addr = ctx.lay.word_addr(word);
            b.i32(addr as i32).i32(1).store32(0);
            b.i64(addr as i64)
                .i64(1) // FUTEX_WAKE
                .i64(i32::MAX as i64)
                .i64(0)
                .i64(0)
                .i64(0)
                .call(ctx.sys.futex)
                .drop_();
        }
        Op::FutexWait { word } => {
            let addr = ctx.lay.word_addr(word);
            b.loop_(BlockType::Empty, |b| {
                b.i32(addr as i32).load32(0).eqz32();
                b.if_(BlockType::Empty, |b| {
                    // FUTEX_WAIT while the word is still 0; the kernel
                    // rechecks under its lock, so this can't miss the set.
                    b.i64(addr as i64)
                        .i64(0)
                        .i64(0)
                        .i64(0)
                        .i64(0)
                        .i64(0)
                        .call(ctx.sys.futex)
                        .drop_();
                    b.br(1);
                });
            });
        }
        Op::Sleep { ns } => {
            let ts = scratch + SCRATCH_TS;
            emit_sleep(
                b,
                ctx.sys.nanosleep,
                ts,
                (ns / 1_000_000_000) as i64,
                (ns % 1_000_000_000) as i64,
            );
        }
        Op::Kill { target, signo } => {
            b.i32(ctx.lay.pid_slot(target) as i32)
                .load64(0)
                .i64(signo as i64)
                .call(ctx.sys.kill)
                .drop_();
        }
        Op::AwaitSignal { signo } => {
            let ts = scratch + SCRATCH_TS;
            let flag = ctx.lay.hflag(signo);
            b.loop_(BlockType::Empty, |b| {
                b.i32(flag as i32).load32(0).eqz32();
                b.if_(BlockType::Empty, |b| {
                    emit_sleep(b, ctx.sys.nanosleep, ts, 0, 100_000);
                    b.br(1);
                });
            });
        }
    }
}

fn emit_produce(
    b: &mut FuncBuilder,
    ctx: &Ctx,
    scn: &Scenario,
    chan: usize,
    tokens: u32,
    scratch: u32,
) {
    let slot = ctx.lay.chan_slot(chan);
    let buf = scratch + SCRATCH_BUF;
    if scn.chans[chan] == ChanKind::EventFd {
        b.i32(buf as i32).i64(1).store64(0);
    } else {
        b.i32(buf as i32).i32(b'.' as i32).store8(0);
    }
    let len: i64 = if scn.chans[chan] == ChanKind::EventFd {
        8
    } else {
        1
    };
    emit_repeat(b, ctx, tokens, |b, ctx| {
        b.i32(slot as i32)
            .load32(4)
            .extend_u()
            .i64(buf as i64)
            .i64(len)
            .call(ctx.sys.write)
            .drop_();
    });
}

fn emit_consume(
    b: &mut FuncBuilder,
    ctx: &Ctx,
    scn: &Scenario,
    chan: usize,
    tokens: u32,
    via: Mechanism,
    scratch: u32,
) {
    use wali_abi::flags::{
        EPOLLET, EPOLLIN, EPOLLONESHOT, EPOLL_CTL_ADD, EPOLL_CTL_DEL, EPOLL_CTL_MOD, SHUT_WR,
    };
    let is_eventfd = scn.chans[chan] == ChanKind::EventFd;
    let slot = ctx.lay.chan_slot(chan);

    // Epoll mechanisms register once up front (a fresh epoll fd per op:
    // teardown releases it with the rest of the task's files).
    let epoll_events = match via {
        Mechanism::EpollLt | Mechanism::EpollChurn => Some(EPOLLIN),
        Mechanism::EpollEt => Some(EPOLLIN | EPOLLET),
        Mechanism::EpollOneshot => Some(EPOLLIN | EPOLLONESHOT),
        _ => None,
    };
    if let Some(events) = epoll_events {
        b.i64(0).call(ctx.sys.epoll_create1).local_set(ctx.l_epfd);
        emit_epoll_ctl(b, ctx, EPOLL_CTL_ADD, slot, events, scratch);
    }

    // One blocking wait for readiness (no-op for Direct and Ring,
    // whose reads block by themselves).
    let emit_wait = |b: &mut FuncBuilder, ctx: &Ctx| match via {
        Mechanism::Direct | Mechanism::Ring => {}
        Mechanism::Poll => {
            emit_pollfd(b, slot, scratch);
            b.i64((scratch + SCRATCH_PFD) as i64)
                .i64(1)
                .i64(-1)
                .call(ctx.sys.poll)
                .drop_();
        }
        Mechanism::Ppoll => {
            emit_pollfd(b, slot, scratch);
            b.i32((scratch + SCRATCH_MASK) as i32).i64(0).store64(0);
            b.i64((scratch + SCRATCH_PFD) as i64)
                .i64(1)
                .i64(0) // NULL timeout: infinite
                .i64((scratch + SCRATCH_MASK) as i64)
                .call(ctx.sys.ppoll)
                .drop_();
        }
        Mechanism::EpollLt | Mechanism::EpollEt | Mechanism::EpollOneshot => {
            b.local_get(ctx.l_epfd)
                .i64((scratch + SCRATCH_EVBUF) as i64)
                .i64(8)
                .i64(-1)
                .call(ctx.sys.epoll_wait)
                .drop_();
        }
        Mechanism::EpollChurn => {
            // Registration churn storm before the wait: a DEL drops any
            // queued ready entry, an ADD of a ready fd must queue a
            // fresh one — the wait after the storm may never hang.
            for _ in 0..2 {
                emit_epoll_ctl(b, ctx, EPOLL_CTL_DEL, slot, 0, scratch);
                emit_epoll_ctl(b, ctx, EPOLL_CTL_ADD, slot, EPOLLIN, scratch);
            }
            b.local_get(ctx.l_epfd)
                .i64((scratch + SCRATCH_EVBUF) as i64)
                .i64(8)
                .i64(-1)
                .call(ctx.sys.epoll_wait)
                .drop_();
        }
    };

    // One blocking read of `len` bytes into the scratch buffer — either
    // the plain syscall or (for Ring) a single-SQE `wali_ring_enter`.
    let emit_read = |b: &mut FuncBuilder, ctx: &Ctx, len: u32| {
        if via == Mechanism::Ring {
            emit_ring_read(b, ctx, slot, scratch + SCRATCH_BUF, len, scratch);
        } else {
            b.i32(slot as i32)
                .load32(0)
                .extend_u()
                .i64((scratch + SCRATCH_BUF) as i64)
                .i64(len as i64)
                .call(ctx.sys.read)
                .drop_();
        }
    };

    if is_eventfd {
        // Counter semantics: each read drains everything accumulated so
        // far, so accumulate until all expected tokens arrived. (validate
        // guarantees this is the channel's only consume op.)
        let buf = scratch + SCRATCH_BUF;
        b.i64(0).local_set(ctx.l_got);
        b.loop_(BlockType::Empty, |b| {
            emit_wait(b, ctx);
            emit_read(b, ctx, 8);
            b.local_get(ctx.l_got)
                .i32(buf as i32)
                .load64(0)
                .add64()
                .local_set(ctx.l_got);
            if via == Mechanism::EpollOneshot {
                // Re-arm before a possible second wait.
                b.local_get(ctx.l_got).i64(tokens as i64).lt_s64();
                b.if_(BlockType::Empty, |b| {
                    emit_epoll_ctl(b, ctx, EPOLL_CTL_MOD, slot, EPOLLIN | EPOLLONESHOT, scratch);
                    b.br(1);
                });
            } else {
                b.local_get(ctx.l_got).i64(tokens as i64).lt_s64().br_if(0);
            }
        });
    } else {
        // Byte streams: exactly one byte per token, waiting each time.
        let mut left = tokens;
        let mut first = true;
        while left > 0 {
            if !first && via == Mechanism::EpollOneshot {
                emit_epoll_ctl(b, ctx, EPOLL_CTL_MOD, slot, EPOLLIN | EPOLLONESHOT, scratch);
            }
            // Oneshot must re-arm between waits, so its two iterations
            // are laid out straight-line; the rest loop in wasm.
            let n = if via == Mechanism::EpollOneshot {
                1
            } else {
                left
            };
            emit_repeat(b, ctx, n, |b, ctx| {
                emit_wait(b, ctx);
                emit_read(b, ctx, 1);
            });
            left -= n;
            first = false;
        }
    }

    // Half-close the producer side of a churned socket: the consumer fd
    // (still registered in this op's epoll) flips EOF-readable with no
    // waiter parked, so the queued readiness must be swept at teardown,
    // not leaked or spuriously delivered.
    //
    // Only sound when this op is the channel's *sole* consume: the op
    // completes only after every produced token arrived, and a write
    // happens-before its token is readable, so no producer can still
    // write. With a second consume op anywhere (found by fuzz seed 76,
    // `corpus/churn-shutdown-late-producer.txt`), this op can
    // finish on an early producer's tokens while another produce is
    // still pending — the SHUT_WR then fails those writes with EPIPE
    // and the remaining consume deadlocks on tokens that never arrive.
    let sole_consume = scn
        .procs
        .iter()
        .flat_map(|p| &p.threads)
        .flat_map(|t| &t.phases)
        .flatten()
        .filter(|op| matches!(op, Op::Consume { chan: c, .. } if *c == chan))
        .count()
        == 1;
    if via == Mechanism::EpollChurn && scn.chans[chan] == ChanKind::Sock && sole_consume {
        b.i32(slot as i32)
            .load32(4)
            .extend_u()
            .i64(SHUT_WR as i64)
            .call(ctx.sys.shutdown)
            .drop_();
    }
}

/// `pollfd { fd, events: POLLIN, revents: 0 }` at the thread's scratch.
fn emit_pollfd(b: &mut FuncBuilder, slot: u32, scratch: u32) {
    let pfd = scratch + SCRATCH_PFD;
    b.i32(pfd as i32).i32(slot as i32).load32(0).store32(0);
    // Single store packs events=POLLIN, revents=0 (little-endian i16s).
    b.i32(pfd as i32)
        .i32(wali_abi::flags::POLLIN as i32)
        .store32(4);
}

fn emit_epoll_ctl(b: &mut FuncBuilder, ctx: &Ctx, op: i32, slot: u32, events: u32, scratch: u32) {
    let ev = scratch + SCRATCH_EV;
    b.i32(ev as i32).i32(events as i32).store32(0);
    b.i32(ev as i32).i64(0).store64(4);
    b.local_get(ctx.l_epfd)
        .i64(op as i64)
        .i32(slot as i32)
        .load32(0)
        .extend_u()
        .i64(ev as i64)
        .call(ctx.sys.epoll_ctl)
        .drop_();
}

/// One blocking read issued through the batched-syscall ring: a fresh
/// 1-entry SQ/CQ ring in the thread's scratch carries a single `READ`
/// SQE and is drained with `wali_ring_enter(ring, 1, 1, 0)`, which
/// parks until the completion posts. A negative return (`-ENOSYS`,
/// rings toggled off) falls back to the identical plain blocking read.
fn emit_ring_read(b: &mut FuncBuilder, ctx: &Ctx, slot: u32, buf: u32, len: u32, scratch: u32) {
    let ring = scratch + SCRATCH_RING;
    // Header: sq_entries=1, cq_entries=1, sq_head=0, sq_tail=1,
    // cq_head=0, cq_tail=0, flags=reserved=0.
    b.i32(ring as i32).i64(1 | (1 << 32)).store64(0);
    b.i32(ring as i32).i64(1 << 32).store64(8);
    b.i32(ring as i32).i64(0).store64(16);
    b.i32(ring as i32).i64(0).store64(24);
    // SQE 0 at ring+32: READ(fd = consumer side, addr = buf, len).
    b.i32(ring as i32)
        .i32(wali_abi::ring::op::READ as i32)
        .store32(32);
    b.i32(ring as i32).i32(slot as i32).load32(0).store32(36);
    b.i32(ring as i32).i32(buf as i32).store32(40);
    b.i32(ring as i32).i32(len as i32).store32(44);
    b.i32(ring as i32).i64(0).store64(48);
    b.i32(ring as i32).i64(0).store64(56);
    b.i64(ring as i64)
        .i64(1)
        .i64(1)
        .i64(0)
        .call(ctx.sys.ring_enter)
        .local_set(ctx.l_ret);
    b.local_get(ctx.l_ret).i64(0).lt_s64();
    b.if_(BlockType::Empty, |b| {
        b.i32(slot as i32)
            .load32(0)
            .extend_u()
            .i64(buf as i64)
            .i64(len as i64)
            .call(ctx.sys.read)
            .drop_();
    });
}

/// Runs `body` `n` times via a wasm counter loop (constant-size code for
/// any token count).
fn emit_repeat(b: &mut FuncBuilder, ctx: &Ctx, n: u32, body: impl Fn(&mut FuncBuilder, &Ctx)) {
    if n == 1 {
        body(b, ctx);
        return;
    }
    b.i32(0).local_set(ctx.l_i);
    b.loop_(BlockType::Empty, |b| {
        body(b, ctx);
        b.local_get(ctx.l_i)
            .i32(1)
            .add32()
            .local_tee(ctx.l_i)
            .i32(n as i32)
            .lt_s32()
            .br_if(0);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use wali::testkit::{run_modules, RunnerOpts};

    /// A hand-written scenario touching every mechanism family: pipe +
    /// sock + eventfd channels, all six consume mechanisms spread over
    /// two scenarios, futexes, threads, a victim, a vfork-exec leaf,
    /// and a handled signal.
    fn kitchen_sink() -> Scenario {
        Scenario {
            chans: vec![ChanKind::Pipe, ChanKind::Sock, ChanKind::EventFd],
            futex_words: 1,
            procs: vec![
                // Root: produces everything in phase 0, kills in phase 1,
                // two extra threads.
                Proc {
                    kind: ProcKind::Normal,
                    children: vec![1, 2, 3],
                    handles: vec![],
                    threads: vec![
                        ThreadPlan {
                            phases: vec![
                                vec![
                                    Op::Produce { chan: 0, tokens: 3 },
                                    Op::Produce { chan: 2, tokens: 2 },
                                ],
                                vec![
                                    Op::Kill {
                                        target: 2,
                                        signo: SIGTERM,
                                    },
                                    Op::Kill {
                                        target: 1,
                                        signo: 10,
                                    },
                                ],
                            ],
                        },
                        ThreadPlan {
                            phases: vec![
                                vec![Op::Produce { chan: 1, tokens: 2 }],
                                vec![Op::Consume {
                                    chan: 2,
                                    tokens: 2,
                                    via: Mechanism::EpollLt,
                                }],
                            ],
                        },
                    ],
                },
                // Child 1: consumes, futex-coordinates its second thread,
                // awaits SIGUSR1.
                Proc {
                    kind: ProcKind::Normal,
                    children: vec![],
                    handles: vec![10],
                    threads: vec![
                        ThreadPlan {
                            phases: vec![
                                vec![Op::FutexSet { word: 0 }],
                                vec![
                                    Op::Consume {
                                        chan: 0,
                                        tokens: 3,
                                        via: Mechanism::Poll,
                                    },
                                    Op::Sleep { ns: 500_000 },
                                ],
                                vec![Op::AwaitSignal { signo: 10 }],
                            ],
                        },
                        ThreadPlan {
                            phases: vec![
                                vec![],
                                vec![Op::FutexWait { word: 0 }],
                                vec![Op::Consume {
                                    chan: 1,
                                    tokens: 2,
                                    via: Mechanism::EpollOneshot,
                                }],
                            ],
                        },
                    ],
                },
                Proc::leaf(ProcKind::Victim),
                Proc::leaf(ProcKind::VforkExec),
            ],
        }
    }

    fn run_scenario(scn: &Scenario, opts: RunnerOpts) -> wali::testkit::RunReport {
        let modules = scn.emit();
        run_modules(&modules.programs(), MAIN_PATH, &[], &[], opts).expect("run")
    }

    #[test]
    fn kitchen_sink_matches_model_and_leaks_nothing() {
        let scn = kitchen_sink();
        scn.validate().expect("valid");
        let report = run_scenario(&scn, RunnerOpts::single());
        let obs = report.outcome.observables();
        assert_eq!(
            obs.main_exit.as_deref(),
            Some("Exited(10)"),
            "root exit: {:?} console {:?}",
            report.outcome.main_exit,
            report.outcome.stdout()
        );
        assert_eq!(obs.console_lines, scn.expected_console());
        assert!(
            report.leaks.is_clean(),
            "teardown leaks: {} ends {:?}",
            report.leaks.describe(),
            report.outcome.ends
        );
        // The victim died of SIGTERM (143), the leaf exited 9.
        assert!(
            obs.ends.iter().any(|e| e == "Exited(143)"),
            "{:?}",
            obs.ends
        );
        assert!(obs.ends.iter().any(|e| e == "Exited(9)"), "{:?}", obs.ends);
    }

    #[test]
    fn kitchen_sink_observables_equal_across_workers() {
        let scn = kitchen_sink();
        let single = run_scenario(&scn, RunnerOpts::single());
        let smp = run_scenario(
            &scn,
            RunnerOpts {
                workers: Some(4),
                ..RunnerOpts::default()
            },
        );
        assert_eq!(
            single.outcome.observables(),
            smp.outcome.observables(),
            "SMP run must preserve the observable multiset"
        );
        assert!(smp.leaks.is_clean(), "{}", smp.leaks.describe());
    }

    #[test]
    fn direct_ppoll_and_et_mechanisms_run_clean() {
        // The mechanisms kitchen_sink doesn't cover: Direct, Ppoll,
        // EpollEt, an eventfd consumed via Direct accumulation, and a
        // churned socket (DEL/ADD storms + producer half-close).
        let scn = Scenario {
            chans: vec![
                ChanKind::Pipe,
                ChanKind::Pipe,
                ChanKind::EventFd,
                ChanKind::Sock,
            ],
            futex_words: 0,
            procs: vec![
                Proc {
                    kind: ProcKind::Normal,
                    children: vec![1],
                    handles: vec![],
                    threads: vec![ThreadPlan {
                        phases: vec![
                            vec![
                                Op::Produce { chan: 0, tokens: 2 },
                                Op::Produce { chan: 1, tokens: 1 },
                                Op::Produce { chan: 2, tokens: 3 },
                                Op::Produce { chan: 3, tokens: 2 },
                            ],
                            vec![],
                        ],
                    }],
                },
                Proc {
                    kind: ProcKind::Normal,
                    children: vec![],
                    handles: vec![],
                    threads: vec![ThreadPlan {
                        phases: vec![
                            vec![],
                            vec![
                                Op::Consume {
                                    chan: 0,
                                    tokens: 2,
                                    via: Mechanism::Ppoll,
                                },
                                Op::Consume {
                                    chan: 1,
                                    tokens: 1,
                                    via: Mechanism::EpollEt,
                                },
                                Op::Consume {
                                    chan: 2,
                                    tokens: 3,
                                    via: Mechanism::Direct,
                                },
                                Op::Consume {
                                    chan: 3,
                                    tokens: 2,
                                    via: Mechanism::EpollChurn,
                                },
                            ],
                        ],
                    }],
                },
            ],
        };
        scn.validate().expect("valid");
        let report = run_scenario(&scn, RunnerOpts::single());
        let obs = report.outcome.observables();
        assert_eq!(obs.main_exit.as_deref(), Some("Exited(10)"));
        assert_eq!(obs.console_lines, scn.expected_console());
        assert!(report.leaks.is_clean(), "{}", report.leaks.describe());
    }

    #[test]
    fn ring_mechanism_matches_sync_fallback() {
        // A ring-driven server: one producer process feeds a pipe, a
        // socketpair and an eventfd; the consumer process drains all
        // three through `wali_ring_enter` READ SQEs across two threads.
        // The same scenario under WALI_NO_RING takes the -ENOSYS
        // fallback (plain blocking reads); observables must agree — the
        // in-tree version of the fuzzer's `workers=1 no-ring` leg.
        let scn = Scenario {
            chans: vec![ChanKind::Pipe, ChanKind::Sock, ChanKind::EventFd],
            futex_words: 0,
            procs: vec![
                Proc {
                    kind: ProcKind::Normal,
                    children: vec![1],
                    handles: vec![],
                    threads: vec![ThreadPlan {
                        phases: vec![
                            vec![
                                Op::Produce { chan: 0, tokens: 3 },
                                Op::Produce { chan: 1, tokens: 2 },
                                Op::Produce { chan: 2, tokens: 2 },
                            ],
                            vec![],
                        ],
                    }],
                },
                Proc {
                    kind: ProcKind::Normal,
                    children: vec![],
                    handles: vec![],
                    threads: vec![
                        ThreadPlan {
                            phases: vec![
                                vec![],
                                vec![
                                    Op::Consume {
                                        chan: 0,
                                        tokens: 3,
                                        via: Mechanism::Ring,
                                    },
                                    Op::Consume {
                                        chan: 2,
                                        tokens: 2,
                                        via: Mechanism::Ring,
                                    },
                                ],
                            ],
                        },
                        ThreadPlan {
                            phases: vec![
                                vec![],
                                vec![Op::Consume {
                                    chan: 1,
                                    tokens: 2,
                                    via: Mechanism::Ring,
                                }],
                            ],
                        },
                    ],
                },
            ],
        };
        scn.validate().expect("valid");
        let ring = run_scenario(&scn, RunnerOpts::single());
        assert!(ring.leaks.is_clean(), "{}", ring.leaks.describe());
        let obs = ring.outcome.observables();
        assert_eq!(obs.console_lines, scn.expected_console());
        let sync = run_scenario(
            &scn,
            RunnerOpts {
                ring: Some(false),
                ..RunnerOpts::single()
            },
        );
        assert_eq!(
            obs,
            sync.outcome.observables(),
            "ring vs WALI_NO_RING fallback"
        );
        let smp = run_scenario(
            &scn,
            RunnerOpts {
                workers: Some(4),
                ..RunnerOpts::default()
            },
        );
        assert_eq!(obs, smp.outcome.observables(), "ring under SMP");
        assert!(smp.leaks.is_clean(), "{}", smp.leaks.describe());
    }

    #[test]
    fn validate_rejects_structural_hazards() {
        let mut scn = kitchen_sink();
        // Unbalanced channel.
        scn.procs[0].threads[0].phases[0][0] = Op::Produce { chan: 0, tokens: 4 };
        assert!(scn.validate().is_err());

        // Consume in the same phase as its produce.
        let mut scn = kitchen_sink();
        scn.procs[1].threads[0].phases[1][0] = Op::Consume {
            chan: 0,
            tokens: 3,
            via: Mechanism::Poll,
        };
        scn.procs[0].threads[0].phases[1].push(Op::Produce { chan: 0, tokens: 3 });
        scn.procs[0].threads[0].phases[0].remove(0);
        assert!(scn.validate().is_err());

        // Edge-triggered multi-token consume.
        let mut scn = kitchen_sink();
        scn.procs[1].threads[0].phases[1][0] = Op::Consume {
            chan: 0,
            tokens: 3,
            via: Mechanism::EpollEt,
        };
        assert!(scn.validate().is_err());

        // Kill from a non-parent.
        let mut scn = kitchen_sink();
        scn.procs[1].threads[0].phases[2].push(Op::Kill {
            target: 2,
            signo: SIGTERM,
        });
        assert!(scn.validate().is_err());

        // Victim that nobody kills.
        let mut scn = kitchen_sink();
        scn.procs[0].threads[0].phases[1].remove(0);
        assert!(scn.validate().is_err());

        // Await with no earlier kill.
        let mut scn = kitchen_sink();
        scn.procs[0].threads[0].phases[1].remove(1);
        assert!(scn.validate().is_err());
    }
}
