//! Kernel waitqueues: event-driven blocking.
//!
//! The original runner retried every blocked task on every scheduler pass
//! (O(blocked × passes)). The paper's server workloads (§6: memcached,
//! paho-mqtt) are readiness-driven, so blocked tasks now park on *wait
//! channels* and are woken by the exact state transition that unblocks
//! them:
//!
//! * a blocking syscall subscribes the calling task to the channel(s) it
//!   is waiting on, *then* returns [`crate::SysError::Block`];
//! * every kernel transition that can unblock a task (pipe write/close,
//!   socket send/accept, futex wake, `exit_group`, signal generation)
//!   posts a wakeup on the matching channel;
//! * the embedder drains [`WaitSet::take_woken`] each scheduling round
//!   and re-queues only the woken tasks.
//!
//! Wakeups are **edge-triggered and may be spurious**: a woken task simply
//! retries its syscall (the classic retry convention, see `lib.rs`), and
//! re-subscribes if it blocks again. The invariant that matters is the
//! converse — a task never misses the transition it waits on — which holds
//! because the kernel is single-threaded and subscription happens before
//! the `Block` return reaches the scheduler.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crate::kernel::epoll::Epoll;
use crate::lockorder::{LockClass, Tracked};
use crate::slab::ObjSlab;
use crate::{MmId, Pid, Tid};

/// A wait channel: the kernel-side event a blocked task parks on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Channel {
    /// Pipe `id` may have become readable (data written or writers gone).
    PipeReadable(usize),
    /// Pipe `id` may have become writable (space freed or readers gone).
    PipeWritable(usize),
    /// Socket `id` may have become readable: stream bytes or a datagram
    /// arrived, a pending connection was queued on a listener, or the
    /// peer vanished (EOF is a readable condition).
    SockReadable(usize),
    /// Space may have opened in socket `id`'s receive buffer (the channel
    /// a *peer's* blocked sender waits on), or the connection broke.
    SockSpace(usize),
    /// The eventfd description at this address became signalled. Keyed by
    /// the `Arc` pointer of the open file description (stable for the
    /// description's lifetime; never dereferenced).
    EventFd(usize),
    /// A `FUTEX_WAKE` may have hit this `(address-space, address)` word.
    Futex(MmId, u32),
    /// A child of process `pid` changed state (`wait4` wake-up).
    Child(Pid),
    /// A signal was generated for task `tid` (EINTR / `pause` wake-up).
    Signal(Tid),
    /// The interest list of epoll instance `id` changed (`epoll_ctl`
    /// while another task is parked in `epoll_wait`): the waiter must
    /// re-scan and re-subscribe against the new list, since an added fd
    /// may already be level-triggered ready.
    EpollCtl(usize),
    /// Epoll instance `id`'s ready ring received at least one entry: a
    /// parked `epoll_wait` waiter can pop instead of re-scanning. Posted
    /// by the [`ReadyHub`] router whenever a readiness transition pushes
    /// a registration onto the ring (and by `epoll_ctl` when a freshly
    /// added fd is already ready).
    EpollReady(usize),
}

/// Aggregate counters (observability + bench assertions).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WaitStats {
    /// Channel subscriptions recorded.
    pub subscribes: u64,
    /// Posts that found at least one waiter.
    pub posts_hit: u64,
    /// Posts on channels nobody was waiting on (dropped, near-free).
    pub posts_miss: u64,
    /// Tasks moved to the woken list (by post or direct wake).
    pub wakeups: u64,
}

/// The kernel's waitqueue table.
#[derive(Debug, Default)]
pub struct WaitSet {
    /// Channel → subscribed tasks, in subscription order.
    waiters: HashMap<Channel, Vec<Tid>>,
    /// Channel → number of posts ever (hit or miss): the event
    /// generation. Edge-triggered epoll re-arms a registration when the
    /// generation of any of its channels moved — i.e. when a new
    /// transition happened since the last report, which is Linux's ET
    /// re-arm condition (new data re-notifies even while still ready).
    gens: HashMap<Channel, u64>,
    /// Reverse index: task → channels it is subscribed to.
    subscribed: HashMap<Tid, Vec<Channel>>,
    /// Woken tasks in wake order, deduplicated.
    woken: Vec<Tid>,
    woken_set: HashSet<Tid>,
    /// Lock-free mirror of `!woken.is_empty()`: SMP workers poll this
    /// between slices without taking the kernel lock (the authoritative
    /// drain still happens under it, via [`WaitSet::take_woken`]).
    woken_hint: Arc<AtomicBool>,
    /// Task → channels whose posts woke it since its last
    /// [`WaitSet::take_fired`] drain, in fire order. Batched-syscall
    /// retries (`wali_ring_enter`) consult this to re-attempt the
    /// operations whose channel actually fired first, so CQE order
    /// reflects wakeup order rather than submission order.
    fired: HashMap<Tid, Vec<Channel>>,
    /// Tasks that armed fired-channel recording for their next wakeups
    /// ([`WaitSet::track_fired`], one-shot until the next drain). Only
    /// batched-syscall parks need the record, so only they pay the
    /// per-wake bookkeeping; everyone else's wakes skip it entirely.
    tracked: HashSet<Tid>,
    /// Counters.
    pub stats: WaitStats,
}

impl WaitSet {
    /// Creates an empty waitqueue table.
    pub fn new() -> WaitSet {
        WaitSet::default()
    }

    /// Subscribes `tid` to `ch`. Idempotent per `(tid, ch)` pair.
    pub fn subscribe(&mut self, tid: Tid, ch: Channel) {
        let chans = self.subscribed.entry(tid).or_default();
        if chans.contains(&ch) {
            return;
        }
        chans.push(ch);
        self.waiters.entry(ch).or_default().push(tid);
        self.stats.subscribes += 1;
    }

    /// Posts a wakeup on `ch`: every subscriber moves to the woken list
    /// and is unsubscribed from *all* its channels (a woken task either
    /// completes or re-subscribes on its retry).
    pub fn post(&mut self, ch: Channel) -> usize {
        *self.gens.entry(ch).or_default() += 1;
        let Some(tids) = self.waiters.remove(&ch) else {
            self.stats.posts_miss += 1;
            return 0;
        };
        self.stats.posts_hit += 1;
        let n = tids.len();
        for tid in tids {
            self.wake_inner(tid, Some(ch));
        }
        n
    }

    /// Wakes one task directly (futex wake, task termination).
    pub fn wake(&mut self, tid: Tid) {
        self.unsubscribe(tid);
        self.wake_inner(tid, None);
    }

    fn wake_inner(&mut self, tid: Tid, via: Option<Channel>) {
        // Drop the task's other subscriptions (already removed from `via`).
        if let Some(chans) = self.subscribed.remove(&tid) {
            for ch in chans {
                if Some(ch) == via {
                    continue;
                }
                if let Some(q) = self.waiters.get_mut(&ch) {
                    q.retain(|t| *t != tid);
                    if q.is_empty() {
                        self.waiters.remove(&ch);
                    }
                }
            }
        }
        if let Some(ch) = via {
            if !self.tracked.is_empty() && self.tracked.contains(&tid) {
                let log = self.fired.entry(tid).or_default();
                if !log.contains(&ch) {
                    log.push(ch);
                }
            }
        }
        if self.woken_set.insert(tid) {
            self.woken.push(tid);
            self.woken_hint.store(true, Ordering::Release);
            self.stats.wakeups += 1;
        }
    }

    /// Arms fired-channel recording for `tid`'s next wakeups, until its
    /// next [`WaitSet::take_fired`] drain or unsubscription. Called by
    /// `wali_ring_enter` each time it parks; a wake that lands before
    /// the arm merely yields an empty record (submission-order retry),
    /// which callers already treat as "re-check everything".
    pub fn track_fired(&mut self, tid: Tid) {
        self.tracked.insert(tid);
    }

    /// Removes every subscription of `tid` without waking it (task exit).
    pub fn unsubscribe(&mut self, tid: Tid) {
        self.tracked.remove(&tid);
        self.fired.remove(&tid);
        if let Some(chans) = self.subscribed.remove(&tid) {
            for ch in chans {
                if let Some(q) = self.waiters.get_mut(&ch) {
                    q.retain(|t| *t != tid);
                    if q.is_empty() {
                        self.waiters.remove(&ch);
                    }
                }
            }
        }
    }

    /// True when `tid` is subscribed to at least one channel.
    pub fn is_subscribed(&self, tid: Tid) -> bool {
        self.subscribed.contains_key(&tid)
    }

    /// Drains the woken list in wake order.
    pub fn take_woken(&mut self) -> Vec<Tid> {
        self.woken_set.clear();
        self.woken_hint.store(false, Ordering::Release);
        std::mem::take(&mut self.woken)
    }

    /// Drains the channels whose posts woke `tid` since its last drain,
    /// in fire order. Empty for direct wakes (futex wake, deadline
    /// lapse) — callers must treat an empty answer as "re-check
    /// everything", never "nothing fired".
    pub fn take_fired(&mut self, tid: Tid) -> Vec<Channel> {
        self.tracked.remove(&tid);
        self.fired.remove(&tid).unwrap_or_default()
    }

    /// A shared handle onto the woken hint, checkable without any lock.
    pub fn woken_hint(&self) -> Arc<AtomicBool> {
        self.woken_hint.clone()
    }

    /// The event generation of `ch`: how many posts it has ever seen.
    pub fn generation(&self, ch: Channel) -> u64 {
        self.gens.get(&ch).copied().unwrap_or(0)
    }

    /// True when at least one task has been woken and not yet drained.
    pub fn has_woken(&self) -> bool {
        !self.woken.is_empty()
    }

    /// Number of distinct subscribed tasks (diagnostics).
    pub fn subscribed_count(&self) -> usize {
        self.subscribed.len()
    }

    /// The subscription table itself (leak diagnostics).
    pub fn subscribed_channels(&self) -> Vec<(Tid, Vec<Channel>)> {
        self.subscribed
            .iter()
            .map(|(t, chs)| (*t, chs.clone()))
            .collect()
    }
}

/// The ready-ring router's lookup table: wait channel → epoll
/// registrations whose readiness that channel's transitions may change.
///
/// Kept outside the [`WaitSet`] lock so the common post (no epoll
/// watcher anywhere) pays a single relaxed atomic load, and locked at
/// [`LockClass::ReadyHub`] — *below* the slab and epoll classes — so
/// the router can look up targets and then take each target's epoll
/// lock without inverting the DAG.
#[derive(Debug, Default)]
pub struct ReadyHub {
    /// Channel → `(epoll id, registration key)` watchers.
    watchers: HashMap<Channel, Vec<(usize, u64)>>,
}

impl ReadyHub {
    /// Adds a watcher; returns `true` if it was not already present.
    fn register(&mut self, ch: Channel, eid: usize, key: u64) -> bool {
        let v = self.watchers.entry(ch).or_default();
        if v.contains(&(eid, key)) {
            return false;
        }
        v.push((eid, key));
        true
    }

    /// Removes a watcher; returns `true` if it was present.
    fn unregister(&mut self, ch: Channel, eid: usize, key: u64) -> bool {
        let Some(v) = self.watchers.get_mut(&ch) else {
            return false;
        };
        let before = v.len();
        v.retain(|&e| e != (eid, key));
        let hit = v.len() != before;
        if v.is_empty() {
            self.watchers.remove(&ch);
        }
        hit
    }

    /// Snapshot of the watchers of `ch` (cloned so the caller can drop
    /// the hub lock before taking any epoll lock).
    fn targets(&self, ch: Channel) -> Vec<(usize, u64)> {
        self.watchers.get(&ch).cloned().unwrap_or_default()
    }
}

/// The waitqueue table behind its own shard lock.
///
/// With the big kernel lock sharded, producers (a fast-path pipe write
/// on one worker) and consumers (a subscribe-then-block on another)
/// touch the waitqueues concurrently. `WaitShard` wraps [`WaitSet`] in
/// a [`Tracked`] lock of class [`LockClass::Waits`] — the *innermost*
/// class, because the never-miss-a-wakeup protocol subscribes while
/// holding the object lock of the pipe/socket being waited on:
///
/// * consumers check object state and subscribe under the object lock;
/// * producers mutate under the object lock and post *after* releasing
///   it, so either the consumer saw the new state, or its subscription
///   was visible when the post ran.
#[derive(Clone, Debug)]
pub struct WaitShard {
    inner: Arc<Tracked<WaitSet>>,
    /// Ready-ring routing table (see [`ReadyHub`]).
    hub: Arc<Tracked<ReadyHub>>,
    /// Total watcher entries in the hub: the post fast path skips the
    /// hub lock entirely while this is zero (scan mode, or no epoll
    /// registrations anywhere).
    hub_count: Arc<AtomicUsize>,
    /// The kernel's epoll slab, wired once at kernel construction so
    /// the router can push onto ready rings. Posts that race the wiring
    /// window simply skip routing (no epoll exists yet to watch).
    epolls: Arc<OnceLock<ObjSlab<Epoll>>>,
}

impl Default for WaitShard {
    fn default() -> WaitShard {
        WaitShard::new()
    }
}

impl WaitShard {
    /// A fresh, empty waitqueue shard.
    pub fn new() -> WaitShard {
        WaitShard {
            inner: Arc::new(Tracked::new(LockClass::Waits, WaitSet::new())),
            hub: Arc::new(Tracked::new(LockClass::ReadyHub, ReadyHub::default())),
            hub_count: Arc::new(AtomicUsize::new(0)),
            epolls: Arc::new(OnceLock::new()),
        }
    }

    /// Wires the kernel's epoll slab into the router (called once at
    /// kernel construction; later calls are no-ops).
    pub fn set_epolls(&self, slab: ObjSlab<Epoll>) {
        let _ = self.epolls.set(slab);
    }

    /// Registers epoll `eid`'s registration `key` as a watcher of `ch`.
    /// Must not be called while holding a lock of rank ≥
    /// [`LockClass::ReadyHub`] (notably the epoll lock itself).
    pub fn hub_register(&self, ch: Channel, eid: usize, key: u64) {
        if self.hub.lock_ok().register(ch, eid, key) {
            self.hub_count.fetch_add(1, Ordering::AcqRel);
        }
    }

    /// Removes a watcher added by [`WaitShard::hub_register`].
    pub fn hub_unregister(&self, ch: Channel, eid: usize, key: u64) {
        if self.hub.lock_ok().unregister(ch, eid, key) {
            self.hub_count.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Total watcher entries currently in the hub (leak audits).
    pub fn hub_entries(&self) -> usize {
        self.hub_count.load(Ordering::Acquire)
    }

    /// See [`WaitSet::subscribe`].
    pub fn subscribe(&self, tid: Tid, ch: Channel) {
        self.inner.lock_ok().subscribe(tid, ch);
    }

    /// See [`WaitSet::post`], plus ready-ring routing: if any epoll
    /// registration watches `ch`, push it onto that instance's ready
    /// ring and post [`Channel::EpollReady`] for freshly queued entries.
    ///
    /// Locking: the waitqueue lock is released before the hub lock, the
    /// hub lock before any epoll lock, and the epoll lock before the
    /// recursive `EpollReady` post — each acquisition starts from at
    /// most the caller's held ranks (≤ `Kernel`), so the sequence is
    /// rank-legal from every post site. Recursion terminates because a
    /// push only reports "freshly queued" once per pop cycle.
    pub fn post(&self, ch: Channel) -> usize {
        let n = self.inner.lock_ok().post(ch);
        if self.hub_count.load(Ordering::Acquire) == 0 {
            return n;
        }
        let targets = self.hub.lock_ok().targets(ch);
        if targets.is_empty() {
            return n;
        }
        let Some(epolls) = self.epolls.get() else {
            return n;
        };
        for (eid, key) in targets {
            let Some(ep) = epolls.get(eid) else { continue };
            let pushed = ep.lock_ok().ring_push(key);
            if pushed {
                self.post(Channel::EpollReady(eid));
            }
        }
        n
    }

    /// See [`WaitSet::wake`].
    pub fn wake(&self, tid: Tid) {
        self.inner.lock_ok().wake(tid);
    }

    /// See [`WaitSet::unsubscribe`].
    pub fn unsubscribe(&self, tid: Tid) {
        self.inner.lock_ok().unsubscribe(tid);
    }

    /// See [`WaitSet::is_subscribed`].
    pub fn is_subscribed(&self, tid: Tid) -> bool {
        self.inner.lock_ok().is_subscribed(tid)
    }

    /// See [`WaitSet::take_woken`].
    pub fn take_woken(&self) -> Vec<Tid> {
        self.inner.lock_ok().take_woken()
    }

    /// See [`WaitSet::track_fired`].
    pub fn track_fired(&self, tid: Tid) {
        self.inner.lock_ok().track_fired(tid);
    }

    /// See [`WaitSet::take_fired`].
    pub fn take_fired(&self, tid: Tid) -> Vec<Channel> {
        self.inner.lock_ok().take_fired(tid)
    }

    /// See [`WaitSet::woken_hint`].
    pub fn woken_hint(&self) -> Arc<AtomicBool> {
        self.inner.lock_ok().woken_hint()
    }

    /// See [`WaitSet::generation`].
    pub fn generation(&self, ch: Channel) -> u64 {
        self.inner.lock_ok().generation(ch)
    }

    /// See [`WaitSet::has_woken`].
    pub fn has_woken(&self) -> bool {
        self.inner.lock_ok().has_woken()
    }

    /// See [`WaitSet::subscribed_count`].
    pub fn subscribed_count(&self) -> usize {
        self.inner.lock_ok().subscribed_count()
    }

    /// See [`WaitSet::subscribed_channels`].
    pub fn subscribed_channels(&self) -> Vec<(Tid, Vec<Channel>)> {
        self.inner.lock_ok().subscribed_channels()
    }

    /// A copy of the aggregate counters.
    pub fn stats(&self) -> WaitStats {
        self.inner.lock_ok().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subscribe_post_wakes_in_order() {
        let mut w = WaitSet::new();
        w.subscribe(3, Channel::PipeReadable(0));
        w.subscribe(5, Channel::PipeReadable(0));
        w.subscribe(4, Channel::PipeWritable(0));
        assert_eq!(w.post(Channel::PipeReadable(0)), 2);
        assert_eq!(w.take_woken(), vec![3, 5]);
        assert!(w.is_subscribed(4), "other channel untouched");
        assert!(!w.is_subscribed(3));
    }

    #[test]
    fn post_without_waiters_is_a_miss() {
        let mut w = WaitSet::new();
        assert_eq!(w.post(Channel::SockReadable(9)), 0);
        assert_eq!(w.stats.posts_miss, 1);
        assert!(w.take_woken().is_empty());
    }

    #[test]
    fn multi_channel_subscription_is_fully_cleared_on_wake() {
        let mut w = WaitSet::new();
        // A poll-style waiter parks on several channels at once.
        w.subscribe(7, Channel::SockReadable(1));
        w.subscribe(7, Channel::SockReadable(2));
        w.subscribe(7, Channel::Signal(7));
        w.post(Channel::SockReadable(2));
        assert_eq!(w.take_woken(), vec![7]);
        // The other subscriptions are gone: posting them is a miss.
        assert_eq!(w.post(Channel::SockReadable(1)), 0);
        assert_eq!(w.post(Channel::Signal(7)), 0);
    }

    #[test]
    fn wake_is_deduplicated() {
        let mut w = WaitSet::new();
        w.subscribe(2, Channel::Futex(MmId(1), 64));
        w.wake(2);
        w.wake(2);
        assert_eq!(w.take_woken(), vec![2]);
        assert_eq!(w.stats.wakeups, 1);
    }

    #[test]
    fn subscribe_is_idempotent() {
        let mut w = WaitSet::new();
        w.subscribe(1, Channel::Child(1));
        w.subscribe(1, Channel::Child(1));
        assert_eq!(w.post(Channel::Child(1)), 1);
        assert_eq!(w.take_woken(), vec![1]);
    }

    #[test]
    fn fired_channels_record_wake_order_and_drain() {
        let mut w = WaitSet::new();
        w.subscribe(1, Channel::PipeReadable(3));
        w.subscribe(1, Channel::PipeWritable(4));
        w.track_fired(1);
        w.post(Channel::PipeReadable(3));
        // The retry re-subscribes the still-blocked channel; a second
        // post appends to the same undrained log (tracking is still
        // armed: only a drain or unsubscription disarms it).
        w.subscribe(1, Channel::PipeWritable(4));
        w.post(Channel::PipeWritable(4));
        assert_eq!(
            w.take_fired(1),
            vec![Channel::PipeReadable(3), Channel::PipeWritable(4)]
        );
        assert!(w.take_fired(1).is_empty(), "drain clears the log");
        // Direct wakes record no channel: an empty answer means
        // "re-check everything", so futex wakes must not fabricate one.
        w.subscribe(1, Channel::PipeReadable(3));
        w.wake(1);
        assert!(w.take_fired(1).is_empty());
        // Unsubscribe (task exit, deadline cancel) discards the log.
        w.subscribe(2, Channel::Child(9));
        w.track_fired(2);
        w.post(Channel::Child(9));
        w.unsubscribe(2);
        assert!(w.take_fired(2).is_empty());
        // A task that never armed tracking records nothing: ordinary
        // blocked retries pay no fired-log bookkeeping on their wakes.
        w.subscribe(3, Channel::Child(1));
        w.post(Channel::Child(1));
        assert!(w.take_fired(3).is_empty());
    }

    #[test]
    fn unsubscribe_drops_without_waking() {
        let mut w = WaitSet::new();
        w.subscribe(6, Channel::EventFd(0xdead));
        w.unsubscribe(6);
        assert_eq!(w.post(Channel::EventFd(0xdead)), 0);
        assert!(w.take_woken().is_empty());
    }
}
