//! Lock classes, ordering assertions and contention counters for the
//! sharded kernel.
//!
//! PR 7 breaks the big kernel lock into per-subsystem shards. Sharding
//! only stays correct (and CI-debuggable) if two global properties hold:
//!
//! 1. **A lock-ordering DAG.** Every lock belongs to a [`LockClass`]
//!    with a fixed rank; a thread may only acquire a lock whose rank is
//!    *strictly greater* than every lock it already holds. Strictness
//!    outlaws holding two locks of the same class at once (e.g. two
//!    pipe locks), which is how classic AB/BA deadlocks are born. Debug
//!    builds enforce the rule with a thread-local rank stack, so an
//!    ordering bug fails a test with a message instead of deadlocking
//!    CI.
//! 2. **Observable contention.** Every acquisition first tries an
//!    uncontended `try_lock`; a miss bumps a per-class atomic counter.
//!    The counters let tests *assert* scalability claims — e.g. the
//!    shard stress test pins "threads hammering disjoint pipes never
//!    contend on an object lock" as `contention(Object) == 0`.
//!
//! The rank order (see DESIGN.md "Concurrency" for the full DAG):
//!
//! ```text
//! Kernel(0) → Proc(10) → ReadyHub(12) → Slab(15) → Epoll(18) → Object(20) → Vfs(30) → Waits(40)
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};

/// The lock classes of the sharded kernel, in acquisition order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockClass {
    /// The big kernel lock (outermost; syscall bodies).
    Kernel,
    /// A process-index shard (tid → hot task state).
    Proc,
    /// The epoll ready-hub routing table (channel → interested epoll
    /// registrations). Ranked *below* Slab/Epoll so the waitqueue's
    /// readiness router can look up targets and then take the epoll
    /// locks, never the reverse.
    ReadyHub,
    /// An object slab's slot table (id → object handle).
    Slab,
    /// An epoll instance (its readiness scan takes pipe/socket locks).
    Epoll,
    /// A pipe or socket object lock.
    Object,
    /// The VFS inode table (reader/writer).
    Vfs,
    /// The waitqueue table (innermost: subscriptions happen under
    /// object locks so wakeups are never missed).
    Waits,
}

/// Number of lock classes (sizes the counter table).
const CLASS_COUNT: usize = 8;

impl LockClass {
    /// Rank in the ordering DAG; acquisitions must be strictly
    /// increasing per thread.
    pub fn rank(self) -> u32 {
        match self {
            LockClass::Kernel => 0,
            LockClass::Proc => 10,
            LockClass::ReadyHub => 12,
            LockClass::Slab => 15,
            LockClass::Epoll => 18,
            LockClass::Object => 20,
            LockClass::Vfs => 30,
            LockClass::Waits => 40,
        }
    }

    fn index(self) -> usize {
        match self {
            LockClass::Kernel => 0,
            LockClass::Proc => 1,
            LockClass::ReadyHub => 2,
            LockClass::Slab => 3,
            LockClass::Epoll => 4,
            LockClass::Object => 5,
            LockClass::Vfs => 6,
            LockClass::Waits => 7,
        }
    }
}

/// Process-global contended-acquisition counters, one per class.
static CONTENTION: [AtomicU64; CLASS_COUNT] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Total contended acquisitions ever recorded for `class` in this
/// process. Monotone; tests compare before/after deltas.
pub fn contention(class: LockClass) -> u64 {
    CONTENTION[class.index()].load(Ordering::Relaxed)
}

/// Records one contended acquisition of `class`.
pub fn note_contention(class: LockClass) {
    CONTENTION[class.index()].fetch_add(1, Ordering::Relaxed);
}

#[cfg(debug_assertions)]
thread_local! {
    /// Ranks of the tracked locks this thread currently holds, in
    /// acquisition order.
    static RANK_STACK: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// RAII witness that this thread holds a lock of a given class.
///
/// Created *before* blocking on the lock (a violation must assert, not
/// deadlock) and dropped when the guard drops. Also used standalone by
/// shards built on `RwLock` ([`crate::vfs::VfsShard`]) and by
/// [`crate::slab::ObjSlab`], so every tracked acquisition — mutex or
/// not — participates in the same ordering check.
#[derive(Debug)]
pub struct OrderToken {
    #[cfg(debug_assertions)]
    rank: u32,
}

impl OrderToken {
    /// Asserts the ordering DAG allows acquiring `class` now, and marks
    /// it held until the token drops.
    pub fn enter(class: LockClass) -> OrderToken {
        #[cfg(debug_assertions)]
        {
            let rank = class.rank();
            RANK_STACK.with(|s| {
                let mut s = s.borrow_mut();
                if let Some(&top) = s.last() {
                    assert!(
                        rank > top,
                        "lock-order violation: acquiring {class:?} (rank {rank}) \
                         while already holding rank {top} (held ranks: {s:?})",
                    );
                }
                s.push(rank);
            });
            OrderToken { rank }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = class;
            OrderToken {}
        }
    }
}

impl Drop for OrderToken {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        RANK_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards may be dropped out of acquisition order; ranks are
            // unique on the stack (strictly increasing), so remove by
            // value.
            if let Some(pos) = s.iter().rposition(|&r| r == self.rank) {
                s.remove(pos);
            }
        });
    }
}

/// A mutex that participates in lock-order checking and contention
/// accounting. The sharded kernel's replacement for a bare
/// [`std::sync::Mutex`] wherever the lock can be taken from more than
/// one subsystem.
#[derive(Debug)]
pub struct Tracked<T> {
    class: LockClass,
    inner: Mutex<T>,
}

impl<T> Tracked<T> {
    /// Wraps `value` in a tracked mutex of the given class.
    pub fn new(class: LockClass, value: T) -> Tracked<T> {
        Tracked {
            class,
            inner: Mutex::new(value),
        }
    }

    /// The class this lock was created with.
    pub fn class(&self) -> LockClass {
        self.class
    }

    /// Locks, poison-tolerantly (see [`crate::sync::MutexExt`]),
    /// checking the ordering DAG and counting contention.
    pub fn lock_ok(&self) -> TrackedGuard<'_, T> {
        let token = OrderToken::enter(self.class);
        let guard = match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                note_contention(self.class);
                self.inner
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
            }
        };
        TrackedGuard {
            guard,
            _token: token,
        }
    }
}

/// Guard returned by [`Tracked::lock_ok`]. Field order matters: the
/// mutex guard drops (releasing the lock) before the order token pops.
#[derive(Debug)]
pub struct TrackedGuard<'a, T> {
    guard: MutexGuard<'a, T>,
    _token: OrderToken,
}

impl<T> std::ops::Deref for TrackedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn increasing_ranks_are_allowed() {
        let a = Tracked::new(LockClass::Kernel, 1u32);
        let b = Tracked::new(LockClass::Object, 2u32);
        let c = Tracked::new(LockClass::Waits, 3u32);
        let ga = a.lock_ok();
        let gb = b.lock_ok();
        let gc = c.lock_ok();
        assert_eq!(*ga + *gb + *gc, 6);
    }

    #[test]
    fn out_of_order_guard_drops_are_fine() {
        let a = Tracked::new(LockClass::Slab, 1u32);
        let b = Tracked::new(LockClass::Object, 2u32);
        let ga = a.lock_ok();
        let gb = b.lock_ok();
        drop(ga); // release the *outer* lock first
        drop(gb);
        // The stack healed: a fresh low-rank acquisition succeeds.
        let _ = a.lock_ok();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order violation")]
    fn decreasing_rank_asserts() {
        let hi = Tracked::new(LockClass::Waits, ());
        let lo = Tracked::new(LockClass::Object, ());
        let _g = hi.lock_ok();
        let _bad = lo.lock_ok();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order violation")]
    fn equal_rank_asserts() {
        let a = Tracked::new(LockClass::Object, ());
        let b = Tracked::new(LockClass::Object, ());
        let _g = a.lock_ok();
        let _bad = b.lock_ok();
    }

    #[test]
    fn contention_is_counted() {
        use std::sync::Arc;
        let m = Arc::new(Tracked::new(LockClass::Proc, 0u64));
        let before = contention(LockClass::Proc);
        let m2 = m.clone();
        let g = m.lock_ok();
        let t = std::thread::spawn(move || {
            let mut g = m2.lock_ok();
            *g += 1;
        });
        // Give the other thread a moment to hit the held lock. The
        // counter is monotone, so a scheduling fluke only weakens the
        // delta (>= 0 either way); the sleep makes a hit overwhelmingly
        // likely without being load-bearing for correctness.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(g);
        t.join().unwrap();
        assert_eq!(*m.lock_ok(), 1);
        assert!(contention(LockClass::Proc) >= before);
    }
}
