//! Virtual clocks.
//!
//! All kernel-visible time is virtual and advances deterministically: a
//! small quantum per syscall (mode-switch cost model) plus explicit
//! advances by the scheduler when every task is blocked. `CLOCK_REALTIME`
//! is the monotonic clock plus a fixed boot epoch.

/// Nanoseconds the clock advances per syscall entry (mode-switch model).
pub const SYSCALL_QUANTUM_NS: u64 = 180;

/// Fixed boot epoch for `CLOCK_REALTIME` (2025-01-01T00:00:00Z).
pub const BOOT_EPOCH_NS: u64 = 1_735_689_600_000_000_000;

/// A deterministic virtual clock.
#[derive(Clone, Debug, Default)]
pub struct Clock {
    mono_ns: u64,
}

impl Clock {
    /// Creates a clock at boot (monotonic 0).
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Current monotonic time in nanoseconds.
    #[inline]
    pub fn monotonic_ns(&self) -> u64 {
        self.mono_ns
    }

    /// Current realtime in nanoseconds since the Unix epoch.
    #[inline]
    pub fn realtime_ns(&self) -> u64 {
        BOOT_EPOCH_NS + self.mono_ns
    }

    /// Advances the clock by `ns`.
    pub fn advance(&mut self, ns: u64) {
        self.mono_ns += ns;
    }

    /// Advances to at least `deadline` (no-op if already past).
    pub fn advance_to(&mut self, deadline: u64) {
        self.mono_ns = self.mono_ns.max(deadline);
    }

    /// Per-syscall tick.
    pub fn tick(&mut self) {
        self.advance(SYSCALL_QUANTUM_NS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.monotonic_ns(), 0);
        c.tick();
        assert_eq!(c.monotonic_ns(), SYSCALL_QUANTUM_NS);
        c.advance(1_000);
        assert_eq!(c.monotonic_ns(), SYSCALL_QUANTUM_NS + 1_000);
        c.advance_to(500);
        assert_eq!(
            c.monotonic_ns(),
            SYSCALL_QUANTUM_NS + 1_000,
            "never goes backwards"
        );
        c.advance_to(10_000);
        assert_eq!(c.monotonic_ns(), 10_000);
    }

    #[test]
    fn realtime_tracks_monotonic() {
        let mut c = Clock::new();
        assert_eq!(c.realtime_ns(), BOOT_EPOCH_NS);
        c.advance(5);
        assert_eq!(c.realtime_ns(), BOOT_EPOCH_NS + 5);
    }
}
