//! Virtual clocks.
//!
//! All kernel-visible time is virtual and advances deterministically: a
//! small quantum per syscall (mode-switch cost model) plus explicit
//! advances by the scheduler when every task is blocked. `CLOCK_REALTIME`
//! is the monotonic clock plus a fixed boot epoch.
//!
//! The clock is the lock-free shard of the kernel: its state is one
//! atomic counter, so any worker thread can read or tick it without
//! taking the kernel lock. [`Clock::clone`] shares the underlying
//! counter — the kernel hands clones to the scheduler and to the
//! syscall fast path as independent handles onto the same virtual time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Nanoseconds the clock advances per syscall entry (mode-switch model).
pub const SYSCALL_QUANTUM_NS: u64 = 180;

/// Fixed boot epoch for `CLOCK_REALTIME` (2025-01-01T00:00:00Z).
pub const BOOT_EPOCH_NS: u64 = 1_735_689_600_000_000_000;

/// A deterministic virtual clock. Clones share the counter.
#[derive(Clone, Debug, Default)]
pub struct Clock {
    mono_ns: Arc<AtomicU64>,
}

impl Clock {
    /// Creates a clock at boot (monotonic 0).
    pub fn new() -> Clock {
        Clock::default()
    }

    /// Current monotonic time in nanoseconds.
    #[inline]
    pub fn monotonic_ns(&self) -> u64 {
        self.mono_ns.load(Ordering::Relaxed)
    }

    /// Current realtime in nanoseconds since the Unix epoch.
    #[inline]
    pub fn realtime_ns(&self) -> u64 {
        BOOT_EPOCH_NS + self.monotonic_ns()
    }

    /// Advances the clock by `ns`.
    pub fn advance(&self, ns: u64) {
        self.mono_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Advances to at least `deadline` (no-op if already past).
    pub fn advance_to(&self, deadline: u64) {
        self.mono_ns.fetch_max(deadline, Ordering::Relaxed);
    }

    /// Per-syscall tick.
    pub fn tick(&self) {
        self.advance(SYSCALL_QUANTUM_NS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let c = Clock::new();
        assert_eq!(c.monotonic_ns(), 0);
        c.tick();
        assert_eq!(c.monotonic_ns(), SYSCALL_QUANTUM_NS);
        c.advance(1_000);
        assert_eq!(c.monotonic_ns(), SYSCALL_QUANTUM_NS + 1_000);
        c.advance_to(500);
        assert_eq!(
            c.monotonic_ns(),
            SYSCALL_QUANTUM_NS + 1_000,
            "never goes backwards"
        );
        c.advance_to(10_000);
        assert_eq!(c.monotonic_ns(), 10_000);
    }

    #[test]
    fn realtime_tracks_monotonic() {
        let c = Clock::new();
        assert_eq!(c.realtime_ns(), BOOT_EPOCH_NS);
        c.advance(5);
        assert_eq!(c.realtime_ns(), BOOT_EPOCH_NS + 5);
    }

    #[test]
    fn clones_share_the_counter() {
        let a = Clock::new();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.monotonic_ns(), 42, "handles onto one virtual time");
    }
}
