//! A deterministic in-memory Linux kernel model.
//!
//! The paper's WALI implementation passes syscalls through to a real Linux
//! host. A library reproduction needs the *semantics* of that host without
//! its non-determinism, so this crate implements the userspace-visible
//! behaviour of the Linux syscalls WALI covers: a VFS with directories,
//! regular files, symlinks, devices and `/proc`; file-descriptor tables
//! with `dup`/`CLOEXEC`/shared-offset semantics; pipes; loopback
//! `AF_UNIX`/`AF_INET` sockets; processes, threads (`clone` flag
//! semantics), zombies and `wait4`; the full signal state machine
//! (handlers, masks, pending sets, default dispositions); futexes; virtual
//! clocks and interval timers; and resource limits.
//!
//! # Execution model
//!
//! The kernel is **single-threaded and cooperative**: every syscall either
//! completes immediately or returns [`SysError::Block`]. Before returning
//! `Block`, the kernel subscribes the task to the [`wait::Channel`]s that
//! can unblock it, and every unblocking state transition posts a wakeup
//! into the [`wait::WaitSet`]. The embedder (the WALI runner) drains the
//! woken list each scheduling round, parks blocked tasks, and advances the
//! [`clock::Clock`] to the earliest deadline when every task is parked.
//! This matches the paper's N-to-1 lightweight-process model (§3.1) and
//! makes every test and benchmark in the repository deterministic. The
//! 1-to-1 model is layered on top by giving each Wasm instance its own
//! kernel task.
//!
//! Blocked syscalls follow the classic *retry* convention: the embedder
//! re-issues the same call once the task is woken; the kernel guarantees
//! idempotence of the blocked path. Wakeups may be spurious (a retry may
//! block again); they are never missing.

pub mod clock;
pub mod fd;
pub mod kernel;
pub mod lockorder;
pub mod pipe;
pub mod proc;
pub mod signal;
pub mod slab;
pub mod socket;
pub mod sync;
pub mod task;
pub mod vfs;
pub mod wait;

pub use clock::Clock;
pub use kernel::{Kernel, KernelHandles, LeakReport};
pub use lockorder::{contention, LockClass, OrderToken, Tracked};
pub use proc::{ProcIndex, TaskHot};
pub use slab::ObjSlab;
pub use sync::{shared, HintFlag, MutexExt, Shared};
pub use task::{Pid, Task, TaskState, Tid};
pub use wait::{Channel, WaitSet, WaitShard, WaitStats};

use wali_abi::Errno;

/// An address-space identity (used for futex keys and mm sharing).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MmId(pub u64);

/// Why a syscall could not complete right now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Block {
    /// Virtual-monotonic deadline (ns) after which the call should fail or
    /// complete with a timeout, if any.
    pub deadline: Option<u64>,
}

/// A syscall error: a real errno or a would-block condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SysError {
    /// Complete with `-errno`.
    Err(Errno),
    /// The task must block; retry after a wake-up (or the deadline).
    Block(Block),
}

impl From<Errno> for SysError {
    fn from(e: Errno) -> Self {
        SysError::Err(e)
    }
}

/// Result type of every kernel syscall method.
pub type SysResult<T = i64> = Result<T, SysError>;

/// Shorthand: a blocking condition with no deadline.
pub fn block() -> SysError {
    SysError::Block(Block { deadline: None })
}

/// Shorthand: a blocking condition with a deadline.
pub fn block_until(deadline: u64) -> SysError {
    SysError::Block(Block {
        deadline: Some(deadline),
    })
}
