//! Id-keyed slabs of independently lockable kernel objects.
//!
//! Pipes, sockets and epoll instances used to live in `Vec<Option<T>>`
//! fields of the kernel, reachable only under the big kernel lock. An
//! [`ObjSlab`] gives each object its own [`Tracked`] lock and makes the
//! id → object lookup a cloneable handle, so the embedder's uncontended
//! fast path can reach a pipe or socket without taking the kernel lock
//! at all.
//!
//! The slot table itself hides behind an `RwLock`: lookups (the hot
//! path, including concurrent lookups from several workers) take the
//! read side and never contend with each other; only allocation and
//! teardown take the write side. Slot ids are reused exactly like the
//! old `Vec<Option<T>>` (first free slot), which keeps single-worker
//! runs bit-deterministic across the shard/no-shard toggle.

use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::lockorder::{note_contention, LockClass, OrderToken, Tracked};

/// One slab slot: the object behind its own [`Tracked`] lock.
type Slot<T> = Option<Arc<Tracked<T>>>;

/// A shared slab of per-object-locked values.
#[derive(Debug)]
pub struct ObjSlab<T> {
    slots: Arc<RwLock<Vec<Slot<T>>>>,
    /// Class of the *element* locks ([`LockClass::Slab`] guards the
    /// table itself).
    class: LockClass,
}

impl<T> Clone for ObjSlab<T> {
    fn clone(&self) -> ObjSlab<T> {
        ObjSlab {
            slots: self.slots.clone(),
            class: self.class,
        }
    }
}

impl<T> ObjSlab<T> {
    /// An empty slab whose elements lock with `class`.
    pub fn new(class: LockClass) -> ObjSlab<T> {
        ObjSlab {
            slots: Arc::new(RwLock::new(Vec::new())),
            class,
        }
    }

    fn read_table(&self) -> (RwLockReadGuard<'_, Vec<Slot<T>>>, OrderToken) {
        let token = OrderToken::enter(LockClass::Slab);
        let guard = match self.slots.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                note_contention(LockClass::Slab);
                self.slots.read().unwrap_or_else(|p| p.into_inner())
            }
        };
        (guard, token)
    }

    fn write_table(&self) -> (RwLockWriteGuard<'_, Vec<Slot<T>>>, OrderToken) {
        let token = OrderToken::enter(LockClass::Slab);
        let guard = match self.slots.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                note_contention(LockClass::Slab);
                self.slots.write().unwrap_or_else(|p| p.into_inner())
            }
        };
        (guard, token)
    }

    /// Inserts `value`, reusing the first free slot (old `Vec<Option>`
    /// semantics), and returns its id.
    pub fn insert(&self, value: T) -> usize {
        let obj = Arc::new(Tracked::new(self.class, value));
        let (mut slots, _token) = self.write_table();
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(obj);
                return i;
            }
        }
        slots.push(Some(obj));
        slots.len() - 1
    }

    /// The object in slot `id`, if live. The returned handle stays
    /// valid (and lockable) even if the slot is freed concurrently —
    /// exactly like an fd kept open across a close elsewhere.
    pub fn get(&self, id: usize) -> Option<Arc<Tracked<T>>> {
        let (slots, _token) = self.read_table();
        slots.get(id).and_then(|s| s.clone())
    }

    /// Frees slot `id`, returning the (possibly still shared) object.
    pub fn free(&self, id: usize) -> Option<Arc<Tracked<T>>> {
        let (mut slots, _token) = self.write_table();
        slots.get_mut(id).and_then(|s| s.take())
    }

    /// Number of live slots (leak audits).
    pub fn live(&self) -> usize {
        let (slots, _token) = self.read_table();
        slots.iter().filter(|s| s.is_some()).count()
    }

    /// Ids of the live slots, ascending (deterministic iteration).
    pub fn live_ids(&self) -> Vec<usize> {
        let (slots, _token) = self.read_table();
        slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_ids_are_reused_first_free() {
        let slab: ObjSlab<u32> = ObjSlab::new(LockClass::Object);
        assert_eq!(slab.insert(10), 0);
        assert_eq!(slab.insert(11), 1);
        assert_eq!(slab.insert(12), 2);
        slab.free(1);
        assert_eq!(slab.insert(13), 1, "first free slot wins");
        assert_eq!(slab.live(), 3);
        assert_eq!(slab.live_ids(), vec![0, 1, 2]);
    }

    #[test]
    fn handles_outlive_the_slot() {
        let slab: ObjSlab<String> = ObjSlab::new(LockClass::Object);
        let id = slab.insert("alive".into());
        let handle = slab.get(id).unwrap();
        slab.free(id);
        assert!(slab.get(id).is_none());
        assert_eq!(*handle.lock_ok(), "alive");
    }
}
