//! Shared-state primitives for the SMP kernel.
//!
//! The kernel model used to be single-threaded (`Rc<RefCell<…>>`
//! everywhere). The SMP executor interprets runnable tasks on a pool of
//! host worker threads, so every piece of state that `clone` semantics
//! share between tasks — fd tables, open file descriptions, fs info,
//! signal handlers, pending sets — is now an [`Shared`] handle with its
//! own lock, independently lockable from the kernel core.
//!
//! Lock ordering (see DESIGN.md "Concurrency" and
//! [`crate::lockorder`]): the tracked classes form a DAG acquired
//! strictly downward — `Kernel → Proc → Slab → Epoll → Object → Vfs →
//! Waits` — enforced by a debug-build rank stack. Per-task shards (fd
//! table → open file description) are plain mutexes nesting inside
//! whatever class is held; the scheduler's queue locks are never held
//! across a kernel call. The virtual clock is lock-free (atomics) and
//! may be read or ticked from any level.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A shared, independently lockable shard of kernel state.
pub type Shared<T> = Arc<Mutex<T>>;

/// Creates a [`Shared`] shard.
pub fn shared<T>(value: T) -> Shared<T> {
    Arc::new(Mutex::new(value))
}

/// Poison-tolerant locking: a worker that panics mid-slice must not
/// poison every sibling's view of the kernel (the state is still
/// consistent at syscall granularity — kernel methods never unwind while
/// holding partial updates in a way later calls observe).
pub trait MutexExt<T> {
    /// Locks, recovering the guard from a poisoned mutex.
    fn lock_ok(&self) -> MutexGuard<'_, T>;
}

impl<T> MutexExt<T> for Mutex<T> {
    fn lock_ok(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A shared boolean hint flag (the per-task signal fast path).
///
/// Replaces the old `Rc<Cell<bool>>`: safepoint polling happens on the
/// worker running the task while signal generation can happen on any
/// other worker, so the flag is an atomic. `Relaxed` suffices — the flag
/// is a *hint*; the authoritative pending state is read under the kernel
/// lock, which orders the actual delivery.
#[derive(Clone, Debug, Default)]
pub struct HintFlag(Arc<AtomicBool>);

impl HintFlag {
    /// A fresh, unset flag.
    pub fn new() -> HintFlag {
        HintFlag::default()
    }

    /// Reads the hint.
    #[inline]
    pub fn get(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Sets or clears the hint.
    #[inline]
    pub fn set(&self, value: bool) {
        self.0.store(value, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hint_flag_is_shared_between_clones() {
        let a = HintFlag::new();
        let b = a.clone();
        assert!(!b.get());
        a.set(true);
        assert!(b.get());
        b.set(false);
        assert!(!a.get());
    }

    #[test]
    fn lock_ok_recovers_from_poison() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock_ok(), 7);
    }
}
