//! In-memory virtual filesystem: inodes, directories, symlinks, devices
//! and the `/proc` entries WALI's security model interposes on.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

use wali_abi::flags::{S_IFCHR, S_IFDIR, S_IFLNK, S_IFMT, S_IFREG};
use wali_abi::Errno;

use crate::lockorder::{note_contention, LockClass, OrderToken};

/// Index into the inode table.
pub type InodeId = usize;

/// Maximum symlink traversals before `ELOOP`.
pub const MAX_SYMLINK_DEPTH: u32 = 40;
/// Maximum path length before `ENAMETOOLONG`.
pub const PATH_MAX: usize = 4096;

/// Character/pseudo device behaviours.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DevKind {
    /// `/dev/null`: reads EOF, writes discarded.
    Null,
    /// `/dev/zero`: reads zeros.
    Zero,
    /// `/dev/urandom`: deterministic pseudo-random stream.
    Urandom,
    /// `/dev/tty`: line console (writes captured by the kernel).
    Tty,
    /// `/proc/self/mem`: the host-address-space hole WALI must interpose
    /// on and deny (paper §3.6 pitfall 1).
    ProcSelfMem,
    /// A `/proc` text file whose content is generated at open time.
    ProcText(&'static str),
}

/// What an inode is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InodeKind {
    /// Regular file with contents.
    File(Vec<u8>),
    /// Directory mapping names to inodes.
    Dir(BTreeMap<String, InodeId>),
    /// Symbolic link to a target path.
    Symlink(String),
    /// Character device.
    CharDev(DevKind),
}

/// An inode.
#[derive(Clone, Debug)]
pub struct Inode {
    /// Stable inode number (for `stat`).
    pub ino: u64,
    /// Content.
    pub kind: InodeKind,
    /// Permission bits (file-type bits derived from `kind`).
    pub perm: u32,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Hard link count.
    pub nlink: u32,
    /// Access/modify/change times (virtual ns since epoch).
    pub atime: u64,
    /// Modification time.
    pub mtime: u64,
    /// Change time.
    pub ctime: u64,
}

impl Inode {
    /// The full `st_mode` including file-type bits.
    pub fn mode(&self) -> u32 {
        let kind_bits = match &self.kind {
            InodeKind::File(_) => S_IFREG,
            InodeKind::Dir(_) => S_IFDIR,
            InodeKind::Symlink(_) => S_IFLNK,
            InodeKind::CharDev(_) => S_IFCHR,
        };
        kind_bits | (self.perm & !S_IFMT)
    }

    /// Byte size for `stat` (file length, symlink target length, 0 else).
    pub fn size(&self) -> u64 {
        match &self.kind {
            InodeKind::File(data) => data.len() as u64,
            InodeKind::Symlink(t) => t.len() as u64,
            InodeKind::Dir(entries) => (entries.len() as u64 + 2) * 32,
            InodeKind::CharDev(_) => 0,
        }
    }

    /// Directory entries, or `ENOTDIR`.
    pub fn dir(&self) -> Result<&BTreeMap<String, InodeId>, Errno> {
        match &self.kind {
            InodeKind::Dir(d) => Ok(d),
            _ => Err(Errno::Enotdir),
        }
    }

    fn dir_mut(&mut self) -> Result<&mut BTreeMap<String, InodeId>, Errno> {
        match &mut self.kind {
            InodeKind::Dir(d) => Ok(d),
            _ => Err(Errno::Enotdir),
        }
    }
}

/// Result of a path resolution.
#[derive(Clone, Debug)]
pub struct Resolved {
    /// The directory containing the final component.
    pub parent: InodeId,
    /// The final path component (empty for `/`).
    pub name: String,
    /// The inode, if the final component exists.
    pub inode: Option<InodeId>,
}

/// The filesystem.
#[derive(Clone, Debug)]
pub struct Vfs {
    inodes: Vec<Option<Inode>>,
    /// Root directory inode.
    pub root: InodeId,
    next_ino: u64,
}

impl Default for Vfs {
    fn default() -> Self {
        Self::new()
    }
}

impl Vfs {
    /// Creates a filesystem with only `/`.
    pub fn new() -> Vfs {
        let mut vfs = Vfs {
            inodes: Vec::new(),
            root: 0,
            next_ino: 1,
        };
        let root = vfs.alloc(InodeKind::Dir(BTreeMap::new()), 0o755, 0);
        vfs.root = root;
        vfs
    }

    /// Creates a filesystem with the standard layout: `/tmp`, `/home`,
    /// `/etc/passwd`, `/dev/{null,zero,urandom,tty}` and the `/proc`
    /// entries the WALI security model cares about.
    pub fn with_std_layout() -> Vfs {
        let mut vfs = Vfs::new();
        for dir in [
            "/tmp",
            "/home",
            "/home/user",
            "/etc",
            "/dev",
            "/proc",
            "/proc/self",
            "/var",
            "/var/log",
            "/usr",
            "/usr/bin",
        ] {
            vfs.mkdir_p(dir).expect("std layout");
        }
        vfs.write_file(
            "/etc/passwd",
            b"root:x:0:0:root:/root:/bin/bash\nuser:x:1000:1000::/home/user:/bin/bash\n",
        )
        .expect("std layout");
        vfs.write_file("/etc/hostname", b"wali-vm\n")
            .expect("std layout");
        vfs.mknod_dev("/dev/null", DevKind::Null)
            .expect("std layout");
        vfs.mknod_dev("/dev/zero", DevKind::Zero)
            .expect("std layout");
        vfs.mknod_dev("/dev/urandom", DevKind::Urandom)
            .expect("std layout");
        vfs.mknod_dev("/dev/tty", DevKind::Tty).expect("std layout");
        vfs.mknod_dev("/proc/self/mem", DevKind::ProcSelfMem)
            .expect("std layout");
        vfs.mknod_dev("/proc/self/status", DevKind::ProcText("status"))
            .expect("std layout");
        vfs.mknod_dev("/proc/meminfo", DevKind::ProcText("meminfo"))
            .expect("std layout");
        vfs.mknod_dev("/proc/cpuinfo", DevKind::ProcText("cpuinfo"))
            .expect("std layout");
        vfs
    }

    /// Allocates a new inode.
    pub fn alloc(&mut self, kind: InodeKind, perm: u32, now: u64) -> InodeId {
        let ino = self.next_ino;
        self.next_ino += 1;
        let node = Inode {
            ino,
            kind,
            perm,
            uid: 0,
            gid: 0,
            nlink: 1,
            atime: now,
            mtime: now,
            ctime: now,
        };
        self.inodes.push(Some(node));
        self.inodes.len() - 1
    }

    /// Fetches an inode.
    pub fn get(&self, id: InodeId) -> Result<&Inode, Errno> {
        self.inodes
            .get(id)
            .and_then(|i| i.as_ref())
            .ok_or(Errno::Enoent)
    }

    /// Fetches an inode mutably.
    pub fn get_mut(&mut self, id: InodeId) -> Result<&mut Inode, Errno> {
        self.inodes
            .get_mut(id)
            .and_then(|i| i.as_mut())
            .ok_or(Errno::Enoent)
    }

    /// Resolves `path` relative to `cwd`, following intermediate symlinks
    /// always and the final symlink only when `follow_last` is set.
    pub fn resolve(&self, cwd: InodeId, path: &str, follow_last: bool) -> Result<Resolved, Errno> {
        self.resolve_depth(cwd, path, follow_last, 0)
    }

    fn resolve_depth(
        &self,
        cwd: InodeId,
        path: &str,
        follow_last: bool,
        depth: u32,
    ) -> Result<Resolved, Errno> {
        if depth > MAX_SYMLINK_DEPTH {
            return Err(Errno::Eloop);
        }
        if path.len() > PATH_MAX {
            return Err(Errno::Enametoolong);
        }
        if path.is_empty() {
            return Err(Errno::Enoent);
        }

        // Walk maintaining a directory stack so `..` works without parent
        // pointers.
        let mut stack: Vec<InodeId> = vec![self.root];
        if !path.starts_with('/') && cwd != self.root {
            stack = self.dir_stack_of(cwd)?;
        }

        let comps: Vec<&str> = path
            .split('/')
            .filter(|c| !c.is_empty() && *c != ".")
            .collect();
        if comps.is_empty() {
            // "/" or "." — the directory itself.
            let dir = *stack.last().expect("non-empty stack");
            return Ok(Resolved {
                parent: dir,
                name: String::new(),
                inode: Some(dir),
            });
        }

        for (i, comp) in comps.iter().enumerate() {
            let last = i == comps.len() - 1;
            if *comp == ".." {
                if stack.len() > 1 {
                    stack.pop();
                }
                if last {
                    let dir = *stack.last().expect("root remains");
                    return Ok(Resolved {
                        parent: dir,
                        name: String::new(),
                        inode: Some(dir),
                    });
                }
                continue;
            }
            let dir_id = *stack.last().expect("non-empty stack");
            let dir = self.get(dir_id)?;
            let entries = dir.dir()?;
            match entries.get(*comp) {
                None if last => {
                    return Ok(Resolved {
                        parent: dir_id,
                        name: comp.to_string(),
                        inode: None,
                    });
                }
                None => return Err(Errno::Enoent),
                Some(&child) => {
                    let node = self.get(child)?;
                    if let InodeKind::Symlink(target) = &node.kind {
                        if !last || follow_last {
                            // Re-resolve: target, then the remaining comps.
                            let mut rebuilt = target.clone();
                            for rest in &comps[i + 1..] {
                                rebuilt.push('/');
                                rebuilt.push_str(rest);
                            }
                            return self.resolve_depth(dir_id, &rebuilt, follow_last, depth + 1);
                        }
                    }
                    if last {
                        return Ok(Resolved {
                            parent: dir_id,
                            name: comp.to_string(),
                            inode: Some(child),
                        });
                    }
                    stack.push(child);
                }
            }
        }
        unreachable!("loop returns on the last component");
    }

    /// Rebuilds the directory stack for `dir` by scanning from the root
    /// (directories form a tree, so a DFS finds the unique path).
    fn dir_stack_of(&self, dir: InodeId) -> Result<Vec<InodeId>, Errno> {
        if dir == self.root {
            return Ok(vec![self.root]);
        }
        let mut stack = vec![self.root];
        if self.dfs_to(dir, &mut stack) {
            Ok(stack)
        } else {
            Err(Errno::Enoent)
        }
    }

    fn dfs_to(&self, target: InodeId, stack: &mut Vec<InodeId>) -> bool {
        let cur = *stack.last().expect("non-empty");
        let Ok(node) = self.get(cur) else {
            return false;
        };
        let Ok(entries) = node.dir() else {
            return false;
        };
        for &child in entries.values() {
            if matches!(self.get(child).map(|n| &n.kind), Ok(InodeKind::Dir(_))) {
                stack.push(child);
                if child == target || self.dfs_to(target, stack) {
                    return true;
                }
                stack.pop();
            }
        }
        false
    }

    /// Returns the absolute path of a directory inode (for `getcwd`).
    pub fn abs_path_of(&self, dir: InodeId) -> Result<String, Errno> {
        let stack = self.dir_stack_of(dir)?;
        if stack.len() == 1 {
            return Ok("/".to_string());
        }
        let mut out = String::new();
        for win in stack.windows(2) {
            let parent = self.get(win[0])?;
            let entries = parent.dir()?;
            let name = entries
                .iter()
                .find(|(_, &id)| id == win[1])
                .map(|(n, _)| n.clone())
                .ok_or(Errno::Enoent)?;
            out.push('/');
            out.push_str(&name);
        }
        Ok(out)
    }

    /// Adds a directory entry; the caller ensures `parent` is a directory.
    pub fn link_into(&mut self, parent: InodeId, name: &str, child: InodeId) -> Result<(), Errno> {
        if name.is_empty() || name.contains('/') {
            return Err(Errno::Einval);
        }
        let entries = self.get_mut(parent)?.dir_mut()?;
        if entries.contains_key(name) {
            return Err(Errno::Eexist);
        }
        entries.insert(name.to_string(), child);
        self.get_mut(child)?.nlink += 1;
        Ok(())
    }

    /// Removes a directory entry, freeing the inode when nlink drops to 0.
    pub fn unlink_from(&mut self, parent: InodeId, name: &str) -> Result<(), Errno> {
        let entries = self.get_mut(parent)?.dir_mut()?;
        let child = *entries.get(name).ok_or(Errno::Enoent)?;
        entries.remove(name);
        let node = self.get_mut(child)?;
        node.nlink = node.nlink.saturating_sub(1);
        if node.nlink == 0 {
            self.inodes[child] = None;
        }
        Ok(())
    }

    /// Creates every missing directory along `path`.
    pub fn mkdir_p(&mut self, path: &str) -> Result<InodeId, Errno> {
        let mut cur = self.root;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            let next = {
                let dir = self.get(cur)?.dir()?;
                dir.get(comp).copied()
            };
            cur = match next {
                Some(id) => id,
                None => {
                    let id = self.alloc(InodeKind::Dir(BTreeMap::new()), 0o755, 0);
                    self.link_into(cur, comp, id)?;
                    id
                }
            };
        }
        Ok(cur)
    }

    /// Creates (or truncates) a regular file at an absolute path.
    pub fn write_file(&mut self, path: &str, content: &[u8]) -> Result<InodeId, Errno> {
        let r = self.resolve(self.root, path, true)?;
        match r.inode {
            Some(id) => match &mut self.get_mut(id)?.kind {
                InodeKind::File(data) => {
                    data.clear();
                    data.extend_from_slice(content);
                    Ok(id)
                }
                _ => Err(Errno::Eisdir),
            },
            None => {
                let id = self.alloc(InodeKind::File(content.to_vec()), 0o644, 0);
                self.link_into(r.parent, &r.name, id)?;
                // link_into bumped nlink to 2 (alloc starts at 1).
                self.get_mut(id)?.nlink = 1;
                Ok(id)
            }
        }
    }

    /// Reads a whole regular file at an absolute path (test convenience).
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, Errno> {
        let r = self.resolve(self.root, path, true)?;
        let id = r.inode.ok_or(Errno::Enoent)?;
        match &self.get(id)?.kind {
            InodeKind::File(data) => Ok(data.clone()),
            InodeKind::Dir(_) => Err(Errno::Eisdir),
            _ => Err(Errno::Einval),
        }
    }

    /// Creates a device node at an absolute path.
    pub fn mknod_dev(&mut self, path: &str, dev: DevKind) -> Result<InodeId, Errno> {
        let r = self.resolve(self.root, path, true)?;
        if r.inode.is_some() {
            return Err(Errno::Eexist);
        }
        let id = self.alloc(InodeKind::CharDev(dev), 0o666, 0);
        self.link_into(r.parent, &r.name, id)?;
        self.get_mut(id)?.nlink = 1;
        Ok(id)
    }

    /// Number of live inodes (for memory accounting).
    pub fn inode_count(&self) -> usize {
        self.inodes.iter().filter(|i| i.is_some()).count()
    }
}

/// The filesystem behind a reader/writer shard lock.
///
/// Path resolution and `stat`-family reads vastly outnumber namespace
/// mutations, so the shard is an `RwLock`: concurrent lookups from
/// several workers share the read side without contending. The root
/// inode id is immutable for the filesystem's lifetime and mirrored
/// here so `resolve(vfs.root, …)` call sites need no lock at all for
/// the anchor.
#[derive(Clone, Debug)]
pub struct VfsShard {
    inner: Arc<RwLock<Vfs>>,
    /// Root directory inode (immutable; copied out of the wrapped fs).
    pub root: InodeId,
}

/// Read guard over the shard ([`std::ops::Deref`] to [`Vfs`]).
pub struct VfsReadGuard<'a> {
    guard: RwLockReadGuard<'a, Vfs>,
    _token: OrderToken,
}

impl std::ops::Deref for VfsReadGuard<'_> {
    type Target = Vfs;
    fn deref(&self) -> &Vfs {
        &self.guard
    }
}

/// Write guard over the shard (`Deref`/`DerefMut` to [`Vfs`]).
pub struct VfsWriteGuard<'a> {
    guard: RwLockWriteGuard<'a, Vfs>,
    _token: OrderToken,
}

impl std::ops::Deref for VfsWriteGuard<'_> {
    type Target = Vfs;
    fn deref(&self) -> &Vfs {
        &self.guard
    }
}

impl std::ops::DerefMut for VfsWriteGuard<'_> {
    fn deref_mut(&mut self) -> &mut Vfs {
        &mut self.guard
    }
}

impl Default for VfsShard {
    fn default() -> VfsShard {
        VfsShard::new(Vfs::new())
    }
}

impl VfsShard {
    /// Wraps a filesystem in its shard lock.
    pub fn new(vfs: Vfs) -> VfsShard {
        let root = vfs.root;
        VfsShard {
            inner: Arc::new(RwLock::new(vfs)),
            root,
        }
    }

    /// Locks the read side (lookups, `stat`, `getdents`).
    pub fn read(&self) -> VfsReadGuard<'_> {
        let token = OrderToken::enter(LockClass::Vfs);
        let guard = match self.inner.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                note_contention(LockClass::Vfs);
                self.inner.read().unwrap_or_else(|p| p.into_inner())
            }
        };
        VfsReadGuard {
            guard,
            _token: token,
        }
    }

    /// Locks the write side (namespace and content mutation).
    pub fn write(&self) -> VfsWriteGuard<'_> {
        let token = OrderToken::enter(LockClass::Vfs);
        let guard = match self.inner.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => {
                note_contention(LockClass::Vfs);
                self.inner.write().unwrap_or_else(|p| p.into_inner())
            }
        };
        VfsWriteGuard {
            guard,
            _token: token,
        }
    }

    // Owned-result conveniences: the call sites that only need one
    // operation keep their pre-shard shape (`self.vfs.resolve(…)`).

    /// See [`Vfs::resolve`].
    pub fn resolve(&self, cwd: InodeId, path: &str, follow_last: bool) -> Result<Resolved, Errno> {
        self.read().resolve(cwd, path, follow_last)
    }

    /// See [`Vfs::alloc`].
    pub fn alloc(&self, kind: InodeKind, perm: u32, now: u64) -> InodeId {
        self.write().alloc(kind, perm, now)
    }

    /// See [`Vfs::abs_path_of`].
    pub fn abs_path_of(&self, dir: InodeId) -> Result<String, Errno> {
        self.read().abs_path_of(dir)
    }

    /// See [`Vfs::link_into`].
    pub fn link_into(&self, parent: InodeId, name: &str, child: InodeId) -> Result<(), Errno> {
        self.write().link_into(parent, name, child)
    }

    /// See [`Vfs::unlink_from`].
    pub fn unlink_from(&self, parent: InodeId, name: &str) -> Result<(), Errno> {
        self.write().unlink_from(parent, name)
    }

    /// See [`Vfs::mkdir_p`].
    pub fn mkdir_p(&self, path: &str) -> Result<InodeId, Errno> {
        self.write().mkdir_p(path)
    }

    /// See [`Vfs::write_file`].
    pub fn write_file(&self, path: &str, content: &[u8]) -> Result<InodeId, Errno> {
        self.write().write_file(path, content)
    }

    /// See [`Vfs::read_file`].
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, Errno> {
        self.read().read_file(path)
    }

    /// See [`Vfs::mknod_dev`].
    pub fn mknod_dev(&self, path: &str, dev: DevKind) -> Result<InodeId, Errno> {
        self.write().mknod_dev(path, dev)
    }

    /// See [`Vfs::inode_count`].
    pub fn inode_count(&self) -> usize {
        self.read().inode_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_layout_has_expected_nodes() {
        let vfs = Vfs::with_std_layout();
        for p in ["/tmp", "/dev/null", "/proc/self/mem", "/etc/passwd"] {
            let r = vfs.resolve(vfs.root, p, true).unwrap();
            assert!(r.inode.is_some(), "{p} missing");
        }
    }

    #[test]
    fn resolve_relative_and_dotdot() {
        let mut vfs = Vfs::with_std_layout();
        let home = vfs.mkdir_p("/home/user/work").unwrap();
        vfs.write_file("/home/user/notes.txt", b"hi").unwrap();
        let r = vfs.resolve(home, "../notes.txt", true).unwrap();
        assert!(r.inode.is_some());
        let r = vfs.resolve(home, "../../..", true).unwrap();
        assert_eq!(r.inode, Some(vfs.root));
        // `..` from root stays at root.
        let r = vfs.resolve(vfs.root, "../../tmp", true).unwrap();
        assert!(r.inode.is_some());
    }

    #[test]
    fn missing_intermediate_is_enoent() {
        let vfs = Vfs::with_std_layout();
        assert_eq!(
            vfs.resolve(vfs.root, "/no/such/dir", true).unwrap_err(),
            Errno::Enoent
        );
        // Missing *final* component resolves with inode = None.
        let r = vfs.resolve(vfs.root, "/tmp/newfile", true).unwrap();
        assert!(r.inode.is_none());
        assert_eq!(r.name, "newfile");
    }

    #[test]
    fn file_as_directory_is_enotdir() {
        let mut vfs = Vfs::with_std_layout();
        vfs.write_file("/tmp/f", b"x").unwrap();
        assert_eq!(
            vfs.resolve(vfs.root, "/tmp/f/sub", true).unwrap_err(),
            Errno::Enotdir
        );
    }

    #[test]
    fn symlinks_follow_and_detect_loops() {
        let mut vfs = Vfs::with_std_layout();
        vfs.write_file("/tmp/real", b"data").unwrap();
        let link = vfs.alloc(InodeKind::Symlink("/tmp/real".into()), 0o777, 0);
        let tmp = vfs.resolve(vfs.root, "/tmp", true).unwrap().inode.unwrap();
        vfs.link_into(tmp, "alias", link).unwrap();

        let r = vfs.resolve(vfs.root, "/tmp/alias", true).unwrap();
        let node = vfs.get(r.inode.unwrap()).unwrap();
        assert!(matches!(node.kind, InodeKind::File(_)));

        // nofollow returns the symlink itself.
        let r = vfs.resolve(vfs.root, "/tmp/alias", false).unwrap();
        let node = vfs.get(r.inode.unwrap()).unwrap();
        assert!(matches!(node.kind, InodeKind::Symlink(_)));

        // Self-loop traps at depth 40.
        let looper = vfs.alloc(InodeKind::Symlink("/tmp/loop".into()), 0o777, 0);
        vfs.link_into(tmp, "loop", looper).unwrap();
        assert_eq!(
            vfs.resolve(vfs.root, "/tmp/loop", true).unwrap_err(),
            Errno::Eloop
        );
    }

    #[test]
    fn symlink_mid_path_is_followed() {
        let mut vfs = Vfs::with_std_layout();
        vfs.mkdir_p("/data/store").unwrap();
        vfs.write_file("/data/store/x", b"1").unwrap();
        let link = vfs.alloc(InodeKind::Symlink("/data".into()), 0o777, 0);
        vfs.link_into(vfs.root, "d", link).unwrap();
        let r = vfs.resolve(vfs.root, "/d/store/x", false).unwrap();
        assert!(r.inode.is_some());
    }

    #[test]
    fn unlink_frees_at_zero_nlink() {
        let mut vfs = Vfs::with_std_layout();
        let id = vfs.write_file("/tmp/f", b"x").unwrap();
        let tmp = vfs.resolve(vfs.root, "/tmp", true).unwrap().inode.unwrap();
        vfs.link_into(tmp, "g", id).unwrap();
        assert_eq!(vfs.get(id).unwrap().nlink, 2);
        vfs.unlink_from(tmp, "f").unwrap();
        assert!(vfs.get(id).is_ok(), "still linked as g");
        vfs.unlink_from(tmp, "g").unwrap();
        assert_eq!(vfs.get(id).unwrap_err(), Errno::Enoent);
    }

    #[test]
    fn abs_path_round_trips() {
        let mut vfs = Vfs::with_std_layout();
        let work = vfs.mkdir_p("/home/user/work").unwrap();
        assert_eq!(vfs.abs_path_of(work).unwrap(), "/home/user/work");
        assert_eq!(vfs.abs_path_of(vfs.root).unwrap(), "/");
    }

    #[test]
    fn mode_bits_reflect_kind() {
        let vfs = Vfs::with_std_layout();
        let dev = vfs
            .resolve(vfs.root, "/dev/null", true)
            .unwrap()
            .inode
            .unwrap();
        assert_eq!(vfs.get(dev).unwrap().mode() & S_IFMT, S_IFCHR);
        let tmp = vfs.resolve(vfs.root, "/tmp", true).unwrap().inode.unwrap();
        assert_eq!(vfs.get(tmp).unwrap().mode() & S_IFMT, S_IFDIR);
    }

    #[test]
    fn long_paths_rejected() {
        let vfs = Vfs::new();
        let long = "/a".repeat(3000);
        assert_eq!(
            vfs.resolve(vfs.root, &long, true).unwrap_err(),
            Errno::Enametoolong
        );
    }
}
