//! Kernel tasks: threads and processes.
//!
//! A *task* is one schedulable entity (Linux LWP). A *process* (thread
//! group) is the set of tasks sharing a `tgid`. Sharing of the fd table,
//! filesystem info, signal handlers and address space is governed by the
//! `clone` flags exactly as on Linux, which is what lets WALI explore the
//! paper's process-model spectrum (§3.1, Fig. 4).

use wali_abi::signals::SigSet;

use crate::fd::FdTable;
use crate::signal::{PendingSet, SigHandlers};
use crate::sync::{shared, HintFlag, Shared};
use crate::vfs::InodeId;
use crate::MmId;

/// A thread id.
pub type Tid = i32;
/// A process (thread-group) id.
pub type Pid = i32;

/// Filesystem info shared under `CLONE_FS`.
#[derive(Clone, Debug)]
pub struct FsInfo {
    /// Current working directory inode.
    pub cwd: InodeId,
    /// File-creation mask.
    pub umask: u32,
}

/// Scheduling/lifecycle state of a task.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TaskState {
    /// Runnable or running.
    Running,
    /// Stopped by a job-control signal; resumes on SIGCONT.
    Stopped,
    /// Exited but not yet reaped; wait-status attached.
    Zombie(i32),
    /// Fully reaped (slot reusable only after removal).
    Dead,
}

/// Per-process accounting (approximate rusage).
#[derive(Clone, Copy, Debug, Default)]
pub struct Rusage {
    /// Virtual user time (ns).
    pub utime_ns: u64,
    /// Virtual system time (ns).
    pub stime_ns: u64,
    /// Peak resident set (bytes, engine-reported).
    pub maxrss: u64,
    /// Voluntary context switches (blocks).
    pub nvcsw: u64,
}

/// One kernel task.
#[derive(Clone, Debug)]
pub struct Task {
    /// Thread id (unique).
    pub tid: Tid,
    /// Thread-group id (process id).
    pub tgid: Pid,
    /// Parent process id.
    pub ppid: Pid,
    /// Process group id.
    pub pgid: Pid,
    /// Session id.
    pub sid: Pid,
    /// Lifecycle state.
    pub state: TaskState,
    /// Descriptor table (shared under `CLONE_FILES`; own lock — a shard).
    pub fdtable: Shared<FdTable>,
    /// cwd/umask (shared under `CLONE_FS`).
    pub fs: Shared<FsInfo>,
    /// Signal handlers (shared under `CLONE_SIGHAND`).
    pub sighand: Shared<SigHandlers>,
    /// Process-wide pending signals (shared by the thread group).
    pub shared_pending: Shared<PendingSet>,
    /// Thread-private pending signals (`tkill`/`tgkill`).
    pub pending: PendingSet,
    /// Blocked-signal mask (per thread).
    pub sigmask: SigSet,
    /// Mask saved by `ppoll`/`epoll_pwait` for the duration of the wait;
    /// restored (atomically with respect to delivery) when the call
    /// returns. `None` outside such a wait.
    pub saved_sigmask: Option<SigSet>,
    /// Address-space identity (shared under `CLONE_VM`).
    pub mm: MmId,
    /// Real/effective/saved uid (simplified to one triple slot each).
    pub uid: u32,
    /// Effective uid.
    pub euid: u32,
    /// Real gid.
    pub gid: u32,
    /// Effective gid.
    pub egid: u32,
    /// Children pids (for `wait4`).
    pub children: Vec<Pid>,
    /// `set_tid_address` / `CLONE_CHILD_CLEARTID` address.
    pub clear_child_tid: u32,
    /// Accounting.
    pub rusage: Rusage,
    /// Pending `alarm(2)` deadline (virtual mono ns).
    pub alarm_deadline: Option<u64>,
    /// A futex wake hit this task while it was blocked.
    pub futex_woken: bool,
    /// Exit code passed to `exit_group`, once exited.
    pub exit_code: Option<i32>,
    /// Fast-path flag the embedder polls at safepoints: set whenever a
    /// signal may be deliverable or the task was terminated, cleared by
    /// the embedder once drained. Keeps safepoint polling O(1).
    pub sig_hint: HintFlag,
}

impl Task {
    /// Creates the init task (pid 1).
    pub fn init(root: InodeId) -> Task {
        Task {
            tid: 1,
            tgid: 1,
            ppid: 0,
            pgid: 1,
            sid: 1,
            state: TaskState::Running,
            fdtable: shared(FdTable::new()),
            fs: shared(FsInfo {
                cwd: root,
                umask: 0o022,
            }),
            sighand: shared(SigHandlers::new()),
            shared_pending: shared(PendingSet::default()),
            pending: PendingSet::default(),
            sigmask: SigSet::EMPTY,
            saved_sigmask: None,
            mm: MmId(1),
            uid: 1000,
            euid: 1000,
            gid: 1000,
            egid: 1000,
            children: Vec::new(),
            clear_child_tid: 0,
            rusage: Rusage::default(),
            alarm_deadline: None,
            futex_woken: false,
            exit_code: None,
            sig_hint: HintFlag::new(),
        }
    }

    /// True when the task can be scheduled.
    pub fn runnable(&self) -> bool {
        self.state == TaskState::Running
    }

    /// True when the task has exited (zombie or dead).
    pub fn exited(&self) -> bool {
        matches!(self.state, TaskState::Zombie(_) | TaskState::Dead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_task_shape() {
        let t = Task::init(0);
        assert_eq!(t.tid, 1);
        assert_eq!(t.tgid, 1);
        assert_eq!(t.sid, 1);
        assert!(t.runnable());
        assert!(!t.exited());
    }

    #[test]
    fn zombie_is_exited_not_runnable() {
        let mut t = Task::init(0);
        t.state = TaskState::Zombie(0);
        assert!(t.exited());
        assert!(!t.runnable());
    }
}
