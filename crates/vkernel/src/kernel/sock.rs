//! Socket syscalls and readiness (`poll`).

use std::sync::{Arc, Mutex};

use wali_abi::flags::{
    MSG_DONTWAIT, MSG_PEEK, O_NONBLOCK, POLLERR, POLLHUP, POLLIN, POLLOUT, SHUT_RD, SHUT_RDWR,
    SHUT_WR, SOCK_CLOEXEC, SOCK_DGRAM, SOCK_NONBLOCK, SOCK_STREAM,
};
use wali_abi::layout::WaliSockaddr;
use wali_abi::signals::Signal;
use wali_abi::Errno;

use crate::fd::{FileKind, FileRef, OpenFile};
use crate::socket::{addr_key, SockState, Socket};
use crate::sync::MutexExt;
use crate::vfs::DevKind;
use crate::vfs::InodeKind;
use crate::wait::Channel;
use crate::{block, SysResult, Tid};

use super::Kernel;

impl Kernel {
    fn sock_fd(&mut self, tid: Tid, sock_id: usize, flags: i32) -> SysResult<i32> {
        let status = if flags & SOCK_NONBLOCK != 0 {
            O_NONBLOCK
        } else {
            0
        };
        let file: FileRef = Arc::new(Mutex::new(OpenFile::new(FileKind::Socket(sock_id), status)));
        let task = self.task(tid)?;
        let fd = task
            .fdtable
            .lock_ok()
            .alloc(file, flags & SOCK_CLOEXEC != 0)?;
        Ok(fd)
    }

    fn sock_of_fd(&self, tid: Tid, fd: i32) -> Result<usize, Errno> {
        let task = self.task(tid)?;
        let table = task.fdtable.lock_ok();
        let kind = table.get(fd)?.file.lock_ok().kind.clone();
        match kind {
            FileKind::Socket(id) => Ok(id),
            _ => Err(Errno::Enotsock),
        }
    }

    fn fd_nonblock(&self, tid: Tid, fd: i32) -> bool {
        self.task(tid)
            .ok()
            .and_then(|t| {
                let table = t.fdtable.lock_ok();
                table
                    .get(fd)
                    .ok()
                    .map(|e| e.file.lock_ok().flags & O_NONBLOCK != 0)
            })
            .unwrap_or(false)
    }

    /// `socket`.
    pub fn sys_socket(&mut self, tid: Tid, domain: i32, ty: i32, _proto: i32) -> SysResult<i32> {
        use wali_abi::flags::{AF_INET, AF_UNIX};
        if domain != AF_UNIX && domain != AF_INET {
            return Err(Errno::Eafnosupport.into());
        }
        let base_ty = ty & 0xf;
        if base_ty != SOCK_STREAM && base_ty != SOCK_DGRAM {
            return Err(Errno::Eprotonosupport.into());
        }
        let mut sock = Socket::new(domain, base_ty);
        sock.nonblock = ty & SOCK_NONBLOCK != 0;
        let id = self.alloc_socket(sock);
        self.sock_fd(tid, id, ty)
    }

    /// `bind`.
    pub fn sys_bind(&mut self, tid: Tid, fd: i32, addr: WaliSockaddr) -> SysResult {
        let id = self.sock_of_fd(tid, fd)?;
        let addr = match addr {
            WaliSockaddr::Inet { addr: ip, port: 0 } => {
                // Ephemeral port assignment.
                let mut port = 49152u16;
                while self
                    .addr_registry
                    .contains_key(&addr_key(&WaliSockaddr::Inet { addr: ip, port }))
                {
                    port = port.checked_add(1).ok_or(Errno::Eaddrinuse)?;
                }
                WaliSockaddr::Inet { addr: ip, port }
            }
            other => other,
        };
        let key = addr_key(&addr);
        if self.addr_registry.contains_key(&key) {
            return Err(Errno::Eaddrinuse.into());
        }
        self.with_sock(id, |sock| {
            if sock.local.is_some() {
                return Err(Errno::Einval);
            }
            sock.local = Some(addr.clone());
            sock.state = SockState::Bound;
            Ok(())
        })??;
        self.addr_registry.insert(key, id);
        Ok(0)
    }

    /// `listen`.
    pub fn sys_listen(&mut self, tid: Tid, fd: i32, backlog: i32) -> SysResult {
        let id = self.sock_of_fd(tid, fd)?;
        self.with_sock(id, |sock| {
            if sock.ty != SOCK_STREAM {
                return Err(Errno::Eopnotsupp);
            }
            match sock.state {
                SockState::Bound | SockState::Listening { .. } => {
                    sock.state = SockState::Listening {
                        backlog: backlog.max(1) as usize,
                        pending: Default::default(),
                    };
                    Ok(())
                }
                _ => Err(Errno::Einval),
            }
        })??;
        Ok(0)
    }

    /// `connect`.
    pub fn sys_connect(&mut self, tid: Tid, fd: i32, addr: WaliSockaddr) -> SysResult {
        let id = self.sock_of_fd(tid, fd)?;
        let (ty, state_ok) = self.with_sock(id, |s| {
            (
                s.ty,
                matches!(s.state, SockState::Unbound | SockState::Bound),
            )
        })?;
        if ty == SOCK_DGRAM {
            // Datagram connect just sets the default peer address.
            self.with_sock(id, |s| s.remote = Some(addr))?;
            return Ok(0);
        }
        if !state_ok {
            return Err(Errno::Eisconn.into());
        }
        let listener_id = *self
            .addr_registry
            .get(&addr_key(&addr))
            .ok_or(Errno::Econnrefused)?;
        // Create the server-side socket of the pair. The per-socket
        // locks are taken strictly one at a time (equal-rank locks must
        // never nest).
        let (domain, srv_ty) = self.with_sock(listener_id, |l| match &l.state {
            SockState::Listening { backlog, pending } if pending.len() >= *backlog => {
                Err(Errno::Econnrefused)
            }
            SockState::Listening { .. } => Ok((l.domain, l.ty)),
            _ => Err(Errno::Econnrefused),
        })??;
        let mut server_side = Socket::new(domain, srv_ty);
        server_side.state = SockState::Connected { peer: id };
        server_side.local = Some(addr.clone());
        let server_id = self.alloc_socket(server_side);

        let client_local = self.with_sock(id, |client| {
            client.state = SockState::Connected { peer: server_id };
            client.remote = Some(addr);
            client.local.clone()
        })?;
        self.with_sock(server_id, |server| server.remote = client_local)?;
        self.with_sock(listener_id, |l| match &mut l.state {
            SockState::Listening { pending, .. } => pending.push_back(server_id),
            _ => unreachable!("checked above"),
        })?;
        // A connection is pending: wake blocked `accept`s and pollers
        // (post after every lock is dropped). Establishing the pair is
        // also both ends' writability transition (POLLOUT = space in
        // the peer's receive buffer, which just came into existence) —
        // the ready-ring router needs that edge to queue POLLOUT-only
        // registrations made before the connect.
        self.waits.post(Channel::SockReadable(listener_id));
        self.waits.post(Channel::SockSpace(id));
        self.waits.post(Channel::SockSpace(server_id));
        Ok(0)
    }

    /// `accept4`: returns the new connection fd.
    pub fn sys_accept(&mut self, tid: Tid, fd: i32, flags: i32) -> SysResult<i32> {
        let id = self.sock_of_fd(tid, fd)?;
        let nonblock = self.fd_nonblock(tid, fd) || self.with_sock(id, |s| s.nonblock)?;
        let has_sig = self.has_pending_signal(tid);
        let conn = self.with_sock(id, |sock| match &mut sock.state {
            SockState::Listening { pending, .. } => {
                let c = pending.pop_front();
                if c.is_none() && !nonblock && !has_sig {
                    // Subscribe under the listener's lock: a connect
                    // landing after this posts only after releasing it.
                    self.waits.subscribe(tid, Channel::SockReadable(id));
                    self.waits.subscribe(tid, Channel::Signal(tid));
                }
                Ok(c)
            }
            _ => Err(Errno::Einval),
        })??;
        match conn {
            Some(conn_id) => self.sock_fd(tid, conn_id, flags),
            None if nonblock => Err(Errno::Eagain.into()),
            None if has_sig => Err(Errno::Eintr.into()),
            None => Err(block()),
        }
    }

    /// Stream/dgram send used by `write`, `send` and `sendto`.
    pub fn sock_send(
        &mut self,
        tid: Tid,
        id: usize,
        data: &[u8],
        msg_flags: i32,
    ) -> SysResult<usize> {
        let (ty, state, shut_wr, sock_nonblock) =
            self.with_sock(id, |s| (s.ty, s.state.clone(), s.shut_wr, s.nonblock))?;
        let nonblock = msg_flags & MSG_DONTWAIT != 0 || sock_nonblock;
        if shut_wr {
            return self.epipe(tid);
        }
        match (ty, state) {
            (SOCK_STREAM, SockState::Connected { peer }) => {
                // One acquisition of the peer's lock covers the state
                // check, the copy into its receive buffer and — when the
                // buffer is full — the wakeup subscription (a reader that
                // drains afterwards posts only after unlocking).
                enum Step {
                    Sent(usize),
                    Gone,
                    Full,
                }
                let step = self
                    .with_sock(peer, |p| {
                        if !matches!(p.state, SockState::Connected { .. }) || p.shut_rd {
                            return Step::Gone;
                        }
                        let space = p.recv_space();
                        if space == 0 {
                            if !nonblock {
                                // Park until the peer drains its buffer.
                                self.waits.subscribe(tid, Channel::SockSpace(peer));
                                self.waits.subscribe(tid, Channel::Signal(tid));
                            }
                            return Step::Full;
                        }
                        let n = data.len().min(space);
                        p.recv.extend(&data[..n]);
                        Step::Sent(n)
                    })
                    .unwrap_or(Step::Gone);
                match step {
                    Step::Sent(n) => {
                        // Data arrived at the peer: wake its readers and
                        // pollers (post after dropping the peer's lock).
                        self.waits.post(Channel::SockReadable(peer));
                        Ok(n)
                    }
                    Step::Gone => self.epipe(tid),
                    Step::Full if nonblock => Err(Errno::Eagain.into()),
                    Step::Full => Err(block()),
                }
            }
            (SOCK_STREAM, SockState::Closed) => self.epipe(tid),
            (SOCK_STREAM, _) => Err(Errno::Enotconn.into()),
            (SOCK_DGRAM, _) => {
                let dest = self
                    .with_sock(id, |s| s.remote.clone())?
                    .ok_or(Errno::Edestaddrreq)?;
                self.dgram_send_to(id, &dest, data)
            }
            _ => Err(Errno::Einval.into()),
        }
    }

    fn epipe(&mut self, tid: Tid) -> SysResult<usize> {
        let tgid = self.task(tid)?.tgid;
        let _ = self.send_signal_to_process(tgid, Signal::Sigpipe.number());
        Err(Errno::Epipe.into())
    }

    fn dgram_send_to(
        &mut self,
        from_id: usize,
        dest: &WaliSockaddr,
        data: &[u8],
    ) -> SysResult<usize> {
        let target = *self
            .addr_registry
            .get(&addr_key(dest))
            .ok_or(Errno::Econnrefused)?;
        let src = self
            .with_sock(from_id, |s| s.local.clone())?
            .unwrap_or(WaliSockaddr::Inet {
                addr: [127, 0, 0, 1],
                port: 0,
            });
        self.with_sock(target, |t| {
            if t.dgrams.len() >= 256 {
                return Err(Errno::Enobufs);
            }
            t.dgrams.push_back((src, data.to_vec()));
            Ok(())
        })??;
        // A datagram arrived: wake the target's readers and pollers.
        self.waits.post(Channel::SockReadable(target));
        Ok(data.len())
    }

    /// `sendto`.
    pub fn sys_sendto(
        &mut self,
        tid: Tid,
        fd: i32,
        data: &[u8],
        msg_flags: i32,
        dest: Option<WaliSockaddr>,
    ) -> SysResult<usize> {
        let id = self.sock_of_fd(tid, fd)?;
        match dest {
            Some(addr) if self.with_sock(id, |s| s.ty)? == SOCK_DGRAM => {
                self.dgram_send_to(id, &addr, data)
            }
            _ => self.sock_send(tid, id, data, msg_flags),
        }
    }

    /// Stream/dgram receive used by `read`, `recv` and `recvfrom`.
    pub fn sock_recv(
        &mut self,
        tid: Tid,
        id: usize,
        out: &mut [u8],
        msg_flags: i32,
    ) -> SysResult<usize> {
        let (ty, state, sock_nonblock) =
            self.with_sock(id, |s| (s.ty, s.state.clone(), s.nonblock))?;
        let nonblock = msg_flags & MSG_DONTWAIT != 0 || sock_nonblock;
        let peek = msg_flags & MSG_PEEK != 0;
        // Outcome of the single pass under our own socket lock; wakeup
        // posts happen after the lock is dropped.
        enum Step {
            Data(usize, bool),
            Eof,
            NotConn,
            Again,
            Intr,
            Park,
        }
        match ty {
            SOCK_STREAM => {
                let has_sig = self.has_pending_signal(tid);
                // Peer liveness is snapshotted before taking our own lock
                // (the two per-socket locks must never nest). Any data the
                // peer pushes concurrently is observed by the drain below
                // or by the post it issues after unlocking.
                let peer_live = match state {
                    SockState::Connected { peer } => matches!(
                        self.with_sock(peer, |p| p.state.clone()),
                        Ok(SockState::Connected { .. })
                    ),
                    _ => false,
                };
                let step = self.with_sock(id, |s| {
                    if !s.recv.is_empty() {
                        let n = out.len().min(s.recv.len());
                        if peek {
                            for (i, b) in s.recv.iter().take(n).enumerate() {
                                out[i] = *b;
                            }
                        } else {
                            for b in out.iter_mut().take(n) {
                                *b = s.recv.pop_front().expect("non-empty");
                            }
                        }
                        return Step::Data(n, !peek);
                    }
                    if s.shut_rd || matches!(s.state, SockState::Closed) {
                        return Step::Eof;
                    }
                    if !matches!(s.state, SockState::Connected { .. }) {
                        return Step::NotConn;
                    }
                    // Peer gone means EOF too.
                    if !peer_live {
                        return Step::Eof;
                    }
                    if nonblock {
                        return Step::Again;
                    }
                    if has_sig {
                        return Step::Intr;
                    }
                    // Subscribe under our lock: a sender filling the
                    // buffer after this posts only after unlocking.
                    self.waits.subscribe(tid, Channel::SockReadable(id));
                    self.waits.subscribe(tid, Channel::Signal(tid));
                    Step::Park
                })?;
                match step {
                    Step::Data(n, drained) => {
                        if drained {
                            // Space opened in our receive buffer: wake the
                            // peer's blocked senders and POLLOUT pollers.
                            self.waits.post(Channel::SockSpace(id));
                        }
                        Ok(n)
                    }
                    Step::Eof => Ok(0),
                    Step::NotConn => Err(Errno::Enotconn.into()),
                    Step::Again => Err(Errno::Eagain.into()),
                    Step::Intr => Err(Errno::Eintr.into()),
                    Step::Park => Err(block()),
                }
            }
            SOCK_DGRAM => {
                let step = self.with_sock(id, |s| {
                    match if peek {
                        s.dgrams.front().cloned()
                    } else {
                        s.dgrams.pop_front()
                    } {
                        Some((_, data)) => {
                            let n = out.len().min(data.len());
                            out[..n].copy_from_slice(&data[..n]);
                            Step::Data(n, false)
                        }
                        None if s.shut_rd => Step::Eof,
                        None if nonblock => Step::Again,
                        None => {
                            self.waits.subscribe(tid, Channel::SockReadable(id));
                            self.waits.subscribe(tid, Channel::Signal(tid));
                            Step::Park
                        }
                    }
                })?;
                match step {
                    Step::Data(n, _) => Ok(n),
                    Step::Eof => Ok(0),
                    Step::Again => Err(Errno::Eagain.into()),
                    Step::Park => Err(block()),
                    Step::NotConn | Step::Intr => unreachable!("dgram path"),
                }
            }
            _ => Err(Errno::Einval.into()),
        }
    }

    /// `recvfrom`: returns `(n, source_address)`.
    pub fn sys_recvfrom(
        &mut self,
        tid: Tid,
        fd: i32,
        out: &mut [u8],
        msg_flags: i32,
    ) -> SysResult<(usize, Option<WaliSockaddr>)> {
        let id = self.sock_of_fd(tid, fd)?;
        let (ty, sock_nonblock) = self.with_sock(id, |s| (s.ty, s.nonblock))?;
        if ty == SOCK_DGRAM {
            let nonblock = msg_flags & MSG_DONTWAIT != 0 || sock_nonblock;
            let got = self.with_sock(id, |s| match s.dgrams.pop_front() {
                Some((src, data)) => {
                    let n = out.len().min(data.len());
                    out[..n].copy_from_slice(&data[..n]);
                    Some((n, Some(src)))
                }
                None => {
                    if !nonblock {
                        self.waits.subscribe(tid, Channel::SockReadable(id));
                        self.waits.subscribe(tid, Channel::Signal(tid));
                    }
                    None
                }
            })?;
            return match got {
                Some(v) => Ok(v),
                None if nonblock => Err(Errno::Eagain.into()),
                None => Err(block()),
            };
        }
        let n = self.sock_recv(tid, id, out, msg_flags)?;
        let src = self.with_sock(id, |s| s.remote.clone())?;
        Ok((n, src))
    }

    /// `shutdown`.
    pub fn sys_shutdown(&mut self, tid: Tid, fd: i32, how: i32) -> SysResult {
        let id = self.sock_of_fd(tid, fd)?;
        self.with_sock(id, |s| {
            match how {
                SHUT_RD => s.shut_rd = true,
                SHUT_WR => s.shut_wr = true,
                SHUT_RDWR => {
                    s.shut_rd = true;
                    s.shut_wr = true;
                }
                _ => return Err(Errno::Einval),
            }
            Ok(())
        })??;
        // Readiness changed for both ends: blocked readers see EOF,
        // blocked senders EPIPE.
        self.post_socket_hangup(id);
        Ok(0)
    }

    /// Posts every channel a hangup on socket `id` can unblock: its own
    /// readers/senders and, when connected, the peer's.
    fn post_socket_hangup(&mut self, id: usize) {
        let peer = match self.with_sock(id, |s| s.state.clone()) {
            Ok(SockState::Connected { peer }) => Some(peer),
            _ => None,
        };
        self.waits.post(Channel::SockReadable(id));
        self.waits.post(Channel::SockSpace(id));
        if let Some(p) = peer {
            self.waits.post(Channel::SockReadable(p));
            self.waits.post(Channel::SockSpace(p));
        }
    }

    /// `socketpair`.
    pub fn sys_socketpair(&mut self, tid: Tid, domain: i32, ty: i32) -> SysResult<(i32, i32)> {
        let base_ty = ty & 0xf;
        let a = self.alloc_socket(Socket::new(domain, base_ty));
        let b = self.alloc_socket(Socket::new(domain, base_ty));
        self.with_sock(a, |s| s.state = SockState::Connected { peer: b })?;
        self.with_sock(b, |s| s.state = SockState::Connected { peer: a })?;
        let fa = self.sock_fd(tid, a, ty)?;
        let fb = self.sock_fd(tid, b, ty)?;
        Ok((fa, fb))
    }

    /// `setsockopt`.
    pub fn sys_setsockopt(
        &mut self,
        tid: Tid,
        fd: i32,
        level: i32,
        name: i32,
        value: i32,
    ) -> SysResult {
        let id = self.sock_of_fd(tid, fd)?;
        self.with_sock(id, |s| s.set_option(level, name, value))?;
        Ok(0)
    }

    /// `getsockopt`.
    pub fn sys_getsockopt(&mut self, tid: Tid, fd: i32, level: i32, name: i32) -> SysResult<i32> {
        let id = self.sock_of_fd(tid, fd)?;
        Ok(self.with_sock(id, |s| s.get_option(level, name))?)
    }

    /// `getsockname`.
    pub fn sys_getsockname(&mut self, tid: Tid, fd: i32) -> SysResult<WaliSockaddr> {
        let id = self.sock_of_fd(tid, fd)?;
        self.with_sock(id, |s| s.local.clone())?
            .ok_or(Errno::Einval.into())
    }

    /// `getpeername`.
    pub fn sys_getpeername(&mut self, tid: Tid, fd: i32) -> SysResult<WaliSockaddr> {
        let id = self.sock_of_fd(tid, fd)?;
        self.with_sock(id, |s| s.remote.clone())?
            .ok_or(Errno::Enotconn.into())
    }

    /// Tears a socket down when its last descriptor closes.
    pub(crate) fn release_socket(&mut self, id: usize) {
        // Post the hangup while the peer link is still visible.
        self.post_socket_hangup(id);
        // Unregister the bound address only if this socket owns the
        // registration (accepted connections share the listener's local
        // address but must not tear its registration down).
        if let Ok(Some(local)) = self.with_sock(id, |s| s.local.clone()) {
            let key = addr_key(&local);
            if self.addr_registry.get(&key) == Some(&id) {
                self.addr_registry.remove(&key);
            }
        }
        let peer = match self.with_sock(id, |s| s.state.clone()) {
            Ok(SockState::Connected { peer }) => Some(peer),
            _ => None,
        };
        if let Some(p) = peer {
            let _ = self.with_sock(p, |ps| ps.state = SockState::Closed);
        }
        // Drop pending unaccepted connections of a listener; free the
        // slab slot only after the last per-socket guard is dropped.
        let orphans = self
            .with_sock(id, |s| {
                let orphans: Vec<usize> = match &mut s.state {
                    SockState::Listening { pending, .. } => pending.drain(..).collect(),
                    _ => Vec::new(),
                };
                s.state = SockState::Closed;
                orphans
            })
            .unwrap_or_default();
        for o in orphans {
            let _ = self.with_sock(o, |os| os.state = SockState::Closed);
        }
        self.sockets.free(id);
    }

    // --- poll ---------------------------------------------------------------

    /// Readiness check for `poll`: computes `revents` for each `(fd,
    /// events)` pair. The embedder handles blocking and timeouts.
    pub fn poll_check(&mut self, tid: Tid, fds: &[(i32, i16)]) -> SysResult<Vec<i16>> {
        let mut out = Vec::with_capacity(fds.len());
        for &(fd, events) in fds {
            let revents = if fd < 0 {
                0
            } else {
                self.poll_one(tid, fd, events)?
            };
            out.push(revents);
        }
        Ok(out)
    }

    pub(crate) fn poll_one(&mut self, tid: Tid, fd: i32, events: i16) -> SysResult<i16> {
        let task = self.task(tid)?;
        let entry = {
            let table = task.fdtable.lock_ok();
            match table.get(fd) {
                Ok(e) => e.file.clone(),
                Err(_) => return Ok(wali_abi::flags::POLLNVAL),
            }
        };
        self.poll_desc(tid, &entry, events)
    }

    /// Readiness of one open file description (shared by `poll_one` and
    /// the description-keyed epoll scan, which must keep reporting for a
    /// registration whose original fd number was closed while a duplicate
    /// keeps the description alive).
    pub(crate) fn poll_desc(&mut self, tid: Tid, entry: &FileRef, events: i16) -> SysResult<i16> {
        let kind = entry.lock_ok().kind.clone();
        let mut revents = 0i16;
        match kind {
            FileKind::Regular(_) | FileKind::Dir(_) | FileKind::ProcSnapshot(_) => {
                // Always ready.
                revents |= (POLLIN | POLLOUT) & events;
            }
            FileKind::PipeRead(id) => {
                let (readable, writers) = self.with_pipe(id, |p| (p.readable(), p.writers))?;
                if readable {
                    revents |= POLLIN & events;
                }
                if writers == 0 {
                    revents |= POLLHUP;
                }
            }
            FileKind::PipeWrite(id) => {
                let (writable, readers) = self.with_pipe(id, |p| (p.writable(), p.readers))?;
                if writable {
                    revents |= POLLOUT & events;
                }
                if readers == 0 {
                    revents |= POLLERR;
                }
            }
            FileKind::Socket(id) => {
                let (readable, state) = self.with_sock(id, |s| (s.readable(), s.state.clone()))?;
                if readable {
                    revents |= POLLIN & events;
                }
                match state {
                    SockState::Connected { peer } => {
                        // Peer looked at with its own (sequential) lock.
                        let peer_view = self
                            .with_sock(peer, |p| {
                                (
                                    matches!(p.state, SockState::Connected { .. }),
                                    p.recv_space(),
                                )
                            })
                            .ok();
                        match peer_view {
                            Some((true, space)) => {
                                if space > 0 {
                                    revents |= POLLOUT & events;
                                }
                            }
                            _ => revents |= POLLIN & events | POLLHUP,
                        }
                    }
                    SockState::Closed => revents |= POLLHUP,
                    _ => {}
                }
            }
            FileKind::CharDev(inode) => {
                let dev = match &self.vfs.read().get(inode)?.kind {
                    InodeKind::CharDev(d) => d.clone(),
                    _ => return Ok(0),
                };
                match dev {
                    // The console never produces input; always writable.
                    DevKind::Tty => revents |= POLLOUT & events,
                    _ => revents |= (POLLIN | POLLOUT) & events,
                }
            }
            FileKind::EventFd => {
                if entry.lock_ok().counter > 0 {
                    revents |= POLLIN & events;
                }
                revents |= POLLOUT & events;
            }
            FileKind::Epoll(id) => {
                // An epoll fd is readable when its interest set has at
                // least one ready entry (epoll-inside-poll composition).
                if !self.sys_epoll_ready(tid, id, 1)?.is_empty() {
                    revents |= POLLIN & events;
                }
            }
        }
        Ok(revents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SysError;
    use wali_abi::flags::{AF_INET, AF_UNIX};

    fn kp() -> (Kernel, Tid) {
        let mut k = Kernel::new();
        let tid = k.spawn_process();
        (k, tid)
    }

    fn loopback(port: u16) -> WaliSockaddr {
        WaliSockaddr::Inet {
            addr: [127, 0, 0, 1],
            port,
        }
    }

    #[test]
    fn stream_connect_accept_echo() {
        let (mut k, tid) = kp();
        let srv = k.sys_socket(tid, AF_INET, SOCK_STREAM, 0).unwrap();
        k.sys_bind(tid, srv, loopback(8080)).unwrap();
        k.sys_listen(tid, srv, 8).unwrap();

        let cli = k.sys_socket(tid, AF_INET, SOCK_STREAM, 0).unwrap();
        k.sys_connect(tid, cli, loopback(8080)).unwrap();
        let conn = k.sys_accept(tid, srv, 0).unwrap();

        let id = k.sock_of_fd(tid, cli).unwrap();
        assert_eq!(k.sock_send(tid, id, b"ping", 0).unwrap(), 4);
        let mut buf = [0u8; 8];
        assert_eq!(k.sys_read(tid, conn, &mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");

        // Echo back.
        assert_eq!(k.sys_write(tid, conn, b"pong").unwrap(), 4);
        assert_eq!(k.sys_read(tid, cli, &mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"pong");
    }

    #[test]
    fn connect_refused_without_listener() {
        let (mut k, tid) = kp();
        let cli = k.sys_socket(tid, AF_INET, SOCK_STREAM, 0).unwrap();
        assert_eq!(
            k.sys_connect(tid, cli, loopback(9999)),
            Err(SysError::Err(Errno::Econnrefused))
        );
    }

    #[test]
    fn bind_conflicts_are_eaddrinuse() {
        let (mut k, tid) = kp();
        let a = k.sys_socket(tid, AF_INET, SOCK_STREAM, 0).unwrap();
        let b = k.sys_socket(tid, AF_INET, SOCK_STREAM, 0).unwrap();
        k.sys_bind(tid, a, loopback(80)).unwrap();
        assert_eq!(
            k.sys_bind(tid, b, loopback(80)),
            Err(SysError::Err(Errno::Eaddrinuse))
        );
        // Ephemeral assignment works.
        k.sys_bind(tid, b, loopback(0)).unwrap();
        let local = k.sys_getsockname(tid, b).unwrap();
        assert!(matches!(local, WaliSockaddr::Inet { port, .. } if port >= 49152));
    }

    #[test]
    fn accept_blocks_until_connection() {
        let (mut k, tid) = kp();
        let srv = k.sys_socket(tid, AF_INET, SOCK_STREAM, 0).unwrap();
        k.sys_bind(tid, srv, loopback(7000)).unwrap();
        k.sys_listen(tid, srv, 1).unwrap();
        assert!(matches!(k.sys_accept(tid, srv, 0), Err(SysError::Block(_))));
        let cli = k.sys_socket(tid, AF_INET, SOCK_STREAM, 0).unwrap();
        k.sys_connect(tid, cli, loopback(7000)).unwrap();
        assert!(k.sys_accept(tid, srv, 0).is_ok());
    }

    #[test]
    fn close_propagates_eof_and_epipe() {
        let (mut k, tid) = kp();
        let (a, b) = k.sys_socketpair(tid, AF_UNIX, SOCK_STREAM).unwrap();
        k.sys_write(tid, a, b"bye").unwrap();
        k.sys_close(tid, a).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(
            k.sys_read(tid, b, &mut buf).unwrap(),
            3,
            "drain buffered data"
        );
        assert_eq!(k.sys_read(tid, b, &mut buf).unwrap(), 0, "then EOF");
        assert_eq!(k.sys_write(tid, b, b"x"), Err(SysError::Err(Errno::Epipe)));
    }

    #[test]
    fn dgram_sendto_recvfrom() {
        let (mut k, tid) = kp();
        let rx = k.sys_socket(tid, AF_INET, SOCK_DGRAM, 0).unwrap();
        k.sys_bind(tid, rx, loopback(5353)).unwrap();
        let tx = k.sys_socket(tid, AF_INET, SOCK_DGRAM, 0).unwrap();
        k.sys_bind(tid, tx, loopback(5454)).unwrap();
        assert_eq!(
            k.sys_sendto(tid, tx, b"dgram", 0, Some(loopback(5353)))
                .unwrap(),
            5
        );
        let mut buf = [0u8; 16];
        let (n, src) = k.sys_recvfrom(tid, rx, &mut buf, 0).unwrap();
        assert_eq!(&buf[..n], b"dgram");
        assert_eq!(src, Some(loopback(5454)));
    }

    #[test]
    fn unix_sockets_use_path_namespace() {
        let (mut k, tid) = kp();
        let srv = k.sys_socket(tid, AF_UNIX, SOCK_STREAM, 0).unwrap();
        let addr = WaliSockaddr::Unix {
            path: "/tmp/test.sock".into(),
        };
        k.sys_bind(tid, srv, addr.clone()).unwrap();
        k.sys_listen(tid, srv, 4).unwrap();
        let cli = k.sys_socket(tid, AF_UNIX, SOCK_STREAM, 0).unwrap();
        k.sys_connect(tid, cli, addr).unwrap();
        assert!(k.sys_accept(tid, srv, 0).is_ok());
    }

    #[test]
    fn sockopts_and_peeking() {
        use wali_abi::flags::{SOL_SOCKET, SO_REUSEADDR};
        let (mut k, tid) = kp();
        let (a, b) = k.sys_socketpair(tid, AF_UNIX, SOCK_STREAM).unwrap();
        k.sys_setsockopt(tid, a, SOL_SOCKET, SO_REUSEADDR, 1)
            .unwrap();
        assert_eq!(
            k.sys_getsockopt(tid, a, SOL_SOCKET, SO_REUSEADDR).unwrap(),
            1
        );
        k.sys_write(tid, a, b"peekme").unwrap();
        let id = k.sock_of_fd(tid, b).unwrap();
        let mut buf = [0u8; 6];
        assert_eq!(k.sock_recv(tid, id, &mut buf, MSG_PEEK).unwrap(), 6);
        assert_eq!(
            k.sock_recv(tid, id, &mut buf, 0).unwrap(),
            6,
            "peek did not consume"
        );
    }

    #[test]
    fn shutdown_wr_gives_epipe_rd_gives_eof() {
        let (mut k, tid) = kp();
        let (a, b) = k.sys_socketpair(tid, AF_UNIX, SOCK_STREAM).unwrap();
        k.sys_shutdown(tid, a, SHUT_WR).unwrap();
        assert_eq!(k.sys_write(tid, a, b"x"), Err(SysError::Err(Errno::Epipe)));
        k.sys_shutdown(tid, b, SHUT_RD).unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(k.sys_read(tid, b, &mut buf).unwrap(), 0);
    }

    #[test]
    fn poll_reports_readiness() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let revents = k.poll_check(tid, &[(r, POLLIN), (w, POLLOUT)]).unwrap();
        assert_eq!(revents[0], 0, "empty pipe not readable");
        assert_eq!(revents[1], POLLOUT);
        k.sys_write(tid, w, b"data").unwrap();
        let revents = k.poll_check(tid, &[(r, POLLIN)]).unwrap();
        assert_eq!(revents[0], POLLIN);
        // Bad fd reports POLLNVAL.
        let revents = k.poll_check(tid, &[(99, POLLIN)]).unwrap();
        assert_eq!(revents[0], wali_abi::flags::POLLNVAL);
    }

    #[test]
    fn poll_detects_hangup() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        k.sys_close(tid, w).unwrap();
        let revents = k.poll_check(tid, &[(r, POLLIN)]).unwrap();
        assert_ne!(revents[0] & POLLHUP, 0);
    }

    #[test]
    fn listener_close_resets_pending() {
        let (mut k, tid) = kp();
        let srv = k.sys_socket(tid, AF_INET, SOCK_STREAM, 0).unwrap();
        k.sys_bind(tid, srv, loopback(6000)).unwrap();
        k.sys_listen(tid, srv, 4).unwrap();
        let cli = k.sys_socket(tid, AF_INET, SOCK_STREAM, 0).unwrap();
        k.sys_connect(tid, cli, loopback(6000)).unwrap();
        k.sys_close(tid, srv).unwrap();
        // Port is released.
        let srv2 = k.sys_socket(tid, AF_INET, SOCK_STREAM, 0).unwrap();
        k.sys_bind(tid, srv2, loopback(6000)).unwrap();
    }
}
