//! `epoll`: scalable readiness notification.
//!
//! A thin, deterministic model of the Linux epoll family, layered over the
//! same readiness logic as `poll` (`Kernel::poll_one`) and the same
//! waitqueues as every other blocking call:
//!
//! * the interest list is keyed by descriptor number but each
//!   registration is pinned to its **open file description** identity
//!   (`EpollReg::file`) — a closed fd whose slot number is reused by a
//!   new file does not inherit the old registration, a registration
//!   stays reportable while any `dup`/fork duplicate keeps its
//!   description open, and fully-closed registrations are swept on the
//!   next scan (Linux's description-keyed semantics, man epoll Q6);
//! * delivery is level-triggered by default; `EPOLLET` reports on a
//!   not-ready→ready edge or when a new transition (waitqueue post)
//!   arrived since the last report — Linux's re-arm-on-new-event
//!   semantics, tracked through per-channel event generations — and
//!   `EPOLLONESHOT` disarms a registration after one report until
//!   `EPOLL_CTL_MOD` re-arms it;
//! * a blocked `epoll_wait` parks on the union of the interest list's wait
//!   channels (see [`Kernel::wait_on_fds`]) and is woken by the first
//!   transition on any of them.

use std::sync::{Arc, Mutex, Weak};

use wali_abi::flags::{
    EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLONESHOT, EPOLLOUT, EPOLL_CLOEXEC, EPOLL_CTL_ADD,
    EPOLL_CTL_DEL, EPOLL_CTL_MOD, POLLERR, POLLHUP, POLLIN, POLLOUT,
};
use wali_abi::Errno;

use crate::fd::{FileKind, FileRef, OpenFile};
use crate::sync::MutexExt;
use crate::{SysResult, Tid};

use super::Kernel;

/// One interest-list registration. Like Linux, the registration key is
/// the `(fd number, open file description)` *pair*: the `file` identity
/// pins it to the description that was registered, so a closed-and-reused
/// fd number neither inherits nor displaces a registration whose
/// description is still alive through a duplicate.
#[derive(Clone, Debug)]
pub(crate) struct EpollReg {
    pub(crate) fd: i32,
    pub(crate) events: u32,
    pub(crate) data: u64,
    pub(crate) file: Weak<Mutex<OpenFile>>,
    /// `EPOLLET` state: the readiness mask the previous scan observed.
    /// A bit reports when it rises, or when the registration's event
    /// generation moved (a new transition arrived — Linux re-notifies
    /// ET on new data even while the level stays high). Level-triggered
    /// registrations ignore this field.
    pub(crate) prev_ready: u32,
    /// `EPOLLET` state: sum of the wait-channel event generations at
    /// the previous scan.
    pub(crate) prev_gen: u64,
    /// `EPOLLONESHOT` state: cleared after one report; `EPOLL_CTL_MOD`
    /// re-arms. Disarmed registrations neither report nor contribute
    /// wait channels.
    pub(crate) armed: bool,
}

/// One epoll instance: the interest list.
#[derive(Clone, Debug, Default)]
pub struct Epoll {
    /// Registrations in insertion order (deterministic scan and report
    /// order); entries whose description is fully closed are swept on
    /// the next scan. Several entries may share an fd number when a slot
    /// was reused while a dup keeps the old description alive — exactly
    /// Linux's (fd, file) pair keying.
    pub(crate) interest: Vec<EpollReg>,
}

/// Converts an epoll interest mask to the `poll` events to probe.
fn epoll_to_poll(events: u32) -> i16 {
    let mut ev = 0i16;
    if events & EPOLLIN != 0 {
        ev |= POLLIN;
    }
    if events & EPOLLOUT != 0 {
        ev |= POLLOUT;
    }
    ev
}

/// Converts `poll` revents back to an epoll report mask, filtered by the
/// registered interest (ERR/HUP are always reported, like Linux).
fn poll_to_epoll(revents: i16, interest: u32) -> u32 {
    let mut ev = 0u32;
    if revents & POLLIN != 0 && interest & EPOLLIN != 0 {
        ev |= EPOLLIN;
    }
    if revents & POLLOUT != 0 && interest & EPOLLOUT != 0 {
        ev |= EPOLLOUT;
    }
    if revents & POLLERR != 0 {
        ev |= EPOLLERR;
    }
    if revents & POLLHUP != 0 {
        ev |= EPOLLHUP;
    }
    ev
}

impl Kernel {
    fn alloc_epoll(&mut self) -> usize {
        self.epolls.insert(Epoll::default())
    }

    /// Runs `f` under epoll instance `id`'s own lock (rank
    /// [`LockClass::Epoll`](crate::lockorder::LockClass), below the
    /// pipe/socket object rank so a scan may look at objects while the
    /// interest list is held — though the scan paths below deliberately
    /// snapshot first and never do).
    pub(crate) fn with_epoll<R>(
        &self,
        id: usize,
        f: impl FnOnce(&mut Epoll) -> R,
    ) -> Result<R, Errno> {
        let e = self.epolls.get(id).ok_or(Errno::Ebadf)?;
        let mut g = e.lock_ok();
        Ok(f(&mut g))
    }

    fn epoll_of_fd(&self, tid: Tid, epfd: i32) -> Result<usize, Errno> {
        let task = self.task(tid)?;
        let table = task.fdtable.lock_ok();
        let kind = table.get(epfd)?.file.lock_ok().kind.clone();
        match kind {
            FileKind::Epoll(id) => Ok(id),
            _ => Err(Errno::Einval),
        }
    }

    /// The live interest list of epoll instance `id` as `(description,
    /// poll-events)` pairs (readiness + waitqueue subscription helper).
    /// Registrations whose description has been fully closed are skipped.
    pub(crate) fn epoll_interest_descs(&self, id: usize) -> Vec<(FileRef, i16)> {
        self.with_epoll(id, |e| {
            e.interest
                .iter()
                .filter(|reg| reg.armed)
                .filter_map(|reg| reg.file.upgrade().map(|f| (f, epoll_to_poll(reg.events))))
                .collect()
        })
        .unwrap_or_default()
    }

    /// Frees an epoll instance when its last descriptor closes.
    pub(crate) fn release_epoll(&mut self, id: usize) {
        self.epolls.free(id);
    }

    /// `epoll_create1(flags)`: allocates an instance and its fd.
    pub fn sys_epoll_create1(&mut self, tid: Tid, flags: i32) -> SysResult<i32> {
        if flags & !EPOLL_CLOEXEC != 0 {
            return Err(Errno::Einval.into());
        }
        let id = self.alloc_epoll();
        let file: FileRef = Arc::new(Mutex::new(OpenFile::new(FileKind::Epoll(id), 0)));
        let task = self.task(tid)?;
        let fd = task
            .fdtable
            .lock_ok()
            .alloc(file, flags & EPOLL_CLOEXEC != 0)?;
        Ok(fd)
    }

    /// `epoll_ctl(epfd, op, fd, event)`.
    pub fn sys_epoll_ctl(
        &mut self,
        tid: Tid,
        epfd: i32,
        op: i32,
        fd: i32,
        events: u32,
        data: u64,
    ) -> SysResult {
        let id = self.epoll_of_fd(tid, epfd)?;
        // The target must be an open descriptor of the caller.
        let (kind, file) = {
            let task = self.task(tid)?;
            let table = task.fdtable.lock_ok();
            let entry = table.get(fd)?;
            let pair = (
                entry.file.lock_ok().kind.clone(),
                Arc::downgrade(&entry.file),
            );
            pair
        };
        if matches!(kind, FileKind::Epoll(_)) {
            // Nested epoll instances would make the wait-channel walk
            // cyclic; Linux reports closed loops the same way.
            return Err(Errno::Eloop.into());
        }
        let target = file.upgrade();
        self.with_epoll(id, |ep| {
            // The registration key is the (fd, description) pair: a stale
            // entry for the same fd number but a different (or dead)
            // description does not count as "present".
            let existing = ep.interest.iter().position(|reg| {
                reg.fd == fd
                    && reg
                        .file
                        .upgrade()
                        .zip(target.clone())
                        .map(|(a, b)| Arc::ptr_eq(&a, &b))
                        .unwrap_or(false)
            });
            match (op, existing) {
                (EPOLL_CTL_ADD, Some(_)) => return Err(Errno::Eexist),
                (EPOLL_CTL_ADD, None) => ep.interest.push(EpollReg {
                    fd,
                    events,
                    data,
                    file,
                    prev_ready: 0,
                    prev_gen: 0,
                    armed: true,
                }),
                // MOD re-arms a ONESHOT-disarmed registration and resets
                // the edge-trigger state (Linux re-arms on modify).
                (EPOLL_CTL_MOD, Some(i)) => {
                    ep.interest[i] = EpollReg {
                        fd,
                        events,
                        data,
                        file,
                        prev_ready: 0,
                        prev_gen: 0,
                        armed: true,
                    }
                }
                (EPOLL_CTL_DEL, Some(i)) => {
                    ep.interest.remove(i);
                }
                (EPOLL_CTL_MOD | EPOLL_CTL_DEL, None) => return Err(Errno::Enoent),
                _ => return Err(Errno::Einval),
            }
            Ok(())
        })??;
        // A parked epoll_wait waiter holds a snapshot of the old interest
        // list; wake it to re-scan (the added/changed fd may already be
        // ready), like Linux's interest-change wakeups.
        self.wait_post(crate::wait::Channel::EpollCtl(id));
        Ok(0)
    }

    /// Level-triggered readiness scan for `epoll_wait`: up to `max` ready
    /// `(events, data)` reports, in registration order. A registration stays live
    /// as long as *any* duplicate of its open file description exists
    /// (`dup`/fork copies keep it reportable even after the registering
    /// fd number is closed — Linux's description-keyed semantics); it is
    /// swept once the description is fully closed. Never blocks — the
    /// embedder handles timeout and parking, exactly as for `poll`.
    pub fn sys_epoll_ready(
        &mut self,
        tid: Tid,
        id: usize,
        max: usize,
    ) -> SysResult<Vec<(u32, u64)>> {
        // Snapshot the interest list so no epoll guard is held across the
        // `poll_desc` scans below (which take pipe/socket object locks).
        let interest: Vec<EpollReg> = self.with_epoll(id, |e| e.interest.clone())?;
        let mut out = Vec::new();
        let mut swept = false;
        // Deferred per-registration state updates (ET edge/generation
        // memory, ONESHOT disarm), applied after the scan: `poll_desc`
        // needs `&mut self`, so the loop runs over a snapshot. Indices
        // stay valid — the sweep below is the only mutation and it runs
        // after the updates.
        let mut updates: Vec<(usize, u32, u64, bool)> = Vec::new();
        for (i, reg) in interest.into_iter().enumerate() {
            if out.len() >= max.max(1) {
                break;
            }
            let Some(file) = reg.file.upgrade() else {
                swept = true;
                continue;
            };
            if !reg.armed {
                // ONESHOT fired and not yet re-armed by EPOLL_CTL_MOD.
                continue;
            }
            let revents = self.poll_desc(tid, &file, epoll_to_poll(reg.events))?;
            let ready = poll_to_epoll(revents, reg.events);
            let et = reg.events & EPOLLET != 0;
            let gen = if et {
                self.desc_event_gen(&file, epoll_to_poll(reg.events))
            } else {
                0
            };
            let report = if et {
                // Edge-triggered: report bits that rose since the
                // previous scan, or everything ready when a new
                // transition arrived in between (generation moved) —
                // data written between a drain and this scan must
                // re-notify, like Linux ET re-arming on new events.
                (ready & !reg.prev_ready) | if gen != reg.prev_gen { ready } else { 0 }
            } else {
                ready
            };
            let disarm = reg.events & EPOLLONESHOT != 0 && report != 0;
            if reg.prev_ready != ready || reg.prev_gen != gen || disarm {
                updates.push((i, ready, gen, disarm));
            }
            if report != 0 {
                out.push((report, reg.data));
            }
        }
        self.with_epoll(id, |ep| {
            for (i, prev_ready, prev_gen, disarm) in &updates {
                let reg = &mut ep.interest[*i];
                reg.prev_ready = *prev_ready;
                reg.prev_gen = *prev_gen;
                if *disarm {
                    reg.armed = false;
                }
            }
            if swept {
                ep.interest.retain(|reg| reg.file.strong_count() > 0);
            }
        })?;
        Ok(out)
    }

    /// Readiness scan addressed by epoll fd (the `epoll_wait` entry).
    pub fn sys_epoll_wait_ready(
        &mut self,
        tid: Tid,
        epfd: i32,
        max: usize,
    ) -> SysResult<Vec<(u32, u64)>> {
        let id = self.epoll_of_fd(tid, epfd)?;
        self.sys_epoll_ready(tid, id, max)
    }

    /// Parks `tid` on every wait channel of the instance's interest list
    /// (the blocking half of `epoll_wait`).
    pub fn epoll_subscribe(&mut self, tid: Tid, epfd: i32) -> SysResult {
        let id = self.epoll_of_fd(tid, epfd)?;
        let mut chans = Vec::new();
        for (file, events) in self.epoll_interest_descs(id) {
            self.desc_wait_channels(&file, events, &mut chans);
        }
        for ch in chans {
            self.wait_subscribe(tid, ch);
        }
        // Interest-list edits and signals end the wait too.
        self.wait_subscribe(tid, crate::wait::Channel::EpollCtl(id));
        self.wait_subscribe(tid, crate::wait::Channel::Signal(tid));
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wait::Channel;
    use crate::SysError;
    use wali_abi::flags::{AF_INET, SOCK_STREAM};
    use wali_abi::layout::WaliSockaddr;

    fn kp() -> (Kernel, Tid) {
        let mut k = Kernel::new();
        let tid = k.spawn_process();
        (k, tid)
    }

    #[test]
    fn create_ctl_wait_round_trip_on_pipes() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, r as u64)
            .unwrap();
        // Nothing ready yet.
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        // Data arrives: level-triggered readiness until drained.
        k.sys_write(tid, w, b"x").unwrap();
        let ready = k.sys_epoll_wait_ready(tid, ep, 8).unwrap();
        assert_eq!(ready, vec![(EPOLLIN, r as u64)]);
        let ready = k.sys_epoll_wait_ready(tid, ep, 8).unwrap();
        assert_eq!(ready.len(), 1, "level-triggered: still ready");
        let mut buf = [0u8; 4];
        k.sys_read(tid, r, &mut buf).unwrap();
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
    }

    #[test]
    fn ctl_errors_match_linux() {
        let (mut k, tid) = kp();
        let (r, _w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        // MOD/DEL before ADD: ENOENT.
        assert_eq!(
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_MOD, r, EPOLLIN, 0),
            Err(SysError::Err(Errno::Enoent))
        );
        assert_eq!(
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_DEL, r, 0, 0),
            Err(SysError::Err(Errno::Enoent))
        );
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 0)
            .unwrap();
        // Double ADD: EEXIST.
        assert_eq!(
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 0),
            Err(SysError::Err(Errno::Eexist))
        );
        // Bad target fd: EBADF; epoll-in-epoll: ELOOP.
        assert_eq!(
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, 99, EPOLLIN, 0),
            Err(SysError::Err(Errno::Ebadf))
        );
        let ep2 = k.sys_epoll_create1(tid, 0).unwrap();
        assert_eq!(
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, ep2, EPOLLIN, 0),
            Err(SysError::Err(Errno::Eloop))
        );
        // Not an epoll fd: EINVAL.
        assert_eq!(
            k.sys_epoll_ctl(tid, r, EPOLL_CTL_ADD, ep, EPOLLIN, 0),
            Err(SysError::Err(Errno::Einval))
        );
    }

    #[test]
    fn listener_readiness_reports_epollin_on_pending_accept() {
        let (mut k, tid) = kp();
        let srv = k.sys_socket(tid, AF_INET, SOCK_STREAM, 0).unwrap();
        let addr = WaliSockaddr::Inet {
            addr: [127, 0, 0, 1],
            port: 9090,
        };
        k.sys_bind(tid, srv, addr.clone()).unwrap();
        k.sys_listen(tid, srv, 8).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, srv, EPOLLIN, 7)
            .unwrap();
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        let cli = k.sys_socket(tid, AF_INET, SOCK_STREAM, 0).unwrap();
        k.sys_connect(tid, cli, addr).unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 7)]
        );
    }

    #[test]
    fn closed_fd_is_swept_from_interest() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 1)
            .unwrap();
        k.sys_write(tid, w, b"y").unwrap();
        k.sys_close(tid, r).unwrap();
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        // The registration is gone: MOD now reports ENOENT (slot reused
        // by a fresh pipe).
        let (r2, _w2) = k.sys_pipe2(tid, 0).unwrap();
        assert_eq!(r2, r, "lowest slot reused");
        assert_eq!(
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_MOD, r2, EPOLLIN, 2),
            Err(SysError::Err(Errno::Enoent))
        );
    }

    #[test]
    fn registration_survives_fd_close_while_a_dup_is_open() {
        // man epoll Q6: closing the registered fd does not drop the
        // registration while a duplicate keeps the description open.
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 0xCAFE)
            .unwrap();
        let dup = k.sys_dup(tid, r).unwrap() as i32;
        k.sys_close(tid, r).unwrap();
        k.sys_write(tid, w, b"x").unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 0xCAFE)],
            "description alive via the dup: still reported"
        );
        // Last duplicate closes: the registration is swept.
        k.sys_close(tid, dup).unwrap();
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
    }

    #[test]
    fn reused_fd_slot_coexists_with_a_dup_kept_registration() {
        // Linux keys registrations by (fd, description) pair: after the
        // registered fd is closed but kept alive by a dup, the reused fd
        // number can be registered for the *new* description and both
        // registrations report independently.
        let (mut k, tid) = kp();
        let (ra, wa) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, ra, EPOLLIN, 0xA)
            .unwrap();
        let _dup = k.sys_dup(tid, ra).unwrap() as i32;
        k.sys_close(tid, ra).unwrap();
        // Pipe B reuses fd slot `ra`.
        let (rb, wb) = k.sys_pipe2(tid, 0).unwrap();
        assert_eq!(rb, ra);
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, rb, EPOLLIN, 0xB)
            .unwrap();
        k.sys_write(tid, wa, b"a").unwrap();
        k.sys_write(tid, wb, b"b").unwrap();
        let ready = k.sys_epoll_wait_ready(tid, ep, 8).unwrap();
        assert_eq!(
            ready,
            vec![(EPOLLIN, 0xA), (EPOLLIN, 0xB)],
            "both pairs live"
        );
    }

    #[test]
    fn reused_fd_slot_does_not_inherit_a_stale_registration() {
        // Close a registered fd, reuse its slot with a *ready* file, and
        // scan: the stale registration must not report the new file
        // under the old data cookie.
        let (mut k, tid) = kp();
        let (r, _w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 0xAAAA)
            .unwrap();
        k.sys_close(tid, r).unwrap();
        // Reuse the slot with a pipe that has readable data.
        let (r2, w2) = k.sys_pipe2(tid, 0).unwrap();
        assert_eq!(r2, r, "lowest slot reused");
        k.sys_write(tid, w2, b"new").unwrap();
        assert!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty(),
            "stale registration must be swept, not matched to the new file"
        );
        // The new description can be registered fresh (ADD, not EEXIST).
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r2, EPOLLIN, 0xBBBB)
            .unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 0xBBBB)]
        );
    }

    #[test]
    fn hangup_is_reported_without_interest() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, 0, 5).unwrap();
        k.sys_close(tid, w).unwrap();
        let ready = k.sys_epoll_wait_ready(tid, ep, 8).unwrap();
        assert_eq!(ready.len(), 1);
        assert_ne!(ready[0].0 & EPOLLHUP, 0);
    }

    #[test]
    fn epoll_subscribe_parks_on_interest_channels_and_write_wakes() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 0)
            .unwrap();
        k.epoll_subscribe(tid, ep).unwrap();
        assert!(k.task_waits(tid));
        k.sys_write(tid, w, b"wake").unwrap();
        assert_eq!(k.take_woken(), vec![tid]);
        assert!(!k.task_waits(tid), "wake clears all subscriptions");
        // Channel bookkeeping: nothing dangling.
        let _ = Channel::PipeReadable(0);
    }

    #[test]
    fn edge_triggered_reports_once_per_rising_edge() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN | EPOLLET, 9)
            .unwrap();
        k.sys_write(tid, w, b"x").unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 9)],
            "rising edge reported"
        );
        // Regression: unread data must NOT re-notify an ET registration.
        assert!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty(),
            "no spurious re-notification while the level stays high"
        );
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        // Drain (edge re-arms once observed clear), then write again.
        let mut buf = [0u8; 4];
        k.sys_read(tid, r, &mut buf).unwrap();
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        k.sys_write(tid, w, b"y").unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 9)],
            "next rising edge reported again"
        );
    }

    #[test]
    fn edge_triggered_rearms_on_new_data_between_scans() {
        // Regression (SMP review): data written between a drain and the
        // next scan must re-notify an ET registration even though every
        // scan observed the level high — Linux ET re-arms on the new
        // event, not on an observed-clear scan. Without the generation
        // re-arm the waiter would park forever.
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN | EPOLLET, 1)
            .unwrap();
        k.sys_write(tid, w, b"a").unwrap();
        assert_eq!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().len(), 1);
        // Drain, then new data arrives BEFORE any scan observes the
        // level clear.
        let mut buf = [0u8; 1];
        k.sys_read(tid, r, &mut buf).unwrap();
        k.sys_write(tid, w, b"b").unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 1)],
            "new transition re-arms the edge"
        );
        // And new data while STILL ready also re-notifies (Linux ET).
        k.sys_write(tid, w, b"c").unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 1)],
            "new data re-arms even while the level stays high"
        );
        // No new transition: stays quiet.
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
    }

    #[test]
    fn level_triggered_still_re_reports() {
        // The ET change must not leak into default registrations.
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 1)
            .unwrap();
        k.sys_write(tid, w, b"x").unwrap();
        for _ in 0..3 {
            assert_eq!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().len(), 1);
        }
    }

    #[test]
    fn oneshot_disarms_until_ctl_mod_rearms() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN | EPOLLONESHOT, 3)
            .unwrap();
        k.sys_write(tid, w, b"x").unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 3)]
        );
        // Regression: a fired ONESHOT registration must stay silent even
        // with the level still high and across further writes.
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        k.sys_write(tid, w, b"more").unwrap();
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        // Disarmed registrations contribute no wait channels either.
        k.epoll_subscribe(tid, ep).unwrap();
        assert!(k.task_waits(tid), "still parked on ctl/signal channels");
        k.wait_cancel(tid);
        // MOD re-arms; the pending level is reported again.
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_MOD, r, EPOLLIN | EPOLLONESHOT, 4)
            .unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 4)]
        );
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
    }

    #[test]
    fn oneshot_edge_combo_reports_exactly_once() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(
            tid,
            ep,
            EPOLL_CTL_ADD,
            r,
            EPOLLIN | EPOLLET | EPOLLONESHOT,
            7,
        )
        .unwrap();
        k.sys_write(tid, w, b"x").unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 7)]
        );
        let mut buf = [0u8; 1];
        k.sys_read(tid, r, &mut buf).unwrap();
        k.sys_write(tid, w, b"y").unwrap();
        assert!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty(),
            "new edge suppressed while disarmed"
        );
    }

    #[test]
    fn epoll_fd_is_pollable() {
        use wali_abi::flags::POLLIN;
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 0)
            .unwrap();
        assert_eq!(k.poll_check(tid, &[(ep, POLLIN)]).unwrap(), vec![0]);
        k.sys_write(tid, w, b"z").unwrap();
        assert_eq!(k.poll_check(tid, &[(ep, POLLIN)]).unwrap(), vec![POLLIN]);
    }
}
