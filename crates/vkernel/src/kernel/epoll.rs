//! `epoll`: scalable readiness notification.
//!
//! A thin, deterministic model of the Linux epoll family, layered over the
//! same readiness logic as `poll` (`Kernel::poll_one`) and the same
//! waitqueues as every other blocking call:
//!
//! * the interest list is keyed by descriptor number but each
//!   registration is pinned to its **open file description** identity
//!   (`EpollReg::file`) — a closed fd whose slot number is reused by a
//!   new file does not inherit the old registration, a registration
//!   stays reportable while any `dup`/fork duplicate keeps its
//!   description open, and fully-closed registrations are swept on the
//!   next scan (Linux's description-keyed semantics, man epoll Q6);
//! * delivery is level-triggered by default; `EPOLLET` reports on a
//!   not-ready→ready edge or when a new transition (waitqueue post)
//!   arrived since the last report — Linux's re-arm-on-new-event
//!   semantics, tracked through per-channel event generations — and
//!   `EPOLLONESHOT` disarms a registration after one report until
//!   `EPOLL_CTL_MOD` re-arms it;
//! * a blocked `epoll_wait` parks on the union of the interest list's wait
//!   channels (see [`Kernel::wait_on_fds`]) and is woken by the first
//!   transition on any of them.
//!
//! # The ready ring (`WALI_NO_READY` toggles it off)
//!
//! The scan path above is O(interest) per wakeup: a 100k-registration
//! server pays for every idle connection on every event. In ready-ring
//! mode (the default), readiness flows the other way, like Linux:
//!
//! * `epoll_ctl` registers each interest entry's wait channels in the
//!   waitqueue's [`crate::wait::ReadyHub`];
//! * every waitqueue post routes through the hub, pushing the watching
//!   registrations onto their instance's `Epoll::ready` ring (the
//!   `queued` flag keeps an entry on the ring at most once) and posting
//!   [`Channel::EpollReady`] for freshly queued entries;
//! * `epoll_wait` drains the ring and re-verifies only the popped
//!   entries — O(ready), not O(interest) — re-queuing still-ready
//!   level-triggered entries; a parked waiter subscribes the single
//!   `EpollReady` channel instead of the whole interest union.
//!
//! ET edge memory, ONESHOT disarm and the description-keyed sweep use
//! the same state and formulas on both paths, so the two modes stay
//! observably identical (pinned by the adversarial tests below, the
//! `WALI_NO_READY=1` CI gate and a fuzzer oracle leg).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex, Weak};

use wali_abi::flags::{
    EPOLLERR, EPOLLET, EPOLLHUP, EPOLLIN, EPOLLONESHOT, EPOLLOUT, EPOLL_CLOEXEC, EPOLL_CTL_ADD,
    EPOLL_CTL_DEL, EPOLL_CTL_MOD, POLLERR, POLLHUP, POLLIN, POLLOUT,
};
use wali_abi::Errno;

use crate::fd::{FileKind, FileRef, OpenFile};
use crate::sync::MutexExt;
use crate::wait::Channel;
use crate::{SysResult, Tid};

use super::Kernel;

/// One interest-list registration. Like Linux, the registration key is
/// the `(fd number, open file description)` *pair*: the `file` identity
/// pins it to the description that was registered, so a closed-and-reused
/// fd number neither inherits nor displaces a registration whose
/// description is still alive through a duplicate.
#[derive(Clone, Debug)]
pub(crate) struct EpollReg {
    pub(crate) fd: i32,
    pub(crate) events: u32,
    pub(crate) data: u64,
    pub(crate) file: Weak<Mutex<OpenFile>>,
    /// `EPOLLET` state: the readiness mask the previous scan observed.
    /// A bit reports when it rises, or when the registration's event
    /// generation moved (a new transition arrived — Linux re-notifies
    /// ET on new data even while the level stays high). Level-triggered
    /// registrations ignore this field.
    pub(crate) prev_ready: u32,
    /// `EPOLLET` state: sum of the wait-channel event generations at
    /// the previous scan.
    pub(crate) prev_gen: u64,
    /// `EPOLLONESHOT` state: cleared after one report; `EPOLL_CTL_MOD`
    /// re-arms. Disarmed registrations neither report nor contribute
    /// wait channels.
    pub(crate) armed: bool,
    /// Ready-ring state: true while this registration sits on
    /// [`Epoll::ready`] (keeps it on the ring at most once).
    pub(crate) queued: bool,
    /// The wait channels this registration is registered for in the
    /// [`crate::wait::ReadyHub`] (ring mode only; empty on the scan
    /// path). Kept exact so `EPOLL_CTL_DEL`/`MOD`, the dead-description
    /// sweep and instance release can unregister precisely.
    pub(crate) hub_chans: Vec<Channel>,
}

/// One epoll instance: the interest list and its ready ring.
#[derive(Clone, Debug, Default)]
pub struct Epoll {
    /// Registrations keyed by a monotone insertion key (key order ==
    /// registration order, so scans and ring pops report
    /// deterministically); entries whose description is fully closed are
    /// swept on the next scan/pop. Several entries may share an fd
    /// number when a slot was reused while a dup keeps the old
    /// description alive — exactly Linux's (fd, file) pair keying.
    pub(crate) interest: BTreeMap<u64, EpollReg>,
    /// Next insertion key.
    pub(crate) next_key: u64,
    /// The ready ring: keys pushed by readiness transitions, popped by
    /// `epoll_wait`. May hold keys whose registration has since been
    /// deleted (pops skip unknown keys).
    pub(crate) ready: VecDeque<u64>,
    /// fd number → registration keys (the `epoll_ctl` lookup index; a
    /// number maps to several keys when a reused slot coexists with a
    /// dup-kept registration).
    pub(crate) by_fd: HashMap<i32, Vec<u64>>,
    /// Recycled buffer for the fallback path's interest snapshot
    /// ([`Kernel::epoll_interest_descs`]): kills the per-scan `Vec`
    /// allocation.
    pub(crate) scratch: Vec<(FileRef, i16)>,
}

impl Epoll {
    /// Queues registration `key` on the ready ring. Returns `true` iff
    /// the registration exists, is armed and was not already queued —
    /// i.e. iff the caller should post [`Channel::EpollReady`].
    /// Idempotent: racing pushes of the same key enqueue it once.
    pub(crate) fn ring_push(&mut self, key: u64) -> bool {
        let Some(reg) = self.interest.get_mut(&key) else {
            return false;
        };
        if !reg.armed || reg.queued {
            return false;
        }
        reg.queued = true;
        self.ready.push_back(key);
        true
    }

    /// Inserts a registration under a fresh key, maintaining the fd
    /// index.
    fn insert_reg(&mut self, reg: EpollReg) -> u64 {
        let key = self.next_key;
        self.next_key += 1;
        self.by_fd.entry(reg.fd).or_default().push(key);
        self.interest.insert(key, reg);
        key
    }

    /// Removes registration `key`, maintaining the fd index. A stale
    /// copy of the key may remain on the ready ring; pops skip it.
    fn remove_reg(&mut self, key: u64) -> Option<EpollReg> {
        let reg = self.interest.remove(&key)?;
        if let Some(keys) = self.by_fd.get_mut(&reg.fd) {
            keys.retain(|&k| k != key);
            if keys.is_empty() {
                self.by_fd.remove(&reg.fd);
            }
        }
        Some(reg)
    }

    /// The key registered for the `(fd, description)` pair, if any.
    fn find(&self, fd: i32, target: &Option<FileRef>) -> Option<u64> {
        let keys = self.by_fd.get(&fd)?;
        keys.iter().copied().find(|k| {
            self.interest.get(k).is_some_and(|reg| {
                reg.file
                    .upgrade()
                    .zip(target.clone())
                    .map(|(a, b)| Arc::ptr_eq(&a, &b))
                    .unwrap_or(false)
            })
        })
    }

    /// Removes every registration whose description is fully closed,
    /// returning them so the caller can unregister their hub channels.
    fn sweep_dead(&mut self) -> Vec<(u64, EpollReg)> {
        let dead: Vec<u64> = self
            .interest
            .iter()
            .filter(|(_, r)| r.file.strong_count() == 0)
            .map(|(k, _)| *k)
            .collect();
        dead.into_iter()
            .filter_map(|k| self.remove_reg(k).map(|r| (k, r)))
            .collect()
    }
}

/// Converts an epoll interest mask to the `poll` events to probe.
fn epoll_to_poll(events: u32) -> i16 {
    let mut ev = 0i16;
    if events & EPOLLIN != 0 {
        ev |= POLLIN;
    }
    if events & EPOLLOUT != 0 {
        ev |= POLLOUT;
    }
    ev
}

/// Converts `poll` revents back to an epoll report mask, filtered by the
/// registered interest (ERR/HUP are always reported, like Linux).
fn poll_to_epoll(revents: i16, interest: u32) -> u32 {
    let mut ev = 0u32;
    if revents & POLLIN != 0 && interest & EPOLLIN != 0 {
        ev |= EPOLLIN;
    }
    if revents & POLLOUT != 0 && interest & EPOLLOUT != 0 {
        ev |= EPOLLOUT;
    }
    if revents & POLLERR != 0 {
        ev |= EPOLLERR;
    }
    if revents & POLLHUP != 0 {
        ev |= EPOLLHUP;
    }
    ev
}

impl Kernel {
    fn alloc_epoll(&mut self) -> usize {
        self.epolls.insert(Epoll::default())
    }

    /// Runs `f` under epoll instance `id`'s own lock (rank
    /// [`LockClass::Epoll`](crate::lockorder::LockClass), below the
    /// pipe/socket object rank so a scan may look at objects while the
    /// interest list is held — though the scan paths below deliberately
    /// snapshot first and never do).
    pub(crate) fn with_epoll<R>(
        &self,
        id: usize,
        f: impl FnOnce(&mut Epoll) -> R,
    ) -> Result<R, Errno> {
        let e = self.epolls.get(id).ok_or(Errno::Ebadf)?;
        let mut g = e.lock_ok();
        Ok(f(&mut g))
    }

    fn epoll_of_fd(&self, tid: Tid, epfd: i32) -> Result<usize, Errno> {
        let task = self.task(tid)?;
        let table = task.fdtable.lock_ok();
        let kind = table.get(epfd)?.file.lock_ok().kind.clone();
        match kind {
            FileKind::Epoll(id) => Ok(id),
            _ => Err(Errno::Einval),
        }
    }

    /// The live interest list of epoll instance `id` as `(description,
    /// poll-events)` pairs (readiness + waitqueue subscription helper).
    /// Registrations whose description has been fully closed are skipped.
    ///
    /// The returned buffer is the instance's recycled scratch — return
    /// it via [`Kernel::epoll_descs_recycle`] when done so repeated
    /// fallback scans allocate nothing.
    pub(crate) fn epoll_interest_descs(&self, id: usize) -> Vec<(FileRef, i16)> {
        self.with_epoll(id, |e| {
            let mut buf = std::mem::take(&mut e.scratch);
            buf.clear();
            for reg in e.interest.values().filter(|r| r.armed) {
                if let Some(f) = reg.file.upgrade() {
                    buf.push((f, epoll_to_poll(reg.events)));
                }
            }
            buf
        })
        .unwrap_or_default()
    }

    /// Hands an [`Kernel::epoll_interest_descs`] buffer back to the
    /// instance for reuse (drops the description refs it held).
    pub(crate) fn epoll_descs_recycle(&self, id: usize, mut buf: Vec<(FileRef, i16)>) {
        buf.clear();
        let _ = self.with_epoll(id, |e| {
            if e.scratch.capacity() < buf.capacity() {
                e.scratch = std::mem::take(&mut buf);
            }
        });
    }

    /// Frees an epoll instance when its last descriptor closes,
    /// unregistering every ready-hub channel its registrations held.
    pub(crate) fn release_epoll(&mut self, id: usize) {
        let Some(ep) = self.epolls.free(id) else {
            return;
        };
        let chans: Vec<(Channel, u64)> = {
            let g = ep.lock_ok();
            g.interest
                .iter()
                .flat_map(|(k, r)| r.hub_chans.iter().map(move |c| (*c, *k)))
                .collect()
        };
        for (ch, key) in chans {
            self.waits.hub_unregister(ch, id, key);
        }
    }

    /// `epoll_create1(flags)`: allocates an instance and its fd.
    pub fn sys_epoll_create1(&mut self, tid: Tid, flags: i32) -> SysResult<i32> {
        if flags & !EPOLL_CLOEXEC != 0 {
            return Err(Errno::Einval.into());
        }
        let id = self.alloc_epoll();
        let file: FileRef = Arc::new(Mutex::new(OpenFile::new(FileKind::Epoll(id), 0)));
        let task = self.task(tid)?;
        let fd = task
            .fdtable
            .lock_ok()
            .alloc(file, flags & EPOLL_CLOEXEC != 0)?;
        Ok(fd)
    }

    /// `epoll_ctl(epfd, op, fd, event)`.
    pub fn sys_epoll_ctl(
        &mut self,
        tid: Tid,
        epfd: i32,
        op: i32,
        fd: i32,
        events: u32,
        data: u64,
    ) -> SysResult {
        let id = self.epoll_of_fd(tid, epfd)?;
        // The target must be an open descriptor of the caller.
        let (kind, file) = {
            let task = self.task(tid)?;
            let table = task.fdtable.lock_ok();
            let entry = table.get(fd)?;
            let pair = (
                entry.file.lock_ok().kind.clone(),
                Arc::downgrade(&entry.file),
            );
            pair
        };
        if matches!(kind, FileKind::Epoll(_)) {
            // Nested epoll instances would make the wait-channel walk
            // cyclic; Linux reports closed loops the same way.
            return Err(Errno::Eloop.into());
        }
        let target = file.upgrade();
        // What happened under the epoll lock (hub bookkeeping and the
        // readiness probe run after it drops: they take locks that rank
        // below/above the epoll class).
        enum Edit {
            Added(u64),
            Modified(u64, Vec<Channel>),
            Deleted(Vec<Channel>, u64),
        }
        let edit = self.with_epoll(id, |ep| {
            // The registration key is the (fd, description) pair: a stale
            // entry for the same fd number but a different (or dead)
            // description does not count as "present".
            let existing = ep.find(fd, &target);
            match (op, existing) {
                (EPOLL_CTL_ADD, Some(_)) => Err(Errno::Eexist),
                (EPOLL_CTL_ADD, None) => Ok(Edit::Added(ep.insert_reg(EpollReg {
                    fd,
                    events,
                    data,
                    file: file.clone(),
                    prev_ready: 0,
                    prev_gen: 0,
                    armed: true,
                    queued: false,
                    hub_chans: Vec::new(),
                }))),
                // MOD re-arms a ONESHOT-disarmed registration and resets
                // the edge-trigger state (Linux re-arms on modify).
                (EPOLL_CTL_MOD, Some(key)) => {
                    let reg = ep.interest.get_mut(&key).expect("found key is live");
                    let old_chans = std::mem::take(&mut reg.hub_chans);
                    reg.events = events;
                    reg.data = data;
                    reg.prev_ready = 0;
                    reg.prev_gen = 0;
                    reg.armed = true;
                    Ok(Edit::Modified(key, old_chans))
                }
                (EPOLL_CTL_DEL, Some(key)) => {
                    let reg = ep.remove_reg(key).expect("found key is live");
                    Ok(Edit::Deleted(reg.hub_chans, key))
                }
                (EPOLL_CTL_MOD | EPOLL_CTL_DEL, None) => Err(Errno::Enoent),
                _ => Err(Errno::Einval),
            }
        })??;
        if !self.ready {
            // Scan mode: a parked epoll_wait waiter holds a snapshot of
            // the old interest list; wake it to re-scan (the added or
            // changed fd may already be ready), like Linux's
            // interest-change wakeups.
            self.wait_post(Channel::EpollCtl(id));
            return Ok(0);
        }
        match edit {
            Edit::Added(key) => {
                if let Some(f) = target {
                    self.ring_arm(tid, id, key, &f, events, Vec::new())?;
                }
            }
            Edit::Modified(key, old_chans) => {
                if let Some(f) = target {
                    self.ring_arm(tid, id, key, &f, events, old_chans)?;
                }
            }
            Edit::Deleted(chans, key) => {
                // No wakeup: a waiter that no longer matches this entry
                // simply never sees it (a stale ring key is skipped at
                // the next pop).
                for ch in chans {
                    self.waits.hub_unregister(ch, id, key);
                }
            }
        }
        Ok(0)
    }

    /// Ring mode: (re)wires registration `key`'s hub channels and, when
    /// the description is report-worthy right now, queues it and posts
    /// the wakeup. Registration happens *before* the readiness probe so
    /// a transition landing after the probe is guaranteed to route —
    /// and, unlike the scan path's unconditional `EpollCtl` post, a
    /// not-ready `EPOLL_CTL_ADD` wakes nobody.
    fn ring_arm(
        &mut self,
        tid: Tid,
        id: usize,
        key: u64,
        file: &FileRef,
        events: u32,
        old_chans: Vec<Channel>,
    ) -> SysResult {
        let mut chans = Vec::new();
        self.desc_wait_channels(file, epoll_to_poll(events), &mut chans);
        for &ch in &chans {
            self.waits.hub_register(ch, id, key);
        }
        for ch in old_chans {
            if !chans.contains(&ch) {
                self.waits.hub_unregister(ch, id, key);
            }
        }
        self.with_epoll(id, |ep| {
            if let Some(reg) = ep.interest.get_mut(&key) {
                reg.hub_chans = chans;
            }
        })?;
        let revents = self.poll_desc(tid, file, epoll_to_poll(events))?;
        if poll_to_epoll(revents, events) != 0 {
            let pushed = self.with_epoll(id, |ep| ep.ring_push(key))?;
            if pushed {
                self.wait_post(Channel::EpollReady(id));
            }
        }
        Ok(0)
    }

    /// Level-triggered readiness scan for `epoll_wait`: up to `max` ready
    /// `(events, data)` reports, in registration order. A registration stays live
    /// as long as *any* duplicate of its open file description exists
    /// (`dup`/fork copies keep it reportable even after the registering
    /// fd number is closed — Linux's description-keyed semantics); it is
    /// swept once the description is fully closed. Never blocks — the
    /// embedder handles timeout and parking, exactly as for `poll`.
    pub fn sys_epoll_ready(
        &mut self,
        tid: Tid,
        id: usize,
        max: usize,
    ) -> SysResult<Vec<(u32, u64)>> {
        if self.ready {
            self.epoll_ready_ring(tid, id, max)
        } else {
            self.epoll_ready_scan(tid, id, max)
        }
    }

    /// The fallback full scan (`WALI_NO_READY=1`): walks the whole
    /// interest list, O(interest) per call.
    fn epoll_ready_scan(&mut self, tid: Tid, id: usize, max: usize) -> SysResult<Vec<(u32, u64)>> {
        // Snapshot the interest list so no epoll guard is held across the
        // `poll_desc` scans below (which take pipe/socket object locks).
        let interest: Vec<(u64, EpollReg)> = self.with_epoll(id, |e| {
            e.interest.iter().map(|(k, r)| (*k, r.clone())).collect()
        })?;
        let mut out = Vec::new();
        let mut swept = false;
        // Deferred per-registration state updates (ET edge/generation
        // memory, ONESHOT disarm), applied after the scan: `poll_desc`
        // needs `&mut self`, so the loop runs over a snapshot.
        let mut updates: Vec<(u64, u32, u64, bool)> = Vec::new();
        for (key, reg) in interest {
            if out.len() >= max.max(1) {
                break;
            }
            let Some(file) = reg.file.upgrade() else {
                swept = true;
                continue;
            };
            if !reg.armed {
                // ONESHOT fired and not yet re-armed by EPOLL_CTL_MOD.
                continue;
            }
            let revents = self.poll_desc(tid, &file, epoll_to_poll(reg.events))?;
            let ready = poll_to_epoll(revents, reg.events);
            let et = reg.events & EPOLLET != 0;
            let gen = if et {
                self.desc_event_gen(&file, epoll_to_poll(reg.events))
            } else {
                0
            };
            let report = if et {
                // Edge-triggered: report bits that rose since the
                // previous scan, or everything ready when a new
                // transition arrived in between (generation moved) —
                // data written between a drain and this scan must
                // re-notify, like Linux ET re-arming on new events.
                (ready & !reg.prev_ready) | if gen != reg.prev_gen { ready } else { 0 }
            } else {
                ready
            };
            let disarm = reg.events & EPOLLONESHOT != 0 && report != 0;
            if reg.prev_ready != ready || reg.prev_gen != gen || disarm {
                updates.push((key, ready, gen, disarm));
            }
            if report != 0 {
                out.push((report, reg.data));
            }
        }
        let removed = self.with_epoll(id, |ep| {
            for (key, prev_ready, prev_gen, disarm) in &updates {
                if let Some(reg) = ep.interest.get_mut(key) {
                    reg.prev_ready = *prev_ready;
                    reg.prev_gen = *prev_gen;
                    if *disarm {
                        reg.armed = false;
                    }
                }
            }
            if swept {
                ep.sweep_dead()
            } else {
                Vec::new()
            }
        })?;
        self.hub_unregister_regs(id, removed);
        Ok(out)
    }

    /// The ready-ring pop (`epoll_wait`'s default path): drains the
    /// ring, re-verifies only the popped entries — O(ready) — and
    /// re-queues still-ready level-triggered entries plus anything past
    /// the caller's budget.
    fn epoll_ready_ring(&mut self, tid: Tid, id: usize, max: usize) -> SysResult<Vec<(u32, u64)>> {
        let max = max.max(1);
        // Phase 1: drain the whole ring under the epoll lock. Keys are
        // sorted so reports come out in registration order, exactly like
        // the scan path (single-worker runs stay bit-deterministic).
        // `queued` clears now: a transition racing the verification
        // below re-pushes and is seen by the next pop.
        let candidates: Vec<(u64, EpollReg)> = self.with_epoll(id, |ep| {
            let mut keys: Vec<u64> = ep.ready.drain(..).collect();
            keys.sort_unstable();
            keys.dedup();
            let mut cands = Vec::new();
            for k in keys {
                if let Some(reg) = ep.interest.get_mut(&k) {
                    reg.queued = false;
                    if reg.armed {
                        cands.push((k, reg.clone()));
                    }
                }
                // Unknown key: deleted after it was queued — dropped.
            }
            cands
        })?;
        // Phase 2: verify with no epoll lock held (readiness probes and
        // channel walks take slab/object locks).
        let mut out = Vec::new();
        let mut updates: Vec<(u64, u32, u64, bool)> = Vec::new();
        let mut requeue: Vec<u64> = Vec::new();
        let mut rewire: Vec<(u64, Vec<Channel>, Vec<Channel>)> = Vec::new();
        let mut swept: Vec<(u64, EpollReg)> = Vec::new();
        for (i, (key, reg)) in candidates.iter().enumerate() {
            if out.len() >= max {
                // Past the caller's budget: re-queue unverified, their
                // transitions are still unconsumed.
                requeue.extend(candidates[i..].iter().map(|(k, _)| *k));
                break;
            }
            let Some(file) = reg.file.upgrade() else {
                swept.push((*key, reg.clone()));
                continue;
            };
            // Refresh the hub wiring first: a description's readiness
            // channels can change (a socket that connected gained its
            // peer's space channel), and registering *before* the probe
            // closes the missed-transition window.
            let mut chans = Vec::new();
            self.desc_wait_channels(&file, epoll_to_poll(reg.events), &mut chans);
            if chans != reg.hub_chans {
                for &ch in &chans {
                    if !reg.hub_chans.contains(&ch) {
                        self.waits.hub_register(ch, id, *key);
                    }
                }
                let removed: Vec<Channel> = reg
                    .hub_chans
                    .iter()
                    .copied()
                    .filter(|c| !chans.contains(c))
                    .collect();
                rewire.push((*key, chans, removed));
            }
            let revents = self.poll_desc(tid, &file, epoll_to_poll(reg.events))?;
            let ready = poll_to_epoll(revents, reg.events);
            let et = reg.events & EPOLLET != 0;
            let gen = if et {
                self.desc_event_gen(&file, epoll_to_poll(reg.events))
            } else {
                0
            };
            // Same report formula as the scan path, verbatim.
            let report = if et {
                (ready & !reg.prev_ready) | if gen != reg.prev_gen { ready } else { 0 }
            } else {
                ready
            };
            let disarm = reg.events & EPOLLONESHOT != 0 && report != 0;
            if reg.prev_ready != ready || reg.prev_gen != gen || disarm {
                updates.push((*key, ready, gen, disarm));
            }
            if report != 0 {
                out.push((report, reg.data));
                if !et && !disarm {
                    // Level-triggered readiness persists until drained:
                    // re-queue so the next pop re-verifies it.
                    requeue.push(*key);
                }
            }
        }
        // Phase 3: apply under the epoll lock (ring_push is idempotent
        // against pushes that raced the verification).
        self.with_epoll(id, |ep| {
            for (key, prev_ready, prev_gen, disarm) in &updates {
                if let Some(reg) = ep.interest.get_mut(key) {
                    reg.prev_ready = *prev_ready;
                    reg.prev_gen = *prev_gen;
                    if *disarm {
                        reg.armed = false;
                    }
                }
            }
            for (key, chans, _) in &rewire {
                if let Some(reg) = ep.interest.get_mut(key) {
                    reg.hub_chans = chans.clone();
                }
            }
            for (key, _) in &swept {
                ep.remove_reg(*key);
            }
            for key in &requeue {
                ep.ring_push(*key);
            }
        })?;
        self.hub_unregister_regs(id, swept);
        for (key, _, removed) in rewire {
            for ch in removed {
                self.waits.hub_unregister(ch, id, key);
            }
        }
        Ok(out)
    }

    /// Unregisters the hub channels of removed registrations (called
    /// with no epoll lock held).
    fn hub_unregister_regs(&mut self, id: usize, removed: Vec<(u64, EpollReg)>) {
        for (key, reg) in removed {
            for ch in reg.hub_chans {
                self.waits.hub_unregister(ch, id, key);
            }
        }
    }

    /// Readiness scan addressed by epoll fd (the `epoll_wait` entry).
    pub fn sys_epoll_wait_ready(
        &mut self,
        tid: Tid,
        epfd: i32,
        max: usize,
    ) -> SysResult<Vec<(u32, u64)>> {
        let id = self.epoll_of_fd(tid, epfd)?;
        self.sys_epoll_ready(tid, id, max)
    }

    /// Parks `tid` for the blocking half of `epoll_wait`.
    ///
    /// Ring mode subscribes exactly two channels — the instance's ready
    /// ring and the task's signal channel — regardless of interest-list
    /// size; the hub routes every relevant readiness transition to
    /// [`Channel::EpollReady`]. The fallback scan subscribes the union
    /// of every registration's wait channels, as before.
    pub fn epoll_subscribe(&mut self, tid: Tid, epfd: i32) -> SysResult {
        let id = self.epoll_of_fd(tid, epfd)?;
        if self.ready {
            self.wait_subscribe(tid, Channel::EpollReady(id));
            self.wait_subscribe(tid, Channel::Signal(tid));
            return Ok(0);
        }
        let mut chans = Vec::new();
        let descs = self.epoll_interest_descs(id);
        for (file, events) in &descs {
            self.desc_wait_channels(file, *events, &mut chans);
        }
        self.epoll_descs_recycle(id, descs);
        for ch in chans {
            self.wait_subscribe(tid, ch);
        }
        // Interest-list edits and signals end the wait too.
        self.wait_subscribe(tid, Channel::EpollCtl(id));
        self.wait_subscribe(tid, Channel::Signal(tid));
        Ok(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wait::Channel;
    use crate::SysError;
    use wali_abi::flags::{AF_INET, SOCK_STREAM};
    use wali_abi::layout::WaliSockaddr;

    fn kp() -> (Kernel, Tid) {
        let mut k = Kernel::new();
        let tid = k.spawn_process();
        (k, tid)
    }

    #[test]
    fn create_ctl_wait_round_trip_on_pipes() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, r as u64)
            .unwrap();
        // Nothing ready yet.
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        // Data arrives: level-triggered readiness until drained.
        k.sys_write(tid, w, b"x").unwrap();
        let ready = k.sys_epoll_wait_ready(tid, ep, 8).unwrap();
        assert_eq!(ready, vec![(EPOLLIN, r as u64)]);
        let ready = k.sys_epoll_wait_ready(tid, ep, 8).unwrap();
        assert_eq!(ready.len(), 1, "level-triggered: still ready");
        let mut buf = [0u8; 4];
        k.sys_read(tid, r, &mut buf).unwrap();
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
    }

    #[test]
    fn ctl_errors_match_linux() {
        let (mut k, tid) = kp();
        let (r, _w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        // MOD/DEL before ADD: ENOENT.
        assert_eq!(
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_MOD, r, EPOLLIN, 0),
            Err(SysError::Err(Errno::Enoent))
        );
        assert_eq!(
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_DEL, r, 0, 0),
            Err(SysError::Err(Errno::Enoent))
        );
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 0)
            .unwrap();
        // Double ADD: EEXIST.
        assert_eq!(
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 0),
            Err(SysError::Err(Errno::Eexist))
        );
        // Bad target fd: EBADF; epoll-in-epoll: ELOOP.
        assert_eq!(
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, 99, EPOLLIN, 0),
            Err(SysError::Err(Errno::Ebadf))
        );
        let ep2 = k.sys_epoll_create1(tid, 0).unwrap();
        assert_eq!(
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, ep2, EPOLLIN, 0),
            Err(SysError::Err(Errno::Eloop))
        );
        // Not an epoll fd: EINVAL.
        assert_eq!(
            k.sys_epoll_ctl(tid, r, EPOLL_CTL_ADD, ep, EPOLLIN, 0),
            Err(SysError::Err(Errno::Einval))
        );
    }

    #[test]
    fn listener_readiness_reports_epollin_on_pending_accept() {
        let (mut k, tid) = kp();
        let srv = k.sys_socket(tid, AF_INET, SOCK_STREAM, 0).unwrap();
        let addr = WaliSockaddr::Inet {
            addr: [127, 0, 0, 1],
            port: 9090,
        };
        k.sys_bind(tid, srv, addr.clone()).unwrap();
        k.sys_listen(tid, srv, 8).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, srv, EPOLLIN, 7)
            .unwrap();
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        let cli = k.sys_socket(tid, AF_INET, SOCK_STREAM, 0).unwrap();
        k.sys_connect(tid, cli, addr).unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 7)]
        );
    }

    #[test]
    fn closed_fd_is_swept_from_interest() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 1)
            .unwrap();
        k.sys_write(tid, w, b"y").unwrap();
        k.sys_close(tid, r).unwrap();
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        // The registration is gone: MOD now reports ENOENT (slot reused
        // by a fresh pipe).
        let (r2, _w2) = k.sys_pipe2(tid, 0).unwrap();
        assert_eq!(r2, r, "lowest slot reused");
        assert_eq!(
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_MOD, r2, EPOLLIN, 2),
            Err(SysError::Err(Errno::Enoent))
        );
    }

    #[test]
    fn registration_survives_fd_close_while_a_dup_is_open() {
        // man epoll Q6: closing the registered fd does not drop the
        // registration while a duplicate keeps the description open.
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 0xCAFE)
            .unwrap();
        let dup = k.sys_dup(tid, r).unwrap() as i32;
        k.sys_close(tid, r).unwrap();
        k.sys_write(tid, w, b"x").unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 0xCAFE)],
            "description alive via the dup: still reported"
        );
        // Last duplicate closes: the registration is swept.
        k.sys_close(tid, dup).unwrap();
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
    }

    #[test]
    fn reused_fd_slot_coexists_with_a_dup_kept_registration() {
        // Linux keys registrations by (fd, description) pair: after the
        // registered fd is closed but kept alive by a dup, the reused fd
        // number can be registered for the *new* description and both
        // registrations report independently.
        let (mut k, tid) = kp();
        let (ra, wa) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, ra, EPOLLIN, 0xA)
            .unwrap();
        let _dup = k.sys_dup(tid, ra).unwrap() as i32;
        k.sys_close(tid, ra).unwrap();
        // Pipe B reuses fd slot `ra`.
        let (rb, wb) = k.sys_pipe2(tid, 0).unwrap();
        assert_eq!(rb, ra);
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, rb, EPOLLIN, 0xB)
            .unwrap();
        k.sys_write(tid, wa, b"a").unwrap();
        k.sys_write(tid, wb, b"b").unwrap();
        let ready = k.sys_epoll_wait_ready(tid, ep, 8).unwrap();
        assert_eq!(
            ready,
            vec![(EPOLLIN, 0xA), (EPOLLIN, 0xB)],
            "both pairs live"
        );
    }

    #[test]
    fn reused_fd_slot_does_not_inherit_a_stale_registration() {
        // Close a registered fd, reuse its slot with a *ready* file, and
        // scan: the stale registration must not report the new file
        // under the old data cookie.
        let (mut k, tid) = kp();
        let (r, _w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 0xAAAA)
            .unwrap();
        k.sys_close(tid, r).unwrap();
        // Reuse the slot with a pipe that has readable data.
        let (r2, w2) = k.sys_pipe2(tid, 0).unwrap();
        assert_eq!(r2, r, "lowest slot reused");
        k.sys_write(tid, w2, b"new").unwrap();
        assert!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty(),
            "stale registration must be swept, not matched to the new file"
        );
        // The new description can be registered fresh (ADD, not EEXIST).
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r2, EPOLLIN, 0xBBBB)
            .unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 0xBBBB)]
        );
    }

    #[test]
    fn hangup_is_reported_without_interest() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, 0, 5).unwrap();
        k.sys_close(tid, w).unwrap();
        let ready = k.sys_epoll_wait_ready(tid, ep, 8).unwrap();
        assert_eq!(ready.len(), 1);
        assert_ne!(ready[0].0 & EPOLLHUP, 0);
    }

    #[test]
    fn epoll_subscribe_parks_on_interest_channels_and_write_wakes() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 0)
            .unwrap();
        k.epoll_subscribe(tid, ep).unwrap();
        assert!(k.task_waits(tid));
        k.sys_write(tid, w, b"wake").unwrap();
        assert_eq!(k.take_woken(), vec![tid]);
        assert!(!k.task_waits(tid), "wake clears all subscriptions");
        // Channel bookkeeping: nothing dangling.
        let _ = Channel::PipeReadable(0);
    }

    #[test]
    fn edge_triggered_reports_once_per_rising_edge() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN | EPOLLET, 9)
            .unwrap();
        k.sys_write(tid, w, b"x").unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 9)],
            "rising edge reported"
        );
        // Regression: unread data must NOT re-notify an ET registration.
        assert!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty(),
            "no spurious re-notification while the level stays high"
        );
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        // Drain (edge re-arms once observed clear), then write again.
        let mut buf = [0u8; 4];
        k.sys_read(tid, r, &mut buf).unwrap();
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        k.sys_write(tid, w, b"y").unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 9)],
            "next rising edge reported again"
        );
    }

    #[test]
    fn edge_triggered_rearms_on_new_data_between_scans() {
        // Regression (SMP review): data written between a drain and the
        // next scan must re-notify an ET registration even though every
        // scan observed the level high — Linux ET re-arms on the new
        // event, not on an observed-clear scan. Without the generation
        // re-arm the waiter would park forever.
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN | EPOLLET, 1)
            .unwrap();
        k.sys_write(tid, w, b"a").unwrap();
        assert_eq!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().len(), 1);
        // Drain, then new data arrives BEFORE any scan observes the
        // level clear.
        let mut buf = [0u8; 1];
        k.sys_read(tid, r, &mut buf).unwrap();
        k.sys_write(tid, w, b"b").unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 1)],
            "new transition re-arms the edge"
        );
        // And new data while STILL ready also re-notifies (Linux ET).
        k.sys_write(tid, w, b"c").unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 1)],
            "new data re-arms even while the level stays high"
        );
        // No new transition: stays quiet.
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
    }

    #[test]
    fn level_triggered_still_re_reports() {
        // The ET change must not leak into default registrations.
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 1)
            .unwrap();
        k.sys_write(tid, w, b"x").unwrap();
        for _ in 0..3 {
            assert_eq!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().len(), 1);
        }
    }

    #[test]
    fn oneshot_disarms_until_ctl_mod_rearms() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN | EPOLLONESHOT, 3)
            .unwrap();
        k.sys_write(tid, w, b"x").unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 3)]
        );
        // Regression: a fired ONESHOT registration must stay silent even
        // with the level still high and across further writes.
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        k.sys_write(tid, w, b"more").unwrap();
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        // Disarmed registrations contribute no wait channels either.
        k.epoll_subscribe(tid, ep).unwrap();
        assert!(k.task_waits(tid), "still parked on ctl/signal channels");
        k.wait_cancel(tid);
        // MOD re-arms; the pending level is reported again.
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_MOD, r, EPOLLIN | EPOLLONESHOT, 4)
            .unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 4)]
        );
        assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
    }

    #[test]
    fn oneshot_edge_combo_reports_exactly_once() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(
            tid,
            ep,
            EPOLL_CTL_ADD,
            r,
            EPOLLIN | EPOLLET | EPOLLONESHOT,
            7,
        )
        .unwrap();
        k.sys_write(tid, w, b"x").unwrap();
        assert_eq!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
            vec![(EPOLLIN, 7)]
        );
        let mut buf = [0u8; 1];
        k.sys_read(tid, r, &mut buf).unwrap();
        k.sys_write(tid, w, b"y").unwrap();
        assert!(
            k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty(),
            "new edge suppressed while disarmed"
        );
    }

    #[test]
    fn epoll_fd_is_pollable() {
        use wali_abi::flags::POLLIN;
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 0)
            .unwrap();
        assert_eq!(k.poll_check(tid, &[(ep, POLLIN)]).unwrap(), vec![0]);
        k.sys_write(tid, w, b"z").unwrap();
        assert_eq!(k.poll_check(tid, &[(ep, POLLIN)]).unwrap(), vec![POLLIN]);
    }

    // --- Adversarial ready-ring cases, run both toggle ways ------------

    /// Runs `body` twice: once with the ready ring on, once on the
    /// fallback scan — the two paths must agree on everything the body
    /// asserts. The mode is set before the body runs (registrations wire
    /// the hub at ctl time, so flipping mid-instance is not supported).
    fn both_modes(body: impl Fn(&mut Kernel, Tid)) {
        for ring in [true, false] {
            let (mut k, tid) = kp();
            k.set_ready(ring);
            body(&mut k, tid);
        }
    }

    #[test]
    fn ctl_del_with_a_queued_ready_entry_drops_it() {
        both_modes(|k, tid| {
            let (r, w) = k.sys_pipe2(tid, 0).unwrap();
            let ep = k.sys_epoll_create1(tid, 0).unwrap();
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 0xD)
                .unwrap();
            // The write queues a ring entry (ring mode) — then the
            // registration is deleted before anyone pops it.
            k.sys_write(tid, w, b"x").unwrap();
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_DEL, r, 0, 0).unwrap();
            assert!(
                k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty(),
                "stale queued entry for a deleted registration must not report"
            );
            // The hub wiring went with the registration.
            assert_eq!(k.leak_audit().hub_watchers, 0);
        });
    }

    #[test]
    fn ctl_mod_racing_a_pending_push_reports_the_new_mask() {
        both_modes(|k, tid| {
            let (r, w) = k.sys_pipe2(tid, 0).unwrap();
            let ep = k.sys_epoll_create1(tid, 0).unwrap();
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 1)
                .unwrap();
            // Queue a push for EPOLLIN, then narrow the mask to
            // hangup-only before the pop: the queued entry re-verifies
            // against the *current* mask and reports nothing.
            k.sys_write(tid, w, b"x").unwrap();
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_MOD, r, 0, 2).unwrap();
            assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
            // Widen it back: the still-buffered byte reports under the
            // new cookie.
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_MOD, r, EPOLLIN, 3)
                .unwrap();
            assert_eq!(
                k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
                vec![(EPOLLIN, 3)]
            );
        });
    }

    #[test]
    fn et_rearm_is_observed_through_ring_pops_alone() {
        both_modes(|k, tid| {
            let (r, w) = k.sys_pipe2(tid, 0).unwrap();
            let ep = k.sys_epoll_create1(tid, 0).unwrap();
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN | EPOLLET, 7)
                .unwrap();
            k.sys_write(tid, w, b"a").unwrap();
            assert_eq!(
                k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
                vec![(EPOLLIN, 7)]
            );
            assert!(
                k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty(),
                "edge consumed; no level re-report"
            );
            // New data without draining: a fresh edge must re-arm purely
            // via the transition push — no interest scan runs in ring
            // mode to notice it as a side effect.
            k.sys_write(tid, w, b"b").unwrap();
            assert_eq!(
                k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
                vec![(EPOLLIN, 7)]
            );
            assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        });
    }

    #[test]
    fn oneshot_rearm_after_a_stale_ring_entry() {
        both_modes(|k, tid| {
            let (r, w) = k.sys_pipe2(tid, 0).unwrap();
            let ep = k.sys_epoll_create1(tid, 0).unwrap();
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN | EPOLLONESHOT, 11)
                .unwrap();
            k.sys_write(tid, w, b"a").unwrap();
            assert_eq!(
                k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
                vec![(EPOLLIN, 11)]
            );
            // Disarmed: further transitions must neither report nor
            // resurrect the registration via a stale queued entry.
            k.sys_write(tid, w, b"b").unwrap();
            assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
            // MOD re-arms while data is still buffered: exactly one
            // report, then disarmed again.
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_MOD, r, EPOLLIN | EPOLLONESHOT, 12)
                .unwrap();
            assert_eq!(
                k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
                vec![(EPOLLIN, 12)]
            );
            assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        });
    }

    #[test]
    fn oneshot_rearm_with_an_undrained_queued_entry_reports_once() {
        both_modes(|k, tid| {
            let (r, w) = k.sys_pipe2(tid, 0).unwrap();
            let ep = k.sys_epoll_create1(tid, 0).unwrap();
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN | EPOLLONESHOT, 21)
                .unwrap();
            // Push queued but never popped; MOD re-arms on top of it
            // (the re-arm probe pushes again — the queued flag must
            // dedupe, not double-report).
            k.sys_write(tid, w, b"a").unwrap();
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_MOD, r, EPOLLIN | EPOLLONESHOT, 22)
                .unwrap();
            assert_eq!(
                k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
                vec![(EPOLLIN, 22)]
            );
            assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
        });
    }

    #[test]
    fn dup_kept_description_keeps_its_ring_wiring() {
        // man epoll Q6 through the ring: the registration (and its hub
        // wiring) follows the description, not the fd number.
        both_modes(|k, tid| {
            let (r, w) = k.sys_pipe2(tid, 0).unwrap();
            let ep = k.sys_epoll_create1(tid, 0).unwrap();
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, 0x96u64)
                .unwrap();
            let dup = k.sys_dup(tid, r).unwrap() as i32;
            k.sys_close(tid, r).unwrap();
            // The transition arrives *after* the registered fd closed:
            // the push must still route via the dup-kept description.
            k.sys_write(tid, w, b"x").unwrap();
            assert_eq!(
                k.sys_epoll_wait_ready(tid, ep, 8).unwrap(),
                vec![(EPOLLIN, 0x96u64)]
            );
            // Last holder closes: the sweep unhooks the hub wiring.
            k.sys_close(tid, dup).unwrap();
            assert!(k.sys_epoll_wait_ready(tid, ep, 8).unwrap().is_empty());
            assert_eq!(k.leak_audit().hub_watchers, 0);
        });
    }

    #[test]
    fn closing_the_epoll_fd_unhooks_all_hub_wiring() {
        both_modes(|k, tid| {
            let mut pipes = Vec::new();
            let ep = k.sys_epoll_create1(tid, 0).unwrap();
            for i in 0..8 {
                let (r, w) = k.sys_pipe2(tid, 0).unwrap();
                k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, i)
                    .unwrap();
                pipes.push((r, w));
            }
            k.sys_close(tid, ep).unwrap();
            assert_eq!(
                k.leak_audit().hub_watchers,
                0,
                "release_epoll must unregister every channel route"
            );
            // Transitions after release must not touch the freed slot.
            for &(_, w) in &pipes {
                k.sys_write(tid, w, b"x").unwrap();
            }
        });
    }

    #[test]
    fn ring_park_subscribes_only_the_ready_channel() {
        let (mut k, tid) = kp();
        k.set_ready(true);
        let ep = k.sys_epoll_create1(tid, 0).unwrap();
        let mut writers = Vec::new();
        for i in 0..32 {
            let (r, w) = k.sys_pipe2(tid, 0).unwrap();
            k.sys_epoll_ctl(tid, ep, EPOLL_CTL_ADD, r, EPOLLIN, i)
                .unwrap();
            writers.push(w);
        }
        let before = k.wait_stats().subscribes;
        k.epoll_subscribe(tid, ep).unwrap();
        assert_eq!(
            k.wait_stats().subscribes - before,
            2,
            "ready ring + signal channel only, independent of interest size"
        );
        // And the two channels suffice: any member's transition wakes.
        k.sys_write(tid, writers[17], b"x").unwrap();
        assert_eq!(k.take_woken(), vec![tid]);
    }
}
