//! File and filesystem syscalls.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use wali_abi::flags::{
    AT_FDCWD, AT_REMOVEDIR, AT_SYMLINK_NOFOLLOW, FD_CLOEXEC, FIONBIO, FIONREAD, F_DUPFD,
    F_DUPFD_CLOEXEC, F_GETFD, F_GETFL, F_SETFD, F_SETFL, O_ACCMODE, O_APPEND, O_CLOEXEC, O_CREAT,
    O_DIRECTORY, O_EXCL, O_NOFOLLOW, O_NONBLOCK, O_RDONLY, O_TRUNC, SEEK_CUR, SEEK_END, SEEK_SET,
    S_IFIFO, S_IFSOCK, TIOCGWINSZ,
};
use wali_abi::layout::{WaliDirent, WaliStat, WaliTimespec};
use wali_abi::signals::Signal;
use wali_abi::Errno;

use crate::fd::{FdEntry, FileKind, FileRef, OpenFile};
use crate::pipe::PipeIo;
use crate::sync::MutexExt;
use crate::vfs::{DevKind, InodeId, InodeKind};
use crate::wait::Channel;
use crate::{block, SysResult, Tid};

use super::Kernel;

impl Kernel {
    fn base_dir(&self, tid: Tid, dirfd: i32) -> Result<InodeId, Errno> {
        if dirfd == AT_FDCWD {
            return Ok(self.task(tid)?.fs.lock_ok().cwd);
        }
        let task = self.task(tid)?;
        let table = task.fdtable.lock_ok();
        let entry = table.get(dirfd)?;
        let kind = entry.file.lock_ok().kind.clone();
        match kind {
            FileKind::Dir(id) => Ok(id),
            _ => Err(Errno::Enotdir),
        }
    }

    /// `openat`.
    pub fn sys_openat(
        &mut self,
        tid: Tid,
        dirfd: i32,
        path: &str,
        flags: i32,
        mode: u32,
    ) -> SysResult<i32> {
        let base = self.base_dir(tid, dirfd)?;
        let follow = flags & O_NOFOLLOW == 0;
        let r = self.vfs.resolve(base, path, follow)?;
        let now = self.clock.realtime_ns();

        let inode = match r.inode {
            Some(id) => {
                if flags & O_CREAT != 0 && flags & O_EXCL != 0 {
                    return Err(Errno::Eexist.into());
                }
                id
            }
            None => {
                if flags & O_CREAT == 0 {
                    return Err(Errno::Enoent.into());
                }
                let umask = self.task(tid)?.fs.lock_ok().umask;
                let id = self
                    .vfs
                    .alloc(InodeKind::File(Vec::new()), mode & !umask & 0o777, now);
                self.vfs.link_into(r.parent, &r.name, id)?;
                self.vfs.write().get_mut(id)?.nlink = 1;
                id
            }
        };

        let vfs = self.vfs.read();
        let node = vfs.get(inode)?;
        let kind = match &node.kind {
            InodeKind::Dir(_) => {
                if flags & O_ACCMODE != O_RDONLY {
                    return Err(Errno::Eisdir.into());
                }
                FileKind::Dir(inode)
            }
            InodeKind::File(_) => {
                if flags & O_DIRECTORY != 0 {
                    return Err(Errno::Enotdir.into());
                }
                FileKind::Regular(inode)
            }
            InodeKind::Symlink(_) => return Err(Errno::Eloop.into()),
            InodeKind::CharDev(dev) => match dev {
                DevKind::ProcText(which) => {
                    let text = self.proc_text(tid, which);
                    FileKind::ProcSnapshot(Arc::new(text))
                }
                _ => {
                    if flags & O_DIRECTORY != 0 {
                        return Err(Errno::Enotdir.into());
                    }
                    FileKind::CharDev(inode)
                }
            },
        };

        drop(vfs);

        if flags & O_TRUNC != 0 && flags & O_ACCMODE != O_RDONLY {
            if let InodeKind::File(data) = &mut self.vfs.write().get_mut(inode)?.kind {
                data.clear();
            }
        }

        let file: FileRef = Arc::new(Mutex::new(OpenFile::new(kind, flags & !O_CLOEXEC)));
        let task = self.task(tid)?;
        let fd = task.fdtable.lock_ok().alloc(file, flags & O_CLOEXEC != 0)?;
        Ok(fd)
    }

    fn proc_text(&self, tid: Tid, which: &str) -> Vec<u8> {
        match which {
            "status" => {
                let t = self.task(tid).ok();
                format!(
                    "Name:\twasm\nPid:\t{}\nPPid:\t{}\nThreads:\t1\nVmPeak:\t    4096 kB\n",
                    t.map(|t| t.tgid).unwrap_or(0),
                    t.map(|t| t.ppid).unwrap_or(0),
                )
                .into_bytes()
            }
            "meminfo" => b"MemTotal:       16384000 kB\nMemFree:        8192000 kB\n".to_vec(),
            "cpuinfo" => {
                b"processor\t: 0\nmodel name\t: WALI virtual CPU\nbogomips\t: 4800.00\n".to_vec()
            }
            _ => Vec::new(),
        }
    }

    fn file_of(&self, tid: Tid, fd: i32) -> Result<FileRef, Errno> {
        let task = self.task(tid)?;
        let table = task.fdtable.lock_ok();
        table.get_file_cached(fd)
    }

    /// `read`.
    pub fn sys_read(&mut self, tid: Tid, fd: i32, out: &mut [u8]) -> SysResult {
        let file = self.file_of(tid, fd)?;
        let (kind, offset, flags) = {
            let f = file.lock_ok();
            (f.kind.clone(), f.offset, f.flags)
        };
        match kind {
            FileKind::Regular(inode) => {
                let n = self.read_inode_at(inode, offset, out)?;
                file.lock_ok().offset += n as u64;
                Ok(n as i64)
            }
            FileKind::ProcSnapshot(text) => {
                let off = (offset as usize).min(text.len());
                let n = out.len().min(text.len() - off);
                out[..n].copy_from_slice(&text[off..off + n]);
                file.lock_ok().offset += n as u64;
                Ok(n as i64)
            }
            FileKind::Dir(_) => Err(Errno::Eisdir.into()),
            FileKind::PipeRead(id) => {
                let nonblock = flags & O_NONBLOCK != 0;
                let has_sig = self.has_pending_signal(tid);
                let io = self.with_pipe(id, |p| {
                    let r = p.read(out);
                    if matches!(r, PipeIo::WouldBlock) && !nonblock && !has_sig {
                        // Subscribe while still holding the pipe lock: a
                        // writer filling the buffer after this point posts
                        // only after dropping the lock, so the wakeup
                        // cannot be missed.
                        self.waits.subscribe(tid, Channel::PipeReadable(id));
                        self.waits.subscribe(tid, Channel::Signal(tid));
                    }
                    r
                })?;
                match io {
                    PipeIo::Xfer(n) => {
                        // Space opened up: wake blocked writers.
                        self.waits.post(Channel::PipeWritable(id));
                        Ok(n as i64)
                    }
                    PipeIo::Eof => Ok(0),
                    PipeIo::WouldBlock if nonblock => Err(Errno::Eagain.into()),
                    PipeIo::WouldBlock if has_sig => Err(Errno::Eintr.into()),
                    PipeIo::WouldBlock => Err(block()),
                    PipeIo::Broken => unreachable!("read never reports Broken"),
                }
            }
            FileKind::PipeWrite(_) => Err(Errno::Ebadf.into()),
            FileKind::Socket(id) => self.sock_recv(tid, id, out, 0).map(|n| n as i64),
            FileKind::CharDev(inode) => {
                let dev = match &self.vfs.read().get(inode)?.kind {
                    InodeKind::CharDev(d) => d.clone(),
                    _ => return Err(Errno::Eio.into()),
                };
                match dev {
                    DevKind::Null | DevKind::Tty => Ok(0),
                    DevKind::Zero => {
                        out.fill(0);
                        Ok(out.len() as i64)
                    }
                    DevKind::Urandom => self.sys_getrandom(out),
                    // Reads of /proc/self/mem are denied by WALI before
                    // reaching here; defence in depth returns EIO.
                    DevKind::ProcSelfMem => Err(Errno::Eio.into()),
                    DevKind::ProcText(_) => Ok(0),
                }
            }
            FileKind::Epoll(_) => Err(Errno::Einval.into()),
            FileKind::EventFd => {
                let mut f = file.lock_ok();
                if f.counter == 0 {
                    if flags & O_NONBLOCK != 0 {
                        return Err(Errno::Eagain.into());
                    }
                    drop(f);
                    self.waits
                        .subscribe(tid, Channel::EventFd(Arc::as_ptr(&file) as usize));
                    self.waits.subscribe(tid, Channel::Signal(tid));
                    return Err(block());
                }
                if out.len() < 8 {
                    return Err(Errno::Einval.into());
                }
                out[..8].copy_from_slice(&f.counter.to_le_bytes());
                f.counter = 0;
                Ok(8)
            }
        }
    }

    /// `write`.
    pub fn sys_write(&mut self, tid: Tid, fd: i32, data: &[u8]) -> SysResult {
        let file = self.file_of(tid, fd)?;
        let (kind, mut offset, flags) = {
            let f = file.lock_ok();
            (f.kind.clone(), f.offset, f.flags)
        };
        match kind {
            FileKind::Regular(inode) => {
                if flags & O_APPEND != 0 {
                    offset = self.vfs.read().get(inode)?.size();
                }
                let n = self.write_inode_at(inode, offset, data)?;
                file.lock_ok().offset = offset + n as u64;
                Ok(n as i64)
            }
            FileKind::Dir(_) => Err(Errno::Eisdir.into()),
            FileKind::ProcSnapshot(_) => Err(Errno::Eacces.into()),
            FileKind::PipeWrite(id) => {
                let nonblock = flags & O_NONBLOCK != 0;
                let has_sig = self.has_pending_signal(tid);
                let io = self.with_pipe(id, |p| {
                    let r = p.write(data);
                    if matches!(r, PipeIo::WouldBlock) && !nonblock && !has_sig {
                        // Subscribe under the pipe lock (see sys_read).
                        self.waits.subscribe(tid, Channel::PipeWritable(id));
                        self.waits.subscribe(tid, Channel::Signal(tid));
                    }
                    r
                })?;
                match io {
                    PipeIo::Xfer(n) => {
                        // Data arrived: wake blocked readers and pollers.
                        self.waits.post(Channel::PipeReadable(id));
                        Ok(n as i64)
                    }
                    PipeIo::Broken => {
                        let tgid = self.task(tid)?.tgid;
                        let _ = self.send_signal_to_process(tgid, Signal::Sigpipe.number());
                        Err(Errno::Epipe.into())
                    }
                    PipeIo::WouldBlock if nonblock => Err(Errno::Eagain.into()),
                    PipeIo::WouldBlock if has_sig => Err(Errno::Eintr.into()),
                    PipeIo::WouldBlock => Err(block()),
                    PipeIo::Eof => unreachable!("write never reports Eof"),
                }
            }
            FileKind::PipeRead(_) => Err(Errno::Ebadf.into()),
            FileKind::Socket(id) => self.sock_send(tid, id, data, 0).map(|n| n as i64),
            FileKind::CharDev(inode) => {
                let dev = match &self.vfs.read().get(inode)?.kind {
                    InodeKind::CharDev(d) => d.clone(),
                    _ => return Err(Errno::Eio.into()),
                };
                match dev {
                    DevKind::Null | DevKind::Zero | DevKind::Urandom => Ok(data.len() as i64),
                    DevKind::Tty => {
                        self.console.extend_from_slice(data);
                        Ok(data.len() as i64)
                    }
                    DevKind::ProcSelfMem => Err(Errno::Eio.into()),
                    DevKind::ProcText(_) => Err(Errno::Eacces.into()),
                }
            }
            FileKind::Epoll(_) => Err(Errno::Einval.into()),
            FileKind::EventFd => {
                if data.len() < 8 {
                    return Err(Errno::Einval.into());
                }
                let v = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
                {
                    let mut f = file.lock_ok();
                    f.counter = f.counter.saturating_add(v);
                }
                // The counter became non-zero: wake blocked readers.
                self.waits
                    .post(Channel::EventFd(Arc::as_ptr(&file) as usize));
                Ok(8)
            }
        }
    }

    /// `pread64`.
    pub fn sys_pread(&mut self, tid: Tid, fd: i32, out: &mut [u8], offset: u64) -> SysResult {
        let file = self.file_of(tid, fd)?;
        let kind = file.lock_ok().kind.clone();
        match kind {
            FileKind::Regular(inode) => Ok(self.read_inode_at(inode, offset, out)? as i64),
            FileKind::PipeRead(_) | FileKind::PipeWrite(_) | FileKind::Socket(_) => {
                Err(Errno::Espipe.into())
            }
            _ => Err(Errno::Einval.into()),
        }
    }

    /// `pwrite64`.
    pub fn sys_pwrite(&mut self, tid: Tid, fd: i32, data: &[u8], offset: u64) -> SysResult {
        let file = self.file_of(tid, fd)?;
        let kind = file.lock_ok().kind.clone();
        match kind {
            FileKind::Regular(inode) => Ok(self.write_inode_at(inode, offset, data)? as i64),
            FileKind::PipeRead(_) | FileKind::PipeWrite(_) | FileKind::Socket(_) => {
                Err(Errno::Espipe.into())
            }
            _ => Err(Errno::Einval.into()),
        }
    }

    fn read_inode_at(&self, inode: InodeId, offset: u64, out: &mut [u8]) -> Result<usize, Errno> {
        match &self.vfs.read().get(inode)?.kind {
            InodeKind::File(data) => {
                let off = (offset as usize).min(data.len());
                let n = out.len().min(data.len() - off);
                out[..n].copy_from_slice(&data[off..off + n]);
                Ok(n)
            }
            _ => Err(Errno::Einval),
        }
    }

    fn write_inode_at(&mut self, inode: InodeId, offset: u64, data: &[u8]) -> Result<usize, Errno> {
        let now = self.clock.realtime_ns();
        let mut vfs = self.vfs.write();
        let node = vfs.get_mut(inode)?;
        match &mut node.kind {
            InodeKind::File(content) => {
                let end = offset as usize + data.len();
                if end > content.len() {
                    content.resize(end, 0);
                }
                content[offset as usize..end].copy_from_slice(data);
                node.mtime = now;
                Ok(data.len())
            }
            _ => Err(Errno::Einval),
        }
    }

    /// `lseek`.
    pub fn sys_lseek(&mut self, tid: Tid, fd: i32, offset: i64, whence: i32) -> SysResult {
        let file = self.file_of(tid, fd)?;
        let (kind, cur) = {
            let f = file.lock_ok();
            (f.kind.clone(), f.offset)
        };
        let size = match &kind {
            FileKind::Regular(inode) => self.vfs.read().get(*inode)?.size(),
            FileKind::ProcSnapshot(t) => t.len() as u64,
            FileKind::Dir(inode) => self.vfs.read().get(*inode)?.dir()?.len() as u64 + 2,
            _ => return Err(Errno::Espipe.into()),
        };
        let base = match whence {
            SEEK_SET => 0i64,
            SEEK_CUR => cur as i64,
            SEEK_END => size as i64,
            _ => return Err(Errno::Einval.into()),
        };
        let new = base.checked_add(offset).ok_or(Errno::Eoverflow)?;
        if new < 0 {
            return Err(Errno::Einval.into());
        }
        file.lock_ok().offset = new as u64;
        Ok(new)
    }

    /// `close`.
    pub fn sys_close(&mut self, tid: Tid, fd: i32) -> SysResult {
        let task = self.task(tid)?;
        let entry = task.fdtable.lock_ok().close(fd)?;
        self.release_if_last(entry);
        Ok(0)
    }

    /// Drops side-effects when the last descriptor to a description goes
    /// away (pipe end counts, socket refs).
    pub(crate) fn release_if_last(&mut self, entry: FdEntry) {
        // One strong ref means only `entry` holds the description now.
        if Arc::strong_count(&entry.file) != 1 {
            return;
        }
        let kind = entry.file.lock_ok().kind.clone();
        match kind {
            FileKind::PipeRead(id) => {
                // Decrement under the pipe lock, but free the slab slot
                // only after the guard drops: Slab ranks below Object in
                // the lock-ordering DAG.
                let dead = self
                    .with_pipe(id, |p| {
                        p.readers = p.readers.saturating_sub(1);
                        p.readers == 0 && p.writers == 0
                    })
                    .unwrap_or(false);
                if dead {
                    self.pipes.free(id);
                }
                // Blocked writers must observe EPIPE; pollers the hangup.
                self.waits.post(Channel::PipeWritable(id));
                self.waits.post(Channel::PipeReadable(id));
            }
            FileKind::PipeWrite(id) => {
                let dead = self
                    .with_pipe(id, |p| {
                        p.writers = p.writers.saturating_sub(1);
                        p.readers == 0 && p.writers == 0
                    })
                    .unwrap_or(false);
                if dead {
                    self.pipes.free(id);
                }
                // Blocked readers must observe EOF; pollers the hangup.
                self.waits.post(Channel::PipeReadable(id));
                self.waits.post(Channel::PipeWritable(id));
            }
            FileKind::Socket(id) => self.release_socket(id),
            FileKind::Epoll(id) => self.release_epoll(id),
            _ => {}
        }
    }

    /// `pipe2`: returns `(read_fd, write_fd)`.
    pub fn sys_pipe2(&mut self, tid: Tid, flags: i32) -> SysResult<(i32, i32)> {
        let id = self.alloc_pipe();
        let cloexec = flags & O_CLOEXEC != 0;
        let status = flags & O_NONBLOCK;
        let task = self.task(tid)?;
        let mut table = task.fdtable.lock_ok();
        let r: FileRef = Arc::new(Mutex::new(OpenFile::new(FileKind::PipeRead(id), status)));
        let w: FileRef = Arc::new(Mutex::new(OpenFile::new(FileKind::PipeWrite(id), status)));
        let rfd = table.alloc(r, cloexec)?;
        let wfd = table.alloc(w, cloexec)?;
        Ok((rfd, wfd))
    }

    /// `dup`.
    pub fn sys_dup(&mut self, tid: Tid, fd: i32) -> SysResult {
        let file = self.file_of(tid, fd)?;
        let task = self.task(tid)?;
        let new = task.fdtable.lock_ok().alloc(file, false)?;
        Ok(new as i64)
    }

    /// `dup3` (and `dup2` with `flags = 0`).
    pub fn sys_dup3(&mut self, tid: Tid, old: i32, new: i32, flags: i32) -> SysResult {
        if old == new {
            return Err(Errno::Einval.into());
        }
        let task = self.task(tid)?;
        let closed = {
            let mut table = task.fdtable.lock_ok();
            let prior = table.get(new).ok().map(|e| e.file.clone());
            table.dup_to(old, new, flags & O_CLOEXEC != 0)?;
            prior
        };
        // Release the replaced description if that was its last ref.
        if let Some(file) = closed {
            self.release_if_last(FdEntry {
                file,
                cloexec: false,
            });
        }
        Ok(new as i64)
    }

    /// `fcntl`.
    pub fn sys_fcntl(&mut self, tid: Tid, fd: i32, cmd: i32, arg: i32) -> SysResult {
        let task = self.task(tid)?;
        match cmd {
            F_DUPFD | F_DUPFD_CLOEXEC => {
                let file = {
                    let table = task.fdtable.lock_ok();
                    table.get(fd)?.file.clone()
                };
                let entry = FdEntry {
                    file,
                    cloexec: cmd == F_DUPFD_CLOEXEC,
                };
                let new = task
                    .fdtable
                    .lock_ok()
                    .alloc_from(arg.max(0) as usize, entry)?;
                Ok(new as i64)
            }
            F_GETFD => {
                let table = task.fdtable.lock_ok();
                Ok(if table.get(fd)?.cloexec {
                    FD_CLOEXEC as i64
                } else {
                    0
                })
            }
            F_SETFD => {
                let mut table = task.fdtable.lock_ok();
                table.get_mut(fd)?.cloexec = arg & FD_CLOEXEC != 0;
                Ok(0)
            }
            F_GETFL => {
                let table = task.fdtable.lock_ok();
                let flags = table.get(fd)?.file.lock_ok().flags;
                Ok(flags as i64)
            }
            F_SETFL => {
                let table = task.fdtable.lock_ok();
                let file = table.get(fd)?.file.clone();
                drop(table);
                // Only O_APPEND and O_NONBLOCK are changeable.
                let mut f = file.lock_ok();
                f.flags = (f.flags & !(O_APPEND | O_NONBLOCK)) | (arg & (O_APPEND | O_NONBLOCK));
                Ok(0)
            }
            _ => Err(Errno::Einval.into()),
        }
    }

    /// `ioctl` for the operations the app suite uses.
    pub fn sys_ioctl(&mut self, tid: Tid, fd: i32, op: u64) -> SysResult<IoctlOut> {
        let file = self.file_of(tid, fd)?;
        match op {
            TIOCGWINSZ => match file.lock_ok().kind {
                FileKind::CharDev(_) => Ok(IoctlOut::Winsize { rows: 24, cols: 80 }),
                _ => Err(Errno::Enotty.into()),
            },
            FIONREAD => {
                let kind = file.lock_ok().kind.clone();
                let n = match kind {
                    FileKind::PipeRead(id) => self.with_pipe(id, |p| p.len())?,
                    FileKind::Socket(id) => self.with_sock(id, |s| s.recv.len())?,
                    FileKind::Regular(inode) => {
                        let size = self.vfs.read().get(inode)?.size();
                        size.saturating_sub(file.lock_ok().offset) as usize
                    }
                    _ => 0,
                };
                Ok(IoctlOut::Int(n as i32))
            }
            FIONBIO => {
                let mut f = file.lock_ok();
                f.flags |= O_NONBLOCK;
                Ok(IoctlOut::Int(0))
            }
            _ => Err(Errno::Enotty.into()),
        }
    }

    /// `fstat`.
    pub fn sys_fstat(&mut self, tid: Tid, fd: i32) -> SysResult<WaliStat> {
        let file = self.file_of(tid, fd)?;
        let kind = file.lock_ok().kind.clone();
        match kind {
            FileKind::Regular(inode) | FileKind::Dir(inode) | FileKind::CharDev(inode) => {
                self.stat_inode(inode)
            }
            FileKind::PipeRead(_) | FileKind::PipeWrite(_) => Ok(WaliStat {
                st_mode: S_IFIFO | 0o600,
                st_blksize: 4096,
                ..Default::default()
            }),
            FileKind::Socket(_) => Ok(WaliStat {
                st_mode: S_IFSOCK | 0o777,
                st_blksize: 4096,
                ..Default::default()
            }),
            FileKind::ProcSnapshot(t) => Ok(WaliStat {
                st_mode: 0o100444,
                st_size: t.len() as i64,
                st_blksize: 4096,
                ..Default::default()
            }),
            FileKind::EventFd | FileKind::Epoll(_) => Ok(WaliStat {
                st_mode: 0o600,
                ..Default::default()
            }),
        }
    }

    /// `newfstatat` / `stat` / `lstat`.
    pub fn sys_fstatat(
        &mut self,
        tid: Tid,
        dirfd: i32,
        path: &str,
        flags: i32,
    ) -> SysResult<WaliStat> {
        let base = self.base_dir(tid, dirfd)?;
        let follow = flags & AT_SYMLINK_NOFOLLOW == 0;
        let r = self.vfs.resolve(base, path, follow)?;
        let inode = r.inode.ok_or(Errno::Enoent)?;
        self.stat_inode(inode)
    }

    fn stat_inode(&self, inode: InodeId) -> SysResult<WaliStat> {
        let vfs = self.vfs.read();
        let node = vfs.get(inode)?;
        Ok(WaliStat {
            st_dev: 1,
            st_ino: node.ino,
            st_mode: node.mode(),
            st_nlink: node.nlink,
            st_uid: node.uid,
            st_gid: node.gid,
            st_rdev: 0,
            st_size: node.size() as i64,
            st_blksize: 4096,
            st_blocks: (node.size() as i64 + 511) / 512,
            st_atim: WaliTimespec::from_nanos(node.atime),
            st_mtim: WaliTimespec::from_nanos(node.mtime),
            st_ctim: WaliTimespec::from_nanos(node.ctime),
        })
    }

    /// `getdents64`: fills directory entries starting at the open file's
    /// cursor; returns the entries that fit in `capacity` bytes.
    pub fn sys_getdents(
        &mut self,
        tid: Tid,
        fd: i32,
        capacity: usize,
    ) -> SysResult<Vec<WaliDirent>> {
        let file = self.file_of(tid, fd)?;
        let (kind, cursor) = {
            let f = file.lock_ok();
            (f.kind.clone(), f.offset as usize)
        };
        let FileKind::Dir(inode) = kind else {
            return Err(Errno::Enotdir.into());
        };
        let vfs = self.vfs.read();
        let node = vfs.get(inode)?;
        let entries = node.dir()?;

        let mut all: Vec<(String, InodeId, u8)> = Vec::with_capacity(entries.len() + 2);
        all.push((".".into(), inode, 4));
        all.push(("..".into(), inode, 4));
        for (name, &id) in entries {
            let ft = match &vfs.get(id)?.kind {
                InodeKind::Dir(_) => 4,  // DT_DIR
                InodeKind::File(_) => 8, // DT_REG
                InodeKind::Symlink(_) => 10,
                InodeKind::CharDev(_) => 2,
            };
            all.push((name.clone(), id, ft));
        }

        let mut out = Vec::new();
        let mut used = 0usize;
        let mut idx = cursor;
        while idx < all.len() {
            let (name, id, ft) = &all[idx];
            let d = WaliDirent {
                ino: vfs.get(*id)?.ino,
                off: (idx + 1) as i64,
                file_type: *ft,
                name: name.clone(),
            };
            if used + d.reclen() > capacity {
                break;
            }
            used += d.reclen();
            out.push(d);
            idx += 1;
        }
        if out.is_empty() && idx < all.len() {
            return Err(Errno::Einval.into());
        }
        file.lock_ok().offset = idx as u64;
        Ok(out)
    }

    /// `mkdirat`.
    pub fn sys_mkdirat(&mut self, tid: Tid, dirfd: i32, path: &str, mode: u32) -> SysResult {
        let base = self.base_dir(tid, dirfd)?;
        let r = self.vfs.resolve(base, path, true)?;
        if r.inode.is_some() {
            return Err(Errno::Eexist.into());
        }
        let umask = self.task(tid)?.fs.lock_ok().umask;
        let now = self.clock.realtime_ns();
        let id = self
            .vfs
            .alloc(InodeKind::Dir(BTreeMap::new()), mode & !umask & 0o777, now);
        self.vfs.link_into(r.parent, &r.name, id)?;
        self.vfs.write().get_mut(id)?.nlink = 1;
        Ok(0)
    }

    /// `unlinkat` (with `AT_REMOVEDIR` for rmdir semantics).
    pub fn sys_unlinkat(&mut self, tid: Tid, dirfd: i32, path: &str, flags: i32) -> SysResult {
        let base = self.base_dir(tid, dirfd)?;
        let r = self.vfs.resolve(base, path, false)?;
        let inode = r.inode.ok_or(Errno::Enoent)?;
        {
            let vfs = self.vfs.read();
            let node = vfs.get(inode)?;
            let is_dir = matches!(node.kind, InodeKind::Dir(_));
            if flags & AT_REMOVEDIR != 0 {
                if !is_dir {
                    return Err(Errno::Enotdir.into());
                }
                if !node.dir()?.is_empty() {
                    return Err(Errno::Enotempty.into());
                }
            } else if is_dir {
                return Err(Errno::Eisdir.into());
            }
        }
        self.vfs.unlink_from(r.parent, &r.name)?;
        Ok(0)
    }

    /// `renameat`.
    pub fn sys_renameat(
        &mut self,
        tid: Tid,
        olddirfd: i32,
        old: &str,
        newdirfd: i32,
        new: &str,
    ) -> SysResult {
        let obase = self.base_dir(tid, olddirfd)?;
        let nbase = self.base_dir(tid, newdirfd)?;
        let or = self.vfs.resolve(obase, old, false)?;
        let inode = or.inode.ok_or(Errno::Enoent)?;
        let nr = self.vfs.resolve(nbase, new, false)?;
        if let Some(existing) = nr.inode {
            if existing == inode {
                return Ok(0);
            }
            // Replace target (directories only onto empty directories).
            {
                let vfs = self.vfs.read();
                let enode = vfs.get(existing)?;
                if matches!(enode.kind, InodeKind::Dir(_)) && !enode.dir()?.is_empty() {
                    return Err(Errno::Enotempty.into());
                }
            }
            self.vfs.unlink_from(nr.parent, &nr.name)?;
        }
        self.vfs.link_into(nr.parent, &nr.name, inode)?;
        self.vfs.unlink_from(or.parent, &or.name)?;
        Ok(0)
    }

    /// `linkat`.
    pub fn sys_linkat(
        &mut self,
        tid: Tid,
        olddirfd: i32,
        old: &str,
        newdirfd: i32,
        new: &str,
    ) -> SysResult {
        let obase = self.base_dir(tid, olddirfd)?;
        let nbase = self.base_dir(tid, newdirfd)?;
        let or = self.vfs.resolve(obase, old, true)?;
        let inode = or.inode.ok_or(Errno::Enoent)?;
        if matches!(self.vfs.read().get(inode)?.kind, InodeKind::Dir(_)) {
            return Err(Errno::Eperm.into());
        }
        let nr = self.vfs.resolve(nbase, new, true)?;
        if nr.inode.is_some() {
            return Err(Errno::Eexist.into());
        }
        self.vfs.link_into(nr.parent, &nr.name, inode)?;
        Ok(0)
    }

    /// `symlinkat`.
    pub fn sys_symlinkat(&mut self, tid: Tid, target: &str, dirfd: i32, path: &str) -> SysResult {
        let base = self.base_dir(tid, dirfd)?;
        let r = self.vfs.resolve(base, path, false)?;
        if r.inode.is_some() {
            return Err(Errno::Eexist.into());
        }
        let now = self.clock.realtime_ns();
        let id = self
            .vfs
            .alloc(InodeKind::Symlink(target.to_string()), 0o777, now);
        self.vfs.link_into(r.parent, &r.name, id)?;
        self.vfs.write().get_mut(id)?.nlink = 1;
        Ok(0)
    }

    /// `readlinkat`.
    pub fn sys_readlinkat(&mut self, tid: Tid, dirfd: i32, path: &str) -> SysResult<Vec<u8>> {
        let base = self.base_dir(tid, dirfd)?;
        let r = self.vfs.resolve(base, path, false)?;
        let inode = r.inode.ok_or(Errno::Enoent)?;
        match &self.vfs.read().get(inode)?.kind {
            InodeKind::Symlink(t) => Ok(t.clone().into_bytes()),
            _ => Err(Errno::Einval.into()),
        }
    }

    /// `faccessat`: existence plus a permissive mode check (single-user
    /// model: everything readable/writable, nothing executable except
    /// directories).
    pub fn sys_faccessat(&mut self, tid: Tid, dirfd: i32, path: &str, _mode: i32) -> SysResult {
        let base = self.base_dir(tid, dirfd)?;
        let r = self.vfs.resolve(base, path, true)?;
        r.inode.ok_or(Errno::Enoent)?;
        Ok(0)
    }

    /// `fchmodat`.
    pub fn sys_fchmodat(&mut self, tid: Tid, dirfd: i32, path: &str, mode: u32) -> SysResult {
        let base = self.base_dir(tid, dirfd)?;
        let r = self.vfs.resolve(base, path, true)?;
        let inode = r.inode.ok_or(Errno::Enoent)?;
        self.vfs.write().get_mut(inode)?.perm = mode & 0o7777;
        Ok(0)
    }

    /// `fchmod`.
    pub fn sys_fchmod(&mut self, tid: Tid, fd: i32, mode: u32) -> SysResult {
        let file = self.file_of(tid, fd)?;
        let kind = file.lock_ok().kind.clone();
        match kind {
            FileKind::Regular(i) | FileKind::Dir(i) | FileKind::CharDev(i) => {
                self.vfs.write().get_mut(i)?.perm = mode & 0o7777;
                Ok(0)
            }
            _ => Err(Errno::Einval.into()),
        }
    }

    /// `fchownat`.
    pub fn sys_fchownat(
        &mut self,
        tid: Tid,
        dirfd: i32,
        path: &str,
        uid: u32,
        gid: u32,
        flags: i32,
    ) -> SysResult {
        let base = self.base_dir(tid, dirfd)?;
        let follow = flags & AT_SYMLINK_NOFOLLOW == 0;
        let r = self.vfs.resolve(base, path, follow)?;
        let inode = r.inode.ok_or(Errno::Enoent)?;
        let mut vfs = self.vfs.write();
        let node = vfs.get_mut(inode)?;
        if uid != u32::MAX {
            node.uid = uid;
        }
        if gid != u32::MAX {
            node.gid = gid;
        }
        Ok(0)
    }

    /// `ftruncate`.
    pub fn sys_ftruncate(&mut self, tid: Tid, fd: i32, len: u64) -> SysResult {
        let file = self.file_of(tid, fd)?;
        let kind = file.lock_ok().kind.clone();
        match kind {
            FileKind::Regular(inode) => {
                match &mut self.vfs.write().get_mut(inode)?.kind {
                    InodeKind::File(data) => data.resize(len as usize, 0),
                    _ => return Err(Errno::Einval.into()),
                }
                Ok(0)
            }
            _ => Err(Errno::Einval.into()),
        }
    }

    /// `truncate`.
    pub fn sys_truncate(&mut self, tid: Tid, path: &str, len: u64) -> SysResult {
        let base = self.task(tid)?.fs.lock_ok().cwd;
        let r = self.vfs.resolve(base, path, true)?;
        let inode = r.inode.ok_or(Errno::Enoent)?;
        match &mut self.vfs.write().get_mut(inode)?.kind {
            InodeKind::File(data) => {
                data.resize(len as usize, 0);
                Ok(0)
            }
            InodeKind::Dir(_) => Err(Errno::Eisdir.into()),
            _ => Err(Errno::Einval.into()),
        }
    }

    /// `getcwd`.
    pub fn sys_getcwd(&mut self, tid: Tid) -> SysResult<String> {
        let cwd = self.task(tid)?.fs.lock_ok().cwd;
        Ok(self.vfs.abs_path_of(cwd)?)
    }

    /// `chdir`.
    pub fn sys_chdir(&mut self, tid: Tid, path: &str) -> SysResult {
        let base = self.task(tid)?.fs.lock_ok().cwd;
        let r = self.vfs.resolve(base, path, true)?;
        let inode = r.inode.ok_or(Errno::Enoent)?;
        if !matches!(self.vfs.read().get(inode)?.kind, InodeKind::Dir(_)) {
            return Err(Errno::Enotdir.into());
        }
        self.task(tid)?.fs.lock_ok().cwd = inode;
        Ok(0)
    }

    /// `fchdir`.
    pub fn sys_fchdir(&mut self, tid: Tid, fd: i32) -> SysResult {
        let file = self.file_of(tid, fd)?;
        let kind = file.lock_ok().kind.clone();
        match kind {
            FileKind::Dir(inode) => {
                self.task(tid)?.fs.lock_ok().cwd = inode;
                Ok(0)
            }
            _ => Err(Errno::Enotdir.into()),
        }
    }

    /// `umask`.
    pub fn sys_umask(&mut self, tid: Tid, mask: u32) -> SysResult {
        let task = self.task(tid)?;
        let mut fs = task.fs.lock_ok();
        let old = fs.umask;
        fs.umask = mask & 0o777;
        Ok(old as i64)
    }

    /// `fsync`/`fdatasync`/`sync`: durable by construction.
    pub fn sys_fsync(&mut self, tid: Tid, fd: i32) -> SysResult {
        let _ = self.file_of(tid, fd)?;
        Ok(0)
    }

    /// `eventfd2`.
    pub fn sys_eventfd2(&mut self, tid: Tid, initval: u32, flags: i32) -> SysResult {
        let mut file = OpenFile::new(FileKind::EventFd, flags & O_NONBLOCK);
        file.counter = initval as u64;
        let task = self.task(tid)?;
        let fd = task
            .fdtable
            .lock_ok()
            .alloc(Arc::new(Mutex::new(file)), flags & O_CLOEXEC != 0)?;
        Ok(fd as i64)
    }
}

/// Out-of-band result data for `ioctl`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoctlOut {
    /// Plain integer result.
    Int(i32),
    /// `TIOCGWINSZ` window size.
    Winsize {
        /// Terminal rows.
        rows: u16,
        /// Terminal columns.
        cols: u16,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SysError;
    use wali_abi::flags::{O_RDWR, O_WRONLY, S_IFMT, S_IFREG};

    fn kp() -> (Kernel, Tid) {
        let mut k = Kernel::new();
        let tid = k.spawn_process();
        (k, tid)
    }

    #[test]
    fn open_write_read_round_trip() {
        let (mut k, tid) = kp();
        let fd = k
            .sys_openat(tid, AT_FDCWD, "/tmp/file.txt", O_CREAT | O_RDWR, 0o644)
            .unwrap();
        assert_eq!(k.sys_write(tid, fd, b"hello world").unwrap(), 11);
        k.sys_lseek(tid, fd, 0, SEEK_SET).unwrap();
        let mut buf = [0u8; 32];
        assert_eq!(k.sys_read(tid, fd, &mut buf).unwrap(), 11);
        assert_eq!(&buf[..11], b"hello world");
        k.sys_close(tid, fd).unwrap();
        assert_eq!(
            k.sys_read(tid, fd, &mut buf),
            Err(SysError::Err(Errno::Ebadf))
        );
    }

    #[test]
    fn o_excl_and_o_trunc() {
        let (mut k, tid) = kp();
        let fd = k
            .sys_openat(tid, AT_FDCWD, "/tmp/x", O_CREAT | O_RDWR, 0o644)
            .unwrap();
        k.sys_write(tid, fd, b"data").unwrap();
        k.sys_close(tid, fd).unwrap();
        assert_eq!(
            k.sys_openat(tid, AT_FDCWD, "/tmp/x", O_CREAT | O_EXCL | O_RDWR, 0o644),
            Err(SysError::Err(Errno::Eexist))
        );
        let fd = k
            .sys_openat(tid, AT_FDCWD, "/tmp/x", O_TRUNC | O_RDWR, 0)
            .unwrap();
        let st = k.sys_fstat(tid, fd).unwrap();
        assert_eq!(st.st_size, 0);
    }

    #[test]
    fn append_mode_writes_at_end() {
        let (mut k, tid) = kp();
        let fd = k
            .sys_openat(tid, AT_FDCWD, "/tmp/log", O_CREAT | O_RDWR, 0o644)
            .unwrap();
        k.sys_write(tid, fd, b"aaa").unwrap();
        let fd2 = k
            .sys_openat(tid, AT_FDCWD, "/tmp/log", O_APPEND | O_WRONLY, 0)
            .unwrap();
        k.sys_write(tid, fd2, b"bbb").unwrap();
        assert_eq!(k.vfs.read_file("/tmp/log").unwrap(), b"aaabbb");
    }

    #[test]
    fn pread_pwrite_do_not_move_offset() {
        let (mut k, tid) = kp();
        let fd = k
            .sys_openat(tid, AT_FDCWD, "/tmp/f", O_CREAT | O_RDWR, 0o644)
            .unwrap();
        k.sys_write(tid, fd, b"0123456789").unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(k.sys_pread(tid, fd, &mut buf, 2).unwrap(), 4);
        assert_eq!(&buf, b"2345");
        k.sys_pwrite(tid, fd, b"XY", 0).unwrap();
        // Sequential offset still at 10.
        assert_eq!(k.sys_lseek(tid, fd, 0, SEEK_CUR).unwrap(), 10);
        assert_eq!(k.vfs.read_file("/tmp/f").unwrap(), b"XY23456789");
    }

    #[test]
    fn pipes_block_eof_and_epipe() {
        let (mut k, tid) = kp();
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let mut buf = [0u8; 8];
        assert!(matches!(
            k.sys_read(tid, r, &mut buf),
            Err(SysError::Block(_))
        ));
        k.sys_write(tid, w, b"ping").unwrap();
        assert_eq!(k.sys_read(tid, r, &mut buf).unwrap(), 4);
        k.sys_close(tid, w).unwrap();
        assert_eq!(
            k.sys_read(tid, r, &mut buf).unwrap(),
            0,
            "EOF after writer closes"
        );
        // Reopen scenario: EPIPE + SIGPIPE when readers are gone.
        let (r2, w2) = k.sys_pipe2(tid, 0).unwrap();
        k.sys_close(tid, r2).unwrap();
        assert_eq!(k.sys_write(tid, w2, b"x"), Err(SysError::Err(Errno::Epipe)));
        assert!(k
            .sys_rt_sigpending(tid)
            .unwrap()
            .contains(Signal::Sigpipe.number()));
    }

    #[test]
    fn pipe_nonblock_returns_eagain() {
        let (mut k, tid) = kp();
        let (r, _w) = k.sys_pipe2(tid, O_NONBLOCK).unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(
            k.sys_read(tid, r, &mut buf),
            Err(SysError::Err(Errno::Eagain))
        );
    }

    #[test]
    fn dup_shares_offset_dup3_replaces() {
        let (mut k, tid) = kp();
        let fd = k
            .sys_openat(tid, AT_FDCWD, "/tmp/f", O_CREAT | O_RDWR, 0o644)
            .unwrap();
        k.sys_write(tid, fd, b"abcdef").unwrap();
        let dup = k.sys_dup(tid, fd).unwrap() as i32;
        k.sys_lseek(tid, fd, 2, SEEK_SET).unwrap();
        let mut buf = [0u8; 2];
        assert_eq!(k.sys_read(tid, dup, &mut buf).unwrap(), 2);
        assert_eq!(&buf, b"cd", "dup shares file offset");
        k.sys_dup3(tid, fd, 0, 0).unwrap();
        assert_eq!(k.sys_read(tid, 0, &mut buf).unwrap(), 2);
    }

    #[test]
    fn stdout_writes_reach_console() {
        let (mut k, tid) = kp();
        k.sys_write(tid, 1, b"hello console\n").unwrap();
        assert_eq!(k.take_console(), b"hello console\n");
    }

    #[test]
    fn dev_nodes_behave() {
        let (mut k, tid) = kp();
        let null = k.sys_openat(tid, AT_FDCWD, "/dev/null", O_RDWR, 0).unwrap();
        let mut buf = [1u8; 4];
        assert_eq!(k.sys_read(tid, null, &mut buf).unwrap(), 0);
        assert_eq!(k.sys_write(tid, null, b"discard").unwrap(), 7);
        let zero = k
            .sys_openat(tid, AT_FDCWD, "/dev/zero", O_RDONLY, 0)
            .unwrap();
        assert_eq!(k.sys_read(tid, zero, &mut buf).unwrap(), 4);
        assert_eq!(buf, [0u8; 4]);
        let rand = k
            .sys_openat(tid, AT_FDCWD, "/dev/urandom", O_RDONLY, 0)
            .unwrap();
        assert_eq!(k.sys_read(tid, rand, &mut buf).unwrap(), 4);
    }

    #[test]
    fn proc_self_mem_reads_are_denied() {
        let (mut k, tid) = kp();
        let fd = k
            .sys_openat(tid, AT_FDCWD, "/proc/self/mem", O_RDWR, 0)
            .unwrap();
        let mut buf = [0u8; 4];
        assert_eq!(
            k.sys_read(tid, fd, &mut buf),
            Err(SysError::Err(Errno::Eio))
        );
        assert_eq!(k.sys_write(tid, fd, b"pwn"), Err(SysError::Err(Errno::Eio)));
    }

    #[test]
    fn proc_status_is_generated() {
        let (mut k, tid) = kp();
        let fd = k
            .sys_openat(tid, AT_FDCWD, "/proc/self/status", O_RDONLY, 0)
            .unwrap();
        let mut buf = [0u8; 256];
        let n = k.sys_read(tid, fd, &mut buf).unwrap() as usize;
        let text = String::from_utf8_lossy(&buf[..n]);
        assert!(text.contains(&format!("Pid:\t{tid}")), "{text}");
    }

    #[test]
    fn getdents_enumerates_with_cursor() {
        let (mut k, tid) = kp();
        for name in ["a", "b", "c"] {
            let fd = k
                .sys_openat(
                    tid,
                    AT_FDCWD,
                    &format!("/tmp/{name}"),
                    O_CREAT | O_RDWR,
                    0o644,
                )
                .unwrap();
            k.sys_close(tid, fd).unwrap();
        }
        let dfd = k
            .sys_openat(tid, AT_FDCWD, "/tmp", O_DIRECTORY | O_RDONLY, 0)
            .unwrap();
        let ents = k.sys_getdents(tid, dfd, 4096).unwrap();
        let names: Vec<&str> = ents.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec![".", "..", "a", "b", "c"]);
        // Cursor exhausted.
        assert!(k.sys_getdents(tid, dfd, 4096).unwrap().is_empty());
        // Small buffer: partial enumeration resumes.
        k.sys_lseek(tid, dfd, 0, SEEK_SET).unwrap();
        let first = k.sys_getdents(tid, dfd, 64).unwrap();
        assert!(!first.is_empty() && first.len() < 5);
        let rest = k.sys_getdents(tid, dfd, 4096).unwrap();
        assert_eq!(first.len() + rest.len(), 5);
    }

    #[test]
    fn mkdir_unlink_rename_semantics() {
        let (mut k, tid) = kp();
        k.sys_mkdirat(tid, AT_FDCWD, "/tmp/dir", 0o755).unwrap();
        assert_eq!(
            k.sys_mkdirat(tid, AT_FDCWD, "/tmp/dir", 0o755),
            Err(SysError::Err(Errno::Eexist))
        );
        let fd = k
            .sys_openat(tid, AT_FDCWD, "/tmp/dir/f", O_CREAT | O_RDWR, 0o644)
            .unwrap();
        k.sys_close(tid, fd).unwrap();
        // rmdir of non-empty dir fails.
        assert_eq!(
            k.sys_unlinkat(tid, AT_FDCWD, "/tmp/dir", AT_REMOVEDIR),
            Err(SysError::Err(Errno::Enotempty))
        );
        // unlink of dir without AT_REMOVEDIR fails.
        assert_eq!(
            k.sys_unlinkat(tid, AT_FDCWD, "/tmp/dir", 0),
            Err(SysError::Err(Errno::Eisdir))
        );
        k.sys_renameat(tid, AT_FDCWD, "/tmp/dir/f", AT_FDCWD, "/tmp/g")
            .unwrap();
        assert!(k.vfs.read_file("/tmp/g").is_ok());
        k.sys_unlinkat(tid, AT_FDCWD, "/tmp/dir", AT_REMOVEDIR)
            .unwrap();
        assert_eq!(
            k.sys_faccessat(tid, AT_FDCWD, "/tmp/dir", 0),
            Err(SysError::Err(Errno::Enoent))
        );
    }

    #[test]
    fn symlink_readlink() {
        let (mut k, tid) = kp();
        k.sys_symlinkat(tid, "/etc/passwd", AT_FDCWD, "/tmp/pw")
            .unwrap();
        assert_eq!(
            k.sys_readlinkat(tid, AT_FDCWD, "/tmp/pw").unwrap(),
            b"/etc/passwd"
        );
        // stat follows, lstat does not.
        let st = k.sys_fstatat(tid, AT_FDCWD, "/tmp/pw", 0).unwrap();
        assert_eq!(st.st_mode & S_IFMT, S_IFREG);
        let lst = k
            .sys_fstatat(tid, AT_FDCWD, "/tmp/pw", AT_SYMLINK_NOFOLLOW)
            .unwrap();
        assert_eq!(lst.st_mode & S_IFMT, wali_abi::flags::S_IFLNK);
    }

    #[test]
    fn chdir_getcwd() {
        let (mut k, tid) = kp();
        k.sys_mkdirat(tid, AT_FDCWD, "/tmp/wd", 0o755).unwrap();
        k.sys_chdir(tid, "/tmp/wd").unwrap();
        assert_eq!(k.sys_getcwd(tid).unwrap(), "/tmp/wd");
        // Relative open now lands in /tmp/wd.
        let fd = k
            .sys_openat(tid, AT_FDCWD, "rel.txt", O_CREAT | O_RDWR, 0o644)
            .unwrap();
        k.sys_close(tid, fd).unwrap();
        assert!(k.vfs.read_file("/tmp/wd/rel.txt").is_ok());
        assert_eq!(
            k.sys_chdir(tid, "/etc/passwd"),
            Err(SysError::Err(Errno::Enotdir))
        );
    }

    #[test]
    fn fcntl_dup_and_flags() {
        let (mut k, tid) = kp();
        let fd = k
            .sys_openat(tid, AT_FDCWD, "/tmp/f", O_CREAT | O_RDWR, 0o644)
            .unwrap();
        let dup = k.sys_fcntl(tid, fd, F_DUPFD, 10).unwrap();
        assert!(dup >= 10);
        assert_eq!(k.sys_fcntl(tid, fd, F_GETFD, 0).unwrap(), 0);
        k.sys_fcntl(tid, fd, F_SETFD, FD_CLOEXEC).unwrap();
        assert_eq!(k.sys_fcntl(tid, fd, F_GETFD, 0).unwrap(), FD_CLOEXEC as i64);
        k.sys_fcntl(tid, fd, F_SETFL, O_NONBLOCK).unwrap();
        assert_ne!(
            k.sys_fcntl(tid, fd, F_GETFL, 0).unwrap() & O_NONBLOCK as i64,
            0
        );
    }

    #[test]
    fn ioctl_winsize_and_fionread() {
        let (mut k, tid) = kp();
        assert_eq!(
            k.sys_ioctl(tid, 1, TIOCGWINSZ).unwrap(),
            IoctlOut::Winsize { rows: 24, cols: 80 }
        );
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        k.sys_write(tid, w, b"12345").unwrap();
        assert_eq!(k.sys_ioctl(tid, r, FIONREAD).unwrap(), IoctlOut::Int(5));
        let fd = k
            .sys_openat(tid, AT_FDCWD, "/tmp/f", O_CREAT | O_RDWR, 0o644)
            .unwrap();
        assert_eq!(
            k.sys_ioctl(tid, fd, TIOCGWINSZ),
            Err(SysError::Err(Errno::Enotty))
        );
    }

    #[test]
    fn eventfd_counts() {
        let (mut k, tid) = kp();
        let fd = k.sys_eventfd2(tid, 3, 0).unwrap() as i32;
        let mut buf = [0u8; 8];
        assert_eq!(k.sys_read(tid, fd, &mut buf).unwrap(), 8);
        assert_eq!(u64::from_le_bytes(buf), 3);
        assert!(matches!(
            k.sys_read(tid, fd, &mut buf),
            Err(SysError::Block(_))
        ));
        k.sys_write(tid, fd, &5u64.to_le_bytes()).unwrap();
        k.sys_write(tid, fd, &2u64.to_le_bytes()).unwrap();
        k.sys_read(tid, fd, &mut buf).unwrap();
        assert_eq!(u64::from_le_bytes(buf), 7);
    }

    #[test]
    fn umask_applies_to_create() {
        let (mut k, tid) = kp();
        assert_eq!(k.sys_umask(tid, 0o077).unwrap(), 0o022);
        let fd = k
            .sys_openat(tid, AT_FDCWD, "/tmp/f", O_CREAT | O_RDWR, 0o666)
            .unwrap();
        let st = k.sys_fstat(tid, fd).unwrap();
        assert_eq!(st.st_mode & 0o777, 0o600);
    }

    #[test]
    fn truncate_extends_and_shrinks() {
        let (mut k, tid) = kp();
        let fd = k
            .sys_openat(tid, AT_FDCWD, "/tmp/t", O_CREAT | O_RDWR, 0o644)
            .unwrap();
        k.sys_write(tid, fd, b"hello").unwrap();
        k.sys_ftruncate(tid, fd, 2).unwrap();
        assert_eq!(k.vfs.read_file("/tmp/t").unwrap(), b"he");
        k.sys_truncate(tid, "/tmp/t", 4).unwrap();
        assert_eq!(k.vfs.read_file("/tmp/t").unwrap(), b"he\0\0");
    }

    #[test]
    fn hard_links_share_content() {
        let (mut k, tid) = kp();
        let fd = k
            .sys_openat(tid, AT_FDCWD, "/tmp/a", O_CREAT | O_RDWR, 0o644)
            .unwrap();
        k.sys_write(tid, fd, b"shared").unwrap();
        k.sys_linkat(tid, AT_FDCWD, "/tmp/a", AT_FDCWD, "/tmp/b")
            .unwrap();
        assert_eq!(k.vfs.read_file("/tmp/b").unwrap(), b"shared");
        let st = k.sys_fstatat(tid, AT_FDCWD, "/tmp/b", 0).unwrap();
        assert_eq!(st.st_nlink, 2);
        k.sys_unlinkat(tid, AT_FDCWD, "/tmp/a", 0).unwrap();
        assert_eq!(k.vfs.read_file("/tmp/b").unwrap(), b"shared");
    }
}
