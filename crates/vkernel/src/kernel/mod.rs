//! The kernel object: tasks, processes, signals, timers and scheduling
//! hooks. File, socket and memory syscalls live in the sibling submodules
//! as further `impl Kernel` blocks.

pub mod epoll;
pub mod fs;
pub mod sock;

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use wali_abi::flags::{
    w_exitcode, w_termsig, CLONE_FILES, CLONE_FS, CLONE_SIGHAND, CLONE_THREAD, CLONE_VM, WNOHANG,
};
use wali_abi::layout::{WaliSigaction, WaliUtsname};
use wali_abi::signals::{SigSet, Signal, SIG_BLOCK, SIG_SETMASK, SIG_UNBLOCK};
use wali_abi::Errno;

use crate::clock::Clock;
use crate::fd::{FdTable, FileKind, FileRef, OpenFile};
use crate::lockorder::LockClass;
use crate::pipe::Pipe;
use crate::proc::{ProcIndex, TaskHot};
use crate::signal::{disposition, Disposition, PendingSet, SigHandlers};
use crate::slab::ObjSlab;
use crate::socket::Socket;
use crate::sync::{shared, HintFlag, MutexExt};
use crate::task::{FsInfo, Pid, Rusage, Task, TaskState, Tid};
use crate::vfs::{Vfs, VfsShard};
use crate::wait::{Channel, WaitShard, WaitStats};
use crate::{block, block_until, MmId, SysResult};

/// What the embedder must do about a deliverable signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignalDelivery {
    /// Run the registered handler (Wasm function index in the action),
    /// with the given signal number; the mask to restore afterwards is
    /// included.
    Handler {
        /// Signal number.
        signo: i32,
        /// The registered action.
        action: WaliSigaction,
        /// Mask to restore when the handler returns.
        old_mask: SigSet,
    },
    /// The whole process was killed by this signal; stop executing it.
    Killed {
        /// Signal number.
        signo: i32,
    },
}

/// The deterministic Linux model.
pub struct Kernel {
    /// The filesystem, behind its reader/writer shard.
    pub vfs: VfsShard,
    /// Virtual time.
    pub clock: Clock,
    tasks: BTreeMap<Tid, Task>,
    next_tid: Tid,
    next_mm: u64,
    pub(crate) pipes: ObjSlab<Pipe>,
    pub(crate) sockets: ObjSlab<Socket>,
    pub(crate) epolls: ObjSlab<epoll::Epoll>,
    pub(crate) addr_registry: HashMap<String, usize>,
    futexes: HashMap<(MmId, u32), VecDeque<Tid>>,
    /// Waitqueues: blocked tasks parked on wait channels, behind their
    /// own shard lock (innermost in the ordering DAG).
    pub(crate) waits: WaitShard,
    /// The sharded tid → hot-state mirror (maintained on spawn/fork/
    /// clone/reap; read lock-cheaply by the embedder's fast paths).
    pub(crate) procs: ProcIndex,
    rng_state: u64,
    /// Captured console (tty) output.
    pub console: Vec<u8>,
    /// Count of syscalls entered (all tasks). Atomic and `Arc`-shared so
    /// the per-syscall tick ([`Kernel::syscall_meter`]) never takes the
    /// kernel lock.
    pub syscalls: Arc<std::sync::atomic::AtomicU64>,
    /// Epoll ready-ring mode: readiness transitions are routed to
    /// per-instance ready rings and `epoll_wait` pops O(ready) entries.
    /// Off (`WALI_NO_READY=1` / [`Kernel::set_ready`]) falls back to
    /// the full interest-list scan.
    pub(crate) ready: bool,
}

/// Cloneable handles onto the kernel's shards: everything the
/// embedder's uncontended fast path needs to run a pipe/socket syscall
/// without the big kernel lock. Fetched once per context
/// ([`Kernel::handles`]) while the kernel lock is already held.
#[derive(Clone, Debug)]
pub struct KernelHandles {
    /// The pipe slab.
    pub pipes: ObjSlab<Pipe>,
    /// The socket slab.
    pub socks: ObjSlab<Socket>,
    /// The waitqueue shard.
    pub waits: WaitShard,
    /// The process index.
    pub procs: ProcIndex,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl Kernel {
    /// Boots a kernel with the standard filesystem layout and an init
    /// task (pid 1).
    pub fn new() -> Kernel {
        let vfs = Vfs::with_std_layout();
        let init = Task::init(vfs.root);
        let mut tasks = BTreeMap::new();
        tasks.insert(1, init);
        let k = Kernel {
            vfs: VfsShard::new(vfs),
            clock: Clock::new(),
            tasks,
            next_tid: 2,
            next_mm: 2,
            pipes: ObjSlab::new(LockClass::Object),
            sockets: ObjSlab::new(LockClass::Object),
            epolls: ObjSlab::new(LockClass::Epoll),
            addr_registry: HashMap::new(),
            futexes: HashMap::new(),
            waits: WaitShard::new(),
            procs: ProcIndex::new(),
            rng_state: 0x9e37_79b9_7f4a_7c15,
            console: Vec::new(),
            syscalls: Arc::new(std::sync::atomic::AtomicU64::new(0)),
            ready: std::env::var_os("WALI_NO_READY").is_none(),
        };
        // The waitqueue's readiness router resolves epoll ids against
        // the slab directly (hub → ring push without the kernel lock).
        k.waits.set_epolls(k.epolls.clone());
        k.register_hot(1);
        k
    }

    /// Toggles the epoll ready-ring (`true` = ring, `false` = the
    /// fallback full scan). Flip only while no `epoll_wait` is parked:
    /// the two modes subscribe different wakeup channels.
    pub fn set_ready(&mut self, on: bool) {
        self.ready = on;
    }

    /// Whether the epoll ready-ring path is on.
    pub fn ready_on(&self) -> bool {
        self.ready
    }

    /// Cloneable handles onto the kernel's shards (for the embedder's
    /// uncontended fast path). Cheap: five `Arc` clones.
    pub fn handles(&self) -> KernelHandles {
        KernelHandles {
            pipes: self.pipes.clone(),
            socks: self.sockets.clone(),
            waits: self.waits.clone(),
            procs: self.procs.clone(),
        }
    }

    /// Mirrors `tid`'s hot state into the sharded process index.
    fn register_hot(&self, tid: Tid) {
        if let Some(t) = self.tasks.get(&tid) {
            self.procs.insert(
                tid,
                TaskHot {
                    tgid: t.tgid,
                    fdtable: t.fdtable.clone(),
                    sig_hint: t.sig_hint.clone(),
                    mm: t.mm,
                },
            );
        }
    }

    /// Per-syscall bookkeeping: tick the clock and count the entry.
    /// Both pieces are lock-free shards; embedders on the hot path use
    /// [`Kernel::syscall_meter`] to tick without the kernel lock at all.
    pub fn enter_syscall(&self) {
        self.clock.tick();
        self.syscalls
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Hands out `(clock, counter)` handles for lock-free per-syscall
    /// ticking — the clock shard in action: one atomic add each, no
    /// kernel lock on any syscall entry.
    pub fn syscall_meter(&self) -> (Clock, Arc<std::sync::atomic::AtomicU64>) {
        (self.clock.clone(), self.syscalls.clone())
    }

    /// Count of syscalls entered (all tasks).
    pub fn syscall_count(&self) -> u64 {
        self.syscalls.load(std::sync::atomic::Ordering::Relaxed)
    }

    // --- Waitqueues --------------------------------------------------------

    /// Subscribes `tid` to a wait channel (embedder-visible for layered
    /// APIs that block on kernel state, e.g. `poll`/`epoll_wait`).
    pub fn wait_subscribe(&mut self, tid: Tid, ch: Channel) {
        self.waits.subscribe(tid, ch);
    }

    /// Posts a wakeup on a channel (mostly internal; public so layered
    /// subsystems can participate in the protocol).
    pub fn wait_post(&mut self, ch: Channel) -> usize {
        self.waits.post(ch)
    }

    /// Drains the tasks woken since the last drain, in wake order.
    pub fn take_woken(&mut self) -> Vec<Tid> {
        self.waits.take_woken()
    }

    /// Drains the channels whose posts woke `tid` since its last drain
    /// (empty for direct wakes — callers treat that as "re-check
    /// everything"). Batched-syscall retries use this to complete the
    /// operations whose wakeup actually arrived first, so ring CQE
    /// order follows the wakeup path rather than submission order.
    pub fn take_fired(&mut self, tid: Tid) -> Vec<Channel> {
        self.waits.take_fired(tid)
    }

    /// Arms fired-channel recording for `tid` until its next
    /// [`Kernel::take_fired`] drain. Only armed tasks pay the per-wake
    /// fired-log bookkeeping, so `wali_ring_enter` calls this each time
    /// it parks and everyone else's wakes stay record-free.
    pub fn track_fired(&mut self, tid: Tid) {
        self.waits.track_fired(tid);
    }

    /// Drops every wait subscription of `tid` without waking it. The
    /// embedder calls this when it re-queues a task for a reason the
    /// kernel cannot see (deadline lapse), so no stale channel entry can
    /// fire a spurious wakeup into a later, unrelated park.
    pub fn wait_cancel(&mut self, tid: Tid) {
        self.waits.unsubscribe(tid);
    }

    /// True when `tid` parked on at least one wait channel.
    pub fn task_waits(&self, tid: Tid) -> bool {
        self.waits.is_subscribed(tid)
    }

    /// True when a posted wakeup is waiting to be drained.
    pub fn has_woken(&self) -> bool {
        self.waits.has_woken()
    }

    /// Waitqueue counters (benchmarks and tests).
    pub fn wait_stats(&self) -> WaitStats {
        self.waits.stats()
    }

    /// Lock-free handle onto the waitqueue's woken hint: SMP workers
    /// poll it between slices without taking the kernel lock and drain
    /// [`Kernel::take_woken`] (under the lock) only when it reads true.
    pub fn woken_hint(&self) -> std::sync::Arc<std::sync::atomic::AtomicBool> {
        self.waits.woken_hint()
    }

    /// Subscribes `tid` to the readiness channels of each `(fd, events)`
    /// pair — the blocking half of `poll`/`select`/`epoll_wait`. Unknown
    /// or always-ready fd kinds contribute no channel (the caller's
    /// readiness scan already returned their state). A signal wakes the
    /// poller too, like the EINTR path on Linux.
    pub fn wait_on_fds(&mut self, tid: Tid, fds: &[(i32, i16)]) {
        let mut chans: Vec<Channel> = Vec::new();
        for &(fd, events) in fds {
            self.fd_wait_channels(tid, fd, events, &mut chans);
        }
        for ch in chans {
            self.waits.subscribe(tid, ch);
        }
        self.waits.subscribe(tid, Channel::Signal(tid));
    }

    /// Collects the wait channels that can change fd readiness for the
    /// given `poll`-style event mask. Always-ready kinds (regular files,
    /// directories) contribute nothing.
    pub(crate) fn fd_wait_channels(&self, tid: Tid, fd: i32, events: i16, out: &mut Vec<Channel>) {
        let Ok(task) = self.task(tid) else { return };
        let file = {
            let table = task.fdtable.lock_ok();
            let Ok(entry) = table.get(fd) else { return };
            entry.file.clone()
        };
        self.desc_wait_channels(&file, events, out);
    }

    /// Same, addressed by open file description (the epoll interest list
    /// is description-keyed, so its channel walk must not depend on fd
    /// numbers still being open).
    pub(crate) fn desc_wait_channels(&self, file: &FileRef, events: i16, out: &mut Vec<Channel>) {
        use wali_abi::flags::{POLLIN, POLLOUT};
        let kind = file.lock_ok().kind.clone();
        let file_key = Arc::as_ptr(file) as usize;
        match kind {
            // POLLHUP/POLLERR are reported regardless of the requested
            // events (a zero mask is the classic watch-for-hangup idiom),
            // and hangups post on the same channels as data transitions —
            // so pipe/socket pollers subscribe unconditionally. A data
            // wakeup the poller did not ask for is merely spurious: the
            // retry re-scans readiness and re-parks.
            FileKind::PipeRead(id) => {
                out.push(Channel::PipeReadable(id));
            }
            FileKind::PipeWrite(id) => {
                out.push(Channel::PipeWritable(id));
            }
            FileKind::Socket(id) => {
                out.push(Channel::SockReadable(id));
                out.push(Channel::SockSpace(id));
                if events & POLLOUT != 0 {
                    // Writability = space in the peer's receive buffer.
                    if let Ok(Some(peer)) = self.with_sock(id, |s| match s.state {
                        crate::socket::SockState::Connected { peer } => Some(peer),
                        _ => None,
                    }) {
                        out.push(Channel::SockSpace(peer));
                    }
                }
            }
            FileKind::EventFd if events & POLLIN != 0 => {
                out.push(Channel::EventFd(file_key));
            }
            FileKind::Epoll(id) => {
                if self.ready {
                    // Ring mode: every readiness transition of the
                    // interest set is routed to the instance's ready
                    // channel by the hub — one channel, any size.
                    out.push(Channel::EpollReady(id));
                } else {
                    // Polling an epoll fd: ready when its interest set
                    // is; interest-list edits change that too.
                    let descs = self.epoll_interest_descs(id);
                    for (ifile, ievents) in &descs {
                        self.desc_wait_channels(ifile, *ievents, out);
                    }
                    self.epoll_descs_recycle(id, descs);
                    out.push(Channel::EpollCtl(id));
                }
            }
            _ => {}
        }
    }

    /// Sum of the event generations of the wait channels behind a
    /// description for the given poll-events — moves whenever a new
    /// transition (post) happened on any of them. Edge-triggered epoll
    /// uses it as its re-arm signal.
    pub(crate) fn desc_event_gen(&self, file: &FileRef, events: i16) -> u64 {
        let mut chans: Vec<Channel> = Vec::new();
        self.desc_wait_channels(file, events, &mut chans);
        chans.into_iter().map(|ch| self.waits.generation(ch)).sum()
    }

    /// Closes a dying task's descriptors eagerly (Linux closes fds at
    /// exit, not at reap): drops this task's reference to its fd table
    /// and, when it was the last holder, releases every description so
    /// pipe/socket peers observe EOF/EPIPE — and get their wakeups.
    fn release_task_files(&mut self, tid: Tid) {
        // Drop the fast-path index entry first: it holds a clone of the
        // fd-table `Arc`, and the last-holder unwrap below must see this
        // task's reference count only.
        self.procs.remove(tid);
        let Some(task) = self.tasks.get_mut(&tid) else {
            return;
        };
        let table = std::mem::replace(&mut task.fdtable, shared(FdTable::new()));
        if let Ok(cell) = Arc::try_unwrap(table) {
            let mut table = cell.into_inner().unwrap_or_else(|p| p.into_inner());
            for entry in table.drain() {
                self.release_if_last(entry);
            }
        }
    }

    /// Fetches a task.
    pub fn task(&self, tid: Tid) -> Result<&Task, Errno> {
        self.tasks.get(&tid).ok_or(Errno::Esrch)
    }

    /// Fetches a task mutably.
    pub fn task_mut(&mut self, tid: Tid) -> Result<&mut Task, Errno> {
        self.tasks.get_mut(&tid).ok_or(Errno::Esrch)
    }

    /// All live tids (diagnostics, schedulers).
    pub fn tids(&self) -> Vec<Tid> {
        self.tasks.keys().copied().collect()
    }

    /// Spawns a fresh process (child of init) with stdio wired to the
    /// console tty. This is how the WALI runner creates an application's
    /// initial process.
    pub fn spawn_process(&mut self) -> Tid {
        let tid = self.next_tid;
        self.next_tid += 1;
        let mm = MmId(self.next_mm);
        self.next_mm += 1;

        let mut fdtable = FdTable::new();
        let tty = self
            .vfs
            .resolve(self.vfs.root, "/dev/tty", true)
            .ok()
            .and_then(|r| r.inode)
            .expect("std layout has /dev/tty");
        for _ in 0..3 {
            let file: FileRef = Arc::new(Mutex::new(OpenFile::new(FileKind::CharDev(tty), 0)));
            fdtable.alloc(file, false).expect("empty table");
        }

        let task = Task {
            tid,
            tgid: tid,
            ppid: 1,
            pgid: tid,
            sid: 1,
            state: TaskState::Running,
            fdtable: shared(fdtable),
            fs: shared(FsInfo {
                cwd: self.vfs.root,
                umask: 0o022,
            }),
            sighand: shared(SigHandlers::new()),
            shared_pending: shared(PendingSet::default()),
            pending: PendingSet::default(),
            sigmask: SigSet::EMPTY,
            saved_sigmask: None,
            mm,
            uid: 1000,
            euid: 1000,
            gid: 1000,
            egid: 1000,
            children: Vec::new(),
            clear_child_tid: 0,
            rusage: Rusage::default(),
            alarm_deadline: None,
            futex_woken: false,
            exit_code: None,
            sig_hint: HintFlag::new(),
        };
        self.tasks.get_mut(&1).expect("init").children.push(tid);
        self.tasks.insert(tid, task);
        self.register_hot(tid);
        tid
    }

    // --- Process lifecycle -------------------------------------------------

    /// `fork`: new process duplicating the caller (fd table copied with
    /// shared descriptions, fresh address space id).
    pub fn sys_fork(&mut self, tid: Tid) -> SysResult {
        let parent = self.task(tid)?.clone();
        let child_tid = self.next_tid;
        self.next_tid += 1;
        let mm = MmId(self.next_mm);
        self.next_mm += 1;

        let child = Task {
            tid: child_tid,
            tgid: child_tid,
            ppid: parent.tgid,
            pgid: parent.pgid,
            sid: parent.sid,
            state: TaskState::Running,
            fdtable: shared(parent.fdtable.lock_ok().fork_copy()),
            fs: shared(parent.fs.lock_ok().clone()),
            sighand: shared(parent.sighand.lock_ok().clone()),
            shared_pending: shared(PendingSet::default()),
            pending: PendingSet::default(),
            sigmask: parent.sigmask,
            saved_sigmask: None,
            mm,
            uid: parent.uid,
            euid: parent.euid,
            gid: parent.gid,
            egid: parent.egid,
            children: Vec::new(),
            clear_child_tid: 0,
            rusage: Rusage::default(),
            alarm_deadline: None,
            futex_woken: false,
            exit_code: None,
            sig_hint: HintFlag::new(),
        };
        self.tasks.insert(child_tid, child);
        self.task_mut(tid)?.children.push(child_tid);
        self.register_hot(child_tid);
        Ok(child_tid as i64)
    }

    /// `clone`: thread or process creation per the flag set (§3.1). The
    /// embedder decides what to do with the engine-side state; the kernel
    /// only manages task identity and sharing.
    pub fn sys_clone(&mut self, tid: Tid, flags: u64) -> SysResult {
        let parent = self.task(tid)?.clone();
        let child_tid = self.next_tid;
        self.next_tid += 1;

        let is_thread = flags & CLONE_THREAD != 0;
        if is_thread && flags & (CLONE_VM | CLONE_SIGHAND) != (CLONE_VM | CLONE_SIGHAND) {
            // Linux requires CLONE_THREAD ⊆ CLONE_SIGHAND ⊆ CLONE_VM.
            return Err(Errno::Einval.into());
        }

        let mm = if flags & CLONE_VM != 0 {
            parent.mm
        } else {
            let mm = MmId(self.next_mm);
            self.next_mm += 1;
            mm
        };
        let fdtable = if flags & CLONE_FILES != 0 {
            parent.fdtable.clone()
        } else {
            shared(parent.fdtable.lock_ok().fork_copy())
        };
        let fs = if flags & CLONE_FS != 0 {
            parent.fs.clone()
        } else {
            shared(parent.fs.lock_ok().clone())
        };
        let sighand = if flags & CLONE_SIGHAND != 0 {
            parent.sighand.clone()
        } else {
            shared(parent.sighand.lock_ok().clone())
        };
        let (tgid, ppid, shared_pending) = if is_thread {
            (parent.tgid, parent.ppid, parent.shared_pending.clone())
        } else {
            (child_tid, parent.tgid, shared(PendingSet::default()))
        };

        let child = Task {
            tid: child_tid,
            tgid,
            ppid,
            pgid: parent.pgid,
            sid: parent.sid,
            state: TaskState::Running,
            fdtable,
            fs,
            sighand,
            shared_pending,
            pending: PendingSet::default(),
            sigmask: parent.sigmask,
            saved_sigmask: None,
            mm,
            uid: parent.uid,
            euid: parent.euid,
            gid: parent.gid,
            egid: parent.egid,
            children: Vec::new(),
            clear_child_tid: 0,
            rusage: Rusage::default(),
            alarm_deadline: None,
            futex_woken: false,
            exit_code: None,
            sig_hint: HintFlag::new(),
        };
        self.tasks.insert(child_tid, child);
        if !is_thread {
            self.task_mut(tid)?.children.push(child_tid);
        }
        self.register_hot(child_tid);
        Ok(child_tid as i64)
    }

    /// `exit_group`: terminates every task in the caller's thread group.
    pub fn sys_exit_group(&mut self, tid: Tid, code: i32) -> SysResult {
        let tgid = self.task(tid)?.tgid;
        self.terminate_group(tgid, w_exitcode(code), Some(code));
        Ok(0)
    }

    /// `exit`: terminates one thread (whole group if it is the last).
    pub fn sys_exit_thread(&mut self, tid: Tid, code: i32) -> SysResult {
        let tgid = self.task(tid)?.tgid;
        let group: Vec<Tid> = self.group_tids(tgid);
        // Futex-wake the clear_child_tid word (pthread_join protocol).
        let (ctid, mm) = {
            let t = self.task(tid)?;
            (t.clear_child_tid, t.mm)
        };
        if ctid != 0 {
            self.futex_wake_at(mm, ctid, usize::MAX);
        }
        if group.len() == 1 {
            self.terminate_group(tgid, w_exitcode(code), Some(code));
        } else {
            let t = self.task_mut(tid)?;
            t.state = TaskState::Dead;
            t.exit_code = Some(code);
            // Drop the thread's fd-table reference (shared tables survive
            // until the last thread exits) and its wait subscriptions.
            self.release_task_files(tid);
            self.waits.unsubscribe(tid);
        }
        Ok(0)
    }

    fn group_tids(&self, tgid: Pid) -> Vec<Tid> {
        self.tasks
            .values()
            .filter(|t| t.tgid == tgid && !matches!(t.state, TaskState::Dead))
            .map(|t| t.tid)
            .collect()
    }

    /// Marks a whole thread group zombie with `status` and signals the
    /// parent with SIGCHLD; children are reparented to init. Every dying
    /// task's descriptors are released (peers observe EOF/EPIPE and their
    /// waitqueues fire), parked siblings are woken so the embedder can
    /// finalize them, and the parent's `wait4` channel is posted.
    fn terminate_group(&mut self, tgid: Pid, status: i32, code: Option<i32>) {
        let tids = self.group_tids(tgid);
        for t in &tids {
            if let Some(task) = self.tasks.get(t) {
                task.sig_hint.set(true);
            }
        }
        let mut ppid = 1;
        let mut orphans = Vec::new();
        for t in &tids {
            if let Some(task) = self.tasks.get_mut(t) {
                if *t == tgid {
                    task.state = TaskState::Zombie(status);
                    ppid = task.ppid;
                    task.exit_code = code;
                    orphans.append(&mut task.children);
                } else {
                    task.state = TaskState::Dead;
                }
            }
        }
        for orphan in orphans {
            if let Some(t) = self.tasks.get_mut(&orphan) {
                t.ppid = 1;
            }
            self.tasks.get_mut(&1).expect("init").children.push(orphan);
        }
        for t in &tids {
            self.release_task_files(*t);
        }
        for t in &tids {
            self.waits.wake(*t);
        }
        self.waits.post(Channel::Child(ppid));
        let _ = self.send_signal_to_process(ppid, Signal::Sigchld.number());
    }

    /// `wait4(pid, options)`: reaps a zombie child; returns
    /// `(pid, status)`. Blocks unless `WNOHANG`.
    pub fn sys_wait4(&mut self, tid: Tid, pid: i32, options: i32) -> SysResult<(Pid, i32)> {
        let me = self.task(tid)?.tgid;
        let children = self.task(tid)?.children.clone();
        if children.is_empty() {
            return Err(Errno::Echild.into());
        }
        let candidates: Vec<Pid> = children
            .iter()
            .copied()
            .filter(|&c| match pid {
                -1 => true,
                0 => self.tasks.get(&c).map(|t| t.pgid) == self.tasks.get(&me).map(|t| t.pgid),
                p if p > 0 => c == p,
                pg => self.tasks.get(&c).map(|t| t.pgid == -pg).unwrap_or(false),
            })
            .collect();
        if candidates.is_empty() {
            return Err(Errno::Echild.into());
        }
        for c in &candidates {
            if let Some(TaskState::Zombie(status)) = self.tasks.get(c).map(|t| t.state.clone()) {
                // Reap: remove the zombie and its dead siblings.
                let dead: Vec<Tid> = self
                    .tasks
                    .values()
                    .filter(|t| t.tgid == *c)
                    .map(|t| t.tid)
                    .collect();
                for d in dead {
                    self.tasks.remove(&d);
                    self.procs.remove(d);
                }
                self.task_mut(tid)?.children.retain(|x| x != c);
                return Ok((*c, status));
            }
        }
        if options & WNOHANG != 0 {
            return Ok((0, 0));
        }
        // Park until a child changes state or a signal arrives.
        self.waits.subscribe(tid, Channel::Child(me));
        self.waits.subscribe(tid, Channel::Signal(tid));
        Err(block())
    }

    /// `execve` kernel-side effects: CLOEXEC fds closed, caught signal
    /// handlers reset. (The engine swaps the program.) The swept entries
    /// are released like any close — pipe/socket peers observe the
    /// hangup and their waitqueues fire.
    pub fn sys_execve(&mut self, tid: Tid) -> SysResult {
        let task = self.task(tid)?;
        let swept = task.fdtable.lock_ok().close_cloexec();
        task.sighand.lock_ok().reset_for_exec();
        for entry in swept {
            self.release_if_last(entry);
        }
        Ok(0)
    }

    // --- Identity ----------------------------------------------------------

    /// `getpid`.
    pub fn sys_getpid(&self, tid: Tid) -> SysResult {
        Ok(self.task(tid)?.tgid as i64)
    }

    /// `getppid`.
    pub fn sys_getppid(&self, tid: Tid) -> SysResult {
        Ok(self.task(tid)?.ppid as i64)
    }

    /// `gettid`.
    pub fn sys_gettid(&self, tid: Tid) -> SysResult {
        Ok(self.task(tid)?.tid as i64)
    }

    /// `setpgid`.
    pub fn sys_setpgid(&mut self, tid: Tid, pid: i32, pgid: i32) -> SysResult {
        let target = if pid == 0 { self.task(tid)?.tgid } else { pid };
        let pgid = if pgid == 0 { target } else { pgid };
        if pgid < 0 {
            return Err(Errno::Einval.into());
        }
        let t = self.task_mut(target)?;
        t.pgid = pgid;
        Ok(0)
    }

    /// `getpgid`.
    pub fn sys_getpgid(&self, tid: Tid, pid: i32) -> SysResult {
        let target = if pid == 0 { tid } else { pid };
        Ok(self.task(target)?.pgid as i64)
    }

    /// `setsid`.
    pub fn sys_setsid(&mut self, tid: Tid) -> SysResult {
        let t = self.task_mut(tid)?;
        if t.pgid == t.tgid {
            return Err(Errno::Eperm.into());
        }
        t.sid = t.tgid;
        t.pgid = t.tgid;
        Ok(t.sid as i64)
    }

    /// `getsid`.
    pub fn sys_getsid(&self, tid: Tid, pid: i32) -> SysResult {
        let target = if pid == 0 { tid } else { pid };
        Ok(self.task(target)?.sid as i64)
    }

    /// `set_tid_address`.
    pub fn sys_set_tid_address(&mut self, tid: Tid, addr: u32) -> SysResult {
        let t = self.task_mut(tid)?;
        t.clear_child_tid = addr;
        Ok(t.tid as i64)
    }

    // --- Signals -----------------------------------------------------------

    /// `rt_sigaction`: stores the action, returns the previous one.
    pub fn sys_rt_sigaction(
        &mut self,
        tid: Tid,
        signo: i32,
        new: Option<WaliSigaction>,
    ) -> SysResult<WaliSigaction> {
        let sig = Signal::from_number(signo);
        if (!(1..64).contains(&signo) || sig.map(|s| !s.catchable()).unwrap_or(false))
            && new.is_some()
        {
            return Err(Errno::Einval.into());
        }
        let task = self.task(tid)?;
        let mut handlers = task.sighand.lock_ok();
        let old = handlers.get(signo);
        if let Some(action) = new {
            if sig.map(|s| !s.catchable()).unwrap_or(false) {
                return Err(Errno::Einval.into());
            }
            handlers.set(signo, action);
        }
        Ok(old)
    }

    /// `rt_sigprocmask`.
    pub fn sys_rt_sigprocmask(
        &mut self,
        tid: Tid,
        how: i32,
        set: Option<SigSet>,
    ) -> SysResult<SigSet> {
        let task = self.task_mut(tid)?;
        let old = task.sigmask;
        if let Some(arg) = set {
            if ![SIG_BLOCK, SIG_UNBLOCK, SIG_SETMASK].contains(&how) {
                return Err(Errno::Einval.into());
            }
            task.sigmask = old.apply(how, arg).ok_or(Errno::Einval)?;
            // Unblocking may expose pending signals; re-raise the hint so
            // the safepoint right after this syscall delivers them
            // (paper §3.3: the extra post-sigprocmask safepoint).
            if !task.pending.is_empty() || !task.shared_pending.lock_ok().is_empty() {
                task.sig_hint.set(true);
            }
        }
        Ok(old)
    }

    /// Applies the temporary signal mask of `ppoll`/`epoll_pwait`
    /// atomically with respect to the wait: the first entry of the call
    /// saves the caller's mask and installs `mask`; blocked-call retries
    /// (a saved mask is already present) leave both untouched, so the
    /// swap happens exactly once per wait no matter how often the task
    /// re-parks. Signals the temporary mask newly unblocks raise the
    /// delivery hint immediately, like the post-`sigprocmask` safepoint.
    pub fn sigmask_swap_for_wait(&mut self, tid: Tid, mask: SigSet) {
        let Ok(task) = self.task_mut(tid) else { return };
        if task.saved_sigmask.is_some() {
            return;
        }
        task.saved_sigmask = Some(task.sigmask);
        task.sigmask = mask;
        if !task.pending.is_empty() || !task.shared_pending.lock_ok().is_empty() {
            task.sig_hint.set(true);
        }
    }

    /// Restores the mask saved by [`Kernel::sigmask_swap_for_wait`] when
    /// the wait returns (ready, timeout or error — any non-`Block`
    /// outcome). A signal that arrived masked during the wait becomes
    /// deliverable here, at the safepoint straight after the syscall —
    /// exactly once, exactly after return, the `ppoll` contract.
    pub fn sigmask_restore_after_wait(&mut self, tid: Tid) {
        let Ok(task) = self.task_mut(tid) else { return };
        let Some(old) = task.saved_sigmask.take() else {
            return;
        };
        task.sigmask = old;
        if !task.pending.is_empty() || !task.shared_pending.lock_ok().is_empty() {
            task.sig_hint.set(true);
        }
    }

    /// `rt_sigpending`.
    pub fn sys_rt_sigpending(&self, tid: Tid) -> SysResult<SigSet> {
        let t = self.task(tid)?;
        Ok(SigSet(
            t.pending.mask().0 | t.shared_pending.lock_ok().mask().0,
        ))
    }

    /// `kill(pid, sig)`.
    pub fn sys_kill(&mut self, _tid: Tid, pid: i32, signo: i32) -> SysResult {
        if signo == 0 {
            // Existence probe.
            return if self.tasks.values().any(|t| t.tgid == pid && !t.exited()) {
                Ok(0)
            } else {
                Err(Errno::Esrch.into())
            };
        }
        if !(1..64).contains(&signo) {
            return Err(Errno::Einval.into());
        }
        if pid > 0 {
            self.send_signal_to_process(pid, signo)?;
        } else if pid == -1 {
            let targets: Vec<Pid> = self
                .tasks
                .values()
                .filter(|t| t.tgid != 1 && !t.exited())
                .map(|t| t.tgid)
                .collect();
            for t in targets {
                let _ = self.send_signal_to_process(t, signo);
            }
        } else {
            // Process group.
            let pgid = if pid == 0 {
                self.task(_tid)?.pgid
            } else {
                -pid
            };
            let targets: Vec<Pid> = self
                .tasks
                .values()
                .filter(|t| t.pgid == pgid && !t.exited())
                .map(|t| t.tgid)
                .collect();
            if targets.is_empty() {
                return Err(Errno::Esrch.into());
            }
            for t in targets {
                let _ = self.send_signal_to_process(t, signo);
            }
        }
        Ok(0)
    }

    /// `tgkill(tgid, tid, sig)`: thread-directed signal.
    pub fn sys_tgkill(&mut self, _me: Tid, tgid: Pid, tid: Tid, signo: i32) -> SysResult {
        let t = self.task_mut(tid)?;
        if t.tgid != tgid {
            return Err(Errno::Esrch.into());
        }
        if !(1..64).contains(&signo) {
            return Err(Errno::Einval.into());
        }
        t.pending.add(signo);
        t.sig_hint.set(true);
        self.waits.post(Channel::Signal(tid));
        Ok(0)
    }

    /// Generates `signo` for process `pid` (stage 2 of the lifecycle).
    pub fn send_signal_to_process(&mut self, pid: Pid, signo: i32) -> Result<(), Errno> {
        let main = self.tasks.get(&pid).ok_or(Errno::Esrch)?;
        if main.tgid != pid || main.exited() {
            return Err(Errno::Esrch);
        }
        main.shared_pending.lock_ok().add(signo);
        for t in self.group_tids(pid) {
            if let Some(task) = self.tasks.get(&t) {
                task.sig_hint.set(true);
            }
            // Signal arrival is a wake-up source: parked EINTR-able calls
            // and `pause`/`sigtimedwait` waiters must retry.
            self.waits.post(Channel::Signal(t));
        }
        // SIGCONT resumes stopped tasks at generation time, like Linux.
        if signo == Signal::Sigcont.number() {
            let tids = self.group_tids(pid);
            for t in tids {
                if let Some(task) = self.tasks.get_mut(&t) {
                    if task.state == TaskState::Stopped {
                        task.state = TaskState::Running;
                    }
                }
            }
        }
        Ok(())
    }

    /// Picks the next deliverable signal for `tid`, applying dispositions:
    /// ignored signals are consumed silently; fatal ones terminate the
    /// process; stop/continue adjust task states; handlers are returned to
    /// the embedder for execution at a safepoint (§3.3 stage 4).
    pub fn next_signal(&mut self, tid: Tid) -> Option<SignalDelivery> {
        loop {
            let (signo, action, old_mask) = {
                let task = self.tasks.get_mut(&tid)?;
                if task.exited() {
                    return None;
                }
                let mask = task.sigmask;
                let signo = task
                    .pending
                    .take_deliverable(mask)
                    .or_else(|| task.shared_pending.lock_ok().take_deliverable(mask))?;
                let action = task.sighand.lock_ok().get(signo);
                (signo, action, mask)
            };
            match disposition(signo, action) {
                Disposition::Ignore => continue,
                Disposition::Continue => continue,
                Disposition::Stop => {
                    let tgid = self.tasks.get(&tid)?.tgid;
                    for t in self.group_tids(tgid) {
                        if let Some(task) = self.tasks.get_mut(&t) {
                            task.state = TaskState::Stopped;
                        }
                    }
                    continue;
                }
                Disposition::Kill => {
                    let tgid = self.tasks.get(&tid)?.tgid;
                    self.terminate_group(tgid, w_termsig(signo), None);
                    return Some(SignalDelivery::Killed { signo });
                }
                Disposition::Handler(action) => {
                    let task = self.tasks.get_mut(&tid)?;
                    // Block the handler's mask plus the signal itself
                    // (unless SA_NODEFER) for the handler's duration.
                    let mut during = SigSet(old_mask.0 | action.mask);
                    if action.flags & wali_abi::signals::SA_NODEFER == 0 {
                        during.insert(signo);
                    }
                    task.sigmask = during;
                    if action.flags & wali_abi::signals::SA_RESETHAND != 0 {
                        task.sighand.lock_ok().set(signo, WaliSigaction::default());
                    }
                    return Some(SignalDelivery::Handler {
                        signo,
                        action,
                        old_mask,
                    });
                }
            }
        }
    }

    /// Restores the mask after a handler completes.
    pub fn signal_return(&mut self, tid: Tid, old_mask: SigSet) {
        if let Some(task) = self.tasks.get_mut(&tid) {
            task.sigmask = old_mask;
            // Previously-masked pending signals may now be deliverable.
            if !task.pending.is_empty() || !task.shared_pending.lock_ok().is_empty() {
                task.sig_hint.set(true);
            }
        }
    }

    /// True if an unblocked signal is pending (EINTR condition for
    /// blocking syscalls).
    pub fn has_pending_signal(&self, tid: Tid) -> bool {
        let Ok(task) = self.task(tid) else {
            return false;
        };
        let mask = task.sigmask;
        let pend = SigSet(task.pending.mask().0 | task.shared_pending.lock_ok().mask().0);
        SigSet(pend.0 & !mask.0).lowest().is_some()
    }

    /// `pause`: blocks until a signal arrives.
    pub fn sys_pause(&mut self, tid: Tid) -> SysResult {
        if self.has_pending_signal(tid) {
            return Err(Errno::Eintr.into());
        }
        self.waits.subscribe(tid, Channel::Signal(tid));
        Err(block())
    }

    /// `alarm(seconds)`: schedules SIGALRM; returns remaining seconds of a
    /// previous alarm.
    pub fn sys_alarm(&mut self, tid: Tid, seconds: u32) -> SysResult {
        let now = self.clock.monotonic_ns();
        let task = self.task_mut(tid)?;
        let prev = task
            .alarm_deadline
            .map(|d| d.saturating_sub(now).div_ceil(1_000_000_000))
            .unwrap_or(0);
        task.alarm_deadline = if seconds == 0 {
            None
        } else {
            Some(now + seconds as u64 * 1_000_000_000)
        };
        Ok(prev as i64)
    }

    /// Fires expired timers; the scheduler calls this after advancing the
    /// clock.
    pub fn fire_timers(&mut self) {
        let now = self.clock.monotonic_ns();
        let expired: Vec<Pid> = self
            .tasks
            .values()
            .filter(|t| t.alarm_deadline.map(|d| d <= now).unwrap_or(false))
            .map(|t| t.tgid)
            .collect();
        for pid in expired {
            for t in self.group_tids(pid) {
                if let Some(task) = self.tasks.get_mut(&t) {
                    task.alarm_deadline = None;
                }
            }
            let _ = self.send_signal_to_process(pid, Signal::Sigalrm.number());
        }
    }

    /// Earliest wake-up deadline over all tasks (sleep or alarm), used by
    /// the scheduler when everything is blocked.
    pub fn next_timer_deadline(&self) -> Option<u64> {
        self.tasks.values().filter_map(|t| t.alarm_deadline).min()
    }

    // --- Futex -------------------------------------------------------------

    /// `futex(FUTEX_WAIT)`: the embedder has already compared the word
    /// (cooperative scheduling makes the check race-free) and passes
    /// whether it matched.
    pub fn sys_futex_wait(
        &mut self,
        tid: Tid,
        mm: MmId,
        addr: u32,
        value_matches: bool,
        deadline: Option<u64>,
    ) -> SysResult {
        let task = self.task_mut(tid)?;
        if task.futex_woken {
            task.futex_woken = false;
            if let Some(q) = self.futexes.get_mut(&(mm, addr)) {
                q.retain(|t| *t != tid)
            }
            return Ok(0);
        }
        if !value_matches {
            return Err(Errno::Eagain.into());
        }
        if let Some(d) = deadline {
            if self.clock.monotonic_ns() >= d {
                if let Some(q) = self.futexes.get_mut(&(mm, addr)) {
                    q.retain(|t| *t != tid)
                }
                return Err(Errno::Etimedout.into());
            }
        }
        let q = self.futexes.entry((mm, addr)).or_default();
        if !q.contains(&tid) {
            q.push_back(tid);
        }
        self.waits.subscribe(tid, Channel::Futex(mm, addr));
        // Parity with every other blocking site: signal generation
        // re-queues the waiter (its retry re-parks if the word is still
        // unchanged, but killed/terminated tasks get finalized promptly).
        self.waits.subscribe(tid, Channel::Signal(tid));
        Err(match deadline {
            Some(d) => block_until(d),
            None => block(),
        })
    }

    /// `futex(FUTEX_WAKE)`: wakes up to `count` waiters, returns the
    /// number woken.
    pub fn sys_futex_wake(&mut self, mm: MmId, addr: u32, count: usize) -> SysResult {
        Ok(self.futex_wake_at(mm, addr, count) as i64)
    }

    fn futex_wake_at(&mut self, mm: MmId, addr: u32, count: usize) -> usize {
        let Some(q) = self.futexes.get_mut(&(mm, addr)) else {
            return 0;
        };
        let mut woken = 0;
        let mut wake_tids = Vec::new();
        while woken < count {
            let Some(t) = q.pop_front() else { break };
            if let Some(task) = self.tasks.get_mut(&t) {
                task.futex_woken = true;
                woken += 1;
                wake_tids.push(t);
            }
        }
        for t in wake_tids {
            self.waits.wake(t);
        }
        woken
    }

    // --- Time --------------------------------------------------------------

    /// `clock_gettime`.
    pub fn sys_clock_gettime(&self, clock_id: i32) -> SysResult<u64> {
        use wali_abi::flags::*;
        match clock_id {
            CLOCK_REALTIME => Ok(self.clock.realtime_ns()),
            CLOCK_MONOTONIC
            | CLOCK_MONOTONIC_RAW
            | CLOCK_PROCESS_CPUTIME_ID
            | CLOCK_THREAD_CPUTIME_ID => Ok(self.clock.monotonic_ns()),
            _ => Err(Errno::Einval.into()),
        }
    }

    /// `nanosleep`: blocks until the virtual deadline.
    pub fn sys_nanosleep(&mut self, tid: Tid, duration_ns: u64) -> SysResult {
        if self.has_pending_signal(tid) {
            return Err(Errno::Eintr.into());
        }
        let deadline = self.clock.monotonic_ns() + duration_ns;
        // The deadline is the primary wake-up; a signal ends the sleep
        // early (EINTR on the retry).
        self.waits.subscribe(tid, Channel::Signal(tid));
        Err(block_until(deadline))
    }

    /// Retry entry for `nanosleep`: completes once the deadline passed.
    pub fn sys_nanosleep_retry(&mut self, tid: Tid, deadline: u64) -> SysResult {
        if self.clock.monotonic_ns() >= deadline {
            return Ok(0);
        }
        if self.has_pending_signal(tid) {
            return Err(Errno::Eintr.into());
        }
        self.waits.subscribe(tid, Channel::Signal(tid));
        Err(block_until(deadline))
    }

    // --- Misc --------------------------------------------------------------

    /// `uname`.
    pub fn sys_uname(&self) -> WaliUtsname {
        WaliUtsname {
            sysname: "Linux".into(),
            nodename: "wali-vm".into(),
            release: "6.1.0-wali".into(),
            version: "#1 SMP wali-rs".into(),
            machine: "wasm32".into(),
            domainname: "(none)".into(),
        }
    }

    /// `getrandom`: deterministic xorshift stream.
    pub fn sys_getrandom(&mut self, out: &mut [u8]) -> SysResult {
        for chunk in out.chunks_mut(8) {
            self.rng_state ^= self.rng_state << 13;
            self.rng_state ^= self.rng_state >> 7;
            self.rng_state ^= self.rng_state << 17;
            let bytes = self.rng_state.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Ok(out.len() as i64)
    }

    /// Virtual CPU-time accounting hook for `getrusage`/`times`.
    pub fn account_user_time(&mut self, tid: Tid, ns: u64) {
        if let Ok(t) = self.task_mut(tid) {
            t.rusage.utime_ns += ns;
        }
    }

    /// Snapshot of a task's accounting.
    pub fn rusage_of(&self, tid: Tid) -> Rusage {
        self.task(tid).map(|t| t.rusage).unwrap_or_default()
    }

    /// Takes the captured console output.
    pub fn take_console(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.console)
    }

    pub(crate) fn alloc_pipe(&mut self) -> usize {
        self.pipes.insert(Pipe::new())
    }

    /// Runs `f` under the per-pipe lock (first-free-slot reuse keeps the
    /// ids bit-identical to the pre-shard `Vec<Option<Pipe>>` table).
    /// Takes `&self`: the closure may subscribe waiters through
    /// `self.waits` (Object rank 20 → Waits rank 40), but must not call
    /// back into pipe/socket accessors (equal rank is a violation).
    pub(crate) fn with_pipe<R>(
        &self,
        id: usize,
        f: impl FnOnce(&mut Pipe) -> R,
    ) -> Result<R, Errno> {
        let p = self.pipes.get(id).ok_or(Errno::Ebadf)?;
        let mut g = p.lock_ok();
        Ok(f(&mut g))
    }

    pub(crate) fn alloc_socket(&mut self, sock: Socket) -> usize {
        self.sockets.insert(sock)
    }

    /// Runs `f` under the per-socket lock. Same rules as
    /// [`Kernel::with_pipe`]; two-socket flows (send to a connected
    /// peer) must take the locks one after the other, never nested.
    pub(crate) fn with_sock<R>(
        &self,
        id: usize,
        f: impl FnOnce(&mut Socket) -> R,
    ) -> Result<R, Errno> {
        let s = self.sockets.get(id).ok_or(Errno::Ebadf)?;
        let mut g = s.lock_ok();
        Ok(f(&mut g))
    }

    // --- Teardown audit ----------------------------------------------------

    /// Audits kernel state after a full run, for leak detection.
    ///
    /// Every task exit releases its descriptor table
    /// (`Kernel::release_task_files`), which frees pipe/socket/epoll
    /// slots when the last reference drops; `wait4` removes reaped tasks
    /// from the task map; wakeups unsubscribe their waiters. So once the
    /// embedder has run a workload to completion, the kernel should hold
    /// nothing but init and unreaped zombie groups (the embedder never
    /// reaps the main process — its status *is* the run outcome). Any
    /// other residue is a leak: a pipe slot still allocated, a wait
    /// subscription never dropped, a live futex waiter stranded on a
    /// word. The fuzzer's liveness oracle calls this at reap.
    pub fn leak_audit(&self) -> LeakReport {
        let live_tasks: Vec<Tid> = self
            .tasks
            .values()
            .filter(|t| t.tid != 1 && !t.exited())
            .map(|t| t.tid)
            .collect();
        let zombie_tasks: Vec<Tid> = self
            .tasks
            .values()
            .filter(|t| t.exited())
            .map(|t| t.tid)
            .collect();
        // Futex queues may retain tids of tasks that died while queued
        // (a later wake pops and skips them); only entries for tasks
        // that still exist and have not exited indicate a stranded
        // waiter.
        let futex_waiters = self
            .futexes
            .values()
            .flatten()
            .filter(|t| {
                self.tasks
                    .get(t)
                    .map(|task| !task.exited())
                    .unwrap_or(false)
            })
            .count();
        LeakReport {
            live_tasks,
            zombie_tasks,
            open_pipes: self.pipes.live(),
            open_sockets: self.sockets.live(),
            open_epolls: self.epolls.live(),
            wait_subscriptions: self.waits.subscribed_count(),
            undrained_wakeups: self.waits.has_woken(),
            futex_waiters,
            hub_watchers: self.waits.hub_entries(),
        }
    }
}

/// What [`Kernel::leak_audit`] found still allocated at teardown.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LeakReport {
    /// Non-init tasks still running or stopped (never exited).
    pub live_tasks: Vec<Tid>,
    /// Zombie/dead tasks still in the task map (unreaped). The main
    /// process's group is expected here; anything else means a parent
    /// exited without reaping — informational, not counted as a leak.
    pub zombie_tasks: Vec<Tid>,
    /// Pipe slots still allocated.
    pub open_pipes: usize,
    /// Socket slots still allocated.
    pub open_sockets: usize,
    /// Epoll instances still allocated.
    pub open_epolls: usize,
    /// Wait-channel subscriptions never unsubscribed.
    pub wait_subscriptions: usize,
    /// Posted wakeups the embedder never drained (informational: the
    /// final exit can post wakes the run loop has no reason to drain).
    pub undrained_wakeups: bool,
    /// Futex-queue entries whose waiter is still a live task.
    pub futex_waiters: usize,
    /// Ready-hub routing entries never unregistered (every epoll
    /// registration removes its channel wiring at CTL_DEL/close/sweep;
    /// residue means a ring push could target a freed instance).
    pub hub_watchers: usize,
}

impl LeakReport {
    /// True when nothing leaked: no live task stranded, no fd-backed
    /// resource slot allocated, no wait subscription or live futex
    /// waiter left behind. Unreaped zombies and undrained wakeups are
    /// tolerated (see the field docs).
    pub fn is_clean(&self) -> bool {
        self.live_tasks.is_empty()
            && self.open_pipes == 0
            && self.open_sockets == 0
            && self.open_epolls == 0
            && self.wait_subscriptions == 0
            && self.futex_waiters == 0
            && self.hub_watchers == 0
    }

    /// Human-readable one-line summary of what leaked (empty if clean).
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if !self.live_tasks.is_empty() {
            parts.push(format!("live tasks {:?}", self.live_tasks));
        }
        if self.open_pipes != 0 {
            parts.push(format!("{} pipe(s)", self.open_pipes));
        }
        if self.open_sockets != 0 {
            parts.push(format!("{} socket(s)", self.open_sockets));
        }
        if self.open_epolls != 0 {
            parts.push(format!("{} epoll(s)", self.open_epolls));
        }
        if self.wait_subscriptions != 0 {
            parts.push(format!("{} wait subscription(s)", self.wait_subscriptions));
        }
        if self.futex_waiters != 0 {
            parts.push(format!("{} futex waiter(s)", self.futex_waiters));
        }
        if self.hub_watchers != 0 {
            parts.push(format!("{} ready-hub watcher(s)", self.hub_watchers));
        }
        parts.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SysError;
    use wali_abi::flags::{wexitstatus, wifexited, wifsignaled, wtermsig, CLONE_PTHREAD};
    use wali_abi::signals::SIG_IGN;

    fn kernel_with_proc() -> (Kernel, Tid) {
        let mut k = Kernel::new();
        let tid = k.spawn_process();
        (k, tid)
    }

    #[test]
    fn spawn_process_has_stdio() {
        let (k, tid) = kernel_with_proc();
        let t = k.task(tid).unwrap();
        assert_eq!(t.fdtable.lock_ok().open_count(), 3);
        assert_eq!(t.tgid, tid);
        assert_eq!(t.ppid, 1);
    }

    #[test]
    fn fork_wait_reaps_zombie() {
        let (mut k, tid) = kernel_with_proc();
        let child = k.sys_fork(tid).unwrap() as Tid;
        // Child exits 7; parent waits.
        k.sys_exit_group(child, 7).unwrap();
        let (pid, status) = k.sys_wait4(tid, -1, 0).unwrap();
        assert_eq!(pid, child);
        assert!(wifexited(status));
        assert_eq!(wexitstatus(status), 7);
        // Child is gone.
        assert!(k.task(child).is_err());
        // Second wait: no children left.
        assert_eq!(k.sys_wait4(tid, -1, 0), Err(SysError::Err(Errno::Echild)));
    }

    #[test]
    fn wait_blocks_until_child_exits() {
        let (mut k, tid) = kernel_with_proc();
        let child = k.sys_fork(tid).unwrap() as Tid;
        assert!(matches!(
            k.sys_wait4(tid, child, 0),
            Err(SysError::Block(_))
        ));
        assert_eq!(k.sys_wait4(tid, child, WNOHANG).unwrap(), (0, 0));
        k.sys_exit_group(child, 0).unwrap();
        assert_eq!(k.sys_wait4(tid, child, 0).unwrap().0, child);
    }

    #[test]
    fn parent_gets_sigchld() {
        let (mut k, tid) = kernel_with_proc();
        let child = k.sys_fork(tid).unwrap() as Tid;
        k.sys_exit_group(child, 0).unwrap();
        let pending = k.sys_rt_sigpending(tid).unwrap();
        assert!(pending.contains(Signal::Sigchld.number()));
        // Default disposition ignores it silently.
        assert_eq!(k.next_signal(tid), None);
    }

    #[test]
    fn clone_thread_shares_fdtable_and_tgid() {
        let (mut k, tid) = kernel_with_proc();
        let t2 = k.sys_clone(tid, CLONE_PTHREAD).unwrap() as Tid;
        assert_eq!(k.task(t2).unwrap().tgid, tid);
        // fd opened by one thread is visible in the other.
        let (r, _w) = k.sys_pipe2(tid, 0).unwrap();
        assert!(k.task(t2).unwrap().fdtable.lock_ok().get(r).is_ok());
    }

    #[test]
    fn clone_process_does_not_share_fdtable() {
        let (mut k, tid) = kernel_with_proc();
        let child = k.sys_clone(tid, 0).unwrap() as Tid;
        assert_ne!(k.task(child).unwrap().tgid, tid);
        let (r, _w) = k.sys_pipe2(tid, 0).unwrap();
        assert!(k.task(child).unwrap().fdtable.lock_ok().get(r).is_err());
    }

    #[test]
    fn clone_thread_requires_vm_and_sighand() {
        let (mut k, tid) = kernel_with_proc();
        assert_eq!(
            k.sys_clone(tid, CLONE_THREAD),
            Err(SysError::Err(Errno::Einval)),
            "CLONE_THREAD without CLONE_VM|CLONE_SIGHAND is EINVAL"
        );
    }

    #[test]
    fn fatal_signal_kills_process() {
        let (mut k, tid) = kernel_with_proc();
        k.sys_kill(tid, tid, Signal::Sigterm.number()).unwrap();
        match k.next_signal(tid) {
            Some(SignalDelivery::Killed { signo }) => assert_eq!(signo, 15),
            other => panic!("{other:?}"),
        }
        assert!(k.task(tid).unwrap().exited());
        // Parent (init) can reap with the termsig status.
        let (pid, status) = k.sys_wait4(1, tid, 0).unwrap();
        assert_eq!(pid, tid);
        assert!(wifsignaled(status));
        assert_eq!(wtermsig(status), 15);
    }

    #[test]
    fn ignored_signal_is_consumed() {
        let (mut k, tid) = kernel_with_proc();
        k.sys_rt_sigaction(
            tid,
            Signal::Sigterm.number(),
            Some(WaliSigaction {
                handler: SIG_IGN,
                flags: 0,
                mask: 0,
            }),
        )
        .unwrap();
        k.sys_kill(tid, tid, Signal::Sigterm.number()).unwrap();
        assert_eq!(k.next_signal(tid), None);
        assert!(!k.task(tid).unwrap().exited());
    }

    #[test]
    fn handler_delivery_blocks_signal_until_return() {
        let (mut k, tid) = kernel_with_proc();
        let action = WaliSigaction {
            handler: 42,
            flags: 0,
            mask: 0,
        };
        k.sys_rt_sigaction(tid, 10, Some(action)).unwrap();
        k.sys_kill(tid, tid, 10).unwrap();
        let old_mask = match k.next_signal(tid) {
            Some(SignalDelivery::Handler {
                signo,
                action: a,
                old_mask,
            }) => {
                assert_eq!(signo, 10);
                assert_eq!(a.handler, 42);
                old_mask
            }
            other => panic!("{other:?}"),
        };
        // The signal itself is blocked during its handler (no SA_NODEFER):
        k.sys_kill(tid, tid, 10).unwrap();
        assert_eq!(k.next_signal(tid), None, "deferred during handler");
        k.signal_return(tid, old_mask);
        assert!(matches!(
            k.next_signal(tid),
            Some(SignalDelivery::Handler { .. })
        ));
    }

    #[test]
    fn sigprocmask_blocks_and_unblocks() {
        let (mut k, tid) = kernel_with_proc();
        let action = WaliSigaction {
            handler: 7,
            flags: 0,
            mask: 0,
        };
        k.sys_rt_sigaction(tid, 12, Some(action)).unwrap();
        let mut set = SigSet::EMPTY;
        set.insert(12);
        k.sys_rt_sigprocmask(tid, SIG_BLOCK, Some(set)).unwrap();
        k.sys_kill(tid, tid, 12).unwrap();
        assert_eq!(k.next_signal(tid), None, "blocked");
        assert!(k.sys_rt_sigpending(tid).unwrap().contains(12));
        k.sys_rt_sigprocmask(tid, SIG_UNBLOCK, Some(set)).unwrap();
        assert!(matches!(
            k.next_signal(tid),
            Some(SignalDelivery::Handler { .. })
        ));
    }

    #[test]
    fn wait_sigmask_swap_is_idempotent_and_restores_once() {
        // The ppoll/epoll_pwait mask protocol: entry swaps once (retries
        // are no-ops), restore returns the original mask and raises the
        // delivery hint for signals that became deliverable.
        let (mut k, tid) = kernel_with_proc();
        let action = WaliSigaction {
            handler: 5,
            flags: 0,
            mask: 0,
        };
        k.sys_rt_sigaction(tid, 10, Some(action)).unwrap();
        let mut temp = SigSet::EMPTY;
        temp.insert(10);
        k.sigmask_swap_for_wait(tid, temp);
        // A retry must not clobber the saved mask with the temp one.
        k.sigmask_swap_for_wait(tid, temp);
        assert_eq!(k.task(tid).unwrap().sigmask, temp);
        // Signal 10 arrives during the wait: masked, stays pending.
        k.sys_kill(tid, tid, 10).unwrap();
        assert_eq!(k.next_signal(tid), None, "masked during the wait");
        // The wait returns: original (empty) mask restored, delivery due.
        k.sigmask_restore_after_wait(tid);
        assert_eq!(k.task(tid).unwrap().sigmask, SigSet::EMPTY);
        assert!(k.task(tid).unwrap().sig_hint.get(), "delivery hinted");
        // A second restore without a swap is a no-op.
        k.sigmask_restore_after_wait(tid);
        assert_eq!(k.task(tid).unwrap().sigmask, SigSet::EMPTY);
        assert!(matches!(
            k.next_signal(tid),
            Some(SignalDelivery::Handler { signo: 10, .. })
        ));
        assert_eq!(k.next_signal(tid), None, "delivered exactly once");
    }

    #[test]
    fn sigkill_cannot_be_caught() {
        let (mut k, tid) = kernel_with_proc();
        let action = WaliSigaction {
            handler: 9,
            flags: 0,
            mask: 0,
        };
        assert_eq!(
            k.sys_rt_sigaction(tid, Signal::Sigkill.number(), Some(action)),
            Err(SysError::Err(Errno::Einval))
        );
    }

    #[test]
    fn alarm_fires_sigalrm_after_deadline() {
        let (mut k, tid) = kernel_with_proc();
        k.sys_alarm(tid, 1).unwrap();
        assert!(k.next_timer_deadline().is_some());
        k.clock.advance(2_000_000_000);
        k.fire_timers();
        assert!(k
            .sys_rt_sigpending(tid)
            .unwrap()
            .contains(Signal::Sigalrm.number()));
        // Default SIGALRM kills.
        assert!(matches!(
            k.next_signal(tid),
            Some(SignalDelivery::Killed { signo: 14 })
        ));
    }

    #[test]
    fn futex_wait_wake_protocol() {
        let (mut k, tid) = kernel_with_proc();
        let t2 = k.sys_clone(tid, CLONE_PTHREAD).unwrap() as Tid;
        let mm = k.task(tid).unwrap().mm;
        // t2 waits (value matched).
        assert!(matches!(
            k.sys_futex_wait(t2, mm, 0x1000, true, None),
            Err(SysError::Block(_))
        ));
        // Waker wakes one.
        assert_eq!(k.sys_futex_wake(mm, 0x1000, 1).unwrap(), 1);
        // Retry completes.
        assert_eq!(k.sys_futex_wait(t2, mm, 0x1000, true, None).unwrap(), 0);
        // Mismatched value is EAGAIN.
        assert_eq!(
            k.sys_futex_wait(t2, mm, 0x1000, false, None),
            Err(SysError::Err(Errno::Eagain))
        );
    }

    #[test]
    fn exit_thread_wakes_joiner_via_clear_child_tid() {
        let (mut k, tid) = kernel_with_proc();
        let t2 = k.sys_clone(tid, CLONE_PTHREAD).unwrap() as Tid;
        let mm = k.task(tid).unwrap().mm;
        k.sys_set_tid_address(t2, 0x2000).unwrap();
        // Main waits on the tid word.
        assert!(matches!(
            k.sys_futex_wait(tid, mm, 0x2000, true, None),
            Err(SysError::Block(_))
        ));
        k.sys_exit_thread(t2, 0).unwrap();
        // Woken now.
        assert_eq!(k.sys_futex_wait(tid, mm, 0x2000, true, None).unwrap(), 0);
    }

    #[test]
    fn nanosleep_blocks_until_virtual_deadline() {
        let (mut k, tid) = kernel_with_proc();
        let r = k.sys_nanosleep(tid, 1_000_000);
        let deadline = match r {
            Err(SysError::Block(b)) => b.deadline.unwrap(),
            other => panic!("{other:?}"),
        };
        assert!(matches!(
            k.sys_nanosleep_retry(tid, deadline),
            Err(SysError::Block(_))
        ));
        k.clock.advance_to(deadline);
        assert_eq!(k.sys_nanosleep_retry(tid, deadline).unwrap(), 0);
    }

    #[test]
    fn getrandom_is_deterministic() {
        let mut k1 = Kernel::new();
        let mut k2 = Kernel::new();
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        k1.sys_getrandom(&mut a).unwrap();
        k2.sys_getrandom(&mut b).unwrap();
        assert_eq!(a, b);
        let mut c = [0u8; 16];
        k1.sys_getrandom(&mut c).unwrap();
        assert_ne!(a, c, "stream advances");
    }

    #[test]
    fn setsid_and_pgid() {
        let (mut k, tid) = kernel_with_proc();
        // Leader of its own group: setsid fails.
        assert_eq!(k.sys_setsid(tid), Err(SysError::Err(Errno::Eperm)));
        let child = k.sys_fork(tid).unwrap() as Tid;
        assert_eq!(k.sys_getpgid(child, 0).unwrap(), tid as i64);
        let sid = k.sys_setsid(child).unwrap();
        assert_eq!(sid, child as i64);
        assert_eq!(k.sys_getpgid(child, 0).unwrap(), child as i64);
    }

    #[test]
    fn leak_audit_clean_after_full_lifecycle() {
        let (mut k, tid) = kernel_with_proc();
        // Open a pipe, fork, exchange a byte, close everything, reap.
        let (r, w) = k.sys_pipe2(tid, 0).unwrap();
        let child = k.sys_fork(tid).unwrap() as Tid;
        k.sys_write(child, w, b"x").unwrap();
        let mut buf = [0u8; 1];
        k.sys_read(tid, r, &mut buf).unwrap();
        k.sys_exit_group(child, 0).unwrap();
        k.sys_wait4(tid, child, 0).unwrap();
        k.sys_close(tid, r).unwrap();
        k.sys_close(tid, w).unwrap();
        k.sys_exit_group(tid, 0).unwrap();
        let report = k.leak_audit();
        assert!(report.is_clean(), "leaks: {}", report.describe());
        // The main process's zombie group is expected residue.
        assert_eq!(report.zombie_tasks, vec![tid]);
    }

    #[test]
    fn leak_audit_flags_open_pipe_and_live_task() {
        let (mut k, tid) = kernel_with_proc();
        let (_r, _w) = k.sys_pipe2(tid, 0).unwrap();
        let report = k.leak_audit();
        assert!(!report.is_clean());
        assert_eq!(report.open_pipes, 1);
        assert_eq!(report.live_tasks, vec![tid]);
        assert!(report.describe().contains("pipe"));
    }

    #[test]
    fn leak_audit_flags_stranded_futex_waiter() {
        let (mut k, tid) = kernel_with_proc();
        let mm = k.task(tid).unwrap().mm;
        assert!(matches!(
            k.sys_futex_wait(tid, mm, 0x1000, true, None),
            Err(SysError::Block(_))
        ));
        let report = k.leak_audit();
        assert_eq!(report.futex_waiters, 1);
        assert!(report.wait_subscriptions > 0);
        // Once the task exits, the stale queue entry no longer counts.
        k.sys_exit_group(tid, 0).unwrap();
        assert_eq!(k.leak_audit().futex_waiters, 0);
    }

    #[test]
    fn orphans_are_reparented_to_init() {
        let (mut k, tid) = kernel_with_proc();
        let child = k.sys_fork(tid).unwrap() as Tid;
        let grandchild = k.sys_fork(child).unwrap() as Tid;
        k.sys_exit_group(child, 0).unwrap();
        assert_eq!(k.task(grandchild).unwrap().ppid, 1);
    }
}
