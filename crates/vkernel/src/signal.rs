//! Signal state: handler tables, pending sets and delivery selection.
//!
//! The kernel owns *generation* and *pending/mask* state (paper §3.3 stages
//! 2–3); the WALI layer owns the virtual sigtable of Wasm function pointers
//! and handler *execution* at safepoints (stages 1 and 4).

use wali_abi::layout::WaliSigaction;
use wali_abi::signals::{DefaultDisposition, SigSet, Signal, NSIG, SIG_DFL, SIG_IGN};

/// Per-process signal handler table (shared under `CLONE_SIGHAND`).
#[derive(Clone, Debug)]
pub struct SigHandlers {
    actions: [WaliSigaction; NSIG],
}

impl Default for SigHandlers {
    fn default() -> Self {
        Self::new()
    }
}

impl SigHandlers {
    /// All-default handler table.
    pub fn new() -> SigHandlers {
        SigHandlers {
            actions: [WaliSigaction::default(); NSIG],
        }
    }

    /// The action registered for `signo`.
    pub fn get(&self, signo: i32) -> WaliSigaction {
        self.actions
            .get(signo as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Replaces the action for `signo`, returning the old one.
    pub fn set(&mut self, signo: i32, action: WaliSigaction) -> WaliSigaction {
        let slot = &mut self.actions[signo as usize];
        std::mem::replace(slot, action)
    }

    /// Resets caught signals to default on `execve` (ignored dispositions
    /// are preserved, per POSIX).
    pub fn reset_for_exec(&mut self) {
        for a in &mut self.actions {
            if a.handler != SIG_IGN {
                *a = WaliSigaction::default();
            }
        }
    }
}

/// A set of pending signals with FIFO arrival order for equal priority.
#[derive(Clone, Debug, Default)]
pub struct PendingSet {
    set: SigSet,
}

impl PendingSet {
    /// Adds `signo` (idempotent: classic signals do not queue).
    pub fn add(&mut self, signo: i32) {
        self.set.insert(signo);
    }

    /// True if `signo` is pending.
    pub fn contains(&self, signo: i32) -> bool {
        self.set.contains(signo)
    }

    /// The pending set as a mask.
    pub fn mask(&self) -> SigSet {
        self.set
    }

    /// Removes and returns the lowest-numbered pending signal not blocked
    /// by `mask`.
    pub fn take_deliverable(&mut self, mask: SigSet) -> Option<i32> {
        let deliverable = SigSet(self.set.0 & !mask.0);
        let signo = deliverable.lowest()?;
        self.set.remove(signo);
        Some(signo)
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.set.0 == 0
    }
}

/// What the kernel decides should happen for a deliverable signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// Invoke the registered Wasm handler (table index in the action).
    Handler(WaliSigaction),
    /// Ignore silently.
    Ignore,
    /// Terminate the process with this signal (term or core).
    Kill,
    /// Stop the process.
    Stop,
    /// Continue the process.
    Continue,
}

/// Computes the disposition of `signo` under `action`.
pub fn disposition(signo: i32, action: WaliSigaction) -> Disposition {
    match action.handler {
        SIG_IGN => Disposition::Ignore,
        SIG_DFL => match Signal::from_number(signo).map(|s| s.default_disposition()) {
            Some(DefaultDisposition::Ignore) => Disposition::Ignore,
            Some(DefaultDisposition::Stop) => Disposition::Stop,
            Some(DefaultDisposition::Continue) => Disposition::Continue,
            Some(DefaultDisposition::Terminate) | Some(DefaultDisposition::CoreDump) => {
                Disposition::Kill
            }
            // Realtime-range signals default to terminate.
            None => Disposition::Kill,
        },
        _ => Disposition::Handler(action),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wali_abi::signals::SA_RESTART;

    #[test]
    fn handler_set_returns_old() {
        let mut h = SigHandlers::new();
        let a = WaliSigaction {
            handler: 5,
            flags: SA_RESTART,
            mask: 0,
        };
        let old = h.set(2, a);
        assert_eq!(old, WaliSigaction::default());
        assert_eq!(h.set(2, WaliSigaction::default()), a);
    }

    #[test]
    fn exec_reset_preserves_ignored() {
        let mut h = SigHandlers::new();
        h.set(
            2,
            WaliSigaction {
                handler: SIG_IGN,
                flags: 0,
                mask: 0,
            },
        );
        h.set(
            15,
            WaliSigaction {
                handler: 7,
                flags: 0,
                mask: 0,
            },
        );
        h.reset_for_exec();
        assert_eq!(h.get(2).handler, SIG_IGN);
        assert_eq!(h.get(15).handler, SIG_DFL);
    }

    #[test]
    fn pending_respects_mask_and_priority() {
        let mut p = PendingSet::default();
        p.add(15);
        p.add(2);
        let mut mask = SigSet::EMPTY;
        mask.insert(2);
        // 2 is blocked: 15 is delivered first.
        assert_eq!(p.take_deliverable(mask), Some(15));
        assert_eq!(p.take_deliverable(mask), None);
        // Unblock: 2 is delivered.
        assert_eq!(p.take_deliverable(SigSet::EMPTY), Some(2));
        assert!(p.is_empty());
    }

    #[test]
    fn pending_does_not_queue_duplicates() {
        let mut p = PendingSet::default();
        p.add(10);
        p.add(10);
        assert_eq!(p.take_deliverable(SigSet::EMPTY), Some(10));
        assert_eq!(p.take_deliverable(SigSet::EMPTY), None);
    }

    #[test]
    fn dispositions_follow_defaults() {
        let dfl = WaliSigaction::default();
        assert_eq!(
            disposition(17, dfl),
            Disposition::Ignore,
            "SIGCHLD default ignore"
        );
        assert_eq!(
            disposition(15, dfl),
            Disposition::Kill,
            "SIGTERM default kill"
        );
        assert_eq!(disposition(19, dfl), Disposition::Stop, "SIGSTOP stops");
        assert_eq!(
            disposition(18, dfl),
            Disposition::Continue,
            "SIGCONT continues"
        );
        let ign = WaliSigaction {
            handler: SIG_IGN,
            ..dfl
        };
        assert_eq!(disposition(15, ign), Disposition::Ignore);
        let h = WaliSigaction { handler: 42, ..dfl };
        assert_eq!(disposition(15, h), Disposition::Handler(h));
    }
}
